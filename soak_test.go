package stint

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// The soak suite runs larger randomized programs through every detector and
// checks cross-run determinism and cross-detector agreement on aggregate
// counters — the guarantees a user relies on when comparing detector
// configurations on their own programs.

// soakProgram builds a deep, wide random program over several buffers.
func soakProgram(seed int64) ([]act, []int) {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{128, 64, 256}
	var grow func(depth int) []act
	grow = func(depth int) []act {
		n := rng.Intn(8) + 1
		acts := make([]act, 0, n)
		for i := 0; i < n; i++ {
			switch k := rng.Intn(12); {
			case k < 4 && depth > 0:
				acts = append(acts, act{kind: 'S', body: grow(depth - 1)})
			case k == 4:
				acts = append(acts, act{kind: 'Y'})
			default:
				b := rng.Intn(len(sizes))
				idx := rng.Intn(sizes[b])
				a := act{kind: []byte{'l', 's', 'L', 'W'}[rng.Intn(4)], buf: b, idx: idx}
				if a.kind == 'L' || a.kind == 'W' {
					a.n = rng.Intn(sizes[b]-idx) + 1
				}
				acts = append(acts, a)
			}
		}
		return acts
	}
	return grow(6), sizes
}

func soakRun(t *testing.T, acts []act, sizes []int, d Detector) *Report {
	return soakRunMode(t, acts, sizes, d, false)
}

func soakRunMode(t *testing.T, acts []act, sizes []int, d Detector, async bool) *Report {
	return soakRunShards(t, acts, sizes, d, async, 0)
}

func soakRunShards(t *testing.T, acts []act, sizes []int, d Detector, async bool, shards int) *Report {
	return soakRunOpts(t, acts, sizes, Options{Detector: d, MaxRacesRecorded: 1, Async: async, DetectShards: shards})
}

func soakRunOpts(t *testing.T, acts []act, sizes []int, opts Options) *Report {
	t.Helper()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([]*Buffer, len(sizes))
	for i, s := range sizes {
		bufs[i] = r.Arena().AllocWords("b", s)
	}
	rep, err := r.Run(func(task *Task) { runActs(task, bufs, acts) })
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSoakDeterminismAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	for seed := int64(0); seed < 6; seed++ {
		acts, sizes := soakProgram(seed)
		for _, d := range allDetectors {
			a := soakRun(t, acts, sizes, d)
			b := soakRun(t, acts, sizes, d)
			if a.RaceCount != b.RaceCount || a.Strands != b.Strands ||
				a.Stats.ReadIntervals != b.Stats.ReadIntervals ||
				a.Stats.TreapNodesVisited != b.Stats.TreapNodesVisited {
				t.Fatalf("seed %d %v: nondeterministic runs\n%+v\n%+v", seed, d, a.Stats, b.Stats)
			}
		}
	}
}

func TestSoakAsyncDeterminismAndSyncAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// Async runs must be deterministic across runs (the ring hands over
	// batches, it never reorders) and must match the synchronous path on
	// every counter that is not timing- or allocation-dependent.
	norm := func(s Stats) Stats {
		s.AccessHistoryTime, s.AllocObjects, s.AllocBytes, s.PipelineDetectTime, s.BatchesSkipped = 0, 0, 0, 0, 0
		s.EventsStreamed, s.StreamBytes = 0, 0
		return s
	}
	for seed := int64(20); seed < 26; seed++ {
		acts, sizes := soakProgram(seed)
		for _, d := range allDetectors {
			a := soakRunMode(t, acts, sizes, d, true)
			b := soakRunMode(t, acts, sizes, d, true)
			if norm(a.Stats) != norm(b.Stats) || a.Strands != b.Strands {
				t.Fatalf("seed %d %v: nondeterministic async runs\n%+v\n%+v", seed, d, a.Stats, b.Stats)
			}
			s := soakRunMode(t, acts, sizes, d, false)
			if norm(a.Stats) != norm(s.Stats) || a.Strands != s.Strands {
				t.Fatalf("seed %d %v: async diverges from sync\nasync: %+v\nsync:  %+v",
					seed, d, norm(a.Stats), norm(s.Stats))
			}
		}
	}
}

func TestSoakShardedDeterminismAndSyncAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// Sharded runs must be deterministic across repetitions (per-page state
	// is owned by exactly one worker, so scheduling cannot change any
	// counter) and must match the synchronous path on every deterministic
	// counter, for every supported detector and shard count.
	norm := func(s Stats) Stats {
		s.AccessHistoryTime, s.AllocObjects, s.AllocBytes, s.PipelineDetectTime, s.BatchesSkipped = 0, 0, 0, 0, 0
		s.EventsStreamed, s.StreamBytes = 0, 0
		return s
	}
	for seed := int64(30); seed < 34; seed++ {
		acts, sizes := soakProgram(seed)
		for _, d := range shardTestDetectors {
			sync := soakRunMode(t, acts, sizes, d, false)
			for _, n := range []int{1, 2, 4} {
				a := soakRunShards(t, acts, sizes, d, true, n)
				b := soakRunShards(t, acts, sizes, d, true, n)
				if norm(a.Stats) != norm(b.Stats) || a.Strands != b.Strands || a.RaceCount != b.RaceCount {
					t.Fatalf("seed %d %v shards=%d: nondeterministic sharded runs\n%+v\n%+v",
						seed, d, n, a.Stats, b.Stats)
				}
				if norm(a.Stats) != norm(sync.Stats) || a.Strands != sync.Strands || a.RaceCount != sync.RaceCount {
					t.Fatalf("seed %d %v shards=%d: sharded diverges from sync\nsharded: %+v\nsync:    %+v",
						seed, d, n, norm(a.Stats), norm(sync.Stats))
				}
				// Batch summaries are a pure scan elision: with them disabled
				// nothing skips and the report still matches sync byte for
				// byte on every deterministic counter.
				c := soakRunOpts(t, acts, sizes, Options{
					Detector: d, MaxRacesRecorded: 1, Async: true,
					DetectShards: n, DisableBatchSummaries: true,
				})
				if c.Stats.BatchesSkipped != 0 {
					t.Fatalf("seed %d %v shards=%d: summaries disabled but BatchesSkipped = %d",
						seed, d, n, c.Stats.BatchesSkipped)
				}
				if norm(c.Stats) != norm(sync.Stats) || c.Strands != sync.Strands || c.RaceCount != sync.RaceCount {
					t.Fatalf("seed %d %v shards=%d: summaries-off run diverges from sync\nnosum: %+v\nsync:  %+v",
						seed, d, n, norm(c.Stats), norm(sync.Stats))
				}
				// The compact encoding is a pure transport change: the fixed
				// 16-byte encoding must produce the same report too.
				fx := soakRunOpts(t, acts, sizes, Options{
					Detector: d, MaxRacesRecorded: 1, Async: true,
					DetectShards: n, DisableCompactEvents: true,
				})
				if norm(fx.Stats) != norm(sync.Stats) || fx.Strands != sync.Strands || fx.RaceCount != sync.RaceCount {
					t.Fatalf("seed %d %v shards=%d: fixed-encoding run diverges from sync\nfixed: %+v\nsync:  %+v",
						seed, d, n, norm(fx.Stats), norm(sync.Stats))
				}
			}
		}
	}
}

// TestSoakParallelDetectDeterminism hammers the ParallelDetect pipeline
// under a per-iteration randomized GOMAXPROCS: the scheduler gets a
// different amount of real parallelism every time, chunks arrive at the
// merge in a different order every time, and the report must not move.
// MaxRacesRecorded is deliberately large so truncation cannot mask a
// reordered race list. Designed to run under -race in CI (the race job
// runs the full suite), where the parallel executor's goroutines get the
// most adversarial interleavings.
func TestSoakParallelDetectDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	const iters = 50
	for seed := int64(40); seed < 42; seed++ {
		acts, sizes := soakProgram(seed)
		rng := rand.New(rand.NewSource(seed * 101))
		sync := soakRunOpts(t, acts, sizes, Options{
			Detector: DetectorSTINT, MaxRacesRecorded: 1 << 16,
		})
		var first *Report
		for it := 0; it < iters; it++ {
			runtime.GOMAXPROCS(1 + rng.Intn(4))
			rep := soakRunOpts(t, acts, sizes, Options{
				Detector: DetectorSTINT, MaxRacesRecorded: 1 << 16,
				ParallelDetect: true, DetectShards: 2,
			})
			if rep.RaceCount != sync.RaceCount || rep.Strands != sync.Strands {
				t.Fatalf("seed %d iter %d: RaceCount/Strands %d/%d, sync %d/%d",
					seed, it, rep.RaceCount, rep.Strands, sync.RaceCount, sync.Strands)
			}
			if !reflect.DeepEqual(rep.Races, sync.Races) {
				t.Fatalf("seed %d iter %d: race set diverges from sync\n got: %v\nsync: %v",
					seed, it, rep.Races, sync.Races)
			}
			if first == nil {
				first = rep
				continue
			}
			if normStats(rep.Stats) != normStats(first.Stats) {
				t.Fatalf("seed %d iter %d: stats moved across iterations\n got: %+v\nfirst: %+v",
					seed, it, normStats(rep.Stats), normStats(first.Stats))
			}
		}
	}
}

func TestSoakAggregateAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	for seed := int64(10); seed < 16; seed++ {
		acts, sizes := soakProgram(seed)
		// Access counts are instrumentation-level facts: identical across
		// all engines. Interval counts are coalescing-level facts:
		// identical across all runtime-coalescing engines.
		vanilla := soakRun(t, acts, sizes, DetectorVanilla)
		var coalesced []*Report
		for _, d := range []Detector{DetectorCompRTS, DetectorSTINT, DetectorSTINTUnbalanced, DetectorSTINTSkiplist} {
			coalesced = append(coalesced, soakRun(t, acts, sizes, d))
		}
		for i, rep := range coalesced {
			if rep.Stats.ReadAccesses != vanilla.Stats.ReadAccesses ||
				rep.Stats.WriteAccesses != vanilla.Stats.WriteAccesses {
				t.Fatalf("seed %d engine %d: access counts diverge from vanilla", seed, i)
			}
			if rep.Strands != vanilla.Strands {
				t.Fatalf("seed %d engine %d: strand counts diverge", seed, i)
			}
			if rep.Stats.ReadIntervals != coalesced[0].Stats.ReadIntervals ||
				rep.Stats.WriteIntervals != coalesced[0].Stats.WriteIntervals {
				t.Fatalf("seed %d engine %d: interval counts diverge across coalescing engines", seed, i)
			}
		}
		// Racy verdicts agree everywhere (full equality is covered by the
		// equivalence suite; this guards it at soak scale).
		for i, rep := range coalesced {
			if rep.Racy() != vanilla.Racy() {
				t.Fatalf("seed %d engine %d: verdict %v vs vanilla %v", seed, i, rep.Racy(), vanilla.Racy())
			}
		}
	}
}
