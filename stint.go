// Package stint is a sequential determinacy-race detector for fork-join
// task-parallel programs, reproducing "Efficient Access History for Race
// Detection" (SPAA 2021).
//
// Programs are written against Task: Spawn runs a subtask that is logically
// parallel with the caller's continuation, and Sync joins all subtasks
// spawned since the last sync. Memory accesses are reported through
// instrumentation hooks — Load/Store for individual accesses and
// LoadRange/StoreRange where a compiler could statically coalesce a loop's
// accesses into one contiguous interval (§3.1 of the paper). Addresses come
// from a virtual Arena so detection is deterministic and portable.
//
// The Detector option selects the paper's configurations: Vanilla checks
// every access against a word-granularity shadow hashmap; Compiler adds
// compile-time coalescing; CompRTS adds runtime coalescing through a bit
// hashmap flushed at strand ends; and STINT stores the access history as
// non-overlapping intervals in treaps, giving amortized-constant-overhead
// detection when programs access memory in contiguous runs.
//
//	r, _ := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
//	buf := r.Arena().AllocWords("data", 1024)
//	report, _ := r.Run(func(t *stint.Task) {
//	    t.Spawn(func(c *stint.Task) { c.StoreRange(buf, 0, 512) })
//	    t.StoreRange(buf, 256, 512) // overlaps the spawned write: a race
//	    t.Sync()
//	})
//	fmt.Println(report.RaceCount)
package stint

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"stint/internal/depa"
	"stint/internal/detect"
	"stint/internal/evstream"
	"stint/internal/mem"
	"stint/internal/spord"
	"stint/internal/stage"
)

// Detector selects a race-detection engine.
type Detector = detect.Mode

// Detector configurations, mirroring the paper's evaluation matrix.
const (
	// DetectorOff runs the program with no detection (the "base" column).
	DetectorOff = detect.Off
	// DetectorReachOnly maintains only SP-Order reachability (Figure 1's
	// "reach." column).
	DetectorReachOnly = detect.ReachOnly
	// DetectorVanilla is the per-access word-granularity hashmap detector.
	DetectorVanilla = detect.Vanilla
	// DetectorCompiler adds compile-time coalescing to Vanilla.
	DetectorCompiler = detect.Compiler
	// DetectorCompRTS adds runtime coalescing, still over the hashmap.
	DetectorCompRTS = detect.CompRTS
	// DetectorSTINT is the paper's full system with the interval treap.
	DetectorSTINT = detect.STINT
	// DetectorSTINTUnbalanced is STINT over plain (unbalanced) BSTs.
	DetectorSTINTUnbalanced = detect.STINTUnbalanced
	// DetectorSTINTSkiplist is STINT over a redundant-interval skiplist
	// (the Park et al. related-work design).
	DetectorSTINTSkiplist = detect.STINTSkiplist
)

// Race is one detected determinacy race.
type Race = detect.Race

// Stats carries the detector's internal counters; see detect.Stats.
type Stats = detect.Stats

// ErrHistoryCap is the sentinel a Run aborted by Options.MaxHistoryBytes
// wraps; match it with errors.Is. The concrete error is a
// *HistoryCapError carrying the tripped budget and footprint estimate.
var ErrHistoryCap = detect.ErrHistoryCap

// HistoryCapError is the structured over-cap error; see ErrHistoryCap.
type HistoryCapError = detect.HistoryCapError

// Buffer is a virtual allocation whose accesses the detector shadows.
type Buffer = mem.Buffer

// Arena hands out virtual address ranges for Buffers.
type Arena = mem.Arena

// Addr is a virtual byte address.
type Addr = mem.Addr

// Tracer observes the execution events a replay needs: the spawn/sync
// structure and every instrumented memory access. stint/trace provides the
// standard implementation; the runner invokes the Tracer inline, so
// implementations must be fast and must not retain event ordering
// assumptions beyond "serial program order".
type Tracer interface {
	// Spawn is invoked when a child task begins, Restore when it returns
	// to the parent's continuation, and Sync on strand-creating syncs
	// (no-op syncs are not reported).
	Spawn()
	Restore()
	Sync()
	// Read/Write report per-access hooks; ReadRange/WriteRange report
	// compiler-coalesced hooks.
	Read(addr Addr, size uint64)
	Write(addr Addr, size uint64)
	ReadRange(addr Addr, count int, elemBytes uint64)
	WriteRange(addr Addr, count int, elemBytes uint64)
}

// Options configures a Runner.
type Options struct {
	// Detector selects the engine; DetectorOff by default.
	Detector Detector
	// OnRace, if set, is invoked for every race found, as it is found.
	OnRace func(Race)
	// MaxRacesRecorded bounds Report.Races (default 64; counts are exact
	// regardless).
	MaxRacesRecorded int
	// TimeAccessHistory enables the access-history timers used by the
	// benchmark harness (a few clock reads per strand).
	TimeAccessHistory bool
	// Parallel executes spawns on goroutines instead of serially, with no
	// detection attached: it is only valid with DetectorOff. For parallel
	// execution with online detection, use ParallelDetect.
	Parallel bool
	// ParallelDetect executes spawns on goroutines — like Parallel — while
	// detecting races online. Each task goroutine buffers its strand's
	// access events into chunks and stamps their shard-occupancy masks; a
	// merge stage reorders the arriving chunks into the serial projection
	// (a depth-first walk of the spawn structure, so the order depends
	// only on the program, never on scheduling), advances the reachability
	// labels, and feeds the same sharded worker graph DetectShards uses.
	//
	// The contract is race-set equivalence with the synchronous run — the
	// same set of (location, access-pair) races — and repeated runs are
	// byte-identical to each other. The implementation delivers more: the
	// merged stream *is* the serial event stream, so Report.Races, counts,
	// and Stats come out identical to sync mode, not just equivalent.
	//
	// Requires a runtime-coalescing detector (DetectorCompRTS or a STINT
	// variant); incompatible with Parallel, Async, and Tracer. DetectShards
	// sets the worker count (0 means one worker); SummaryStamping is
	// ignored — the executors stamp masks, the merge stamps structure
	// offsets. OnRace may be invoked from any worker while the program is
	// still running, and the program itself must be safe to execute in
	// parallel (spawned siblings really do run concurrently — a genuinely
	// racy program gives nondeterministic *data*, even though every race
	// the serial projection exhibits is still detected on that
	// projection).
	ParallelDetect bool
	// Async pipelines detection: the program executes the serial
	// projection while a dedicated detector goroutine consumes its event
	// stream from a bounded ring, overlapping compute with the access
	// history. Race reports and Stats are identical to the synchronous
	// path (the stream is the serial order); wall clock approaches
	// max(compute, detect) instead of their sum. OnRace is invoked from
	// the detector goroutine while the program is still running; Run does
	// not return until the stream has fully drained. Async is ignored
	// under DetectorOff (there is nothing to pipeline) and is incompatible
	// with Parallel.
	Async bool
	// DetectShards, when n > 0, spreads the detector side of the Async
	// pipeline over n shard workers behind a two-stage graph. A thin label
	// stage consumes only the structure events, stamps each batch with an
	// immutable DePa-style reachability label snapshot (internal/depa), and
	// broadcasts the batch unmodified to all workers; each worker filters
	// and page-splits the access events locally, keeping the 64 KiB shadow
	// pages that hash to its shard — it owns their access history, its own
	// page directory, treap node pool, and coalescing buffers — and answers
	// reachability from the read-only labels. Race reports, counts, and
	// Stats are canonical: independent of n and identical to the
	// synchronous path. OnRace may be invoked from any worker (serialized,
	// but in no deterministic order across shard counts).
	//
	// Requires Async. Supported for the runtime-coalescing detectors
	// (DetectorCompRTS and the STINT variants), whose hooks only update
	// per-page state; rejected for DetectorVanilla/DetectorCompiler, and
	// ignored for DetectorOff/DetectorReachOnly (nothing page-partitioned
	// to shard). n = 1 runs the full sharded machinery with one worker.
	DetectShards int
	// DisableBatchSummaries turns off the per-batch page summaries in
	// sharded mode, forcing every worker to scan every broadcast batch
	// instead of skipping batches whose page mask proves they own no piece
	// of any access (Stats.BatchesSkipped stays zero). Reports are
	// identical either way — the summaries only elide provably irrelevant
	// scan work. Exists for measurement (the before/after in
	// EXPERIMENTS.md) and as an escape hatch; ignored outside sharded mode.
	DisableBatchSummaries bool
	// DisableCompactEvents makes the Async pipeline carry fixed 16-byte
	// events instead of the default delta-packed compact encoding
	// (typically 2-3 bytes per event; see Stats.StreamBytes). The encoding
	// is invisible above the ring — reports are byte-identical with it on
	// or off — so, like DisableBatchSummaries, this exists for measurement
	// and as an escape hatch; ignored outside Async mode.
	DisableCompactEvents bool
	// SummaryStamping selects which pipeline stage computes the per-batch
	// summaries (the Ctl structure offsets and page mask of
	// DisableBatchSummaries) in sharded mode; see the StampAuto constants.
	// The stamp is identical whichever stage computes it, so reports do not
	// depend on this option. Ignored outside sharded mode and when
	// summaries are disabled (the label stage then owns the MaskAll stamp).
	SummaryStamping SummaryStamping
	// PageQuiesceThreshold, when n > 0, retires a 64 KiB shadow page's
	// access history once that page has produced n races: its treaps,
	// skiplists, or shadow cells drop back onto the engine's free lists and
	// later accesses wholly within the page become cheap no-ops. The
	// decision is page-local and taken at deterministic points in the
	// serial order, so races on pages that never quiesce stay byte-
	// identical across every execution mode, and Stats.PagesQuiesced is
	// mode-independent. Races a quiesced page would have produced after its
	// threshold are not reported — the semantics of MaxRacesRecorded
	// applied per page (a common setting is the MaxRacesRecorded budget
	// itself). Zero (the default) disables quiescing entirely.
	PageQuiesceThreshold int
	// MaxHistoryBytes, when n > 0, caps the detector's retained
	// access-history footprint (history stores, shadow pages, coalescing
	// bitmaps), estimated at strand boundaries; under DetectShards the
	// budget divides evenly across the shard workers. On trip, Run aborts
	// with an error wrapping ErrHistoryCap instead of growing further — a
	// structured error, not a panic — and the Runner stays valid: its next
	// Run auto-resets, exactly like the ErrTooManyEvents recovery in
	// stint/trace. Combine with PageQuiesceThreshold to shed racy pages
	// before they eat the budget. Zero (the default) means unlimited.
	MaxHistoryBytes int64
	// Tracer, if set, receives every execution event (see Tracer); use
	// stint/trace to record replayable traces. Incompatible with Parallel.
	Tracer Tracer
}

// SummaryStamping selects the pipeline stage that stamps per-batch
// summaries in sharded mode; see Options.SummaryStamping.
type SummaryStamping int

const (
	// StampAuto picks the stage from the machine shape: on a single-CPU
	// process (GOMAXPROCS 1) every stage timeshares one core, so the
	// producer stamps as it appends — the label stage's extra decode pass
	// would be pure added work. With two or more CPUs the mutator is the
	// serial critical path, so the stamping moves to the label stage, which
	// is already decoding each batch to advance the labels.
	StampAuto SummaryStamping = iota
	// StampProducer forces producer-side stamping: the mutator ORs each
	// access's page mask into the batch summary as it appends.
	StampProducer
	// StampLabelStage forces label-stage stamping: the producer appends
	// bare events and the label stage stamps Ctl offsets and masks during
	// its single decode pass, shedding the per-access mask work from the
	// mutator.
	StampLabelStage
)

// producerStamps resolves SummaryStamping to "does the producer stamp".
func (o *Options) producerStamps() bool {
	switch o.SummaryStamping {
	case StampProducer:
		return true
	case StampLabelStage:
		return false
	default:
		return runtime.GOMAXPROCS(0) == 1
	}
}

// Runner executes fork-join programs under one detector configuration. A
// Runner's Arena must be populated before Run; a Runner may Run multiple
// programs, and detector state (access history, reachability) is fresh for
// each Run — but not freshly allocated: the Runner builds its detector
// pipeline once, on first use, and Run auto-resets it between runs
// (allocate-once / reset-and-reuse). Reports are byte-identical to what a
// brand-new Runner with the same Options would produce; see Reset.
type Runner struct {
	opts  Options
	arena *mem.Arena
	// newEngine, when non-nil, replaces detect.New; tests use it to run
	// reference engines (e.g. the brute-force oracle) through the runner.
	newEngine func(cfg detect.Config, sp *spord.SP) detect.Engine
	// asyncBatchEvents and asyncRingDepth override the async pipeline
	// geometry when nonzero; tests use tiny values to force batch-boundary
	// and backpressure edge cases.
	asyncBatchEvents int
	asyncRingDepth   int
	// warm is the retained detector state, built lazily on first Run (so
	// test seams set after NewRunner still apply); dirty marks it as used
	// since the last Reset, making Run's auto-reset exact.
	warm  *warmState
	dirty bool
}

// warmState is everything a Runner retains across runs. Exactly one shape
// is populated, fixed by the Options mode:
//
//   - sync (and ReachOnly): sp + engine + col;
//   - plain Async: as (ring, working batch) + cons;
//   - Async + DetectShards: as + labels + workers + bcast;
//   - ParallelDetect: as (queue, pool) + labels + workers + bcast;
//   - DetectorOff / Parallel / pure tracing: nothing.
//
// The OnRace closures built here capture the retained structures, so they
// remain valid for every subsequent run.
type warmState struct {
	// Synchronous inline detection.
	sp     *spord.SP
	engine detect.Engine
	col    *stage.Collector
	// Pipelined modes.
	as      *asyncState
	cons    *consumeState
	labels  *depa.Builder
	workers []*shardWorker
	bcast   *evstream.BcastRing[labeledBatch]
	// quiesce is the shared quiesced-page registry (serial-projection
	// pipelines with PageQuiesceThreshold only): engines publish, the
	// producer and label stage consult.
	quiesce *detect.QuiesceSet
}

// ensureWarm builds the retained detector state on first use.
func (r *Runner) ensureWarm() {
	if r.warm != nil {
		return
	}
	w := &warmState{}
	r.warm = w
	if r.opts.Detector == DetectorOff {
		return
	}
	cfg := detect.Config{
		Mode:              r.opts.Detector,
		TimeAccessHistory: r.opts.TimeAccessHistory,
		QuiesceThreshold:  r.opts.PageQuiesceThreshold,
	}
	// The history budget divides evenly across the engines that will share
	// it (one per shard worker); a lone engine gets the whole cap.
	engines := 1
	if r.opts.ParallelDetect || (r.opts.Async && r.opts.Detector != DetectorReachOnly) {
		if n := r.opts.DetectShards; n > 1 {
			engines = n
		}
	}
	if r.opts.MaxHistoryBytes > 0 {
		per := uint64(r.opts.MaxHistoryBytes) / uint64(engines)
		if per == 0 {
			per = 1
		}
		cfg.MaxHistoryBytes = per
	}
	user := r.opts.OnRace
	maxRec := r.opts.MaxRacesRecorded
	depth, bcap := r.asyncRingDepth, r.asyncBatchEvents
	if depth == 0 {
		depth = defaultAsyncRingDepth
	}
	if bcap == 0 {
		bcap = defaultAsyncBatchEvents
	}
	switch {
	case r.opts.ParallelDetect:
		shards := r.opts.DetectShards
		if shards == 0 {
			shards = 1
		}
		// No quiesce registry here: parallel executors emit events at
		// serial positions that may precede a quiesce point already
		// reached by a worker, so producer-side drops would be unsound.
		// The engines' own page-local drops carry the optimization.
		w.as = newParallelState(depth, bcap, !r.opts.DisableCompactEvents)
		w.labels, w.workers, w.bcast = w.as.buildParallel(cfg, shards, maxRec, user, !r.opts.DisableBatchSummaries)
	case r.opts.Async:
		w.as = newAsyncState(depth, bcap, !r.opts.DisableCompactEvents)
		if r.opts.PageQuiesceThreshold > 0 && r.opts.Detector != DetectorReachOnly {
			// In the serial-projection pipelines the producer is always
			// ahead of the detector in stream order, so once a page shows
			// up in the registry every not-yet-emitted event is past the
			// quiesce point — the producer can drop it (and the label
			// stage can leave it out of the stamped mask) without
			// changing any report.
			w.quiesce = detect.NewQuiesceSet()
			cfg.Quiesced = w.quiesce
			w.as.quiesce = w.quiesce
		}
		if n := r.opts.DetectShards; n > 0 && r.opts.Detector != DetectorReachOnly {
			w.labels, w.workers, w.bcast = w.as.buildSharded(cfg, n, maxRec, user, !r.opts.DisableBatchSummaries, r.opts.producerStamps())
		} else {
			w.cons = buildConsume(cfg, r.newEngine, maxRec, user)
		}
	default:
		w.sp = spord.New()
		w.col = stage.NewCollector(maxRec)
		cfg.OnRace = func(race Race) {
			w.col.Add(w.sp.SeqRank(race.Cur), race)
			if user != nil {
				user(race)
			}
		}
		if r.newEngine != nil {
			w.engine = r.newEngine(cfg, w.sp)
		} else {
			w.engine = detect.New(cfg, w.sp)
		}
	}
}

// Reset returns the Runner to fresh-but-warm state: every retained layer —
// reachability structures, detector engines with their page directories and
// node pools, race collectors, event rings and batch pools — is emptied in
// place with its capacity kept, so in steady state Reset allocates nothing
// and the Runner's heap footprint stops growing once it has seen its peak
// run. Deterministic seeds re-derive, so the next Run's Report is
// byte-identical to a fresh Runner's. The Arena is untouched: buffers
// allocated before a Reset stay valid across it.
//
// Run resets automatically between runs; call Reset explicitly to pay the
// cost at a moment of your choosing (e.g. returning a Runner to a pool).
func (r *Runner) Reset() {
	w := r.warm
	r.dirty = false
	if w == nil {
		return
	}
	if w.sp != nil {
		w.sp.Reset()
	}
	if w.engine != nil {
		w.engine.Reset()
	}
	if w.col != nil {
		w.col.Reset()
	}
	if w.cons != nil {
		w.cons.reset()
	}
	if w.labels != nil {
		w.labels.Reset()
	}
	for _, sw := range w.workers {
		sw.reset()
	}
	if w.bcast != nil {
		w.bcast.Reset()
	}
	if w.as != nil {
		w.as.reset()
	}
	if w.quiesce != nil {
		w.quiesce.Reset()
	}
}

// NewRunner validates opts (see options.go for the rule table) and returns
// a Runner with an empty Arena.
func NewRunner(opts Options) (*Runner, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.MaxRacesRecorded = defaultMaxRaces(opts.MaxRacesRecorded)
	return &Runner{opts: opts, arena: mem.NewArena()}, nil
}

// Arena returns the Runner's address arena.
func (r *Runner) Arena() *mem.Arena { return r.arena }

// Report summarizes one Run.
type Report struct {
	// RaceCount is the total number of race reports (one stored access pair
	// per overlapping range; a racing program typically produces many).
	RaceCount uint64
	// Races holds the MaxRacesRecorded earliest reports in a canonical
	// order — sorted by the sequential position of each race's later
	// access, with field tie-breakers — so the slice is identical across
	// synchronous, Async, and every DetectShards count.
	Races []Race
	// Strands is the number of strands the execution generated.
	Strands int
	// WallTime is the end-to-end execution time including detection.
	WallTime time.Duration
	// Stats exposes the detector's internal counters.
	Stats Stats
	// SequencerBusy and ShardBusy report the sharded pipeline's utilization
	// split (zero/nil otherwise): time the label stage spent consuming
	// structure events and stamping batches, and per-worker busy time
	// (scanning, local page splitting, and detection). Stats.
	// PipelineDetectTime is the sum of ShardBusy in sharded mode.
	SequencerBusy time.Duration
	ShardBusy     []time.Duration
	// LabelViewSnapshots counts the reachability-label snapshots the label
	// stage took (sharded mode, zero otherwise): one covering the root
	// strand plus one per batch whose structure events grew the label set.
	// Batches with no spawns reuse the previous snapshot, so this is
	// typically far below the batch count on access-dense programs.
	LabelViewSnapshots uint64
	// ExecutorBusy is the summed busy time of the parallel executor's task
	// goroutines under ParallelDetect (zero otherwise): program execution
	// plus chunk encoding, excluding queue handoffs and joins. Divided by
	// the worker count it approximates the executor's critical path; in
	// this mode SequencerBusy reports the merge stage's busy time.
	ExecutorBusy time.Duration
	// ReorderPeak is the most chunks the ParallelDetect merge ever held
	// waiting for the next chunk in serial order (zero otherwise) — the
	// memory price of scheduling skew between executor goroutines.
	ReorderPeak int
	// ShardLoad breaks each worker's load down further (sharded mode only,
	// nil otherwise): busy time (ShardBusy[i] == ShardLoad[i].Busy), the
	// scanned-vs-skipped batch split from the summary fast path, and the
	// worker's broadcast-ring wait count. A worker with many waits was
	// starved (ahead of the stream); the low-wait outlier is the straggler
	// the ring's backpressure paces everyone else behind.
	ShardLoad []ShardLoad
}

// ShardLoad is one shard worker's load breakdown; see Report.ShardLoad.
type ShardLoad struct {
	// Busy is the worker's processing time, excluding ring waits.
	Busy time.Duration
	// BatchesScanned counts broadcast batches the worker scanned in full;
	// BatchesSkipped counts those its summary mask let it skip (structure
	// events only). Their sum is the number of batches broadcast.
	BatchesScanned uint64
	BatchesSkipped uint64
	// RingWaits counts the worker's blocking episodes waiting on the
	// broadcast ring for the label stage to publish.
	RingWaits uint64
	// EventsScanned and BlocksDecoded count the logical events and decode
	// blocks of the worker's full scans (skipped batches contribute
	// neither). EventsScanned/BlocksDecoded is the worker's events-per-block
	// figure: near evstream.BlockEvents when the stream blocks well, low
	// when structure-dense or tiny batches degenerate the blocking.
	EventsScanned uint64
	BlocksDecoded uint64
	// DecodeBusy estimates the time the worker spent inside block decode
	// itself (sampled at one timed call in eight, scaled), as distinct from
	// page splitting and detection. DecodeBusy/Busy is the decode share the
	// block-kernel work targets.
	DecodeBusy time.Duration
}

// Racy reports whether any race was found.
func (rep *Report) Racy() bool { return rep.RaceCount > 0 }

// TaskFunc is the body of a task. The Task argument is valid only until the
// function returns and must not be retained or shared.
type TaskFunc func(t *Task)

// runState is the per-Run shared state.
type runState struct {
	sp     *spord.SP
	engine detect.Engine
	hooks  bool // false when memory hooks should not reach the engine
	async  *asyncState
	// parPipe is the ParallelDetect pipeline (parallel.go). It is kept
	// distinct from async on purpose: the hook dispatch routes through the
	// task-local parTask (t.par), never through a shared working batch, so
	// a non-nil async must continue to mean "serial producer".
	parPipe  *asyncState
	tracer   Tracer
	parallel bool
	// taskFree recycles Task frames for the serial spawn path. Tasks are
	// documented as invalid once their TaskFunc returns, so a completed
	// child's frame can serve the next spawn without heap traffic.
	taskFree []*Task
}

// getTask returns a reset Task, reusing a retired frame when possible.
// Serial execution only; parallel mode allocates per goroutine.
func (rs *runState) getTask() *Task {
	if n := len(rs.taskFree); n > 0 {
		t := rs.taskFree[n-1]
		rs.taskFree[n-1] = nil
		rs.taskFree = rs.taskFree[:n-1]
		*t = Task{rs: rs}
		return t
	}
	return &Task{rs: rs}
}

func (rs *runState) putTask(t *Task) { rs.taskFree = append(rs.taskFree, t) }

// Task is a function instance in the fork-join program: the receiver for
// spawning, syncing, and instrumentation hooks.
type Task struct {
	rs    *runState
	frame spord.Frame
	// tracePending mirrors frame.Pending for the tracer (and stands in for
	// it when no detector is attached): true iff a spawn happened since
	// the last strand-creating sync.
	tracePending bool
	wg           *sync.WaitGroup // parallel executors only
	par          *parTask        // ParallelDetect only: this task's chunk emitter
}

// footprint sums the retained warm capacity of every engine the Runner
// holds; the reuse-soak suite asserts it stops growing after warm-up.
func (r *Runner) footprint() detect.Footprint {
	var f detect.Footprint
	w := r.warm
	if w == nil {
		return f
	}
	if w.engine != nil {
		f.Add(detect.FootprintOf(w.engine))
	}
	if w.cons != nil {
		f.Add(detect.FootprintOf(w.cons.engine))
	}
	for _, sw := range w.workers {
		f.Add(detect.FootprintOf(sw.engine))
	}
	return f
}

// Run executes root to completion (with an implicit final sync) and
// returns the report. The Runner's retained detector state is built on
// first use and auto-reset between runs, so repeated Runs reuse the same
// warm structures while each Run still observes fresh detector state.
func (r *Runner) Run(root TaskFunc) (*Report, error) {
	if r.dirty {
		r.Reset()
	}
	r.ensureWarm()
	r.dirty = true
	w := r.warm
	rep := &Report{}
	rs := &runState{parallel: r.opts.Parallel, tracer: r.opts.Tracer}
	var syncCol *stage.Collector
	if r.opts.Detector != DetectorOff {
		// ReachOnly isolates the reachability component: SP-Order is
		// maintained but memory hooks are skipped at the dispatch layer,
		// matching the paper's near-zero "reach." column.
		rs.hooks = r.opts.Detector != DetectorReachOnly
		maxRec := r.opts.MaxRacesRecorded
		switch {
		case r.opts.ParallelDetect:
			// Parallel execution with online detection: task goroutines emit
			// chunks onto a multi-producer queue, the merge stage
			// reconstructs the serial projection and labels it, and the
			// sharded worker graph consumes the result (parallel.go).
			rs.parallel = true
			rs.parPipe = w.as
			if w.as.graph == nil {
				w.as.graph = stage.NewGraph()
			}
			w.as.launchParallel(w.labels, w.workers, w.bcast, maxRec)
		case r.opts.Async:
			// Pipelined detection: SP-Order (or the depa labels, when
			// sharded) and the engine(s) live behind the event stream as a
			// stage graph; the consumer stages own the race collectors and
			// user OnRace calls. rep is safe to read once drain() has
			// waited out the graph.
			rs.async = w.as
			if w.as.graph == nil {
				w.as.graph = stage.NewGraph()
			}
			if w.workers != nil {
				// StampAuto reads the machine shape, so re-resolve the
				// stamping stage each run rather than freezing the
				// first run's answer into the warm state.
				w.as.setSharded(w.as.shards, w.as.summarize, r.opts.producerStamps())
				w.as.launchSharded(w.labels, w.workers, w.bcast, maxRec)
			} else {
				w.as.launchConsume(w.cons)
			}
		default:
			rs.sp = w.sp
			rs.engine = w.engine
			syncCol = w.col
		}
	}
	t := &Task{rs: rs}
	if rs.parallel {
		t.wg = &sync.WaitGroup{}
		if rs.parPipe != nil {
			t.par = newParTask(rs.parPipe, 0) // the root owns task identity 0
		}
	}
	// runtime/metrics instead of runtime.ReadMemStats: reading these two
	// counters does not stop the world, so the probe stays invisible even on
	// sub-millisecond runs. Both sample slices are allocated up front so the
	// delta only covers the user's program.
	before := [2]metrics.Sample{{Name: "/gc/heap/allocs:objects"}, {Name: "/gc/heap/allocs:bytes"}}
	after := before
	metrics.Read(before[:])
	start := time.Now()
	root(t)
	t.Sync()
	if rs.parPipe != nil {
		// The root's final chunk completes the serial projection; the
		// drain waits out the merge and worker graph.
		t.par.cut(evstream.ChunkRoot, 0)
		rs.parPipe.drainParallel()
	} else if rs.async != nil {
		// Flush the stream and join the detector goroutine: WallTime then
		// covers max(compute, detect) plus the residual drain, and Stats
		// are exact.
		rs.async.drain()
	} else if rs.engine != nil {
		rs.engine.Finish()
	}
	rep.WallTime = time.Since(start)
	metrics.Read(after[:])
	if pipe := rs.async; pipe != nil || rs.parPipe != nil {
		if pipe == nil {
			pipe = rs.parPipe
			rep.ExecutorBusy = time.Duration(pipe.execBusy.Load())
			rep.ReorderPeak = pipe.reorderPeak
		}
		rep.Strands = pipe.strands
		rep.Stats = pipe.stats
		rep.RaceCount = rep.Stats.Races
		rep.Races = pipe.races
		rep.SequencerBusy = pipe.seqBusy.Busy()
		rep.LabelViewSnapshots = pipe.viewSnaps
		if load := pipe.shardLoad; load != nil {
			rep.ShardLoad = load
			rep.ShardBusy = make([]time.Duration, len(load))
			for i, l := range load {
				rep.ShardBusy[i] = l.Busy
			}
		}
	} else {
		if rs.sp != nil {
			rep.Strands = rs.sp.StrandCount()
		}
		if rs.engine != nil {
			rep.Stats = *rs.engine.Stats()
			rep.RaceCount = rep.Stats.Races
		}
		if syncCol != nil {
			rep.Races = syncCol.Sorted()
		}
	}
	rep.Stats.AllocObjects = after[0].Value.Uint64() - before[0].Value.Uint64()
	rep.Stats.AllocBytes = after[1].Value.Uint64() - before[1].Value.Uint64()
	if err := r.capError(); err != nil {
		// A tripped MaxHistoryBytes is a structured abort, not a panic:
		// the engine froze at the cap and whatever it found before the
		// trip is discarded with the report. The Runner stays dirty, so
		// the next Run auto-resets — the same recovery contract as
		// trace.ErrTooManyEvents.
		return nil, err
	}
	return rep, nil
}

// capError collects the first history-cap error recorded by any of the
// Runner's engines (worker order, so the answer is deterministic for a
// deterministic workload split).
func (r *Runner) capError() error {
	w := r.warm
	if w == nil {
		return nil
	}
	if w.engine != nil {
		if err := detect.CapErrorOf(w.engine); err != nil {
			return err
		}
	}
	if w.cons != nil {
		if err := detect.CapErrorOf(w.cons.engine); err != nil {
			return err
		}
	}
	for _, sw := range w.workers {
		if err := detect.CapErrorOf(sw.engine); err != nil {
			return err
		}
	}
	return nil
}

// Spawn runs f as a subtask that is logically parallel with the caller's
// continuation. Under serial detection f executes immediately (depth-first,
// matching the sequential order race detection requires); with
// Options.Parallel it runs on its own goroutine. Every task ends with an
// implicit Sync.
func (t *Task) Spawn(f TaskFunc) {
	rs := t.rs
	if rs.parallel {
		if p := t.par; p != nil {
			// ParallelDetect: end the caller's strand here — its chunk's
			// terminator is the spawn, naming the child task so the merge
			// walks the child's subtree before the caller's continuation.
			// The child goroutine emits its own chunks under a fresh task
			// identity and seals them with a task-end terminator after its
			// implicit final sync.
			t.tracePending = true
			childID := p.as.nextTask.Add(1)
			p.cut(evstream.ChunkSpawn, childID)
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				child := &Task{rs: rs, wg: &sync.WaitGroup{}, par: newParTask(p.as, childID)}
				f(child)
				child.Sync()
				child.par.cut(evstream.ChunkTask, 0)
			}()
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			child := &Task{rs: rs, wg: &sync.WaitGroup{}}
			f(child)
			child.Sync()
		}()
		return
	}
	if rs.tracer != nil {
		rs.tracer.Spawn()
	}
	t.tracePending = true
	if as := rs.async; as != nil {
		// Pipelined: the structure events travel the stream; SP-Order is
		// maintained by the consumer. Execution stays depth-first serial.
		as.emitCtl(evstream.OpSpawn)
		child := rs.getTask()
		f(child)
		child.Sync()
		rs.putTask(child)
		as.emitCtl(evstream.OpRestore)
		if rs.tracer != nil {
			rs.tracer.Restore()
		}
		return
	}
	if rs.sp == nil { // DetectorOff, serial
		child := rs.getTask()
		f(child)
		child.Sync()
		rs.putTask(child)
		if rs.tracer != nil {
			rs.tracer.Restore()
		}
		return
	}
	rs.engine.StrandEnd()
	_, cont := rs.sp.Spawn(&t.frame)
	child := rs.getTask()
	f(child)
	child.Sync()
	rs.putTask(child)
	rs.engine.StrandEnd() // the child's final strand ends here
	rs.sp.Restore(cont)
	if rs.tracer != nil {
		rs.tracer.Restore()
	}
}

// Sync joins every subtask spawned by this task since its last Sync. A
// Sync with no outstanding spawns is a no-op and does not end the strand.
func (t *Task) Sync() {
	rs := t.rs
	if rs.parallel {
		if p := t.par; p != nil && t.tracePending {
			// Strand-creating sync (no-op syncs are elided, exactly as on
			// the serial paths): the current chunk ends at the sync.
			p.cut(evstream.ChunkSync, 0)
			t.tracePending = false
		}
		if p := t.par; p != nil {
			// The join is idle time, not execution.
			p.pause()
			t.wg.Wait()
			p.resume()
			return
		}
		t.wg.Wait()
		return
	}
	if rs.tracer != nil && t.tracePending {
		rs.tracer.Sync()
	}
	if as := rs.async; as != nil {
		// Only strand-creating syncs travel the stream; tracePending
		// mirrors frame.Pending for exactly this purpose.
		if t.tracePending {
			as.emitCtl(evstream.OpSync)
		}
		t.tracePending = false
		return
	}
	t.tracePending = false
	if rs.sp == nil {
		return
	}
	if t.frame.Pending() {
		rs.engine.StrandEnd()
		rs.sp.Sync(&t.frame)
	}
}

// Load reports a read of element i of b (per-access instrumentation, like
// the paper's __load_hook).
func (t *Task) Load(b *Buffer, i int) {
	rs := t.rs
	if !rs.hooks && rs.tracer == nil {
		return
	}
	addr, size := b.Addr(i), uint64(b.ElemBytes())
	if rs.hooks {
		if as := rs.async; as != nil {
			as.emitAccess(evstream.OpRead, addr, size)
		} else if e := rs.engine; e != nil {
			e.ReadHook(addr, size)
		} else {
			t.par.emitAccess(evstream.OpRead, addr, size)
		}
	}
	if rs.tracer != nil {
		rs.tracer.Read(addr, size)
	}
}

// Store reports a write of element i of b.
func (t *Task) Store(b *Buffer, i int) {
	rs := t.rs
	if !rs.hooks && rs.tracer == nil {
		return
	}
	addr, size := b.Addr(i), uint64(b.ElemBytes())
	if rs.hooks {
		if as := rs.async; as != nil {
			as.emitAccess(evstream.OpWrite, addr, size)
		} else if e := rs.engine; e != nil {
			e.WriteHook(addr, size)
		} else {
			t.par.emitAccess(evstream.OpWrite, addr, size)
		}
	}
	if rs.tracer != nil {
		rs.tracer.Write(addr, size)
	}
}

// LoadRange reports a compiler-coalesced read of elements [i, i+n) of b
// (the paper's __coalesced_load_hook): use it exactly where a compiler
// could prove the enclosing loop reads a contiguous range.
func (t *Task) LoadRange(b *Buffer, i, n int) {
	rs := t.rs
	if (!rs.hooks && rs.tracer == nil) || n == 0 {
		return
	}
	addr, _ := b.Range(i, n)
	if rs.hooks {
		if as := rs.async; as != nil {
			as.emitRange(evstream.OpReadRange, addr, n, uint64(b.ElemBytes()))
		} else if e := rs.engine; e != nil {
			e.ReadRangeHook(addr, n, uint64(b.ElemBytes()))
		} else {
			t.par.emitRange(evstream.OpReadRange, addr, n, uint64(b.ElemBytes()))
		}
	}
	if rs.tracer != nil {
		rs.tracer.ReadRange(addr, n, uint64(b.ElemBytes()))
	}
}

// StoreRange reports a compiler-coalesced write of elements [i, i+n) of b.
func (t *Task) StoreRange(b *Buffer, i, n int) {
	rs := t.rs
	if (!rs.hooks && rs.tracer == nil) || n == 0 {
		return
	}
	addr, _ := b.Range(i, n)
	if rs.hooks {
		if as := rs.async; as != nil {
			as.emitRange(evstream.OpWriteRange, addr, n, uint64(b.ElemBytes()))
		} else if e := rs.engine; e != nil {
			e.WriteRangeHook(addr, n, uint64(b.ElemBytes()))
		} else {
			t.par.emitRange(evstream.OpWriteRange, addr, n, uint64(b.ElemBytes()))
		}
	}
	if rs.tracer != nil {
		rs.tracer.WriteRange(addr, n, uint64(b.ElemBytes()))
	}
}

// checkAccess rejects per-access sizes beyond the event encodings' shared
// 56-bit field, so sync and async runs accept exactly the same programs (the
// encodings would otherwise panic only on the async path). Like checkRange,
// it guards only the raw-address hooks — arena-backed accesses are bounded
// by their Buffer.
func checkAccess(size uint64) {
	if size > evstream.MaxAccessSize {
		panic(fmt.Sprintf("stint: access size %d outside [0, 2^56)", size))
	}
}

// LoadAt and StoreAt report raw-address accesses for callers managing their
// own layout on top of the Arena. Sizes of 2^56+ bytes panic.
func (t *Task) LoadAt(addr Addr, size uint64) {
	rs := t.rs
	checkAccess(size)
	if rs.hooks {
		if as := rs.async; as != nil {
			as.emitAccess(evstream.OpRead, addr, size)
		} else if e := rs.engine; e != nil {
			e.ReadHook(addr, size)
		} else {
			t.par.emitAccess(evstream.OpRead, addr, size)
		}
	}
	if rs.tracer != nil {
		rs.tracer.Read(addr, size)
	}
}

// StoreAt reports a raw-address write; see LoadAt (including its size
// guard).
func (t *Task) StoreAt(addr Addr, size uint64) {
	rs := t.rs
	checkAccess(size)
	if rs.hooks {
		if as := rs.async; as != nil {
			as.emitAccess(evstream.OpWrite, addr, size)
		} else if e := rs.engine; e != nil {
			e.WriteHook(addr, size)
		} else {
			t.par.emitAccess(evstream.OpWrite, addr, size)
		}
	}
	if rs.tracer != nil {
		rs.tracer.Write(addr, size)
	}
}

// checkRange rejects range-hook operands the pipeline cannot represent: a
// count or element size outside the event encoding's fields (which would
// silently truncate into a different, smaller range) or a span wrapping the
// address space (which would mis-split across bogus low pages). The
// arena-backed LoadRange/StoreRange can never trip it — Buffer.Range bounds
// the span — so the guard lives only on the raw-address hooks, where the
// caller manages its own layout.
func checkRange(addr Addr, count int, elemBytes uint64) {
	if count < 0 || uint64(count) > evstream.MaxRangeCount {
		panic(fmt.Sprintf("stint: range count %d outside [0, 2^32)", count))
	}
	if elemBytes > evstream.MaxRangeElem {
		panic(fmt.Sprintf("stint: range element size %d outside [0, 2^24)", elemBytes))
	}
	if size := uint64(count) * elemBytes; size > 0 && addr+size-1 < addr {
		panic(fmt.Sprintf("stint: range [%#x, %#x+%d) wraps the address space", addr, addr, size))
	}
}

// LoadRangeAt reports a compiler-coalesced read of count elements of
// elemBytes each starting at a raw address, for callers managing their own
// layout on top of the Arena (the raw-address sibling of LoadRange).
// Operands the detector cannot represent — a negative or 2^32+ count, an
// element size of 2^24+ bytes, or a span wrapping the address space —
// panic.
func (t *Task) LoadRangeAt(addr Addr, count int, elemBytes uint64) {
	rs := t.rs
	if count == 0 {
		return
	}
	checkRange(addr, count, elemBytes)
	if rs.hooks {
		if as := rs.async; as != nil {
			as.emitRange(evstream.OpReadRange, addr, count, elemBytes)
		} else if e := rs.engine; e != nil {
			e.ReadRangeHook(addr, count, elemBytes)
		} else {
			t.par.emitRange(evstream.OpReadRange, addr, count, elemBytes)
		}
	}
	if rs.tracer != nil {
		rs.tracer.ReadRange(addr, count, elemBytes)
	}
}

// StoreRangeAt reports a compiler-coalesced write at a raw address; see
// LoadRangeAt (including its operand guards).
func (t *Task) StoreRangeAt(addr Addr, count int, elemBytes uint64) {
	rs := t.rs
	if count == 0 {
		return
	}
	checkRange(addr, count, elemBytes)
	if rs.hooks {
		if as := rs.async; as != nil {
			as.emitRange(evstream.OpWriteRange, addr, count, elemBytes)
		} else if e := rs.engine; e != nil {
			e.WriteRangeHook(addr, count, elemBytes)
		} else {
			t.par.emitRange(evstream.OpWriteRange, addr, count, elemBytes)
		}
	}
	if rs.tracer != nil {
		rs.tracer.WriteRange(addr, count, elemBytes)
	}
}

// Detecting reports whether instrumentation is live — a detector is
// consuming hooks or a Tracer is recording them — letting hot loops skip
// address computation entirely when it is not.
func (t *Task) Detecting() bool { return t.rs.hooks || t.rs.tracer != nil }

// DescribeRace renders a race with addresses resolved to buffer names and
// element ranges via the arena that allocated them, e.g.
//
//	race: write by strand 3 and write by strand 5 on mmul.C[128:160]
//
// Addresses outside any buffer fall back to the numeric form.
func DescribeRace(a *Arena, rc Race) string {
	buf, first := a.Resolve(rc.Addr)
	if buf == nil {
		return rc.String()
	}
	// The overlap range is half-open; resolve its last byte to keep the
	// element range within one buffer.
	lastBuf, last := a.Resolve(rc.Addr + rc.Size - 1)
	kind := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	loc := fmt.Sprintf("%s[%d]", buf.Name(), first)
	if lastBuf == buf && last != first {
		loc = fmt.Sprintf("%s[%d:%d]", buf.Name(), first, last+1)
	}
	return fmt.Sprintf("race: %s by strand %d and %s by strand %d on %s",
		kind(rc.PrevWrite), rc.Prev, kind(rc.CurWrite), rc.Cur, loc)
}

// DescribeRace renders a race against this Runner's arena; see the
// package-level DescribeRace.
func (r *Runner) DescribeRace(rc Race) string { return DescribeRace(r.arena, rc) }

// ParseDetector converts a detector name ("vanilla", "comp+rts", "stint",
// ...) to a Detector, for CLI tools.
func ParseDetector(s string) (Detector, error) {
	m, err := detect.ParseMode(s)
	if err != nil {
		return DetectorOff, fmt.Errorf("stint: %w", err)
	}
	return m, nil
}
