package trace

import (
	"bytes"
	"io"
	"testing"

	"stint"
)

// buildTrace records a medium fork-join program once.
func buildTrace(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	r, err := stint.NewRunner(stint.Options{Tracer: rec})
	if err != nil {
		b.Fatal(err)
	}
	data := r.Arena().AllocWords("data", 1<<16)
	var rec2 func(t *stint.Task, lo, hi int)
	rec2 = func(t *stint.Task, lo, hi int) {
		if hi-lo <= 1024 {
			t.LoadRange(data, lo, hi-lo)
			for i := lo; i < hi; i += 4 {
				t.Store(data, i)
			}
			return
		}
		mid := (lo + hi) / 2
		t.Spawn(func(c *stint.Task) { rec2(c, lo, mid) })
		t.Spawn(func(c *stint.Task) { rec2(c, mid, hi) })
		t.Sync()
	}
	if _, err := r.Run(func(t *stint.Task) { rec2(t, 0, 1<<16) }); err != nil {
		b.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkRecordOverhead(b *testing.B) {
	r, err := stint.NewRunner(stint.Options{Tracer: NewRecorder(io.Discard)})
	if err != nil {
		b.Fatal(err)
	}
	data := r.Arena().AllocWords("data", 1<<16)
	if _, err := r.Run(func(t *stint.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Load(data, i&(1<<16-1))
		}
		b.StopTimer()
	}); err != nil {
		b.Fatal(err)
	}
}

// benchReplay replays the shared trace b.N times through one reused Runner
// (Run auto-resets between replays), so the loop measures steady-state
// replay over warm pools rather than Runner construction.
func benchReplay(b *testing.B, detector stint.Detector) {
	raw := buildTrace(b)
	r, err := stint.NewRunner(stint.Options{Detector: detector, MaxRacesRecorded: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(bytes.NewReader(raw), Options{Runner: r}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplaySTINT(b *testing.B) { benchReplay(b, stint.DetectorSTINT) }

func BenchmarkReplayVanilla(b *testing.B) { benchReplay(b, stint.DetectorVanilla) }
