package trace_test

import (
	"bytes"
	"fmt"

	"stint"
	"stint/trace"
)

// Record an execution once (here with detection off), then analyze the
// trace under two different detectors without re-running the program.
func ExampleReplay() {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	r, _ := stint.NewRunner(stint.Options{Tracer: rec})
	data := r.Arena().AllocWords("data", 64)
	r.Run(func(t *stint.Task) {
		t.Spawn(func(c *stint.Task) { c.StoreRange(data, 0, 32) })
		t.StoreRange(data, 16, 32)
		t.Sync()
	})
	rec.Flush()

	for _, d := range []stint.Detector{stint.DetectorVanilla, stint.DetectorSTINT} {
		rep, _ := trace.Replay(bytes.NewReader(buf.Bytes()), trace.Options{Detector: d})
		fmt.Printf("%v found races: %v\n", d, rep.Racy())
	}
	// Output:
	// vanilla found races: true
	// stint found races: true
}
