// Package trace records instrumented fork-join executions to a compact
// binary stream and replays them through any detector configuration.
//
// A trace captures everything race detection needs — the spawn/sync
// structure (from which SP-Order reachability is rebuilt) and the memory
// access events with their coalescing level — but not the computation
// itself. Recording is cheap enough to run with detection off; the trace
// can then be analyzed offline under every detector without re-executing
// the program:
//
//	// record once
//	var buf bytes.Buffer
//	rec := trace.NewRecorder(&buf)
//	r, _ := stint.NewRunner(stint.Options{Tracer: rec})
//	r.Run(program)
//	rec.Flush()
//
//	// replay under any detector
//	rep, _ := trace.Replay(bytes.NewReader(buf.Bytes()),
//	    trace.Options{Detector: stint.DetectorSTINT})
//
// The format is a magic header followed by one-byte opcodes with uvarint
// operands. Addresses are delta-encoded against the previous event's
// address (zig-zag varints), which keeps traces of loop-heavy programs
// small.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"stint"
	"stint/internal/evstream"
	"stint/internal/mem"
)

// Opcode values. The on-disk format is stable: new opcodes may be added,
// existing ones never change meaning.
const (
	opSpawn      = 0x01 // begin a spawned child task
	opRestore    = 0x02 // child returned; resume the continuation
	opSync       = 0x03 // sync with pending spawns (no-op syncs are elided)
	opRead       = 0x10 // addrDelta, size
	opWrite      = 0x11 // addrDelta, size
	opReadRange  = 0x12 // addrDelta, count, elemBytes
	opWriteRange = 0x13 // addrDelta, count, elemBytes
	opEnd        = 0x7F // end of trace
)

var magic = [8]byte{'S', 'T', 'N', 'T', 'T', 'R', 'C', '1'}

// Recorder implements stint.Tracer, serializing events to an io.Writer.
// Recorders are not safe for concurrent use; record serial executions only.
type Recorder struct {
	w        *bufio.Writer
	lastAddr mem.Addr
	err      error
	wroteHdr bool
	buf      [3 * binary.MaxVarintLen64]byte
}

// NewRecorder returns a Recorder writing to w. Call Flush when the run
// completes.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriterSize(w, 1<<16)}
}

func (r *Recorder) header() {
	if !r.wroteHdr {
		r.wroteHdr = true
		_, err := r.w.Write(magic[:])
		r.setErr(err)
	}
}

func (r *Recorder) setErr(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

func (r *Recorder) op(code byte) {
	r.header()
	r.setErr(r.w.WriteByte(code))
}

// delta zig-zag-encodes the address movement since the last event.
func (r *Recorder) addrOperand(addr mem.Addr) uint64 {
	d := int64(addr) - int64(r.lastAddr)
	r.lastAddr = addr
	return uint64((d << 1) ^ (d >> 63))
}

func (r *Recorder) varints(vals ...uint64) {
	n := 0
	for _, v := range vals {
		n += binary.PutUvarint(r.buf[n:], v)
	}
	_, err := r.w.Write(r.buf[:n])
	r.setErr(err)
}

// Spawn records the start of a spawned child.
func (r *Recorder) Spawn() { r.op(opSpawn) }

// Restore records a child's return to its parent's continuation.
func (r *Recorder) Restore() { r.op(opRestore) }

// Sync records a strand-creating sync.
func (r *Recorder) Sync() { r.op(opSync) }

// Read records a per-access load.
func (r *Recorder) Read(addr mem.Addr, size uint64) {
	r.op(opRead)
	r.varints(r.addrOperand(addr), size)
}

// Write records a per-access store.
func (r *Recorder) Write(addr mem.Addr, size uint64) {
	r.op(opWrite)
	r.varints(r.addrOperand(addr), size)
}

// ReadRange records a compiler-coalesced load.
func (r *Recorder) ReadRange(addr mem.Addr, count int, elemBytes uint64) {
	r.op(opReadRange)
	r.varints(r.addrOperand(addr), uint64(count), elemBytes)
}

// WriteRange records a compiler-coalesced store.
func (r *Recorder) WriteRange(addr mem.Addr, count int, elemBytes uint64) {
	r.op(opWriteRange)
	r.varints(r.addrOperand(addr), uint64(count), elemBytes)
}

// Flush terminates and flushes the trace. The Recorder must not be used
// afterwards.
func (r *Recorder) Flush() error {
	r.op(opEnd)
	r.setErr(r.w.Flush())
	return r.err
}

// Options configures a replay.
type Options struct {
	// Detector selects the engine (DetectorOff is useless here and treated
	// as an error — a trace exists to be analyzed).
	Detector stint.Detector
	// OnRace receives every race found during replay.
	OnRace func(stint.Race)
	// MaxRacesRecorded bounds Report.Races (default 64).
	MaxRacesRecorded int
	// TimeAccessHistory enables the access-history timers.
	TimeAccessHistory bool
	// Async replays through the pipelined detector (stint.Options.Async):
	// the decoder goroutine streams events to a detector goroutine instead
	// of detecting inline. The Report is identical either way.
	Async bool
	// Shards > 0 additionally partitions detection across that many workers
	// (stint.Options.DetectShards; implies Async): replay then runs the
	// same stage graph a live run does — label stage, broadcast ring, and
	// worker-side page splitting. Subject to the same detector restrictions
	// as the live option.
	Shards int
	// NoCompact replays the async pipeline over the fixed 16-byte event
	// encoding instead of the default compact one
	// (stint.Options.DisableCompactEvents); ignored without Async/Shards.
	NoCompact bool
	// Runner, when non-nil, replays through the caller's Runner instead of
	// constructing a fresh one. The Runner's own Options govern the replay:
	// every other field here except MaxEvents is ignored. Run auto-resets a
	// dirty Runner, so a long-lived Runner can serve many Replay calls with
	// its warm state — reports are byte-identical to fresh-Runner replays.
	// The Runner must not be used concurrently by other callers.
	Runner *stint.Runner
	// MaxEvents, when > 0, bounds the number of trace events (structure and
	// access) a replay will consume. A trace exceeding the budget aborts
	// with an error matching ErrTooManyEvents; the Runner (caller-provided
	// or internal) stays valid — its next Run resets it.
	MaxEvents uint64
	// PageQuiesceThreshold retires a shadow page's access history after it
	// produces this many races (stint.Options.PageQuiesceThreshold). Zero
	// disables quiescing.
	PageQuiesceThreshold int
	// MaxHistoryBytes caps the detector's retained access-history
	// footprint (stint.Options.MaxHistoryBytes). A replay exceeding the
	// cap aborts with an error matching stint.ErrHistoryCap; the Runner
	// stays valid, like MaxEvents.
	MaxHistoryBytes int64
}

// ErrTooManyEvents is returned (wrapped) by Replay when the trace exceeds
// Options.MaxEvents. Use errors.Is to test for it.
var ErrTooManyEvents = errors.New("trace: event budget exceeded")

// decoder drives a replayed execution through the public stint API: the
// trace's structure events become Task.Spawn/Sync calls and its access
// events become the *At hooks, so a replay exercises exactly the machinery
// a live run does — including, when requested, the async pipeline and
// sharded detection.
type decoder struct {
	br        *bufio.Reader
	lastAddr  mem.Addr
	err       error
	maxEvents uint64 // 0 = unbounded
	events    uint64
}

// charge debits one event from the budget, failing the decode when the
// budget is exhausted. Called before the corresponding API call, so an
// oversized trace stops injecting work the moment it crosses the cap.
func (d *decoder) charge() bool {
	d.events++
	if d.maxEvents > 0 && d.events > d.maxEvents {
		d.fail(fmt.Errorf("%w: trace exceeds %d events", ErrTooManyEvents, d.maxEvents))
		return false
	}
	return true
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) readAddr() (stint.Addr, error) {
	raw, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, err
	}
	delta := int64(raw>>1) ^ -int64(raw&1)
	d.lastAddr = mem.Addr(int64(d.lastAddr) + delta)
	return d.lastAddr, nil
}

// replayBody consumes one task instance's events: up to its opRestore for
// a spawned child (depth > 0), or up to opEnd for the root. Structural
// validation happens before the corresponding API call, so an invalid
// trace aborts without corrupting the run.
func (d *decoder) replayBody(t *stint.Task, depth int) {
	pending := 0 // spawns since the last sync
	for d.err == nil {
		code, err := d.br.ReadByte()
		if err != nil {
			d.fail(fmt.Errorf("trace: truncated stream: %w", err))
			return
		}
		switch code {
		case opEnd:
			if depth > 0 {
				d.fail(fmt.Errorf("trace: %d unterminated tasks at end of trace", depth))
			}
			return

		case opSpawn:
			if !d.charge() {
				return
			}
			pending++
			t.Spawn(func(c *stint.Task) { d.replayBody(c, depth+1) })

		case opRestore:
			if depth == 0 {
				d.fail(errors.New("trace: restore without matching spawn"))
				return
			}
			if pending > 0 {
				// The recorder elides nothing here: the implicit end-of-task
				// sync is recorded, so pending spawns at restore mean the
				// trace was cut mid-task.
				d.fail(errors.New("trace: child returned with pending spawns"))
			}
			return

		case opSync:
			if pending == 0 {
				d.fail(errors.New("trace: sync without pending spawns"))
				return
			}
			pending = 0
			if !d.charge() {
				return
			}
			t.Sync()

		case opRead, opWrite:
			if !d.charge() {
				return
			}
			addr, err := d.readAddr()
			if err == nil {
				var size uint64
				size, err = binary.ReadUvarint(d.br)
				if err == nil {
					// Validate before handing to the hook layer: LoadAt
					// panics on sizes beyond the encodings' 56-bit field,
					// but a corrupt or adversarial trace must surface as a
					// decode error, not a panic.
					if size > evstream.MaxAccessSize {
						d.fail(fmt.Errorf("trace: access event size %d outside the representable field", size))
						return
					}
					if code == opRead {
						t.LoadAt(addr, size)
					} else {
						t.StoreAt(addr, size)
					}
				}
			}
			if err != nil {
				d.fail(fmt.Errorf("trace: access event: %w", err))
				return
			}

		case opReadRange, opWriteRange:
			if !d.charge() {
				return
			}
			addr, err := d.readAddr()
			var count, elem uint64
			if err == nil {
				count, err = binary.ReadUvarint(d.br)
			}
			if err == nil {
				elem, err = binary.ReadUvarint(d.br)
			}
			if err != nil {
				d.fail(fmt.Errorf("trace: range event: %w", err))
				return
			}
			// Validate before handing to the hook layer: LoadRangeAt panics
			// on unrepresentable ranges, but a corrupt or adversarial trace
			// must surface as a decode error, not a panic.
			if count > evstream.MaxRangeCount || elem > evstream.MaxRangeElem {
				d.fail(fmt.Errorf("trace: range event count %d elem %d outside the representable fields", count, elem))
				return
			}
			if size := count * elem; size > 0 && addr+size-1 < addr {
				d.fail(fmt.Errorf("trace: range event at %#x spanning %d bytes wraps the address space", addr, size))
				return
			}
			if code == opReadRange {
				t.LoadRangeAt(addr, int(count), elem)
			} else {
				t.StoreRangeAt(addr, int(count), elem)
			}

		default:
			d.fail(fmt.Errorf("trace: unknown opcode %#x", code))
			return
		}
	}
}

// Replay reads a trace and runs the selected detector over it, returning
// the same Report a live run would have produced (modulo wall time).
func Replay(src io.Reader, opts Options) (*stint.Report, error) {
	if opts.Runner == nil && opts.Detector == stint.DetectorOff {
		return nil, errors.New("trace: replay needs a detector (got DetectorOff)")
	}
	if opts.MaxRacesRecorded == 0 {
		opts.MaxRacesRecorded = stint.DefaultMaxRacesRecorded
	}
	br := bufio.NewReaderSize(src, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}

	r := opts.Runner
	if r == nil {
		var err error
		r, err = stint.NewRunner(stint.Options{
			Detector:             opts.Detector,
			OnRace:               opts.OnRace,
			MaxRacesRecorded:     opts.MaxRacesRecorded,
			TimeAccessHistory:    opts.TimeAccessHistory,
			Async:                opts.Async || opts.Shards > 0,
			DetectShards:         opts.Shards,
			DisableCompactEvents: opts.NoCompact,
			PageQuiesceThreshold: opts.PageQuiesceThreshold,
			MaxHistoryBytes:      opts.MaxHistoryBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	d := &decoder{br: br, maxEvents: opts.MaxEvents}
	rep, runErr := r.Run(func(task *stint.Task) { d.replayBody(task, 0) })
	if d.err != nil {
		return nil, d.err
	}
	if runErr != nil {
		return nil, fmt.Errorf("trace: %w", runErr)
	}
	return rep, nil
}
