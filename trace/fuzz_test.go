package trace

import (
	"bytes"
	"testing"

	"stint"
)

// FuzzReplay feeds arbitrary bytes to the replay parser: it must reject or
// process them without panicking, for any detector.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(magic[:])
	f.Add(append(append([]byte{}, magic[:]...), opEnd))
	f.Add(append(append([]byte{}, magic[:]...), opSpawn, opRestore, opEnd))
	f.Add(append(append([]byte{}, magic[:]...), opRead, 0x10, 0x08, opEnd))
	// A valid recorded program as a seed.
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	r, _ := stint.NewRunner(stint.Options{Tracer: rec})
	data := r.Arena().AllocWords("d", 16)
	r.Run(func(t *stint.Task) {
		t.Spawn(func(c *stint.Task) { c.Store(data, 1) })
		t.Store(data, 1)
		t.Sync()
	})
	rec.Flush()
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, d := range []stint.Detector{stint.DetectorVanilla, stint.DetectorSTINT} {
			rep, err := Replay(bytes.NewReader(raw), Options{Detector: d})
			if err == nil && rep == nil {
				t.Fatal("nil report without error")
			}
		}
	})
}
