package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"stint"
)

// program is a replayable random fork-join program (same scheme as the
// root package's equivalence tests).
type action struct {
	kind byte // 'S' spawn, 'Y' sync, 'l' load, 's' store, 'L' load-range, 'W' store-range
	idx  int
	n    int
	body []action
}

func genActions(rng *rand.Rand, depth, bufWords int) []action {
	n := rng.Intn(6)
	acts := make([]action, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 3 && depth > 0:
			acts = append(acts, action{kind: 'S', body: genActions(rng, depth-1, bufWords)})
		case k == 3:
			acts = append(acts, action{kind: 'Y'})
		default:
			idx := rng.Intn(bufWords)
			a := action{kind: []byte{'l', 's', 'L', 'W'}[rng.Intn(4)], idx: idx}
			if a.kind == 'L' || a.kind == 'W' {
				a.n = rng.Intn(bufWords-idx) + 1
			}
			acts = append(acts, a)
		}
	}
	return acts
}

func runActions(t *stint.Task, buf *stint.Buffer, acts []action) {
	for _, a := range acts {
		switch a.kind {
		case 'S':
			body := a.body
			t.Spawn(func(c *stint.Task) { runActions(c, buf, body) })
		case 'Y':
			t.Sync()
		case 'l':
			t.Load(buf, a.idx)
		case 's':
			t.Store(buf, a.idx)
		case 'L':
			t.LoadRange(buf, a.idx, a.n)
		case 'W':
			t.StoreRange(buf, a.idx, a.n)
		}
	}
}

const bufWords = 64

// record runs acts with a Recorder attached (and no detector) and returns
// the trace bytes.
func record(t *testing.T, acts []action) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	r, err := stint.NewRunner(stint.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	data := r.Arena().AllocWords("data", bufWords)
	if _, err := r.Run(func(task *stint.Task) { runActions(task, data, acts) }); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// direct runs acts live under the given detector.
func direct(t *testing.T, acts []action, d stint.Detector) *stint.Report {
	t.Helper()
	r, err := stint.NewRunner(stint.Options{Detector: d, MaxRacesRecorded: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	data := r.Arena().AllocWords("data", bufWords)
	rep, err := r.Run(func(task *stint.Task) { runActions(task, data, acts) })
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func raceWords(races []stint.Race) map[uint64]bool {
	words := make(map[uint64]bool)
	for _, rc := range races {
		for a := rc.Addr &^ 3; a < rc.Addr+rc.Size; a += 4 {
			words[a] = true
		}
	}
	return words
}

func TestReplayMatchesDirectRun(t *testing.T) {
	detectors := []stint.Detector{
		stint.DetectorVanilla, stint.DetectorCompiler,
		stint.DetectorCompRTS, stint.DetectorSTINT,
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		acts := genActions(rng, 4, bufWords)
		raw := record(t, acts)
		for _, d := range detectors {
			live := direct(t, acts, d)
			replayed, err := Replay(bytes.NewReader(raw), Options{Detector: d, MaxRacesRecorded: 1 << 20})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, d, err)
			}
			if live.RaceCount != replayed.RaceCount {
				t.Fatalf("seed %d %v: race count %d live vs %d replayed", seed, d, live.RaceCount, replayed.RaceCount)
			}
			if live.Strands != replayed.Strands {
				t.Fatalf("seed %d %v: strands %d live vs %d replayed", seed, d, live.Strands, replayed.Strands)
			}
			lw, rw := raceWords(live.Races), raceWords(replayed.Races)
			if len(lw) != len(rw) {
				t.Fatalf("seed %d %v: racing word sets differ (%d vs %d)", seed, d, len(lw), len(rw))
			}
			for w := range lw {
				if !rw[w] {
					t.Fatalf("seed %d %v: replay missed racing word %#x", seed, d, w)
				}
			}
			ls, rs := live.Stats, replayed.Stats
			if ls.ReadAccesses != rs.ReadAccesses || ls.WriteAccesses != rs.WriteAccesses ||
				ls.ReadIntervals != rs.ReadIntervals || ls.WriteIntervals != rs.WriteIntervals {
				t.Fatalf("seed %d %v: stats diverge\nlive:   %+v\nreplay: %+v", seed, d, ls, rs)
			}
		}
	}
}

func TestReplayAsyncAndShardedMatchSync(t *testing.T) {
	// Replaying through the async pipeline — and through sharded detection —
	// must reproduce the synchronous replay's Report exactly: same canonical
	// races, same strand count, same deterministic counters.
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		acts := genActions(rng, 4, bufWords)
		raw := record(t, acts)
		sync, err := Replay(bytes.NewReader(raw), Options{Detector: stint.DetectorSTINT, MaxRacesRecorded: 1 << 20})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, opts := range []Options{
			{Detector: stint.DetectorSTINT, MaxRacesRecorded: 1 << 20, Async: true},
			{Detector: stint.DetectorSTINT, MaxRacesRecorded: 1 << 20, Shards: 2},
			{Detector: stint.DetectorCompRTS, MaxRacesRecorded: 1 << 20, Shards: 3},
		} {
			got, err := Replay(bytes.NewReader(raw), opts)
			if err != nil {
				t.Fatalf("seed %d %+v: %v", seed, opts, err)
			}
			if got.Strands != sync.Strands {
				t.Fatalf("seed %d %+v: strands %d vs sync %d", seed, opts, got.Strands, sync.Strands)
			}
			if opts.Detector == stint.DetectorSTINT {
				if got.RaceCount != sync.RaceCount || !reflect.DeepEqual(got.Races, sync.Races) {
					t.Fatalf("seed %d %+v: races diverge from sync replay", seed, opts)
				}
			} else if (got.RaceCount > 0) != (sync.RaceCount > 0) {
				t.Fatalf("seed %d %+v: verdict %v vs sync %v", seed, opts, got.Racy(), sync.Racy())
			}
		}
	}
	// Shards with an unsupported detector surface the live validation error.
	raw := record(t, []action{{kind: 's', idx: 1}})
	if _, err := Replay(bytes.NewReader(raw), Options{Detector: stint.DetectorVanilla, Shards: 2}); err == nil {
		t.Error("sharded replay accepted DetectorVanilla")
	}
}

func TestRecordingAlongsideDetection(t *testing.T) {
	// Tracing can run on top of a live detector; the replayed race count
	// matches what the live detector saw.
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	data := r.Arena().AllocWords("data", 32)
	live, err := r.Run(func(task *stint.Task) {
		task.Spawn(func(c *stint.Task) { c.StoreRange(data, 0, 16) })
		task.StoreRange(data, 8, 16)
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(bytes.NewReader(buf.Bytes()), Options{Detector: stint.DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	if !live.Racy() || live.RaceCount != rep.RaceCount {
		t.Fatalf("live %d races, replay %d", live.RaceCount, rep.RaceCount)
	}
}

func TestTraceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	acts := genActions(rng, 3, bufWords)
	a := record(t, acts)
	b := record(t, acts)
	if !bytes.Equal(a, b) {
		t.Fatal("recording the same program twice produced different traces")
	}
}

func TestTraceCompactness(t *testing.T) {
	// Sequential word accesses delta-encode to ~3 bytes per event.
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	r, _ := stint.NewRunner(stint.Options{Tracer: rec})
	data := r.Arena().AllocWords("data", 10000)
	if _, err := r.Run(func(task *stint.Task) {
		for i := 0; i < 10000; i++ {
			task.Load(data, i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	perEvent := float64(buf.Len()) / 10000
	if perEvent > 4 {
		t.Errorf("trace uses %.1f bytes per sequential access, want <= 4", perEvent)
	}
}

func TestReplayErrors(t *testing.T) {
	good := record(t, []action{{kind: 's', idx: 1}})
	cases := []struct {
		name string
		data []byte
		opts Options
	}{
		{"empty", nil, Options{Detector: stint.DetectorSTINT}},
		{"bad magic", []byte("NOTATRACE!"), Options{Detector: stint.DetectorSTINT}},
		{"truncated", good[:len(good)-2], Options{Detector: stint.DetectorSTINT}},
		{"detector off", good, Options{}},
		{"garbage opcode", append(append([]byte{}, good[:8]...), 0x55), Options{Detector: stint.DetectorSTINT}},
	}
	for _, c := range cases {
		if _, err := Replay(bytes.NewReader(c.data), c.opts); err == nil {
			t.Errorf("%s: replay accepted invalid input", c.name)
		}
	}
}

func TestReplayStructuralErrors(t *testing.T) {
	// A restore without a spawn is structurally invalid.
	raw := append(append([]byte{}, magic[:]...), opRestore, opEnd)
	if _, err := Replay(bytes.NewReader(raw), Options{Detector: stint.DetectorVanilla}); err == nil {
		t.Error("replay accepted restore without spawn")
	}
	// A sync without pending spawns is invalid too.
	raw = append(append([]byte{}, magic[:]...), opSync, opEnd)
	if _, err := Replay(bytes.NewReader(raw), Options{Detector: stint.DetectorVanilla}); err == nil {
		t.Error("replay accepted sync without spawns")
	}
	// An unterminated spawn.
	raw = append(append([]byte{}, magic[:]...), opSpawn, opEnd)
	if _, err := Replay(bytes.NewReader(raw), Options{Detector: stint.DetectorVanilla}); err == nil {
		t.Error("replay accepted unterminated spawn")
	}
}

func TestParallelTracingRejected(t *testing.T) {
	rec := NewRecorder(&bytes.Buffer{})
	if _, err := stint.NewRunner(stint.Options{Parallel: true, Tracer: rec}); err == nil {
		t.Fatal("parallel + tracer accepted")
	}
}

func TestWorkloadTraceRoundTrip(t *testing.T) {
	// Record a real benchmark and replay it: interval statistics must be
	// identical to the live run.
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	r, err := stint.NewRunner(stint.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	data := r.Arena().AllocWords("data", 4096)
	prog := func(task *stint.Task) {
		var rec2 func(t *stint.Task, lo, hi int)
		rec2 = func(t *stint.Task, lo, hi int) {
			if hi-lo <= 256 {
				t.LoadRange(data, lo, hi-lo)
				t.StoreRange(data, lo, hi-lo)
				return
			}
			mid := (lo + hi) / 2
			t.Spawn(func(c *stint.Task) { rec2(c, lo, mid) })
			t.Spawn(func(c *stint.Task) { rec2(c, mid, hi) })
			t.Sync()
		}
		rec2(task, 0, 4096)
	}
	if _, err := r.Run(prog); err != nil {
		t.Fatal(err)
	}
	rec.Flush()

	r2, _ := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	r2.Arena().AllocWords("data", 4096)
	live, _ := r2.Run(prog)
	// The second runner's buffer has the same base (deterministic arena),
	// so the trace replays against identical addresses.
	rep, err := Replay(bytes.NewReader(buf.Bytes()), Options{Detector: stint.DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy() {
		t.Fatal("race-free program raced on replay")
	}
	if rep.Stats.ReadIntervals != live.Stats.ReadIntervals || rep.Strands != live.Strands {
		t.Fatalf("replay stats diverge: %+v vs %+v", rep.Stats, live.Stats)
	}
}

// TestReplayReusedRunner pins the serve-side contract: replaying through a
// caller-provided, reused Runner produces Reports byte-identical to a
// fresh-Runner replay of the same trace, across repeated replays and
// across both the sync and sharded pipelines.
func TestReplayReusedRunner(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts stint.Options
	}{
		{"sync", stint.Options{Detector: stint.DetectorSTINT, MaxRacesRecorded: 1 << 20}},
		{"shards2", stint.Options{Detector: stint.DetectorSTINT, MaxRacesRecorded: 1 << 20, Async: true, DetectShards: 2}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			reused, err := stint.NewRunner(mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(100); seed < 106; seed++ {
				rng := rand.New(rand.NewSource(seed))
				acts := genActions(rng, 4, bufWords)
				raw := record(t, acts)
				fresh, err := Replay(bytes.NewReader(raw), Options{
					Detector:         mode.opts.Detector,
					MaxRacesRecorded: mode.opts.MaxRacesRecorded,
					Async:            mode.opts.Async,
					Shards:           mode.opts.DetectShards,
				})
				if err != nil {
					t.Fatalf("seed %d fresh: %v", seed, err)
				}
				got, err := Replay(bytes.NewReader(raw), Options{Runner: reused})
				if err != nil {
					t.Fatalf("seed %d reused: %v", seed, err)
				}
				if got.RaceCount != fresh.RaceCount || got.Strands != fresh.Strands {
					t.Fatalf("seed %d: counts diverge: %d/%d reused vs %d/%d fresh",
						seed, got.RaceCount, got.Strands, fresh.RaceCount, fresh.Strands)
				}
				if !reflect.DeepEqual(got.Races, fresh.Races) {
					t.Fatalf("seed %d: race lists diverge\nreused: %v\nfresh:  %v",
						seed, got.Races, fresh.Races)
				}
			}
		})
	}
}

// TestReplayMaxEvents checks the per-run budget: an undersized cap aborts
// the replay with ErrTooManyEvents, and the same Runner replays the full
// trace correctly afterwards — an aborted trace must not poison the pool.
func TestReplayMaxEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var acts []action
	for len(acts) < 3 {
		acts = genActions(rng, 4, bufWords)
	}
	raw := record(t, acts)
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT, MaxRacesRecorded: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(bytes.NewReader(raw), Options{Runner: r, MaxEvents: 2}); !errors.Is(err, ErrTooManyEvents) {
		t.Fatalf("capped replay: got %v, want ErrTooManyEvents", err)
	}
	want, err := Replay(bytes.NewReader(raw), Options{Detector: stint.DetectorSTINT, MaxRacesRecorded: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Replay(bytes.NewReader(raw), Options{Runner: r})
	if err != nil {
		t.Fatalf("post-abort replay: %v", err)
	}
	if got.RaceCount != want.RaceCount || !reflect.DeepEqual(got.Races, want.Races) {
		t.Fatalf("post-abort replay diverges: %d races vs %d", got.RaceCount, want.RaceCount)
	}
	// A budget exactly covering the trace succeeds.
	if _, err := Replay(bytes.NewReader(raw), Options{Detector: stint.DetectorSTINT, MaxEvents: 1 << 20}); err != nil {
		t.Fatalf("generous budget: %v", err)
	}
}

// TestReplayHistoryCap checks the access-history memory cap: a trace whose
// live history outgrows MaxHistoryBytes aborts the replay with a structured
// error matching stint.ErrHistoryCap, and the same Runner replays an
// in-budget trace correctly afterwards — like an event-budget abort, a cap
// trip must not poison the pool.
func TestReplayHistoryCap(t *testing.T) {
	// Big: alternating-word stores never coalesce, so the root strand
	// retains one interval node per store — far beyond the cap. Tiny: one
	// store stays well under it.
	big := record(t, func() []action {
		var acts []action
		for i := 0; i < bufWords; i += 2 {
			acts = append(acts, action{kind: 's', idx: i})
		}
		return acts
	}())
	tiny := record(t, []action{{kind: 's', idx: 0}})
	const cap = 1 << 10
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT, MaxHistoryBytes: cap})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Replay(bytes.NewReader(big), Options{Runner: r})
	if !errors.Is(err, stint.ErrHistoryCap) {
		t.Fatalf("capped replay: got %v, want stint.ErrHistoryCap", err)
	}
	var capErr *stint.HistoryCapError
	if !errors.As(err, &capErr) || capErr.Limit != cap || capErr.Bytes <= capErr.Limit {
		t.Fatalf("capped replay: want *stint.HistoryCapError with Bytes > Limit %d, got %#v", cap, err)
	}
	// The Runner recovers: an in-budget trace replays byte-identically to a
	// fresh uncapped replay.
	want, err := Replay(bytes.NewReader(tiny), Options{Detector: stint.DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Replay(bytes.NewReader(tiny), Options{Runner: r})
	if err != nil {
		t.Fatalf("post-abort replay: %v", err)
	}
	if got.RaceCount != want.RaceCount || !reflect.DeepEqual(got.Races, want.Races) {
		t.Fatalf("post-abort replay diverges: %d races vs %d", got.RaceCount, want.RaceCount)
	}
	// A fresh replay with a generous budget handles the big trace.
	if _, err := Replay(bytes.NewReader(big), Options{Detector: stint.DetectorSTINT, MaxHistoryBytes: 1 << 30}); err != nil {
		t.Fatalf("generous budget: %v", err)
	}
}

// TestReplayDefaultMaxRaces pins the replay-side defaulting: zero
// MaxRacesRecorded means stint.DefaultMaxRacesRecorded, so a trace with
// more races than the default records exactly the default number while
// RaceCount keeps counting.
func TestReplayDefaultMaxRaces(t *testing.T) {
	words := 4 * stint.DefaultMaxRacesRecorded
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	r, err := stint.NewRunner(stint.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	data := r.Arena().AllocWords("data", words)
	_, err = r.Run(func(task *stint.Task) {
		// One pair of parallel single-word writes per word: each pair is an
		// independent race, well above the default recording cap.
		for i := 0; i < 2*stint.DefaultMaxRacesRecorded; i++ {
			idx := 2 * i
			task.Spawn(func(c *stint.Task) { c.Store(data, idx) })
			task.Spawn(func(c *stint.Task) { c.Store(data, idx) })
		}
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(bytes.NewReader(buf.Bytes()), Options{Detector: stint.DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RaceCount <= stint.DefaultMaxRacesRecorded {
		t.Fatalf("fixture trace found only %d races; want > %d", rep.RaceCount, stint.DefaultMaxRacesRecorded)
	}
	if len(rep.Races) != stint.DefaultMaxRacesRecorded {
		t.Fatalf("zero MaxRacesRecorded recorded %d races; want the default %d",
			len(rep.Races), stint.DefaultMaxRacesRecorded)
	}
}
