module stint

go 1.22
