package stint

import (
	"strings"
	"testing"
)

func TestResolveRoundTrip(t *testing.T) {
	r, _ := NewRunner(Options{})
	a := r.Arena()
	b1 := a.AllocWords("first", 100)
	b2 := a.AllocFloat64("second", 50)
	for _, c := range []struct {
		buf  *Buffer
		elem int
	}{
		{b1, 0}, {b1, 50}, {b1, 99}, {b2, 0}, {b2, 49},
	} {
		gotBuf, gotElem := a.Resolve(c.buf.Addr(c.elem))
		if gotBuf != c.buf || gotElem != c.elem {
			t.Errorf("Resolve(%s[%d]) = (%v, %d)", c.buf.Name(), c.elem, gotBuf, gotElem)
		}
		// Mid-element addresses resolve to the same element.
		gotBuf, gotElem = a.Resolve(c.buf.Addr(c.elem) + 1)
		if gotBuf != c.buf || gotElem != c.elem {
			t.Errorf("Resolve(mid-element) = (%v, %d), want (%s, %d)", gotBuf, gotElem, c.buf.Name(), c.elem)
		}
	}
}

func TestResolveOutsideBuffers(t *testing.T) {
	r, _ := NewRunner(Options{})
	a := r.Arena()
	b := a.AllocWords("only", 4)
	if buf, _ := a.Resolve(0); buf != nil {
		t.Error("address 0 resolved to a buffer")
	}
	if buf, _ := a.Resolve(b.Base() + b.Bytes()); buf != nil {
		t.Error("one-past-end resolved to a buffer")
	}
	if buf, _ := a.Resolve(b.Base() - 1); buf != nil {
		t.Error("address below first buffer resolved")
	}
}

func TestDescribeRace(t *testing.T) {
	r, _ := NewRunner(Options{Detector: DetectorSTINT})
	buf := r.Arena().AllocWords("shared", 64)
	rep, err := r.Run(func(task *Task) {
		task.Spawn(func(c *Task) { c.StoreRange(buf, 8, 16) })
		task.StoreRange(buf, 8, 16)
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Racy() {
		t.Fatal("no race to describe")
	}
	desc := r.DescribeRace(rep.Races[0])
	if !strings.Contains(desc, "shared[8:24]") {
		t.Errorf("DescribeRace = %q, want element range shared[8:24]", desc)
	}
	if !strings.Contains(desc, "write by strand") {
		t.Errorf("DescribeRace = %q, missing access kinds", desc)
	}
}

func TestDescribeRaceSingleElement(t *testing.T) {
	r, _ := NewRunner(Options{Detector: DetectorVanilla})
	buf := r.Arena().AllocWords("x", 8)
	rep, _ := r.Run(func(task *Task) {
		task.Spawn(func(c *Task) { c.Store(buf, 3) })
		task.Store(buf, 3)
		task.Sync()
	})
	desc := r.DescribeRace(rep.Races[0])
	if !strings.Contains(desc, "x[3]") {
		t.Errorf("DescribeRace = %q, want x[3]", desc)
	}
}

func TestDescribeRaceUnresolvedFallsBack(t *testing.T) {
	r, _ := NewRunner(Options{})
	rc := Race{Addr: 0x10, Size: 4, Prev: 1, Cur: 2, PrevWrite: true, CurWrite: true}
	desc := r.DescribeRace(rc)
	if !strings.Contains(desc, "0x10") {
		t.Errorf("fallback description %q lacks the raw address", desc)
	}
}
