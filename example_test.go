package stint_test

import (
	"fmt"

	"stint"
)

// The smallest possible detection session: two logically parallel writes
// to the same words.
func ExampleRunner_Run() {
	r, _ := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	data := r.Arena().AllocWords("data", 128)

	report, _ := r.Run(func(t *stint.Task) {
		t.Spawn(func(c *stint.Task) { c.StoreRange(data, 0, 64) })
		t.StoreRange(data, 32, 64)
		t.Sync()
	})
	fmt.Println("racy:", report.Racy())
	fmt.Println(r.DescribeRace(report.Races[0]))
	// Output:
	// racy: true
	// race: write by strand 1 and write by strand 2 on data[32:64]
}

// Sync orders accesses: the same program with the write moved after the
// join is race-free.
func ExampleTask_Sync() {
	r, _ := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	data := r.Arena().AllocWords("data", 128)

	report, _ := r.Run(func(t *stint.Task) {
		t.Spawn(func(c *stint.Task) { c.StoreRange(data, 0, 64) })
		t.Sync()
		t.StoreRange(data, 32, 64)
	})
	fmt.Println("racy:", report.Racy())
	// Output:
	// racy: false
}

// Runtime coalescing turns repeated word accesses into one interval.
func ExampleOptions_statistics() {
	r, _ := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	data := r.Arena().AllocWords("data", 64)

	report, _ := r.Run(func(t *stint.Task) {
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < 64; i++ {
				t.Load(data, i)
			}
		}
	})
	fmt.Println("word accesses:", report.Stats.ReadAccesses)
	fmt.Println("intervals:", report.Stats.ReadIntervals)
	// Output:
	// word accesses: 256
	// intervals: 1
}
