// Options validation. Every constraint on an Options value lives in one
// table here — the runner files assume a validated configuration and never
// re-check combinations — so NewRunner is the single gate and the table is
// the single place to read (and test) the rules.

package stint

import "fmt"

// maxDetectShards bounds DetectShards. Shards cost a goroutine, an engine,
// and a broadcast-ring cursor each, and the page hash cannot usefully
// spread a program over more workers than it has distinct 64 KiB shadow
// pages; four-digit counts are a configuration error, not a scale-up.
const maxDetectShards = 1024

// DefaultMaxRacesRecorded is the race-report budget applied when
// Options.MaxRacesRecorded is zero. Every entry point — NewRunner,
// trace.Replay, the dag and pipeline runners, and stint-serve — defaults
// through this one constant, so a zero value means the same thing
// everywhere.
const DefaultMaxRacesRecorded = 64

// defaultMaxRaces resolves a zero MaxRacesRecorded to the shared default.
func defaultMaxRaces(n int) int {
	if n == 0 {
		return DefaultMaxRacesRecorded
	}
	return n
}

// optionsRule is one validation rule: bad reports whether opts violate the
// rule, and err renders the violation.
type optionsRule struct {
	bad func(o *Options) bool
	err func(o *Options) error
}

// optionsRules is evaluated in order; the first violated rule wins.
var optionsRules = []optionsRule{
	{
		bad: func(o *Options) bool { return o.Parallel && o.Detector != DetectorOff },
		err: func(o *Options) error {
			return fmt.Errorf("stint: Parallel is the detection-off executor; use ParallelDetect for parallel execution with online race detection")
		},
	},
	{
		bad: func(o *Options) bool { return (o.Parallel || o.ParallelDetect) && o.Tracer != nil },
		err: func(o *Options) error {
			return fmt.Errorf("stint: tracing requires serial execution; parallel executors emit events out of program order")
		},
	},
	{
		bad: func(o *Options) bool { return o.Async && o.Parallel },
		err: func(o *Options) error {
			return fmt.Errorf("stint: Async and Parallel are incompatible; Async pipelines the serial projection, Parallel abandons it")
		},
	},
	{
		bad: func(o *Options) bool { return o.ParallelDetect && o.Parallel },
		err: func(o *Options) error {
			return fmt.Errorf("stint: Parallel and ParallelDetect are both executors; choose one (Parallel is detection-off, ParallelDetect detects online)")
		},
	},
	{
		bad: func(o *Options) bool { return o.ParallelDetect && o.Async },
		err: func(o *Options) error {
			return fmt.Errorf("stint: Async and ParallelDetect are incompatible; Async pipelines the serial projection, ParallelDetect merges a parallel execution's streams itself")
		},
	},
	{
		bad: func(o *Options) bool {
			return o.ParallelDetect && !coalescingDetector(o.Detector)
		},
		err: func(o *Options) error {
			return fmt.Errorf("stint: ParallelDetect requires a runtime-coalescing detector (comp+rts or a stint variant), got %v; for detection-off parallel execution use Parallel", o.Detector)
		},
	},
	{
		bad: func(o *Options) bool { return o.MaxRacesRecorded < 0 },
		err: func(o *Options) error {
			return fmt.Errorf("stint: MaxRacesRecorded must be non-negative, got %d", o.MaxRacesRecorded)
		},
	},
	{
		bad: func(o *Options) bool { return o.DetectShards < 0 },
		err: func(o *Options) error {
			return fmt.Errorf("stint: DetectShards must be non-negative, got %d", o.DetectShards)
		},
	},
	{
		bad: func(o *Options) bool { return o.DetectShards > maxDetectShards },
		err: func(o *Options) error {
			return fmt.Errorf("stint: DetectShards %d exceeds the maximum of %d", o.DetectShards, maxDetectShards)
		},
	},
	{
		bad: func(o *Options) bool { return o.DetectShards > 0 && !o.Async && !o.ParallelDetect },
		err: func(o *Options) error {
			return fmt.Errorf("stint: DetectShards requires Async or ParallelDetect; sharding splits the pipelined detector")
		},
	},
	{
		bad: func(o *Options) bool {
			return o.DetectShards > 0 && (o.Detector == DetectorVanilla || o.Detector == DetectorCompiler)
		},
		err: func(o *Options) error {
			return fmt.Errorf("stint: DetectShards requires a runtime-coalescing detector (comp+rts or a stint variant), got %v", o.Detector)
		},
	},
	{
		bad: func(o *Options) bool {
			return o.SummaryStamping < StampAuto || o.SummaryStamping > StampLabelStage
		},
		err: func(o *Options) error {
			return fmt.Errorf("stint: SummaryStamping %d is not one of StampAuto, StampProducer, StampLabelStage", o.SummaryStamping)
		},
	},
	{
		bad: func(o *Options) bool { return o.PageQuiesceThreshold < 0 },
		err: func(o *Options) error {
			return fmt.Errorf("stint: PageQuiesceThreshold must be non-negative, got %d", o.PageQuiesceThreshold)
		},
	},
	{
		bad: func(o *Options) bool { return o.MaxHistoryBytes < 0 },
		err: func(o *Options) error {
			return fmt.Errorf("stint: MaxHistoryBytes must be non-negative, got %d", o.MaxHistoryBytes)
		},
	},
	{
		bad: func(o *Options) bool {
			return o.MaxHistoryBytes > 0 && (o.Detector == DetectorOff || o.Detector == DetectorReachOnly)
		},
		err: func(o *Options) error {
			return fmt.Errorf("stint: MaxHistoryBytes requires a detector with an access history, got %v", o.Detector)
		},
	},
}

// coalescingDetector reports whether d is one of the runtime-coalescing
// engines — the ones whose hooks only touch per-page state, which is what
// both sharding and the parallel-detect merge rely on.
func coalescingDetector(d Detector) bool {
	switch d {
	case DetectorCompRTS, DetectorSTINT, DetectorSTINTUnbalanced, DetectorSTINTSkiplist:
		return true
	}
	return false
}

// validate checks opts against every rule, returning the first violation.
func (o *Options) validate() error {
	for _, rule := range optionsRules {
		if rule.bad(o) {
			return rule.err(o)
		}
	}
	return nil
}
