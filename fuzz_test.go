package stint

import (
	"testing"
)

// FuzzAsyncAgainstSync decodes arbitrary bytes into a fork-join program
// and pipeline geometry, runs it once synchronously and once through the
// async pipeline, and requires identical racing-word sets, strand counts,
// and (timing-normalized) stats. Tiny batch capacities and ring depths
// force the batch-boundary edge cases: events split across batches, empty
// final batches, backpressure stalls, and drain while a strand's accesses
// are still buffered.
func FuzzAsyncAgainstSync(f *testing.F) {
	f.Add([]byte{})
	// Geometry 1x1 (max handoffs), racy spawn/store/store/sync.
	f.Add([]byte{0x00, 0x00, 0x00, 0x03, 0x00, 0x05, 0x01, 0x04, 0x00, 0x05, 0x02})
	// Range accesses split across 2-event batches.
	f.Add([]byte{0x01, 0x01, 0x00, 0x05, 0x01, 0x00, 0x20, 0x01, 0x06, 0x01, 0x10, 0x30, 0x02})
	// Drain mid-strand: spawn body never terminated, accesses buffered at
	// stream end.
	f.Add([]byte{0x02, 0x00, 0x00, 0x04, 0x02, 0x07, 0x03, 0x00, 0x01})
	// Deep nesting with interleaved syncs.
	f.Add([]byte{0x03, 0x01, 0x00, 0x00, 0x00, 0x04, 0x01, 0x02, 0x01, 0x02, 0x01, 0x04, 0x02, 0x08, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return // keep individual executions fast
		}
		prog, batchEvents, ringDepth := decodeFuzzProgram(data)

		type result struct {
			words   map[Addr]bool
			strands int
			stats   Stats
		}
		run := func(async bool) result {
			words := make(map[Addr]bool)
			r, err := NewRunner(Options{Detector: DetectorSTINT, Async: async, OnRace: func(rc Race) {
				for a := rc.Addr &^ 3; a < rc.Addr+rc.Size; a += 4 {
					words[a] = true
				}
			}})
			if err != nil {
				t.Fatal(err)
			}
			if async {
				r.asyncBatchEvents, r.asyncRingDepth = batchEvents, ringDepth
			}
			bufs, _ := allocBufs(r)
			rep, err := r.Run(func(task *Task) { runActs(task, bufs, prog) })
			if err != nil {
				t.Fatal(err)
			}
			st := rep.Stats
			st.AccessHistoryTime, st.AllocObjects, st.AllocBytes, st.PipelineDetectTime = 0, 0, 0, 0
			return result{words: words, strands: rep.Strands, stats: st}
		}

		sync := run(false)
		async := run(true)
		if async.strands != sync.strands {
			t.Fatalf("strands: async %d, sync %d (batch=%d depth=%d)\nprogram: %+v",
				async.strands, sync.strands, batchEvents, ringDepth, prog)
		}
		if async.stats != sync.stats {
			t.Fatalf("stats diverge (batch=%d depth=%d)\nasync: %+v\nsync:  %+v\nprogram: %+v",
				batchEvents, ringDepth, async.stats, sync.stats, prog)
		}
		if len(async.words) != len(sync.words) {
			t.Fatalf("racing words: async %d, sync %d\nprogram: %+v", len(async.words), len(sync.words), prog)
		}
		for w := range sync.words {
			if !async.words[w] {
				t.Fatalf("async missed racing word %#x\nprogram: %+v", w, prog)
			}
		}
	})
}

// decodeFuzzProgram turns raw bytes into (program, batchEvents, ringDepth).
// The first two bytes pick a tiny pipeline geometry; the rest is a
// byte-code for act programs. Every input decodes to a valid program — the
// fuzzer explores program shapes, not parser rejections.
func decodeFuzzProgram(data []byte) ([]act, int, int) {
	batchEvents, ringDepth := 1, 1
	if len(data) > 0 {
		batchEvents = int(data[0]%16) + 1
		data = data[1:]
	}
	if len(data) > 0 {
		ringDepth = int(data[0]%4) + 1
		data = data[1:]
	}
	pos := 0
	next := func() (byte, bool) {
		if pos >= len(data) {
			return 0, false
		}
		b := data[pos]
		pos++
		return b, true
	}
	// sizes must match bufSpecs (shared with the equivalence suite).
	sizes := make([]int, len(bufSpecs))
	for i, s := range bufSpecs {
		sizes[i] = s.elems
	}
	var parse func(depth int) []act
	parse = func(depth int) []act {
		var acts []act
		for len(acts) < 64 {
			b, ok := next()
			if !ok {
				return acts // unterminated bodies auto-close: drain mid-strand
			}
			switch b % 8 {
			case 0: // spawn with nested body
				if depth >= 6 {
					continue
				}
				acts = append(acts, act{kind: 'S', body: parse(depth + 1)})
			case 1: // end of this body
				return acts
			case 2: // sync
				acts = append(acts, act{kind: 'Y'})
			case 3, 4: // word load/store
				bi, _ := next()
				ii, _ := next()
				buf := int(bi) % len(sizes)
				acts = append(acts, act{
					kind: map[byte]byte{3: 'l', 4: 's'}[b%8],
					buf:  buf, idx: int(ii) % sizes[buf],
				})
			case 5, 6: // range load/store
				bi, _ := next()
				ii, _ := next()
				ni, _ := next()
				buf := int(bi) % len(sizes)
				idx := int(ii) % sizes[buf]
				acts = append(acts, act{
					kind: map[byte]byte{5: 'L', 6: 'W'}[b%8],
					buf:  buf, idx: idx, n: int(ni)%(sizes[buf]-idx) + 1,
				})
			case 7: // no-op (reserved)
			}
		}
		return acts
	}
	return parse(0), batchEvents, ringDepth
}
