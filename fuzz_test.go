package stint

import (
	"reflect"
	"testing"
)

// fuzzWideElems sizes the fuzz-only "wide" buffer: 128 KiB of words, so it
// straddles at least one 64 KiB shadow-page boundary and range accesses on
// it exercise the workers' local page splitting and shard filtering.
const fuzzWideElems = 32768

// fuzzAllocBufs allocates the equivalence suite's buffers plus the wide
// one. Only the fuzzer uses the wide buffer — the oracle-backed tests keep
// the small set so brute-force stays cheap.
func fuzzAllocBufs(r *Runner) ([]*Buffer, []int) {
	bufs, sizes := allocBufs(r)
	bufs = append(bufs, r.Arena().Alloc("wide", fuzzWideElems, 4))
	sizes = append(sizes, fuzzWideElems)
	return bufs, sizes
}

// FuzzAsyncAgainstSync decodes arbitrary bytes into a fork-join program
// and pipeline geometry — batch capacity, ring depth, a detection shard
// count, and a flags byte toggling the compact encoding, the summary-
// stamping stage, and the ParallelDetect legs — runs it once synchronously,
// once through the plain async pipeline, (when the shard byte asks for it)
// twice sharded — once with batch summaries, once with them disabled — and
// (when the flags byte asks for it) twice under ParallelDetect, and
// requires identical racing-word sets, canonical race reports, strand
// counts, and (timing-normalized) stats. A further flags bit re-runs the
// mode matrix with per-page quiescing enabled and requires the quiesced
// reports to agree across modes too. Tiny batch capacities and ring
// depths force the batch-boundary edge cases: events split across batches,
// empty final batches, backpressure stalls, and drain while a strand's
// accesses are still buffered. Shard counts above one additionally force
// page-split routing and cross-worker merge.
func FuzzAsyncAgainstSync(f *testing.F) {
	f.Add([]byte{})
	// Geometry 1x1 (max handoffs), unsharded, racy spawn/store/store/sync.
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x05, 0x01, 0x04, 0x00, 0x05, 0x02})
	// Range accesses split across 2-event batches, 2 shards.
	f.Add([]byte{0x01, 0x01, 0x02, 0x00, 0x00, 0x05, 0x01, 0x00, 0x00, 0x00, 0x20, 0x01, 0x06, 0x01, 0x00, 0x10, 0x00, 0x30, 0x02})
	// Drain mid-strand: spawn body never terminated, accesses buffered at
	// stream end.
	f.Add([]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x04, 0x02, 0x07, 0x03, 0x00, 0x01})
	// Deep nesting with interleaved syncs.
	f.Add([]byte{0x03, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x01, 0x02, 0x01, 0x02, 0x01, 0x04, 0x02, 0x08, 0x02})
	// Cross-shard racy pair: two strands write the same 128 KiB span of the
	// wide buffer, so the racing pieces land on different shards.
	f.Add([]byte{0x01, 0x01, 0x02, 0x00, 0x00, 0x06, 0x03, 0x00, 0x00, 0x7f, 0xff, 0x01, 0x06, 0x03, 0x00, 0x00, 0x7f, 0xff, 0x02})
	// Worker-side split of one page-straddling access: a 16-byte range write
	// at wide index 13310 crosses the 64 KiB boundary at index 13312, so each
	// worker page-splits the event locally, keeps only its own piece, and the
	// hook-call adjustment (only the first piece's owner counts the original
	// call) must reconcile across two shards. Two parallel strands write the
	// same straddling range, so the race itself spans the boundary too.
	f.Add([]byte{0x01, 0x01, 0x02, 0x00, 0x00, 0x06, 0x03, 0x33, 0xfe, 0x00, 0x03, 0x01, 0x06, 0x03, 0x33, 0xfe, 0x00, 0x03, 0x02})
	// All-events-one-page skew: 4 shards but every access on one page, so a
	// single worker carries the whole load, the others skip-scan off the
	// batch summaries, and the summaries-off leg re-runs it with every
	// worker on the slow path.
	f.Add([]byte{0x00, 0x00, 0x04, 0x00, 0x00, 0x04, 0x00, 0x05, 0x01, 0x04, 0x00, 0x05, 0x02})
	// The same skew under the fixed 16-byte encoding (flags bit 0)...
	f.Add([]byte{0x00, 0x00, 0x04, 0x01, 0x00, 0x04, 0x00, 0x05, 0x01, 0x04, 0x00, 0x05, 0x02})
	// ...and with both forced stamping stages (flags bits 1-2).
	f.Add([]byte{0x00, 0x00, 0x04, 0x02, 0x00, 0x04, 0x00, 0x05, 0x01, 0x04, 0x00, 0x05, 0x02})
	f.Add([]byte{0x00, 0x00, 0x04, 0x04, 0x00, 0x04, 0x00, 0x05, 0x01, 0x04, 0x00, 0x05, 0x02})
	// All-ones fallback: the two racing range writes span the full 128 KiB
	// wide buffer (> 2 pages), so AccessMask gives up and stamps MaskAll —
	// all 4 workers must take the full-scan path even though each owns only
	// a slice of the pages.
	f.Add([]byte{0x01, 0x01, 0x04, 0x00, 0x00, 0x06, 0x03, 0x00, 0x00, 0x7f, 0xff, 0x01, 0x06, 0x03, 0x00, 0x00, 0x7f, 0xff, 0x02})
	// Parallel-detect (flags bit 3) over the cross-shard racy pair: the two
	// racing strands execute on distinct goroutines and their chunks reach
	// the merge in scheduler order, yet the race must land on both shards'
	// reports exactly as in sync.
	f.Add([]byte{0x01, 0x01, 0x02, 0x08, 0x00, 0x06, 0x03, 0x00, 0x00, 0x7f, 0xff, 0x01, 0x06, 0x03, 0x00, 0x00, 0x7f, 0xff, 0x02})
	// Parallel-detect on a degenerate single-strand program: no spawns, so
	// the whole stream is the root task's chunks — the reorder walk never
	// buffers and the merge must still synthesize an identical report.
	f.Add([]byte{0x00, 0x00, 0x01, 0x08, 0x00, 0x03, 0x00, 0x05, 0x04, 0x00, 0x06, 0x05, 0x00, 0x07})
	// Quiescing mid-batch (flags bit 4): the page-straddling racy range pair
	// again, now with a threshold-2 quiesce differential — the page under the
	// straddle retires while the range's other piece is still live, and the
	// sharded workers' local page splits must agree with sync on which piece
	// died.
	f.Add([]byte{0x01, 0x01, 0x02, 0x10, 0x00, 0x06, 0x03, 0x33, 0xfe, 0x00, 0x03, 0x01, 0x06, 0x03, 0x33, 0xfe, 0x00, 0x03, 0x02})
	// The same under ParallelDetect too (bits 3+4), and with repeated racy
	// pairs so the threshold actually trips.
	f.Add([]byte{0x01, 0x01, 0x02, 0x18, 0x00, 0x06, 0x03, 0x33, 0xfe, 0x00, 0x03, 0x01, 0x06, 0x03, 0x33, 0xfe, 0x00, 0x03, 0x01, 0x06, 0x03, 0x33, 0xfe, 0x00, 0x03, 0x01, 0x06, 0x03, 0x33, 0xfe, 0x00, 0x03, 0x02})
	// Cross-shard racy pair with quiescing: the racing span covers two full
	// pages, so both pages accumulate races and retire on different workers.
	f.Add([]byte{0x01, 0x01, 0x02, 0x10, 0x00, 0x06, 0x03, 0x00, 0x00, 0x7f, 0xff, 0x01, 0x06, 0x03, 0x00, 0x00, 0x7f, 0xff, 0x01, 0x06, 0x03, 0x00, 0x00, 0x7f, 0xff, 0x02})
	// Merge-boundary straddle: one-event batches force every access into
	// its own chunk, and a spawn-heavy body with nested children makes the
	// chunk cuts land on every structure boundary — the deterministic merge
	// must re-interleave the per-task chunk streams exactly.
	f.Add([]byte{0x00, 0x00, 0x02, 0x08, 0x00, 0x04, 0x00, 0x00, 0x04, 0x00, 0x05, 0x01, 0x01, 0x02, 0x04, 0x00, 0x05, 0x02, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return // keep individual executions fast
		}
		prog, batchEvents, ringDepth, shards, po := decodeFuzzProgram(data)

		type result struct {
			words   map[Addr]bool
			races   []Race
			strands int
			stats   Stats
		}
		// mode: -1 = synchronous, 0 = plain async, n > 0 = n-sharded async.
		// par switches the async modes to ParallelDetect: real goroutines
		// behind the chunk queue and deterministic merge, with mode naming
		// the worker count (0 means one worker). nosum disables the batch
		// summaries, forcing every worker onto the full-scan path.
		run := func(mode int, nosum, par bool) result {
			words := make(map[Addr]bool)
			opts := Options{
				Detector:              DetectorSTINT,
				DisableBatchSummaries: nosum,
				DisableCompactEvents:  po.nocompact,
				SummaryStamping:       po.stamp,
				OnRace: func(rc Race) {
					for a := rc.Addr &^ 3; a < rc.Addr+rc.Size; a += 4 {
						words[a] = true
					}
				},
			}
			if par {
				opts.ParallelDetect = true
				opts.DetectShards = mode
				opts.SummaryStamping = StampAuto // ignored by ParallelDetect
			} else if mode >= 0 {
				opts.Async = true
				opts.DetectShards = mode
			}
			r, err := NewRunner(opts)
			if err != nil {
				t.Fatal(err)
			}
			if par || mode >= 0 {
				r.asyncBatchEvents, r.asyncRingDepth = batchEvents, ringDepth
			}
			bufs, _ := fuzzAllocBufs(r)
			rep, err := r.Run(func(task *Task) { runActs(task, bufs, prog) })
			if err != nil {
				t.Fatal(err)
			}
			return result{words: words, races: rep.Races, strands: rep.Strands, stats: normStats(rep.Stats)}
		}

		sync := run(-1, false, false)
		check := func(name string, got result) {
			if got.strands != sync.strands {
				t.Fatalf("strands: %s %d, sync %d (batch=%d depth=%d shards=%d)\nprogram: %+v",
					name, got.strands, sync.strands, batchEvents, ringDepth, shards, prog)
			}
			if got.stats != sync.stats {
				t.Fatalf("stats diverge (%s, batch=%d depth=%d shards=%d)\n%s: %+v\nsync:  %+v\nprogram: %+v",
					name, batchEvents, ringDepth, shards, name, got.stats, sync.stats, prog)
			}
			if !reflect.DeepEqual(got.races, sync.races) {
				t.Fatalf("canonical races diverge (%s, batch=%d depth=%d shards=%d)\n%s: %v\nsync:  %v\nprogram: %+v",
					name, batchEvents, ringDepth, shards, name, got.races, sync.races, prog)
			}
			if len(got.words) != len(sync.words) {
				t.Fatalf("racing words: %s %d, sync %d\nprogram: %+v", name, len(got.words), len(sync.words), prog)
			}
			for w := range sync.words {
				if !got.words[w] {
					t.Fatalf("%s missed racing word %#x\nprogram: %+v", name, w, prog)
				}
			}
		}
		check("async", run(0, false, false))
		if shards > 0 {
			check("sharded", run(shards, false, false))
			// Summaries are a pure scan elision: disabling them must not
			// change a byte of the normalized result.
			check("sharded-nosum", run(shards, true, false))
		}
		if po.parallel {
			// ParallelDetect executes the same program on real goroutines;
			// the deterministic merge reconstructs the serial stream, so the
			// normalized result must still match sync byte for byte.
			check("parallel-detect", run(shards, false, true))
			check("parallel-detect-nosum", run(shards, true, true))
		}
		if po.quiesce {
			// Quiescing differential: with a threshold of 2, pages retire
			// their history mid-run — possibly mid-batch, possibly under a
			// page-straddling range. The quiesce decision is page-local and
			// taken at a deterministic point in the serial order, so races,
			// racing words, strands, and the pages-quiesced count must be
			// identical across every mode. Full stats are NOT compared: the
			// producer-side drops legitimately elide hook calls the
			// synchronous run counts.
			qrun := func(mode int, par bool) result {
				words := make(map[Addr]bool)
				opts := Options{
					Detector:             DetectorSTINT,
					PageQuiesceThreshold: 2,
					DisableCompactEvents: po.nocompact,
					OnRace: func(rc Race) {
						for a := rc.Addr &^ 3; a < rc.Addr+rc.Size; a += 4 {
							words[a] = true
						}
					},
				}
				if par {
					opts.ParallelDetect = true
					opts.DetectShards = mode
				} else if mode >= 0 {
					opts.Async = true
					opts.DetectShards = mode
				}
				r, err := NewRunner(opts)
				if err != nil {
					t.Fatal(err)
				}
				if par || mode >= 0 {
					r.asyncBatchEvents, r.asyncRingDepth = batchEvents, ringDepth
				}
				bufs, _ := fuzzAllocBufs(r)
				rep, err := r.Run(func(task *Task) { runActs(task, bufs, prog) })
				if err != nil {
					t.Fatal(err)
				}
				st := Stats{PagesQuiesced: rep.Stats.PagesQuiesced}
				return result{words: words, races: rep.Races, strands: rep.Strands, stats: st}
			}
			qsync := qrun(-1, false)
			qcheck := func(name string, got result) {
				if got.strands != qsync.strands || got.stats.PagesQuiesced != qsync.stats.PagesQuiesced {
					t.Fatalf("%s: strands/quiesced %d/%d, sync %d/%d (batch=%d depth=%d shards=%d)\nprogram: %+v",
						name, got.strands, got.stats.PagesQuiesced, qsync.strands, qsync.stats.PagesQuiesced,
						batchEvents, ringDepth, shards, prog)
				}
				if !reflect.DeepEqual(got.races, qsync.races) {
					t.Fatalf("quiesced races diverge (%s, batch=%d depth=%d shards=%d)\n%s: %v\nsync:  %v\nprogram: %+v",
						name, batchEvents, ringDepth, shards, name, got.races, qsync.races, prog)
				}
				if !reflect.DeepEqual(got.words, qsync.words) {
					t.Fatalf("quiesced racing words diverge (%s): %d vs sync %d\nprogram: %+v",
						name, len(got.words), len(qsync.words), prog)
				}
			}
			qcheck("quiesce-async", qrun(0, false))
			if shards > 0 {
				qcheck("quiesce-sharded", qrun(shards, false))
			}
			if po.parallel {
				qcheck("quiesce-parallel-detect", qrun(shards, true))
			}
		}
	})
}

// decodeFuzzProgram turns raw bytes into (program, batchEvents, ringDepth,
// shards, pipeline flags). The first four bytes pick a tiny pipeline
// geometry — shards of zero means "compare the plain async pipeline only";
// the flags byte toggles the fixed encoding (bit 0), picks the summary-
// stamping stage (bits 1-2), adds the ParallelDetect legs (bit 3), and adds
// the per-page quiescing differential legs (bit 4) — and the rest is a
// byte-code for act programs.
// Every input decodes to a valid program — the fuzzer explores program
// shapes, not parser rejections.
func decodeFuzzProgram(data []byte) ([]act, int, int, int, pipeOpts) {
	batchEvents, ringDepth, shards := 1, 1, 0
	var po pipeOpts
	if len(data) > 0 {
		batchEvents = int(data[0]%16) + 1
		data = data[1:]
	}
	if len(data) > 0 {
		ringDepth = int(data[0]%4) + 1
		data = data[1:]
	}
	if len(data) > 0 {
		shards = int(data[0] % 5)
		data = data[1:]
	}
	if len(data) > 0 {
		po.nocompact = data[0]&1 != 0
		po.stamp = SummaryStamping(((data[0] >> 1) & 3) % 3)
		po.parallel = data[0]&8 != 0
		po.quiesce = data[0]&16 != 0
		data = data[1:]
	}
	pos := 0
	next := func() (byte, bool) {
		if pos >= len(data) {
			return 0, false
		}
		b := data[pos]
		pos++
		return b, true
	}
	// sizes must match fuzzAllocBufs: the equivalence suite's buffers plus
	// the multi-page wide buffer. Range acts use 16-bit index and count so
	// they can reach — and straddle — the wide buffer's page boundaries.
	sizes := make([]int, len(bufSpecs), len(bufSpecs)+1)
	for i, s := range bufSpecs {
		sizes[i] = s.elems
	}
	sizes = append(sizes, fuzzWideElems)
	var parse func(depth int) []act
	parse = func(depth int) []act {
		var acts []act
		for len(acts) < 64 {
			b, ok := next()
			if !ok {
				return acts // unterminated bodies auto-close: drain mid-strand
			}
			switch b % 8 {
			case 0: // spawn with nested body
				if depth >= 6 {
					continue
				}
				acts = append(acts, act{kind: 'S', body: parse(depth + 1)})
			case 1: // end of this body
				return acts
			case 2: // sync
				acts = append(acts, act{kind: 'Y'})
			case 3, 4: // word load/store
				bi, _ := next()
				ii, _ := next()
				buf := int(bi) % len(sizes)
				acts = append(acts, act{
					kind: map[byte]byte{3: 'l', 4: 's'}[b%8],
					buf:  buf, idx: int(ii) % sizes[buf],
				})
			case 5, 6: // range load/store (16-bit index and count)
				bi, _ := next()
				i1, _ := next()
				i2, _ := next()
				n1, _ := next()
				n2, _ := next()
				buf := int(bi) % len(sizes)
				idx := (int(i1)<<8 | int(i2)) % sizes[buf]
				acts = append(acts, act{
					kind: map[byte]byte{5: 'L', 6: 'W'}[b%8],
					buf:  buf, idx: idx, n: (int(n1)<<8|int(n2))%(sizes[buf]-idx) + 1,
				})
			case 7: // no-op (reserved)
			}
		}
		return acts
	}
	return parse(0), batchEvents, ringDepth, shards, po
}
