package stint

import "testing"

func TestDeepSpawnRecursion(t *testing.T) {
	// Serial execution nests one Go call frame per spawn level; 10k levels
	// must work (Go stacks grow on demand).
	r, err := NewRunner(Options{Detector: DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("b", 4)
	var dive func(t *Task, depth int)
	dive = func(task *Task, depth int) {
		if depth == 0 {
			task.Store(buf, 0)
			return
		}
		task.Spawn(func(c *Task) { dive(c, depth-1) })
		task.Sync()
	}
	rep, err := r.Run(func(task *Task) { dive(task, 10000) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy() {
		t.Fatal("serial chain raced")
	}
	if rep.Strands < 30000 {
		t.Fatalf("expected ~3 strands per level, got %d", rep.Strands)
	}
}

func TestManySiblingStrands(t *testing.T) {
	r, err := NewRunner(Options{Detector: DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("b", 100000)
	rep, err := r.Run(func(task *Task) {
		for i := 0; i < 50000; i++ {
			i := i
			task.Spawn(func(c *Task) { c.Store(buf, i*2) })
		}
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy() {
		t.Fatal("disjoint sibling writes raced")
	}
	if rep.Stats.WriteIntervals != 50000 {
		t.Fatalf("WriteIntervals = %d, want 50000", rep.Stats.WriteIntervals)
	}
}

func TestRepeatedSyncsAreIdempotent(t *testing.T) {
	r, _ := NewRunner(Options{Detector: DetectorSTINT})
	buf := r.Arena().AllocWords("b", 8)
	rep, err := r.Run(func(task *Task) {
		task.Spawn(func(c *Task) { c.Store(buf, 0) })
		task.Sync()
		task.Sync() // no-ops
		task.Sync()
		task.Store(buf, 0) // ordered: no race
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy() {
		t.Fatal("no-op syncs broke ordering")
	}
}

func TestAlternatingSpawnSyncBlocks(t *testing.T) {
	// Many sequential sync blocks in one task: each block's child is
	// ordered with the next block's accesses.
	r, _ := NewRunner(Options{Detector: DetectorVanilla})
	buf := r.Arena().AllocWords("b", 4)
	rep, err := r.Run(func(task *Task) {
		for i := 0; i < 200; i++ {
			task.Spawn(func(c *Task) { c.Store(buf, 0) })
			task.Sync()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy() {
		t.Fatal("sequential sync blocks raced")
	}
}

func TestZeroLengthRangeHooksIgnored(t *testing.T) {
	r, _ := NewRunner(Options{Detector: DetectorSTINT})
	buf := r.Arena().AllocWords("b", 8)
	rep, err := r.Run(func(task *Task) {
		task.LoadRange(buf, 4, 0)
		task.StoreRange(buf, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.ReadAccesses != 0 || rep.Stats.WriteAccesses != 0 {
		t.Fatalf("zero-length ranges recorded accesses: %+v", rep.Stats)
	}
}

func TestSpawnInsideSpawnSameBlock(t *testing.T) {
	// A child spawning before its parent syncs exercises nested frames
	// with interleaved pending sync blocks.
	r, _ := NewRunner(Options{Detector: DetectorSTINT})
	buf := r.Arena().AllocWords("b", 16)
	rep, err := r.Run(func(task *Task) {
		task.Spawn(func(c *Task) {
			c.Spawn(func(g *Task) { g.Store(buf, 0) })
			c.Store(buf, 1)
			// implicit sync joins g
		})
		task.Spawn(func(c *Task) { c.Store(buf, 2) })
		task.Store(buf, 3)
		task.Sync()
		task.LoadRange(buf, 0, 4) // all joined: safe
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy() {
		t.Fatalf("disjoint nested writes raced: %v", rep.Races[0])
	}
}
