package stint

import (
	"reflect"
	"testing"
	"time"

	"stint/internal/coalesce"
	"stint/internal/evstream"
)

// shardTestDetectors are the detectors DetectShards supports.
var shardTestDetectors = []Detector{
	DetectorCompRTS, DetectorSTINT, DetectorSTINTUnbalanced, DetectorSTINTSkiplist,
}

// normStats zeroes the timing-, allocation-, and scheduling-dependent
// fields so the deterministic counters can be compared across execution
// modes. BatchesSkipped is scheduling-dependent by construction: it counts
// elided scan work, which varies with shard count and batch geometry while
// every detection counter stays identical. EventsStreamed and StreamBytes
// describe the transport, not the detection: sync runs have no stream and
// the wire bytes vary with the encoding by design. HistoryBytesPeak sums
// each engine's retained footprint, so a sharded run's N directories and
// pools legitimately peak higher than one inline engine's.
// PagesQuiesced stays compared: quiesce decisions are page-local and
// deterministic, so the count is mode-independent (and zero with
// quiescing off).
func normStats(s Stats) Stats {
	s.AccessHistoryTime = 0
	s.AllocObjects = 0
	s.AllocBytes = 0
	s.PipelineDetectTime = 0
	s.BatchesSkipped = 0
	s.EventsStreamed = 0
	s.StreamBytes = 0
	s.HistoryBytesPeak = 0
	return s
}

func TestNewRunnerShardValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"negative", Options{Detector: DetectorSTINT, Async: true, DetectShards: -1}, false},
		{"without async", Options{Detector: DetectorSTINT, DetectShards: 2}, false},
		{"with parallel", Options{Detector: DetectorOff, Parallel: true, DetectShards: 2}, false},
		{"with parallel and async", Options{Detector: DetectorOff, Parallel: true, Async: true, DetectShards: 2}, false},
		{"vanilla", Options{Detector: DetectorVanilla, Async: true, DetectShards: 2}, false},
		{"compiler", Options{Detector: DetectorCompiler, Async: true, DetectShards: 2}, false},
		{"comp+rts", Options{Detector: DetectorCompRTS, Async: true, DetectShards: 2}, true},
		{"stint", Options{Detector: DetectorSTINT, Async: true, DetectShards: 4}, true},
		{"one shard", Options{Detector: DetectorSTINT, Async: true, DetectShards: 1}, true},
		{"zero disables", Options{Detector: DetectorSTINT, Async: true, DetectShards: 0}, true},
		{"off ignored", Options{Detector: DetectorOff, Async: true, DetectShards: 2}, true},
		{"reach-only ignored", Options{Detector: DetectorReachOnly, Async: true, DetectShards: 2}, true},
	}
	for _, c := range cases {
		_, err := NewRunner(c.opts)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected an error, got none", c.name)
		}
	}
}

// shardProgram writes from parallel strands across several shadow pages so
// races, page splits, and cross-shard routing all occur.
func shardProgram(pageStride int) func(r *Runner) TaskFunc {
	return func(r *Runner) TaskFunc {
		// Several buffers; the arena's 4 KiB padding keeps them on a mix of
		// pages, and the big one spans multiple 64 KiB pages.
		small := r.Arena().AllocWords("small", 512)
		big := r.Arena().AllocWords("big", 64<<10) // 256 KiB: 4+ pages
		return func(t *Task) {
			for i := 0; i < 4; i++ {
				i := i
				t.Spawn(func(c *Task) {
					c.StoreRange(small, i*64, 128)        // overlapping writes: races
					c.StoreRange(big, i*pageStride, 9000) // page-straddling ranges
					c.Load(small, i)
					for j := 0; j < 40; j++ {
						c.Store(big, i*pageStride+j*77)
					}
				})
			}
			t.Sync()
			t.LoadRange(big, 0, 3*pageStride)
		}
	}
}

// runSharded executes prog under the given shard count (0 = plain async,
// -1 = synchronous) and returns the report.
func runSharded(t *testing.T, d Detector, shards int, prog func(r *Runner) TaskFunc) *Report {
	t.Helper()
	opts := Options{Detector: d, MaxRacesRecorded: 1 << 20}
	if shards >= 0 {
		opts.Async = true
		opts.DetectShards = shards
	}
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	body := prog(r)
	rep, err := r.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestShardedByteIdenticalReports is the tentpole's core guarantee: for
// each supported detector, shard counts 1, 2, and 4 produce a Report —
// races, counts, strands, deterministic stats — byte-identical to the
// synchronous run.
func TestShardedByteIdenticalReports(t *testing.T) {
	prog := shardProgram(16 << 10)
	for _, d := range shardTestDetectors {
		sync := runSharded(t, d, -1, prog)
		if sync.RaceCount == 0 {
			t.Fatalf("%v: program produced no races; test is vacuous", d)
		}
		for _, n := range []int{1, 2, 4} {
			got := runSharded(t, d, n, prog)
			if got.RaceCount != sync.RaceCount {
				t.Errorf("%v shards=%d: RaceCount %d, sync %d", d, n, got.RaceCount, sync.RaceCount)
			}
			if got.Strands != sync.Strands {
				t.Errorf("%v shards=%d: Strands %d, sync %d", d, n, got.Strands, sync.Strands)
			}
			if !reflect.DeepEqual(got.Races, sync.Races) {
				t.Errorf("%v shards=%d: Races differ\n got: %v\nsync: %v", d, n, got.Races, sync.Races)
			}
			if ns, ng := normStats(sync.Stats), normStats(got.Stats); ns != ng {
				t.Errorf("%v shards=%d: stats differ\n got: %+v\nsync: %+v", d, n, ng, ns)
			}
		}
	}
}

// TestShardedTinyBatchGeometries forces batch-boundary and backpressure
// cases through both the main ring and the per-shard rings.
func TestShardedTinyBatchGeometries(t *testing.T) {
	prog := shardProgram(16 << 10)
	sync := runSharded(t, DetectorSTINT, -1, prog)
	for _, geom := range [][2]int{{1, 1}, {3, 2}, {7, 3}} {
		r, err := NewRunner(Options{
			Detector: DetectorSTINT, Async: true, DetectShards: 3,
			MaxRacesRecorded: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.asyncBatchEvents, r.asyncRingDepth = geom[0], geom[1]
		body := prog(r)
		rep, err := r.Run(body)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.Races, sync.Races) || rep.Strands != sync.Strands ||
			normStats(rep.Stats) != normStats(sync.Stats) {
			t.Errorf("geometry %v: sharded run diverged from sync", geom)
		}
	}
}

// TestShardedUtilizationReadout checks the Report's sharded observability:
// one busy figure per worker, summing to PipelineDetectTime, plus the
// sequencer's own busy time.
func TestShardedUtilizationReadout(t *testing.T) {
	rep := runSharded(t, DetectorSTINT, 4, shardProgram(16<<10))
	if len(rep.ShardBusy) != 4 {
		t.Fatalf("ShardBusy has %d entries, want 4", len(rep.ShardBusy))
	}
	var sum time.Duration
	for _, d := range rep.ShardBusy {
		sum += d
	}
	if sum != rep.Stats.PipelineDetectTime {
		t.Errorf("sum(ShardBusy) = %v, PipelineDetectTime = %v", sum, rep.Stats.PipelineDetectTime)
	}
	if rep.SequencerBusy == 0 {
		t.Error("SequencerBusy not reported")
	}
}

// TestShardedOnRaceDelivered checks every race still reaches the user
// callback (in some order) before Run returns.
func TestShardedOnRaceDelivered(t *testing.T) {
	var calls int
	r, err := NewRunner(Options{
		Detector: DetectorSTINT, Async: true, DetectShards: 2,
		MaxRacesRecorded: 1 << 20,
		OnRace:           func(Race) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	body := shardProgram(16 << 10)(r)
	rep, err := r.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(calls) != rep.RaceCount {
		t.Errorf("OnRace called %d times, RaceCount %d", calls, rep.RaceCount)
	}
}

// TestShardedIgnoredForReachOnlyAndOff: DetectShards is accepted but inert
// when there is no page-partitioned work.
func TestShardedIgnoredForReachOnlyAndOff(t *testing.T) {
	r, err := NewRunner(Options{Detector: DetectorReachOnly, Async: true, DetectShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(func(t *Task) {
		t.Spawn(func(*Task) {})
		t.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strands != 4 {
		t.Errorf("Strands = %d, want 4", rep.Strands)
	}
	if rep.ShardBusy != nil {
		t.Errorf("ShardBusy reported for an unsharded run: %v", rep.ShardBusy)
	}

	r, err = NewRunner(Options{Detector: DetectorOff, Async: true, DetectShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err = r.Run(func(t *Task) { t.Spawn(func(*Task) {}); t.Sync() })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy() {
		t.Error("DetectorOff reported races")
	}
}

// skewShards is the shard count the skip-scan skew tests run under.
const skewShards = 4

// skewProgram builds a one-hot-page workload: every access lands on a
// single 64 KiB shadow page, so under 4-shard detection exactly one worker
// owns all access work and the batch summaries let the other three skip
// every batch. It returns the program and the owning shard index.
func skewProgram(r *Runner) (TaskFunc, int) {
	buf := r.Arena().AllocWords("hot", 48<<10)
	base := buf.Base()
	pageSize := Addr(1) << coalesce.PageBytesBits
	// First word index whose enclosing page is fully inside the buffer, so
	// the whole index range below stays on that one page.
	start := 0
	if off := base % pageSize; off != 0 {
		start = int((pageSize - off) / 4)
	}
	page := uint64(base+Addr(start)*4) >> coalesce.PageBytesBits
	owner := evstream.PickShard(page, skewShards)
	prog := func(t *Task) {
		for i := 0; i < 4; i++ {
			i := i
			t.Spawn(func(c *Task) {
				c.StoreRange(buf, start+i*512, 1024) // overlapping writes: races
				for j := 0; j < 200; j++ {
					c.Load(buf, start+(i*389+j*7)%8192)
				}
			})
		}
		t.Sync()
		t.LoadRange(buf, start, 4096)
	}
	return prog, owner
}

// TestShardedSkewSkipScan is the tentpole's payoff case: on a one-hot-page
// workload the non-owning workers must skip (not scan) at least 80% of
// their batches, the skip counters must reconcile, and the Report must stay
// byte-identical to both the synchronous run and a summaries-off run.
func TestShardedSkewSkipScan(t *testing.T) {
	runSkew := func(po pipeOpts) (*Report, int) {
		t.Helper()
		r, err := NewRunner(Options{
			Detector: DetectorSTINT, Async: true, DetectShards: skewShards,
			MaxRacesRecorded: 1 << 20, DisableBatchSummaries: po.nosum,
			DisableCompactEvents: po.nocompact, SummaryStamping: po.stamp,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Small batches so the run spans many batches and the skip ratio is
		// meaningful.
		r.asyncBatchEvents, r.asyncRingDepth = 64, 4
		prog, owner := skewProgram(r)
		rep, err := r.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		return rep, owner
	}
	// checkSkew asserts the skip fast path fired: on the one-hot-page
	// workload every non-owner shard must skip at least 80% of its batches.
	// The ratio — not the absolute count — is the invariant: the compact
	// encoding packs more events per batch at the same byte footprint, so
	// the two encodings see different batch totals but the same skip rate.
	checkSkew := func(name string, rep *Report, owner int) {
		t.Helper()
		if rep.Stats.BatchesSkipped == 0 {
			t.Fatalf("%s: summaries on, one-hot-page workload, but no batch was skipped", name)
		}
		var sum uint64
		for i, l := range rep.ShardLoad {
			sum += l.BatchesSkipped
			if i == owner {
				continue
			}
			total := l.BatchesScanned + l.BatchesSkipped
			if total == 0 {
				t.Fatalf("%s: non-owner shard %d saw no batches", name, i)
			}
			if ratio := float64(l.BatchesSkipped) / float64(total); ratio < 0.8 {
				t.Errorf("%s: non-owner shard %d skipped only %.0f%% of %d batches", name, i, 100*ratio, total)
			}
		}
		if sum != rep.Stats.BatchesSkipped {
			t.Errorf("%s: ShardLoad skip counters sum to %d, Stats.BatchesSkipped = %d", name, sum, rep.Stats.BatchesSkipped)
		}
	}

	rep, owner := runSkew(pipeOpts{})
	if rep.RaceCount == 0 {
		t.Fatal("skew program produced no races; test is vacuous")
	}
	checkSkew("compact", rep, owner)

	// The fixed encoding must skip at the same rate: Summary.Ctl switching
	// from event indexes to byte offsets changed the bookkeeping, not which
	// batches are skippable.
	fixed, fixedOwner := runSkew(pipeOpts{nocompact: true})
	checkSkew("nocompact", fixed, fixedOwner)

	// Producer-side and label-stage stamping produce the identical stamp
	// over the identical batch boundaries, so with the same geometry and
	// encoding the skip counts must agree exactly, not just in ratio.
	prodStamp, prodOwner := runSkew(pipeOpts{stamp: StampProducer})
	labelStamp, _ := runSkew(pipeOpts{stamp: StampLabelStage})
	checkSkew("producer-stamp", prodStamp, prodOwner)
	if prodStamp.Stats.BatchesSkipped != labelStamp.Stats.BatchesSkipped {
		t.Errorf("producer-stamp skipped %d batches, label-stamp %d: stamping stage changed the skip set",
			prodStamp.Stats.BatchesSkipped, labelStamp.Stats.BatchesSkipped)
	}

	// Summaries off: nothing skips, and the report is still byte-identical.
	nosum, _ := runSkew(pipeOpts{nosum: true})
	if nosum.Stats.BatchesSkipped != 0 {
		t.Errorf("summaries disabled but BatchesSkipped = %d", nosum.Stats.BatchesSkipped)
	}
	for i, l := range nosum.ShardLoad {
		if l.BatchesSkipped != 0 {
			t.Errorf("summaries disabled but shard %d skipped %d batches", i, l.BatchesSkipped)
		}
	}

	rSync, err := NewRunner(Options{Detector: DetectorSTINT, MaxRacesRecorded: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	progSync, _ := skewProgram(rSync)
	sync, err := rSync.Run(progSync)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		got  *Report
	}{
		{"summaries-on", rep}, {"summaries-off", nosum}, {"nocompact", fixed},
		{"producer-stamp", prodStamp}, {"label-stamp", labelStamp},
	} {
		if c.got.RaceCount != sync.RaceCount || c.got.Strands != sync.Strands {
			t.Errorf("%s: RaceCount/Strands %d/%d, sync %d/%d",
				c.name, c.got.RaceCount, c.got.Strands, sync.RaceCount, sync.Strands)
		}
		if !reflect.DeepEqual(c.got.Races, sync.Races) {
			t.Errorf("%s: Races differ from sync", c.name)
		}
		if ns, ng := normStats(sync.Stats), normStats(c.got.Stats); ns != ng {
			t.Errorf("%s: stats differ\n got: %+v\nsync: %+v", c.name, ng, ns)
		}
	}
}

// TestShardedOnRacePanicPropagates hardens teardown: a panicking user
// OnRace callback in a worker must abort the stage graph, unblock the
// producer (possibly stuck publishing into a full ring), and re-panic out
// of Run — not deadlock and not get swallowed.
func TestShardedOnRacePanicPropagates(t *testing.T) {
	r, err := NewRunner(Options{
		Detector: DetectorSTINT, Async: true, DetectShards: 2,
		OnRace: func(Race) { panic("user callback exploded") },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny geometry keeps the producer publishing long after the first race
	// fires, so the abort path must actually unblock it.
	r.asyncBatchEvents, r.asyncRingDepth = 1, 1
	buf := r.Arena().AllocWords("buf", 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("user OnRace panic did not propagate out of Run")
		}
	}()
	r.Run(func(task *Task) {
		for i := 0; i < 8; i++ {
			task.Spawn(func(c *Task) { c.StoreRange(buf, 0, 2048) })
		}
		task.Sync()
	})
}

// TestShardedMultipleRunsIndependent reuses one sharded Runner.
func TestShardedMultipleRunsIndependent(t *testing.T) {
	r, err := NewRunner(Options{Detector: DetectorSTINT, Async: true, DetectShards: 2, MaxRacesRecorded: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("x", 4096)
	prog := func(t *Task) {
		t.Spawn(func(c *Task) { c.StoreRange(buf, 0, 2048) })
		t.StoreRange(buf, 1024, 2048)
		t.Sync()
	}
	first, err := r.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Races, second.Races) || first.RaceCount != second.RaceCount {
		t.Errorf("re-running changed the report: %d vs %d races", first.RaceCount, second.RaceCount)
	}
}
