// Parallel execution with online detection (Options.ParallelDetect): the
// goroutine-based executor and the sharded detector, joined by a
// deterministic merge.
//
// Topology:
//
//	task goroutines ──chunk queue──▶ merge stage ──broadcast ring──▶ N workers ──▶ merge finalizer
//
// Each task goroutine owns a parTask: a private working batch (from the
// shared BatchPool) it fills with its strand's access events, stamping the
// shard-occupancy mask as it appends — the per-event summary work that the
// serial pipeline gives to the producer or label stage here runs on the
// executor's parallelism. A chunk is cut — published to the bounded
// multi-producer TaskQueue — when the batch fills or the strand ends, and
// the strand-ending cuts carry the structure transition as the chunk
// terminator (spawn naming the child task, strand-creating sync, task
// end). Structure events never ride in-band.
//
// The merge stage drains the queue and feeds chunks to stage.Reorder,
// which re-emits them in serial order: the depth-first walk of the spawn
// tree that the serial executor takes by construction. The walk is driven
// entirely by the chunks' own linkage (task identities and terminators),
// so the output order — and with it batch composition, label assignment,
// and ultimately the Report — depends only on the program, never on the
// scheduler. In serial order the merge coalesces small chunks into
// full-size batches (Batch.AppendFrom rebases the compact delta across the
// seam), appends each terminator's structure event, advances the depa
// label Builder exactly as the label stage would, and publishes labeled
// batches onto the same broadcast ring the sharded workers already
// consume. Downstream of the ring, nothing knows the execution was
// parallel.
//
// Why the labels must be assigned here and not by the executors: depa
// strand IDs are dense serial ranks — a strand's ID depends on how many
// strands precede it in the serial projection, which for a spawned task is
// unknowable until every earlier subtree has finished. Executors therefore
// stamp only schedule-independent facts (the page masks); the merge, which
// is the first point where serial order exists again, owns ID assignment.
// That also keeps the Builder single-threaded, preserving its immutable-
// snapshot contract for the workers.
//
// Deadlock-freedom: the dependency chain is acyclic — executors block only
// on the queue, the merge blocks only on the queue (drain) and the
// broadcast ring (publish), workers block only on the ring. BatchPool.Get
// never blocks (it allocates on a dry pool), and the reorder buffer is
// unbounded but finite (bounded by the stream's scheduling skew; its peak
// is reported as Report.ReorderPeak). On abort the queue and ring close,
// and every blocked stage unwinds exactly as in the serial pipeline.

package stint

import (
	"time"

	"stint/internal/coalesce"
	"stint/internal/depa"
	"stint/internal/detect"
	"stint/internal/evstream"
	"stint/internal/stage"
)

// newParallelState builds the ParallelDetect pipeline state: a chunk queue
// deep enough to keep the merge busy ahead of a burst of tiny strand-end
// chunks, and a batch pool sized to cover every stage's working set
// (in-queue chunks, in-flight broadcast batches, per-goroutine working
// batches) before Get falls back to allocating.
func newParallelState(ringDepth, batchEvents int, compact bool) *asyncState {
	queueDepth := ringDepth * 8
	return &asyncState{
		batchCap:  batchEvents,
		ringDepth: ringDepth,
		graph:     stage.NewGraph(),
		queue:     evstream.NewTaskQueue(queueDepth),
		pool:      evstream.NewBatchPool(queueDepth+ringDepth+8, batchEvents, compact),
	}
}

// parTask is one executor goroutine's chunk emitter: the task's identity,
// its working batch, the running chunk index, and the busy-lap start. Each
// task goroutine owns exactly one parTask; nothing here is shared except
// the asyncState's queue, pool, and counters.
type parTask struct {
	as    *asyncState
	id    uint64
	idx   uint32
	batch *evstream.Batch
	t0    time.Time
}

func newParTask(as *asyncState, id uint64) *parTask {
	return &parTask{as: as, id: id, batch: as.pool.Get(), t0: time.Now()}
}

// pause banks the busy lap before a blocking handoff (queue publish, child
// join); resume starts the next lap after it. Their net effect is
// Report.ExecutorBusy: execution and encoding time, not waiting time.
func (p *parTask) pause()  { p.as.execBusy.Add(int64(time.Since(p.t0))) }
func (p *parTask) resume() { p.t0 = time.Now() }

// emitAccess appends one access event to the task's working batch, cutting
// a mid-strand chunk first when the batch is full. The shard-occupancy
// mask is stamped here, on the executor's parallelism (ParallelDetect has
// no producer/label-stage stamping choice to make — the merge never
// decodes access events, so the executor is the only stage that can stamp
// masks without adding a scan).
func (p *parTask) emitAccess(op evstream.Op, addr, size uint64) {
	if p.batch.Full() {
		p.cut(evstream.ChunkCut, 0)
	}
	if p.as.summarize {
		p.batch.Sum.Mask |= evstream.SpanMask(addr, size, coalesce.PageBytesBits, p.as.shards)
	}
	p.batch.AppendAccess(op, addr, size)
}

// emitRange is emitAccess for compiler-coalesced range events.
func (p *parTask) emitRange(op evstream.Op, addr uint64, count int, elem uint64) {
	if p.batch.Full() {
		p.cut(evstream.ChunkCut, 0)
	}
	if p.as.summarize {
		p.batch.Sum.Mask |= evstream.SpanMask(addr, uint64(count)*elem, coalesce.PageBytesBits, p.as.shards)
	}
	p.batch.AppendRange(op, addr, count, elem)
}

// cut publishes the working batch as a chunk with the given terminator and
// starts a fresh one. A false Publish means the graph aborted and closed
// the queue: the batch is reset and reused, events drop on the floor, and
// the goroutine keeps unwinding to its natural exit (the failure is the
// run's result, re-raised by drainParallel). The chunk index advances
// regardless so the doomed stream stays internally consistent.
func (p *parTask) cut(end evstream.ChunkEnd, child uint64) {
	p.pause()
	if p.as.queue.Publish(evstream.Chunk{Batch: p.batch, Task: p.id, Idx: p.idx, End: end, Child: child}) {
		p.batch = p.as.pool.Get()
	} else {
		p.batch.Reset()
	}
	p.idx++
	p.resume()
}

// buildParallel constructs the retained detector-side state of the
// ParallelDetect pipeline — label Builder, broadcast ring, and the same N
// shard workers the Async sharded pipeline uses — without launching
// anything; launchParallel wires them onto each run's fresh stage graph.
func (as *asyncState) buildParallel(cfg detect.Config, shards, maxRec int, user func(Race), summarize bool) (*depa.Builder, []*shardWorker, *evstream.BcastRing[labeledBatch]) {
	as.shards = shards
	as.summarize = summarize
	labels := depa.NewBuilder()
	bcast := evstream.NewBcastRing(as.ringDepth, shards, func(m labeledBatch) {
		// Last worker release: the batch returns to the shared pool.
		as.pool.Put(m.batch)
	})
	workers := as.buildWorkers(cfg, shards, maxRec, user, bcast)
	return labels, workers, bcast
}

// launchParallel wires the ParallelDetect stage graph for one run: the
// merge stage bridging the chunk queue to the broadcast ring, and the same
// prebuilt shard workers and merge finalizer the Async sharded pipeline
// uses.
func (as *asyncState) launchParallel(labels *depa.Builder, workers []*shardWorker, bcast *evstream.BcastRing[labeledBatch], maxRec int) {
	as.graph.OnAbort(func() {
		as.queue.Close()
		bcast.Close()
	})
	for _, w := range workers {
		as.graph.Go(w.run)
	}
	as.graph.Go(func() { as.mergeParallel(labels, bcast) })
	as.graph.Seal(func() { as.mergeSharded(labels, workers, bcast, maxRec) })
}

// mergeParallel is the merge stage: it reorders the chunk stream into the
// serial projection, coalesces it into labeled full-size batches, and
// broadcasts them. Its busy meter lands in asyncState.seqBusy — reported
// as Report.SequencerBusy, whose role it inherits from the label stage —
// and excludes both queue waits and broadcast-publish blocking.
func (as *asyncState) mergeParallel(labels *depa.Builder, bcast *evstream.BcastRing[labeledBatch]) {
	view := labels.View() // covers the root strand until the first spawn
	as.viewSnaps++
	out := as.pool.Get()
	reorder := stage.NewReorder()
	aborted := false
	var blocked time.Duration // publish-blocking time inside the current lap

	publish := func(b *evstream.Batch) {
		if labels.StrandCount() > view.StrandCount() {
			view = labels.View()
			as.viewSnaps++
		}
		if !as.summarize {
			// Unsummarized batches must carry MaskAll so no worker mistakes
			// the zero mask for "skippable by everyone".
			b.Sum.Mask = evstream.MaskAll
		}
		t0 := time.Now()
		if !bcast.Publish(labeledBatch{batch: b, labels: view}) {
			as.pool.Put(b)
			aborted = true
		}
		blocked += time.Since(t0)
	}
	// flush broadcasts the accumulator and starts a fresh one; empty
	// accumulators (flush on an already-cut boundary) publish nothing.
	flush := func() {
		if out.Len() == 0 {
			return
		}
		publish(out)
		out = as.pool.Get()
	}
	emit := func(c evstream.Chunk) {
		if aborted {
			as.pool.Put(c.Batch)
			return
		}
		src := c.Batch
		if src.Len() > 0 {
			if !out.AppendFrom(src) {
				flush()
				if !aborted && !out.AppendFrom(src) {
					// The chunk outsizes even an empty accumulator (tiny test
					// geometries): forward it wholesale instead of copying —
					// its own mask, no structure offsets.
					publish(src)
					src = nil
				}
			}
			if src != nil {
				out.Sum.Mask |= src.Sum.Mask
				as.pool.Put(src)
			}
		} else {
			as.pool.Put(src)
		}
		if aborted {
			return
		}
		// The terminator becomes the structure event the serial stream
		// would carry here, stamped into the summary's Ctl offsets and
		// applied to the label builder — the merge is the label stage for
		// this pipeline.
		var op evstream.Op
		switch c.End {
		case evstream.ChunkSpawn:
			op = evstream.OpSpawn
		case evstream.ChunkSync:
			op = evstream.OpSync
		case evstream.ChunkTask:
			op = evstream.OpRestore
		default: // ChunkCut, ChunkRoot: no structure event
			return
		}
		if out.Full() {
			flush()
			if aborted {
				return
			}
		}
		off := out.AppendCtl(op)
		out.Sum.AddCtl(off)
		applyCtl(labels, op)
		as.mergeCtl++
	}

	var chunks []evstream.Chunk
	for !reorder.Done() && !aborted {
		var ok bool
		chunks, ok = as.queue.Drain(chunks[:0])
		if !ok {
			// Queue closed before the root chunk: only legal on abort (the
			// hook closes the queue under the producers). A close with the
			// graph healthy means the stream is structurally broken.
			if !as.graph.Failed() {
				panic("stint: parallel-detect chunk stream ended before the root task's final chunk")
			}
			break
		}
		t0 := time.Now()
		blocked = 0
		for _, c := range chunks {
			reorder.Offer(c, emit)
		}
		as.seqBusy.AddDur(time.Since(t0) - blocked)
	}
	if out.Len() > 0 && !aborted {
		publish(out)
	} else {
		as.pool.Put(out)
	}
	bcast.Close()
	as.reorderPeak = reorder.Peak()
}

// drainParallel closes the chunk queue, waits out the stage graph — re-
// panicking the first stage failure on the producer goroutine, exactly
// like drain — and folds the stream totals into Stats. Called after the
// root's final chunk, so the close never truncates a healthy stream:
// every chunk is already queued (each task publishes its chunks before
// its parent's join returns, and the root joins everything first).
func (as *asyncState) drainParallel() {
	as.queue.Close()
	as.graph.Wait()
	qs := as.queue.Stats()
	// Access events stream through the queue; structure events are
	// synthesized by the merge (1 tag byte compact, 16 bytes fixed). The
	// totals match what the serial Async pipeline would have streamed for
	// the same program.
	ctlBytes := as.mergeCtl * 16
	if as.pool.Compact() {
		ctlBytes = as.mergeCtl
	}
	as.stats.EventsStreamed = qs.EventsPublished + as.mergeCtl
	as.stats.StreamBytes = qs.StreamBytes + ctlBytes
}
