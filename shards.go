// Sharded multi-worker detection (Options.DetectShards): the Async
// pipeline's detector side split across N workers by shadow page.
//
// Topology:
//
//	mutator ──main ring──▶ sequencer ──N shard rings──▶ N workers ──▶ merge
//
// The sequencer is the only goroutine that sees the structure events. It
// maintains an internal/depa label Builder in exactly the order the inline
// detector maintains SP-Order, so strand IDs coincide, and it routes every
// access event to the shard owning its 64 KiB shadow page (splitting
// accesses that straddle pages, which is exact because the runtime-
// coalescing engines treat an access as nothing but its set of touched
// words). When a strand ends, the sequencer appends an OpStrand boundary —
// carrying the strand's ID — to each shard that received events from it,
// so every worker observes the serial order of strands restricted to its
// own pages.
//
// Workers never share mutable detector state: each owns the page
// directory, treap pools, and coalesce buffers for its page subset, and
// answers Parallel/LeftOf from the immutable label snapshot carried inside
// each batch message. The only cross-goroutine data are the rings and the
// read-only labels (published before the events that reference them).
//
// Correctness argument (see DESIGN.md "Why sharding is exact"): the access
// history is independent per page, every flushed interval is page-
// contained, and each worker replays its pages' intervals in the same
// serial strand order the inline detector would — so each page's store
// evolves byte-identically to the synchronous run, and the union of the
// workers' race reports equals the synchronous report as a multiset. The
// canonical collector then makes Report.Races identical, not just
// equivalent.

package stint

import (
	"sync"
	"time"

	"stint/internal/coalesce"
	"stint/internal/depa"
	"stint/internal/detect"
	"stint/internal/evstream"
)

// shardMsg is one per-shard batch: access/strand events plus the label
// snapshot covering every strand they reference.
type shardMsg struct {
	events []evstream.Event
	labels depa.View
}

// shardWorker consumes one shard's stream. It implements detect.Reach over
// the label snapshots, standing in for *spord.SP.
type shardWorker struct {
	ring *evstream.MsgRing[shardMsg]
	view depa.View
	cur  int32 // strand owning the events seen since the last OpStrand

	// Results, read after wg.Wait().
	stats Stats
	busy  time.Duration
	col   *raceCollector
}

// CurrentID, Parallel, and LeftOf satisfy detect.Reach. CurrentID returns
// the strand whose events the worker is replaying — maintained from
// OpStrand boundaries rather than a live SP structure.
func (w *shardWorker) CurrentID() int32 { return w.cur }

func (w *shardWorker) Parallel(a, b int32) bool { return w.view.Parallel(a, b) }

func (w *shardWorker) LeftOf(a, b int32) bool { return w.view.LeftOf(a, b) }

func (w *shardWorker) run(cfg detect.Config, wg *sync.WaitGroup) {
	defer wg.Done()
	engine := detect.New(cfg, w)
	for {
		m, ok := w.ring.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		w.view = m.labels
		for _, ev := range m.events {
			switch ev.EvOp() {
			case evstream.OpRead:
				engine.ReadHook(ev.Addr(), ev.Size())
			case evstream.OpWrite:
				engine.WriteHook(ev.Addr(), ev.Size())
			case evstream.OpStrand:
				// The strand owning the preceding events just ended; flush
				// its page-local intervals against this shard's history.
				w.cur = ev.StrandID()
				engine.StrandEnd()
			}
		}
		w.busy += time.Since(t0)
		m.events = m.events[:0]
		w.ring.Recycle(m)
	}
	t0 := time.Now()
	// Every strand was already flushed by its OpStrand boundary, so this
	// only aggregates the per-page store statistics.
	engine.Finish()
	w.busy += time.Since(t0)
	w.stats = *engine.Stats()
}

// shardRouter is the sequencer's routing state.
type shardRouter struct {
	n        int
	rings    []*evstream.MsgRing[shardMsg]
	pending  []shardMsg // working batch per shard
	dirty    []bool     // shard received events from the current strand
	dirtyLst []int32
	batchCap int
	labels   *depa.Builder
	// splitReads/splitWrites count the extra hook calls introduced by
	// splitting page-straddling accesses; the merge subtracts them so
	// ReadHookCalls/WriteHookCalls match the synchronous run exactly.
	splitReads  uint64
	splitWrites uint64
}

func newShardRouter(n, ringDepth, batchCap int) *shardRouter {
	r := &shardRouter{
		n:        n,
		rings:    make([]*evstream.MsgRing[shardMsg], n),
		pending:  make([]shardMsg, n),
		dirty:    make([]bool, n),
		batchCap: batchCap,
		labels:   depa.NewBuilder(),
	}
	for i := range r.rings {
		r.rings[i] = evstream.NewMsgRing[shardMsg](ringDepth)
	}
	return r
}

// send appends one event to a shard's working batch, publishing when full.
func (r *shardRouter) send(shard int, ev evstream.Event) {
	m := &r.pending[shard]
	if m.events == nil {
		if got, ok := r.rings[shard].GetFree(); ok {
			*m = got
		} else {
			m.events = make([]evstream.Event, 0, r.batchCap)
		}
	}
	m.events = append(m.events, ev)
	if len(m.events) >= r.batchCap {
		r.publish(shard)
	}
}

// publish snapshots the labels into the batch and hands it to the worker.
// The snapshot covers every strand created so far, hence every strand any
// event in the batch references.
func (r *shardRouter) publish(shard int) {
	m := &r.pending[shard]
	if len(m.events) == 0 {
		return
	}
	m.labels = r.labels.View()
	r.rings[shard].Publish(*m)
	*m = shardMsg{}
}

// access routes one access or range event, splitting at page boundaries.
func (r *shardRouter) access(ev evstream.Event) {
	op := ev.EvOp()
	pieces := evstream.PageSplit(ev, coalesce.PageBytesBits, func(page uint64, piece evstream.Event) {
		s := evstream.PickShard(page, r.n)
		if !r.dirty[s] {
			r.dirty[s] = true
			r.dirtyLst = append(r.dirtyLst, int32(s))
		}
		r.send(s, piece)
	})
	if pieces > 1 {
		if op == evstream.OpRead || op == evstream.OpReadRange {
			r.splitReads += uint64(pieces - 1)
		} else {
			r.splitWrites += uint64(pieces - 1)
		}
	}
}

// strandEnd appends the current strand's boundary to every shard it dirtied.
func (r *shardRouter) strandEnd() {
	if len(r.dirtyLst) == 0 {
		return
	}
	mark := evstream.StrandMark(r.labels.Current())
	for _, s := range r.dirtyLst {
		r.dirty[s] = false
		r.send(int(s), mark)
	}
	r.dirtyLst = r.dirtyLst[:0]
}

// close flushes all working batches and closes the shard rings.
func (r *shardRouter) close() {
	for s := 0; s < r.n; s++ {
		r.publish(s)
		r.rings[s].Close()
	}
}

// consumeSharded runs on the sequencer goroutine: it drains the main event
// ring, maintains the depa labels in serial order, routes access events to
// the shard workers, and merges their results into canonical totals.
func (as *asyncState) consumeSharded(cfg detect.Config, shards, maxRec int, user func(Race)) {
	defer close(as.done)
	router := newShardRouter(shards, defaultAsyncRingDepth, as.shardBatchCap())

	// Workers: each gets its own engine, race collector, and a Reach over
	// the shared immutable labels. User OnRace calls are serialized with a
	// mutex — across workers their order is nondeterministic (documented),
	// but the recorded Report is canonical regardless.
	var raceMu sync.Mutex
	var wg sync.WaitGroup
	workers := make([]*shardWorker, shards)
	for i := range workers {
		w := &shardWorker{ring: router.rings[i], col: newRaceCollector(maxRec)}
		wcfg := cfg
		wcfg.OnRace = func(race Race) {
			w.col.add(w.view.SeqRank(race.Cur), race)
			if user != nil {
				raceMu.Lock()
				user(race)
				raceMu.Unlock()
			}
		}
		workers[i] = w
		wg.Add(1)
		go w.run(wcfg, &wg)
	}

	for {
		batch, ok := as.ring.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		for _, ev := range batch {
			switch ev.EvOp() {
			case evstream.OpSpawn:
				router.strandEnd()
				router.labels.Spawn()
			case evstream.OpRestore:
				router.strandEnd() // the child's final strand ends here
				router.labels.Restore()
			case evstream.OpSync:
				router.strandEnd()
				router.labels.Sync()
			default:
				router.access(ev)
			}
		}
		as.seqBusy += time.Since(t0)
		as.ring.Recycle(batch)
	}
	t0 := time.Now()
	router.strandEnd() // the root's final strand
	router.close()
	as.seqBusy += time.Since(t0)
	wg.Wait()

	// Merge: counters partition exactly across shards (pages are disjoint
	// and intervals page-contained), except the hook-call counts, which
	// grew by one per page split.
	col := newRaceCollector(maxRec)
	as.shardBusy = make([]time.Duration, shards)
	var detectBusy time.Duration
	for i, w := range workers {
		addStats(&as.stats, &w.stats)
		col.mergeFrom(w.col)
		as.shardBusy[i] = w.busy
		detectBusy += w.busy
	}
	as.stats.ReadHookCalls -= router.splitReads
	as.stats.WriteHookCalls -= router.splitWrites
	as.stats.PipelineDetectTime = detectBusy
	as.strands = router.labels.StrandCount()
	as.races = col.sorted()
}

// shardBatchCap sizes the per-shard batches from the main ring's batch
// capacity so test geometries (tiny batches) propagate to the shard hop.
func (as *asyncState) shardBatchCap() int {
	if as.batchCap > 0 {
		return as.batchCap
	}
	return defaultAsyncBatchEvents
}

// addStats accumulates a shard's detector counters into the merged totals.
func addStats(dst *Stats, s *Stats) {
	dst.ReadAccesses += s.ReadAccesses
	dst.WriteAccesses += s.WriteAccesses
	dst.ReadHookCalls += s.ReadHookCalls
	dst.WriteHookCalls += s.WriteHookCalls
	dst.ReadIntervals += s.ReadIntervals
	dst.WriteIntervals += s.WriteIntervals
	dst.ReadIntervalBytes += s.ReadIntervalBytes
	dst.WriteIntervalBytes += s.WriteIntervalBytes
	dst.HashOps += s.HashOps
	dst.TreapOps += s.TreapOps
	dst.TreapNodesVisited += s.TreapNodesVisited
	dst.TreapOverlaps += s.TreapOverlaps
	dst.AccessHistoryTime += s.AccessHistoryTime
	dst.Races += s.Races
	dst.AccessHistoryBytes += s.AccessHistoryBytes
}
