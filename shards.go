// Sharded multi-worker detection (Options.DetectShards): the Async
// pipeline's detector side split across N workers by shadow page, as an
// explicit stage graph.
//
// Topology:
//
//	mutator ──main ring──▶ label stage ──broadcast ring──▶ N workers ──▶ merge
//
// The label stage advances an internal/depa label Builder over the
// structure events (spawn/restore/sync) in exactly the order the inline
// detector maintains SP-Order, attaches an immutable label snapshot, and
// republishes the batch onto a single-producer/multi-consumer broadcast
// ring (evstream.BcastRing). It never splits, copies, or routes access
// events — the per-event work that made the PR 3 sequencer the multi-core
// critical path. With producer stamping it does not even scan the batch
// (the structure events are exactly the offsets in the batch's
// Summary.Ctl); with label-stage stamping it scans each batch once,
// stamping the Summary itself so the mutator sheds that per-event work.
// Label snapshots are demand-driven — re-taken only when a batch created
// strands — instead of per-batch.
//
// Page splitting and shard filtering happen on the workers instead: every
// worker scans the same labeled batch, replays the structure events through
// its own depa.Tracker (strand IDs are a deterministic function of the
// structure stream, so all trackers agree with the Builder), page-splits
// each access locally, and keeps only the pieces whose 64 KiB shadow page
// hashes to its shard index. Splitting at page boundaries is exact because
// the runtime-coalescing engines treat an access as nothing but its set of
// touched words.
//
// The batch Summary — stamped by the producer or the label stage,
// identically either way — gives workers a fast path: a
// worker whose mask bit is clear skips the access events entirely — the
// clear bit proves no piece of any access in the batch maps to its shard
// (see evstream.Summary) — and replays only the structure events through
// Summary.Ctl, so its tracker state and strand-boundary flushes stay
// byte-identical to a full scan. Split-surplus accounting is untouched by
// skipping: a skipped batch contributes no pieces to this worker, exactly
// as a full scan of it would have.
//
// Workers never share mutable detector state: each owns the page
// directory, treap pools, and coalesce buffers for its page subset, and
// answers Parallel/LeftOf from the immutable label snapshot carried inside
// each batch. The only cross-goroutine data are the rings, the read-only
// labels (published before the events that reference them), and the
// batches themselves, which are read-only between Publish and the
// broadcast ring's last Release (the refcounted recycle hands them back to
// the main ring's free list).
//
// Correctness argument (see DESIGN.md "Why sharding is exact"): the access
// history is independent per page, every flushed interval is page-
// contained, and each worker — flushing at every strand boundary it
// observes, which is every strand boundary — replays its pages' intervals
// in the same serial strand order the inline detector would. So each
// page's store evolves byte-identically to the synchronous run, and the
// union of the workers' race reports equals the synchronous report as a
// multiset. The canonical collector then makes Report.Races identical, not
// just equivalent.

package stint

import (
	"sync"
	"time"

	"stint/internal/coalesce"
	"stint/internal/depa"
	"stint/internal/detect"
	"stint/internal/evstream"
	"stint/internal/stage"
)

// labeledBatch is one broadcast message: the producer's event batch,
// untouched (events and summary), plus the label snapshot covering every
// strand its events reference.
type labeledBatch struct {
	batch  *evstream.Batch
	labels depa.View
}

// labelStage runs on the sequencer goroutine: it drains the main event
// ring, applies the structure events to the label Builder, and broadcasts
// each batch with a label snapshot covering every strand any event in the
// batch references. Snapshots are demand-driven rather than per-batch: the
// stage re-snapshots only after a batch whose structure events actually
// created strands, and attaches the previous snapshot to every other batch
// — exact because labels are immutable and append-only, so any view whose
// strand count has caught up answers Parallel/LeftOf/SeqRank identically
// to a fresh one (DESIGN.md "Why per-refill label views are exact").
//
// With producer stamping the structure events are exactly the offsets in
// the batch's Summary.Ctl and the access events are never touched; with
// label-stage stamping (labelScan) the stage decodes the batch once,
// advancing the builder and stamping the Ctl offsets and page mask in the
// same pass — per-batch producer work moved off the mutator.
//
// A false broadcast Publish means the graph aborted and closed the rings;
// the stage recycles the batch it still owns and exits cleanly — the
// failure that caused the abort is the one worth reporting, not a
// secondary panic here.
func (as *asyncState) labelStage(labels *depa.Builder, bcast *evstream.BcastRing[labeledBatch]) {
	view := labels.View() // covers the root strand until the first spawn
	as.viewSnaps++
	for {
		batch, ok := as.ring.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		if as.prodStamp {
			// The producer indexed the structure events; no need to scan
			// the access events at all.
			for i := range batch.Sum.Ctl {
				applyCtl(labels, batch.CtlOp(i))
			}
		} else {
			as.labelScan(labels, batch)
		}
		if labels.StrandCount() > view.StrandCount() {
			view = labels.View()
			as.viewSnaps++
		}
		m := labeledBatch{batch: batch, labels: view}
		as.seqBusy.Add(t0) // busy excludes the blocking publish below
		if !bcast.Publish(m) {
			as.ring.Recycle(batch)
			break
		}
	}
	bcast.Close()
}

// labelScan is the label stage's stamping scan (sharded mode without
// producer stamping): one decode pass that advances the label builder on
// the structure events and stamps the batch's Summary — Ctl offsets and
// the access page mask when summaries are on, MaskAll when they are off.
// The batch arrives with a zeroed Summary (the producer stamped nothing)
// and is exclusively owned between ring.Next and bcast.Publish, so the
// stamp is ordinary single-threaded mutation.
func (as *asyncState) labelScan(labels *depa.Builder, batch *evstream.Batch) {
	it := batch.Iter()
	var blk [evstream.BlockEvents]evstream.Event
	if !as.summarize {
		for {
			evs := it.DecodeBlock(&blk)
			if len(evs) == 0 {
				break
			}
			for _, ev := range evs {
				applyCtl(labels, ev.EvOp())
			}
		}
		batch.Sum.Mask = evstream.MaskAll
		return
	}
	// Accesses wholly inside a registry-quiesced page stay out of the
	// stamped mask: the label stage is strictly ahead of the workers in
	// stream order, so any page in the registry quiesced before every event
	// in this batch, and the owning worker would drop these events anyway
	// (deadSpan). Omitting their bits lets that worker skip whole batches
	// whose only live content is dead pages — its Ctl replay still advances
	// the tracker and flushes strand boundaries byte-identically. The
	// registry is read atomically here (this runs on the sequencer
	// goroutine, not the producer's), and the liveness check is hoisted to
	// once per batch.
	q := as.quiesce
	if q != nil && q.Len() == 0 {
		q = nil
	}
	for {
		// Ctl offsets are block-relative: the j-th event of a decoded group
		// sits at Pos-before-the-call + j — an event index in a fixed batch,
		// a byte offset in a compact one, where structure events decode as
		// contiguous runs of one tag byte each (access blocks carry none).
		pos := it.Pos()
		evs := it.DecodeBlock(&blk)
		if len(evs) == 0 {
			break
		}
		for j, ev := range evs {
			op := ev.EvOp()
			if op <= evstream.OpSync {
				batch.Sum.AddCtl(pos + j)
				applyCtl(labels, op)
			} else if q == nil || !deadEvent(q, ev) {
				batch.Sum.Mask |= evstream.AccessMask(ev, coalesce.PageBytesBits, as.shards)
			}
		}
	}
}

// applyCtl advances the label builder for one structure event; access
// events fall through.
func applyCtl(labels *depa.Builder, op evstream.Op) {
	switch op {
	case evstream.OpSpawn:
		labels.Spawn()
	case evstream.OpRestore:
		labels.Restore()
	case evstream.OpSync:
		labels.Sync()
	}
}

// shardWorker consumes the broadcast stream for one shard. It implements
// detect.Reach over the label snapshots, standing in for *spord.SP: the
// current strand comes from its private Tracker, reachability from the
// batch's immutable View.
type shardWorker struct {
	id, n int
	bcast *evstream.BcastRing[labeledBatch]
	view  depa.View
	track *depa.Tracker
	// engine is built once (its OnRace closure captures the worker, whose
	// identity is stable) and retained across runs; reset re-arms it.
	engine detect.Engine

	// splitReads/splitWrites count the extra hook calls this worker's local
	// splitting introduced beyond the piece the access's first page owns;
	// summed across workers they equal pieces-1 per split access, and the
	// merge subtracts them so ReadHookCalls/WriteHookCalls match the
	// synchronous run exactly.
	splitReads  uint64
	splitWrites uint64

	// Decode-side telemetry for Report.ShardLoad: logical events and blocks
	// this worker full-scanned (their ratio is the events-per-block figure —
	// degenerate blocking shows up as a low one), and the time spent inside
	// DecodeBlock itself, sampled (every 8th call, scaled by 8) so the
	// measurement does not tax the scan it is measuring.
	eventsScanned uint64
	blocksDecoded uint64
	decodeBusy    time.Duration

	// Results, read by the merge after the stage graph joins.
	stats Stats
	busy  stage.Meter
	col   *stage.Collector
}

// CurrentID, Parallel, and LeftOf satisfy detect.Reach.
func (w *shardWorker) CurrentID() int32 { return w.track.Current() }

func (w *shardWorker) Parallel(a, b int32) bool { return w.view.Parallel(a, b) }

func (w *shardWorker) LeftOf(a, b int32) bool { return w.view.LeftOf(a, b) }

// reset re-arms the worker for another run: the tracker rewinds to the
// root strand, the engine drops its access history (retaining its warm
// pages and pools), and every per-run counter zeroes.
func (w *shardWorker) reset() {
	w.track.Reset()
	w.engine.Reset()
	w.view = depa.View{}
	w.splitReads, w.splitWrites = 0, 0
	w.eventsScanned, w.blocksDecoded = 0, 0
	w.decodeBusy = 0
	w.stats = Stats{}
	w.busy.Reset()
	w.col.Reset()
}

func (w *shardWorker) run() {
	engine := w.engine
	var blk [evstream.BlockEvents]evstream.Event
	for {
		m, ok := w.bcast.Next(w.id)
		if !ok {
			break
		}
		t0 := time.Now()
		w.view = m.labels
		if m.batch.Sum.SkippableBy(w.id) {
			// Fast path: the batch's mask proves no piece of any access
			// maps to this shard. Jump through the structure-event offsets
			// so the tracker and the strand-boundary flushes advance
			// exactly as a full scan would, and never touch the accesses —
			// in a compact batch CtlOp reads one tag byte per offset, no
			// varint decoding at all.
			for i := range m.batch.Sum.Ctl {
				switch m.batch.CtlOp(i) {
				case evstream.OpSpawn:
					engine.StrandEnd()
					w.track.Spawn()
				case evstream.OpRestore:
					engine.StrandEnd() // the child's final strand ends here
					w.track.Restore()
				case evstream.OpSync:
					engine.StrandEnd()
					w.track.Sync()
				}
			}
			w.busy.AddBatch(t0, true)
			w.bcast.Release(w.id)
			continue
		}
		it := m.batch.Iter()
		for {
			var evs []evstream.Event
			if w.blocksDecoded&7 == 0 {
				d0 := time.Now()
				evs = it.DecodeBlock(&blk)
				w.decodeBusy += time.Since(d0) * 8
			} else {
				evs = it.DecodeBlock(&blk)
			}
			if len(evs) == 0 {
				break
			}
			w.blocksDecoded++
			w.eventsScanned += uint64(len(evs))
			for _, ev := range evs {
				switch ev.EvOp() {
				case evstream.OpSpawn:
					// A strand boundary: flush the ending strand's page-local
					// intervals (a no-op for strands that touched none of this
					// shard's pages), then advance the tracker.
					engine.StrandEnd()
					w.track.Spawn()
				case evstream.OpRestore:
					engine.StrandEnd() // the child's final strand ends here
					w.track.Restore()
				case evstream.OpSync:
					engine.StrandEnd()
					w.track.Sync()
				default:
					w.access(engine, ev)
				}
			}
		}
		w.busy.AddBatch(t0, false)
		w.bcast.Release(w.id)
	}
	t0 := time.Now()
	// Finish flushes the root's final strand (the tracker is parked on it)
	// and aggregates the per-page store statistics.
	engine.Finish()
	w.busy.Add(t0)
	w.stats = *engine.Stats()
}

// access page-splits one access or range event locally and feeds the
// engine the pieces living on this worker's pages.
func (w *shardWorker) access(engine detect.Engine, ev evstream.Event) {
	op := ev.EvOp()
	isRead := op == evstream.OpRead || op == evstream.OpReadRange
	kept, first, owned := 0, true, false
	evstream.PageSplit(ev, coalesce.PageBytesBits, func(page uint64, piece evstream.Event) {
		mine := evstream.PickShard(page, w.n) == w.id
		if first {
			first, owned = false, mine
		}
		if !mine {
			return
		}
		kept++
		if isRead {
			engine.ReadHook(piece.Addr(), piece.Size())
		} else {
			engine.WriteHook(piece.Addr(), piece.Size())
		}
	})
	// The shard owning the first piece's page accounts for the original
	// hook call; everything else a worker kept is split surplus. Summed
	// over workers: kept totals the pieces, owned holds exactly once.
	extra := uint64(kept)
	if owned {
		extra--
	}
	if isRead {
		w.splitReads += extra
	} else {
		w.splitWrites += extra
	}
}

// buildSharded constructs the retained detector-side state of the sharded
// pipeline — label Builder, broadcast ring, and N workers with their
// engines — without launching anything. The Runner keeps the returned
// structures warm across runs; launchSharded wires them onto each run's
// fresh stage graph. summarize controls batch summaries (the worker skip
// fast path) — with it off, batches carry MaskAll and every worker scans
// everything — and prodStamp selects the stamping stage (see setSharded;
// Run refreshes it per run, since StampAuto reads GOMAXPROCS).
func (as *asyncState) buildSharded(cfg detect.Config, shards, maxRec int, user func(Race), summarize, prodStamp bool) (*depa.Builder, []*shardWorker, *evstream.BcastRing[labeledBatch]) {
	as.setSharded(shards, summarize, prodStamp)
	labels := depa.NewBuilder()
	bcast := evstream.NewBcastRing(as.ringDepth, shards, func(m labeledBatch) {
		// Last release: the batch is no longer referenced by any worker, so
		// it can rejoin the main ring's free list. Ring.Recycle is safe from
		// any goroutine.
		as.ring.Recycle(m.batch)
	})
	workers := as.buildWorkers(cfg, shards, maxRec, user, bcast)
	return labels, workers, bcast
}

// launchSharded wires the sharded stage graph for one run: label stage, the
// N prebuilt workers over the broadcast ring, and the merge finalizer. User
// OnRace calls are serialized with a mutex (see buildWorkers) — across
// workers their order is nondeterministic (documented), but the recorded
// Report is canonical regardless.
func (as *asyncState) launchSharded(labels *depa.Builder, workers []*shardWorker, bcast *evstream.BcastRing[labeledBatch], maxRec int) {
	// First failure anywhere (a user OnRace panic in a worker, a guard in
	// the label stage): close both rings so every peer blocked in a
	// Publish/Next unwinds, the producer's flushes turn into no-ops, and
	// drain's graph.Wait re-raises the failure on the producer.
	as.graph.OnAbort(func() {
		as.ring.Close()
		bcast.Close()
	})
	for _, w := range workers {
		as.graph.Go(w.run)
	}
	as.graph.Go(func() { as.labelStage(labels, bcast) })
	as.graph.Seal(func() { as.mergeSharded(labels, workers, bcast, maxRec) })
}

// buildWorkers constructs the N shard workers with their engines, for the
// merge finalizer and for retention across runs. Shared by the Async
// sharded pipeline and the ParallelDetect pipeline — the workers are
// identical; only the stage feeding the broadcast ring differs (label
// stage vs merge stage).
func (as *asyncState) buildWorkers(cfg detect.Config, shards, maxRec int, user func(Race), bcast *evstream.BcastRing[labeledBatch]) []*shardWorker {
	var raceMu sync.Mutex
	workers := make([]*shardWorker, shards)
	for i := range workers {
		w := &shardWorker{
			id:    i,
			n:     shards,
			bcast: bcast,
			track: depa.NewTracker(),
			col:   stage.NewCollector(maxRec),
		}
		wcfg := cfg
		wcfg.OnRace = func(race Race) {
			w.col.Add(w.view.SeqRank(race.Cur), race)
			if user != nil {
				raceMu.Lock()
				// Unlock via defer: a panicking user callback must release
				// the mutex on its way out or the other workers deadlock on
				// it instead of unwinding through the abort.
				defer raceMu.Unlock()
				user(race)
			}
		}
		w.engine = detect.New(wcfg, w)
		workers[i] = w
	}
	return workers
}

// mergeSharded folds the workers' results into canonical totals: counters
// partition exactly across shards (pages are disjoint and intervals page-
// contained), except the hook-call counts, which grew by one per page
// split and are corrected by the workers' surplus counters. It also
// assembles the per-worker load breakdown (busy, scanned/skipped batches,
// broadcast-ring waits) behind Report.ShardLoad.
func (as *asyncState) mergeSharded(labels *depa.Builder, workers []*shardWorker, bcast *evstream.BcastRing[labeledBatch], maxRec int) {
	col := stage.NewCollector(maxRec)
	as.shardLoad = make([]ShardLoad, len(workers))
	var detectBusy time.Duration
	for i, w := range workers {
		as.stats.Accumulate(&w.stats)
		as.stats.ReadHookCalls -= w.splitReads
		as.stats.WriteHookCalls -= w.splitWrites
		as.stats.BatchesSkipped += w.busy.Skipped()
		col.Merge(w.col)
		as.shardLoad[i] = ShardLoad{
			Busy:           w.busy.Busy(),
			BatchesScanned: w.busy.Scanned(),
			BatchesSkipped: w.busy.Skipped(),
			RingWaits:      bcast.ConsumerWaits(i),
			EventsScanned:  w.eventsScanned,
			BlocksDecoded:  w.blocksDecoded,
			DecodeBusy:     w.decodeBusy,
		}
		detectBusy += w.busy.Busy()
	}
	as.stats.PipelineDetectTime = detectBusy
	as.strands = labels.StrandCount()
	as.races = col.Sorted()
}
