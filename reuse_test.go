package stint

import (
	"reflect"
	"runtime"
	"runtime/debug"
	"testing"
)

// The reuse suite pins the Runner lifecycle contract: a Runner reused
// across many programs (Run auto-resets between them) produces Reports
// byte-identical to fresh Runners, across every execution mode, and its
// retained footprint stops growing once it has seen its peak workload.

// reuseModes are the execution-mode configurations the reuse contract
// covers: synchronous inline, plain pipelined, sharded at one and four
// workers, and parallel execution with online detection.
var reuseModes = []struct {
	name string
	opts Options
}{
	{"sync", Options{Detector: DetectorSTINT, MaxRacesRecorded: 1 << 10}},
	{"async", Options{Detector: DetectorSTINT, MaxRacesRecorded: 1 << 10, Async: true}},
	{"shards1", Options{Detector: DetectorSTINT, MaxRacesRecorded: 1 << 10, Async: true, DetectShards: 1}},
	{"shards4", Options{Detector: DetectorSTINT, MaxRacesRecorded: 1 << 10, Async: true, DetectShards: 4}},
	{"parallel", Options{Detector: DetectorSTINT, MaxRacesRecorded: 1 << 10, ParallelDetect: true, DetectShards: 2}},
}

// reuseCompare fails the test unless the two reports agree on every
// deterministic field: the race list byte for byte, the counts, and the
// normalized stats.
func reuseCompare(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if got.RaceCount != want.RaceCount || got.Strands != want.Strands {
		t.Fatalf("%s: RaceCount/Strands %d/%d, fresh %d/%d",
			label, got.RaceCount, got.Strands, want.RaceCount, want.Strands)
	}
	if !reflect.DeepEqual(got.Races, want.Races) {
		t.Fatalf("%s: race list diverges from fresh runner\n got: %v\nwant: %v",
			label, got.Races, want.Races)
	}
	if normStats(got.Stats) != normStats(want.Stats) {
		t.Fatalf("%s: stats diverge from fresh runner\n got: %+v\nwant: %+v",
			label, normStats(got.Stats), normStats(want.Stats))
	}
}

// TestReuseByteIdenticalReports drives one Runner per mode through a
// sequence of randomized soak workloads — Run auto-resets between them —
// and checks each Report byte-for-byte against a fresh Runner executing the
// same workload. The arena is deterministic, so the reused Runner's buffers
// (allocated once, before the first run) and the fresh Runners' buffers get
// identical addresses.
func TestReuseByteIdenticalReports(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	const seeds = 5
	for _, mode := range reuseModes {
		t.Run(mode.name, func(t *testing.T) {
			reused, err := NewRunner(mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			// All soak programs use the same fixed buffer geometry, so the
			// reused runner allocates its buffers exactly once.
			_, sizes := soakProgram(0)
			bufs := make([]*Buffer, len(sizes))
			for i, s := range sizes {
				bufs[i] = reused.Arena().AllocWords("b", s)
			}
			for seed := int64(0); seed < seeds; seed++ {
				acts, _ := soakProgram(seed)
				got, err := reused.Run(func(task *Task) { runActs(task, bufs, acts) })
				if err != nil {
					t.Fatal(err)
				}
				want := soakRunOpts(t, acts, sizes, mode.opts)
				reuseCompare(t, mode.name, got, want)
			}
			// An explicit Reset between runs is equivalent to the automatic
			// one: re-running the last seed still matches fresh.
			reused.Reset()
			acts, _ := soakProgram(seeds - 1)
			got, err := reused.Run(func(task *Task) { runActs(task, bufs, acts) })
			if err != nil {
				t.Fatal(err)
			}
			want := soakRunOpts(t, acts, sizes, mode.opts)
			reuseCompare(t, mode.name+"/explicit-reset", got, want)
		})
	}
}

// TestReuseFootprintStopsGrowing reruns the same workload set on one Runner
// and checks the retained warm capacity — pool chunks, page-directory
// capacity, history and bitmap pages — is identical after every lap: the
// first pass over the workloads warms the structures to their peak, and
// reuse never grows them again.
func TestReuseFootprintStopsGrowing(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	for _, mode := range reuseModes {
		t.Run(mode.name, func(t *testing.T) {
			r, err := NewRunner(mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			_, sizes := soakProgram(0)
			bufs := make([]*Buffer, len(sizes))
			for i, s := range sizes {
				bufs[i] = r.Arena().AllocWords("b", s)
			}
			lap := func() {
				for seed := int64(0); seed < 4; seed++ {
					acts, _ := soakProgram(seed)
					if _, err := r.Run(func(task *Task) { runActs(task, bufs, acts) }); err != nil {
						t.Fatal(err)
					}
				}
			}
			lap() // warm-up: the structures grow to the workload's peak
			warm := r.footprint()
			if warm.HistPages == 0 && warm.BitPages == 0 {
				t.Fatalf("%s: footprint reports nothing after a detecting run: %+v", mode.name, warm)
			}
			for i := 0; i < 3; i++ {
				lap()
				if got := r.footprint(); got != warm {
					t.Fatalf("%s: footprint grew on lap %d: warm %+v, now %+v",
						mode.name, i+1, warm, got)
				}
			}
		})
	}
	// Quiesce-heavy leg: pages that quiesce mid-run park their history on
	// free lists and tombstone their directory slots, and the next run
	// revives them. None of that may grow the retained footprint across
	// laps — revival must reuse the tombstoned capacity, not rehash into
	// fresh slots.
	for _, mode := range reuseModes {
		t.Run("quiesce/"+mode.name, func(t *testing.T) {
			opts := mode.opts
			opts.PageQuiesceThreshold = 2
			r, err := NewRunner(opts)
			if err != nil {
				t.Fatal(err)
			}
			const pages = 4
			acts := quiesceRacyActs(pages)
			buf := r.Arena().AllocWords("q", pages*qPageWords)
			lap := func() *Report {
				rep, err := r.Run(func(task *Task) { runActs(task, []*Buffer{buf}, acts) })
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			if rep := lap(); rep.Stats.PagesQuiesced == 0 {
				t.Fatalf("%s: no pages quiesced; the leg is vacuous", mode.name)
			}
			warm := r.footprint()
			for i := 0; i < 3; i++ {
				lap()
				if got := r.footprint(); got != warm {
					t.Fatalf("%s: footprint grew on quiesce lap %d: warm %+v, now %+v",
						mode.name, i+1, warm, got)
				}
			}
		})
	}
}

// TestResetSteadyStateAllocatesNothing checks the headline Reset property:
// after a dirty run on a warm synchronous Runner, the reset walk itself
// performs zero heap allocations.
func TestResetSteadyStateAllocatesNothing(t *testing.T) {
	r, err := NewRunner(Options{Detector: DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	_, sizes := soakProgram(0)
	bufs := make([]*Buffer, len(sizes))
	for i, s := range sizes {
		bufs[i] = r.Arena().AllocWords("b", s)
	}
	acts, _ := soakProgram(1)
	run := func() {
		if _, err := r.Run(func(task *Task) { runActs(task, bufs, acts) }); err != nil {
			t.Fatal(err)
		}
	}
	run()
	r.Reset()
	run() // dirty again, with every structure already at peak capacity
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	r.Reset()
	runtime.ReadMemStats(&after)
	if n := after.Mallocs - before.Mallocs; n != 0 {
		t.Fatalf("Reset allocated %d objects; want 0", n)
	}
}

// TestResetClearsCountersAndOrdering pins satellite hazards of reuse: the
// second run's Stats counters start from zero (no bleed from the first
// run), and the canonical race ordering is preserved after Reset.
func TestResetClearsCountersAndOrdering(t *testing.T) {
	r, err := NewRunner(Options{Detector: DetectorSTINT, MaxRacesRecorded: 64})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("w", 64)
	racy := func(task *Task) {
		task.Spawn(func(c *Task) { c.StoreRange(buf, 0, 32) })
		task.StoreRange(buf, 16, 32)
		task.Sync()
	}
	first, err := r.Run(racy)
	if err != nil {
		t.Fatal(err)
	}
	if first.RaceCount == 0 {
		t.Fatal("expected races from the racy program")
	}
	second, err := r.Run(racy)
	if err != nil {
		t.Fatal(err)
	}
	if second.RaceCount != first.RaceCount {
		t.Fatalf("RaceCount accumulated across runs: first %d, second %d",
			first.RaceCount, second.RaceCount)
	}
	if normStats(second.Stats) != normStats(first.Stats) {
		t.Fatalf("stats bled across Reset\nfirst:  %+v\nsecond: %+v",
			normStats(first.Stats), normStats(second.Stats))
	}
	if !reflect.DeepEqual(second.Races, first.Races) {
		t.Fatalf("canonical race ordering moved across Reset\nfirst:  %v\nsecond: %v",
			first.Races, second.Races)
	}
}
