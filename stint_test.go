package stint

import (
	"sync/atomic"
	"testing"
)

// allDetectors are the engines that must agree on racing words.
var allDetectors = []Detector{
	DetectorVanilla, DetectorCompiler, DetectorCompRTS,
	DetectorSTINT, DetectorSTINTUnbalanced, DetectorSTINTSkiplist,
}

// runOne executes body under the given detector with one 1024-word buffer.
func runOne(t *testing.T, d Detector, body func(task *Task, buf *Buffer)) *Report {
	t.Helper()
	r, err := NewRunner(Options{Detector: d, MaxRacesRecorded: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("buf", 1024)
	rep, err := r.Run(func(task *Task) { body(task, buf) })
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParallelWritesRace(t *testing.T) {
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.Store(buf, 5) })
			task.Store(buf, 5)
			task.Sync()
		})
		if !rep.Racy() {
			t.Errorf("%v: parallel writes to the same word not reported", d)
		}
	}
}

func TestReadReadIsNotARace(t *testing.T) {
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.Load(buf, 5) })
			task.Load(buf, 5)
			task.Sync()
		})
		if rep.Racy() {
			t.Errorf("%v: parallel reads reported as a race", d)
		}
	}
}

func TestReadWriteRace(t *testing.T) {
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.Load(buf, 7) })
			task.Store(buf, 7)
			task.Sync()
		})
		if !rep.Racy() {
			t.Errorf("%v: parallel read/write not reported", d)
		}
	}
}

func TestWriteThenReadInSpawnedChildIsSeries(t *testing.T) {
	// Parent writes before the spawn; the child's read is in series.
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Store(buf, 3)
			task.Spawn(func(c *Task) { c.Load(buf, 3) })
			task.Sync()
		})
		if rep.Racy() {
			t.Errorf("%v: series write→read reported as a race", d)
		}
	}
}

func TestSyncOrdersAccesses(t *testing.T) {
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.Store(buf, 9) })
			task.Sync()
			task.Store(buf, 9) // after the sync: in series
		})
		if rep.Racy() {
			t.Errorf("%v: write after sync reported as racing with synced child", d)
		}
	}
}

func TestSiblingSpawnsRace(t *testing.T) {
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.Store(buf, 11) })
			task.Spawn(func(c *Task) { c.Store(buf, 11) })
			task.Sync()
		})
		if !rep.Racy() {
			t.Errorf("%v: sibling writes not reported", d)
		}
	}
}

func TestDisjointWordsNoRace(t *testing.T) {
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.StoreRange(buf, 0, 100) })
			task.StoreRange(buf, 100, 100)
			task.Sync()
		})
		if rep.Racy() {
			t.Errorf("%v: disjoint parallel writes reported as a race", d)
		}
	}
}

func TestOverlappingRangesRace(t *testing.T) {
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.StoreRange(buf, 0, 100) })
			task.StoreRange(buf, 99, 100) // overlaps word 99
			task.Sync()
		})
		if !rep.Racy() {
			t.Errorf("%v: overlapping parallel ranges not reported", d)
		}
	}
}

func TestRangeAndWordHooksAgree(t *testing.T) {
	// The same logical program instrumented with range hooks vs per-word
	// hooks must produce the same verdict.
	for _, d := range allDetectors {
		rangeRep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.StoreRange(buf, 10, 20) })
			task.LoadRange(buf, 25, 20)
			task.Sync()
		})
		wordRep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) {
				for i := 10; i < 30; i++ {
					c.Store(buf, i)
				}
			})
			for i := 25; i < 45; i++ {
				task.Load(buf, i)
			}
			task.Sync()
		})
		if rangeRep.Racy() != wordRep.Racy() {
			t.Errorf("%v: range (%v) and word (%v) verdicts differ", d, rangeRep.Racy(), wordRep.Racy())
		}
		if !rangeRep.Racy() {
			t.Errorf("%v: overlapping store/load ranges not reported", d)
		}
	}
}

func TestNestedTasksGrandchildRace(t *testing.T) {
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) {
				c.Spawn(func(g *Task) { g.Store(buf, 42) })
				c.Sync()
			})
			task.Store(buf, 42)
			task.Sync()
		})
		if !rep.Racy() {
			t.Errorf("%v: grandchild/parent conflict not reported", d)
		}
	}
}

func TestChildSyncDoesNotJoinToParent(t *testing.T) {
	// The child's internal sync joins the grandchild to the *child*, but
	// the child's whole subcomputation remains parallel with the parent's
	// continuation.
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) {
				c.Spawn(func(g *Task) { g.Store(buf, 13) })
				c.Sync()
				c.Store(buf, 14) // after child's sync, still parallel with parent
			})
			task.Store(buf, 14)
			task.Sync()
		})
		if !rep.Racy() {
			t.Errorf("%v: post-child-sync write not seen as parallel with parent", d)
		}
	}
}

func TestImplicitSyncAtTaskEnd(t *testing.T) {
	// A task that spawns and returns without Sync still joins its children
	// before the parent continues past its own sync of that task.
	for _, d := range allDetectors {
		rep := runOne(t, d, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) {
				c.Spawn(func(g *Task) { g.Store(buf, 21) })
				// no explicit sync: implicit at return
			})
			task.Sync()
			task.Store(buf, 21)
		})
		if rep.Racy() {
			t.Errorf("%v: implicit sync missing — synced grandchild reported racy", d)
		}
	}
}

func TestRaceDetailsVanilla(t *testing.T) {
	rep := runOne(t, DetectorVanilla, func(task *Task, buf *Buffer) {
		task.Spawn(func(c *Task) { c.Store(buf, 5) })
		task.Load(buf, 5)
		task.Sync()
	})
	if len(rep.Races) == 0 {
		t.Fatal("no race recorded")
	}
	r := rep.Races[0]
	if !r.PrevWrite || r.CurWrite {
		t.Errorf("race kinds = prevWrite=%v curWrite=%v, want write/read", r.PrevWrite, r.CurWrite)
	}
	if r.Size == 0 {
		t.Error("race has zero size")
	}
	if r.String() == "" {
		t.Error("empty race description")
	}
}

func TestMaxRacesRecordedCap(t *testing.T) {
	r, err := NewRunner(Options{Detector: DetectorVanilla, MaxRacesRecorded: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("buf", 64)
	rep, err := r.Run(func(task *Task) {
		task.Spawn(func(c *Task) { c.StoreRange(buf, 0, 64) })
		task.StoreRange(buf, 0, 64)
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 3 {
		t.Errorf("recorded %d races, want cap of 3", len(rep.Races))
	}
	if rep.RaceCount < 3 {
		t.Errorf("RaceCount = %d, want the uncapped total", rep.RaceCount)
	}
}

func TestOnRaceCallback(t *testing.T) {
	var calls atomic.Int64
	r, err := NewRunner(Options{Detector: DetectorSTINT, OnRace: func(Race) { calls.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("buf", 16)
	rep, _ := r.Run(func(task *Task) {
		task.Spawn(func(c *Task) { c.Store(buf, 0) })
		task.Store(buf, 0)
		task.Sync()
	})
	if calls.Load() == 0 || uint64(calls.Load()) != rep.RaceCount {
		t.Errorf("OnRace called %d times, RaceCount = %d", calls.Load(), rep.RaceCount)
	}
}

func TestDetectorOffRunsProgram(t *testing.T) {
	r, err := NewRunner(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	rep, err := r.Run(func(task *Task) {
		if task.Detecting() {
			t.Error("Detecting() = true under DetectorOff")
		}
		task.Spawn(func(c *Task) { sum += 1 })
		task.Spawn(func(c *Task) { sum += 2 })
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 3 {
		t.Errorf("program did not run: sum = %d", sum)
	}
	if rep.Racy() || rep.Strands != 0 {
		t.Errorf("DetectorOff produced detection output: %+v", rep)
	}
}

func TestParallelRequiresDetectorOff(t *testing.T) {
	if _, err := NewRunner(Options{Detector: DetectorSTINT, Parallel: true}); err == nil {
		t.Fatal("expected error for Parallel + detection")
	}
}

func TestParallelExecutionComputes(t *testing.T) {
	r, err := NewRunner(Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	var total atomic.Int64
	var fib func(task *Task, n int, out *atomic.Int64)
	fib = func(task *Task, n int, out *atomic.Int64) {
		if n < 2 {
			out.Add(int64(n))
			return
		}
		task.Spawn(func(c *Task) { fib(c, n-1, out) })
		task.Spawn(func(c *Task) { fib(c, n-2, out) })
		task.Sync()
	}
	if _, err := r.Run(func(task *Task) { fib(task, 15, &total) }); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 610 { // fib(15)
		t.Errorf("parallel fib(15) = %d, want 610", total.Load())
	}
}

func TestStrandCountReported(t *testing.T) {
	rep := runOne(t, DetectorSTINT, func(task *Task, buf *Buffer) {
		task.Spawn(func(c *Task) { c.Store(buf, 1) })
		task.Sync()
	})
	// Root + child + continuation + sync = 4 strands.
	if rep.Strands != 4 {
		t.Errorf("Strands = %d, want 4", rep.Strands)
	}
}

func TestStatsAccessCounts(t *testing.T) {
	rep := runOne(t, DetectorSTINT, func(task *Task, buf *Buffer) {
		task.LoadRange(buf, 0, 100)
		task.Store(buf, 200)
	})
	if rep.Stats.ReadAccesses != 100 {
		t.Errorf("ReadAccesses = %d, want 100", rep.Stats.ReadAccesses)
	}
	if rep.Stats.WriteAccesses != 1 {
		t.Errorf("WriteAccesses = %d, want 1", rep.Stats.WriteAccesses)
	}
	if rep.Stats.ReadIntervals != 1 || rep.Stats.WriteIntervals != 1 {
		t.Errorf("intervals = (%d,%d), want (1,1)", rep.Stats.ReadIntervals, rep.Stats.WriteIntervals)
	}
	if rep.Stats.ReadIntervalBytes != 400 {
		t.Errorf("ReadIntervalBytes = %d, want 400", rep.Stats.ReadIntervalBytes)
	}
}

func TestRuntimeCoalescingDeduplicates(t *testing.T) {
	rep := runOne(t, DetectorSTINT, func(task *Task, buf *Buffer) {
		for rep := 0; rep < 10; rep++ {
			for i := 0; i < 50; i++ {
				task.Load(buf, i)
			}
		}
	})
	if rep.Stats.ReadAccesses != 500 {
		t.Errorf("ReadAccesses = %d, want 500", rep.Stats.ReadAccesses)
	}
	if rep.Stats.ReadIntervals != 1 {
		t.Errorf("ReadIntervals = %d, want 1 (coalesced and deduplicated)", rep.Stats.ReadIntervals)
	}
	if rep.Stats.ReadIntervalBytes != 200 {
		t.Errorf("ReadIntervalBytes = %d, want 200 (deduplicated)", rep.Stats.ReadIntervalBytes)
	}
}

func TestReachOnlyCountsStrandsButNoAccesses(t *testing.T) {
	rep := runOne(t, DetectorReachOnly, func(task *Task, buf *Buffer) {
		task.Spawn(func(c *Task) { c.Store(buf, 0) })
		task.Store(buf, 0)
		task.Sync()
	})
	if rep.Racy() {
		t.Error("ReachOnly reported a race")
	}
	if rep.Strands != 4 {
		t.Errorf("Strands = %d, want 4", rep.Strands)
	}
}

func TestMultipleRunsIndependent(t *testing.T) {
	r, err := NewRunner(Options{Detector: DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("buf", 16)
	racy := func(task *Task) {
		task.Spawn(func(c *Task) { c.Store(buf, 0) })
		task.Store(buf, 0)
		task.Sync()
	}
	rep1, _ := r.Run(racy)
	rep2, _ := r.Run(racy)
	if rep1.RaceCount != rep2.RaceCount {
		t.Errorf("runs differ: %d vs %d races (state leaked between runs)", rep1.RaceCount, rep2.RaceCount)
	}
}

func TestParseDetector(t *testing.T) {
	for _, d := range append([]Detector{DetectorOff, DetectorReachOnly}, allDetectors...) {
		got, err := ParseDetector(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDetector(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDetector("bogus"); err == nil {
		t.Error("ParseDetector accepted garbage")
	}
}

func TestFloat64BufferWordGranularity(t *testing.T) {
	// A float64 element spans two shadow words; racing on element i must be
	// detected, and neighbors must stay clean.
	for _, d := range allDetectors {
		r, err := NewRunner(Options{Detector: d})
		if err != nil {
			t.Fatal(err)
		}
		buf := r.Arena().AllocFloat64("f", 32)
		rep, _ := r.Run(func(task *Task) {
			task.Spawn(func(c *Task) { c.Store(buf, 4) })
			task.Store(buf, 4)
			task.Sync()
		})
		if !rep.Racy() {
			t.Errorf("%v: float64 element race missed", d)
		}
		r2, _ := NewRunner(Options{Detector: d})
		buf2 := r2.Arena().AllocFloat64("f", 32)
		rep2, _ := r2.Run(func(task *Task) {
			task.Spawn(func(c *Task) { c.Store(buf2, 4) })
			task.Store(buf2, 5)
			task.Sync()
		})
		if rep2.Racy() {
			t.Errorf("%v: adjacent float64 elements alias", d)
		}
	}
}
