// Sortcheck: the paper's core observation on live data.
//
// Runs the parallel mergesort benchmark under three detector
// configurations and prints how coalescing collapses millions of word
// accesses into a few thousand intervals — and what that does to the
// time spent in the access history.
//
//	go run ./examples/sortcheck
package main

import (
	"fmt"
	"log"
	"time"

	"stint"
	"stint/workloads"
)

func main() {
	fmt.Println("parallel mergesort, n=200000, insertion-sort base 512")
	fmt.Printf("%-10s %12s %14s %14s %16s\n", "detector", "time", "word accesses", "intervals", "access-hist time")
	for _, d := range []stint.Detector{
		stint.DetectorVanilla,
		stint.DetectorCompRTS,
		stint.DetectorSTINT,
	} {
		w := workloads.NewSort(200000, 512)
		r, err := stint.NewRunner(stint.Options{Detector: d, TimeAccessHistory: true})
		if err != nil {
			log.Fatal(err)
		}
		w.Setup(r)
		report, err := r.Run(w.Run)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Verify(); err != nil {
			log.Fatal(err)
		}
		if report.Racy() {
			log.Fatalf("mergesort is race-free but %v reported %d races", d, report.RaceCount)
		}
		st := report.Stats
		intervals := st.ReadIntervals + st.WriteIntervals
		ivCol := "(per-word)"
		if intervals > 0 {
			ivCol = fmt.Sprintf("%d", intervals)
		}
		fmt.Printf("%-10v %12v %14d %14s %16v\n",
			d, report.WallTime.Round(time.Millisecond),
			st.ReadAccesses+st.WriteAccesses, ivCol,
			st.AccessHistoryTime.Round(time.Microsecond))
	}
	fmt.Println("\nvanilla checks the shadow hashmap at every access; comp+rts checks")
	fmt.Println("deduplicated words once per strand; STINT checks whole intervals")
	fmt.Println("against two treaps — thousands of operations instead of millions.")
}
