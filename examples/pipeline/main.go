// Pipeline: race detection for pipeline parallelism (the paper's §7
// extension). Models a three-stage streaming pipeline — parse, transform
// with stage-local state, emit — over a window of chunks, then shows how a
// classic pipeline bug (reading a neighbor chunk's buffer before its
// producer is ordered with you) is caught.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"stint"
	"stint/pipeline"
)

const (
	stages    = 3
	items     = 16
	chunkSize = 64
)

func main() {
	correct()
	buggy()
}

// correct: each chunk owns a scratch region; stage-local dictionaries are
// private to their stage. Serial along both grid axes, so race-free.
func correct() {
	r, err := pipeline.NewRunner(pipeline.Options{Detector: stint.DetectorSTINT})
	if err != nil {
		log.Fatal(err)
	}
	chunks := r.Arena().AllocWords("chunks", items*chunkSize)
	dicts := r.Arena().AllocWords("dicts", stages*256)

	rep, err := r.Run(stages, items, func(c *pipeline.Cell, stage, item int) {
		// Every stage reads and rewrites the item's chunk...
		c.LoadRange(chunks, item*chunkSize, chunkSize)
		c.StoreRange(chunks, item*chunkSize, chunkSize)
		// ...and updates its own dictionary.
		c.LoadRange(dicts, stage*256, 256)
		c.StoreRange(dicts, stage*256, 256)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct pipeline: %d races across %d grid nodes (%d intervals)\n",
		rep.RaceCount, rep.Strands, rep.Stats.ReadIntervals+rep.Stats.WriteIntervals)
}

// buggy: stage 1 peeks at the *next* chunk for look-ahead, but stage 0 of
// the next item — the producer of that data — is logically parallel with
// it. The detector pinpoints the overlap.
func buggy() {
	r, err := pipeline.NewRunner(pipeline.Options{Detector: stint.DetectorSTINT, MaxRacesRecorded: 2})
	if err != nil {
		log.Fatal(err)
	}
	chunks := r.Arena().AllocWords("chunks", items*chunkSize)

	rep, err := r.Run(stages, items, func(c *pipeline.Cell, stage, item int) {
		switch stage {
		case 0: // produce
			c.StoreRange(chunks, item*chunkSize, chunkSize)
		case 1: // transform with (buggy) look-ahead
			c.LoadRange(chunks, item*chunkSize, chunkSize)
			if item+1 < items {
				c.LoadRange(chunks, (item+1)*chunkSize, 8) // BUG: unordered peek
			}
		case 2: // emit
			c.LoadRange(chunks, item*chunkSize, chunkSize)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buggy pipeline (look-ahead before producer): %d race report(s)\n", rep.RaceCount)
	for _, rc := range rep.Races {
		fmt.Printf("  %v\n", rc)
	}
	if !rep.Racy() {
		log.Fatal("expected the look-ahead bug to race")
	}
}
