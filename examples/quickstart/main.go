// Quickstart: detect a determinacy race in a tiny fork-join program.
//
// The program spawns a task that writes a range of an array while the
// parent writes an overlapping range before syncing — the classic
// determinacy race. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stint"
)

func main() {
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	if err != nil {
		log.Fatal(err)
	}

	// Buffers come from the runner's virtual arena; the detector shadows
	// them at 4-byte-word granularity.
	data := r.Arena().AllocWords("data", 1024)

	report, err := r.Run(func(t *stint.Task) {
		// The spawned child writes the first 600 words...
		t.Spawn(func(c *stint.Task) {
			c.StoreRange(data, 0, 600)
		})
		// ...while the parent, logically in parallel, writes words
		// 512-1023. Words 512-599 are written by both: a race.
		t.StoreRange(data, 512, 512)
		t.Sync()

		// After the sync everything is ordered; this read is safe.
		t.LoadRange(data, 0, 1024)
	})
	if err != nil {
		log.Fatal(err)
	}

	if report.Racy() {
		fmt.Printf("found %d race report(s); first:\n  %s\n", report.RaceCount, r.DescribeRace(report.Races[0]))
	} else {
		fmt.Println("no races found")
	}
	fmt.Printf("strands: %d, write intervals: %d, read intervals: %d\n",
		report.Strands, report.Stats.WriteIntervals, report.Stats.ReadIntervals)
}
