// Futures: race detection beyond fork-join (the paper's §7 extension).
//
// Futures create dependence structures no spawn/sync nesting can express:
// a value produced once and consumed by arbitrary later tasks. With such
// DAGs a single stored reader per location no longer suffices — this
// example builds the exact counterexample and shows the multi-reader
// access history (stint/dag) catching the race.
//
//	go run ./examples/futures
package main

import (
	"fmt"
	"log"

	"stint/dag"
)

func main() {
	counterexample()
	buildGraph()
}

// counterexample: reader r1 and r2 consume a future's value in parallel;
// a writer w is ordered after r2 only (it legitimately waited for r2, but
// nobody waited for r1). Any access history storing a single reader can be
// left holding r2 — ordered with w — and miss the r1/w race.
func counterexample() {
	g := dag.NewGraph()
	produce := g.Node("produce-future")
	r1 := g.Node("consumer-1")
	r2 := g.Node("consumer-2")
	w := g.Node("recycle-buffer")
	g.Edge(produce, r1)
	g.Edge(produce, r2)
	g.Edge(r2, w) // w waits for consumer-2 but forgets consumer-1

	r, err := dag.NewRunner(dag.Options{})
	if err != nil {
		log.Fatal(err)
	}
	future := r.Arena().AllocWords("future", 16)
	rep, err := r.Run(g, func(n *dag.Node, id dag.NodeID) {
		switch id {
		case produce, w:
			n.StoreRange(future, 0, 16)
		case r1, r2:
			n.LoadRange(future, 0, 16)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("future counterexample: %d race report(s)\n", rep.RaceCount)
	for _, rc := range rep.Races {
		fmt.Printf("  %s (strand %d = %s, strand %d = %s)\n",
			rc, rc.Prev, g.Name(rc.Prev), rc.Cur, g.Name(rc.Cur))
	}
	if !rep.Racy() {
		log.Fatal("expected the forgotten-consumer race")
	}
}

// buildGraph: a small build-system-shaped DAG — sources compile in
// parallel into distinct object regions, the linker waits for all of them.
// Race-free by construction; then a "parallel cleanup" node that forgot to
// depend on the linker shows up immediately.
func buildGraph() {
	g := dag.NewGraph()
	srcs := make([]dag.NodeID, 4)
	for i := range srcs {
		srcs[i] = g.Node(fmt.Sprintf("compile-%d", i))
	}
	link := g.Node("link")
	for _, s := range srcs {
		g.Edge(s, link)
	}
	cleanup := g.Node("cleanup") // BUG: no edge from link

	r, err := dag.NewRunner(dag.Options{MaxRacesRecorded: 2})
	if err != nil {
		log.Fatal(err)
	}
	objects := r.Arena().AllocWords("objects", 4*64)
	binary := r.Arena().AllocWords("binary", 256)
	rep, err := r.Run(g, func(n *dag.Node, id dag.NodeID) {
		switch {
		case id == link:
			n.LoadRange(objects, 0, 4*64)
			n.StoreRange(binary, 0, 256)
		case id == cleanup:
			n.StoreRange(objects, 0, 4*64) // scrubs objects the linker reads
		default:
			for i, s := range srcs {
				if s == id {
					n.StoreRange(objects, i*64, 64)
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("build graph with unordered cleanup: %d race report(s)\n", rep.RaceCount)
	for _, rc := range rep.Races {
		fmt.Printf("  %s vs %s: %v\n", g.Name(rc.Prev), g.Name(rc.Cur), rc)
	}
	if !rep.Racy() {
		log.Fatal("expected the cleanup race")
	}
}
