// Matmul: verify a divide-and-conquer matrix multiplication is race-free,
// then show how the detector pinpoints a real parallelization bug — the
// classic mistake of spawning both halves of an inner-dimension split,
// which makes two tasks accumulate into the same output block in parallel.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"stint"
	"stint/workloads"
)

func main() {
	checkCorrectVersion()
	checkBuggyVersion()
}

// checkCorrectVersion runs the library's mmul workload (Cilk-5 algorithm,
// inner-dimension splits serialized) under STINT.
func checkCorrectVersion() {
	w := workloads.NewMMul(64, 16)
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	if err != nil {
		log.Fatal(err)
	}
	w.Setup(r)
	report, err := r.Run(w.Run)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct mmul: %d races, %d strands, result verified\n",
		report.RaceCount, report.Strands)
}

// checkBuggyVersion multiplies with a deliberately broken recursion that
// spawns both halves of the k-dimension split. Both halves do
// C += (their half of the inner products), so they load and store the same
// C block in parallel.
func checkBuggyVersion() {
	const n, bcase = 32, 8
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT, MaxRacesRecorded: 3})
	if err != nil {
		log.Fatal(err)
	}
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		b[i] = float64(i%5) * 0.5
	}
	bufA := r.Arena().AllocFloat64("A", n*n)
	bufB := r.Arena().AllocFloat64("B", n*n)
	bufC := r.Arena().AllocFloat64("C", n*n)

	var rec func(t *stint.Task, ar, ac, br, bc, cr, cc, m, kk, p int)
	base := func(t *stint.Task, ar, ac, br, bc, cr, cc, m, kk, p int) {
		for i := 0; i < m; i++ {
			t.LoadRange(bufC, (cr+i)*n+cc, p)
			t.StoreRange(bufC, (cr+i)*n+cc, p)
			t.LoadRange(bufA, (ar+i)*n+ac, kk)
			for j := 0; j < p; j++ {
				sum := c[(cr+i)*n+cc+j]
				for k := 0; k < kk; k++ {
					t.Load(bufB, (br+k)*n+bc+j)
					sum += a[(ar+i)*n+ac+k] * b[(br+k)*n+bc+j]
				}
				c[(cr+i)*n+cc+j] = sum
			}
		}
	}
	rec = func(t *stint.Task, ar, ac, br, bc, cr, cc, m, kk, p int) {
		if m <= bcase && kk <= bcase && p <= bcase {
			base(t, ar, ac, br, bc, cr, cc, m, kk, p)
			return
		}
		switch {
		case m >= kk && m >= p:
			h := m / 2
			t.Spawn(func(ct *stint.Task) { rec(ct, ar, ac, br, bc, cr, cc, h, kk, p) })
			t.Spawn(func(ct *stint.Task) { rec(ct, ar+h, ac, br, bc, cr+h, cc, m-h, kk, p) })
			t.Sync()
		case p >= kk:
			h := p / 2
			t.Spawn(func(ct *stint.Task) { rec(ct, ar, ac, br, bc, cr, cc, m, kk, h) })
			t.Spawn(func(ct *stint.Task) { rec(ct, ar, ac, br, bc+h, cr, cc+h, m, kk, p-h) })
			t.Sync()
		default:
			h := kk / 2
			// BUG: both halves accumulate into the same C block but are
			// spawned in parallel. The correct code runs them serially.
			t.Spawn(func(ct *stint.Task) { rec(ct, ar, ac, br, bc, cr, cc, m, h, p) })
			t.Spawn(func(ct *stint.Task) { rec(ct, ar, ac+h, br+h, bc, cr, cc, m, kk-h, p) })
			t.Sync()
		}
	}

	report, err := r.Run(func(t *stint.Task) { rec(t, 0, 0, 0, 0, 0, 0, n, n, n) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buggy mmul (parallel inner-dimension split): %d race report(s)\n", report.RaceCount)
	for _, rc := range report.Races {
		fmt.Printf("  %v\n", rc)
	}
	if !report.Racy() {
		log.Fatal("expected the buggy version to race")
	}
}
