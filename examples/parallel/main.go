// Parallel: the develop-check-deploy workflow.
//
// Race detection is sequential by design (the detector needs the serial
// projection of the fork-join program), but the same Task-based program
// can run on goroutines once it is certified race-free. This example
// checks a divide-and-conquer reduction under STINT, then runs it in
// parallel with detection off and compares times and results.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"stint"
)

const (
	size  = 1 << 22
	grain = 1 << 14
)

// sumRec reduces data[lo:hi) into out using atomic adds at the leaves.
// The instrumentation reports only the shared-array reads; the atomic
// accumulator is a synchronization device, not program data.
func sumRec(t *stint.Task, data []float64, buf *stint.Buffer, lo, hi int, out *atomic.Uint64) {
	if hi-lo <= grain {
		if t.Detecting() {
			t.LoadRange(buf, lo, hi-lo)
		}
		var s float64
		for _, v := range data[lo:hi] {
			s += v
		}
		addFloat(out, s)
		return
	}
	mid := (lo + hi) / 2
	t.Spawn(func(c *stint.Task) { sumRec(c, data, buf, lo, mid, out) })
	t.Spawn(func(c *stint.Task) { sumRec(c, data, buf, mid, hi, out) })
	t.Sync()
}

// addFloat accumulates a float64 into an atomic bit pattern.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		nw := math.Float64frombits(old) + v
		if a.CompareAndSwap(old, math.Float64bits(nw)) {
			return
		}
	}
}

func main() {
	data := make([]float64, size)
	for i := range data {
		data[i] = 1.0 / float64(i+1)
	}

	// Phase 1: certify race-freedom sequentially.
	rc, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	if err != nil {
		log.Fatal(err)
	}
	buf := rc.Arena().AllocFloat64("data", size)
	var serialSum atomic.Uint64
	start := time.Now()
	report, err := rc.Run(func(t *stint.Task) { sumRec(t, data, buf, 0, size, &serialSum) })
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(start)
	if report.Racy() {
		log.Fatalf("reduction races: %v", report.Races[0])
	}
	fmt.Printf("sequential + STINT: %v, 0 races across %d strands\n", serialTime.Round(time.Millisecond), report.Strands)

	// Phase 2: run the identical program on goroutines.
	rp, err := stint.NewRunner(stint.Options{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	var parallelSum atomic.Uint64
	start = time.Now()
	if _, err := rp.Run(func(t *stint.Task) { sumRec(t, data, buf, 0, size, &parallelSum) }); err != nil {
		log.Fatal(err)
	}
	parallelTime := time.Since(start)
	fmt.Printf("parallel (%d cores): %v\n", runtime.GOMAXPROCS(0), parallelTime.Round(time.Millisecond))

	a, b := math.Float64frombits(serialSum.Load()), math.Float64frombits(parallelSum.Load())
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-6*a {
		log.Fatalf("results diverge: %g vs %g", a, b)
	}
	fmt.Printf("sums agree: %.9f\n", a)
}
