package pipeline_test

import (
	"fmt"

	"stint"
	"stint/pipeline"
)

// A three-stage pipeline over eight items: every item owns a scratch
// region (serial along the item axis) — race-free. A look-ahead read into
// the neighbor's region, whose producer is logically parallel, races.
func ExampleRunner_Run() {
	r, _ := pipeline.NewRunner(pipeline.Options{Detector: stint.DetectorSTINT})
	chunks := r.Arena().AllocWords("chunks", 8*16)

	report, _ := r.Run(3, 8, func(c *pipeline.Cell, stage, item int) {
		c.LoadRange(chunks, item*16, 16)
		c.StoreRange(chunks, item*16, 16)
	})
	fmt.Println("per-item scratch racy:", report.Racy())

	r2, _ := pipeline.NewRunner(pipeline.Options{Detector: stint.DetectorSTINT})
	chunks2 := r2.Arena().AllocWords("chunks", 8*16)
	report2, _ := r2.Run(2, 8, func(c *pipeline.Cell, stage, item int) {
		if stage == 0 {
			c.StoreRange(chunks2, item*16, 16)
		} else if item+1 < 8 {
			c.LoadRange(chunks2, (item+1)*16, 4) // unordered look-ahead
		}
	})
	fmt.Println("look-ahead racy:", report2.Racy())
	// Output:
	// per-item scratch racy: false
	// look-ahead racy: true
}
