package pipeline_test

import (
	"fmt"
	"testing"

	"stint"
	"stint/pipeline"
)

// benchPipeline measures a stages×items pipeline with per-item scratch
// under one detector.
func benchPipeline(b *testing.B, d stint.Detector, stages, items, chunk int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, err := pipeline.NewRunner(pipeline.Options{Detector: d})
		if err != nil {
			b.Fatal(err)
		}
		buf := r.Arena().AllocWords("chunks", items*chunk)
		b.StartTimer()
		rep, err := r.Run(stages, items, func(c *pipeline.Cell, stage, item int) {
			c.LoadRange(buf, item*chunk, chunk)
			c.StoreRange(buf, item*chunk, chunk)
		})
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Racy() {
			b.Fatal("race-free pipeline raced")
		}
		b.StartTimer()
	}
}

func BenchmarkPipelineDetectors(b *testing.B) {
	for _, d := range []stint.Detector{
		stint.DetectorOff, stint.DetectorVanilla, stint.DetectorCompRTS, stint.DetectorSTINT,
	} {
		b.Run(fmt.Sprintf("%v", d), func(b *testing.B) {
			benchPipeline(b, d, 8, 256, 64)
		})
	}
}
