package pipeline

import (
	"math/rand"
	"testing"

	"stint"
	"stint/internal/oracle"
)

var pipelineDetectors = []stint.Detector{
	stint.DetectorVanilla, stint.DetectorCompiler, stint.DetectorCompRTS,
	stint.DetectorSTINT, stint.DetectorSTINTUnbalanced, stint.DetectorSTINTSkiplist,
}

func TestGridReachability(t *testing.T) {
	g := &grid{stages: 4, items: 8}
	type q struct {
		s1, i1, s2, i2 int
		parallel       bool
	}
	cases := []q{
		{0, 0, 1, 0, false}, // same item, consecutive stages: series
		{0, 0, 3, 0, false}, // same item, distant stages: series
		{2, 1, 2, 5, false}, // same stage: series
		{0, 0, 1, 1, false}, // downstream both ways: series
		{1, 3, 0, 5, true},  // later stage & earlier item vs earlier stage & later item
		{3, 0, 0, 7, true},
		{2, 2, 2, 2, false}, // self
	}
	for _, c := range cases {
		a, b := g.encode(c.s1, c.i1), g.encode(c.s2, c.i2)
		if got := g.Parallel(a, b); got != c.parallel {
			t.Errorf("Parallel((%d,%d),(%d,%d)) = %v, want %v", c.s1, c.i1, c.s2, c.i2, got, c.parallel)
		}
		if got := g.Parallel(b, a); got != c.parallel {
			t.Errorf("Parallel symmetric ((%d,%d),(%d,%d)) = %v, want %v", c.s2, c.i2, c.s1, c.i1, got, c.parallel)
		}
	}
}

func TestGridLeftOfIsStrictTotalOrder(t *testing.T) {
	g := &grid{stages: 3, items: 3}
	var ids []int32
	for s := 0; s < 3; s++ {
		for i := 0; i < 3; i++ {
			ids = append(ids, g.encode(s, i))
		}
	}
	for _, a := range ids {
		if g.LeftOf(a, a) {
			t.Error("LeftOf reflexive")
		}
		for _, b := range ids {
			if a != b && g.LeftOf(a, b) == g.LeftOf(b, a) {
				t.Errorf("LeftOf not antisymmetric for %d,%d", a, b)
			}
		}
	}
}

func TestPerItemScratchIsRaceFree(t *testing.T) {
	// The canonical pipeline: each item owns a scratch region that every
	// stage reads and writes in turn — serial along the item, so race-free.
	for _, d := range pipelineDetectors {
		r, err := NewRunner(Options{Detector: d})
		if err != nil {
			t.Fatal(err)
		}
		buf := r.Arena().AllocWords("scratch", 16*8)
		rep, err := r.Run(4, 8, func(c *Cell, stage, item int) {
			c.LoadRange(buf, item*16, 16)
			c.StoreRange(buf, item*16, 16)
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Racy() {
			t.Errorf("%v: per-item scratch flagged: %v", d, rep.Races[0])
		}
	}
}

func TestPerStageStateIsRaceFree(t *testing.T) {
	// Stage-local state (e.g. a dictionary updated by one stage across
	// items) is serial along the stage axis.
	for _, d := range pipelineDetectors {
		r, err := NewRunner(Options{Detector: d})
		if err != nil {
			t.Fatal(err)
		}
		buf := r.Arena().AllocWords("stagestate", 4*32)
		rep, err := r.Run(4, 8, func(c *Cell, stage, item int) {
			c.LoadRange(buf, stage*32, 32)
			c.StoreRange(buf, stage*32, 32)
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Racy() {
			t.Errorf("%v: per-stage state flagged: %v", d, rep.Races[0])
		}
	}
}

func TestCrossStageSharedWriteRaces(t *testing.T) {
	// A shared accumulator written by two different stages: stage 0 of item
	// 5 and stage 2 of item 1 are parallel, so this must race.
	for _, d := range pipelineDetectors {
		r, err := NewRunner(Options{Detector: d})
		if err != nil {
			t.Fatal(err)
		}
		buf := r.Arena().AllocWords("shared", 4)
		rep, err := r.Run(3, 6, func(c *Cell, stage, item int) {
			if stage == 0 || stage == 2 {
				c.Store(buf, 0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Racy() {
			t.Errorf("%v: cross-stage shared write not flagged", d)
		}
	}
}

func TestSlidingWindowReadsRace(t *testing.T) {
	// Stage 1 reads its item's neighbor's region (a sliding window) while
	// stage 0 writes each region: stage 0 of item j+1 is parallel with
	// stage 1 of item j, so the read of region j+1 races with its write.
	for _, d := range pipelineDetectors {
		r, err := NewRunner(Options{Detector: d})
		if err != nil {
			t.Fatal(err)
		}
		buf := r.Arena().AllocWords("window", 8*4)
		rep, err := r.Run(2, 8, func(c *Cell, stage, item int) {
			switch stage {
			case 0:
				c.StoreRange(buf, item*4, 4)
			case 1:
				if item+1 < 8 {
					c.LoadRange(buf, (item+1)*4, 4) // peeks at unwritten neighbor
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Racy() {
			t.Errorf("%v: sliding-window race not flagged", d)
		}
	}
}

// gridProgram is a deterministic random access pattern per node.
type gridProgram struct {
	stages, items int
	accesses      map[int][]gridAccess
}

type gridAccess struct {
	write bool
	rng   bool
	idx   int
	n     int
}

func genGridProgram(seed int64, stages, items, bufWords int) *gridProgram {
	rng := rand.New(rand.NewSource(seed))
	p := &gridProgram{stages: stages, items: items, accesses: make(map[int][]gridAccess)}
	for s := 0; s < stages; s++ {
		for i := 0; i < items; i++ {
			n := rng.Intn(4)
			var acc []gridAccess
			for k := 0; k < n; k++ {
				idx := rng.Intn(bufWords)
				a := gridAccess{
					write: rng.Intn(2) == 0,
					rng:   rng.Intn(2) == 0,
					idx:   idx,
				}
				if a.rng {
					a.n = rng.Intn(bufWords-idx) + 1
				}
				acc = append(acc, a)
			}
			p.accesses[s*10000+i] = acc
		}
	}
	return p
}

func (p *gridProgram) run(c *Cell, buf *stint.Buffer, stage, item int) {
	for _, a := range p.accesses[stage*10000+item] {
		switch {
		case a.rng && a.write:
			c.StoreRange(buf, a.idx, a.n)
		case a.rng:
			c.LoadRange(buf, a.idx, a.n)
		case a.write:
			c.Store(buf, a.idx)
		default:
			c.Load(buf, a.idx)
		}
	}
}

func TestPipelineDetectorsMatchOracle(t *testing.T) {
	const stages, items, bufWords = 3, 10, 48
	for seed := int64(0); seed < 40; seed++ {
		p := genGridProgram(seed, stages, items, bufWords)

		// Brute-force oracle, driven over the same grid order.
		g := &grid{stages: stages, items: items}
		det := oracle.New(g)
		orArena, _ := NewRunner(Options{})
		orBuf := orArena.Arena().AllocWords("data", bufWords)
		oc := &Cell{engine: det, hooks: true}
		for item := 0; item < items; item++ {
			for stage := 0; stage < stages; stage++ {
				g.cur = g.encode(stage, item)
				p.run(oc, orBuf, stage, item)
			}
		}
		want := det.RacingWords()

		for _, d := range pipelineDetectors {
			words := make(map[stint.Addr]bool)
			r, err := NewRunner(Options{Detector: d, OnRace: func(rc stint.Race) {
				for a := rc.Addr &^ 3; a < rc.Addr+rc.Size; a += 4 {
					words[a] = true
				}
			}})
			if err != nil {
				t.Fatal(err)
			}
			buf := r.Arena().AllocWords("data", bufWords)
			if _, err := r.Run(stages, items, func(c *Cell, stage, item int) {
				p.run(c, buf, stage, item)
			}); err != nil {
				t.Fatal(err)
			}
			if len(words) != len(want) {
				t.Fatalf("seed %d: %v reports %d racing words, oracle %d", seed, d, len(words), len(want))
			}
			for w := range want {
				if !words[w] {
					t.Fatalf("seed %d: %v missed racing word %#x", seed, d, w)
				}
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	r, _ := NewRunner(Options{Detector: stint.DetectorSTINT})
	if _, err := r.Run(0, 5, func(*Cell, int, int) {}); err == nil {
		t.Error("accepted empty grid")
	}
	if _, err := r.Run(1<<16, 1<<16, func(*Cell, int, int) {}); err == nil {
		t.Error("accepted overflowing grid")
	}
}

func TestDetectorOffRunsBody(t *testing.T) {
	r, _ := NewRunner(Options{})
	count := 0
	rep, err := r.Run(3, 4, func(c *Cell, stage, item int) {
		if c.Detecting() {
			t.Error("Detecting() under DetectorOff")
		}
		count++
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Errorf("body ran %d times, want 12", count)
	}
	if rep.Racy() {
		t.Error("DetectorOff found races")
	}
}

func TestReachOnlySkipsHooks(t *testing.T) {
	r, _ := NewRunner(Options{Detector: stint.DetectorReachOnly})
	buf := r.Arena().AllocWords("b", 8)
	rep, err := r.Run(2, 2, func(c *Cell, stage, item int) {
		c.Store(buf, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.WriteAccesses != 0 || rep.Racy() {
		t.Errorf("ReachOnly recorded accesses: %+v", rep.Stats)
	}
}
