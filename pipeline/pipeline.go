// Package pipeline extends the race detector to pipeline parallelism —
// the 2D-grid DAGs of Dimitrov, Vechev, and Sarkar (SPAA '15) — realizing
// the paper's §7 claim that the interval access history "would work out of
// the box in other instances, such as race detectors for pipelines or 2D
// grids, since it is still sufficient to store one reader and one writer
// for each memory location".
//
// A pipeline computation is a grid of nodes: node (stage, item) processes
// one item at one stage and depends on (stage-1, item) — earlier stages of
// the same item — and (stage, item-1) — the same stage on the previous
// item. Two nodes are logically parallel exactly when one has a strictly
// earlier stage and a strictly later item than the other. Reachability is
// therefore pure index arithmetic; no order-maintenance structure is
// needed. The left-of relation — which reader to keep per location — turns
// out to be lexicographic comparison of (stage, item): among the readers a
// later node can still race with, the lexicographically greatest is always
// a witness (see the package tests, which verify this against a brute-force
// oracle on random grid programs).
//
// Everything downstream of reachability — the vanilla hashmap, the bit
// hashmap, and the interval treaps — is shared unchanged with the fork-join
// detector: detecting pipelines required implementing only this file's
// ~60-line reachability adapter, which is precisely the paper's point.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"stint"
	"stint/internal/detect"
	"stint/internal/mem"
)

// Options configures a pipeline Runner. The zero value uses DetectorOff.
type Options struct {
	// Detector selects the engine; all of the stint detector
	// configurations are available.
	Detector stint.Detector
	// OnRace receives every race as it is found.
	OnRace func(stint.Race)
	// MaxRacesRecorded bounds Report.Races (default 64).
	MaxRacesRecorded int
	// TimeAccessHistory enables the access-history timers.
	TimeAccessHistory bool
}

// Runner executes pipeline computations under one detector configuration.
type Runner struct {
	opts  Options
	arena *mem.Arena
}

// NewRunner validates opts and returns a Runner with an empty Arena.
func NewRunner(opts Options) (*Runner, error) {
	if opts.MaxRacesRecorded == 0 {
		opts.MaxRacesRecorded = stint.DefaultMaxRacesRecorded
	}
	return &Runner{opts: opts, arena: mem.NewArena()}, nil
}

// Arena returns the Runner's address arena.
func (r *Runner) Arena() *stint.Arena { return r.arena }

// grid is the 2D-dominance reachability structure: strand IDs encode
// (stage, item) pairs densely.
type grid struct {
	stages int
	items  int
	cur    int32
}

func (g *grid) encode(stage, item int) int32 { return int32(item*g.stages + stage) }

func (g *grid) decode(id int32) (stage, item int) {
	return int(id) % g.stages, int(id) / g.stages
}

// CurrentID returns the ID of the node being executed.
func (g *grid) CurrentID() int32 { return g.cur }

// Parallel reports grid parallelism: neither node dominates the other.
func (g *grid) Parallel(a, b int32) bool {
	sa, ia := g.decode(a)
	sb, ib := g.decode(b)
	return (sa-sb)*(ia-ib) < 0
}

// LeftOf is lexicographic (stage, item) order, greater side left-of.
func (g *grid) LeftOf(a, b int32) bool {
	sa, ia := g.decode(a)
	sb, ib := g.decode(b)
	return sa > sb || (sa == sb && ia > ib)
}

// NodeFunc is the body of one grid node.
type NodeFunc func(c *Cell, stage, item int)

// Cell is the hook receiver for one pipeline node, mirroring stint.Task's
// instrumentation surface (pipeline nodes do not spawn: the DAG shape is
// fixed by the grid).
type Cell struct {
	engine detect.Engine
	hooks  bool
}

// Detecting reports whether memory hooks are live.
func (c *Cell) Detecting() bool { return c.hooks }

// Load reports a read of element i of b.
func (c *Cell) Load(b *stint.Buffer, i int) {
	if !c.hooks {
		return
	}
	c.engine.ReadHook(b.Addr(i), uint64(b.ElemBytes()))
}

// Store reports a write of element i of b.
func (c *Cell) Store(b *stint.Buffer, i int) {
	if !c.hooks {
		return
	}
	c.engine.WriteHook(b.Addr(i), uint64(b.ElemBytes()))
}

// LoadRange reports a compiler-coalesced read of elements [i, i+n) of b.
func (c *Cell) LoadRange(b *stint.Buffer, i, n int) {
	if !c.hooks || n == 0 {
		return
	}
	addr, _ := b.Range(i, n)
	c.engine.ReadRangeHook(addr, n, uint64(b.ElemBytes()))
}

// StoreRange reports a compiler-coalesced write of elements [i, i+n) of b.
func (c *Cell) StoreRange(b *stint.Buffer, i, n int) {
	if !c.hooks || n == 0 {
		return
	}
	addr, _ := b.Range(i, n)
	c.engine.WriteRangeHook(addr, n, uint64(b.ElemBytes()))
}

// Run executes the stages×items grid serially in a valid topological order
// (item-major: each item flows through all stages before the next item
// starts) with body invoked once per node, and returns the detection
// report.
func (r *Runner) Run(stages, items int, body NodeFunc) (*stint.Report, error) {
	if stages <= 0 || items <= 0 {
		return nil, fmt.Errorf("pipeline: grid %dx%d is empty", stages, items)
	}
	if int64(stages)*int64(items) >= 1<<31 {
		return nil, errors.New("pipeline: grid has too many nodes for 32-bit strand IDs")
	}
	rep := &stint.Report{}
	g := &grid{stages: stages, items: items}
	cell := &Cell{}
	if r.opts.Detector != stint.DetectorOff {
		cfg := detect.Config{
			Mode:              r.opts.Detector,
			TimeAccessHistory: r.opts.TimeAccessHistory,
		}
		user := r.opts.OnRace
		maxRec := r.opts.MaxRacesRecorded
		cfg.OnRace = func(race stint.Race) {
			if len(rep.Races) < maxRec {
				rep.Races = append(rep.Races, race)
			}
			if user != nil {
				user(race)
			}
		}
		cell.engine = detect.New(cfg, g)
		cell.hooks = r.opts.Detector != stint.DetectorReachOnly
	}
	start := time.Now()
	for item := 0; item < items; item++ {
		for stage := 0; stage < stages; stage++ {
			g.cur = g.encode(stage, item)
			body(cell, stage, item)
			if cell.engine != nil {
				cell.engine.StrandEnd()
			}
		}
	}
	if cell.engine != nil {
		cell.engine.Finish()
	}
	rep.WallTime = time.Since(start)
	if cell.engine != nil {
		rep.Strands = stages * items
		rep.Stats = *cell.engine.Stats()
		rep.RaceCount = rep.Stats.Races
	}
	return rep, nil
}
