// Asynchronous pipelined detection (Options.Async): the mutator executes
// the serial projection and publishes its instrumentation events into
// batches over a bounded SPSC ring (internal/evstream), while a dedicated
// detector goroutine consumes the batches in order and drives SP-Order and
// the access history exactly as the inline path does.
//
// Sequential semantics are preserved because the stream *is* the serial
// order: the producer emits spawn/restore/sync and access events in the
// depth-first execution order, and the consumer replays them one at a time
// against its own SP structure — the same reconstruction stint/trace uses
// for offline replay, minus the byte encoding. The only concurrency is the
// producer/consumer handoff inside the ring; the detector itself remains a
// sequential algorithm and reports byte-identical races and stats.

package stint

import (
	"time"

	"stint/internal/detect"
	"stint/internal/evstream"
	"stint/internal/spord"
)

// Default pipeline geometry: batches amortize the per-batch ring
// synchronization over ~4k events, and the ring bounds the pipeline at 8
// in-flight batches before backpressure blocks the mutator.
const (
	defaultAsyncBatchEvents = 4096
	defaultAsyncRingDepth   = 8
)

// asyncState is the per-Run pipeline: the producer's working batch and
// ring on the mutator side, and the consumer's results, published before
// done closes and read only after drain returns.
type asyncState struct {
	ring     *evstream.Ring
	batch    []evstream.Event
	batchCap int // immutable copy of the batch capacity for the consumer side
	done     chan struct{}
	// Written by the consumer goroutine, read after <-done.
	strands int
	stats   Stats
	races   []Race
	// Sharded-pipeline utilization split (consumeSharded only).
	seqBusy   time.Duration
	shardBusy []time.Duration
}

func newAsyncState(ringDepth, batchEvents int) *asyncState {
	ring := evstream.NewRing(ringDepth, batchEvents)
	return &asyncState{ring: ring, batch: ring.Get(), batchCap: batchEvents, done: make(chan struct{})}
}

// emit appends one event to the working batch, publishing it when full.
// This is the producer's entire hot path: an append, and one ring handoff
// per batch. The full-batch slow path lives in flush so emit stays under
// the inlining budget and disappears into the access hooks.
func (as *asyncState) emit(ev evstream.Event) {
	if len(as.batch) == cap(as.batch) {
		as.flush()
	}
	as.batch = append(as.batch, ev)
}

// flush publishes the working batch and takes a fresh one from the ring's
// free list. Kept out of emit so the latter inlines.
func (as *asyncState) flush() {
	as.ring.Publish(as.batch)
	as.batch = as.ring.Get()
}

// drain flushes the final (possibly partial, possibly empty) batch,
// signals end-of-stream, and waits for the detector goroutine to finish
// consuming. After drain returns, strands and stats are exact.
func (as *asyncState) drain() {
	as.ring.Publish(as.batch)
	as.batch = nil
	as.ring.Close()
	<-as.done
}

// consumeFrame tracks one in-flight function instance on the consumer's
// replay stack, mirroring trace.replayFrame.
type consumeFrame struct {
	frame spord.Frame
	cont  *spord.Strand
}

// consume runs on the detector goroutine: it rebuilds SP-Order from the
// structure events and feeds the access events to the engine, in stream
// order, exactly as the inline path interleaves them. newEngine is the
// Runner's test seam (nil outside tests). maxRec and user mirror the
// Options fields; the consumer owns the canonical race collector because
// the sequential ranks live on its SP structure.
func (as *asyncState) consume(cfg detect.Config, newEngine func(detect.Config, *spord.SP) detect.Engine, maxRec int, user func(Race)) {
	defer close(as.done)
	sp := spord.New()
	col := newRaceCollector(maxRec)
	cfg.OnRace = func(race Race) {
		col.add(sp.SeqRank(race.Cur), race)
		if user != nil {
			user(race)
		}
	}
	var engine detect.Engine
	if newEngine != nil {
		engine = newEngine(cfg, sp)
	} else {
		engine = detect.New(cfg, sp)
	}
	stack := make([]consumeFrame, 1, 16) // stack[0] is the root instance
	var busy time.Duration
	for {
		batch, ok := as.ring.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		for _, ev := range batch {
			switch ev.EvOp() {
			case evstream.OpSpawn:
				engine.StrandEnd()
				_, cont := sp.Spawn(&stack[len(stack)-1].frame)
				stack = append(stack, consumeFrame{cont: cont})
			case evstream.OpRestore:
				cont := stack[len(stack)-1].cont
				stack = stack[:len(stack)-1]
				engine.StrandEnd() // the child's final strand ends here
				sp.Restore(cont)
			case evstream.OpSync:
				engine.StrandEnd()
				sp.Sync(&stack[len(stack)-1].frame)
			case evstream.OpRead:
				engine.ReadHook(ev.Addr(), ev.Size())
			case evstream.OpWrite:
				engine.WriteHook(ev.Addr(), ev.Size())
			case evstream.OpReadRange:
				engine.ReadRangeHook(ev.Addr(), ev.Count(), ev.Elem())
			case evstream.OpWriteRange:
				engine.WriteRangeHook(ev.Addr(), ev.Count(), ev.Elem())
			}
		}
		busy += time.Since(t0)
		as.ring.Recycle(batch)
	}
	t0 := time.Now()
	engine.Finish()
	busy += time.Since(t0)
	as.strands = sp.StrandCount()
	as.stats = *engine.Stats()
	as.stats.PipelineDetectTime = busy
	as.races = col.sorted()
}
