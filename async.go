// Asynchronous pipelined detection (Options.Async): the mutator executes
// the serial projection and publishes its instrumentation events into
// batches over a bounded SPSC ring (internal/evstream), while the detector
// side — one replay stage, or the label-stage-plus-workers graph of
// shards.go — consumes the batches in order.
//
// Sequential semantics are preserved because the stream *is* the serial
// order: the producer emits spawn/restore/sync and access events in the
// depth-first execution order, and each consumer stage replays them one at
// a time against its own reachability structure — the same reconstruction
// stint/trace uses for offline replay, minus the byte encoding. The only
// concurrency is the ring handoffs between stages; every stage remains a
// sequential algorithm, and the pipeline reports byte-identical races and
// stats.
//
// In sharded mode each batch's Summary — the structure-event offsets plus,
// unless summaries are disabled, the shard-occupancy mask of every access
// event — is stamped by one of two stages (Options.SummaryStamping): the
// producer, as it appends (a mask OR per access on the mutator's hot
// path), or the label stage, which then decodes each batch once and stamps
// while it advances the label builder (shards.go). Either way the stamp
// lets workers skip whole batches they own no pages of.
//
// All detector-side goroutines hang off one stage.Graph: Run wires the
// stages, drain closes the stream and waits for the graph's merge, and the
// results fields below are written before the graph reports done. A stage
// failure (a user OnRace panic, a guard tripping) fires the graph's abort
// hook, which closes the rings: blocked stages unwind, the producer's
// publishes start reporting false (flush then drops events on the floor —
// the run is already doomed), and graph.Wait re-raises the failure on the
// producer so it propagates out of Run exactly as in synchronous mode.

package stint

import (
	"sync/atomic"
	"time"

	"stint/internal/coalesce"
	"stint/internal/detect"
	"stint/internal/evstream"
	"stint/internal/spord"
	"stint/internal/stage"
)

// Default pipeline geometry: batches amortize the per-batch ring
// synchronization over ~4k events, and the rings bound the pipeline at 8
// in-flight batches per hop before backpressure blocks the upstream stage.
const (
	defaultAsyncBatchEvents = 4096
	defaultAsyncRingDepth   = 8
)

// asyncState is the per-Run pipeline: the producer's working batch and
// ring on the mutator side, the stage graph on the detector side, and the
// consumer results, written by the graph's stages before Seal's merge
// completes and read only after drain returns.
type asyncState struct {
	ring      *evstream.Ring
	batch     *evstream.Batch
	batchCap  int // immutable copy of the batch capacity for the consumer side
	ringDepth int // immutable copy of the ring depth, sizing downstream rings
	graph     *stage.Graph
	// Summary stamping (sharded mode): shards is the worker count PickShard
	// targets, summarize whether access masks are computed (false for plain
	// async and when Options.DisableBatchSummaries is set — unsummarized
	// batches carry MaskAll so no worker skips them), and prodStamp whether
	// the producer stamps Ctl offsets and masks as it appends. With
	// prodStamp false in sharded mode the label stage stamps instead,
	// scanning each batch once; plain async stamps nothing at all (no stage
	// reads the Summary).
	shards    int
	summarize bool
	prodStamp bool
	// Parallel-detect mode (parallel.go) replaces the producer ring with a
	// multi-producer chunk queue and shared batch pool; ring and batch are
	// nil. nextTask hands out task identities to spawned children (the
	// root is 0), execBusy accumulates the executor goroutines' busy
	// nanoseconds, mergeCtl counts the structure events the merge
	// synthesized from chunk terminators, and reorderPeak records the
	// merge's reorder-buffer high-water mark.
	queue       *evstream.TaskQueue
	pool        *evstream.BatchPool
	nextTask    atomic.Uint64
	execBusy    atomic.Int64
	mergeCtl    uint64
	reorderPeak int
	// viewSnaps counts the label stage's depa.View snapshots (sharded mode;
	// written by the label stage, read after graph.Wait).
	viewSnaps uint64
	// Written by the detector-side stages, read after graph.Wait().
	strands int
	stats   Stats
	races   []Race
	// Pipeline utilization split: seqBusy is the label stage's busy time
	// and shardLoad the per-worker load breakdown (sharded mode only).
	seqBusy   stage.Meter
	shardLoad []ShardLoad
	// quiesce, when non-nil (PageQuiesceThreshold in a serial-projection
	// pipeline), is the quiesced-page registry the detector engines publish
	// into. The producer consults it to drop single-page accesses to dead
	// pages before they ever hit the ring; qlive caches whether the
	// registry has any entries, refreshed once per batch in flush() so the
	// per-access fast path stays two loads. The drop is sound because the
	// producer is strictly ahead of the detector in stream order: any page
	// it observes quiesced reached its threshold at an earlier stream
	// position, so the engine would ignore the event anyway. (Parallel-
	// detect executors have no such ordering and never set this field.)
	quiesce *detect.QuiesceSet
	qlive   bool
}

func newAsyncState(ringDepth, batchEvents int, compact bool) *asyncState {
	var ring *evstream.Ring
	if compact {
		ring = evstream.NewCompactRing(ringDepth, batchEvents)
	} else {
		ring = evstream.NewRing(ringDepth, batchEvents)
	}
	return &asyncState{
		ring:      ring,
		batch:     ring.Get(),
		batchCap:  batchEvents,
		ringDepth: ringDepth,
		graph:     stage.NewGraph(),
	}
}

// reset re-arms the pipeline state for another run: the rings, queue, and
// batch pool retain their warm capacity, every per-run result field zeroes,
// and the producer's working batch — nilled by drain — is re-armed from the
// ring's free list. The stage graph is per-run (its done channel cannot be
// reused) and is recreated by Run before launch.
func (as *asyncState) reset() {
	if as.ring != nil {
		as.ring.Reset()
		as.batch = as.ring.Get()
	}
	if as.queue != nil {
		as.queue.Reset()
	}
	if as.pool != nil {
		as.pool.Reset()
	}
	as.graph = nil
	as.nextTask.Store(0)
	as.execBusy.Store(0)
	as.mergeCtl = 0
	as.reorderPeak = 0
	as.viewSnaps = 0
	as.strands = 0
	as.stats = Stats{}
	as.races = nil
	as.seqBusy.Reset()
	as.shardLoad = nil
	as.qlive = false
}

// setSharded fixes the summary-stamping split before the program starts
// emitting: which masks are computed (summarize) and which stage computes
// them (prodStamp). Producer stamping without masks would stamp nothing a
// worker reads — the label stage owns the MaskAll stamp when summaries are
// off — so prodStamp implies summarize.
func (as *asyncState) setSharded(shards int, summarize, prodStamp bool) {
	as.shards = shards
	as.summarize = summarize
	as.prodStamp = prodStamp && summarize
}

// emitCtl appends one structure event to the working batch, publishing it
// when full, and — when the producer is the stamping stage — records the
// event's offset in the batch summary so skip-scanning workers can replay
// the structure stream without touching the access events.
func (as *asyncState) emitCtl(op evstream.Op) {
	if as.batch.Full() {
		as.flush()
	}
	off := as.batch.AppendCtl(op)
	if as.prodStamp {
		as.batch.Sum.AddCtl(off)
	}
}

// emitAccess appends one per-access event, publishing the batch when full,
// and ORs the access's page mask into the batch summary when the producer
// is the stamping stage. This is the producer's entire per-access hot
// path: an encode, two predictable branches, and one ring handoff per
// batch. Accesses wholly inside a quiesced page are dropped here — the
// cheapest possible no-op, saving the encode, the stream bytes, and the
// consumer's scan (see the quiesce field for why this is sound).
func (as *asyncState) emitAccess(op evstream.Op, addr, size uint64) {
	if as.qlive && deadEmit(as.quiesce, addr, size) {
		return
	}
	if as.batch.Full() {
		as.flush()
	}
	if as.prodStamp {
		as.batch.Sum.Mask |= evstream.SpanMask(addr, size, coalesce.PageBytesBits, as.shards)
	}
	as.batch.AppendAccess(op, addr, size)
}

// emitRange is emitAccess for compiler-coalesced range events. The span
// for the mask is count*elem bytes; the hook layer's field validation
// (count < 2^32, elem < 2^24) keeps the product inside 56 bits.
func (as *asyncState) emitRange(op evstream.Op, addr uint64, count int, elem uint64) {
	if as.qlive && deadEmit(as.quiesce, addr, uint64(count)*elem) {
		return
	}
	if as.batch.Full() {
		as.flush()
	}
	if as.prodStamp {
		as.batch.Sum.Mask |= evstream.SpanMask(addr, uint64(count)*elem, coalesce.PageBytesBits, as.shards)
	}
	as.batch.AppendRange(op, addr, count, elem)
}

// deadEmit reports whether a span lies wholly within one registry-quiesced
// page. Mirrors the engines' deadSpan rule: multi-page spans always stream
// (their dead pieces drop page-locally at the engine).
func deadEmit(q *detect.QuiesceSet, addr, size uint64) bool {
	if size == 0 {
		return false
	}
	first := addr >> coalesce.PageBytesBits
	if (addr+size-1)>>coalesce.PageBytesBits != first {
		return false
	}
	return q.Contains(first)
}

// deadEvent is deadEmit for a decoded event — the label stage's stamping
// scan consults the registry after the fact for events the producer
// streamed before its own liveness check caught up.
func deadEvent(q *detect.QuiesceSet, ev evstream.Event) bool {
	var size uint64
	switch ev.EvOp() {
	case evstream.OpRead, evstream.OpWrite:
		size = ev.Size()
	default:
		size = uint64(ev.Count()) * ev.Elem()
	}
	return deadEmit(q, ev.Addr(), size)
}

// flush publishes the working batch and takes a fresh one from the ring's
// free list. Kept out of the emit paths so they stay under the inlining
// budget. A false Publish means the graph aborted and closed the ring
// underneath us: the working batch is reset and reused, events are dropped
// (the failure, re-raised by drain, is the run's result), and the producer
// keeps running to its natural unwind point.
func (as *asyncState) flush() {
	if as.quiesce != nil {
		// Refresh the quiesce fast-path flag once per batch, off the
		// per-access path. A page quiesced mid-batch starts dropping at
		// the next batch boundary; the engine drops it until then.
		as.qlive = as.quiesce.Len() > 0
	}
	if !as.ring.Publish(as.batch) {
		as.batch.Reset()
		return
	}
	as.batch = as.ring.Get()
}

// drain flushes the final (possibly partial, possibly empty) batch,
// signals end-of-stream, and waits for the stage graph to finish — re-
// panicking the first stage failure, if any, on the producer goroutine.
// After drain returns normally, strands, stats, and races are exact, and
// the ring's stream totals are folded into them.
func (as *asyncState) drain() {
	as.ring.Publish(as.batch) // a false return means the graph aborted; Wait surfaces why
	as.batch = nil
	as.ring.Close()
	as.graph.Wait()
	rs := as.ring.Stats()
	as.stats.EventsStreamed = rs.EventsPublished
	as.stats.StreamBytes = rs.StreamBytes
}

// consumeState is the plain-Async detector side, retained across runs on a
// reused Runner: the consumer's SP-Order structure, engine, canonical race
// collector, and replay stack all keep their warm capacity between runs.
type consumeState struct {
	sp     *spord.SP
	engine detect.Engine
	col    *stage.Collector
	stack  []consumeFrame
}

// buildConsume constructs the retained consume-stage state; the OnRace
// closure captures the retained structures, so it survives reuse unchanged.
// newEngine is the Runner's test seam (nil outside tests); maxRec and user
// mirror the Options fields.
func buildConsume(cfg detect.Config, newEngine func(detect.Config, *spord.SP) detect.Engine, maxRec int, user func(Race)) *consumeState {
	cs := &consumeState{
		sp:  spord.New(),
		col: stage.NewCollector(maxRec),
	}
	cfg.OnRace = func(race Race) {
		cs.col.Add(cs.sp.SeqRank(race.Cur), race)
		if user != nil {
			user(race)
		}
	}
	if newEngine != nil {
		cs.engine = newEngine(cfg, cs.sp)
	} else {
		cs.engine = detect.New(cfg, cs.sp)
	}
	cs.stack = make([]consumeFrame, 1, 16) // stack[0] is the root instance
	return cs
}

// reset re-arms the consume stage for another run: SP-Order re-derives its
// root, the engine drops its history (retaining warm capacity), the
// collector empties, and the replay stack rewinds to the root frame.
func (cs *consumeState) reset() {
	cs.sp.Reset()
	cs.engine.Reset()
	cs.col.Reset()
	cs.stack = cs.stack[:1]
	cs.stack[0] = consumeFrame{}
}

// launchConsume wires the single-stage pipeline: one replay stage consuming
// the main ring. Used for plain Async (no sharding). The abort hook closes
// the ring so a panic in the stage (a user OnRace callback) unblocks the
// producer instead of deadlocking the run.
func (as *asyncState) launchConsume(cs *consumeState) {
	as.graph.OnAbort(as.ring.Close)
	as.graph.Go(func() { as.consume(cs) })
	as.graph.Seal(nil)
}

// consumeFrame tracks one in-flight function instance on the consumer's
// replay stack, mirroring trace.replayFrame.
type consumeFrame struct {
	frame spord.Frame
	cont  *spord.Strand
}

// consume is the replay stage: it rebuilds SP-Order from the structure
// events and feeds the access events to the engine, in stream order,
// exactly as the inline path interleaves them. The stage owns the canonical
// race collector because the sequential ranks live on its SP structure.
func (as *asyncState) consume(cs *consumeState) {
	sp, engine, col := cs.sp, cs.engine, cs.col
	stack := cs.stack
	var busy stage.Meter
	var blk [evstream.BlockEvents]evstream.Event
	for {
		batch, ok := as.ring.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		it := batch.Iter()
		for {
			evs := it.DecodeBlock(&blk)
			if len(evs) == 0 {
				break
			}
			for _, ev := range evs {
				switch ev.EvOp() {
				case evstream.OpSpawn:
					engine.StrandEnd()
					_, cont := sp.Spawn(&stack[len(stack)-1].frame)
					stack = append(stack, consumeFrame{cont: cont})
				case evstream.OpRestore:
					cont := stack[len(stack)-1].cont
					stack = stack[:len(stack)-1]
					engine.StrandEnd() // the child's final strand ends here
					sp.Restore(cont)
				case evstream.OpSync:
					engine.StrandEnd()
					sp.Sync(&stack[len(stack)-1].frame)
				case evstream.OpRead:
					engine.ReadHook(ev.Addr(), ev.Size())
				case evstream.OpWrite:
					engine.WriteHook(ev.Addr(), ev.Size())
				case evstream.OpReadRange:
					engine.ReadRangeHook(ev.Addr(), ev.Count(), ev.Elem())
				case evstream.OpWriteRange:
					engine.WriteRangeHook(ev.Addr(), ev.Count(), ev.Elem())
				}
			}
		}
		busy.Add(t0)
		as.ring.Recycle(batch)
	}
	t0 := time.Now()
	engine.Finish()
	busy.Add(t0)
	cs.stack = stack // hand the (possibly grown) stack back for reuse
	as.strands = sp.StrandCount()
	as.stats = *engine.Stats()
	as.stats.PipelineDetectTime = busy.Busy()
	as.races = col.Sorted()
}
