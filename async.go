// Asynchronous pipelined detection (Options.Async): the mutator executes
// the serial projection and publishes its instrumentation events into
// batches over a bounded SPSC ring (internal/evstream), while the detector
// side — one replay stage, or the label-stage-plus-workers graph of
// shards.go — consumes the batches in order.
//
// Sequential semantics are preserved because the stream *is* the serial
// order: the producer emits spawn/restore/sync and access events in the
// depth-first execution order, and each consumer stage replays them one at
// a time against its own reachability structure — the same reconstruction
// stint/trace uses for offline replay, minus the byte encoding. The only
// concurrency is the ring handoffs between stages; every stage remains a
// sequential algorithm, and the pipeline reports byte-identical races and
// stats.
//
// All detector-side goroutines hang off one stage.Graph: Run wires the
// stages, drain closes the stream and waits for the graph's merge, and the
// results fields below are written before the graph reports done.

package stint

import (
	"time"

	"stint/internal/detect"
	"stint/internal/evstream"
	"stint/internal/spord"
	"stint/internal/stage"
)

// Default pipeline geometry: batches amortize the per-batch ring
// synchronization over ~4k events, and the rings bound the pipeline at 8
// in-flight batches per hop before backpressure blocks the upstream stage.
const (
	defaultAsyncBatchEvents = 4096
	defaultAsyncRingDepth   = 8
)

// asyncState is the per-Run pipeline: the producer's working batch and
// ring on the mutator side, the stage graph on the detector side, and the
// consumer results, written by the graph's stages before Seal's merge
// completes and read only after drain returns.
type asyncState struct {
	ring      *evstream.Ring
	batch     []evstream.Event
	batchCap  int // immutable copy of the batch capacity for the consumer side
	ringDepth int // immutable copy of the ring depth, sizing downstream rings
	graph     *stage.Graph
	// Written by the detector-side stages, read after graph.Wait().
	strands int
	stats   Stats
	races   []Race
	// Pipeline utilization split: seqBusy is the label stage's busy time
	// and shardBusy the per-worker busy times (sharded mode only).
	seqBusy   stage.Meter
	shardBusy []time.Duration
}

func newAsyncState(ringDepth, batchEvents int) *asyncState {
	ring := evstream.NewRing(ringDepth, batchEvents)
	return &asyncState{
		ring:      ring,
		batch:     ring.Get(),
		batchCap:  batchEvents,
		ringDepth: ringDepth,
		graph:     stage.NewGraph(),
	}
}

// emit appends one event to the working batch, publishing it when full.
// This is the producer's entire hot path: an append, and one ring handoff
// per batch. The full-batch slow path lives in flush so emit stays under
// the inlining budget and disappears into the access hooks.
func (as *asyncState) emit(ev evstream.Event) {
	if len(as.batch) == cap(as.batch) {
		as.flush()
	}
	as.batch = append(as.batch, ev)
}

// flush publishes the working batch and takes a fresh one from the ring's
// free list. Kept out of emit so the latter inlines.
func (as *asyncState) flush() {
	as.ring.Publish(as.batch)
	as.batch = as.ring.Get()
}

// drain flushes the final (possibly partial, possibly empty) batch,
// signals end-of-stream, and waits for the stage graph to finish. After
// drain returns, strands, stats, and races are exact.
func (as *asyncState) drain() {
	as.ring.Publish(as.batch)
	as.batch = nil
	as.ring.Close()
	as.graph.Wait()
}

// startConsume wires the single-stage pipeline: one replay stage consuming
// the main ring. Used for plain Async (no sharding).
func (as *asyncState) startConsume(cfg detect.Config, newEngine func(detect.Config, *spord.SP) detect.Engine, maxRec int, user func(Race)) {
	as.graph.Go(func() { as.consume(cfg, newEngine, maxRec, user) })
	as.graph.Seal(nil)
}

// consumeFrame tracks one in-flight function instance on the consumer's
// replay stack, mirroring trace.replayFrame.
type consumeFrame struct {
	frame spord.Frame
	cont  *spord.Strand
}

// consume is the replay stage: it rebuilds SP-Order from the structure
// events and feeds the access events to the engine, in stream order,
// exactly as the inline path interleaves them. newEngine is the Runner's
// test seam (nil outside tests). maxRec and user mirror the Options
// fields; the stage owns the canonical race collector because the
// sequential ranks live on its SP structure.
func (as *asyncState) consume(cfg detect.Config, newEngine func(detect.Config, *spord.SP) detect.Engine, maxRec int, user func(Race)) {
	sp := spord.New()
	col := stage.NewCollector(maxRec)
	cfg.OnRace = func(race Race) {
		col.Add(sp.SeqRank(race.Cur), race)
		if user != nil {
			user(race)
		}
	}
	var engine detect.Engine
	if newEngine != nil {
		engine = newEngine(cfg, sp)
	} else {
		engine = detect.New(cfg, sp)
	}
	stack := make([]consumeFrame, 1, 16) // stack[0] is the root instance
	var busy stage.Meter
	for {
		batch, ok := as.ring.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		for _, ev := range batch {
			switch ev.EvOp() {
			case evstream.OpSpawn:
				engine.StrandEnd()
				_, cont := sp.Spawn(&stack[len(stack)-1].frame)
				stack = append(stack, consumeFrame{cont: cont})
			case evstream.OpRestore:
				cont := stack[len(stack)-1].cont
				stack = stack[:len(stack)-1]
				engine.StrandEnd() // the child's final strand ends here
				sp.Restore(cont)
			case evstream.OpSync:
				engine.StrandEnd()
				sp.Sync(&stack[len(stack)-1].frame)
			case evstream.OpRead:
				engine.ReadHook(ev.Addr(), ev.Size())
			case evstream.OpWrite:
				engine.WriteHook(ev.Addr(), ev.Size())
			case evstream.OpReadRange:
				engine.ReadRangeHook(ev.Addr(), ev.Count(), ev.Elem())
			case evstream.OpWriteRange:
				engine.WriteRangeHook(ev.Addr(), ev.Count(), ev.Elem())
			}
		}
		busy.Add(t0)
		as.ring.Recycle(batch)
	}
	t0 := time.Now()
	engine.Finish()
	busy.Add(t0)
	as.strands = sp.StrandCount()
	as.stats = *engine.Stats()
	as.stats.PipelineDetectTime = busy.Busy()
	as.races = col.Sorted()
}
