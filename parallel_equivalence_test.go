// Race-set equivalence harness for ParallelDetect over the seven Fig5
// workloads (satellite of the parallel-execution PR). Lives in the
// external test package because equivalence_test.go is an internal test
// and the workloads package imports stint.
//
// The Fig5 kernels are deterministic, race-free real computations —
// exactly what ParallelDetect must be safe on: spawned siblings genuinely
// run concurrently here, so each leg also checks Verify() (the parallel
// schedule computed the right answer) and that no false race appears.
// Race-set equality on genuinely racy programs is covered by the acts
// programs in equivalence_test.go and the fuzz harness, which are
// parallel-safe by construction (every act reads immutable program data).
package stint_test

import (
	"fmt"
	"reflect"
	"testing"

	"stint"
	"stint/workloads"
)

// fig5Small lists the seven workloads at sizes small enough that the full
// shards × encoding grid stays inside a few seconds.
var fig5Small = []struct {
	name string
	f    workloads.Factory
}{
	{"chol", func() workloads.Workload { return workloads.NewChol(48, 8) }},
	{"fft", func() workloads.Workload { return workloads.NewFFT(1024, 64) }},
	{"heat", func() workloads.Workload { return workloads.NewHeat(32, 32, 4, 4) }},
	{"mmul", func() workloads.Workload { return workloads.NewMMul(32, 8) }},
	{"sort", func() workloads.Workload { return workloads.NewSort(4000, 512) }},
	{"stra", func() workloads.Workload { return workloads.NewStrassen(32, 8, false) }},
	{"straz", func() workloads.Workload { return workloads.NewStrassen(32, 8, true) }},
}

// pdNormStats zeroes the Stats fields that legitimately vary across
// execution modes and runs (timings, allocator traffic, pipeline-shape
// counters), mirroring the internal suite's normStats.
func pdNormStats(s stint.Stats) stint.Stats {
	s.AccessHistoryTime = 0
	s.AllocObjects = 0
	s.AllocBytes = 0
	s.PipelineDetectTime = 0
	s.BatchesSkipped = 0
	s.EventsStreamed = 0
	s.StreamBytes = 0
	s.HistoryBytesPeak = 0
	return s
}

// pdRunWorkload executes one fresh workload instance under opts, failing
// the test on a Verify error — under ParallelDetect that means the
// parallel schedule corrupted the computation itself.
func pdRunWorkload(t *testing.T, f workloads.Factory, opts stint.Options) *stint.Report {
	t.Helper()
	w := f()
	r, err := stint.NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	w.Setup(r)
	rep, err := r.Run(w.Run)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("workload result corrupted: %v", err)
	}
	return rep
}

// TestFig5ParallelDetectEquivalence runs every Fig5 workload under
// ParallelDetect across shards {1, 2, 4} × {compact, fixed} encodings and
// asserts race-set equality with the synchronous run (trivially, the
// empty set — plus the stronger full-report identity the deterministic
// merge provides), then re-runs one configuration to pin run-to-run
// byte-identical reports.
func TestFig5ParallelDetectEquivalence(t *testing.T) {
	const maxRec = 1 << 16
	for _, tc := range fig5Small {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sync := pdRunWorkload(t, tc.f, stint.Options{
				Detector:         stint.DetectorSTINT,
				MaxRacesRecorded: maxRec,
			})
			if sync.RaceCount != 0 {
				t.Fatalf("sync found %d races in a race-free workload", sync.RaceCount)
			}
			for _, shards := range []int{1, 2, 4} {
				for _, nocompact := range []bool{false, true} {
					name := fmt.Sprintf("shards=%d nocompact=%v", shards, nocompact)
					rep := pdRunWorkload(t, tc.f, stint.Options{
						Detector:             stint.DetectorSTINT,
						MaxRacesRecorded:     maxRec,
						ParallelDetect:       true,
						DetectShards:         shards,
						DisableCompactEvents: nocompact,
					})
					if rep.RaceCount != sync.RaceCount {
						t.Fatalf("%s: RaceCount %d, sync %d", name, rep.RaceCount, sync.RaceCount)
					}
					if !reflect.DeepEqual(rep.Races, sync.Races) {
						t.Fatalf("%s: race set differs from sync\n got: %v\nsync: %v", name, rep.Races, sync.Races)
					}
					if rep.Strands != sync.Strands {
						t.Fatalf("%s: Strands %d, sync %d", name, rep.Strands, sync.Strands)
					}
					if ns, ng := pdNormStats(sync.Stats), pdNormStats(rep.Stats); ns != ng {
						t.Fatalf("%s: stats differ from sync\n got: %+v\nsync: %+v", name, ng, ns)
					}
				}
			}
			// Run-to-run determinism on the middle configuration.
			a := pdRunWorkload(t, tc.f, stint.Options{
				Detector: stint.DetectorSTINT, MaxRacesRecorded: maxRec,
				ParallelDetect: true, DetectShards: 2,
			})
			b := pdRunWorkload(t, tc.f, stint.Options{
				Detector: stint.DetectorSTINT, MaxRacesRecorded: maxRec,
				ParallelDetect: true, DetectShards: 2,
			})
			if !reflect.DeepEqual(a.Races, b.Races) || a.RaceCount != b.RaceCount || a.Strands != b.Strands {
				t.Fatalf("repeated runs differ: %d/%d races, %d/%d strands", a.RaceCount, b.RaceCount, a.Strands, b.Strands)
			}
			if na, nb := pdNormStats(a.Stats), pdNormStats(b.Stats); na != nb {
				t.Fatalf("repeated runs differ in stats\n  a: %+v\n  b: %+v", na, nb)
			}
		})
	}
}
