package workloads

import (
	"testing"

	"stint"
)

// smallFactories builds reduced-size instances of every benchmark so the
// full detector matrix stays fast in tests.
func smallFactories() map[string]Factory {
	return map[string]Factory{
		"chol":  func() Workload { return NewChol(48, 8) },
		"fft":   func() Workload { return NewFFT(1024, 32) },
		"heat":  func() Workload { return NewHeat(32, 24, 6, 3) },
		"mmul":  func() Workload { return NewMMul(40, 8) },
		"sort":  func() Workload { return NewSort(5000, 32) },
		"stra":  func() Workload { return NewStrassen(64, 16, false) },
		"straz": func() Workload { return NewStrassen(64, 16, true) },
	}
}

// runWorkload executes one instance under one detector and verifies it.
func runWorkload(t *testing.T, f Factory, d stint.Detector) *stint.Report {
	t.Helper()
	w := f()
	r, err := stint.NewRunner(stint.Options{Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	w.Setup(r)
	rep, err := r.Run(w.Run)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(); err != nil {
		t.Fatalf("%s under %v: %v", w.Name(), d, err)
	}
	return rep
}

func TestWorkloadsComputeCorrectlyWithoutDetection(t *testing.T) {
	for name, f := range smallFactories() {
		name, f := name, f
		t.Run(name, func(t *testing.T) { runWorkload(t, f, stint.DetectorOff) })
	}
}

func TestWorkloadsAreRaceFreeUnderEveryDetector(t *testing.T) {
	detectors := []stint.Detector{
		stint.DetectorVanilla, stint.DetectorCompiler,
		stint.DetectorCompRTS, stint.DetectorSTINT,
	}
	for name, f := range smallFactories() {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			for _, d := range detectors {
				rep := runWorkload(t, f, d)
				if rep.Racy() {
					t.Errorf("%s under %v reported %d races (first: %v)", name, d, rep.RaceCount, rep.Races[0])
				}
			}
		})
	}
}

func TestWorkloadsVerifyCatchesCorruption(t *testing.T) {
	// Verify must actually check something: corrupt one output value.
	w := NewMMul(24, 8)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	w.c[5] += 1
	if w.Verify() == nil {
		t.Error("mmul.Verify accepted a corrupted result")
	}

	s := NewSort(100, 8)
	r2, _ := stint.NewRunner(stint.Options{})
	s.Setup(r2)
	if _, err := r2.Run(s.Run); err != nil {
		t.Fatal(err)
	}
	s.data[0], s.data[99] = s.data[99], s.data[0]
	if s.Verify() == nil {
		t.Error("sort.Verify accepted an unsorted result")
	}
}

func TestSTINTFindsInjectedRace(t *testing.T) {
	// Wrap a race-free workload with an extra conflicting access to prove
	// the detector sees through the whole program, not just toy kernels.
	w := NewHeat(24, 24, 2, 3)
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	w.Setup(r)
	rep, err := r.Run(func(t2 *stint.Task) {
		t2.Spawn(w.Run)
		// Poke the grid while the simulation is logically parallel.
		t2.Store(w.bufCur, 5*24+5)
		t2.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Racy() {
		t.Error("injected conflicting write not detected")
	}
}

func TestByNameRegistry(t *testing.T) {
	for _, name := range Names() {
		f, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		w := f()
		if w.Name() != name {
			t.Errorf("ByName(%q) built %q", name, w.Name())
		}
		if w.Params() == "" {
			t.Errorf("%s has empty params", name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
}

func TestByNameScaleGrowsWork(t *testing.T) {
	f1, _ := ByName("mmul", 1)
	f2, _ := ByName("mmul", 2)
	if f1().Params() == f2().Params() {
		t.Error("scale did not change mmul size")
	}
}

func TestFreshInstancesAreIndependent(t *testing.T) {
	f := smallFactories()["sort"]
	rep1 := runWorkload(t, f, stint.DetectorSTINT)
	rep2 := runWorkload(t, f, stint.DetectorSTINT)
	if rep1.Stats.ReadAccesses != rep2.Stats.ReadAccesses ||
		rep1.Stats.ReadIntervals != rep2.Stats.ReadIntervals ||
		rep1.Strands != rep2.Strands {
		t.Errorf("two runs of the same instance diverge: %+v vs %+v", rep1.Stats, rep2.Stats)
	}
}

func TestCoalescingReducesIntervalsOnWorkloads(t *testing.T) {
	// The paper's core observation: interval counts are far below access
	// counts for these kernels.
	for name, f := range smallFactories() {
		rep := runWorkload(t, f, stint.DetectorSTINT)
		acc := rep.Stats.ReadAccesses + rep.Stats.WriteAccesses
		ivs := rep.Stats.ReadIntervals + rep.Stats.WriteIntervals
		if ivs == 0 {
			t.Errorf("%s produced no intervals", name)
			continue
		}
		if ivs >= acc {
			t.Errorf("%s: intervals (%d) not below accesses (%d)", name, ivs, acc)
		}
	}
}

func TestMortonLayoutGivesBiggerIntervals(t *testing.T) {
	rowMajor := runWorkload(t, func() Workload { return NewStrassen(64, 16, false) }, stint.DetectorSTINT)
	morton := runWorkload(t, func() Workload { return NewStrassen(64, 16, true) }, stint.DetectorSTINT)
	avg := func(rep *stint.Report) float64 {
		ivs := rep.Stats.ReadIntervals + rep.Stats.WriteIntervals
		bytes := rep.Stats.ReadIntervalBytes + rep.Stats.WriteIntervalBytes
		return float64(bytes) / float64(ivs)
	}
	if avg(morton) <= avg(rowMajor) {
		t.Errorf("Morton layout should produce larger intervals: straz avg %.1f <= stra avg %.1f",
			avg(morton), avg(rowMajor))
	}
}

func TestParallelExecutionMatchesSerial(t *testing.T) {
	// The goroutine executor must compute the same results (DetectorOff).
	serial := NewMMul(40, 8)
	rs, _ := stint.NewRunner(stint.Options{})
	serial.Setup(rs)
	if _, err := rs.Run(serial.Run); err != nil {
		t.Fatal(err)
	}
	par := NewMMul(40, 8)
	rp, _ := stint.NewRunner(stint.Options{Parallel: true})
	par.Setup(rp)
	if _, err := rp.Run(par.Run); err != nil {
		t.Fatal(err)
	}
	for i := range serial.c {
		if serial.c[i] != par.c[i] {
			t.Fatalf("parallel and serial results differ at %d: %g vs %g", i, par.c[i], serial.c[i])
		}
	}
	if err := par.Verify(); err != nil {
		t.Fatal(err)
	}
}
