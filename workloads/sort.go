package workloads

import (
	"fmt"

	"stint"
)

// Sort is the Cilk-5 cilksort benchmark: a parallel mergesort that splits
// the array into quarters, sorts them in parallel, and merges with a
// recursive divide-and-conquer parallel merge (binary-search split). The
// base case is the insertion sort of the paper's Algorithm 2, whose stores
// are predicated on input values — the paper's example of accesses only
// runtime coalescing can merge.
//
// Instrumentation: insertion sort uses per-access hooks throughout
// (Algorithm 2); the serial merge uses coalesced load hooks for its two
// input runs (their extents are statically known) but per-element store
// hooks for the output (matching the paper's Figure 6, where sort's reads
// partially coalesce at compile time and its writes do not).
type Sort struct {
	n, b    int
	data    []int32
	tmp     []int32
	bufData *stint.Buffer
	bufTmp  *stint.Buffer
	sum     int64 // input checksum for Verify
}

// mergeBase is the serial-merge cutoff of the parallel merge. Matching the
// insertion-sort base-case scale keeps merge strands' intervals large, the
// property the paper's sort numbers rely on.
const mergeBase = 512

// NewSort returns a sort of n pseudorandom int32s with insertion-sort
// base-case size b.
func NewSort(n, b int) *Sort {
	if n <= 0 || b <= 1 {
		panic("workloads: sort needs n > 0 and b > 1")
	}
	return &Sort{n: n, b: b}
}

func (w *Sort) Name() string   { return "sort" }
func (w *Sort) Params() string { return fmt.Sprintf("n=%d b=%d", w.n, w.b) }

func (w *Sort) Setup(r *stint.Runner) {
	w.data = make([]int32, w.n)
	w.tmp = make([]int32, w.n)
	rng := newRNG(7)
	for i := range w.data {
		w.data[i] = int32(rng.next())
		w.sum += int64(w.data[i])
	}
	w.bufData = r.Arena().AllocWords("sort.data", w.n)
	w.bufTmp = r.Arena().AllocWords("sort.tmp", w.n)
}

func (w *Sort) Run(t *stint.Task) {
	w.cilksort(t, 0, w.n)
}

// cilksort sorts data[lo:lo+n) using tmp[lo:lo+n) as scratch.
func (w *Sort) cilksort(t *stint.Task, lo, n int) {
	// Below four elements a quarter would be empty; insertion sort is the
	// base case regardless of w.b.
	if n <= w.b || n < 4 {
		if n > 1 {
			w.insertionSort(t, lo, lo+n-1)
		}
		return
	}
	q := n / 4
	aLo, bLo, cLo, dLo := lo, lo+q, lo+2*q, lo+3*q
	end := lo + n
	t.Spawn(func(c *stint.Task) { w.cilksort(c, aLo, q) })
	t.Spawn(func(c *stint.Task) { w.cilksort(c, bLo, q) })
	t.Spawn(func(c *stint.Task) { w.cilksort(c, cLo, q) })
	t.Spawn(func(c *stint.Task) { w.cilksort(c, dLo, end-dLo) })
	t.Sync()
	t.Spawn(func(c *stint.Task) { w.cilkmerge(c, w.data, w.bufData, aLo, bLo, bLo, cLo, w.tmp, w.bufTmp, aLo) })
	t.Spawn(func(c *stint.Task) { w.cilkmerge(c, w.data, w.bufData, cLo, dLo, dLo, end, w.tmp, w.bufTmp, cLo) })
	t.Sync()
	w.cilkmerge(t, w.tmp, w.bufTmp, aLo, cLo, cLo, end, w.data, w.bufData, aLo)
}

// insertionSort is Algorithm 2: sort data[l..h] inclusive, with per-access
// instrumentation exactly where the pseudocode's load/store operations sit.
func (w *Sort) insertionSort(t *stint.Task, l, h int) {
	det := t.Detecting()
	for q := l + 1; q <= h; q++ {
		if det {
			t.Load(w.bufData, q)
		}
		a := w.data[q]
		p := q - 1
		for p >= l {
			if det {
				t.Load(w.bufData, p)
			}
			b := w.data[p]
			if b > a {
				if det {
					t.Store(w.bufData, p+1)
				}
				w.data[p+1] = b
			} else {
				break
			}
			p--
		}
		if det {
			t.Store(w.bufData, p+1)
		}
		w.data[p+1] = a
	}
}

// cilkmerge merges src[lo1:hi1) and src[lo2:hi2) (both sorted) into
// dst[dlo:...), splitting recursively around the median of the larger run.
func (w *Sort) cilkmerge(t *stint.Task, src []int32, srcBuf *stint.Buffer, lo1, hi1, lo2, hi2 int, dst []int32, dstBuf *stint.Buffer, dlo int) {
	n1, n2 := hi1-lo1, hi2-lo2
	if n1 < n2 { // keep the first run the larger one
		lo1, hi1, lo2, hi2 = lo2, hi2, lo1, hi1
		n1, n2 = n2, n1
	}
	if n1+n2 <= mergeBase || n1 <= 1 {
		w.serialMerge(t, src, srcBuf, lo1, hi1, lo2, hi2, dst, dstBuf, dlo)
		return
	}
	split1 := (lo1 + hi1) / 2
	pivot := src[split1]
	if t.Detecting() {
		t.Load(srcBuf, split1)
	}
	split2 := w.lowerBound(t, src, srcBuf, lo2, hi2, pivot)
	pos := dlo + (split1 - lo1) + (split2 - lo2)
	if t.Detecting() {
		t.Store(dstBuf, pos)
	}
	dst[pos] = pivot
	t.Spawn(func(c *stint.Task) {
		w.cilkmerge(c, src, srcBuf, lo1, split1, lo2, split2, dst, dstBuf, dlo)
	})
	w.cilkmerge(t, src, srcBuf, split1+1, hi1, split2, hi2, dst, dstBuf, pos+1)
	t.Sync()
}

// lowerBound returns the first index in [lo, hi) with src[idx] >= v,
// instrumenting each probed load (data-dependent, uncoalescible).
func (w *Sort) lowerBound(t *stint.Task, src []int32, srcBuf *stint.Buffer, lo, hi int, v int32) int {
	det := t.Detecting()
	for lo < hi {
		mid := (lo + hi) / 2
		if det {
			t.Load(srcBuf, mid)
		}
		if src[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// serialMerge merges two runs sequentially. The input extents are
// statically known (coalesced loads); output positions advance one by one
// (per-element stores).
func (w *Sort) serialMerge(t *stint.Task, src []int32, srcBuf *stint.Buffer, lo1, hi1, lo2, hi2 int, dst []int32, dstBuf *stint.Buffer, dlo int) {
	det := t.Detecting()
	if det {
		if hi1 > lo1 {
			t.LoadRange(srcBuf, lo1, hi1-lo1)
		}
		if hi2 > lo2 {
			t.LoadRange(srcBuf, lo2, hi2-lo2)
		}
	}
	i, j, k := lo1, lo2, dlo
	for i < hi1 && j < hi2 {
		if det {
			t.Store(dstBuf, k)
		}
		if src[i] <= src[j] {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
		k++
	}
	for i < hi1 {
		if det {
			t.Store(dstBuf, k)
		}
		dst[k] = src[i]
		i++
		k++
	}
	for j < hi2 {
		if det {
			t.Store(dstBuf, k)
		}
		dst[k] = src[j]
		j++
		k++
	}
}

func (w *Sort) Verify() error {
	if !isSorted(w.data) {
		return fmt.Errorf("sort: output not sorted")
	}
	var sum int64
	for _, v := range w.data {
		sum += int64(v)
	}
	if sum != w.sum {
		return fmt.Errorf("sort: checksum changed: %d -> %d (elements lost or duplicated)", w.sum, sum)
	}
	return nil
}
