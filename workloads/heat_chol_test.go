package workloads

import (
	"math"
	"testing"

	"stint"
)

func runHeatKernel(t *testing.T, nx, ny, steps, b int) *Heat {
	t.Helper()
	w := NewHeat(nx, ny, steps, b)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestHeatShapes(t *testing.T) {
	for _, c := range []struct{ nx, ny, steps, b int }{
		{3, 3, 1, 1}, {4, 7, 3, 2}, {16, 16, 5, 16}, {9, 5, 2, 1}, {32, 8, 7, 3},
	} {
		w := runHeatKernel(t, c.nx, c.ny, c.steps, c.b)
		if err := w.Verify(); err != nil {
			t.Errorf("%dx%d steps=%d b=%d: %v", c.nx, c.ny, c.steps, c.b, err)
		}
	}
}

func TestHeatUniformGridIsFixedPoint(t *testing.T) {
	w := NewHeat(8, 8, 4, 2)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	for i := range w.cur {
		w.cur[i] = 0.5
	}
	w.reference = simulateHeat(w.cur, 8, 8, 4)
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	for i, v := range w.cur {
		if !approxEqual(v, 0.5) {
			t.Fatalf("uniform grid drifted at %d: %g", i, v)
		}
	}
}

func TestHeatDiffusionIsSymmetric(t *testing.T) {
	w := NewHeat(9, 9, 3, 2)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	for i := range w.cur {
		w.cur[i] = 0
	}
	w.cur[4*9+4] = 1 // hot center
	w.reference = simulateHeat(w.cur, 9, 9, 3)
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	// The grid must stay symmetric under reflection through the center.
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			a, b := w.cur[i*9+j], w.cur[(8-i)*9+(8-j)]
			if !approxEqual(a, b) {
				t.Fatalf("asymmetric diffusion at (%d,%d): %g vs %g", i, j, a, b)
			}
		}
	}
	if w.cur[4*9+4] >= 1 {
		t.Fatal("heat did not diffuse away from the center")
	}
}

func TestHeatBoundaryHeld(t *testing.T) {
	w := runHeatKernel(t, 8, 8, 5, 2)
	// Boundary cells never change from the initial grid.
	init := make([]float64, 64)
	rng := newRNG(99)
	for i := range init {
		init[i] = rng.float()
	}
	for j := 0; j < 8; j++ {
		if w.cur[j] != init[j] || w.cur[7*8+j] != init[7*8+j] {
			t.Fatal("top/bottom boundary modified")
		}
	}
	for i := 0; i < 8; i++ {
		if w.cur[i*8] != init[i*8] || w.cur[i*8+7] != init[i*8+7] {
			t.Fatal("left/right boundary modified")
		}
	}
}

func runCholKernel(t *testing.T, n, b int) *Chol {
	t.Helper()
	w := NewChol(n, b)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCholShapes(t *testing.T) {
	for _, c := range []struct{ n, b int }{
		{1, 1}, {2, 1}, {5, 2}, {16, 16}, {17, 4}, {33, 8},
	} {
		w := runCholKernel(t, c.n, c.b)
		if err := w.Verify(); err != nil {
			t.Errorf("n=%d b=%d: %v", c.n, c.b, err)
		}
	}
}

func TestCholKnownFactorization(t *testing.T) {
	// A = [[4, 2], [2, 5]] factors to L = [[2, 0], [1, 2]].
	w := NewChol(2, 2)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	copy(w.a, []float64{4, 2, 2, 5})
	copy(w.orig, w.a)
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, 2}
	for _, idx := range []int{0, 2, 3} { // lower triangle
		if !approxEqual(w.a[idx], want[idx]) {
			t.Fatalf("L[%d] = %g, want %g", idx, w.a[idx], want[idx])
		}
	}
}

func TestCholDiagonalIsPositive(t *testing.T) {
	w := runCholKernel(t, 24, 4)
	for i := 0; i < 24; i++ {
		d := w.a[i*24+i]
		if d <= 0 || math.IsNaN(d) {
			t.Fatalf("L[%d,%d] = %g, want positive", i, i, d)
		}
	}
}

func TestCholFullReconstructionSmall(t *testing.T) {
	w := runCholKernel(t, 12, 3)
	for i := 0; i < 12; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += w.a[i*12+k] * w.a[j*12+k]
			}
			if !approxEqual(s, w.orig[i*12+j]) {
				t.Fatalf("(L·Lᵀ)[%d,%d] = %g, want %g", i, j, s, w.orig[i*12+j])
			}
		}
	}
}
