package workloads

import (
	"fmt"

	"stint"
)

// Heat is a Jacobi heat-diffusion simulation on an nx×ny grid for a fixed
// number of timesteps, with the row range divided recursively and the
// leaves computed in parallel (the Cilk-5 heat benchmark's structure).
//
// Each base case reads three contiguous rows per output row — coalesced
// load hooks — while the stencil's output stores are emitted per element
// (the paper's Figure 6 shows heat's reads coalescing by two orders of
// magnitude at compile time while its writes do not coalesce at all).
type Heat struct {
	nx, ny, steps, b int

	cur, next []float64
	bufCur    *stint.Buffer
	bufNext   *stint.Buffer
	reference []float64
}

// NewHeat returns an nx×ny grid simulation running the given number of
// steps with base-case size b rows.
func NewHeat(nx, ny, steps, b int) *Heat {
	if nx < 3 || ny < 3 || steps < 1 || b < 1 {
		panic("workloads: heat needs nx,ny >= 3, steps >= 1, b >= 1")
	}
	return &Heat{nx: nx, ny: ny, steps: steps, b: b}
}

func (w *Heat) Name() string { return "heat" }
func (w *Heat) Params() string {
	return fmt.Sprintf("nx=%d ny=%d steps=%d b=%d", w.nx, w.ny, w.steps, w.b)
}

func (w *Heat) Setup(r *stint.Runner) {
	n := w.nx * w.ny
	w.cur = make([]float64, n)
	w.next = make([]float64, n)
	rng := newRNG(99)
	for i := range w.cur {
		w.cur[i] = rng.float()
	}
	// Reference result computed uninstrumented for Verify.
	w.reference = simulateHeat(w.cur, w.nx, w.ny, w.steps)
	w.bufCur = r.Arena().AllocFloat64("heat.a", n)
	w.bufNext = r.Arena().AllocFloat64("heat.b", n)
}

// simulateHeat runs the stencil serially on a copy and returns the final
// grid.
func simulateHeat(init []float64, nx, ny, steps int) []float64 {
	cur := append([]float64(nil), init...)
	next := make([]float64, len(init))
	for s := 0; s < steps; s++ {
		copy(next, cur) // boundary rows/cols carry over
		for i := 1; i < nx-1; i++ {
			for j := 1; j < ny-1; j++ {
				next[i*ny+j] = cur[i*ny+j] + 0.1*(cur[(i-1)*ny+j]+cur[(i+1)*ny+j]+cur[i*ny+j-1]+cur[i*ny+j+1]-4*cur[i*ny+j])
			}
		}
		cur, next = next, cur
	}
	return cur
}

func (w *Heat) Run(t *stint.Task) {
	cur, next := w.cur, w.next
	bufCur, bufNext := w.bufCur, w.bufNext
	for s := 0; s < w.steps; s++ {
		w.copyBoundary(t, cur, bufCur, next, bufNext)
		w.rec(t, cur, bufCur, next, bufNext, 1, w.nx-1)
		t.Sync()
		cur, next = next, cur
		bufCur, bufNext = bufNext, bufCur
	}
	if &cur[0] != &w.cur[0] {
		// Ensure the result ends in w.cur for Verify.
		w.cur, w.next = cur, next
		w.bufCur, w.bufNext = bufCur, bufNext
	}
}

// copyBoundary carries the fixed boundary into the next grid.
func (w *Heat) copyBoundary(t *stint.Task, cur []float64, bufCur *stint.Buffer, next []float64, bufNext *stint.Buffer) {
	nx, ny := w.nx, w.ny
	det := t.Detecting()
	if det {
		t.LoadRange(bufCur, 0, ny)
		t.StoreRange(bufNext, 0, ny)
		t.LoadRange(bufCur, (nx-1)*ny, ny)
		t.StoreRange(bufNext, (nx-1)*ny, ny)
	}
	copy(next[:ny], cur[:ny])
	copy(next[(nx-1)*ny:], cur[(nx-1)*ny:])
	for i := 1; i < nx-1; i++ {
		if det {
			t.Load(bufCur, i*ny)
			t.Store(bufNext, i*ny)
			t.Load(bufCur, i*ny+ny-1)
			t.Store(bufNext, i*ny+ny-1)
		}
		next[i*ny] = cur[i*ny]
		next[i*ny+ny-1] = cur[i*ny+ny-1]
	}
}

// rec divides the interior rows [lo, hi) until the block is small enough,
// spawning the halves.
func (w *Heat) rec(t *stint.Task, cur []float64, bufCur *stint.Buffer, next []float64, bufNext *stint.Buffer, lo, hi int) {
	if hi-lo <= w.b {
		w.base(t, cur, bufCur, next, bufNext, lo, hi)
		return
	}
	mid := (lo + hi) / 2
	t.Spawn(func(c *stint.Task) { w.rec(c, cur, bufCur, next, bufNext, lo, mid) })
	t.Spawn(func(c *stint.Task) { w.rec(c, cur, bufCur, next, bufNext, mid, hi) })
	t.Sync()
}

// base computes the stencil for rows [lo, hi): coalesced loads of the three
// input rows per output row, per-element output stores.
func (w *Heat) base(t *stint.Task, cur []float64, bufCur *stint.Buffer, next []float64, bufNext *stint.Buffer, lo, hi int) {
	ny := w.ny
	det := t.Detecting()
	for i := lo; i < hi; i++ {
		if det {
			t.LoadRange(bufCur, (i-1)*ny, 3*ny) // rows i-1, i, i+1 are contiguous
		}
		for j := 1; j < ny-1; j++ {
			if det {
				t.Store(bufNext, i*ny+j)
			}
			next[i*ny+j] = cur[i*ny+j] + 0.1*(cur[(i-1)*ny+j]+cur[(i+1)*ny+j]+cur[i*ny+j-1]+cur[i*ny+j+1]-4*cur[i*ny+j])
		}
	}
}

func (w *Heat) Verify() error {
	for i := range w.reference {
		if !approxEqual(w.cur[i], w.reference[i]) {
			return fmt.Errorf("heat: cell %d = %g, want %g", i, w.cur[i], w.reference[i])
		}
	}
	return nil
}
