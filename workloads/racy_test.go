package workloads

import (
	"strings"
	"testing"

	"stint"
)

func TestRacyKernelsAreCaughtByEveryDetector(t *testing.T) {
	detectors := []stint.Detector{
		stint.DetectorVanilla, stint.DetectorCompiler,
		stint.DetectorCompRTS, stint.DetectorSTINT,
	}
	for name, rc := range RacyFactories() {
		name, rc := name, rc
		t.Run(name, func(t *testing.T) {
			for _, d := range detectors {
				w := rc.Factory()
				r, err := stint.NewRunner(stint.Options{Detector: d})
				if err != nil {
					t.Fatal(err)
				}
				w.Setup(r)
				rep, err := r.Run(w.Run)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Racy() {
					t.Errorf("%v missed the %s bug", d, name)
					continue
				}
				// The race must land on the expected buffer.
				desc := r.DescribeRace(rep.Races[0])
				if !strings.Contains(desc, rc.Buffer) {
					t.Errorf("%v: race %q not on expected buffer %q", d, desc, rc.Buffer)
				}
			}
		})
	}
}

func TestRacyKernelsPassSerialVerification(t *testing.T) {
	// The point of determinacy races: the serial execution is correct, so
	// ordinary testing does not catch the bug.
	for name, rc := range RacyFactories() {
		w := rc.Factory()
		r, _ := stint.NewRunner(stint.Options{})
		w.Setup(r)
		if _, err := r.Run(w.Run); err != nil {
			t.Fatal(err)
		}
		if err := w.Verify(); err != nil {
			t.Errorf("%s: serial run failed verification (%v); the bug should be a race, not a serial error", name, err)
		}
	}
}

func TestRacyNamesDistinct(t *testing.T) {
	for name, rc := range RacyFactories() {
		if w := rc.Factory(); w.Name() != name {
			t.Errorf("factory %q builds %q", name, w.Name())
		}
	}
}
