package workloads

import (
	"fmt"
	"math"

	"stint"
)

// Chol is a dense blocked Cholesky factorization A = L·Lᵀ on a symmetric
// positive-definite n×n matrix, computed in place on the lower triangle by
// recursive divide-and-conquer:
//
//	chol(A11); then rows of the triangular solve A21 ← A21·L11⁻ᵀ in
//	parallel; then rows of the symmetric update A22 ← A22 − A21·A21ᵀ in
//	parallel; then chol(A22).
//
// (The Cilk-5 distribution's chol is a sparse quadtree Cholesky; the dense
// divide-and-conquer version preserves the property the paper exploits —
// strands reading and writing contiguous row segments — without needing the
// sparse input files. See DESIGN.md.)
//
// Instrumentation: row-segment operands get coalesced load hooks; element
// stores within the triangular structure are per-access.
type Chol struct {
	n, b int
	a    []float64
	orig []float64
	buf  *stint.Buffer
}

// NewChol returns an n×n factorization with base-case size b.
func NewChol(n, b int) *Chol {
	if n <= 0 || b <= 0 {
		panic("workloads: chol sizes must be positive")
	}
	return &Chol{n: n, b: b}
}

func (w *Chol) Name() string   { return "chol" }
func (w *Chol) Params() string { return fmt.Sprintf("n=%d b=%d", w.n, w.b) }

func (w *Chol) Setup(r *stint.Runner) {
	n := w.n
	w.a = make([]float64, n*n)
	rng := newRNG(3)
	// Build SPD: A = M·Mᵀ + n·I over a random M.
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.float() - 0.5
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m[i*n+k] * m[j*n+k]
			}
			if i == j {
				s += float64(n)
			}
			w.a[i*n+j] = s
			w.a[j*n+i] = s
		}
	}
	w.orig = append([]float64(nil), w.a...)
	w.buf = r.Arena().AllocFloat64("chol.A", n*n)
}

func (w *Chol) Run(t *stint.Task) {
	w.chol(t, 0, w.n)
}

// chol factors the s×s diagonal block at (off, off).
func (w *Chol) chol(t *stint.Task, off, s int) {
	if s <= w.b {
		w.base(t, off, s)
		return
	}
	h := s / 2
	w.chol(t, off, h)
	// A21 ← A21 · L11⁻ᵀ, parallel over row blocks.
	w.trsmRows(t, off, h, off+h, off+s)
	t.Sync()
	// A22 ← A22 − A21·A21ᵀ, parallel over row blocks.
	w.syrkRows(t, off, h, off+h, off+s)
	t.Sync()
	w.chol(t, off+h, s-h)
}

// trsmRows solves rows [rLo, rHi) of the panel below the factored h×h
// block at (off, off), recursively splitting the row range.
func (w *Chol) trsmRows(t *stint.Task, off, h, rLo, rHi int) {
	if rHi-rLo <= w.b {
		w.trsmBase(t, off, h, rLo, rHi)
		return
	}
	mid := (rLo + rHi) / 2
	t.Spawn(func(c *stint.Task) { w.trsmRows(c, off, h, rLo, mid) })
	w.trsmRows(t, off, h, mid, rHi)
}

func (w *Chol) trsmBase(t *stint.Task, off, h, rLo, rHi int) {
	n := w.n
	det := t.Detecting()
	for i := rLo; i < rHi; i++ {
		if det {
			t.LoadRange(w.buf, i*n+off, h)
			t.StoreRange(w.buf, i*n+off, h)
		}
		for j := 0; j < h; j++ {
			if det {
				t.LoadRange(w.buf, (off+j)*n+off, j+1)
			}
			s := w.a[i*n+off+j]
			for k := 0; k < j; k++ {
				s -= w.a[i*n+off+k] * w.a[(off+j)*n+off+k]
			}
			w.a[i*n+off+j] = s / w.a[(off+j)*n+off+j]
		}
	}
}

// syrkRows updates rows [rLo, rHi) of the trailing block with the outer
// product of the solved panel, recursively splitting the row range.
func (w *Chol) syrkRows(t *stint.Task, off, h, rLo, rHi int) {
	if rHi-rLo <= w.b {
		w.syrkBase(t, off, h, rLo, rHi)
		return
	}
	mid := (rLo + rHi) / 2
	t.Spawn(func(c *stint.Task) { w.syrkRows(c, off, h, rLo, mid) })
	w.syrkRows(t, off, h, mid, rHi)
}

func (w *Chol) syrkBase(t *stint.Task, off, h, rLo, rHi int) {
	n := w.n
	tail := off + h // first row/col of A22
	det := t.Detecting()
	for i := rLo; i < rHi; i++ {
		if det {
			t.LoadRange(w.buf, i*n+off, h)          // row i of A21
			t.LoadRange(w.buf, i*n+tail, i-tail+1)  // row i of A22 (lower part)
			t.StoreRange(w.buf, i*n+tail, i-tail+1) // updated in place
		}
		for j := tail; j <= i; j++ {
			if det {
				t.LoadRange(w.buf, j*n+off, h) // row j of A21
			}
			var s float64
			for k := 0; k < h; k++ {
				s += w.a[i*n+off+k] * w.a[j*n+off+k]
			}
			w.a[i*n+j] -= s
		}
	}
}

// base is the serial Cholesky of an s×s block.
func (w *Chol) base(t *stint.Task, off, s int) {
	n := w.n
	det := t.Detecting()
	for j := 0; j < s; j++ {
		row := off + j
		if det {
			t.LoadRange(w.buf, row*n+off, j+1)
		}
		d := w.a[row*n+off+j]
		for k := 0; k < j; k++ {
			d -= w.a[row*n+off+k] * w.a[row*n+off+k]
		}
		d = math.Sqrt(d)
		if det {
			t.Store(w.buf, row*n+off+j)
		}
		w.a[row*n+off+j] = d
		for i := j + 1; i < s; i++ {
			ri := off + i
			if det {
				t.LoadRange(w.buf, ri*n+off, j+1)
				t.Store(w.buf, ri*n+off+j)
			}
			v := w.a[ri*n+off+j]
			for k := 0; k < j; k++ {
				v -= w.a[ri*n+off+k] * w.a[row*n+off+k]
			}
			w.a[ri*n+off+j] = v / d
		}
	}
}

func (w *Chol) Verify() error {
	n := w.n
	// Check L·Lᵀ == original A on sampled entries of the lower triangle.
	stride := 1
	if n > 128 {
		stride = n / 32
	}
	for i := 0; i < n; i += stride {
		for j := 0; j <= i; j += stride {
			var s float64
			for k := 0; k <= j; k++ {
				s += w.a[i*n+k] * w.a[j*n+k]
			}
			if !approxEqual(s, w.orig[i*n+j]) {
				return fmt.Errorf("chol: (L·Lᵀ)[%d,%d] = %g, want %g", i, j, s, w.orig[i*n+j])
			}
		}
	}
	return nil
}
