package workloads

import (
	"math"
	"math/cmplx"
	"testing"

	"stint"
)

// directDFT is the O(n²) reference transform.
func directDFT(in []complex128) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += in[j] * cmplx.Exp(complex(0, ang))
		}
	}
	return out
}

// runFFT executes an instance and returns it.
func runFFT(t *testing.T, n, b int, d stint.Detector) *FFT {
	t.Helper()
	w := NewFFT(n, b)
	r, _ := stint.NewRunner(stint.Options{Detector: d})
	w.Setup(r)
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFFTMatchesDirectDFTExhaustively(t *testing.T) {
	// Small sizes: compare every output bin, not just the sampled ones.
	for _, c := range []struct{ n, b int }{
		{4, 2}, {8, 2}, {8, 8}, {16, 4}, {64, 8}, {128, 32}, {256, 256},
	} {
		w := runFFT(t, c.n, c.b, stint.DetectorOff)
		want := directDFT(w.orig)
		for k := range want {
			if !fftClose(w.data[k], want[k], float64(c.n)) {
				t.Errorf("n=%d b=%d: bin %d = %v, want %v", c.n, c.b, k, w.data[k], want[k])
			}
		}
	}
}

func TestFFTImpulseGivesFlatSpectrum(t *testing.T) {
	w := NewFFT(64, 8)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	for i := range w.data {
		w.data[i] = 0
	}
	w.data[0] = 1
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	for k, v := range w.data {
		if !fftClose(v, 1, 64) {
			t.Fatalf("impulse spectrum bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTConstantGivesImpulse(t *testing.T) {
	w := NewFFT(32, 4)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	for i := range w.data {
		w.data[i] = 1
	}
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	if !fftClose(w.data[0], complex(32, 0), 32) {
		t.Fatalf("DC bin = %v, want 32", w.data[0])
	}
	for k := 1; k < 32; k++ {
		if !fftClose(w.data[k], 0, 32) {
			t.Fatalf("bin %d = %v, want 0", k, w.data[k])
		}
	}
}

func TestFFTTwiddleTable(t *testing.T) {
	w := NewFFT(16, 4)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	for k := 0; k < 8; k++ {
		want := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/16))
		if !fftClose(w.tw[k], want, 1) {
			t.Errorf("tw[%d] = %v, want %v", k, w.tw[k], want)
		}
	}
}

func TestFFTSmallIntervalProfile(t *testing.T) {
	// The shuffle's strided reads must dominate interval counts with small
	// intervals — the characteristic that makes fft the treap's worst case.
	w := NewFFT(2048, 64)
	r, _ := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	w.Setup(r)
	rep, err := r.Run(w.Run)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Racy() {
		t.Fatal("fft raced")
	}
	avgRead := float64(rep.Stats.ReadIntervalBytes) / float64(rep.Stats.ReadIntervals)
	if avgRead > 64 {
		t.Errorf("average read interval %.1f bytes; fft should fragment (paper: ~29B)", avgRead)
	}
	if rep.Stats.ReadIntervals < uint64(w.n) {
		t.Errorf("read intervals %d; expected at least n=%d one-element shuffle intervals",
			rep.Stats.ReadIntervals, w.n)
	}
}

func TestFFTRejectsBadSizes(t *testing.T) {
	for _, c := range []struct{ n, b int }{
		{0, 2}, {3, 2}, {8, 3}, {4, 8}, {8, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFFT(%d,%d) accepted invalid sizes", c.n, c.b)
				}
			}()
			NewFFT(c.n, c.b)
		}()
	}
}

func TestFFTVerifyCatchesCorruption(t *testing.T) {
	w := runFFT(t, 256, 16, stint.DetectorOff)
	w.data[w.checks[0]] += complex(1, 0)
	if w.Verify() == nil {
		t.Error("Verify accepted a corrupted bin")
	}
}
