package workloads

import (
	"math/rand"
	"sort"
	"testing"

	"stint"
)

// runSortKernel executes one Sort instance detection-off and returns it.
func runSortKernel(t *testing.T, n, b int) *Sort {
	t.Helper()
	w := NewSort(n, b)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSortSizesAndBases(t *testing.T) {
	for _, c := range []struct{ n, b int }{
		{2, 2}, {3, 2}, {10, 4}, {100, 8}, {1000, 16}, {4097, 64}, {10000, 2048},
	} {
		w := runSortKernel(t, c.n, c.b)
		if err := w.Verify(); err != nil {
			t.Errorf("n=%d b=%d: %v", c.n, c.b, err)
		}
	}
}

func TestInsertionSortUnit(t *testing.T) {
	patterns := [][]int32{
		{5, 4, 3, 2, 1},
		{1, 2, 3, 4, 5},
		{2, 2, 2, 2},
		{1},
		{3, 1, 3, 1, 3, 1},
		{-5, 10, -5, 0, 7},
	}
	for _, p := range patterns {
		w := &Sort{n: len(p), b: 64}
		r, _ := stint.NewRunner(stint.Options{})
		w.data = append([]int32(nil), p...)
		w.tmp = make([]int32, len(p))
		w.bufData = r.Arena().AllocWords("d", len(p))
		w.bufTmp = r.Arena().AllocWords("t", len(p))
		if _, err := r.Run(func(task *stint.Task) {
			w.insertionSort(task, 0, len(p)-1)
		}); err != nil {
			t.Fatal(err)
		}
		if !isSorted(w.data) {
			t.Errorf("insertionSort(%v) = %v", p, w.data)
		}
	}
}

func TestCilkmergeUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n1 := rng.Intn(300) + 1
		n2 := rng.Intn(300) + 1
		src := make([]int32, n1+n2)
		for i := range src {
			src[i] = int32(rng.Intn(100))
		}
		sort.Slice(src[:n1], func(i, j int) bool { return src[i] < src[j] })
		sort.Slice(src[n1:], func(i, j int) bool { return src[n1+i] < src[n1+j] })
		want := append([]int32(nil), src...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		w := &Sort{n: n1 + n2, b: 16}
		r, _ := stint.NewRunner(stint.Options{})
		w.data = src
		w.tmp = make([]int32, n1+n2)
		w.bufData = r.Arena().AllocWords("d", n1+n2)
		w.bufTmp = r.Arena().AllocWords("t", n1+n2)
		if _, err := r.Run(func(task *stint.Task) {
			w.cilkmerge(task, w.data, w.bufData, 0, n1, n1, n1+n2, w.tmp, w.bufTmp, 0)
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if w.tmp[i] != want[i] {
				t.Fatalf("trial %d: merge[%d] = %d, want %d", trial, i, w.tmp[i], want[i])
			}
		}
	}
}

func TestLowerBoundUnit(t *testing.T) {
	w := &Sort{}
	r, _ := stint.NewRunner(stint.Options{})
	data := []int32{1, 3, 3, 5, 9}
	buf := r.Arena().AllocWords("d", len(data))
	if _, err := r.Run(func(task *stint.Task) {
		cases := []struct {
			v    int32
			want int
		}{
			{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 3}, {9, 4}, {10, 5},
		}
		for _, c := range cases {
			if got := w.lowerBound(task, data, buf, 0, len(data), c.v); got != c.want {
				t.Errorf("lowerBound(%d) = %d, want %d", c.v, got, c.want)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSortMergeBaseKeepsIntervalsLarge(t *testing.T) {
	// The paper's sort story needs large intervals; guard the average.
	w := NewSort(20000, 512)
	r, _ := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	w.Setup(r)
	rep, err := r.Run(w.Run)
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(rep.Stats.ReadIntervalBytes+rep.Stats.WriteIntervalBytes) /
		float64(rep.Stats.ReadIntervals+rep.Stats.WriteIntervals)
	if avg < 64 {
		t.Errorf("average interval %f bytes; sort should produce large intervals", avg)
	}
}

func TestSortChecksumDetectsLoss(t *testing.T) {
	w := runSortKernel(t, 500, 16)
	w.data[100] = w.data[100] + 1
	if w.Verify() == nil {
		t.Error("Verify missed a corrupted element")
	}
}
