package workloads

import (
	"testing"

	"stint"
)

func TestMortonIndexIsBijective(t *testing.T) {
	w := NewStrassen(64, 8, true)
	seen := make(map[int]bool, 64*64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			p := w.physIdx(i, j)
			if p < 0 || p >= 64*64 {
				t.Fatalf("physIdx(%d,%d) = %d out of range", i, j, p)
			}
			if seen[p] {
				t.Fatalf("physIdx(%d,%d) = %d collides", i, j, p)
			}
			seen[p] = true
		}
	}
}

func TestMortonQuadrantsAreContiguous(t *testing.T) {
	// Every element of the top-left quadrant must map below q², etc.
	w := NewStrassen(32, 8, true)
	q := 16
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			if p := w.physIdx(i, j); p >= q*q {
				t.Fatalf("A11 element (%d,%d) at %d, outside [0,%d)", i, j, p, q*q)
			}
			if p := w.physIdx(i, j+q); p < q*q || p >= 2*q*q {
				t.Fatalf("A12 element out of its block: %d", p)
			}
			if p := w.physIdx(i+q, j); p < 2*q*q || p >= 3*q*q {
				t.Fatalf("A21 element out of its block: %d", p)
			}
			if p := w.physIdx(i+q, j+q); p < 3*q*q {
				t.Fatalf("A22 element out of its block: %d", p)
			}
		}
	}
}

func TestMortonTilesAreRowMajor(t *testing.T) {
	w := NewStrassen(32, 8, true)
	// Within one tile, consecutive columns are adjacent.
	base := w.physIdx(0, 0)
	for j := 1; j < 8; j++ {
		if w.physIdx(0, j) != base+j {
			t.Fatalf("tile row not contiguous at column %d", j)
		}
	}
	if w.physIdx(1, 0) != base+8 {
		t.Fatal("tile rows not stride-b apart")
	}
}

func TestRowMajorIndexIsIdentityLayout(t *testing.T) {
	w := NewStrassen(16, 4, false)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if w.physIdx(i, j) != i*16+j {
				t.Fatalf("row-major physIdx(%d,%d) = %d", i, j, w.physIdx(i, j))
			}
		}
	}
}

func TestScratchRecurrence(t *testing.T) {
	w := NewStrassen(64, 16, false)
	if got := w.need(16); got != 0 {
		t.Errorf("need(base) = %d, want 0", got)
	}
	if got, want := w.need(32), 17*16*16; got != want {
		t.Errorf("need(32) = %d, want %d", got, want)
	}
	if got, want := w.need(64), 17*32*32+7*17*16*16; got != want {
		t.Errorf("need(64) = %d, want %d", got, want)
	}
}

func TestStrassenMatchesDirectProduct(t *testing.T) {
	for _, morton := range []bool{false, true} {
		for _, c := range []struct{ n, b int }{
			{8, 8},   // single base case
			{16, 8},  // one recursion level
			{64, 16}, // two levels
		} {
			w := NewStrassen(c.n, c.b, morton)
			r, _ := stint.NewRunner(stint.Options{})
			w.Setup(r)
			if _, err := r.Run(w.Run); err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(); err != nil {
				t.Errorf("morton=%v n=%d b=%d: %v", morton, c.n, c.b, err)
			}
		}
	}
}

func TestStrassenVariantsAgreeElementwise(t *testing.T) {
	// stra and straz share data seeds, so their logical results must match.
	build := func(morton bool) *Strassen {
		w := NewStrassen(32, 8, morton)
		r, _ := stint.NewRunner(stint.Options{})
		w.Setup(r)
		if _, err := r.Run(w.Run); err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := build(false), build(true)
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			va := a.c[a.physIdx(i, j)]
			vb := b.c[b.physIdx(i, j)]
			if !approxEqual(va, vb) {
				t.Fatalf("layouts disagree at (%d,%d): %g vs %g", i, j, va, vb)
			}
		}
	}
}

func TestStrassenIntervalCountsByLayout(t *testing.T) {
	run := func(morton bool) *stint.Report {
		w := NewStrassen(64, 16, morton)
		r, _ := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
		w.Setup(r)
		rep, err := r.Run(w.Run)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Racy() {
			t.Fatal("strassen raced")
		}
		return rep
	}
	rm, mz := run(false), run(true)
	rmIvs := rm.Stats.ReadIntervals + rm.Stats.WriteIntervals
	mzIvs := mz.Stats.ReadIntervals + mz.Stats.WriteIntervals
	if mzIvs >= rmIvs {
		t.Errorf("Morton layout should produce fewer intervals: straz %d >= stra %d", mzIvs, rmIvs)
	}
}

func TestStrassenRejectsBadSizes(t *testing.T) {
	for _, c := range []struct{ n, b int }{{0, 2}, {12, 4}, {16, 3}, {8, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStrassen(%d,%d) accepted invalid sizes", c.n, c.b)
				}
			}()
			NewStrassen(c.n, c.b, false)
		}()
	}
}
