package workloads

import (
	"fmt"

	"stint"
)

// This file provides deliberately buggy variants of the benchmarks. They
// exist for testing and demonstration: each exhibits one classic
// task-parallel bug, carries a real race on a known buffer, and still
// computes (possibly wrong) results deterministically under serial
// execution — exactly the situation in which a determinacy-race detector
// earns its keep, since the serial test run would pass.

// RacyMMul is matrix multiplication with the classic inner-dimension
// mistake: both halves of a k-split are spawned, so two parallel tasks
// accumulate into the same C block.
type RacyMMul struct {
	*MMul
}

// NewRacyMMul returns the buggy multiplication.
func NewRacyMMul(n, b int) *RacyMMul { return &RacyMMul{NewMMul(n, b)} }

func (w *RacyMMul) Name() string { return "mmul-racy" }

func (w *RacyMMul) Run(t *stint.Task) {
	w.racyRec(t, 0, 0, 0, 0, 0, 0, w.n, w.n, w.n)
}

func (w *RacyMMul) racyRec(t *stint.Task, ar, ac, br, bc, cr, cc, m, n, p int) {
	if m <= w.b && n <= w.b && p <= w.b {
		w.base(t, ar, ac, br, bc, cr, cc, m, n, p)
		return
	}
	switch {
	case m >= n && m >= p:
		h := m / 2
		t.Spawn(func(c *stint.Task) { w.racyRec(c, ar, ac, br, bc, cr, cc, h, n, p) })
		t.Spawn(func(c *stint.Task) { w.racyRec(c, ar+h, ac, br, bc, cr+h, cc, m-h, n, p) })
		t.Sync()
	case p >= n:
		h := p / 2
		t.Spawn(func(c *stint.Task) { w.racyRec(c, ar, ac, br, bc, cr, cc, m, n, h) })
		t.Spawn(func(c *stint.Task) { w.racyRec(c, ar, ac, br, bc+h, cr, cc+h, m, n, p-h) })
		t.Sync()
	default:
		h := n / 2
		// BUG: the inner-dimension halves both accumulate into C and must
		// run serially; spawning them races on every element of the block.
		t.Spawn(func(c *stint.Task) { w.racyRec(c, ar, ac, br, bc, cr, cc, m, h, p) })
		t.Spawn(func(c *stint.Task) { w.racyRec(c, ar, ac+h, br+h, bc, cr, cc, m, n-h, p) })
		t.Sync()
	}
}

// Verify intentionally succeeds under serial execution: the bug is a race,
// not a serial-semantics error — which is why it slips through ordinary
// tests.
func (w *RacyMMul) Verify() error { return w.MMul.Verify() }

// RacyHeat forgets the barrier between timesteps: the next step's stencil
// is spawned while the previous step's writers are still outstanding.
type RacyHeat struct {
	*Heat
}

// NewRacyHeat returns the buggy simulation.
func NewRacyHeat(nx, ny, steps, b int) *RacyHeat { return &RacyHeat{NewHeat(nx, ny, steps, b)} }

func (w *RacyHeat) Name() string { return "heat-racy" }

func (w *RacyHeat) Run(t *stint.Task) {
	cur, next := w.cur, w.next
	bufCur, bufNext := w.bufCur, w.bufNext
	for s := 0; s < w.steps; s++ {
		w.copyBoundary(t, cur, bufCur, next, bufNext)
		// BUG: spawning the whole step without joining it before the swap.
		// Step s+1 reads rows step s is still writing.
		curS, nextS, bufCurS, bufNextS := cur, next, bufCur, bufNext
		t.Spawn(func(c *stint.Task) { w.rec(c, curS, bufCurS, nextS, bufNextS, 1, w.nx-1) })
		cur, next = next, cur
		bufCur, bufNext = bufNext, bufCur
	}
	t.Sync()
	if w.steps%2 == 1 {
		w.cur, w.next = cur, next
		w.bufCur, w.bufNext = bufCur, bufNext
	}
}

// Verify only checks that the serial execution matched the reference; the
// serial projection of the racy program happens to compute the right
// answer, which is the insidious part.
func (w *RacyHeat) Verify() error { return w.Heat.Verify() }

// RacySort forgets the sync between sorting and merging: the merge is
// logically parallel with both spawned sorts. The serial execution still
// happens to run the children first and produces a perfectly sorted array —
// the bug only exists in the parallel semantics.
type RacySort struct {
	*Sort
}

// NewRacySort returns the buggy sort.
func NewRacySort(n, b int) *RacySort { return &RacySort{NewSort(n, b)} }

func (w *RacySort) Name() string { return "sort-racy" }

func (w *RacySort) Run(t *stint.Task) {
	if w.n < 8 {
		w.insertionSort(t, 0, w.n-1)
		return
	}
	half := w.n / 2
	t.Spawn(func(c *stint.Task) { w.cilksort(c, 0, half) })
	t.Spawn(func(c *stint.Task) { w.cilksort(c, half, w.n-half) })
	// BUG: no t.Sync() here — the merge races with both sorts.
	w.cilkmerge(t, w.data, w.bufData, 0, half, half, w.n, w.tmp, w.bufTmp, 0)
	t.Sync()
	if t.Detecting() {
		t.LoadRange(w.bufTmp, 0, w.n)
		t.StoreRange(w.bufData, 0, w.n)
	}
	copy(w.data, w.tmp)
}

// Verify confirms the serially computed result is correct — the insidious
// property of a determinacy race.
func (w *RacySort) Verify() error {
	if !isSorted(w.data) {
		return fmt.Errorf("sort-racy: output not sorted")
	}
	return nil
}

// RacyFactories returns the buggy kernels at test-friendly sizes, keyed by
// name, together with the buffer each bug races on.
func RacyFactories() map[string]struct {
	Factory Factory
	Buffer  string
} {
	return map[string]struct {
		Factory Factory
		Buffer  string
	}{
		"mmul-racy": {func() Workload { return NewRacyMMul(32, 8) }, "mmul.C"},
		"heat-racy": {func() Workload { return NewRacyHeat(16, 16, 4, 4) }, "heat."},
		"sort-racy": {func() Workload { return NewRacySort(2000, 64) }, "sort."},
	}
}
