package workloads

import (
	"fmt"
	"math"

	"stint"
)

// FFT is a recursive radix-2 decimation-in-time fast Fourier transform on
// n complex points (n a power of two). Each level shuffles even- and odd-
// indexed elements into a scratch half, recurses on the two halves in
// parallel, and combines with twiddle factors.
//
// The shuffle reads every other complex element — a strided pattern the
// compiler cannot coalesce (per-access hooks), and one whose runtime-
// coalesced intervals stay small (one complex element each). This is what
// gives fft the paper's characteristic profile: a modest reduction in
// interval count, small average interval size, and consequently the one
// benchmark where STINT's treap loses to the comp+rts hashmap.
type FFT struct {
	n, b   int
	data   []complex128
	scr    []complex128
	orig   []complex128
	tw     []complex128 // tw[k] = exp(-2πik/n), k < n/2
	bufD   *stint.Buffer
	bufS   *stint.Buffer
	checks []int // output bins verified against the direct DFT
}

// NewFFT returns an n-point transform with base-case size b; both must be
// powers of two with n >= b >= 2.
func NewFFT(n, b int) *FFT {
	if n < 2 || n&(n-1) != 0 || b < 2 || b&(b-1) != 0 || b > n {
		panic("workloads: fft needs power-of-two n >= b >= 2")
	}
	return &FFT{n: n, b: b}
}

func (w *FFT) Name() string   { return "fft" }
func (w *FFT) Params() string { return fmt.Sprintf("n=%d b=%d", w.n, w.b) }

// complexBytes is the footprint of one complex128 element.
const complexBytes = 16

func (w *FFT) Setup(r *stint.Runner) {
	w.data = make([]complex128, w.n)
	w.scr = make([]complex128, w.n)
	w.orig = make([]complex128, w.n)
	rng := newRNG(13)
	for i := range w.data {
		w.data[i] = complex(rng.float()-0.5, rng.float()-0.5)
		w.orig[i] = w.data[i]
	}
	w.tw = make([]complex128, w.n/2)
	for k := range w.tw {
		ang := -2 * math.Pi * float64(k) / float64(w.n)
		w.tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	w.bufD = r.Arena().Alloc("fft.data", w.n, complexBytes)
	w.bufS = r.Arena().Alloc("fft.scratch", w.n, complexBytes)
	w.checks = nil
	for i := 0; i < 8; i++ {
		w.checks = append(w.checks, rng.intn(w.n))
	}
}

func (w *FFT) Run(t *stint.Task) {
	w.rec(t, w.data, w.bufD, 0, w.scr, w.bufS, 0, w.n)
}

// rec transforms x[off:off+n) in place, using scr[soff:soff+n) as scratch.
func (w *FFT) rec(t *stint.Task, x []complex128, xb *stint.Buffer, off int, scr []complex128, sb *stint.Buffer, soff, n int) {
	if n <= w.b {
		w.baseFFT(t, x, xb, off, n)
		return
	}
	det := t.Detecting()
	half := n / 2
	// Shuffle: even elements to the low scratch half, odd to the high half,
	// the two streams in parallel (decimation in time). Each stream's reads
	// are strided — per-access hooks the compiler cannot coalesce, and
	// one-element intervals runtime coalescing cannot merge. This is what
	// gives fft the paper's many-small-intervals profile.
	t.Spawn(func(c *stint.Task) {
		cdet := c.Detecting()
		for i := 0; i < half; i++ {
			if cdet {
				c.Load(xb, off+2*i)
			}
			scr[soff+i] = x[off+2*i]
		}
		if cdet {
			c.StoreRange(sb, soff, half)
		}
	})
	t.Spawn(func(c *stint.Task) {
		cdet := c.Detecting()
		for i := 0; i < half; i++ {
			if cdet {
				c.Load(xb, off+2*i+1)
			}
			scr[soff+half+i] = x[off+2*i+1]
		}
		if cdet {
			c.StoreRange(sb, soff+half, half)
		}
	})
	t.Sync()
	t.Spawn(func(c *stint.Task) { w.rec(c, scr, sb, soff, x, xb, off, half) })
	t.Spawn(func(c *stint.Task) { w.rec(c, scr, sb, soff+half, x, xb, off+half, half) })
	t.Sync()
	// Combine with twiddle factors; all four touched ranges are contiguous.
	if det {
		t.LoadRange(sb, soff, n)
		t.StoreRange(xb, off, n)
	}
	tstep := w.n / n
	for k := 0; k < half; k++ {
		odd := scr[soff+half+k] * w.tw[k*tstep]
		x[off+k] = scr[soff+k] + odd
		x[off+half+k] = scr[soff+k] - odd
	}
}

// baseFFT computes an in-place iterative radix-2 transform of a contiguous
// block: a bit-reversal permutation followed by log₂(n) butterfly stages.
// Every access is instrumented individually — the permutation is scattered
// and the butterfly strides vary per stage, the patterns the paper reports
// the compiler cannot coalesce for fft (Figure 6: reads coalesce by ~0.005%
// at compile time).
func (w *FFT) baseFFT(t *stint.Task, x []complex128, xb *stint.Buffer, off, n int) {
	det := t.Detecting()
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			if det {
				t.Load(xb, off+i)
				t.Load(xb, off+j)
				t.Store(xb, off+i)
				t.Store(xb, off+j)
			}
			x[off+i], x[off+j] = x[off+j], x[off+i]
		}
		m := n >> 1
		for ; m >= 1 && j&m != 0; m >>= 1 {
			j &^= m
		}
		j |= m
	}
	// Butterfly stages.
	for m := 2; m <= n; m <<= 1 {
		half := m >> 1
		tstep := w.n / m
		for k := 0; k < n; k += m {
			for j := 0; j < half; j++ {
				lo := off + k + j
				hi := lo + half
				if det {
					t.Load(xb, lo)
					t.Load(xb, hi)
					t.Store(xb, lo)
					t.Store(xb, hi)
				}
				tv := w.tw[j*tstep] * x[hi]
				x[hi] = x[lo] - tv
				x[lo] = x[lo] + tv
			}
		}
	}
}

func (w *FFT) Verify() error {
	// Check sampled output bins against the direct DFT of the saved input.
	for _, k := range w.checks {
		var want complex128
		for j := 0; j < w.n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(w.n)
			want += w.orig[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		got := w.data[k]
		if !fftClose(got, want, float64(w.n)) {
			return fmt.Errorf("fft: bin %d = %v, want %v", k, got, want)
		}
	}
	return nil
}

// fftClose compares transform outputs with a tolerance scaled by the
// accumulation length.
func fftClose(a, b complex128, n float64) bool {
	d := a - b
	mag := real(d)*real(d) + imag(d)*imag(d)
	return mag <= 1e-12*n
}
