package workloads

import (
	"testing"

	"stint"
)

func runMMulKernel(t *testing.T, n, b int) *MMul {
	t.Helper()
	w := NewMMul(n, b)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMMulShapes(t *testing.T) {
	// Non-power-of-two sizes and extreme base cases exercise every split
	// direction (row, column, inner) of the recursion.
	for _, c := range []struct{ n, b int }{
		{1, 1}, {2, 1}, {7, 2}, {16, 16}, {17, 4}, {33, 8}, {48, 5},
	} {
		w := runMMulKernel(t, c.n, c.b)
		if err := w.Verify(); err != nil {
			t.Errorf("n=%d b=%d: %v", c.n, c.b, err)
		}
	}
}

func TestMMulIdentity(t *testing.T) {
	w := NewMMul(16, 4)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	// Overwrite B with the identity; C must equal A.
	for i := range w.bm {
		w.bm[i] = 0
	}
	for i := 0; i < 16; i++ {
		w.bm[i*16+i] = 1
	}
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	for i := range w.a {
		if !approxEqual(w.c[i], w.a[i]) {
			t.Fatalf("C[%d] = %g, want A = %g", i, w.c[i], w.a[i])
		}
	}
}

func TestMMulAccumulatesIntoC(t *testing.T) {
	// The kernel computes C += A·B; a pre-seeded C must be preserved.
	w := NewMMul(8, 4)
	r, _ := stint.NewRunner(stint.Options{})
	w.Setup(r)
	for i := range w.c {
		w.c[i] = 100
	}
	if _, err := r.Run(w.Run); err != nil {
		t.Fatal(err)
	}
	var want float64
	for k := 0; k < 8; k++ {
		want += w.a[k] * w.bm[k*8]
	}
	if !approxEqual(w.c[0], want+100) {
		t.Fatalf("C[0] = %g, want %g (accumulation lost)", w.c[0], want+100)
	}
}

func TestMMulInstrumentationShape(t *testing.T) {
	// Algorithm 1: B loads stay per-element (uncoalesced at compile time),
	// A and C rows arrive as ranges. Under Compiler mode, hook calls are
	// therefore dominated by B's n³ loads.
	w := NewMMul(32, 8)
	r, _ := stint.NewRunner(stint.Options{Detector: stint.DetectorCompiler})
	w.Setup(r)
	rep, err := r.Run(w.Run)
	if err != nil {
		t.Fatal(err)
	}
	n3 := uint64(32 * 32 * 32)
	if rep.Stats.ReadHookCalls < n3 {
		t.Errorf("ReadHookCalls = %d, want >= %d (per-element B loads)", rep.Stats.ReadHookCalls, n3)
	}
	// A and C range hooks: 2 per base-case row for C is wrong to count
	// exactly here; just require far fewer write hooks than read hooks.
	if rep.Stats.WriteHookCalls*10 > rep.Stats.ReadHookCalls {
		t.Errorf("write hooks %d not far below read hooks %d", rep.Stats.WriteHookCalls, rep.Stats.ReadHookCalls)
	}
}

func TestMMulRejectsBadSizes(t *testing.T) {
	for _, c := range []struct{ n, b int }{{0, 1}, {4, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMMul(%d,%d) accepted invalid sizes", c.n, c.b)
				}
			}()
			NewMMul(c.n, c.b)
		}()
	}
}
