// Package workloads implements the seven task-parallel benchmarks of the
// paper's evaluation (§5): Cholesky decomposition (chol), fast Fourier
// transform (fft), heat diffusion (heat), matrix multiplication (mmul),
// parallel mergesort (sort), and Strassen's algorithm in row-major (stra)
// and Morton-Z (straz) layouts.
//
// Each workload performs its real computation on Go slices while reporting
// memory accesses through the stint instrumentation hooks, hand-placed to
// mirror what the paper says the Tapir compiler could and could not
// coalesce (§3.1): contiguous loops get LoadRange/StoreRange ("coalesced
// instrumentation"), strided or data-dependent accesses get per-access
// Load/Store hooks. Instrumentation blocks are guarded by Task.Detecting so
// baseline (DetectorOff) runs measure the uninstrumented computation.
//
// Workloads are deterministic: the same constructor parameters produce the
// same execution, access pattern, and verification result on every run.
package workloads

import (
	"fmt"
	"sort"

	"stint"
)

// Workload is one benchmark instance. Setup must be called exactly once,
// before Run; Run may be invoked once per Workload instance (construct a
// fresh instance per measurement); Verify checks the computed result after
// Run.
type Workload interface {
	// Name returns the benchmark's table name (chol, fft, ...).
	Name() string
	// Params describes the instance size, e.g. "n=256 b=16".
	Params() string
	// Setup allocates buffers from the runner's arena and initializes data.
	Setup(r *stint.Runner)
	// Run executes the instrumented kernel as the root task body.
	Run(t *stint.Task)
	// Verify returns nil if the computation produced a correct result.
	Verify() error
}

// Factory constructs a fresh instance of a workload; measurements construct
// one instance per run so detector state and data are always fresh.
type Factory func() Workload

// Names lists the benchmarks in the paper's table order.
func Names() []string {
	return []string{"chol", "fft", "heat", "mmul", "sort", "stra", "straz"}
}

// ByName returns a factory for the named benchmark at the default scaled-
// down size (the paper's inputs run minutes on a 40-core Xeon; these run
// seconds under full detection). scale multiplies the default problem size:
// 1 is the default, 2 roughly quadruples the work.
func ByName(name string, scale int) (Factory, error) {
	if scale < 1 {
		scale = 1
	}
	s := scale
	p2 := 1 << log2(s) // power-of-two scale for size-constrained kernels
	switch name {
	case "chol":
		return func() Workload { return NewChol(192*s, 16) }, nil
	case "fft":
		return func() Workload { return NewFFT(16384*p2, 64) }, nil
	case "heat":
		return func() Workload { return NewHeat(128*s, 128, 20, 4) }, nil
	case "mmul":
		return func() Workload { return NewMMul(96*s, 16) }, nil
	case "sort":
		return func() Workload { return NewSort(100000*s, 512) }, nil
	case "stra":
		return func() Workload { return NewStrassen(128*p2, 32, false) }, nil
	case "straz":
		return func() Workload { return NewStrassen(128*p2, 32, true) }, nil
	// The deliberately buggy variants (races that serial execution hides)
	// are addressable for recording traces that actually race — the
	// serve-smoke comparison needs a non-empty race set — but stay out of
	// Names() so the benchmark tables remain race-free.
	case "mmul-racy":
		return func() Workload { return NewRacyMMul(96*s, 16) }, nil
	case "heat-racy":
		return func() Workload { return NewRacyHeat(128*s, 128, 20, 4) }, nil
	case "sort-racy":
		return func() Workload { return NewRacySort(100000*s, 512) }, nil
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, Names())
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// xorshift is the deterministic data initializer shared by all workloads.
type xorshift uint64

func newRNG(seed uint64) *xorshift {
	x := xorshift(seed*0x9E3779B97F4A7C15 + 1)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift(v)
	return v * 0x2545F4914F6CDD1D
}

// float returns a deterministic float in [0, 1).
func (x *xorshift) float() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// intn returns a deterministic int in [0, n).
func (x *xorshift) intn(n int) int {
	return int(x.next() % uint64(n))
}

// approxEqual compares floats with a relative tolerance suited to the
// accumulation depths these kernels reach.
func approxEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	mag := 1.0
	if a > mag {
		mag = a
	}
	if -a > mag {
		mag = -a
	}
	if b > mag {
		mag = b
	}
	if -b > mag {
		mag = -b
	}
	return diff <= 1e-6*mag
}

// isSorted reports whether data is nondecreasing.
func isSorted(data []int32) bool {
	return sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] })
}
