package workloads

import (
	"fmt"

	"stint"
)

// MMul is dense matrix multiplication C += A·B on row-major n×n matrices,
// using the Cilk-5 recursive divide-and-conquer algorithm: the largest of
// the three dimensions is halved; splits of the row or column dimension of
// C run in parallel, splits of the inner dimension run serially (both
// halves accumulate into C).
//
// The base case carries exactly the instrumentation of the paper's
// Algorithm 1: coalesced load/store hooks for each row of C, a coalesced
// load hook for each row of A, and a per-access load hook for every element
// of B — the column-major reads of row-major B are the paper's example of
// an access pattern the compiler cannot coalesce.
type MMul struct {
	n, b    int
	a, bm   []float64
	c       []float64
	bufA    *stint.Buffer
	bufB    *stint.Buffer
	bufC    *stint.Buffer
	scratch []float64 // reference result for Verify (small n only)
}

// NewMMul returns an n×n multiplication with base-case size b.
func NewMMul(n, b int) *MMul {
	if n <= 0 || b <= 0 {
		panic("workloads: mmul sizes must be positive")
	}
	return &MMul{n: n, b: b}
}

func (w *MMul) Name() string   { return "mmul" }
func (w *MMul) Params() string { return fmt.Sprintf("n=%d b=%d", w.n, w.b) }

func (w *MMul) Setup(r *stint.Runner) {
	n := w.n
	w.a = make([]float64, n*n)
	w.bm = make([]float64, n*n)
	w.c = make([]float64, n*n)
	rng := newRNG(42)
	for i := range w.a {
		w.a[i] = rng.float() - 0.5
		w.bm[i] = rng.float() - 0.5
	}
	w.bufA = r.Arena().AllocFloat64("mmul.A", n*n)
	w.bufB = r.Arena().AllocFloat64("mmul.B", n*n)
	w.bufC = r.Arena().AllocFloat64("mmul.C", n*n)
}

func (w *MMul) Run(t *stint.Task) {
	w.rec(t, 0, 0, 0, 0, 0, 0, w.n, w.n, w.n)
}

// rec multiplies the m×n block of A at (ar,ac) with the n×p block of B at
// (br,bc) into the m×p block of C at (cr,cc).
func (w *MMul) rec(t *stint.Task, ar, ac, br, bc, cr, cc, m, n, p int) {
	if m <= w.b && n <= w.b && p <= w.b {
		w.base(t, ar, ac, br, bc, cr, cc, m, n, p)
		return
	}
	switch {
	case m >= n && m >= p: // split rows of C: disjoint outputs, parallel
		h := m / 2
		t.Spawn(func(c *stint.Task) { w.rec(c, ar, ac, br, bc, cr, cc, h, n, p) })
		t.Spawn(func(c *stint.Task) { w.rec(c, ar+h, ac, br, bc, cr+h, cc, m-h, n, p) })
		t.Sync()
	case p >= n: // split columns of C: disjoint outputs, parallel
		h := p / 2
		t.Spawn(func(c *stint.Task) { w.rec(c, ar, ac, br, bc, cr, cc, m, n, h) })
		t.Spawn(func(c *stint.Task) { w.rec(c, ar, ac, br, bc+h, cr, cc+h, m, n, p-h) })
		t.Sync()
	default: // split the inner dimension: both halves add into C, serial
		h := n / 2
		w.rec(t, ar, ac, br, bc, cr, cc, m, h, p)
		w.rec(t, ar, ac+h, br+h, bc, cr, cc, m, n-h, p)
	}
}

// base is Algorithm 1 of the paper.
func (w *MMul) base(t *stint.Task, ar, ac, br, bc, cr, cc, m, n, p int) {
	N := w.n
	det := t.Detecting()
	for i := 0; i < m; i++ {
		if det {
			t.LoadRange(w.bufC, (cr+i)*N+cc, p)
			t.StoreRange(w.bufC, (cr+i)*N+cc, p)
			t.LoadRange(w.bufA, (ar+i)*N+ac, n)
		}
		for j := 0; j < p; j++ {
			sum := w.c[(cr+i)*N+cc+j]
			for k := 0; k < n; k++ {
				if det {
					t.Load(w.bufB, (br+k)*N+bc+j)
				}
				sum += w.a[(ar+i)*N+ac+k] * w.bm[(br+k)*N+bc+j]
			}
			w.c[(cr+i)*N+cc+j] = sum
		}
	}
}

func (w *MMul) Verify() error {
	n := w.n
	// Full reference for small instances, sampled rows for large ones.
	rows := n
	stride := 1
	if n > 160 {
		stride = n / 16
	}
	for i := 0; i < rows; i += stride {
		for j := 0; j < n; j += stride {
			var want float64
			for k := 0; k < n; k++ {
				want += w.a[i*n+k] * w.bm[k*n+j]
			}
			if got := w.c[i*n+j]; !approxEqual(got, want) {
				return fmt.Errorf("mmul: C[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	return nil
}
