package workloads

import (
	"fmt"

	"stint"
)

// Strassen multiplies two n×n matrices with Strassen's seven-multiplication
// recursion, the paper's stra and straz benchmarks. The two variants differ
// only in memory layout:
//
//   - stra (morton=false): matrices are stored row-major, so a quadrant is
//     a strided set of row segments and every block operation produces one
//     interval per row;
//   - straz (morton=true): matrices are stored in Morton-Z order with
//     row-major tiles of the base-case size, so every quadrant (and every
//     temporary) is one contiguous block and block operations produce a
//     single large interval.
//
// The seven sub-multiplications are spawned in parallel, as are the four
// quadrant combinations; the quadrant sums feeding them are computed in the
// parent strand. Temporaries live in one scratch slab carved up
// deterministically per recursion level.
type Strassen struct {
	n, b    int
	z       bool
	a, bm   []float64
	c       []float64
	scratch []float64
	bufA    *stint.Buffer
	bufB    *stint.Buffer
	bufC    *stint.Buffer
	bufS    *stint.Buffer
	la, lb  []float64 // logical row-major copies for Verify
}

// NewStrassen returns an n×n Strassen multiplication with base-case size b;
// morton selects the straz layout. n and b must be powers of two, n >= b.
func NewStrassen(n, b int, morton bool) *Strassen {
	if n < 2 || n&(n-1) != 0 || b < 2 || b&(b-1) != 0 || b > n {
		panic("workloads: strassen needs power-of-two n >= b >= 2")
	}
	return &Strassen{n: n, b: b, z: morton}
}

func (w *Strassen) Name() string {
	if w.z {
		return "straz"
	}
	return "stra"
}

func (w *Strassen) Params() string { return fmt.Sprintf("n=%d b=%d", w.n, w.b) }

// need returns the scratch floats required by one multiplication of size n:
// ten quadrant sums plus seven products per level, with all seven children
// live concurrently.
func (w *Strassen) need(n int) int {
	if n <= w.b {
		return 0
	}
	q := n / 2
	return 17*q*q + 7*w.need(q)
}

// physIdx maps logical (i, j) to the physical index under the layout.
func (w *Strassen) physIdx(i, j int) int {
	if !w.z {
		return i*w.n + j
	}
	off, n := 0, w.n
	for n > w.b {
		q := n / 2
		k := 0
		if i >= q {
			k += 2
			i -= q
		}
		if j >= q {
			k++
			j -= q
		}
		off += k * q * q
		n = q
	}
	return off + i*n + j
}

func (w *Strassen) Setup(r *stint.Runner) {
	n := w.n
	w.la = make([]float64, n*n)
	w.lb = make([]float64, n*n)
	rng := newRNG(21)
	for i := range w.la {
		w.la[i] = rng.float() - 0.5
		w.lb[i] = rng.float() - 0.5
	}
	w.a = make([]float64, n*n)
	w.bm = make([]float64, n*n)
	w.c = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := w.physIdx(i, j)
			w.a[p] = w.la[i*n+j]
			w.bm[p] = w.lb[i*n+j]
		}
	}
	w.scratch = make([]float64, w.need(n))
	w.bufA = r.Arena().AllocFloat64(w.Name()+".A", n*n)
	w.bufB = r.Arena().AllocFloat64(w.Name()+".B", n*n)
	w.bufC = r.Arena().AllocFloat64(w.Name()+".C", n*n)
	if len(w.scratch) > 0 {
		w.bufS = r.Arena().AllocFloat64(w.Name()+".scratch", len(w.scratch))
	}
}

// view is one square block of a matrix.
type view struct {
	data   []float64
	buf    *stint.Buffer
	off    int
	stride int // row stride; for contiguous blocks stride == n
	n      int
	z      bool // Morton block: the whole n×n region is contiguous
}

// quad returns the (qi, qj) quadrant of v.
func (v view) quad(qi, qj int) view {
	q := v.n / 2
	if v.z {
		return view{data: v.data, buf: v.buf, off: v.off + (qi*2+qj)*q*q, stride: q, n: q, z: true}
	}
	return view{data: v.data, buf: v.buf, off: v.off + qi*q*v.stride + qj*q, stride: v.stride, n: q, z: false}
}

// rowSpans reports the view as spans of contiguous elements: one span of
// n*n for Morton blocks, n spans of n for row-major views.
func (v view) rowSpans() (count, length int) {
	if v.z {
		return 1, v.n * v.n
	}
	return v.n, v.n
}

// spanBase returns the flat index of span i.
func (v view) spanBase(i int) int {
	if v.z {
		return v.off
	}
	return v.off + i*v.stride
}

// idx addresses element (i, j); valid for row-major views and for Morton
// views at tile level (n <= base), where tiles are stored row-major.
func (v view) idx(i, j int) int {
	if v.z {
		return v.off + i*v.n + j
	}
	return v.off + i*v.stride + j
}

func (w *Strassen) Run(t *stint.Task) {
	full := func(data []float64, buf *stint.Buffer) view {
		return view{data: data, buf: buf, off: 0, stride: w.n, n: w.n, z: w.z}
	}
	w.mul(t, full(w.a, w.bufA), full(w.bm, w.bufB), full(w.c, w.bufC), 0)
}

// tempView carves block i (of q² floats) out of the scratch slab at so.
func (w *Strassen) tempView(so, i, q int) view {
	off := so + i*q*q
	return view{data: w.scratch, buf: w.bufS, off: off, stride: q, n: q, z: w.z}
}

// mul computes c = a·b.
func (w *Strassen) mul(t *stint.Task, a, b, c view, so int) {
	if a.n <= w.b {
		w.mulBase(t, a, b, c)
		return
	}
	q := a.n / 2
	a11, a12, a21, a22 := a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
	b11, b12, b21, b22 := b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)
	tv := func(i int) view { return w.tempView(so, i, q) }
	s1, s2, s3, s4, s5 := tv(0), tv(1), tv(2), tv(3), tv(4)
	s6, s7, s8, s9, s10 := tv(5), tv(6), tv(7), tv(8), tv(9)
	m1, m2, m3, m4, m5, m6, m7 := tv(10), tv(11), tv(12), tv(13), tv(14), tv(15), tv(16)

	// Quadrant sums in the parent strand.
	w.ewise2(t, s1, a11, a22, false)  // S1 = A11 + A22
	w.ewise2(t, s2, b11, b22, false)  // S2 = B11 + B22
	w.ewise2(t, s3, a21, a22, false)  // S3 = A21 + A22
	w.ewise2(t, s4, b12, b22, true)   // S4 = B12 − B22
	w.ewise2(t, s5, b21, b11, true)   // S5 = B21 − B11
	w.ewise2(t, s6, a11, a12, false)  // S6 = A11 + A12
	w.ewise2(t, s7, a21, a11, true)   // S7 = A21 − A11
	w.ewise2(t, s8, b11, b12, false)  // S8 = B11 + B12
	w.ewise2(t, s9, a12, a22, true)   // S9 = A12 − A22
	w.ewise2(t, s10, b21, b22, false) // S10 = B21 + B22

	cso := so + 17*q*q
	cn := w.need(q)
	t.Spawn(func(ct *stint.Task) { w.mul(ct, s1, s2, m1, cso+0*cn) })
	t.Spawn(func(ct *stint.Task) { w.mul(ct, s3, b11, m2, cso+1*cn) })
	t.Spawn(func(ct *stint.Task) { w.mul(ct, a11, s4, m3, cso+2*cn) })
	t.Spawn(func(ct *stint.Task) { w.mul(ct, a22, s5, m4, cso+3*cn) })
	t.Spawn(func(ct *stint.Task) { w.mul(ct, s6, b22, m5, cso+4*cn) })
	t.Spawn(func(ct *stint.Task) { w.mul(ct, s7, s8, m6, cso+5*cn) })
	t.Spawn(func(ct *stint.Task) { w.mul(ct, s9, s10, m7, cso+6*cn) })
	t.Sync()

	c11, c12, c21, c22 := c.quad(0, 0), c.quad(0, 1), c.quad(1, 0), c.quad(1, 1)
	t.Spawn(func(ct *stint.Task) { w.ewise4(ct, c11, m1, m4, m5, m7, 1, -1, 1) }) // C11 = M1+M4−M5+M7
	t.Spawn(func(ct *stint.Task) { w.ewise2(ct, c12, m3, m5, false) })            // C12 = M3+M5
	t.Spawn(func(ct *stint.Task) { w.ewise2(ct, c21, m2, m4, false) })            // C21 = M2+M4
	t.Spawn(func(ct *stint.Task) { w.ewise4(ct, c22, m1, m2, m3, m6, -1, 1, 1) }) // C22 = M1−M2+M3+M6
	t.Sync()
}

// ewise2 computes dst = x + y (or x − y). Contiguous operands produce one
// interval; row-major quadrants produce one per row.
func (w *Strassen) ewise2(t *stint.Task, dst, x, y view, sub bool) {
	det := t.Detecting()
	spans, length := dst.rowSpans()
	for s := 0; s < spans; s++ {
		db, xb, yb := dst.spanBase(s), x.spanBase(s), y.spanBase(s)
		if det {
			t.LoadRange(x.buf, xb, length)
			t.LoadRange(y.buf, yb, length)
			t.StoreRange(dst.buf, db, length)
		}
		if sub {
			for k := 0; k < length; k++ {
				dst.data[db+k] = x.data[xb+k] - y.data[yb+k]
			}
		} else {
			for k := 0; k < length; k++ {
				dst.data[db+k] = x.data[xb+k] + y.data[yb+k]
			}
		}
	}
}

// ewise4 computes dst = p + sq·q + sr·r + ss·s.
func (w *Strassen) ewise4(t *stint.Task, dst, p, q, r, s view, sq, sr, ss float64) {
	det := t.Detecting()
	spans, length := dst.rowSpans()
	for i := 0; i < spans; i++ {
		db, pb, qb, rb, sb := dst.spanBase(i), p.spanBase(i), q.spanBase(i), r.spanBase(i), s.spanBase(i)
		if det {
			t.LoadRange(p.buf, pb, length)
			t.LoadRange(q.buf, qb, length)
			t.LoadRange(r.buf, rb, length)
			t.LoadRange(s.buf, sb, length)
			t.StoreRange(dst.buf, db, length)
		}
		for k := 0; k < length; k++ {
			dst.data[db+k] = p.data[pb+k] + sq*q.data[qb+k] + sr*r.data[rb+k] + ss*s.data[sb+k]
		}
	}
}

// mulBase computes c = a·b directly on base-case tiles with Algorithm 1
// instrumentation: coalesced row hooks for a and c, per-element loads of b
// (column-major reads of a row-major tile).
func (w *Strassen) mulBase(t *stint.Task, a, b, c view) {
	n := a.n
	det := t.Detecting()
	for i := 0; i < n; i++ {
		if det {
			t.StoreRange(c.buf, c.idx(i, 0), n)
			t.LoadRange(a.buf, a.idx(i, 0), n)
		}
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				if det {
					t.Load(b.buf, b.idx(k, j))
				}
				sum += a.data[a.idx(i, k)] * b.data[b.idx(k, j)]
			}
			c.data[c.idx(i, j)] = sum
		}
	}
}

func (w *Strassen) Verify() error {
	n := w.n
	stride := 1
	if n > 128 {
		stride = n / 16
	}
	for i := 0; i < n; i += stride {
		for j := 0; j < n; j += stride {
			var want float64
			for k := 0; k < n; k++ {
				want += w.la[i*n+k] * w.lb[k*n+j]
			}
			got := w.c[w.physIdx(i, j)]
			if !approxEqual(got, want) {
				return fmt.Errorf("%s: C[%d,%d] = %g, want %g", w.Name(), i, j, got, want)
			}
		}
	}
	return nil
}
