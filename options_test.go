package stint

import (
	"strings"
	"testing"
)

// nopTracer satisfies Tracer for validation tests.
type nopTracer struct{}

func (nopTracer) Spawn()                       {}
func (nopTracer) Restore()                     {}
func (nopTracer) Sync()                        {}
func (nopTracer) Read(Addr, uint64)            {}
func (nopTracer) Write(Addr, uint64)           {}
func (nopTracer) ReadRange(Addr, int, uint64)  {}
func (nopTracer) WriteRange(Addr, int, uint64) {}

// TestNewRunnerValidationTable exercises every rule in the options table:
// each rejected combination names the offending option in its error, and
// each boundary-legal combination constructs a Runner.
func TestNewRunnerValidationTable(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		// wantErr, when non-empty, must be a substring of the error.
		wantErr string
	}{
		// Parallel is only compatible with DetectorOff, no tracer, no async.
		{"parallel off ok", Options{Detector: DetectorOff, Parallel: true}, ""},
		{"parallel vanilla", Options{Detector: DetectorVanilla, Parallel: true}, "Parallel"},
		{"parallel stint", Options{Detector: DetectorSTINT, Parallel: true}, "Parallel"},
		{"parallel tracer", Options{Detector: DetectorOff, Parallel: true, Tracer: nopTracer{}}, "tracing"},
		{"parallel async", Options{Detector: DetectorOff, Parallel: true, Async: true}, "Async and Parallel"},

		// MaxRacesRecorded: negative rejected, zero defaults, positive kept.
		{"negative max races", Options{Detector: DetectorSTINT, MaxRacesRecorded: -1}, "MaxRacesRecorded"},
		{"negative max races async", Options{Detector: DetectorSTINT, Async: true, MaxRacesRecorded: -7}, "MaxRacesRecorded"},
		{"zero max races defaults", Options{Detector: DetectorSTINT}, ""},
		{"positive max races", Options{Detector: DetectorSTINT, MaxRacesRecorded: 3}, ""},

		// DetectShards: sign, magnitude, async requirement, detector class.
		{"negative shards", Options{Detector: DetectorSTINT, Async: true, DetectShards: -1}, "non-negative"},
		{"absurd shards", Options{Detector: DetectorSTINT, Async: true, DetectShards: maxDetectShards + 1}, "maximum"},
		{"max shards ok", Options{Detector: DetectorSTINT, Async: true, DetectShards: maxDetectShards}, ""},
		{"shards without async", Options{Detector: DetectorSTINT, DetectShards: 2}, "requires Async"},
		{"shards vanilla", Options{Detector: DetectorVanilla, Async: true, DetectShards: 2}, "runtime-coalescing"},
		{"shards compiler", Options{Detector: DetectorCompiler, Async: true, DetectShards: 2}, "runtime-coalescing"},
		{"shards comp+rts ok", Options{Detector: DetectorCompRTS, Async: true, DetectShards: 2}, ""},
		{"shards stint ok", Options{Detector: DetectorSTINT, Async: true, DetectShards: 4}, ""},
		{"shards stint-unbalanced ok", Options{Detector: DetectorSTINTUnbalanced, Async: true, DetectShards: 2}, ""},
		{"shards stint-skiplist ok", Options{Detector: DetectorSTINTSkiplist, Async: true, DetectShards: 2}, ""},
		{"one shard ok", Options{Detector: DetectorSTINT, Async: true, DetectShards: 1}, ""},
		{"zero shards ok", Options{Detector: DetectorSTINT, Async: true}, ""},
		{"shards off ignored", Options{Detector: DetectorOff, Async: true, DetectShards: 2}, ""},
		{"shards reach-only ignored", Options{Detector: DetectorReachOnly, Async: true, DetectShards: 2}, ""},

		// ParallelDetect: needs a runtime-coalescing detector, excludes
		// the other executors and the tracer; DetectShards composes.
		{"parallel-detect stint ok", Options{Detector: DetectorSTINT, ParallelDetect: true}, ""},
		{"parallel-detect comp+rts ok", Options{Detector: DetectorCompRTS, ParallelDetect: true}, ""},
		{"parallel-detect sharded ok", Options{Detector: DetectorSTINT, ParallelDetect: true, DetectShards: 4}, ""},
		{"parallel-detect off", Options{Detector: DetectorOff, ParallelDetect: true}, "runtime-coalescing"},
		{"parallel-detect vanilla", Options{Detector: DetectorVanilla, ParallelDetect: true}, "runtime-coalescing"},
		{"parallel-detect reach-only", Options{Detector: DetectorReachOnly, ParallelDetect: true}, "runtime-coalescing"},
		{"parallel-detect tracer", Options{Detector: DetectorSTINT, ParallelDetect: true, Tracer: nopTracer{}}, "tracing"},
		// With a detector set, the Parallel rule fires before the
		// both-executors rule; with DetectorOff the latter wins.
		{"parallel-detect with parallel", Options{Detector: DetectorSTINT, Parallel: true, ParallelDetect: true}, "Parallel"},
		{"parallel-detect with parallel off", Options{Detector: DetectorOff, Parallel: true, ParallelDetect: true}, "choose one"},
		{"parallel-detect with async", Options{Detector: DetectorSTINT, ParallelDetect: true, Async: true}, "Async and ParallelDetect"},

		// Plain configurations stay legal.
		{"default", Options{}, ""},
		{"async stint", Options{Detector: DetectorSTINT, Async: true}, ""},
		{"tracer serial", Options{Detector: DetectorSTINT, Tracer: nopTracer{}}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := NewRunner(c.opts)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if r == nil {
					t.Fatal("nil Runner without error")
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got none", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "stint: ") {
				t.Fatalf("error %q not prefixed with package name", err)
			}
		})
	}
}

// TestValidateFirstViolationWins pins the table order: an Options value
// violating several rules reports the earliest one, so error messages are
// stable as rules accumulate.
func TestValidateFirstViolationWins(t *testing.T) {
	opts := Options{Detector: DetectorVanilla, Parallel: true, MaxRacesRecorded: -1, DetectShards: -5}
	_, err := NewRunner(opts)
	if err == nil || !strings.Contains(err.Error(), "Parallel") {
		t.Fatalf("expected the Parallel rule to win, got %v", err)
	}
}

// TestMaxRacesDefaultApplied checks the zero-value default survives the
// validation path: Report.Races is bounded by 64 when unset.
func TestMaxRacesDefaultApplied(t *testing.T) {
	r, err := NewRunner(Options{Detector: DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.opts.MaxRacesRecorded; got != 64 {
		t.Fatalf("defaulted MaxRacesRecorded = %d, want 64", got)
	}
}
