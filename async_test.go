package stint

import (
	"sync/atomic"
	"testing"
)

// runOneAsync is runOne with the async pipeline enabled and optional tiny
// pipeline geometry to force batch-boundary and backpressure paths.
func runOneAsync(t *testing.T, d Detector, batchEvents, ringDepth int, body func(task *Task, buf *Buffer)) *Report {
	t.Helper()
	r, err := NewRunner(Options{Detector: d, Async: true, MaxRacesRecorded: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	r.asyncBatchEvents, r.asyncRingDepth = batchEvents, ringDepth
	buf := r.Arena().AllocWords("buf", 1024)
	rep, err := r.Run(func(task *Task) { body(task, buf) })
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAsyncMatchesSyncVerdicts(t *testing.T) {
	programs := []struct {
		name string
		racy bool
		body func(task *Task, buf *Buffer)
	}{
		{"parallel-writes", true, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.Store(buf, 5) })
			task.Store(buf, 5)
			task.Sync()
		}},
		{"synced-write", false, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.Store(buf, 9) })
			task.Sync()
			task.Store(buf, 9)
		}},
		{"overlapping-ranges", true, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.StoreRange(buf, 0, 100) })
			task.LoadRange(buf, 99, 100)
			task.Sync()
		}},
		{"disjoint-ranges", false, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) { c.StoreRange(buf, 0, 100) })
			task.StoreRange(buf, 100, 100)
			task.Sync()
		}},
		{"grandchild", true, func(task *Task, buf *Buffer) {
			task.Spawn(func(c *Task) {
				c.Spawn(func(g *Task) { g.Store(buf, 42) })
				c.Sync()
			})
			task.Store(buf, 42)
			task.Sync()
		}},
	}
	for _, d := range allDetectors {
		for _, p := range programs {
			sync := runOne(t, d, p.body)
			async := runOneAsync(t, d, 0, 0, p.body)
			if sync.Racy() != p.racy {
				t.Fatalf("%v/%s: sync verdict %v, want %v", d, p.name, sync.Racy(), p.racy)
			}
			if async.RaceCount != sync.RaceCount {
				t.Errorf("%v/%s: async %d races, sync %d", d, p.name, async.RaceCount, sync.RaceCount)
			}
			if async.Strands != sync.Strands {
				t.Errorf("%v/%s: async %d strands, sync %d", d, p.name, async.Strands, sync.Strands)
			}
		}
	}
}

func TestAsyncStatsMatchSync(t *testing.T) {
	body := func(task *Task, buf *Buffer) {
		task.Spawn(func(c *Task) {
			c.LoadRange(buf, 0, 200)
			c.StoreRange(buf, 0, 100)
		})
		for i := 50; i < 150; i++ {
			task.Load(buf, i)
		}
		task.Store(buf, 300)
		task.Sync()
	}
	for _, d := range allDetectors {
		sync := runOne(t, d, body)
		async := runOneAsync(t, d, 0, 0, body)
		// Everything except the timing and allocation fields must be
		// byte-identical: same events, same serial order, same engine.
		norm := func(s Stats) Stats {
			s.AccessHistoryTime, s.AllocObjects, s.AllocBytes, s.PipelineDetectTime, s.BatchesSkipped = 0, 0, 0, 0, 0
			s.EventsStreamed, s.StreamBytes = 0, 0
			return s
		}
		if norm(async.Stats) != norm(sync.Stats) {
			t.Errorf("%v: stats diverge\nasync: %+v\nsync:  %+v", d, norm(async.Stats), norm(sync.Stats))
		}
	}
}

func TestAsyncTinyBatchesAndBackpressure(t *testing.T) {
	// Batch capacity 1 with ring depth 1 maximizes handoffs and producer
	// blocking; results must not change.
	body := func(task *Task, buf *Buffer) {
		for i := 0; i < 3; i++ {
			task.Spawn(func(c *Task) { c.StoreRange(buf, 0, 64) })
		}
		task.LoadRange(buf, 32, 64)
		task.Sync()
	}
	want := runOne(t, DetectorSTINT, body)
	for _, geom := range [][2]int{{1, 1}, {2, 1}, {3, 2}, {7, 3}} {
		got := runOneAsync(t, DetectorSTINT, geom[0], geom[1], body)
		if got.RaceCount != want.RaceCount || got.Strands != want.Strands {
			t.Errorf("geometry %v: races/strands = %d/%d, want %d/%d",
				geom, got.RaceCount, got.Strands, want.RaceCount, want.Strands)
		}
	}
}

func TestAsyncOnRaceDeliveredBeforeRunReturns(t *testing.T) {
	var calls atomic.Int64
	r, err := NewRunner(Options{Detector: DetectorSTINT, Async: true, OnRace: func(Race) { calls.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("buf", 16)
	rep, err := r.Run(func(task *Task) {
		task.Spawn(func(c *Task) { c.Store(buf, 0) })
		task.Store(buf, 0)
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 || uint64(calls.Load()) != rep.RaceCount {
		t.Errorf("OnRace called %d times by Run's return, RaceCount = %d", calls.Load(), rep.RaceCount)
	}
	if len(rep.Races) == 0 {
		t.Error("no races recorded in the drained report")
	}
}

// TestAsyncOnRacePanicPropagates hardens the single-stage pipeline's
// teardown: a panicking user OnRace callback on the detector goroutine must
// close the ring (unblocking a producer stuck in Publish), and re-panic out
// of Run on the mutator side — not deadlock and not get swallowed.
func TestAsyncOnRacePanicPropagates(t *testing.T) {
	r, err := NewRunner(Options{
		Detector: DetectorSTINT, Async: true,
		OnRace: func(Race) { panic("user callback exploded") },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny geometry keeps the producer publishing long after the first race
	// fires, so the abort path must actually unblock it.
	r.asyncBatchEvents, r.asyncRingDepth = 1, 1
	buf := r.Arena().AllocWords("buf", 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("user OnRace panic did not propagate out of Run")
		}
	}()
	r.Run(func(task *Task) {
		for i := 0; i < 8; i++ {
			task.Spawn(func(c *Task) { c.StoreRange(buf, 0, 2048) })
		}
		task.Sync()
	})
}

func TestAsyncReachOnly(t *testing.T) {
	rep := runOneAsync(t, DetectorReachOnly, 0, 0, func(task *Task, buf *Buffer) {
		task.Spawn(func(c *Task) { c.Store(buf, 0) })
		task.Store(buf, 0)
		task.Sync()
	})
	if rep.Racy() {
		t.Error("async ReachOnly reported a race")
	}
	if rep.Strands != 4 {
		t.Errorf("async ReachOnly Strands = %d, want 4", rep.Strands)
	}
}

func TestAsyncDetectorOffIgnored(t *testing.T) {
	r, err := NewRunner(Options{Async: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	rep, err := r.Run(func(task *Task) {
		task.Spawn(func(c *Task) { sum++ })
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 1 || rep.Racy() || rep.Strands != 0 {
		t.Errorf("Async+DetectorOff misbehaved: sum=%d rep=%+v", sum, rep)
	}
}

func TestAsyncMultipleRunsIndependent(t *testing.T) {
	r, err := NewRunner(Options{Detector: DetectorSTINT, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("buf", 16)
	racy := func(task *Task) {
		task.Spawn(func(c *Task) { c.Store(buf, 0) })
		task.Store(buf, 0)
		task.Sync()
	}
	rep1, _ := r.Run(racy)
	rep2, _ := r.Run(racy)
	if rep1.RaceCount != rep2.RaceCount || rep1.Strands != rep2.Strands {
		t.Errorf("async runs differ: %d/%d vs %d/%d (state leaked)",
			rep1.RaceCount, rep1.Strands, rep2.RaceCount, rep2.Strands)
	}
}

func TestNewRunnerRejectsAsyncParallel(t *testing.T) {
	if _, err := NewRunner(Options{Async: true, Parallel: true}); err == nil {
		t.Fatal("expected error for Async + Parallel")
	}
}

func TestNewRunnerRejectsNegativeMaxRaces(t *testing.T) {
	if _, err := NewRunner(Options{Detector: DetectorSTINT, MaxRacesRecorded: -1}); err == nil {
		t.Fatal("expected error for negative MaxRacesRecorded")
	}
	// Zero still means "default".
	if _, err := NewRunner(Options{Detector: DetectorSTINT}); err != nil {
		t.Fatalf("zero MaxRacesRecorded rejected: %v", err)
	}
}
