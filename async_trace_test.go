package stint_test

import (
	"bytes"
	"testing"

	"stint"
	"stint/trace"
)

func TestAsyncWithTracerRecordsReplayableTrace(t *testing.T) {
	// The tracer stays inline on the mutator; an async run must record the
	// same trace a sync run does, and replaying it must agree with the
	// async run's own detection.
	record := func(async bool) ([]byte, *stint.Report) {
		var out bytes.Buffer
		rec := trace.NewRecorder(&out)
		r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT, Async: async, Tracer: rec})
		if err != nil {
			t.Fatal(err)
		}
		buf := r.Arena().AllocWords("buf", 64)
		rep, err := r.Run(func(task *stint.Task) {
			task.Spawn(func(c *stint.Task) { c.StoreRange(buf, 0, 32) })
			task.LoadRange(buf, 16, 32)
			task.Sync()
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), rep
	}
	asyncTrace, asyncRep := record(true)
	syncTrace, _ := record(false)
	if !bytes.Equal(asyncTrace, syncTrace) {
		t.Error("async and sync runs recorded different traces")
	}
	replayed, err := trace.Replay(bytes.NewReader(asyncTrace), trace.Options{Detector: stint.DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.RaceCount != asyncRep.RaceCount || replayed.Strands != asyncRep.Strands {
		t.Errorf("replay disagrees with async run: %d/%d vs %d/%d",
			replayed.RaceCount, replayed.Strands, asyncRep.RaceCount, asyncRep.Strands)
	}
}
