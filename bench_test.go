// Benchmarks regenerating the paper's evaluation, one benchmark family per
// table/figure. Workload sizes here are reduced from the cmd/stint-tables
// defaults so the full -bench=. sweep completes in minutes; use
// cmd/stint-tables for the table-formatted output and EXPERIMENTS.md for
// the recorded paper-vs-measured comparison.
package stint_test

import (
	"fmt"
	"testing"
	"time"

	"stint"
	"stint/workloads"
)

// benchFactories are mid-size instances of every paper benchmark.
func benchFactories() []struct {
	name string
	f    workloads.Factory
} {
	return []struct {
		name string
		f    workloads.Factory
	}{
		{"chol", func() workloads.Workload { return workloads.NewChol(96, 16) }},
		{"fft", func() workloads.Workload { return workloads.NewFFT(4096, 64) }},
		{"heat", func() workloads.Workload { return workloads.NewHeat(64, 64, 8, 4) }},
		{"mmul", func() workloads.Workload { return workloads.NewMMul(64, 16) }},
		{"sort", func() workloads.Workload { return workloads.NewSort(30000, 512) }},
		{"stra", func() workloads.Workload { return workloads.NewStrassen(64, 16, false) }},
		{"straz", func() workloads.Workload { return workloads.NewStrassen(64, 16, true) }},
	}
}

// runDetection executes fresh instances under one detector, timing only the
// instrumented run (setup and verification are excluded).
func runDetection(b *testing.B, f workloads.Factory, mode stint.Detector, timeAH bool) *stint.Report {
	b.Helper()
	return runDetectionOpts(b, f, stint.Options{Detector: mode, TimeAccessHistory: timeAH})
}

// runDetectionOpts is runDetection with full Options control (async mode).
// One Runner serves every iteration: the arena rewinds and the Runner
// resets between runs, so each fresh workload instance re-derives identical
// buffer addresses over the warm pools instead of paying
// allocate-per-iteration. Reset happens with the timer stopped — the timed
// region is exactly the instrumented run, as before.
func runDetectionOpts(b *testing.B, f workloads.Factory, opts stint.Options) *stint.Report {
	b.Helper()
	mode := opts.Detector
	r, err := stint.NewRunner(opts)
	if err != nil {
		b.Fatal(err)
	}
	var last *stint.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := f()
		r.Reset()
		r.Arena().Reset()
		w.Setup(r)
		b.StartTimer()
		rep, err := r.Run(w.Run)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Racy() {
			b.Fatalf("%s under %v reported %d races", w.Name(), mode, rep.RaceCount)
		}
		if err := w.Verify(); err != nil {
			b.Fatal(err)
		}
		last = rep
		b.StartTimer()
	}
	b.StopTimer()
	return last
}

// BenchmarkFig1 measures the vanilla detector's component breakdown:
// baseline execution, reachability maintenance only, and full detection.
func BenchmarkFig1(b *testing.B) {
	modes := []stint.Detector{stint.DetectorOff, stint.DetectorReachOnly, stint.DetectorVanilla}
	for _, wl := range benchFactories() {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%v", wl.name, mode), func(b *testing.B) {
				rep := runDetection(b, wl.f, mode, false)
				if mode == stint.DetectorVanilla {
					b.ReportMetric(float64(rep.Stats.ReadAccesses), "reads")
					b.ReportMetric(float64(rep.Stats.WriteAccesses), "writes")
				}
			})
		}
	}
}

// BenchmarkFig5 measures the four detector versions of the paper's main
// result table.
func BenchmarkFig5(b *testing.B) {
	modes := []stint.Detector{
		stint.DetectorVanilla, stint.DetectorCompiler,
		stint.DetectorCompRTS, stint.DetectorSTINT,
	}
	for _, wl := range benchFactories() {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%v", wl.name, mode), func(b *testing.B) {
				runDetection(b, wl.f, mode, false)
			})
		}
	}
}

// BenchmarkFig5Async repeats the Figure 5 measurement for the two runtime
// detectors with Options.Async on, pipelining detection behind the batched
// event stream. Each run also reports bytes-per-event — the compact wire
// footprint of the stream — and detect-busy-ms — the detector
// goroutine's processing time — because the headline ns/op only shows the
// overlap win when GOMAXPROCS >= 2: on a single core the producer and the
// detector timeshare, so wall clock is the sum of the two sides plus the
// stream transport, not their max. Compare against the matching
// BenchmarkFig5 cases for the sync baseline.
func BenchmarkFig5Async(b *testing.B) {
	modes := []stint.Detector{stint.DetectorCompRTS, stint.DetectorSTINT}
	for _, wl := range benchFactories() {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%v", wl.name, mode), func(b *testing.B) {
				rep := runDetectionOpts(b, wl.f, stint.Options{Detector: mode, Async: true})
				b.ReportMetric(float64(rep.Stats.PipelineDetectTime.Nanoseconds())/1e6, "detect-busy-ms")
				if n := rep.Stats.EventsStreamed; n > 0 {
					b.ReportMetric(float64(rep.Stats.StreamBytes)/float64(n), "bytes-per-event")
				}
			})
		}
	}
}

// BenchmarkFig5Sharded repeats the Figure 5 measurement with detection
// partitioned across 4 page-sharded workers (Options.DetectShards). Beyond
// the headline ns/op it reports the utilization split: detect-busy-ms sums
// the workers, seq-busy-ms is the sequencer's labeling-and-routing time,
// and max-shard-ms is the busiest worker — the sharded pipeline's
// multi-core critical path. On a single core the workers timeshare, so
// compare max-shard-ms against BenchmarkFig5Async's detect-busy-ms for the
// parallelism headroom rather than expecting a wall-clock win.
func BenchmarkFig5Sharded(b *testing.B) {
	modes := []stint.Detector{stint.DetectorCompRTS, stint.DetectorSTINT}
	for _, wl := range benchFactories() {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%v", wl.name, mode), func(b *testing.B) {
				rep := runDetectionOpts(b, wl.f, stint.Options{Detector: mode, Async: true, DetectShards: 4})
				b.ReportMetric(float64(rep.Stats.PipelineDetectTime.Nanoseconds())/1e6, "detect-busy-ms")
				b.ReportMetric(float64(rep.SequencerBusy.Nanoseconds())/1e6, "seq-busy-ms")
				if n := rep.Stats.EventsStreamed; n > 0 {
					b.ReportMetric(float64(rep.Stats.StreamBytes)/float64(n), "bytes-per-event")
				}
				var max time.Duration
				for _, d := range rep.ShardBusy {
					if d > max {
						max = d
					}
				}
				b.ReportMetric(float64(max.Nanoseconds())/1e6, "max-shard-ms")
			})
		}
	}
}

// BenchmarkFig5ShardedEncoding pits the two wire encodings against each
// other on the sharded pipeline at 4 shards for the two workloads ROADMAP
// names (sort, fft): compact-blocks must not cost wall clock against the
// fixed 16-byte stream now that decoding is a block kernel rather than a
// per-event varint loop. Run with GOMAXPROCS=4 for the true-overlap
// measurement; on fewer cores the stages timeshare and the comparison
// degenerates to total CPU, which is the harder bar for the compact side
// (it pays encode+decode for bandwidth it can't cash). ev/blk reports how
// well the stream blocks (near 64 is healthy; low flags degenerate
// blocking as the cause of any gap).
func BenchmarkFig5ShardedEncoding(b *testing.B) {
	for _, wl := range benchFactories() {
		if wl.name != "sort" && wl.name != "fft" {
			continue
		}
		for _, enc := range []struct {
			name      string
			nocompact bool
		}{{"compact-blocks", false}, {"fixed", true}} {
			b.Run(fmt.Sprintf("%s/%s", wl.name, enc.name), func(b *testing.B) {
				rep := runDetectionOpts(b, wl.f, stint.Options{
					Detector: stint.DetectorSTINT, Async: true, DetectShards: 4,
					DisableCompactEvents: enc.nocompact,
				})
				if n := rep.Stats.EventsStreamed; n > 0 {
					b.ReportMetric(float64(rep.Stats.StreamBytes)/float64(n), "bytes-per-event")
				}
				var events, blocks uint64
				for _, l := range rep.ShardLoad {
					events += l.EventsScanned
					blocks += l.BlocksDecoded
				}
				if blocks > 0 {
					b.ReportMetric(float64(events)/float64(blocks), "ev-per-blk")
				}
			})
		}
	}
}

// BenchmarkFig5ParallelDetect repeats the Figure 5 measurement with the
// program itself executing in parallel (Options.ParallelDetect) over 4
// detection shards. exec-busy-ms sums the task goroutines' execution-and-
// encoding time — divide by the core count for the executor side's
// multi-core floor — while merge-busy-ms is the deterministic merge's
// serial labeling-and-reordering time and max-shard-ms the busiest
// detection worker; the pipeline's critical path is the max of the three.
// On a single core everything timeshares, so read the busy split for
// headroom rather than expecting a wall-clock win over BenchmarkFig5.
func BenchmarkFig5ParallelDetect(b *testing.B) {
	modes := []stint.Detector{stint.DetectorCompRTS, stint.DetectorSTINT}
	for _, wl := range benchFactories() {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%v", wl.name, mode), func(b *testing.B) {
				rep := runDetectionOpts(b, wl.f, stint.Options{Detector: mode, ParallelDetect: true, DetectShards: 4})
				b.ReportMetric(float64(rep.Stats.PipelineDetectTime.Nanoseconds())/1e6, "detect-busy-ms")
				b.ReportMetric(float64(rep.ExecutorBusy.Nanoseconds())/1e6, "exec-busy-ms")
				b.ReportMetric(float64(rep.SequencerBusy.Nanoseconds())/1e6, "merge-busy-ms")
				var max time.Duration
				for _, d := range rep.ShardBusy {
					if d > max {
						max = d
					}
				}
				b.ReportMetric(float64(max.Nanoseconds())/1e6, "max-shard-ms")
			})
		}
	}
}

// BenchmarkFig5RacyQuiesce measures per-page quiescing on the racy
// workload variants, where it earns its keep: a hot racy page keeps
// producing the same races, and once PageQuiesceThreshold of them are
// recorded the page's history is retired — subsequent accesses to it cost a
// page lookup and nothing else. The quiesce-off/quiesce-on pair reports
// hist-bytes-peak (the live access-history footprint quiescing shrinks),
// pages-quiesced, and the race count that survives the threshold. The
// race-free Figure 5 workloads are deliberately absent: quiescing never
// triggers there, and TestQuiesceRaceFreeZeroDelta pins the zero-delta.
func BenchmarkFig5RacyQuiesce(b *testing.B) {
	wls := []struct {
		name string
		f    workloads.Factory
	}{
		{"mmul-racy", func() workloads.Workload { return workloads.NewRacyMMul(64, 16) }},
		{"heat-racy", func() workloads.Workload { return workloads.NewRacyHeat(64, 64, 8, 4) }},
		{"sort-racy", func() workloads.Workload { return workloads.NewRacySort(30000, 512) }},
	}
	for _, wl := range wls {
		for _, q := range []struct {
			name      string
			threshold int
		}{{"quiesce-off", 0}, {"quiesce-on", 4}} {
			b.Run(fmt.Sprintf("%s/%s", wl.name, q.name), func(b *testing.B) {
				r, err := stint.NewRunner(stint.Options{
					Detector:             stint.DetectorSTINT,
					PageQuiesceThreshold: q.threshold,
				})
				if err != nil {
					b.Fatal(err)
				}
				var last *stint.Report
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					w := wl.f()
					r.Reset()
					r.Arena().Reset()
					w.Setup(r)
					b.StartTimer()
					rep, err := r.Run(w.Run)
					b.StopTimer()
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Racy() {
						b.Fatalf("%s found no races; the quiesce measurement is vacuous", w.Name())
					}
					if err := w.Verify(); err != nil {
						b.Fatal(err)
					}
					last = rep
					b.StartTimer()
				}
				b.StopTimer()
				b.ReportMetric(float64(last.Stats.HistoryBytesPeak), "hist-bytes-peak")
				b.ReportMetric(float64(last.Stats.PagesQuiesced), "pages-quiesced")
				b.ReportMetric(float64(last.RaceCount), "races")
			})
		}
	}
}

// BenchmarkFig6 reports the access and interval statistics behind Figure 6
// as benchmark metrics (counts, not timings).
func BenchmarkFig6(b *testing.B) {
	for _, wl := range benchFactories() {
		b.Run(wl.name, func(b *testing.B) {
			rep := runDetection(b, wl.f, stint.DetectorSTINT, false)
			st := rep.Stats
			b.ReportMetric(float64(st.ReadAccesses+st.WriteAccesses), "accesses")
			b.ReportMetric(float64(st.ReadIntervals+st.WriteIntervals), "intervals")
			if ivs := st.ReadIntervals + st.WriteIntervals; ivs > 0 {
				b.ReportMetric(float64(st.ReadIntervalBytes+st.WriteIntervalBytes)/float64(ivs), "B/interval")
			}
		})
	}
}

// BenchmarkFig7 measures access-history update time: the comp+rts hashmap
// vs the STINT treap, reported as ah-ns/op alongside total time.
func BenchmarkFig7(b *testing.B) {
	for _, wl := range benchFactories() {
		for _, mode := range []stint.Detector{stint.DetectorCompRTS, stint.DetectorSTINT} {
			b.Run(fmt.Sprintf("%s/%v", wl.name, mode), func(b *testing.B) {
				rep := runDetection(b, wl.f, mode, true)
				b.ReportMetric(float64(rep.Stats.AccessHistoryTime.Nanoseconds()), "ah-ns")
			})
		}
	}
}

// BenchmarkFig8 sweeps input sizes for fft, mmul, and sort under comp+rts
// and STINT, reporting the treap traversal detail of the paper's Figure 8.
func BenchmarkFig8(b *testing.B) {
	sweeps := []struct {
		name string
		fs   []workloads.Factory
	}{
		{"fft", []workloads.Factory{
			func() workloads.Workload { return workloads.NewFFT(2048, 64) },
			func() workloads.Workload { return workloads.NewFFT(4096, 64) },
			func() workloads.Workload { return workloads.NewFFT(8192, 64) },
		}},
		{"mmul", []workloads.Factory{
			func() workloads.Workload { return workloads.NewMMul(48, 16) },
			func() workloads.Workload { return workloads.NewMMul(64, 16) },
			func() workloads.Workload { return workloads.NewMMul(96, 16) },
		}},
		{"sort", []workloads.Factory{
			func() workloads.Workload { return workloads.NewSort(15000, 512) },
			func() workloads.Workload { return workloads.NewSort(30000, 512) },
			func() workloads.Workload { return workloads.NewSort(60000, 512) },
		}},
	}
	for _, sweep := range sweeps {
		for i, f := range sweep.fs {
			for _, mode := range []stint.Detector{stint.DetectorCompRTS, stint.DetectorSTINT} {
				b.Run(fmt.Sprintf("%s/size%d/%v", sweep.name, i, mode), func(b *testing.B) {
					rep := runDetection(b, f, mode, true)
					st := rep.Stats
					b.ReportMetric(float64(st.AccessHistoryTime.Nanoseconds()), "ah-ns")
					if mode == stint.DetectorSTINT && st.TreapOps > 0 {
						b.ReportMetric(float64(st.TreapOps), "treap-ops")
						b.ReportMetric(float64(st.TreapNodesVisited)/float64(st.TreapOps), "nodes/treap-op")
						b.ReportMetric(float64(st.TreapOverlaps)/float64(st.TreapOps), "overlaps/treap-op")
					}
					if mode == stint.DetectorCompRTS {
						b.ReportMetric(float64(st.HashOps), "hash-ops")
					}
				})
			}
		}
	}
}

// BenchmarkAblationStores compares the treap against the plain-BST and
// redundant-interval-skiplist access histories on two contrasting
// workloads: sort (treap-friendly, large intervals) and fft (treap-hostile,
// many small intervals).
func BenchmarkAblationStores(b *testing.B) {
	wls := []struct {
		name string
		f    workloads.Factory
	}{
		{"sort", func() workloads.Workload { return workloads.NewSort(30000, 512) }},
		{"fft", func() workloads.Workload { return workloads.NewFFT(4096, 64) }},
	}
	modes := []stint.Detector{
		stint.DetectorSTINT, stint.DetectorSTINTUnbalanced, stint.DetectorSTINTSkiplist,
	}
	for _, wl := range wls {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%s/%v", wl.name, mode), func(b *testing.B) {
				rep := runDetection(b, wl.f, mode, false)
				b.ReportMetric(float64(rep.Stats.AccessHistoryBytes), "hist-bytes")
			})
		}
	}
}

// BenchmarkHookOverhead isolates the per-access instrumentation cost that
// every detector configuration pays: a word hook into the bit hashmap.
func BenchmarkHookOverhead(b *testing.B) {
	benchHookOverhead(b, false)
}

// BenchmarkHookOverheadAsync is the same hook loop with Options.Async: the
// hook becomes an event append plus a ring handoff every batch, and the
// hashmap work moves to the detector goroutine. The sync/async pair is the
// per-access price of the pipeline transport.
func BenchmarkHookOverheadAsync(b *testing.B) {
	benchHookOverhead(b, true)
}

// BenchmarkRunnerReset times Runner.Reset on a dirty, warm Runner — the
// per-trace lifecycle cost a reused Runner pays between runs. The run that
// dirties the Runner happens with the timer stopped; only the reset walk
// is measured, and the headline property is allocs/op == 0: resetting
// rewinds retained slabs and pools without touching the heap.
func BenchmarkRunnerReset(b *testing.B) {
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT})
	if err != nil {
		b.Fatal(err)
	}
	buf := r.Arena().AllocWords("data", 1<<12)
	prog := func(t *stint.Task) {
		t.Spawn(func(c *stint.Task) {
			c.StoreRange(buf, 0, 1<<11)
			c.LoadRange(buf, 0, 1<<12)
		})
		t.StoreRange(buf, 1<<11, 1<<11)
		t.Sync()
	}
	if _, err := r.Run(prog); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := r.Run(prog); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		r.Reset()
	}
}

func benchHookOverhead(b *testing.B, async bool) {
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT, Async: async})
	if err != nil {
		b.Fatal(err)
	}
	buf := r.Arena().AllocWords("data", 1<<16)
	if _, err := r.Run(func(t *stint.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Load(buf, i&(1<<16-1))
		}
		// Timer left running: Run's return drains the pipeline, so the
		// async variant pays for detecting every event it emitted —
		// excluding the drain would make async look artificially free.
	}); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}
