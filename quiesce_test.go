package stint

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// The quiesce suite pins the per-page quiescing contract: quiesce decisions
// are page-local and taken at deterministic points in the serial order, so
// the race report with quiescing on is identical across every execution
// mode, a strict subset of the quiesce-off report, and byte-identical to
// the quiesce-off report on programs that never trip the threshold. The
// MaxHistoryBytes hard cap layers on top: a structured error, never a
// panic, with the Runner recovering on its next Run.

// qPageWords is the word count of one 64 KiB shadow page.
const qPageWords = 1 << 14

// quiesceRacyActs builds a program whose parallel overlapping writes spread
// races over several shadow pages, including ranges that straddle page
// boundaries — the PageSplit edge the sharded workers split locally.
func quiesceRacyActs(pages int) []act {
	var acts []act
	for p := 0; p < pages; p++ {
		base := p * qPageWords
		acts = append(acts,
			act{kind: 'S', body: []act{{kind: 'W', buf: 0, idx: base, n: 96}}},
			act{kind: 'S', body: []act{{kind: 'W', buf: 0, idx: base + 48, n: 96}}},
			act{kind: 'S', body: []act{{kind: 'L', buf: 0, idx: base, n: 144}}},
		)
	}
	// Page-straddling racy ranges: each spans a full page plus change, so
	// wherever the buffer lands in the address space the span crosses at
	// least one 64 KiB boundary while its pages quiesce around it.
	for p := 0; p+1 < pages; p++ {
		start := p * qPageWords
		acts = append(acts,
			act{kind: 'S', body: []act{{kind: 'W', buf: 0, idx: start, n: qPageWords + 64}}},
		)
	}
	acts = append(acts, act{kind: 'Y'})
	return acts
}

// quiesceRun executes acts over one multi-page buffer under opts, with the
// tiny pipeline geometry the equivalence suite uses so quiescing triggers
// mid-batch.
func quiesceRun(t *testing.T, opts Options, words int, acts []act) *Report {
	t.Helper()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Async || opts.ParallelDetect {
		r.asyncBatchEvents, r.asyncRingDepth = 8, 2
	}
	buf := r.Arena().AllocWords("q", words)
	rep, err := r.Run(func(task *Task) { runActs(task, []*Buffer{buf}, acts) })
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestQuiesceDifferentialModes is the tentpole equivalence check: with a
// small PageQuiesceThreshold on a racy multi-page program, the races, race
// count, strand count, and pages-quiesced count are identical across
// {sync, async, shards 1/2/4, parallel-detect} × {compact, fixed}. Full
// stat identity is deliberately not asserted — the producer-side drops
// legitimately elide hook calls the synchronous run counts.
func TestQuiesceDifferentialModes(t *testing.T) {
	const pages = 5
	acts := quiesceRacyActs(pages)
	for _, d := range shardTestDetectors {
		t.Run(fmt.Sprintf("%v", d), func(t *testing.T) {
			base := Options{Detector: d, MaxRacesRecorded: 1 << 20, PageQuiesceThreshold: 2}
			sync := quiesceRun(t, base, pages*qPageWords, acts)
			if sync.Stats.PagesQuiesced == 0 {
				t.Fatalf("%v: no pages quiesced; the differential is vacuous", d)
			}
			if sync.RaceCount == 0 {
				t.Fatalf("%v: fixture program found no races", d)
			}
			check := func(name string, got *Report) {
				t.Helper()
				if got.RaceCount != sync.RaceCount || got.Strands != sync.Strands {
					t.Fatalf("%s: RaceCount/Strands %d/%d, sync %d/%d",
						name, got.RaceCount, got.Strands, sync.RaceCount, sync.Strands)
				}
				if !reflect.DeepEqual(got.Races, sync.Races) {
					t.Fatalf("%s: races diverge from sync\n got: %v\nsync: %v", name, got.Races, sync.Races)
				}
				if got.Stats.PagesQuiesced != sync.Stats.PagesQuiesced {
					t.Fatalf("%s: PagesQuiesced %d, sync %d",
						name, got.Stats.PagesQuiesced, sync.Stats.PagesQuiesced)
				}
			}
			for _, nocompact := range []bool{false, true} {
				opts := base
				opts.DisableCompactEvents = nocompact
				enc := map[bool]string{false: "compact", true: "fixed"}[nocompact]

				async := opts
				async.Async = true
				check("async/"+enc, quiesceRun(t, async, pages*qPageWords, acts))

				for _, n := range []int{1, 2, 4} {
					sharded := async
					sharded.DetectShards = n
					check(fmt.Sprintf("shards=%d/%s", n, enc),
						quiesceRun(t, sharded, pages*qPageWords, acts))
				}

				par := opts
				par.ParallelDetect = true
				par.DetectShards = 2
				check("parallel-detect/"+enc, quiesceRun(t, par, pages*qPageWords, acts))
			}
		})
	}
}

// TestQuiesceSubsetOfFullReport pins the two threshold semantics: the
// quiesce-on race list is a multiset subset of the quiesce-off list (a page
// only ever stops reporting, never invents), and a threshold the program
// never reaches reproduces the quiesce-off report byte for byte.
func TestQuiesceSubsetOfFullReport(t *testing.T) {
	const pages = 4
	acts := quiesceRacyActs(pages)
	for _, d := range shardTestDetectors {
		t.Run(fmt.Sprintf("%v", d), func(t *testing.T) {
			off := quiesceRun(t, Options{Detector: d, MaxRacesRecorded: 1 << 20}, pages*qPageWords, acts)
			on := quiesceRun(t, Options{Detector: d, MaxRacesRecorded: 1 << 20, PageQuiesceThreshold: 2},
				pages*qPageWords, acts)
			if on.Stats.PagesQuiesced == 0 {
				t.Fatal("threshold 2 quiesced nothing")
			}
			if on.RaceCount >= off.RaceCount {
				t.Fatalf("quiescing dropped no races: on %d, off %d", on.RaceCount, off.RaceCount)
			}
			remaining := make(map[Race]int, len(off.Races))
			for _, rc := range off.Races {
				remaining[rc]++
			}
			for _, rc := range on.Races {
				if remaining[rc] == 0 {
					t.Fatalf("quiesce-on reported a race absent from quiesce-off: %+v", rc)
				}
				remaining[rc]--
			}
			// A threshold above the per-page race count is a no-op: the full
			// report, stats included, is byte-identical to quiescing off.
			high := quiesceRun(t, Options{Detector: d, MaxRacesRecorded: 1 << 20, PageQuiesceThreshold: 1 << 30},
				pages*qPageWords, acts)
			if high.Stats.PagesQuiesced != 0 {
				t.Fatalf("unreachable threshold quiesced %d pages", high.Stats.PagesQuiesced)
			}
			if !reflect.DeepEqual(high.Races, off.Races) ||
				normStats(high.Stats) != normStats(off.Stats) ||
				high.Stats.HistoryBytesPeak != off.Stats.HistoryBytesPeak {
				t.Fatalf("unreachable threshold changed the report\n got: %+v\n off: %+v",
					normStats(high.Stats), normStats(off.Stats))
			}
		})
	}
}

// TestQuiesceRaceFreeZeroDelta: on a race-free program quiescing can never
// trigger, so enabling it must not change a byte of the report — races,
// stats, and footprint peak included — in any execution mode.
func TestQuiesceRaceFreeZeroDelta(t *testing.T) {
	var mk func(lo, hi, depth int) []act
	mk = func(lo, hi, depth int) []act {
		if depth == 0 || hi-lo < 4 {
			return []act{
				{kind: 'L', buf: 0, idx: lo, n: hi - lo},
				{kind: 'W', buf: 0, idx: lo, n: hi - lo},
			}
		}
		mid := (lo + hi) / 2
		return []act{
			{kind: 'S', body: mk(lo, mid, depth-1)},
			{kind: 'S', body: mk(mid, hi, depth-1)},
			{kind: 'Y'},
			{kind: 'L', buf: 0, idx: lo, n: hi - lo},
		}
	}
	const words = 3 * qPageWords
	acts := mk(0, words, 6)
	modes := []Options{
		{Detector: DetectorSTINT},
		{Detector: DetectorSTINT, Async: true},
		{Detector: DetectorSTINT, Async: true, DetectShards: 2},
		{Detector: DetectorCompRTS, Async: true},
	}
	for _, opts := range modes {
		name := fmt.Sprintf("%v-async=%v-shards=%d", opts.Detector, opts.Async, opts.DetectShards)
		off := quiesceRun(t, opts, words, acts)
		if off.RaceCount != 0 {
			t.Fatalf("%s: fixture program races", name)
		}
		on := opts
		on.PageQuiesceThreshold = 2
		got := quiesceRun(t, on, words, acts)
		if !reflect.DeepEqual(got.Races, off.Races) ||
			got.Strands != off.Strands ||
			normStats(got.Stats) != normStats(off.Stats) ||
			got.Stats.HistoryBytesPeak != off.Stats.HistoryBytesPeak ||
			got.Stats.PagesQuiesced != 0 {
			t.Fatalf("%s: quiescing changed a race-free report\n on: %+v\noff: %+v",
				name, got.Stats, off.Stats)
		}
	}
}

// TestHistoryCapStructuredError pins the MaxHistoryBytes contract: a run
// whose retained footprint crosses the cap returns a structured error (no
// report, no panic) that errors.Is-matches ErrHistoryCap and errors.As-
// exposes the budget and the tripping estimate; the Runner stays valid and
// its next Run auto-resets, exactly like the ErrTooManyEvents recovery.
func TestHistoryCapStructuredError(t *testing.T) {
	const pages = 4
	acts := quiesceRacyActs(pages)
	modes := []Options{
		{Detector: DetectorSTINT, MaxHistoryBytes: 1},
		{Detector: DetectorCompRTS, MaxHistoryBytes: 1},
		{Detector: DetectorSTINT, Async: true, MaxHistoryBytes: 1},
		{Detector: DetectorSTINT, Async: true, DetectShards: 2, MaxHistoryBytes: 1},
		{Detector: DetectorSTINT, ParallelDetect: true, DetectShards: 2, MaxHistoryBytes: 1},
	}
	for _, opts := range modes {
		name := fmt.Sprintf("%v-async=%v-par=%v-shards=%d",
			opts.Detector, opts.Async, opts.ParallelDetect, opts.DetectShards)
		opts.MaxRacesRecorded = 1 << 20
		r, err := NewRunner(opts)
		if err != nil {
			t.Fatal(err)
		}
		if opts.Async || opts.ParallelDetect {
			r.asyncBatchEvents, r.asyncRingDepth = 8, 2
		}
		buf := r.Arena().AllocWords("q", pages*qPageWords)
		rep, err := r.Run(func(task *Task) { runActs(task, []*Buffer{buf}, acts) })
		if err == nil {
			t.Fatalf("%s: expected a history-cap error, got a report (%d races)", name, rep.RaceCount)
		}
		if rep != nil {
			t.Fatalf("%s: got a report alongside the error", name)
		}
		if !errors.Is(err, ErrHistoryCap) {
			t.Fatalf("%s: error does not match ErrHistoryCap: %v", name, err)
		}
		var capErr *HistoryCapError
		if !errors.As(err, &capErr) {
			t.Fatalf("%s: error is not a *HistoryCapError: %v", name, err)
		}
		if capErr.Bytes == 0 || capErr.Bytes <= capErr.Limit {
			t.Fatalf("%s: implausible cap error %+v", name, capErr)
		}
		// Recovery: the next Run auto-resets. A program with no accesses
		// retains no history, so it completes under even this 1-byte cap.
		if _, err := r.Run(func(task *Task) {
			task.Spawn(func(*Task) {})
			task.Sync()
		}); err != nil {
			t.Fatalf("%s: Runner did not recover after the cap error: %v", name, err)
		}
		// And a second over-cap run trips again rather than misbehaving.
		if _, err := r.Run(func(task *Task) { runActs(task, []*Buffer{buf}, acts) }); !errors.Is(err, ErrHistoryCap) {
			t.Fatalf("%s: second over-cap run: %v", name, err)
		}
	}
}

// TestQuiesceResetClearsState: a quiesce-heavy run followed by Reset must
// not bleed into the next run — same races, same PagesQuiesced, with the
// pages revived from their directory tombstones.
func TestQuiesceResetClearsState(t *testing.T) {
	const pages = 4
	acts := quiesceRacyActs(pages)
	for _, d := range shardTestDetectors {
		opts := Options{Detector: d, MaxRacesRecorded: 1 << 20, PageQuiesceThreshold: 2}
		r, err := NewRunner(opts)
		if err != nil {
			t.Fatal(err)
		}
		buf := r.Arena().AllocWords("q", pages*qPageWords)
		run := func() *Report {
			rep, err := r.Run(func(task *Task) { runActs(task, []*Buffer{buf}, acts) })
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		first := run()
		if first.Stats.PagesQuiesced == 0 {
			t.Fatalf("%v: no pages quiesced", d)
		}
		for i := 0; i < 3; i++ {
			got := run() // Run auto-resets the dirty Runner
			if !reflect.DeepEqual(got.Races, first.Races) ||
				got.Stats.PagesQuiesced != first.Stats.PagesQuiesced ||
				normStats(got.Stats) != normStats(first.Stats) {
				t.Fatalf("%v run %d: quiesce state bled across Reset\nfirst: %+v\n got: %+v",
					d, i+1, normStats(first.Stats), normStats(got.Stats))
			}
		}
	}
}

// TestMaxRacesDefaultUnified is the defaulting regression test: a zero
// MaxRacesRecorded means DefaultMaxRacesRecorded at every entry point, so a
// program with more races than the default gets exactly the default number
// recorded while RaceCount keeps counting.
func TestMaxRacesDefaultUnified(t *testing.T) {
	// One pair of parallel single-word writes per word: each pair is an
	// independent race, so the program's race count is well above the
	// default recording cap.
	var acts []act
	for i := 0; i < 2*DefaultMaxRacesRecorded; i++ {
		acts = append(acts,
			act{kind: 'S', body: []act{{kind: 'W', buf: 0, idx: 2 * i, n: 1}}},
			act{kind: 'S', body: []act{{kind: 'W', buf: 0, idx: 2 * i, n: 1}}},
		)
	}
	acts = append(acts, act{kind: 'Y'})
	rep := quiesceRun(t, Options{Detector: DetectorSTINT}, 4*DefaultMaxRacesRecorded, acts)
	if rep.RaceCount <= DefaultMaxRacesRecorded {
		t.Fatalf("fixture program found only %d races; want > %d", rep.RaceCount, DefaultMaxRacesRecorded)
	}
	if len(rep.Races) != DefaultMaxRacesRecorded {
		t.Fatalf("zero MaxRacesRecorded recorded %d races; want the default %d",
			len(rep.Races), DefaultMaxRacesRecorded)
	}
}
