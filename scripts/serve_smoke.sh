#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the stint-serve trace-ingest service.
#
# Records a racy workload trace, starts stint-serve on a kernel-chosen
# port, uploads the trace twice (the second upload replays on the same warm
# Runner the first one dirtied — reuse must not change the report), polls
# both results, and asserts the served race set is byte-identical to an
# offline stint-replay of the same file. Also checks /v1/statusz accounting
# and the oversize rejection path.
#
# Usage: scripts/serve_smoke.sh [workload]   (default mmul-racy)
set -euo pipefail
cd "$(dirname "$0")/.."

workload="${1:-mmul-racy}"
races=64
tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== serve smoke: workload $workload, GOMAXPROCS=${GOMAXPROCS:-default} =="

go build -o "$tmp/stint" ./cmd/stint
go build -o "$tmp/stint-replay" ./cmd/stint-replay
go build -o "$tmp/stint-serve" ./cmd/stint-serve

# Record the trace with detection off — the trace exists to be analyzed.
"$tmp/stint" -workload "$workload" -detector off -trace-out "$tmp/trace.bin" >/dev/null
echo "recorded $(wc -c < "$tmp/trace.bin") trace bytes"

# Offline reference: the race lines stint-replay prints are Race.String(),
# the same canonical form the service returns.
"$tmp/stint-replay" -detector stint -races "$races" "$tmp/trace.bin" > "$tmp/replay.out"
grep '^  race:' "$tmp/replay.out" | sed 's/^  //' | sort > "$tmp/expected.races"
if ! [ -s "$tmp/expected.races" ]; then
    echo "FAIL: offline replay of $workload found no races; smoke needs a racy trace" >&2
    exit 1
fi
echo "offline replay: $(wc -l < "$tmp/expected.races") recorded races"

"$tmp/stint-serve" -addr 127.0.0.1:0 -runners 2 -races "$races" > "$tmp/serve.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$tmp/serve.log" 2>/dev/null && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$tmp/serve.log" >&2; exit 1; }
    sleep 0.1
done
base="http://$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$tmp/serve.log" | head -1)"
echo "server at $base"

upload() {
    curl -sf --data-binary @"$tmp/trace.bin" "$base/v1/traces" |
        sed 's/.*"id":"\([^"]*\)".*/\1/'
}

# poll_races ID OUT — wait for a terminal result and write its sorted race
# list to OUT. Race strings contain no embedded quotes, so "," is a safe
# element separator.
poll_races() {
    local id="$1" out="$2" body=""
    for _ in $(seq 1 300); do
        body="$(curl -sf "$base/v1/results/$id")"
        case "$body" in
        *'"status":"done"'*)
            printf '%s' "$body" |
                grep -o '"races":\[[^]]*\]' |
                sed 's/^"races":\[//; s/\]$//; s/","/\n/g' |
                tr -d '"' | sort > "$out"
            return 0 ;;
        *'"status":"error"'*)
            echo "FAIL: result $id errored: $body" >&2
            return 1 ;;
        esac
        sleep 0.1
    done
    echo "FAIL: result $id never completed" >&2
    return 1
}

id1="$(upload)"
poll_races "$id1" "$tmp/served1.races"
id2="$(upload)"
poll_races "$id2" "$tmp/served2.races"

diff -u "$tmp/expected.races" "$tmp/served1.races" || {
    echo "FAIL: served race set diverges from offline stint-replay" >&2; exit 1; }
diff -u "$tmp/served1.races" "$tmp/served2.races" || {
    echo "FAIL: warm-Runner reuse changed the race set between uploads" >&2; exit 1; }
echo "race sets match offline replay across both uploads ($(wc -l < "$tmp/served1.races") races)"

statusz="$(curl -sf "$base/v1/statusz")"
case "$statusz" in
*'"admitted":2'*) : ;;
*) echo "FAIL: statusz did not count 2 admissions: $statusz" >&2; exit 1 ;;
esac
case "$statusz" in
*'"completed":2'*) : ;;
*) echo "FAIL: statusz did not count 2 completions: $statusz" >&2; exit 1 ;;
esac
echo "statusz OK: $statusz"
echo "PASS"
