#!/usr/bin/env bash
# benchdiff.sh — machine-readable benchmark emission and comparison.
#
# Usage:
#   scripts/benchdiff.sh emit [BENCH_REGEX] [PKG...]
#       Run the matching benchmarks (default: BenchmarkFig5 in the root
#       package) with -benchmem and print one JSON object per benchmark to
#       stdout, tagged with the execution mode (sync / async / sharded,
#       derived from the benchmark name), commit, and date. `make bench-json`
#       redirects this into BENCH_<date>.json, seeding the repo's perf
#       trajectory. BENCHTIME overrides -benchtime (default 3x);
#       BENCHCOUNT=N keeps the best of N runs per benchmark.
#
#   scripts/benchdiff.sh diff OLD.json NEW.json
#       Join two emitted files by benchmark name and print per-benchmark
#       deltas for ns/op and allocs/op, with the mode in the first column.
#
#   scripts/benchdiff.sh check NEW.json OLD.json [OLD.json...]
#       Compare NEW against the union of the OLD snapshots (later files win
#       on name collisions) and exit 1 if any benchmark in any mode regressed
#       ns/op by more than ${BENCHDIFF_MAX_REGRESSION:-10} percent. `make
#       bench-diff-all` runs this against every checked-in BENCH_*.json.
#
# Snapshots emitted before the mode field existed are still comparable:
# diff and check derive the mode from the benchmark name when the field is
# absent.
set -euo pipefail

mode="${1:-emit}"

# awk helpers shared by diff and check: JSON field extraction and the
# name→mode fallback for pre-mode-field snapshots.
AWK_HELPERS='
function get(line, key,   re, s) {
    re = "\"" key "\":[^,}]*"
    if (match(line, re)) {
        s = substr(line, RSTART, RLENGTH)
        sub("\"" key "\":", "", s)
        gsub(/"/, "", s)
        return s
    }
    return ""
}
function modeof(line, name,   m) {
    m = get(line, "mode")
    if (m != "") return m
    if (name ~ /Fig5Async/) return "async"
    if (name ~ /Fig5Sharded/) return "sharded"
    return "sync"
}'

emit() {
    local regex="${1:-BenchmarkFig5}"
    shift || true
    local pkgs=("${@:-.}")
    local commit date goos goarch
    commit="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)"
    date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    # BENCHCOUNT > 1 runs each benchmark N times and keeps the fastest
    # sample per name (best-of-N): on noisy shared boxes a single draw can
    # misorder two benchmarks that differ by less than the scheduler
    # jitter, while the minimum is the stable estimate of what the code
    # costs when the machine gets out of the way.
    go test -run '^$' -bench "$regex" -benchmem -benchtime "${BENCHTIME:-3x}" -count "${BENCHCOUNT:-1}" "${pkgs[@]}" 2>&1 |
        awk -v commit="$commit" -v date="$date" '
        /^goos:/   { goos = $2 }
        /^goarch:/ { goarch = $2 }
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
            mode = "sync"
            if (name ~ /Fig5Async/) mode = "async"
            else if (name ~ /Fig5Sharded/) mode = "sharded"
            iters = $2
            ns = ""; bytes = ""; allocs = ""; extra = ""
            for (i = 3; i < NF; i++) {
                v = $i; unit = $(i + 1)
                if (unit == "ns/op") ns = v
                else if (unit == "B/op") bytes = v
                else if (unit == "allocs/op") allocs = v
                else if (unit ~ /^[A-Za-z]/) {
                    # custom b.ReportMetric units, e.g. seq-busy-ms
                    gsub(/"/, "", unit)
                    extra = extra sprintf(",\"%s\":%s", unit, v)
                }
            }
            if (ns == "") next
            if (!(name in best)) order[++cnt] = name
            if (!(name in best) || ns + 0 < best[name] + 0) {
                best[name] = ns
                line[name] = sprintf("{\"name\":\"%s\",\"mode\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", name, mode, iters, ns)
                if (bytes != "")  line[name] = line[name] sprintf(",\"bytes_per_op\":%s", bytes)
                if (allocs != "") line[name] = line[name] sprintf(",\"allocs_per_op\":%s", allocs)
                line[name] = line[name] extra
            }
        }
        END {
            for (i = 1; i <= cnt; i++) {
                n = order[i]
                printf "%s,\"goos\":\"%s\",\"goarch\":\"%s\",\"commit\":\"%s\",\"date\":\"%s\"}\n", line[n], goos, goarch, commit, date
            }
        }'
}

diff_files() {
    local old="$1" new="$2"
    awk "$AWK_HELPERS"'
    FNR == NR {
        n = get($0, "name")
        if (n != "") { ons[n] = get($0, "ns_per_op"); oal[n] = get($0, "allocs_per_op") }
        next
    }
    {
        n = get($0, "name")
        if (n == "" || !(n in ons)) next
        ns = get($0, "ns_per_op"); al = get($0, "allocs_per_op")
        dns = (ons[n] > 0) ? (ns - ons[n]) * 100.0 / ons[n] : 0
        dal = (oal[n] > 0) ? (al - oal[n]) * 100.0 / oal[n] : 0
        printf "%-8s %-50s ns/op %12.0f -> %12.0f (%+7.1f%%)   allocs/op %8d -> %8d (%+7.1f%%)\n", \
            modeof($0, n), n, ons[n], ns, dns, oal[n], al, dal
    }' "$old" "$new"
}

check_files() {
    awk -v max="${BENCHDIFF_MAX_REGRESSION:-10}" "$AWK_HELPERS"'
    FNR == 1 { fileno++ }
    fileno == 1 {
        n = get($0, "name")
        if (n == "") next
        if (!(n in nns)) order[++cnt] = n
        nns[n] = get($0, "ns_per_op")
        nmode[n] = modeof($0, n)
        next
    }
    {
        n = get($0, "name")
        if (n != "") ons[n] = get($0, "ns_per_op")
    }
    END {
        fail = 0; compared = 0
        for (i = 1; i <= cnt; i++) {
            n = order[i]
            if (!(n in ons) || ons[n] <= 0) continue
            compared++
            d = (nns[n] - ons[n]) * 100.0 / ons[n]
            flag = ""
            if (d > max) { flag = "  REGRESSION"; fail = 1 }
            printf "%-8s %-50s ns/op %12.0f -> %12.0f (%+7.1f%%)%s\n", \
                nmode[n], n, ons[n], nns[n], d, flag
        }
        if (compared == 0) { print "benchdiff: no overlapping benchmarks to compare" > "/dev/stderr"; exit 2 }
        if (fail) printf "benchdiff: FAIL: ns/op regression beyond %s%%\n", max > "/dev/stderr"
        exit fail
    }' "$@"
}

case "$mode" in
emit)
    shift || true
    emit "$@"
    ;;
diff)
    [ $# -eq 3 ] || { echo "usage: $0 diff OLD.json NEW.json" >&2; exit 2; }
    diff_files "$2" "$3"
    ;;
check)
    [ $# -ge 3 ] || { echo "usage: $0 check NEW.json OLD.json [OLD.json...]" >&2; exit 2; }
    shift
    check_files "$@"
    ;;
*)
    echo "usage: $0 emit [BENCH_REGEX] [PKG...] | $0 diff OLD.json NEW.json | $0 check NEW.json OLD.json..." >&2
    exit 2
    ;;
esac
