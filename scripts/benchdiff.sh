#!/usr/bin/env bash
# benchdiff.sh — machine-readable benchmark emission and comparison.
#
# Usage:
#   scripts/benchdiff.sh emit [BENCH_REGEX] [PKG...]
#       Run the matching benchmarks (default: BenchmarkFig5 in the root
#       package) with -benchmem and print one JSON object per benchmark to
#       stdout, tagged with the commit and date. `make bench-json` redirects
#       this into BENCH_<date>.json, seeding the repo's perf trajectory.
#
#   scripts/benchdiff.sh diff OLD.json NEW.json
#       Join two emitted files by benchmark name and print per-benchmark
#       deltas for ns/op and allocs/op.
set -euo pipefail

mode="${1:-emit}"

emit() {
    local regex="${1:-BenchmarkFig5}"
    shift || true
    local pkgs=("${@:-.}")
    local commit date goos goarch
    commit="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)"
    date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    go test -run '^$' -bench "$regex" -benchmem -benchtime "${BENCHTIME:-3x}" "${pkgs[@]}" 2>&1 |
        awk -v commit="$commit" -v date="$date" '
        /^goos:/   { goos = $2 }
        /^goarch:/ { goarch = $2 }
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
            iters = $2
            ns = ""; bytes = ""; allocs = ""; extra = ""
            for (i = 3; i < NF; i++) {
                v = $i; unit = $(i + 1)
                if (unit == "ns/op") ns = v
                else if (unit == "B/op") bytes = v
                else if (unit == "allocs/op") allocs = v
                else if (unit ~ /\//) {
                    gsub(/"/, "", unit)
                    extra = extra sprintf(",\"%s\":%s", unit, v)
                }
            }
            if (ns == "") next
            printf "{\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", name, iters, ns
            if (bytes != "")  printf ",\"bytes_per_op\":%s", bytes
            if (allocs != "") printf ",\"allocs_per_op\":%s", allocs
            printf "%s,\"goos\":\"%s\",\"goarch\":\"%s\",\"commit\":\"%s\",\"date\":\"%s\"}\n", extra, goos, goarch, commit, date
        }'
}

diff_files() {
    local old="$1" new="$2"
    awk '
    function get(line, key,   re, s) {
        re = "\"" key "\":[^,}]*"
        if (match(line, re)) {
            s = substr(line, RSTART, RLENGTH)
            sub("\"" key "\":", "", s)
            gsub(/"/, "", s)
            return s
        }
        return ""
    }
    FNR == NR {
        n = get($0, "name")
        if (n != "") { ons[n] = get($0, "ns_per_op"); oal[n] = get($0, "allocs_per_op") }
        next
    }
    {
        n = get($0, "name")
        if (n == "" || !(n in ons)) next
        ns = get($0, "ns_per_op"); al = get($0, "allocs_per_op")
        dns = (ons[n] > 0) ? (ns - ons[n]) * 100.0 / ons[n] : 0
        dal = (oal[n] > 0) ? (al - oal[n]) * 100.0 / oal[n] : 0
        printf "%-50s ns/op %12.0f -> %12.0f (%+7.1f%%)   allocs/op %8d -> %8d (%+7.1f%%)\n", \
            n, ons[n], ns, dns, oal[n], al, dal
    }' "$old" "$new"
}

case "$mode" in
emit)
    shift || true
    emit "$@"
    ;;
diff)
    [ $# -eq 3 ] || { echo "usage: $0 diff OLD.json NEW.json" >&2; exit 2; }
    diff_files "$2" "$3"
    ;;
*)
    echo "usage: $0 emit [BENCH_REGEX] [PKG...] | $0 diff OLD.json NEW.json" >&2
    exit 2
    ;;
esac
