package stage

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"stint/internal/detect"
)

// TestGraphSealOrdersMergeAfterStages checks the drain contract: merge runs
// only after every stage has returned, and Wait returns only after merge.
func TestGraphSealOrdersMergeAfterStages(t *testing.T) {
	g := NewGraph()
	var stagesDone atomic.Int32
	for i := 0; i < 4; i++ {
		g.Go(func() {
			time.Sleep(time.Millisecond)
			stagesDone.Add(1)
		})
	}
	merged := false
	g.Seal(func() {
		if n := stagesDone.Load(); n != 4 {
			t.Errorf("merge ran with %d/4 stages done", n)
		}
		merged = true
	})
	g.Wait()
	if !merged {
		t.Fatal("Wait returned before merge")
	}
}

// TestGraphEmpty pins the degenerate synchronous-path graph: no stages,
// nil merge, Wait returns.
func TestGraphEmpty(t *testing.T) {
	g := NewGraph()
	g.Seal(nil)
	g.Wait()
}

// TestGraphStagePanicPropagatesThroughWait pins the teardown contract: a
// panicking stage fires OnAbort exactly once, the merge is skipped, and
// Wait re-panics the first failure on the caller's goroutine.
func TestGraphStagePanicPropagatesThroughWait(t *testing.T) {
	g := NewGraph()
	var aborts atomic.Int32
	g.OnAbort(func() { aborts.Add(1) })
	g.Go(func() { panic("stage failure") })
	g.Go(func() { panic("second failure") })
	merged := false
	g.Seal(func() { merged = true })
	var got any
	func() {
		defer func() { got = recover() }()
		g.Wait()
	}()
	if got != "stage failure" && got != "second failure" {
		t.Fatalf("Wait re-panicked %v, want one of the stage failures", got)
	}
	if n := aborts.Load(); n != 1 {
		t.Fatalf("OnAbort fired %d times, want exactly 1", n)
	}
	if merged {
		t.Fatal("merge ran despite a failed stage")
	}
	if !g.Failed() {
		t.Fatal("Failed() = false after a stage panic")
	}
}

// TestGraphMergePanicPropagates checks a panic in the merge itself is also
// captured and re-raised by Wait.
func TestGraphMergePanicPropagates(t *testing.T) {
	g := NewGraph()
	g.Go(func() {})
	g.Seal(func() { panic("merge failure") })
	var got any
	func() {
		defer func() { got = recover() }()
		g.Wait()
	}()
	if got != "merge failure" {
		t.Fatalf("Wait re-panicked %v, want merge failure", got)
	}
}

// TestGraphCleanRunDoesNotAbort checks the hook stays quiet on success.
func TestGraphCleanRunDoesNotAbort(t *testing.T) {
	g := NewGraph()
	var aborts atomic.Int32
	g.OnAbort(func() { aborts.Add(1) })
	g.Go(func() {})
	g.Seal(nil)
	g.Wait()
	if aborts.Load() != 0 {
		t.Fatal("OnAbort fired on a clean run")
	}
	if g.Failed() {
		t.Fatal("Failed() = true on a clean run")
	}
}

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	t0 := time.Now().Add(-10 * time.Millisecond)
	m.Add(t0)
	m.Add(t0)
	if b := m.Busy(); b < 20*time.Millisecond {
		t.Fatalf("Busy() = %v, want >= 20ms", b)
	}
}

func TestMeterBatchSplit(t *testing.T) {
	var m Meter
	t0 := time.Now()
	m.AddBatch(t0, false)
	m.AddBatch(t0, true)
	m.AddBatch(t0, true)
	if m.Scanned() != 1 || m.Skipped() != 2 {
		t.Fatalf("scanned/skipped = %d/%d, want 1/2", m.Scanned(), m.Skipped())
	}
}

// race builds a distinguishable race for collector tests.
func race(addr uint64, cur int32) detect.Race {
	return detect.Race{Addr: addr, Size: 4, Prev: cur - 1, Cur: cur, CurWrite: true}
}

// TestCollectorKeepsSmallestCanonical feeds races in scrambled order and
// checks the collector retains the bound smallest under the canonical key,
// sorted.
func TestCollectorKeepsSmallestCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const total, keep = 200, 16
	seqs := rng.Perm(total)
	c := NewCollector(keep)
	for _, s := range seqs {
		c.Add(int32(s), race(uint64(s)*8, int32(s)))
	}
	got := c.Sorted()
	if len(got) != keep {
		t.Fatalf("retained %d races, want %d", len(got), keep)
	}
	for i, r := range got {
		if r.Cur != int32(i) {
			t.Fatalf("race %d has Cur %d, want %d (smallest seqs, ascending)", i, r.Cur, i)
		}
	}
}

// TestCollectorMergeMatchesSingle verifies the sharded merge property:
// races split across per-worker collectors and merged give the same slice
// as one collector fed everything.
func TestCollectorMergeMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const total, keep, workers = 300, 24, 4
	one := NewCollector(keep)
	parts := make([]*Collector, workers)
	for i := range parts {
		parts[i] = NewCollector(keep)
	}
	for _, s := range rng.Perm(total) {
		r := race(uint64(s)*4, int32(s))
		one.Add(int32(s), r)
		parts[rng.Intn(workers)].Add(int32(s), r)
	}
	merged := NewCollector(keep)
	for _, p := range parts {
		merged.Merge(p)
	}
	a, b := one.Sorted(), merged.Sorted()
	if len(a) != len(b) {
		t.Fatalf("merged retained %d races, single retained %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("race %d differs: single %+v, merged %+v", i, a[i], b[i])
		}
	}
}

// TestCollectorTieBreakOrder pins the canonical tie-break chain on equal
// sequential ranks: reads before writes, then address, size, previous
// access kind, and previous strand.
func TestCollectorTieBreakOrder(t *testing.T) {
	rs := []detect.Race{
		{Addr: 8, Size: 4, Prev: 1, Cur: 9, CurWrite: false},
		{Addr: 8, Size: 4, Prev: 1, Cur: 9, CurWrite: true},
		{Addr: 16, Size: 4, Prev: 1, Cur: 9, CurWrite: true},
		{Addr: 16, Size: 8, Prev: 1, Cur: 9, CurWrite: true},
		{Addr: 16, Size: 8, Prev: 1, Cur: 9, PrevWrite: true, CurWrite: true},
		{Addr: 16, Size: 8, Prev: 3, Cur: 9, PrevWrite: true, CurWrite: true},
	}
	want := append([]detect.Race(nil), rs...)
	perm := rand.New(rand.NewSource(3)).Perm(len(rs))
	c := NewCollector(len(rs))
	for _, i := range perm {
		c.Add(7, rs[i])
	}
	got := c.Sorted()
	if len(got) != len(want) {
		t.Fatalf("retained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCollectorZeroBound checks MaxRacesRecorded=0 semantics: nothing
// retained, no panic.
func TestCollectorZeroBound(t *testing.T) {
	c := NewCollector(0)
	c.Add(1, race(8, 1))
	if got := c.Sorted(); got != nil {
		t.Fatalf("Sorted() = %v, want nil", got)
	}
}

// TestCollectorSortedIsSorted cross-checks Sorted's heap-sort against the
// stdlib on random inputs.
func TestCollectorSortedIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(60)
		keep := 1 + rng.Intn(n)
		var all []keyedRace
		c := NewCollector(keep)
		for i := 0; i < n; i++ {
			kr := keyedRace{seq: int32(rng.Intn(20)), r: race(uint64(rng.Intn(10))*4, int32(rng.Intn(20)))}
			all = append(all, kr)
			c.addKeyed(kr)
		}
		sort.Slice(all, func(i, j int) bool { return raceKeyLess(all[i], all[j]) })
		got := c.Sorted()
		for i, r := range got {
			if r != all[i].r {
				t.Fatalf("trial %d position %d: got %+v, want %+v", trial, i, r, all[i].r)
			}
		}
	}
}
