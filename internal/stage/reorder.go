package stage

import (
	"fmt"

	"stint/internal/evstream"
)

// Reorder turns the arrival-ordered chunk stream of the parallel-detect
// executor back into the serial projection. Executor tasks publish chunks
// in whatever order the scheduler runs them; serial order is a depth-first
// walk of the spawn tree (child subtree first, then the parent's
// continuation — exactly the order the serial executor visits strands).
// Reorder performs that walk incrementally: it holds out-of-order chunks
// in a pending set keyed by (task, index) and maintains a cursor for the
// single chunk that comes next in serial order, advancing the cursor by
// the emitted chunk's terminator:
//
//	ChunkCut, ChunkSync  →  same task, next index
//	ChunkSpawn           →  descend to (Child, 0); resume point pushed
//	ChunkTask            →  pop the suspended parent continuation
//	ChunkRoot            →  the stream is complete
//
// Because the cursor depends only on the chunks' own linkage, the emission
// order — and therefore everything downstream: batch composition, labels,
// reports — is independent of scheduling. Determinism is structural, not
// negotiated.
//
// Reorder is not safe for concurrent use; the merge stage owns it.
type Reorder struct {
	pending map[chunkKey]evstream.Chunk
	stack   []chunkKey // suspended parent continuations, innermost last
	need    chunkKey   // the next chunk in serial order
	done    bool
	peak    int
}

type chunkKey struct {
	task uint64
	idx  uint32
}

// NewReorder returns a walk positioned at the root task's first chunk.
// The root task's identity is 0 by convention (the executor's task counter
// hands out 1, 2, ... to spawned children).
func NewReorder() *Reorder {
	return &Reorder{pending: make(map[chunkKey]evstream.Chunk)}
}

// Offer inserts one arrived chunk and emits every chunk that is now
// reachable in serial order — possibly none (the chunk arrived early),
// possibly a long cascade (it was the missing link). Protocol violations
// (duplicate (task, index), chunks after the root ended, a task end with
// no suspended parent) panic: they mean the executor or queue corrupted
// the stream, and the stage graph converts the panic into an abort.
func (r *Reorder) Offer(c evstream.Chunk, emit func(evstream.Chunk)) {
	if r.done {
		panic("stage: chunk offered after the root chunk completed the stream")
	}
	k := chunkKey{c.Task, c.Idx}
	if _, dup := r.pending[k]; dup {
		panic(fmt.Sprintf("stage: duplicate chunk (task %d, idx %d)", c.Task, c.Idx))
	}
	r.pending[k] = c
	if len(r.pending) > r.peak {
		r.peak = len(r.pending)
	}
	for {
		c, ok := r.pending[r.need]
		if !ok {
			return
		}
		delete(r.pending, r.need)
		emit(c)
		switch c.End {
		case evstream.ChunkCut, evstream.ChunkSync:
			r.need.idx++
		case evstream.ChunkSpawn:
			r.stack = append(r.stack, chunkKey{r.need.task, r.need.idx + 1})
			r.need = chunkKey{c.Child, 0}
		case evstream.ChunkTask:
			if len(r.stack) == 0 {
				panic("stage: task-end chunk with no suspended parent")
			}
			r.need = r.stack[len(r.stack)-1]
			r.stack = r.stack[:len(r.stack)-1]
		case evstream.ChunkRoot:
			if len(r.stack) != 0 {
				panic("stage: root-end chunk with suspended tasks outstanding")
			}
			if len(r.pending) != 0 {
				// Every chunk is published before its task joins and the
				// root joins everything before ending, so leftovers mean a
				// linkage bug, not an early root.
				panic("stage: root-end chunk with chunks still pending")
			}
			r.done = true
			return
		default:
			panic(fmt.Sprintf("stage: unknown chunk terminator %d", c.End))
		}
	}
}

// Done reports whether the root chunk has been emitted — the serial
// projection is complete and no further Offer is legal.
func (r *Reorder) Done() bool { return r.done }

// Pending returns the number of chunks currently held out of order.
func (r *Reorder) Pending() int { return len(r.pending) }

// Peak returns the high-water mark of the pending set — the memory the
// merge actually paid for scheduling skew, surfaced as Report.ReorderPeak.
func (r *Reorder) Peak() int { return r.peak }
