package stage

import (
	"math/rand"
	"testing"

	"stint/internal/evstream"
)

// chunkGen builds the serial-order chunk stream of a random fork-join
// program: a DFS emission over a random spawn tree, with random mid-strand
// cuts, matching exactly what the parallel executor would publish if it
// ran serially. The emitted slice IS the expected reorder output.
type chunkGen struct {
	chunks []evstream.Chunk
	next   uint64
	rng    *rand.Rand
}

func (g *chunkGen) add(task uint64, idx *uint32, end evstream.ChunkEnd, child uint64) {
	g.chunks = append(g.chunks, evstream.Chunk{Task: task, Idx: *idx, End: end, Child: child})
	*idx++
}

func (g *chunkGen) task(id uint64, depth int) {
	var idx uint32
	spans := g.rng.Intn(3)
	for s := 0; s < spans; s++ {
		for g.rng.Intn(3) == 0 {
			g.add(id, &idx, evstream.ChunkCut, 0) // batch filled mid-strand
		}
		if depth > 0 {
			g.next++
			child := g.next
			g.add(id, &idx, evstream.ChunkSpawn, child)
			g.task(child, depth-1) // child subtree next in serial order
			if g.rng.Intn(2) == 0 {
				g.add(id, &idx, evstream.ChunkSync, 0)
			}
		}
	}
	end := evstream.ChunkTask
	if id == 0 {
		end = evstream.ChunkRoot
	}
	g.add(id, &idx, end, 0)
}

// TestReorderRandomArrival generates random programs, offers their chunks
// in random arrival order, and asserts the emitted sequence is exactly the
// serial order regardless of the permutation.
func TestReorderRandomArrival(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := &chunkGen{rng: rng}
		g.task(0, 1+rng.Intn(4))
		serial := g.chunks

		arrival := make([]evstream.Chunk, len(serial))
		copy(arrival, serial)
		rng.Shuffle(len(arrival), func(i, j int) { arrival[i], arrival[j] = arrival[j], arrival[i] })

		r := NewReorder()
		var got []evstream.Chunk
		for _, c := range arrival {
			r.Offer(c, func(c evstream.Chunk) { got = append(got, c) })
		}
		if !r.Done() {
			t.Fatalf("seed %d: walk not done after all %d chunks offered", seed, len(serial))
		}
		if r.Pending() != 0 {
			t.Fatalf("seed %d: %d chunks still pending after done", seed, r.Pending())
		}
		if len(got) != len(serial) {
			t.Fatalf("seed %d: emitted %d chunks, want %d", seed, len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("seed %d: position %d emitted (task %d, idx %d), want (task %d, idx %d)",
					seed, i, got[i].Task, got[i].Idx, serial[i].Task, serial[i].Idx)
			}
		}
		if r.Peak() < 1 || r.Peak() > len(serial) {
			t.Fatalf("seed %d: peak %d outside [1, %d]", seed, r.Peak(), len(serial))
		}
	}
}

// TestReorderSerialArrivalBuffersNothing checks the fast path: chunks
// arriving already in serial order are emitted immediately, one held at a
// time.
func TestReorderSerialArrivalBuffersNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := &chunkGen{rng: rng}
	g.task(0, 3)
	r := NewReorder()
	emitted := 0
	for _, c := range g.chunks {
		r.Offer(c, func(evstream.Chunk) { emitted++ })
	}
	if emitted != len(g.chunks) {
		t.Fatalf("emitted %d of %d", emitted, len(g.chunks))
	}
	if r.Peak() != 1 {
		t.Fatalf("serial arrival peaked at %d pending chunks, want 1", r.Peak())
	}
}

func mustPanic(t *testing.T, why string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic: %s", why)
		}
	}()
	fn()
}

// TestReorderProtocolViolations checks the walk rejects corrupt streams
// loudly instead of silently misordering events.
func TestReorderProtocolViolations(t *testing.T) {
	drop := func(evstream.Chunk) {}

	// Duplicates are caught while the first copy is still pending (an
	// already-emitted key is forgotten — tracking every emitted key would
	// cost memory proportional to the whole stream).
	r := NewReorder()
	r.Offer(evstream.Chunk{Task: 1, Idx: 0, End: evstream.ChunkCut}, drop)
	mustPanic(t, "duplicate (task, idx)", func() {
		r.Offer(evstream.Chunk{Task: 1, Idx: 0, End: evstream.ChunkCut}, drop)
	})

	r = NewReorder()
	mustPanic(t, "task end with no suspended parent", func() {
		r.Offer(evstream.Chunk{Task: 0, Idx: 0, End: evstream.ChunkTask}, drop)
	})

	r = NewReorder()
	r.Offer(evstream.Chunk{Task: 0, Idx: 0, End: evstream.ChunkRoot}, drop)
	if !r.Done() {
		t.Fatal("single root chunk did not complete the walk")
	}
	mustPanic(t, "offer after done", func() {
		r.Offer(evstream.Chunk{Task: 1, Idx: 0, End: evstream.ChunkCut}, drop)
	})

	r = NewReorder()
	r.Offer(evstream.Chunk{Task: 0, Idx: 0, End: evstream.ChunkSpawn, Child: 1}, drop)
	mustPanic(t, "root end with a suspended task", func() {
		r.Offer(evstream.Chunk{Task: 1, Idx: 0, End: evstream.ChunkRoot}, drop)
	})

	r = NewReorder()
	r.Offer(evstream.Chunk{Task: 1, Idx: 0, End: evstream.ChunkCut}, drop) // pending forever
	mustPanic(t, "root end with chunks pending", func() {
		r.Offer(evstream.Chunk{Task: 0, Idx: 0, End: evstream.ChunkRoot}, drop)
	})
}
