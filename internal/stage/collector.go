// Canonical race recording. Every execution mode — inline, pipelined,
// sharded — funnels its race reports through a Collector, which keeps the
// MaxRacesRecorded smallest races under one total order and returns them
// sorted. The order is a property of the program, not of the engine's
// traversal: races are keyed first by the sequential rank of the later
// access's strand (the serial-execution moment the race becomes
// observable), then by the remaining fields as tie-breakers. Report.Races
// is therefore byte-identical across sync, async, and every shard count.

package stage

import "stint/internal/detect"

// keyedRace pairs a race with the sequential rank of its Cur strand. Ranks
// come from spord (sync/async) or a depa.View (sharded) — the differential
// tests pin the two to agree.
type keyedRace struct {
	seq int32
	r   detect.Race
}

// raceKeyLess is the canonical total order on race reports. Within one
// strand the read-phase checks run before the write-phase checks, so
// CurWrite=false sorts first; address, size, and the previous access break
// the remaining ties. Two reports with equal keys are identical races (a
// redundant-interval store can legitimately report the same pair twice).
func raceKeyLess(a, b keyedRace) bool {
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	if a.r.CurWrite != b.r.CurWrite {
		return !a.r.CurWrite
	}
	if a.r.Addr != b.r.Addr {
		return a.r.Addr < b.r.Addr
	}
	if a.r.Size != b.r.Size {
		return a.r.Size < b.r.Size
	}
	if a.r.PrevWrite != b.r.PrevWrite {
		return !a.r.PrevWrite
	}
	return a.r.Prev < b.r.Prev
}

// Collector keeps the max smallest-keyed races seen so far in a binary
// max-heap (h[0] holds the largest retained key), so a run reporting far
// more races than MaxRacesRecorded costs O(log max) per report and no
// allocation beyond the bounded heap. A Collector is single-owner; stages
// collect independently and Merge on the finalizer.
type Collector struct {
	max int
	h   []keyedRace
}

// NewCollector returns a Collector retaining at most max races.
func NewCollector(max int) *Collector {
	return &Collector{max: max}
}

// Add offers one race with the sequential rank of its later access.
func (c *Collector) Add(seq int32, r detect.Race) {
	c.addKeyed(keyedRace{seq: seq, r: r})
}

func (c *Collector) addKeyed(kr keyedRace) {
	if len(c.h) < c.max {
		c.h = append(c.h, kr)
		c.siftUp(len(c.h) - 1)
		return
	}
	if c.max == 0 || !raceKeyLess(kr, c.h[0]) {
		return
	}
	c.h[0] = kr
	c.siftDown(0)
}

// Merge folds another collector's retained races into this one.
func (c *Collector) Merge(o *Collector) {
	for _, kr := range o.h {
		c.addKeyed(kr)
	}
}

func (c *Collector) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !raceKeyLess(c.h[p], c.h[i]) {
			return
		}
		c.h[p], c.h[i] = c.h[i], c.h[p]
		i = p
	}
}

func (c *Collector) siftDown(i int) {
	n := len(c.h)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && raceKeyLess(c.h[big], c.h[l]) {
			big = l
		}
		if r < n && raceKeyLess(c.h[big], c.h[r]) {
			big = r
		}
		if big == i {
			return
		}
		c.h[i], c.h[big] = c.h[big], c.h[i]
		i = big
	}
}

// Sorted destructively extracts the retained races in ascending canonical
// order.
func (c *Collector) Sorted() []detect.Race {
	n := len(c.h)
	if n == 0 {
		return nil
	}
	// Heap-sort in place: repeatedly move the max to the tail.
	for end := n - 1; end > 0; end-- {
		c.h[0], c.h[end] = c.h[end], c.h[0]
		c.heapifyPrefix(end)
	}
	out := make([]detect.Race, n)
	for i, kr := range c.h {
		out[i] = kr.r
	}
	// Keep the backing array: a reused Collector re-heaps into the same
	// bounded allocation instead of growing the heap each run.
	c.h = c.h[:0]
	return out
}

// Reset empties the collector for another run, retaining the heap's backing
// array (bounded by max) so steady-state reuse allocates nothing.
func (c *Collector) Reset() {
	c.h = c.h[:0]
}

// heapifyPrefix restores the max-heap property over h[:end] after the root
// swap in Sorted.
func (c *Collector) heapifyPrefix(end int) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < end && raceKeyLess(c.h[big], c.h[l]) {
			big = l
		}
		if r < end && raceKeyLess(c.h[big], c.h[r]) {
			big = r
		}
		if big == i {
			return
		}
		c.h[i], c.h[big] = c.h[big], c.h[i]
		i = big
	}
}
