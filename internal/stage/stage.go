// Package stage holds the orchestration primitives shared by every
// execution mode of the stint runner. A pipeline — synchronous, async, or
// sharded — is a small graph of stages: goroutines connected by bounded
// rings (stint/internal/evstream), each metering its own busy time, all
// funneling race reports into one canonical Collector. The runner files
// (stint.go, async.go, shards.go) and trace.Replay build their pipelines
// from these primitives instead of hand-rolling goroutine topologies.
package stage

import (
	"sync"
	"time"
)

// Graph wires and drains the detector-side stages of one pipeline run.
// Stages are goroutines launched with Go; Seal installs the finalizer that
// joins them and merges their results; Wait blocks the producer until the
// sealed graph has fully finished. The zero wiring (no Go calls, Seal(nil))
// is legal and makes Wait return as soon as the finalizer runs — the
// degenerate graph of the synchronous path.
//
// Teardown is first-failure-wins: when a stage panics (a user OnRace
// callback aborting the run, a guard tripping), the recover fires the
// OnAbort hook exactly once — the runner uses it to close the pipeline's
// rings so peer stages blocked in Publish/Next unwind instead of
// deadlocking — the merge is skipped, and Wait re-panics the failure on the
// producer goroutine so it propagates out of Run exactly as it would have
// in synchronous mode.
type Graph struct {
	wg   sync.WaitGroup
	done chan struct{}

	mu      sync.Mutex
	failure any  // first stage or merge panic value
	failed  bool // distinguishes panic(nil) from no failure
	abort   func()
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{done: make(chan struct{})}
}

// OnAbort installs the hook fired once, on the first stage failure. Set it
// before launching stages that can fail; typically it closes the graph's
// rings so blocked peers drain out.
func (g *Graph) OnAbort(fn func()) {
	g.mu.Lock()
	g.abort = fn
	g.mu.Unlock()
}

// fail records the first failure and fires the abort hook once.
func (g *Graph) fail(r any) {
	g.mu.Lock()
	first := !g.failed
	if first {
		g.failed = true
		g.failure = r
	}
	abort := g.abort
	g.mu.Unlock()
	if first && abort != nil {
		abort()
	}
}

// Failed reports whether any stage or the merge has panicked so far.
func (g *Graph) Failed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failed
}

// Go launches fn as one stage goroutine of the graph. A panic in fn is
// captured as the graph's failure (first failure wins) instead of crashing
// the process; Wait re-raises it.
func (g *Graph) Go(fn func()) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.fail(r)
			}
		}()
		fn()
	}()
}

// Seal launches the graph's finalizer: after every stage launched so far
// has returned, it runs merge (which may be nil) and marks the graph done.
// Results written by stages before returning are visible to merge, and
// results written by merge are visible after Wait. When a stage failed, the
// merge is skipped — its inputs are incomplete — and the failure is
// re-raised by Wait instead. Seal must be called exactly once, after all Go
// calls.
func (g *Graph) Seal(merge func()) {
	go func() {
		g.wg.Wait()
		if merge != nil && !g.Failed() {
			func() {
				defer func() {
					if r := recover(); r != nil {
						g.fail(r)
					}
				}()
				merge()
			}()
		}
		close(g.done)
	}()
}

// Wait blocks until the sealed graph has finished: all stages joined and
// the merge complete. If a stage or the merge panicked, Wait re-panics the
// first failure on the caller's goroutine.
func (g *Graph) Wait() {
	<-g.done
	g.mu.Lock()
	failed, failure := g.failed, g.failure
	g.mu.Unlock()
	if failed {
		panic(failure)
	}
}

// Meter accumulates one stage's busy time at batch granularity: the wall
// clock spent processing, excluding blocking waits on the stage's rings.
// Start a lap with time.Now() before processing and Add the start once the
// batch is done, before any blocking publish or next. AddBatch additionally
// tallies the scanned-vs-skipped split for stages with a summary fast path.
type Meter struct {
	busy    time.Duration
	scanned uint64
	skipped uint64
}

// Add accumulates the time elapsed since t0.
func (m *Meter) Add(t0 time.Time) { m.busy += time.Since(t0) }

// AddDur accumulates an already-measured duration — for stages whose
// blocking calls happen mid-lap (the parallel-detect merge publishes from
// inside its reorder callback), where the caller must subtract the wait
// itself before crediting the remainder as busy time.
func (m *Meter) AddDur(d time.Duration) { m.busy += d }

// AddBatch accumulates the time elapsed since t0 and counts the batch as
// skipped (summary fast path: structure events only) or scanned in full.
func (m *Meter) AddBatch(t0 time.Time, skipped bool) {
	m.busy += time.Since(t0)
	if skipped {
		m.skipped++
	} else {
		m.scanned++
	}
}

// Reset zeroes the meter for another run.
func (m *Meter) Reset() { *m = Meter{} }

// Busy returns the accumulated busy time.
func (m *Meter) Busy() time.Duration { return m.busy }

// Scanned returns the number of batches processed in full.
func (m *Meter) Scanned() uint64 { return m.scanned }

// Skipped returns the number of batches taken on the summary fast path.
func (m *Meter) Skipped() uint64 { return m.skipped }
