// Package stage holds the orchestration primitives shared by every
// execution mode of the stint runner. A pipeline — synchronous, async, or
// sharded — is a small graph of stages: goroutines connected by bounded
// rings (stint/internal/evstream), each metering its own busy time, all
// funneling race reports into one canonical Collector. The runner files
// (stint.go, async.go, shards.go) and trace.Replay build their pipelines
// from these primitives instead of hand-rolling goroutine topologies.
package stage

import (
	"sync"
	"time"
)

// Graph wires and drains the detector-side stages of one pipeline run.
// Stages are goroutines launched with Go; Seal installs the finalizer that
// joins them and merges their results; Wait blocks the producer until the
// sealed graph has fully finished. The zero wiring (no Go calls, Seal(nil))
// is legal and makes Wait return as soon as the finalizer runs — the
// degenerate graph of the synchronous path.
type Graph struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{done: make(chan struct{})}
}

// Go launches fn as one stage goroutine of the graph.
func (g *Graph) Go(fn func()) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		fn()
	}()
}

// Seal launches the graph's finalizer: after every stage launched so far
// has returned, it runs merge (which may be nil) and marks the graph done.
// Results written by stages before returning are visible to merge, and
// results written by merge are visible after Wait. Seal must be called
// exactly once, after all Go calls.
func (g *Graph) Seal(merge func()) {
	go func() {
		g.wg.Wait()
		if merge != nil {
			merge()
		}
		close(g.done)
	}()
}

// Wait blocks until the sealed graph has finished: all stages joined and
// the merge complete.
func (g *Graph) Wait() { <-g.done }

// Meter accumulates one stage's busy time at batch granularity: the wall
// clock spent processing, excluding blocking waits on the stage's rings.
// Start a lap with time.Now() before processing and Add the start once the
// batch is done, before any blocking publish or next.
type Meter struct {
	busy time.Duration
}

// Add accumulates the time elapsed since t0.
func (m *Meter) Add(t0 time.Time) { m.busy += time.Since(t0) }

// Busy returns the accumulated busy time.
func (m *Meter) Busy() time.Duration { return m.busy }
