package shadow

import (
	"math/rand"
	"testing"

	"stint/internal/mem"
)

// mapTable is the seed implementation of the shadow table — a Go map as the
// first-level directory, fronted by the same one-entry cache — kept as the
// reference for equivalence testing and benchmarking of the open-addressed
// page directory.
type mapTable struct {
	pages    map[uint64]*page
	lastIdx  uint64
	lastPage *page
}

func newMapTable() *mapTable { return &mapTable{pages: make(map[uint64]*page)} }

func (t *mapTable) cell(addr mem.Addr) (writer, reader *int32) {
	word := addr >> wordBits
	idx := word >> pageWordBits
	p := t.lastPage
	if p == nil || idx != t.lastIdx {
		p = t.pages[idx]
		if p == nil {
			p = &page{}
			p.init()
			t.pages[idx] = p
		}
		t.lastIdx, t.lastPage = idx, p
	}
	off := word & pageWordMask
	return &p.writer[off], &p.reader[off]
}

func (t *mapTable) peek(addr mem.Addr) (writer, reader int32) {
	word := addr >> wordBits
	p := t.pages[word>>pageWordBits]
	if p == nil {
		return None, None
	}
	off := word & pageWordMask
	return p.writer[off], p.reader[off]
}

// TestDirectoryEquivalence drives randomized access sequences — spread wide
// enough to force several directory growth steps — through the
// open-addressed Table and the map reference, checking every Cell and Peek
// returns identical cells.
func TestDirectoryEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := New()
		ref := newMapTable()
		// ~200 distinct pages forces the directory through multiple
		// doublings from its initial capacity.
		const span = 200 << pageBytesBits
		for op := 0; op < 20000; op++ {
			addr := mem.Addr(rng.Uint64() % span)
			if rng.Intn(4) == 0 { // peek without allocating
				gw, gr := tb.Peek(addr)
				ww, wr := ref.peek(addr)
				if gw != ww || gr != wr {
					t.Fatalf("seed %d op %d: Peek(%#x) = (%d,%d), reference (%d,%d)", seed, op, addr, gw, gr, ww, wr)
				}
				continue
			}
			w, r := tb.Cell(addr)
			ww, wr := ref.cell(addr)
			if *w != *ww || *r != *wr {
				t.Fatalf("seed %d op %d: Cell(%#x) reads (%d,%d), reference (%d,%d)", seed, op, addr, *w, *r, *ww, *wr)
			}
			id := int32(rng.Intn(1024))
			switch rng.Intn(3) {
			case 0:
				*w, *ww = id, id
			case 1:
				*r, *wr = id, id
			default:
				*w, *ww = id, id
				*r, *wr = id, id
			}
		}
		if tb.Pages() != len(ref.pages) {
			t.Fatalf("seed %d: %d pages, reference %d", seed, tb.Pages(), len(ref.pages))
		}
		// Full sweep: every cell of every touched page must match.
		for idx := range ref.pages {
			base := mem.Addr(idx << pageBytesBits)
			for off := uint64(0); off < pageWords; off += 37 {
				addr := base + mem.Addr(off<<wordBits)
				gw, gr := tb.Peek(addr)
				ww, wr := ref.peek(addr)
				if gw != ww || gr != wr {
					t.Fatalf("seed %d: sweep mismatch at %#x: (%d,%d) vs (%d,%d)", seed, addr, gw, gr, ww, wr)
				}
			}
		}
	}
}

// TestResetReusesPages checks that Reset retires pages to the freelist, that
// a reused page reads as empty, and that refilling after Reset allocates
// from the freelist rather than the heap.
func TestResetReusesPages(t *testing.T) {
	tb := New()
	w, r := tb.Cell(0x10000)
	*w, *r = 7, 9
	tb.Cell(0x20000)
	if tb.Pages() != 2 || tb.FreePages() != 0 {
		t.Fatalf("before reset: %d pages, %d free", tb.Pages(), tb.FreePages())
	}
	tb.Reset()
	if tb.Pages() != 0 || tb.FreePages() != 2 {
		t.Fatalf("after reset: %d pages, %d free", tb.Pages(), tb.FreePages())
	}
	if gw, gr := tb.Peek(0x10000); gw != None || gr != None {
		t.Fatalf("stale data visible after reset: (%d,%d)", gw, gr)
	}
	// Refill: both pages must come off the freelist, fully reinitialized.
	w, r = tb.Cell(0x10000)
	if *w != None || *r != None {
		t.Fatalf("reused page not reinitialized: (%d,%d)", *w, *r)
	}
	tb.Cell(0x30000)
	if tb.Pages() != 2 || tb.FreePages() != 0 {
		t.Fatalf("after refill: %d pages, %d free", tb.Pages(), tb.FreePages())
	}
}
