package shadow

import (
	"testing"

	"stint/internal/mem"
)

func TestDirectRoundTrip(t *testing.T) {
	d := NewDirect(0x1000, 64)
	w, r := d.Cell(0x1004)
	if *w != None || *r != None {
		t.Fatal("fresh cell not empty")
	}
	*w, *r = 5, 7
	w2, r2 := d.Cell(0x1005) // same word
	if *w2 != 5 || *r2 != 7 {
		t.Fatal("same-word addresses disagree")
	}
	w3, _ := d.Cell(0x1008)
	if *w3 != None {
		t.Fatal("adjacent word aliases")
	}
}

func TestDirectCovers(t *testing.T) {
	d := NewDirect(0x1000, 64)
	cases := []struct {
		addr mem.Addr
		want bool
	}{
		{0x1000, true}, {0x103F, true}, {0x1040, false}, {0xFFF, false}, {0, false},
	}
	for _, c := range cases {
		if got := d.Covers(c.addr); got != c.want {
			t.Errorf("Covers(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestDirectMatchesTwoLevelSemantics(t *testing.T) {
	d := NewDirect(0, 1<<16)
	tb := New()
	for i := 0; i < 2000; i++ {
		addr := mem.Addr((i * 37) % (1 << 16))
		dw, dr := d.Cell(addr)
		tw, tr := tb.Cell(addr)
		if *dw != *tw || *dr != *tr {
			t.Fatalf("tables diverge at %#x before write", addr)
		}
		*dw, *tw = int32(i), int32(i)
		*dr, *tr = int32(i+1), int32(i+1)
	}
	for addr := mem.Addr(0); addr < 1<<16; addr += 4 {
		dw, dr := d.Cell(addr)
		tw, tr := tb.Peek(addr)
		if *dw != tw || *dr != tr {
			t.Fatalf("tables diverge at %#x after writes", addr)
		}
	}
}

// BenchmarkDirectVsTwoLevel quantifies the related-work trade-off: the
// direct map saves the page lookup but must preallocate the whole range.
func BenchmarkDirectVsTwoLevel(b *testing.B) {
	const span = 1 << 22
	b.Run("direct", func(b *testing.B) {
		d := NewDirect(0, span)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w, _ := d.Cell(mem.Addr(i*68) % span)
			*w = int32(i)
		}
	})
	b.Run("two-level", func(b *testing.B) {
		tb := New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w, _ := tb.Cell(mem.Addr(i*68) % span)
			*w = int32(i)
		}
	})
}
