package shadow

import "stint/internal/mem"

// Direct is a direct-mapped shadow table: one flat preallocated array of
// cells covering a fixed address range. The related-work shadow-memory
// schemes the paper cites ([5, 21, 23, 31]) trade this way — O(1) lookups
// with no second-level indirection, paid for with up-front allocation
// proportional to the covered range whether or not it is touched.
//
// Direct exists as a data-structure-level ablation against the two-level
// Table (see BenchmarkDirectVsTwoLevel): the detector engines use Table,
// whose lazy pages match the paper's vanilla design.
type Direct struct {
	base   mem.Addr
	writer []int32
	reader []int32
}

// NewDirect returns a table covering [base, base+size) bytes; size is
// rounded up to whole words.
func NewDirect(base mem.Addr, size uint64) *Direct {
	words := (size + mem.WordSize - 1) / mem.WordSize
	d := &Direct{
		base:   base &^ 3,
		writer: make([]int32, words),
		reader: make([]int32, words),
	}
	for i := range d.writer {
		d.writer[i] = None
		d.reader[i] = None
	}
	return d
}

// Covers reports whether addr falls inside the mapped range.
func (d *Direct) Covers(addr mem.Addr) bool {
	off := (addr - d.base) >> 2
	return addr >= d.base && off < uint64(len(d.writer))
}

// Cell returns the writer and reader slots for the word containing addr.
// The address must be covered.
func (d *Direct) Cell(addr mem.Addr) (writer, reader *int32) {
	off := (addr - d.base) >> 2
	return &d.writer[off], &d.reader[off]
}

// Bytes returns the table's memory footprint.
func (d *Direct) Bytes() uint64 { return uint64(len(d.writer)) * 8 }
