package shadow

import (
	"testing"

	"stint/internal/mem"
)

func TestEmptyReadsNone(t *testing.T) {
	tb := New()
	w, r := tb.Peek(0x1000)
	if w != None || r != None {
		t.Fatalf("Peek on empty table = (%d,%d), want (None,None)", w, r)
	}
	if tb.Pages() != 0 {
		t.Fatalf("Peek allocated a page")
	}
}

func TestCellRoundTrip(t *testing.T) {
	tb := New()
	w, r := tb.Cell(0x2004)
	if *w != None || *r != None {
		t.Fatalf("fresh cell = (%d,%d), want (None,None)", *w, *r)
	}
	*w, *r = 7, 9
	gw, gr := tb.Peek(0x2004)
	if gw != 7 || gr != 9 {
		t.Fatalf("Peek = (%d,%d), want (7,9)", gw, gr)
	}
}

func TestWordGranularity(t *testing.T) {
	tb := New()
	w, _ := tb.Cell(0x3000)
	*w = 5
	// All byte addresses within the same word share the cell.
	for off := mem.Addr(0); off < mem.WordSize; off++ {
		if gw, _ := tb.Peek(0x3000 + off); gw != 5 {
			t.Fatalf("byte offset %d maps to a different word", off)
		}
	}
	// The next word is distinct.
	if gw, _ := tb.Peek(0x3000 + mem.WordSize); gw != None {
		t.Fatal("adjacent word shares the cell")
	}
}

func TestDistinctPages(t *testing.T) {
	tb := New()
	w1, _ := tb.Cell(0x0)
	w2, _ := tb.Cell(1 << 20)
	*w1, *w2 = 1, 2
	if tb.Pages() != 2 {
		t.Fatalf("Pages() = %d, want 2", tb.Pages())
	}
	if gw, _ := tb.Peek(0x0); gw != 1 {
		t.Fatal("first page clobbered")
	}
	if gw, _ := tb.Peek(1 << 20); gw != 2 {
		t.Fatal("second page clobbered")
	}
}

func TestPageBoundaryCells(t *testing.T) {
	tb := New()
	// Last word of page 0 and first word of page 1.
	lastInPage := mem.Addr(1<<pageBytesBits - mem.WordSize)
	w1, _ := tb.Cell(lastInPage)
	w2, _ := tb.Cell(1 << pageBytesBits)
	*w1, *w2 = 10, 11
	if gw, _ := tb.Peek(lastInPage); gw != 10 {
		t.Fatal("boundary word wrong")
	}
	if gw, _ := tb.Peek(1 << pageBytesBits); gw != 11 {
		t.Fatal("first word of next page wrong")
	}
	if tb.Pages() != 2 {
		t.Fatalf("Pages() = %d, want 2", tb.Pages())
	}
}

func TestCacheConsistencyAcrossPages(t *testing.T) {
	tb := New()
	// Alternate between two pages to stress the one-entry cache.
	for i := 0; i < 100; i++ {
		a := mem.Addr(i) * mem.WordSize
		b := a + (1 << 20)
		wa, _ := tb.Cell(a)
		*wa = int32(i)
		wb, _ := tb.Cell(b)
		*wb = int32(i + 1000)
	}
	for i := 0; i < 100; i++ {
		a := mem.Addr(i) * mem.WordSize
		b := a + (1 << 20)
		if gw, _ := tb.Peek(a); gw != int32(i) {
			t.Fatalf("page A word %d = %d", i, gw)
		}
		if gw, _ := tb.Peek(b); gw != int32(i+1000) {
			t.Fatalf("page B word %d = %d", i, gw)
		}
	}
}

func TestBytesFootprint(t *testing.T) {
	tb := New()
	tb.Cell(0)
	if tb.Bytes() == 0 {
		t.Fatal("allocated table reports zero footprint")
	}
}

func BenchmarkCellSequential(b *testing.B) {
	tb := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := tb.Cell(mem.Addr(i%(1<<22)) * mem.WordSize)
		*w = int32(i)
	}
}

func BenchmarkCellSamePage(b *testing.B) {
	tb := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := tb.Cell(mem.Addr(i%1024) * mem.WordSize)
		*w = int32(i)
	}
}
