// Package shadow implements the vanilla access history: a two-level
// page-table-like structure from four-byte memory words to the strands that
// last wrote and leftmost-read them.
//
// This is the baseline the paper calls "vanilla": the address's prefix
// indexes a first-level table (an open-addressed page directory plus a
// one-entry cache, playing the role of the paper's first-level array) and
// the suffix indexes into a lazily allocated second-level page holding one
// shadow cell per word. Pages retired through Reset park on a per-Table
// freelist and are reinitialized on reuse, so repeated runs over the same
// Table allocate no new pages in steady state.
package shadow

import (
	"stint/internal/mem"
	"stint/internal/pagedir"
)

const (
	// pageBytesBits makes each second-level page cover 64 KiB of address
	// space.
	pageBytesBits = 16
	wordBits      = 2 // log2(mem.WordSize)
	pageWordBits  = pageBytesBits - wordBits
	pageWords     = 1 << pageWordBits
	pageWordMask  = pageWords - 1
)

// None marks an empty shadow slot: no strand has accessed the word.
const None int32 = -1

// page holds the last writer and leftmost reader for every word of one
// 64 KiB address range.
type page struct {
	writer [pageWords]int32
	reader [pageWords]int32
}

func (p *page) init() {
	for i := range p.writer {
		p.writer[i] = None
		p.reader[i] = None
	}
}

// Table is a two-level word-granularity shadow memory. The zero value is
// not usable; call New.
type Table struct {
	dir      pagedir.Dir[page]
	free     []*page
	lastIdx  uint64
	lastPage *page
}

// New returns an empty shadow table.
func New() *Table {
	return &Table{}
}

// newPage returns an initialized page, reusing a retired one when possible.
func (t *Table) newPage() *page {
	var p *page
	if n := len(t.free); n > 0 {
		p = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	} else {
		p = &page{}
	}
	p.init()
	return p
}

// Cell returns pointers to the writer and reader slots for the word
// containing byte address addr, allocating the page on first touch.
func (t *Table) Cell(addr mem.Addr) (writer, reader *int32) {
	word := addr >> wordBits
	idx := word >> pageWordBits
	p := t.lastPage
	if p == nil || idx != t.lastIdx {
		p = t.dir.Get(idx)
		if p == nil {
			p = t.newPage()
			t.dir.Put(idx, p)
		}
		t.lastIdx, t.lastPage = idx, p
	}
	off := word & pageWordMask
	return &p.writer[off], &p.reader[off]
}

// PageIndex returns the page index covering byte address addr, the key
// Retire and Quiesced operate on.
func PageIndex(addr mem.Addr) uint64 { return (addr >> wordBits) >> pageWordBits }

// Retire quiesces the page at index idx: its 128 KiB of shadow cells go
// back on the freelist and the directory slot becomes a quiesced tombstone,
// so the page will not be re-allocated by later Cell calls as long as the
// caller honors Quiesced. No-op if idx holds no live page.
func (t *Table) Retire(idx uint64) {
	if p := t.dir.Quiesce(idx); p != nil {
		t.free = append(t.free, p)
	}
	if t.lastIdx == idx {
		t.lastIdx, t.lastPage = 0, nil
	}
}

// Quiesced reports whether the page at index idx has been retired.
func (t *Table) Quiesced(idx uint64) bool { return t.dir.Quiesced(idx) }

// QuiescedPages returns the number of retired (quiesced) pages.
func (t *Table) QuiescedPages() int { return t.dir.QuiescedCount() }

// Peek returns the writer and reader for the word containing addr without
// allocating; absent pages read as None.
func (t *Table) Peek(addr mem.Addr) (writer, reader int32) {
	word := addr >> wordBits
	p := t.dir.Get(word >> pageWordBits)
	if p == nil {
		return None, None
	}
	off := word & pageWordMask
	return p.writer[off], p.reader[off]
}

// Reset clears the table for a fresh detection run, retiring every page to
// the freelist so the next run's Cell calls reuse them instead of
// allocating.
func (t *Table) Reset() {
	t.dir.Reset(func(p *page) { t.free = append(t.free, p) })
	t.lastIdx, t.lastPage = 0, nil
}

// Pages returns the number of second-level pages allocated, a proxy for the
// shadow-memory footprint.
func (t *Table) Pages() int { return t.dir.Len() }

// FreePages returns the number of retired pages parked on the freelist.
func (t *Table) FreePages() int { return len(t.free) }

// Bytes returns the approximate memory footprint of the table in bytes.
func (t *Table) Bytes() uint64 {
	return uint64(t.dir.Len()) * uint64(pageWords) * 8
}

// FootprintBytes returns the approximate retained footprint including
// freelisted pages — what the process actually holds, as opposed to Bytes,
// which counts only live history.
func (t *Table) FootprintBytes() uint64 {
	return uint64(t.dir.Len()+len(t.free)) * uint64(pageWords) * 8
}
