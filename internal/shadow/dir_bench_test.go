package shadow

import (
	"math/rand"
	"testing"

	"stint/internal/mem"
)

// BenchmarkShadowDirectory isolates the first-level directory lookup: the
// open-addressed pagedir (production path) vs the seed's map[uint64]*page,
// on an identical address stream that defeats the one-entry last-page cache
// by alternating pages.
func BenchmarkShadowDirectory(b *testing.B) {
	const pages = 128
	rng := rand.New(rand.NewSource(1))
	addrs := make([]mem.Addr, 8192)
	for i := range addrs {
		addrs[i] = mem.Addr(rng.Intn(pages)) << pageBytesBits
		addrs[i] += mem.Addr(rng.Intn(1<<pageBytesBits)) &^ 3
	}
	b.Run("openaddr", func(b *testing.B) {
		tb := New()
		b.ReportAllocs()
		b.ResetTimer()
		var sink int32
		for i := 0; i < b.N; i++ {
			w, _ := tb.Cell(addrs[i%len(addrs)])
			sink += *w
		}
		_ = sink
	})
	b.Run("gomap", func(b *testing.B) {
		tb := newMapTable()
		b.ReportAllocs()
		b.ResetTimer()
		var sink int32
		for i := 0; i < b.N; i++ {
			w, _ := tb.cell(addrs[i%len(addrs)])
			sink += *w
		}
		_ = sink
	})
}
