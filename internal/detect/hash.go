package detect

import (
	"time"

	"stint/internal/coalesce"
	"stint/internal/mem"
	"stint/internal/shadow"
)

// span is a flushed interval, collected outside the timed section so access-
// history timing excludes bitmap extraction.
type span struct {
	addr mem.Addr
	size uint64
}

// hashEngine implements the Vanilla, Compiler, and CompRTS detectors. All
// three use the word-granularity shadow hashmap as the access history; they
// differ in how instrumentation events reach it:
//
//   - Vanilla (expandRanges): range hooks are re-expanded into one hook per
//     element, modeling per-access instrumentation.
//   - Compiler: range hooks update the hashmap word by word within a single
//     call, modeling compile-time coalescing (fewer calls, same word work).
//   - CompRTS (rts): hooks only set bits in the runtime-coalescing bit
//     hashmap; race checks run once per strand over deduplicated words.
type hashEngine struct {
	stats        Stats
	reach        Reach
	table        *shadow.Table
	onRace       func(Race)
	expandRanges bool
	rts          bool
	timeAH       bool
	readBits     *coalesce.BitSet
	writeBits    *coalesce.BitSet
	scratch      []span
}

func newHashEngine(cfg Config, reach Reach, expandRanges, rts bool) *hashEngine {
	e := &hashEngine{
		reach:        reach,
		table:        shadow.New(),
		onRace:       cfg.OnRace,
		expandRanges: expandRanges,
		rts:          rts,
		timeAH:       cfg.TimeAccessHistory,
	}
	if rts {
		e.readBits = coalesce.New()
		e.writeBits = coalesce.New()
	}
	return e
}

func (e *hashEngine) race(r Race) {
	e.stats.Races++
	if e.onRace != nil {
		e.onRace(r)
	}
}

// wordsIn returns the number of shadow words covered by size bytes at addr.
func wordsIn(addr mem.Addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := addr >> 2
	last := (addr + size - 1) >> 2
	return last - first + 1
}

// accessWord performs the Feng–Leiserson check-and-update on one word: a
// read races with a parallel last writer; a write races with a parallel
// last writer or leftmost reader. Reads replace the stored reader only when
// left-of it; writes always become the last writer.
func (e *hashEngine) accessWord(addr mem.Addr, isWrite bool) {
	e.stats.HashOps++
	w, r := e.table.Cell(addr)
	cur := e.reach.CurrentID()
	if *w != shadow.None && e.reach.Parallel(*w, cur) {
		e.race(Race{Addr: addr &^ 3, Size: mem.WordSize, Prev: *w, Cur: cur, PrevWrite: true, CurWrite: isWrite})
	}
	if isWrite {
		if *r != shadow.None && e.reach.Parallel(*r, cur) {
			e.race(Race{Addr: addr &^ 3, Size: mem.WordSize, Prev: *r, Cur: cur, PrevWrite: false, CurWrite: true})
		}
		*w = cur
	} else if *r == shadow.None || e.reach.LeftOf(cur, *r) {
		*r = cur
	}
}

// accessRange runs accessWord over every word of [addr, addr+size).
func (e *hashEngine) accessRange(addr mem.Addr, size uint64, isWrite bool) {
	first := addr &^ 3
	end := addr + size
	for a := first; a < end; a += mem.WordSize {
		e.accessWord(a, isWrite)
	}
}

func (e *hashEngine) ReadHook(addr mem.Addr, size uint64) {
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	if e.rts {
		setBits(e.readBits, addr, size)
		return
	}
	e.accessRange(addr, size, false)
}

func (e *hashEngine) WriteHook(addr mem.Addr, size uint64) {
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	if e.rts {
		setBits(e.writeBits, addr, size)
		return
	}
	e.accessRange(addr, size, true)
}

// setBits routes aligned single-word accesses through the bit hashmap's
// fast path.
func setBits(b *coalesce.BitSet, addr mem.Addr, size uint64) {
	if size <= mem.WordSize && addr&(mem.WordSize-1) == 0 {
		b.Set(addr)
		return
	}
	b.SetRange(addr, size)
}

func (e *hashEngine) ReadRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	if e.expandRanges {
		// Vanilla: the compiler emitted one hook per access.
		for i := 0; i < count; i++ {
			e.ReadHook(addr+mem.Addr(uint64(i)*elemBytes), elemBytes)
		}
		return
	}
	size := uint64(count) * elemBytes
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	if e.rts {
		e.readBits.SetRange(addr, size)
		return
	}
	e.accessRange(addr, size, false)
}

func (e *hashEngine) WriteRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	if e.expandRanges {
		for i := 0; i < count; i++ {
			e.WriteHook(addr+mem.Addr(uint64(i)*elemBytes), elemBytes)
		}
		return
	}
	size := uint64(count) * elemBytes
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	if e.rts {
		e.writeBits.SetRange(addr, size)
		return
	}
	e.accessRange(addr, size, true)
}

// StrandEnd flushes the bit hashmaps (CompRTS only) and replays the
// deduplicated intervals against the word-granularity access history.
func (e *hashEngine) StrandEnd() {
	if !e.rts {
		return
	}
	e.flush(e.readBits, false)
	e.flush(e.writeBits, true)
}

func (e *hashEngine) flush(bits *coalesce.BitSet, isWrite bool) {
	e.scratch = e.scratch[:0]
	bits.Flush(func(start mem.Addr, size uint64) {
		e.scratch = append(e.scratch, span{addr: start, size: size})
	})
	if len(e.scratch) == 0 {
		return
	}
	var bytes uint64
	for _, s := range e.scratch {
		bytes += s.size
	}
	if isWrite {
		e.stats.WriteIntervals += uint64(len(e.scratch))
		e.stats.WriteIntervalBytes += bytes
	} else {
		e.stats.ReadIntervals += uint64(len(e.scratch))
		e.stats.ReadIntervalBytes += bytes
	}
	var t0 time.Time
	if e.timeAH {
		t0 = time.Now()
	}
	for _, s := range e.scratch {
		e.accessRange(s.addr, s.size, isWrite)
	}
	if e.timeAH {
		e.stats.AccessHistoryTime += time.Since(t0)
	}
}

func (e *hashEngine) Finish() {
	e.StrandEnd()
	e.stats.AccessHistoryBytes = e.table.Bytes()
}

func (e *hashEngine) Stats() *Stats { return &e.stats }

// Reset returns the engine to its freshly-constructed state: the shadow
// table retires its pages to the freelist (capacity retained) and the bit
// hashmaps drop any mid-strand state from an aborted run.
func (e *hashEngine) Reset() {
	e.table.Reset()
	if e.rts {
		e.readBits.Reset()
		e.writeBits.Reset()
	}
	e.scratch = e.scratch[:0]
	e.stats = Stats{}
}

// Footprint reports the engine's retained warm capacity.
func (e *hashEngine) Footprint() Footprint {
	f := Footprint{HistPages: e.table.Pages() + e.table.FreePages()}
	if e.rts {
		f.BitPages = e.readBits.Pages() + e.writeBits.Pages()
	}
	return f
}
