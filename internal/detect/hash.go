package detect

import (
	"time"

	"stint/internal/coalesce"
	"stint/internal/mem"
	"stint/internal/shadow"
)

// span is a flushed interval, collected outside the timed section so access-
// history timing excludes bitmap extraction.
type span struct {
	addr mem.Addr
	size uint64
}

// hashEngine implements the Vanilla, Compiler, and CompRTS detectors. All
// three use the word-granularity shadow hashmap as the access history; they
// differ in how instrumentation events reach it:
//
//   - Vanilla (expandRanges): range hooks are re-expanded into one hook per
//     element, modeling per-access instrumentation.
//   - Compiler: range hooks update the hashmap word by word within a single
//     call, modeling compile-time coalescing (fewer calls, same word work).
//   - CompRTS (rts): hooks only set bits in the runtime-coalescing bit
//     hashmap; race checks run once per strand over deduplicated words.
type hashEngine struct {
	stats        Stats
	reach        Reach
	table        *shadow.Table
	onRace       func(Race)
	expandRanges bool
	rts          bool
	timeAH       bool
	readBits     *coalesce.BitSet
	writeBits    *coalesce.BitSet
	scratch      []span

	// Quiescing and memory-cap state. Races never span a page (words are
	// page-contained and flushed spans page-split), so attributing each
	// race to the page of its start address is exact.
	qthresh   int
	maxBytes  uint64
	registry  *QuiesceSet
	capErr    error
	pageRaces map[uint64]int32 // page index -> races produced
	nQuiesced int
	lastQIdx  uint64 // 1-entry quiesced-page cache
	lastQ     bool
}

func newHashEngine(cfg Config, reach Reach, expandRanges, rts bool) *hashEngine {
	e := &hashEngine{
		reach:        reach,
		table:        shadow.New(),
		onRace:       cfg.OnRace,
		expandRanges: expandRanges,
		rts:          rts,
		timeAH:       cfg.TimeAccessHistory,
		qthresh:      cfg.QuiesceThreshold,
		maxBytes:     cfg.MaxHistoryBytes,
		registry:     cfg.Quiesced,
	}
	if rts {
		e.readBits = coalesce.New()
		e.writeBits = coalesce.New()
	}
	if e.qthresh > 0 {
		e.pageRaces = make(map[uint64]int32)
	}
	return e
}

func (e *hashEngine) race(r Race) {
	e.stats.Races++
	if e.qthresh > 0 {
		e.pageRaces[uint64(r.Addr)>>coalesce.PageBytesBits]++
	}
	if e.onRace != nil {
		e.onRace(r)
	}
}

// quiescedIdx reports whether shadow page idx has been retired, with a
// one-entry cache in front of the directory probe.
func (e *hashEngine) quiescedIdx(idx uint64) bool {
	if e.lastQ && idx == e.lastQIdx {
		return true
	}
	if e.table.Quiesced(idx) {
		e.lastQIdx, e.lastQ = idx, true
		return true
	}
	return false
}

// deadSpan reports whether [addr, addr+size) lies entirely within one
// retired page; see treeEngine.deadSpan for why only whole-page-contained
// spans short-circuit here.
func (e *hashEngine) deadSpan(addr mem.Addr, size uint64) bool {
	if e.nQuiesced == 0 {
		return false
	}
	first := addr >> coalesce.PageBytesBits
	if (addr+size-1)>>coalesce.PageBytesBits != first {
		return false
	}
	return e.quiescedIdx(first)
}

// quiescePage retires one shadow page: its 128 KiB of cells park on the
// freelist and the directory slot becomes a tombstone. Word accesses and
// flushed spans on the page become no-ops from here on.
func (e *hashEngine) quiescePage(idx uint64) {
	e.table.Retire(idx)
	delete(e.pageRaces, idx)
	e.lastQIdx, e.lastQ = idx, true
	e.nQuiesced++
	e.stats.PagesQuiesced++
	if e.registry != nil {
		e.registry.Add(idx)
	}
}

// wordsIn returns the number of shadow words covered by size bytes at addr.
func wordsIn(addr mem.Addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := addr >> 2
	last := (addr + size - 1) >> 2
	return last - first + 1
}

// accessWord performs the Feng–Leiserson check-and-update on one word: a
// read races with a parallel last writer; a write races with a parallel
// last writer or leftmost reader. Reads replace the stored reader only when
// left-of it; writes always become the last writer.
func (e *hashEngine) accessWord(addr mem.Addr, isWrite bool) {
	var idx uint64
	if e.qthresh > 0 || e.nQuiesced > 0 {
		idx = uint64(addr) >> coalesce.PageBytesBits
		if e.nQuiesced > 0 && e.quiescedIdx(idx) {
			return // page retired: no history op, no check
		}
	}
	e.stats.HashOps++
	w, r := e.table.Cell(addr)
	cur := e.reach.CurrentID()
	racesBefore := e.stats.Races
	if *w != shadow.None && e.reach.Parallel(*w, cur) {
		e.race(Race{Addr: addr &^ 3, Size: mem.WordSize, Prev: *w, Cur: cur, PrevWrite: true, CurWrite: isWrite})
	}
	if isWrite {
		if *r != shadow.None && e.reach.Parallel(*r, cur) {
			e.race(Race{Addr: addr &^ 3, Size: mem.WordSize, Prev: *r, Cur: cur, PrevWrite: false, CurWrite: true})
		}
		*w = cur
	} else if *r == shadow.None || e.reach.LeftOf(cur, *r) {
		*r = cur
	}
	if e.qthresh > 0 && e.stats.Races != racesBefore && e.pageRaces[idx] >= int32(e.qthresh) {
		e.quiescePage(idx)
	}
}

// accessRange runs accessWord over every word of [addr, addr+size).
func (e *hashEngine) accessRange(addr mem.Addr, size uint64, isWrite bool) {
	first := addr &^ 3
	end := addr + size
	for a := first; a < end; a += mem.WordSize {
		e.accessWord(a, isWrite)
	}
}

func (e *hashEngine) ReadHook(addr mem.Addr, size uint64) {
	if e.capErr != nil {
		return
	}
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	if e.deadSpan(addr, size) {
		return
	}
	if e.rts {
		setBits(e.readBits, addr, size)
		return
	}
	e.accessRange(addr, size, false)
}

func (e *hashEngine) WriteHook(addr mem.Addr, size uint64) {
	if e.capErr != nil {
		return
	}
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	if e.deadSpan(addr, size) {
		return
	}
	if e.rts {
		setBits(e.writeBits, addr, size)
		return
	}
	e.accessRange(addr, size, true)
}

// setBits routes aligned single-word accesses through the bit hashmap's
// fast path.
func setBits(b *coalesce.BitSet, addr mem.Addr, size uint64) {
	if size <= mem.WordSize && addr&(mem.WordSize-1) == 0 {
		b.Set(addr)
		return
	}
	b.SetRange(addr, size)
}

func (e *hashEngine) ReadRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	if e.capErr != nil {
		return
	}
	if e.expandRanges {
		// Vanilla: the compiler emitted one hook per access.
		for i := 0; i < count; i++ {
			e.ReadHook(addr+mem.Addr(uint64(i)*elemBytes), elemBytes)
		}
		return
	}
	size := uint64(count) * elemBytes
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	if e.deadSpan(addr, size) {
		return
	}
	if e.rts {
		e.readBits.SetRange(addr, size)
		return
	}
	e.accessRange(addr, size, false)
}

func (e *hashEngine) WriteRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	if e.capErr != nil {
		return
	}
	if e.expandRanges {
		for i := 0; i < count; i++ {
			e.WriteHook(addr+mem.Addr(uint64(i)*elemBytes), elemBytes)
		}
		return
	}
	size := uint64(count) * elemBytes
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	if e.deadSpan(addr, size) {
		return
	}
	if e.rts {
		e.writeBits.SetRange(addr, size)
		return
	}
	e.accessRange(addr, size, true)
}

// StrandEnd flushes the bit hashmaps (CompRTS only) and replays the
// deduplicated intervals against the word-granularity access history, then
// samples the footprint high-water mark and the hard cap.
func (e *hashEngine) StrandEnd() {
	if e.capErr != nil {
		return
	}
	if e.rts {
		e.flush(e.readBits, false)
		e.flush(e.writeBits, true)
	}
	if b := e.histBytes(); b > e.stats.HistoryBytesPeak {
		e.stats.HistoryBytesPeak = b
		if e.maxBytes > 0 && b > e.maxBytes {
			e.capErr = &HistoryCapError{Limit: e.maxBytes, Bytes: b}
		}
	}
}

func (e *hashEngine) flush(bits *coalesce.BitSet, isWrite bool) {
	e.scratch = e.scratch[:0]
	bits.Flush(func(start mem.Addr, size uint64) {
		e.scratch = append(e.scratch, span{addr: start, size: size})
	})
	if len(e.scratch) == 0 {
		return
	}
	var t0 time.Time
	if e.timeAH {
		t0 = time.Now()
	}
	// Spans on retired pages drop before they are counted as intervals —
	// page-local, so every execution mode drops the same spans. A page can
	// also retire mid-flush (its threshold race fires inside accessRange);
	// the per-word guard there drops the rest of that page's words and the
	// span check here drops its later spans.
	var n, bytes uint64
	for _, s := range e.scratch {
		if e.nQuiesced > 0 && e.quiescedIdx(uint64(s.addr)>>coalesce.PageBytesBits) {
			continue
		}
		n++
		bytes += s.size
		e.accessRange(s.addr, s.size, isWrite)
	}
	if isWrite {
		e.stats.WriteIntervals += n
		e.stats.WriteIntervalBytes += bytes
	} else {
		e.stats.ReadIntervals += n
		e.stats.ReadIntervalBytes += bytes
	}
	if e.timeAH {
		e.stats.AccessHistoryTime += time.Since(t0)
	}
}

// histBytes estimates the engine's live footprint for this run: shadow
// pages currently in the directory plus live coalescing bit pages. Warm
// capacity parked on free lists across Reset is excluded so a Runner that
// auto-resets after a MaxHistoryBytes trip starts the next run near zero;
// quiesced pages are retired to the free list and leave this measure.
func (e *hashEngine) histBytes() uint64 {
	b := e.table.Bytes()
	if e.rts {
		b += uint64(e.readBits.LivePages()+e.writeBits.LivePages()) * bitPageBytes
	}
	return b
}

// CapError returns the history-cap error, if the footprint tripped
// Config.MaxHistoryBytes during the run.
func (e *hashEngine) CapError() error { return e.capErr }

func (e *hashEngine) Finish() {
	e.StrandEnd()
	e.stats.AccessHistoryBytes = e.table.Bytes()
}

func (e *hashEngine) Stats() *Stats { return &e.stats }

// Reset returns the engine to its freshly-constructed state: the shadow
// table retires its pages to the freelist (capacity retained) and the bit
// hashmaps drop any mid-strand state from an aborted run.
func (e *hashEngine) Reset() {
	e.table.Reset()
	if e.rts {
		e.readBits.Reset()
		e.writeBits.Reset()
	}
	e.scratch = e.scratch[:0]
	e.capErr = nil
	e.nQuiesced = 0
	e.lastQIdx, e.lastQ = 0, false
	for k := range e.pageRaces {
		delete(e.pageRaces, k)
	}
	e.stats = Stats{}
}

// Footprint reports the engine's retained warm capacity.
func (e *hashEngine) Footprint() Footprint {
	f := Footprint{HistPages: e.table.Pages() + e.table.FreePages()}
	if e.rts {
		f.BitPages = e.readBits.Pages() + e.writeBits.Pages()
	}
	return f
}
