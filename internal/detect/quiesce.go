package detect

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrHistoryCap is the sentinel every history-cap error unwraps to; callers
// match it with errors.Is to distinguish a resource-bound abort from a
// detector failure.
var ErrHistoryCap = errors.New("detect: access history exceeded MaxHistoryBytes")

// HistoryCapError reports that an engine's retained access history crossed
// the configured cap. It wraps ErrHistoryCap. The overshoot is bounded by
// one strand's worth of history: the check runs at strand boundaries.
type HistoryCapError struct {
	Limit uint64 // the configured per-engine budget
	Bytes uint64 // the footprint estimate that tripped it
}

func (e *HistoryCapError) Error() string {
	return fmt.Sprintf("detect: access history %d bytes exceeds MaxHistoryBytes budget %d", e.Bytes, e.Limit)
}

func (e *HistoryCapError) Unwrap() error { return ErrHistoryCap }

// quiesceSetCap bounds the registry. It is a power of two. 4096 pages cover
// 256 MiB of quiesced address space; a workload racing on more than that is
// beyond what the producer-side fast path needs to optimize, and a full set
// simply stops absorbing inserts (conservatively sound — pages not in the
// registry are still dropped engine-side).
const quiesceSetCap = 4096

// QuiesceSet is a fixed-capacity concurrent set of quiesced page indices.
// Engines (detector goroutines) Add; producer-side stages Contains. It is
// insert-only during a run — monotonicity is what makes producer-side drops
// sound: once a page is observed quiesced, every event the producer has yet
// to emit is later in the serial order than the quiesce point, so the
// owning engine would drop it anyway. Reset may only be called when no
// goroutine is concurrently using the set (between runs).
type QuiesceSet struct {
	slots [quiesceSetCap]atomic.Uint64 // page index + 1; 0 = empty
	n     atomic.Int64
}

// NewQuiesceSet returns an empty registry.
func NewQuiesceSet() *QuiesceSet { return &QuiesceSet{} }

// Add inserts the page index. When the set is full the insert is dropped —
// the engine-side quiesce check remains authoritative.
func (s *QuiesceSet) Add(page uint64) {
	if s.n.Load() >= quiesceSetCap/2 {
		return // keep probe chains short; past half full, stop absorbing
	}
	v := page + 1
	mask := uint64(quiesceSetCap - 1)
	for i := (page * 0x9E3779B97F4A7C15) >> (64 - 12); ; i = (i + 1) & mask {
		cur := s.slots[i].Load()
		if cur == v {
			return // already present
		}
		if cur == 0 {
			if s.slots[i].CompareAndSwap(0, v) {
				s.n.Add(1)
				return
			}
			if s.slots[i].Load() == v {
				return
			}
			// lost the race to a different key; keep probing
		}
	}
}

// Contains reports whether the page index has been Added. Lock-free; may
// miss an insert that is concurrently in flight, which is always safe (the
// caller falls back to emitting the event and the engine drops it).
func (s *QuiesceSet) Contains(page uint64) bool {
	if s.n.Load() == 0 {
		return false
	}
	v := page + 1
	mask := uint64(quiesceSetCap - 1)
	for i := (page * 0x9E3779B97F4A7C15) >> (64 - 12); ; i = (i + 1) & mask {
		cur := s.slots[i].Load()
		if cur == v {
			return true
		}
		if cur == 0 {
			return false
		}
	}
}

// Len returns the number of pages registered.
func (s *QuiesceSet) Len() int { return int(s.n.Load()) }

// Reset empties the set. Callers must guarantee no concurrent Add/Contains.
func (s *QuiesceSet) Reset() {
	if s.n.Load() == 0 {
		return
	}
	for i := range s.slots {
		s.slots[i].Store(0)
	}
	s.n.Store(0)
}
