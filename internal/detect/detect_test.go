package detect

import (
	"strings"
	"testing"

	"stint/internal/spord"
)

// allModes are the real engines (not Off/ReachOnly).
var allModes = []Mode{Vanilla, Compiler, CompRTS, STINT, STINTUnbalanced, STINTSkiplist}

// script drives an engine through a minimal fork-join execution at the
// spord level: the parent writes before the spawn (series with everything),
// the child and the continuation then perform the given accesses, which are
// logically parallel with each other.
func runConflictScript(t *testing.T, mode Mode, childWrite, contWrite bool, childAddr, contAddr uint64, size uint64) []Race {
	t.Helper()
	sp := spord.New()
	var races []Race
	e := New(Config{Mode: mode, OnRace: func(r Race) { races = append(races, r) }}, sp)
	f := &spord.Frame{}

	e.WriteHook(0x9000, 4) // series access; must never race
	e.StrandEnd()
	_, cont := sp.Spawn(f)
	if childWrite {
		e.WriteHook(childAddr, size)
	} else {
		e.ReadHook(childAddr, size)
	}
	e.StrandEnd()
	sp.Restore(cont)
	if contWrite {
		e.WriteHook(contAddr, size)
	} else {
		e.ReadHook(contAddr, size)
	}
	e.StrandEnd()
	sp.Sync(f)
	e.Finish()
	return races
}

func TestEnginesReportWriteWriteConflict(t *testing.T) {
	for _, m := range allModes {
		races := runConflictScript(t, m, true, true, 0x1000, 0x1000, 8)
		if len(races) == 0 {
			t.Errorf("%v: write-write conflict missed", m)
			continue
		}
		r := races[0]
		if !r.PrevWrite || !r.CurWrite {
			t.Errorf("%v: race kinds wrong: %+v", m, r)
		}
	}
}

func TestEnginesReportReadWriteConflict(t *testing.T) {
	for _, m := range allModes {
		races := runConflictScript(t, m, false, true, 0x1000, 0x1000, 4)
		if len(races) == 0 {
			t.Errorf("%v: read-write conflict missed", m)
		}
	}
}

func TestEnginesIgnoreReadRead(t *testing.T) {
	for _, m := range allModes {
		if races := runConflictScript(t, m, false, false, 0x1000, 0x1000, 4); len(races) != 0 {
			t.Errorf("%v: read-read flagged: %v", m, races)
		}
	}
}

func TestEnginesIgnoreDisjointAddresses(t *testing.T) {
	for _, m := range allModes {
		if races := runConflictScript(t, m, true, true, 0x1000, 0x2000, 8); len(races) != 0 {
			t.Errorf("%v: disjoint writes flagged: %v", m, races)
		}
	}
}

func TestPartialOverlapReported(t *testing.T) {
	for _, m := range allModes {
		races := runConflictScript(t, m, true, true, 0x1000, 0x1004, 8)
		if len(races) == 0 {
			t.Errorf("%v: 4-byte overlap of two 8-byte writes missed", m)
		}
	}
}

func TestVanillaExpandsRangeHooks(t *testing.T) {
	sp := spord.New()
	e := New(Config{Mode: Vanilla}, sp)
	e.ReadRangeHook(0x1000, 10, 4)
	if got := e.Stats().ReadHookCalls; got != 10 {
		t.Errorf("vanilla ReadHookCalls = %d, want 10 (one per element)", got)
	}
	c := New(Config{Mode: Compiler}, sp)
	c.ReadRangeHook(0x1000, 10, 4)
	if got := c.Stats().ReadHookCalls; got != 1 {
		t.Errorf("compiler ReadHookCalls = %d, want 1 (coalesced)", got)
	}
	if e.Stats().ReadAccesses != c.Stats().ReadAccesses {
		t.Errorf("access counts differ: %d vs %d", e.Stats().ReadAccesses, c.Stats().ReadAccesses)
	}
}

func TestCompRTSDefersChecksToStrandEnd(t *testing.T) {
	sp := spord.New()
	var races []Race
	e := New(Config{Mode: CompRTS, OnRace: func(r Race) { races = append(races, r) }}, sp)
	f := &spord.Frame{}
	_, cont := sp.Spawn(f)
	e.WriteHook(0x1000, 4)
	e.StrandEnd()
	sp.Restore(cont)
	e.WriteHook(0x1000, 4)
	if len(races) != 0 {
		t.Fatal("race reported before strand end")
	}
	e.StrandEnd()
	if len(races) == 0 {
		t.Fatal("race not reported at strand end")
	}
}

func TestRuntimeCoalescingMergesAdjacentHooks(t *testing.T) {
	sp := spord.New()
	e := New(Config{Mode: STINT}, sp)
	for i := 0; i < 64; i++ {
		e.WriteHook(uint64(0x1000+4*i), 4)
	}
	e.StrandEnd()
	st := e.Stats()
	if st.WriteIntervals != 1 {
		t.Errorf("WriteIntervals = %d, want 1", st.WriteIntervals)
	}
	if st.WriteIntervalBytes != 256 {
		t.Errorf("WriteIntervalBytes = %d, want 256", st.WriteIntervalBytes)
	}
}

func TestFinishFlushesLastStrand(t *testing.T) {
	sp := spord.New()
	var races []Race
	e := New(Config{Mode: STINT, OnRace: func(r Race) { races = append(races, r) }}, sp)
	f := &spord.Frame{}
	_, cont := sp.Spawn(f)
	e.WriteHook(0x1000, 4)
	e.StrandEnd()
	sp.Restore(cont)
	e.WriteHook(0x1000, 4)
	// No StrandEnd: Finish must flush the continuation strand itself.
	e.Finish()
	if len(races) == 0 {
		t.Fatal("Finish did not flush the final strand")
	}
}

func TestTreapStatsPopulatedOnFinish(t *testing.T) {
	sp := spord.New()
	e := New(Config{Mode: STINT}, sp)
	e.WriteHook(0x1000, 64)
	e.ReadHook(0x2000, 64)
	e.Finish()
	st := e.Stats()
	if st.TreapOps == 0 {
		t.Error("TreapOps = 0 after Finish")
	}
	if st.AccessHistoryBytes == 0 {
		t.Error("AccessHistoryBytes = 0 after Finish")
	}
}

func TestHashOpsCounted(t *testing.T) {
	sp := spord.New()
	e := New(Config{Mode: Vanilla}, sp)
	e.WriteHook(0x1000, 16) // 4 words
	if got := e.Stats().HashOps; got != 4 {
		t.Errorf("HashOps = %d, want 4", got)
	}
}

func TestModeStringRoundTrip(t *testing.T) {
	for _, m := range append([]Mode{Off, ReachOnly}, allModes...) {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("junk"); err == nil {
		t.Error("ParseMode accepted junk")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode has empty String")
	}
}

func TestRaceString(t *testing.T) {
	r := Race{Addr: 0x1000, Size: 8, Prev: 1, Cur: 2, PrevWrite: true, CurWrite: false}
	s := r.String()
	for _, want := range []string{"write", "read", "strand 1", "strand 2", "0x1000"} {
		if !strings.Contains(s, want) {
			t.Errorf("Race.String() = %q missing %q", s, want)
		}
	}
}

func TestNopEngineDoesNothing(t *testing.T) {
	sp := spord.New()
	for _, m := range []Mode{Off, ReachOnly} {
		e := New(Config{Mode: m}, sp)
		e.WriteHook(0x1000, 4)
		e.ReadRangeHook(0x1000, 4, 4)
		e.WriteRangeHook(0x1000, 4, 4)
		e.StrandEnd()
		e.Finish()
		if st := e.Stats(); st.ReadAccesses != 0 || st.Races != 0 {
			t.Errorf("%v engine recorded activity: %+v", m, st)
		}
	}
}

func TestWordsIn(t *testing.T) {
	cases := []struct {
		addr, size, want uint64
	}{
		{0, 4, 1}, {0, 8, 2}, {2, 4, 2}, {0, 1, 1}, {3, 2, 2}, {4, 0, 0}, {0, 16, 4},
	}
	for _, c := range cases {
		if got := wordsIn(c.addr, c.size); got != c.want {
			t.Errorf("wordsIn(%d,%d) = %d, want %d", c.addr, c.size, got, c.want)
		}
	}
}

func TestLeftmostReaderSemantics(t *testing.T) {
	// Three siblings read the same word; then the parent (after sync)
	// writes it. Every engine must flag the race even though only one
	// reader is stored — the leftmost reader suffices (Feng–Leiserson).
	for _, m := range allModes {
		sp := spord.New()
		var races []Race
		e := New(Config{Mode: m, OnRace: func(r Race) { races = append(races, r) }}, sp)
		f := &spord.Frame{}
		for i := 0; i < 3; i++ {
			e.StrandEnd()
			_, cont := sp.Spawn(f)
			e.ReadHook(0x1000, 4)
			e.StrandEnd()
			sp.Restore(cont)
		}
		// A fourth parallel sibling writes: race with some stored reader.
		e.StrandEnd()
		_, cont := sp.Spawn(f)
		e.WriteHook(0x1000, 4)
		e.StrandEnd()
		sp.Restore(cont)
		sp.Sync(f)
		e.Finish()
		if len(races) == 0 {
			t.Errorf("%v: read-write race via stored leftmost reader missed", m)
		}
		// After the sync, a write is in series with all readers.
		races = races[:0]
		sp2 := spord.New()
		e2 := New(Config{Mode: m, OnRace: func(r Race) { races = append(races, r) }}, sp2)
		f2 := &spord.Frame{}
		for i := 0; i < 3; i++ {
			e2.StrandEnd()
			_, cont := sp2.Spawn(f2)
			e2.ReadHook(0x1000, 4)
			e2.StrandEnd()
			sp2.Restore(cont)
		}
		e2.StrandEnd()
		sp2.Sync(f2)
		e2.WriteHook(0x1000, 4)
		e2.Finish()
		if len(races) != 0 {
			t.Errorf("%v: synced write flagged against readers: %v", m, races)
		}
	}
}
