// Package detect implements the race-detector engines evaluated in the
// paper: the vanilla word-granularity detector, the compile-time-coalescing
// variant, the comp+rts variant that adds runtime coalescing over a hashmap
// access history, and STINT, which adds the interval-treap access history.
//
// All engines share the SP-Order reachability substrate (stint/internal/
// spord) and receive the same instrumentation events from the fork-join
// runner: word-granularity hooks, compiler-coalesced range hooks, and
// strand-end notifications. They differ only in how the access history is
// represented and when races are checked — exactly the four configurations
// of the paper's Figure 5.
package detect

import (
	"fmt"
	"time"

	"stint/internal/mem"
)

// Reach abstracts the reachability component. The fork-join runner supplies
// SP-Order (stint/internal/spord); the pipeline runner supplies 2D-grid
// dominance reachability. Strands are identified by dense int32 IDs; the
// engines only ever compare the currently executing strand against stored
// IDs, plus stored-vs-new left-of arbitration in the read history.
type Reach interface {
	// CurrentID identifies the strand the program is executing now.
	CurrentID() int32
	// Parallel reports whether two strands are logically parallel.
	Parallel(a, b int32) bool
	// LeftOf reports whether strand a is left-of strand b: parallel and
	// earlier in sequential order, or in series and later.
	LeftOf(a, b int32) bool
}

// Mode selects a detector engine.
type Mode int

const (
	// Off disables detection entirely; hooks are not invoked.
	Off Mode = iota
	// ReachOnly maintains SP-Order but no access history, isolating the
	// reachability component's overhead (Figure 1's "reach." column).
	ReachOnly
	// Vanilla checks every memory access word by word against a two-level
	// page-table hashmap. Compiler-coalesced range hooks are expanded back
	// into per-access hooks, modeling per-access instrumentation.
	Vanilla
	// Compiler is Vanilla plus compile-time coalescing: range hooks reach
	// the access history as single calls that iterate words internally.
	Compiler
	// CompRTS adds runtime coalescing: accesses set bits in a bit hashmap
	// and race checks run once per strand over deduplicated words, still
	// against the word-granularity hashmap access history.
	CompRTS
	// STINT is the paper's full system: compile-time and runtime coalescing
	// with the interval-treap access history of §4.
	STINT
	// STINTUnbalanced is the ablation that turns off treap priorities,
	// degrading the access-history trees to plain BSTs.
	STINTUnbalanced
	// STINTSkiplist replaces the treap with a Park-et-al-style interval
	// skiplist that never removes redundant intervals (related-work
	// comparison).
	STINTSkiplist
)

// String returns the mode name used in tables and CLI flags.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case ReachOnly:
		return "reach"
	case Vanilla:
		return "vanilla"
	case Compiler:
		return "compiler"
	case CompRTS:
		return "comp+rts"
	case STINT:
		return "stint"
	case STINTUnbalanced:
		return "stint-unbalanced"
	case STINTSkiplist:
		return "stint-skiplist"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode converts a mode name (as produced by String) back to a Mode.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{Off, ReachOnly, Vanilla, Compiler, CompRTS, STINT, STINTUnbalanced, STINTSkiplist} {
		if m.String() == s {
			return m, nil
		}
	}
	return Off, fmt.Errorf("detect: unknown mode %q", s)
}

// Race describes one detected determinacy race: two logically parallel
// accesses to an overlapping address range, at least one a write.
type Race struct {
	Addr mem.Addr // start of the overlapping range
	Size uint64   // length of the overlapping range in bytes
	Prev int32    // strand stored in the access history
	Cur  int32    // strand performing the current access
	// PrevWrite and CurWrite give the access kinds; at least one is true.
	PrevWrite bool
	CurWrite  bool
}

func (r Race) String() string {
	kind := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	return fmt.Sprintf("race: %s by strand %d and %s by strand %d on [%#x,%#x)",
		kind(r.PrevWrite), r.Prev, kind(r.CurWrite), r.Cur, r.Addr, r.Addr+r.Size)
}

// Stats aggregates the counters behind every figure in the paper's
// evaluation.
type Stats struct {
	// Word-granularity access counts, duplicates included (Fig 1, Fig 6
	// "acc." columns).
	ReadAccesses  uint64
	WriteAccesses uint64
	// Instrumentation calls as emitted after compile-time coalescing
	// (Fig 6 "compiler int." columns: each hook call is one interval).
	ReadHookCalls  uint64
	WriteHookCalls uint64
	// Intervals after runtime coalescing (Fig 6 "both int." columns) and
	// their total size in bytes (Fig 6 "sum", deduplicated within strands).
	ReadIntervals      uint64
	WriteIntervals     uint64
	ReadIntervalBytes  uint64
	WriteIntervalBytes uint64
	// Access-history operation counts: per-word hashmap operations and
	// treap operations (Fig 8 "hash ops" / "treap ops").
	HashOps  uint64
	TreapOps uint64
	// Treap traversal detail (Fig 8 "# nodes" / "# overlaps" are these
	// divided by TreapOps).
	TreapNodesVisited uint64
	TreapOverlaps     uint64
	// Time spent in the access history alone (Fig 7, Fig 8 "oh" columns),
	// measured only when Config.TimeAccessHistory is set.
	AccessHistoryTime time.Duration
	// Races found (every report, before any deduplication by the caller).
	Races uint64
	// AccessHistoryBytes approximates the access-history footprint.
	AccessHistoryBytes uint64
	// AllocObjects and AllocBytes are the heap-allocation deltas measured
	// around the instrumented run (runtime.ReadMemStats before and after):
	// the detector's GC pressure, including the program under test. They
	// are populated by the stint runner, not by the engines, and back the
	// allocation-regression numbers in EXPERIMENTS.md.
	AllocObjects uint64
	AllocBytes   uint64
	// PipelineDetectTime is the detector goroutine's busy time under
	// Options.Async: the wall clock it spent processing event batches,
	// excluding waits for the producer. Zero in synchronous mode. On a
	// machine with >=2 cores the pipelined wall clock approaches
	// max(compute, PipelineDetectTime) instead of their sum. Populated by
	// the stint runner's consumer, not by the engines.
	PipelineDetectTime time.Duration
	// BatchesSkipped counts broadcast batches shard workers took on the
	// summary fast path: the batch's page mask proved no access could map
	// to the worker, so it replayed only the structure events. Zero in
	// synchronous and plain-async modes. Populated by the sharded runner's
	// merge (summed across workers), not by the engines, and — like the
	// other runner-populated fields — deliberately not Accumulated.
	BatchesSkipped uint64
	// EventsStreamed and StreamBytes describe the async event stream:
	// logical events published through the pipeline ring and the wire bytes
	// they occupied (StreamBytes/EventsStreamed is the stream's bytes-per-
	// event — 16 under the fixed encoding, typically 2-3 under the compact
	// delta encoding). Zero in synchronous mode. Populated by the stint
	// runner's drain, not by the engines, and not Accumulated.
	EventsStreamed uint64
	StreamBytes    uint64
	// PagesQuiesced counts 64 KiB history pages retired because they hit
	// Config.QuiesceThreshold recorded races. Quiesce decisions are
	// page-local and taken at span boundaries, so the count is identical
	// across execution modes.
	PagesQuiesced uint64
	// HistoryBytesPeak is the high-water mark of the engine's retained
	// access-history footprint (history stores plus coalescing bitmaps),
	// sampled at strand boundaries. Pool-chunk granularity makes it an
	// estimate that varies with shard count; compare it only within one
	// configuration.
	HistoryBytesPeak uint64
}

// Accumulate adds o's deterministic detection counters into s. It is the
// sharded merge: pages are disjoint across workers and flushed intervals
// page-contained, so per-worker counters partition the synchronous run's
// totals and summing them restores it exactly. The runner-populated fields
// (AllocObjects, AllocBytes, PipelineDetectTime) are owned by whoever
// orchestrates the run and deliberately not accumulated.
func (s *Stats) Accumulate(o *Stats) {
	s.ReadAccesses += o.ReadAccesses
	s.WriteAccesses += o.WriteAccesses
	s.ReadHookCalls += o.ReadHookCalls
	s.WriteHookCalls += o.WriteHookCalls
	s.ReadIntervals += o.ReadIntervals
	s.WriteIntervals += o.WriteIntervals
	s.ReadIntervalBytes += o.ReadIntervalBytes
	s.WriteIntervalBytes += o.WriteIntervalBytes
	s.HashOps += o.HashOps
	s.TreapOps += o.TreapOps
	s.TreapNodesVisited += o.TreapNodesVisited
	s.TreapOverlaps += o.TreapOverlaps
	s.AccessHistoryTime += o.AccessHistoryTime
	s.Races += o.Races
	s.AccessHistoryBytes += o.AccessHistoryBytes
	s.PagesQuiesced += o.PagesQuiesced
	s.HistoryBytesPeak += o.HistoryBytesPeak
}

// Config configures an engine.
type Config struct {
	Mode Mode
	// OnRace, if set, receives every race as it is found.
	OnRace func(Race)
	// TimeAccessHistory enables the per-strand timers behind Figures 7
	// and 8. It costs a few clock reads per strand.
	TimeAccessHistory bool
	// QuiesceThreshold, when positive, retires a 64 KiB history page once
	// it has produced that many races: its history drops back onto the free
	// lists and later accesses wholly within it become no-ops. Zero
	// disables quiescing.
	QuiesceThreshold int
	// MaxHistoryBytes, when positive, caps this engine's retained
	// access-history footprint. The check runs at strand boundaries; on
	// trip the engine freezes (hooks become no-ops) and records a
	// HistoryCapError retrievable via CapErrorOf.
	MaxHistoryBytes uint64
	// Quiesced, if non-nil, is a cross-goroutine registry the engine
	// publishes quiesced page indices into, letting producer-side stages
	// drop or de-mask accesses to dead pages.
	Quiesced *QuiesceSet
}

// Engine is the event interface between the fork-join runner and a
// detector. The runner guarantees that StrandEnd is called while the
// finishing strand is still current in the SP structure, before any
// spawn/sync transition, and that Finish is called once after the program
// completes.
type Engine interface {
	// ReadHook and WriteHook report one memory access of size bytes at
	// addr (per-access instrumentation).
	ReadHook(addr mem.Addr, size uint64)
	WriteHook(addr mem.Addr, size uint64)
	// ReadRangeHook and WriteRangeHook report a compiler-coalesced access
	// to count elements of elemBytes bytes each starting at addr.
	ReadRangeHook(addr mem.Addr, count int, elemBytes uint64)
	WriteRangeHook(addr mem.Addr, count int, elemBytes uint64)
	// StrandEnd flushes per-strand state; the ending strand is still
	// current.
	StrandEnd()
	// Finish flushes any remaining state after the final strand.
	Finish()
	// Stats returns the accumulated counters.
	Stats() *Stats
	// Reset returns the engine to its freshly-constructed state while
	// retaining its warm capacity (slab pools, page directories, coalescing
	// freelists), so a long-lived runner can reuse one engine across runs
	// with zero steady-state heap growth. A reset engine must be
	// indistinguishable from a fresh one: deterministic seeds re-derive,
	// counters zero, and no access recorded before the Reset can influence
	// a check after it.
	Reset()
}

// New builds the engine for cfg.Mode over the given reachability structure.
// Off and ReachOnly return a no-op engine (the runner additionally skips
// hook dispatch entirely for Off).
func New(cfg Config, reach Reach) Engine {
	switch cfg.Mode {
	case Off, ReachOnly:
		return &nopEngine{}
	case Vanilla:
		return newHashEngine(cfg, reach, true, false)
	case Compiler:
		return newHashEngine(cfg, reach, false, false)
	case CompRTS:
		return newHashEngine(cfg, reach, false, true)
	case STINT:
		return newTreeEngine(cfg, reach, treeBackendTreap)
	case STINTUnbalanced:
		return newTreeEngine(cfg, reach, treeBackendBST)
	case STINTSkiplist:
		return newTreeEngine(cfg, reach, treeBackendSkiplist)
	}
	panic(fmt.Sprintf("detect: no engine for mode %v", cfg.Mode))
}

// Footprint describes an engine's retained warm capacity — the memory a
// reset-and-reuse lifecycle keeps parked between runs. The reuse-soak
// suite asserts every field stops growing once a reused engine has seen
// its peak workload (the zero-steady-state-heap-growth contract).
type Footprint struct {
	PoolChunks int // treap node-slab chunks (live + free)
	PageDirCap int // page-directory backing capacity
	HistPages  int // history pages ever allocated (live + parked)
	BitPages   int // coalescing bit-hashmap pages ever allocated
}

// Add accumulates o into f (summing across shard workers).
func (f *Footprint) Add(o Footprint) {
	f.PoolChunks += o.PoolChunks
	f.PageDirCap += o.PageDirCap
	f.HistPages += o.HistPages
	f.BitPages += o.BitPages
}

// FootprintOf returns e's warm footprint, or a zero Footprint for engines
// that do not expose one (the no-op and oracle engines).
func FootprintOf(e Engine) Footprint {
	if f, ok := e.(interface{ Footprint() Footprint }); ok {
		return f.Footprint()
	}
	return Footprint{}
}

// CapErrorOf returns the history-cap error e recorded, or nil — nil for
// engines without cap support (the no-op and oracle engines) and for
// engines that stayed under Config.MaxHistoryBytes.
func CapErrorOf(e Engine) error {
	if c, ok := e.(interface{ CapError() error }); ok {
		return c.CapError()
	}
	return nil
}

// nopEngine supports Off and ReachOnly.
type nopEngine struct{ stats Stats }

func (e *nopEngine) ReadHook(mem.Addr, uint64)            {}
func (e *nopEngine) WriteHook(mem.Addr, uint64)           {}
func (e *nopEngine) ReadRangeHook(mem.Addr, int, uint64)  {}
func (e *nopEngine) WriteRangeHook(mem.Addr, int, uint64) {}
func (e *nopEngine) StrandEnd()                           {}
func (e *nopEngine) Finish()                              {}
func (e *nopEngine) Stats() *Stats                        { return &e.stats }
func (e *nopEngine) Reset()                               { e.stats = Stats{} }
