package detect

import (
	"time"

	"stint/internal/coalesce"
	"stint/internal/core"
	"stint/internal/mem"
	"stint/internal/pagedir"
	"stint/internal/skiplist"
)

// store abstracts the interval access history so the same detector pipeline
// can run over the paper's treap, the plain-BST ablation, and the Park et
// al. skiplist. core.Tree and skiplist.List both satisfy it.
type store interface {
	InsertWrite(x core.Interval, onOverlap core.OverlapFunc)
	InsertRead(x core.Interval, leftOf core.LeftOfFunc, onOverlap core.OverlapFunc)
	Query(x core.Interval, onOverlap core.OverlapFunc)
	Stats() core.Stats
	Size() int
	// Reset empties the store for reuse, re-deriving any deterministic
	// seeds so a reused store behaves byte-identically to a fresh one.
	Reset()
}

type treeBackend int

const (
	treeBackendTreap treeBackend = iota
	treeBackendBST
	treeBackendSkiplist
)

// histPage is one shadow page's interval access history: the paper's §4
// observation that the two interval stores are independent per 64 KiB page.
// Keeping the history per page (rather than one global pair of trees) is
// what makes page-hash sharding exact: a shard that owns a page owns every
// interval that can ever overlap intervals of that page, because coalesce
// never emits an interval crossing a page boundary.
type histPage struct {
	read, write store
}

// treeEngine is STINT: compile-time and runtime coalescing feeding an
// interval-granularity access history. Hooks only set bits; at strand end
// the deduplicated intervals are checked and inserted:
//
//   - each read interval is checked against the page's write store (a
//     parallel last writer is a race) and inserted into the page's read
//     store, where the left-of relation decides which reader survives on
//     overlap;
//   - each write interval is checked against the page's read store (a
//     parallel leftmost reader is a race) and inserted into the write
//     store, reporting every displaced parallel writer as a race.
//
// Every page's stores are deterministically seeded, so the shape of each
// page's treap depends only on that page's own insertion sequence — the
// property the sharded equivalence suite checks byte-for-byte.
type treeEngine struct {
	stats     Stats
	reach     Reach
	onRace    func(Race)
	timeAH    bool
	backend   treeBackend
	readBits  *coalesce.BitSet
	writeBits *coalesce.BitSet
	pages     pagedir.Dir[histPage]
	pool      *core.Pool  // node slabs shared by every page's trees
	freePages []*histPage // parked pages with reset stores, reused by pageFor
	nPages    int         // histPages ever allocated (live + parked)
	lastIdx   uint64
	lastPage  *histPage
	leftOf    core.LeftOfFunc
	scratch   []span

	// Per-flush state and preallocated callbacks: the overlap callbacks
	// capture the engine, not the strand, so flushing allocates nothing.
	curID         int32
	readQueryCB   core.OverlapFunc // write-store overlap vs a read interval
	writeQueryCB  core.OverlapFunc // read-store overlap vs a write interval
	writeInsertCB core.OverlapFunc // write-store overlap vs a write interval
}

func newTreeEngine(cfg Config, reach Reach, backend treeBackend) *treeEngine {
	e := &treeEngine{
		reach:     reach,
		onRace:    cfg.OnRace,
		timeAH:    cfg.TimeAccessHistory,
		backend:   backend,
		readBits:  coalesce.New(),
		writeBits: coalesce.New(),
	}
	if backend != treeBackendSkiplist {
		e.pool = core.NewPool()
	}
	e.leftOf = reach.LeftOf
	e.readQueryCB = func(acc int32, lo, hi uint64) {
		if e.reach.Parallel(acc, e.curID) {
			e.race(Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: e.curID, PrevWrite: true, CurWrite: false})
		}
	}
	e.writeQueryCB = func(acc int32, lo, hi uint64) {
		if e.reach.Parallel(acc, e.curID) {
			e.race(Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: e.curID, PrevWrite: false, CurWrite: true})
		}
	}
	e.writeInsertCB = func(acc int32, lo, hi uint64) {
		if e.reach.Parallel(acc, e.curID) {
			e.race(Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: e.curID, PrevWrite: true, CurWrite: true})
		}
	}
	return e
}

// pageFor returns the history for the page containing byte index idx<<16,
// creating its stores on first touch.
func (e *treeEngine) pageFor(idx uint64) *histPage {
	if e.lastPage != nil && idx == e.lastIdx {
		return e.lastPage
	}
	p := e.pages.Get(idx)
	if p == nil {
		if n := len(e.freePages); n > 0 {
			// A parked page's stores were Reset when it was retired, so it is
			// indistinguishable from a fresh page: same seeds, empty stores.
			p = e.freePages[n-1]
			e.freePages[n-1] = nil
			e.freePages = e.freePages[:n-1]
		} else {
			p = &histPage{}
			e.nPages++
			switch e.backend {
			case treeBackendTreap:
				p.read, p.write = core.NewTreeIn(e.pool), core.NewTreeIn(e.pool)
			case treeBackendBST:
				rt, wt := core.NewTreeIn(e.pool), core.NewTreeIn(e.pool)
				rt.SetBalancing(false)
				wt.SetBalancing(false)
				p.read, p.write = rt, wt
			case treeBackendSkiplist:
				p.read, p.write = skiplist.New(), skiplist.New()
			}
		}
		e.pages.Put(idx, p)
	}
	e.lastIdx, e.lastPage = idx, p
	return p
}

func (e *treeEngine) race(r Race) {
	e.stats.Races++
	if e.onRace != nil {
		e.onRace(r)
	}
}

func (e *treeEngine) ReadHook(addr mem.Addr, size uint64) {
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	setBits(e.readBits, addr, size)
}

func (e *treeEngine) WriteHook(addr mem.Addr, size uint64) {
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	setBits(e.writeBits, addr, size)
}

func (e *treeEngine) ReadRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	size := uint64(count) * elemBytes
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	e.readBits.SetRange(addr, size)
}

func (e *treeEngine) WriteRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	size := uint64(count) * elemBytes
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	e.writeBits.SetRange(addr, size)
}

// StrandEnd flushes both bit hashmaps and runs the interval-granularity
// race checks and access-history updates for the finishing strand. Each
// flushed interval is contained in one page (coalesce splits at page
// boundaries), so it touches exactly one page's stores.
func (e *treeEngine) StrandEnd() {
	e.curID = e.reach.CurrentID()

	// Reads: race-check against the write history, then record.
	e.collect(e.readBits)
	if len(e.scratch) > 0 {
		var bytes uint64
		for _, s := range e.scratch {
			bytes += s.size
		}
		e.stats.ReadIntervals += uint64(len(e.scratch))
		e.stats.ReadIntervalBytes += bytes
		var t0 time.Time
		if e.timeAH {
			t0 = time.Now()
		}
		for _, s := range e.scratch {
			pg := e.pageFor(s.addr >> coalesce.PageBytesBits)
			iv := core.Interval{Start: s.addr, End: s.addr + s.size, Acc: e.curID}
			pg.write.Query(iv, e.readQueryCB)
			pg.read.InsertRead(iv, e.leftOf, nil)
		}
		if e.timeAH {
			e.stats.AccessHistoryTime += time.Since(t0)
		}
	}

	// Writes: race-check against the read history, then insert; displaced
	// parallel writers are races too.
	e.collect(e.writeBits)
	if len(e.scratch) > 0 {
		var bytes uint64
		for _, s := range e.scratch {
			bytes += s.size
		}
		e.stats.WriteIntervals += uint64(len(e.scratch))
		e.stats.WriteIntervalBytes += bytes
		var t0 time.Time
		if e.timeAH {
			t0 = time.Now()
		}
		for _, s := range e.scratch {
			pg := e.pageFor(s.addr >> coalesce.PageBytesBits)
			iv := core.Interval{Start: s.addr, End: s.addr + s.size, Acc: e.curID}
			pg.read.Query(iv, e.writeQueryCB)
			pg.write.InsertWrite(iv, e.writeInsertCB)
		}
		if e.timeAH {
			e.stats.AccessHistoryTime += time.Since(t0)
		}
	}
}

func (e *treeEngine) collect(bits *coalesce.BitSet) {
	e.scratch = e.scratch[:0]
	bits.Flush(func(start mem.Addr, size uint64) {
		e.scratch = append(e.scratch, span{addr: start, size: size})
	})
}

func (e *treeEngine) Finish() {
	e.StrandEnd()
	var agg core.Stats
	var stored int
	e.pages.Range(func(_ uint64, p *histPage) {
		rs, ws := p.read.Stats(), p.write.Stats()
		agg.Ops += rs.Ops + ws.Ops
		agg.NodesVisited += rs.NodesVisited + ws.NodesVisited
		agg.Overlaps += rs.Overlaps + ws.Overlaps
		stored += p.read.Size() + p.write.Size()
	})
	e.stats.TreapOps = agg.Ops
	e.stats.TreapNodesVisited = agg.NodesVisited
	e.stats.TreapOverlaps = agg.Overlaps
	// Approximate footprint: one node per stored interval.
	e.stats.AccessHistoryBytes = uint64(stored) * 48
}

func (e *treeEngine) Stats() *Stats { return &e.stats }

// Reset returns the engine to its freshly-constructed state with its warm
// capacity retained: every live history page has its stores Reset (seeds
// re-derived, contents dropped) and is parked on the page freelist, the
// shared node pool rewinds wholesale, the directory keeps its backing
// array, and the coalescing bit hashmaps clear any mid-strand state an
// aborted run may have left behind. In steady state Reset allocates
// nothing and the retained footprint (pool chunks, directory capacity,
// page count) stops growing once the engine has seen its peak run.
func (e *treeEngine) Reset() {
	e.readBits.Reset()
	e.writeBits.Reset()
	e.pages.Reset(func(p *histPage) {
		p.read.Reset()
		p.write.Reset()
		e.freePages = append(e.freePages, p)
	})
	if e.pool != nil {
		e.pool.Reset()
	}
	e.lastIdx, e.lastPage = 0, nil
	e.scratch = e.scratch[:0]
	e.curID = 0
	e.stats = Stats{}
}

// Footprint reports the engine's retained warm capacity; the reuse-soak
// test asserts it stops growing after warm-up.
func (e *treeEngine) Footprint() Footprint {
	var chunks int
	if e.pool != nil {
		chunks = e.pool.Stats().Chunks
	}
	return Footprint{
		PoolChunks: chunks,
		PageDirCap: e.pages.Cap(),
		HistPages:  e.nPages,
		BitPages:   e.readBits.Pages() + e.writeBits.Pages(),
	}
}

// HistorySizes reports the number of intervals currently stored across all
// pages' read and write histories (used by the skiplist-vs-treap ablation).
func (e *treeEngine) HistorySizes() (read, write int) {
	e.pages.Range(func(_ uint64, p *histPage) {
		read += p.read.Size()
		write += p.write.Size()
	})
	return read, write
}
