package detect

import (
	"time"

	"stint/internal/coalesce"
	"stint/internal/core"
	"stint/internal/mem"
	"stint/internal/skiplist"
)

// store abstracts the interval access history so the same detector pipeline
// can run over the paper's treap, the plain-BST ablation, and the Park et
// al. skiplist. core.Tree and skiplist.List both satisfy it.
type store interface {
	InsertWrite(x core.Interval, onOverlap core.OverlapFunc)
	InsertRead(x core.Interval, leftOf core.LeftOfFunc, onOverlap core.OverlapFunc)
	Query(x core.Interval, onOverlap core.OverlapFunc)
	Stats() core.Stats
	Size() int
}

type treeBackend int

const (
	treeBackendTreap treeBackend = iota
	treeBackendBST
	treeBackendSkiplist
)

// treeEngine is STINT: compile-time and runtime coalescing feeding an
// interval-granularity access history. Hooks only set bits; at strand end
// the deduplicated intervals are checked and inserted:
//
//   - each read interval is checked against the write tree (a parallel last
//     writer is a race) and inserted into the read tree, where the left-of
//     relation decides which reader survives on overlap;
//   - each write interval is checked against the read tree (a parallel
//     leftmost reader is a race) and inserted into the write tree, reporting
//     every displaced parallel writer as a race.
type treeEngine struct {
	stats     Stats
	reach     Reach
	onRace    func(Race)
	timeAH    bool
	readBits  *coalesce.BitSet
	writeBits *coalesce.BitSet
	readHist  store
	writeHist store
	leftOf    core.LeftOfFunc
	scratch   []span

	// Per-flush state and preallocated callbacks: the overlap callbacks
	// capture the engine, not the strand, so flushing allocates nothing.
	curID         int32
	readQueryCB   core.OverlapFunc // write-tree overlap vs a read interval
	writeQueryCB  core.OverlapFunc // read-tree overlap vs a write interval
	writeInsertCB core.OverlapFunc // write-tree overlap vs a write interval
}

func newTreeEngine(cfg Config, reach Reach, backend treeBackend) *treeEngine {
	e := &treeEngine{
		reach:     reach,
		onRace:    cfg.OnRace,
		timeAH:    cfg.TimeAccessHistory,
		readBits:  coalesce.New(),
		writeBits: coalesce.New(),
	}
	switch backend {
	case treeBackendTreap:
		e.readHist, e.writeHist = core.NewTree(), core.NewTree()
	case treeBackendBST:
		rt, wt := core.NewTree(), core.NewTree()
		rt.SetBalancing(false)
		wt.SetBalancing(false)
		e.readHist, e.writeHist = rt, wt
	case treeBackendSkiplist:
		e.readHist, e.writeHist = skiplist.New(), skiplist.New()
	}
	e.leftOf = reach.LeftOf
	e.readQueryCB = func(acc int32, lo, hi uint64) {
		if e.reach.Parallel(acc, e.curID) {
			e.race(Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: e.curID, PrevWrite: true, CurWrite: false})
		}
	}
	e.writeQueryCB = func(acc int32, lo, hi uint64) {
		if e.reach.Parallel(acc, e.curID) {
			e.race(Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: e.curID, PrevWrite: false, CurWrite: true})
		}
	}
	e.writeInsertCB = func(acc int32, lo, hi uint64) {
		if e.reach.Parallel(acc, e.curID) {
			e.race(Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: e.curID, PrevWrite: true, CurWrite: true})
		}
	}
	return e
}

func (e *treeEngine) race(r Race) {
	e.stats.Races++
	if e.onRace != nil {
		e.onRace(r)
	}
}

func (e *treeEngine) ReadHook(addr mem.Addr, size uint64) {
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	setBits(e.readBits, addr, size)
}

func (e *treeEngine) WriteHook(addr mem.Addr, size uint64) {
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	setBits(e.writeBits, addr, size)
}

func (e *treeEngine) ReadRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	size := uint64(count) * elemBytes
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	e.readBits.SetRange(addr, size)
}

func (e *treeEngine) WriteRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	size := uint64(count) * elemBytes
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	e.writeBits.SetRange(addr, size)
}

// StrandEnd flushes both bit hashmaps and runs the interval-granularity
// race checks and access-history updates for the finishing strand.
func (e *treeEngine) StrandEnd() {
	e.curID = e.reach.CurrentID()

	// Reads: race-check against the write history, then record.
	e.collect(e.readBits)
	if len(e.scratch) > 0 {
		var bytes uint64
		for _, s := range e.scratch {
			bytes += s.size
		}
		e.stats.ReadIntervals += uint64(len(e.scratch))
		e.stats.ReadIntervalBytes += bytes
		var t0 time.Time
		if e.timeAH {
			t0 = time.Now()
		}
		for _, s := range e.scratch {
			iv := core.Interval{Start: s.addr, End: s.addr + s.size, Acc: e.curID}
			e.writeHist.Query(iv, e.readQueryCB)
			e.readHist.InsertRead(iv, e.leftOf, nil)
		}
		if e.timeAH {
			e.stats.AccessHistoryTime += time.Since(t0)
		}
	}

	// Writes: race-check against the read history, then insert; displaced
	// parallel writers are races too.
	e.collect(e.writeBits)
	if len(e.scratch) > 0 {
		var bytes uint64
		for _, s := range e.scratch {
			bytes += s.size
		}
		e.stats.WriteIntervals += uint64(len(e.scratch))
		e.stats.WriteIntervalBytes += bytes
		var t0 time.Time
		if e.timeAH {
			t0 = time.Now()
		}
		for _, s := range e.scratch {
			iv := core.Interval{Start: s.addr, End: s.addr + s.size, Acc: e.curID}
			e.readHist.Query(iv, e.writeQueryCB)
			e.writeHist.InsertWrite(iv, e.writeInsertCB)
		}
		if e.timeAH {
			e.stats.AccessHistoryTime += time.Since(t0)
		}
	}
}

func (e *treeEngine) collect(bits *coalesce.BitSet) {
	e.scratch = e.scratch[:0]
	bits.Flush(func(start mem.Addr, size uint64) {
		e.scratch = append(e.scratch, span{addr: start, size: size})
	})
}

func (e *treeEngine) Finish() {
	e.StrandEnd()
	rs, ws := e.readHist.Stats(), e.writeHist.Stats()
	e.stats.TreapOps = rs.Ops + ws.Ops
	e.stats.TreapNodesVisited = rs.NodesVisited + ws.NodesVisited
	e.stats.TreapOverlaps = rs.Overlaps + ws.Overlaps
	// Approximate footprint: one node per stored interval.
	e.stats.AccessHistoryBytes = uint64(e.readHist.Size()+e.writeHist.Size()) * 48
}

func (e *treeEngine) Stats() *Stats { return &e.stats }

// HistorySizes reports the number of intervals currently stored in the read
// and write histories (used by the skiplist-vs-treap ablation).
func (e *treeEngine) HistorySizes() (read, write int) {
	return e.readHist.Size(), e.writeHist.Size()
}
