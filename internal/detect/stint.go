package detect

import (
	"time"

	"stint/internal/coalesce"
	"stint/internal/core"
	"stint/internal/mem"
	"stint/internal/pagedir"
	"stint/internal/skiplist"
)

// store abstracts the interval access history so the same detector pipeline
// can run over the paper's treap, the plain-BST ablation, and the Park et
// al. skiplist. core.Tree and skiplist.List both satisfy it.
type store interface {
	InsertWrite(x core.Interval, onOverlap core.OverlapFunc)
	InsertRead(x core.Interval, leftOf core.LeftOfFunc, onOverlap core.OverlapFunc)
	Query(x core.Interval, onOverlap core.OverlapFunc)
	Stats() core.Stats
	Size() int
	// Reset empties the store for reuse, re-deriving any deterministic
	// seeds so a reused store behaves byte-identically to a fresh one.
	Reset()
	// Drop empties the store like Reset but returns its nodes to any
	// shared slab pool first, so quiescing one page's history makes the
	// memory immediately reusable by sibling pages.
	Drop()
}

type treeBackend int

const (
	treeBackendTreap treeBackend = iota
	treeBackendBST
	treeBackendSkiplist
)

// histPage is one shadow page's interval access history: the paper's §4
// observation that the two interval stores are independent per 64 KiB page.
// Keeping the history per page (rather than one global pair of trees) is
// what makes page-hash sharding exact: a shard that owns a page owns every
// interval that can ever overlap intervals of that page, because coalesce
// never emits an interval crossing a page boundary.
type histPage struct {
	read, write store
	races       int32 // races this page has produced (quiesce accounting)
}

// treeEngine is STINT: compile-time and runtime coalescing feeding an
// interval-granularity access history. Hooks only set bits; at strand end
// the deduplicated intervals are checked and inserted:
//
//   - each read interval is checked against the page's write store (a
//     parallel last writer is a race) and inserted into the page's read
//     store, where the left-of relation decides which reader survives on
//     overlap;
//   - each write interval is checked against the page's read store (a
//     parallel leftmost reader is a race) and inserted into the write
//     store, reporting every displaced parallel writer as a race.
//
// Every page's stores are deterministically seeded, so the shape of each
// page's treap depends only on that page's own insertion sequence — the
// property the sharded equivalence suite checks byte-for-byte.
type treeEngine struct {
	stats     Stats
	reach     Reach
	onRace    func(Race)
	timeAH    bool
	backend   treeBackend
	readBits  *coalesce.BitSet
	writeBits *coalesce.BitSet
	pages     pagedir.Dir[histPage]
	pool      *core.Pool  // node slabs shared by every page's trees
	freePages []*histPage // parked pages with reset stores, reused by pageFor
	nPages    int         // histPages ever allocated (live + parked)
	lastIdx   uint64
	lastPage  *histPage
	leftOf    core.LeftOfFunc
	scratch   []span

	// Quiescing and memory-cap state.
	qthresh   int         // Config.QuiesceThreshold; 0 disables
	maxBytes  uint64      // Config.MaxHistoryBytes; 0 disables
	registry  *QuiesceSet // optional cross-goroutine quiesce registry
	capErr    error       // set once the history footprint trips maxBytes
	retired   core.Stats  // store counters salvaged from quiesced pages
	nQuiesced int         // pages quiesced (fast guard for the hot checks)
	lastQIdx  uint64      // 1-entry quiesced-page cache in front of the dir
	lastQ     bool
	curPage   *histPage // page whose span is being flushed (race accounting)

	// Per-flush state and preallocated callbacks: the overlap callbacks
	// capture the engine, not the strand, so flushing allocates nothing.
	curID         int32
	readQueryCB   core.OverlapFunc // write-store overlap vs a read interval
	writeQueryCB  core.OverlapFunc // read-store overlap vs a write interval
	writeInsertCB core.OverlapFunc // write-store overlap vs a write interval
}

func newTreeEngine(cfg Config, reach Reach, backend treeBackend) *treeEngine {
	e := &treeEngine{
		reach:     reach,
		onRace:    cfg.OnRace,
		timeAH:    cfg.TimeAccessHistory,
		backend:   backend,
		readBits:  coalesce.New(),
		writeBits: coalesce.New(),
		qthresh:   cfg.QuiesceThreshold,
		maxBytes:  cfg.MaxHistoryBytes,
		registry:  cfg.Quiesced,
	}
	if backend != treeBackendSkiplist {
		e.pool = core.NewPool()
	}
	e.leftOf = reach.LeftOf
	e.readQueryCB = func(acc int32, lo, hi uint64) {
		if e.reach.Parallel(acc, e.curID) {
			e.race(Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: e.curID, PrevWrite: true, CurWrite: false})
		}
	}
	e.writeQueryCB = func(acc int32, lo, hi uint64) {
		if e.reach.Parallel(acc, e.curID) {
			e.race(Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: e.curID, PrevWrite: false, CurWrite: true})
		}
	}
	e.writeInsertCB = func(acc int32, lo, hi uint64) {
		if e.reach.Parallel(acc, e.curID) {
			e.race(Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: e.curID, PrevWrite: true, CurWrite: true})
		}
	}
	return e
}

// pageFor returns the history for the page containing byte index idx<<16,
// creating its stores on first touch.
func (e *treeEngine) pageFor(idx uint64) *histPage {
	if e.lastPage != nil && idx == e.lastIdx {
		return e.lastPage
	}
	p := e.pages.Get(idx)
	if p == nil {
		if n := len(e.freePages); n > 0 {
			// A parked page's stores were Reset when it was retired, so it is
			// indistinguishable from a fresh page: same seeds, empty stores.
			p = e.freePages[n-1]
			e.freePages[n-1] = nil
			e.freePages = e.freePages[:n-1]
		} else {
			p = &histPage{}
			e.nPages++
			switch e.backend {
			case treeBackendTreap:
				p.read, p.write = core.NewTreeIn(e.pool), core.NewTreeIn(e.pool)
			case treeBackendBST:
				rt, wt := core.NewTreeIn(e.pool), core.NewTreeIn(e.pool)
				rt.SetBalancing(false)
				wt.SetBalancing(false)
				p.read, p.write = rt, wt
			case treeBackendSkiplist:
				p.read, p.write = skiplist.New(), skiplist.New()
			}
		}
		e.pages.Put(idx, p)
	}
	e.lastIdx, e.lastPage = idx, p
	return p
}

func (e *treeEngine) race(r Race) {
	e.stats.Races++
	if e.qthresh > 0 && e.curPage != nil {
		e.curPage.races++
	}
	if e.onRace != nil {
		e.onRace(r)
	}
}

// quiescedIdx reports whether page idx has been quiesced, with a one-entry
// cache in front of the directory probe — racy workloads hammer the same
// dead page, so the common case is a single compare.
func (e *treeEngine) quiescedIdx(idx uint64) bool {
	if e.lastQ && idx == e.lastQIdx {
		return true
	}
	if e.pages.Quiesced(idx) {
		e.lastQIdx, e.lastQ = idx, true
		return true
	}
	return false
}

// deadSpan reports whether [addr, addr+size) lies entirely within one
// quiesced page — the hook fast path: such an access can never contribute a
// race check again, so only its counters are kept. Spans that straddle a
// page boundary always proceed (the flush drops the dead pieces span by
// span), keeping the decision page-local and identical in every execution
// mode regardless of how dispatch split the access.
func (e *treeEngine) deadSpan(addr mem.Addr, size uint64) bool {
	if e.nQuiesced == 0 {
		return false
	}
	first := addr >> coalesce.PageBytesBits
	if (addr+size-1)>>coalesce.PageBytesBits != first {
		return false
	}
	return e.quiescedIdx(first)
}

func (e *treeEngine) ReadHook(addr mem.Addr, size uint64) {
	if e.capErr != nil {
		return
	}
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	if e.deadSpan(addr, size) {
		return
	}
	setBits(e.readBits, addr, size)
}

func (e *treeEngine) WriteHook(addr mem.Addr, size uint64) {
	if e.capErr != nil {
		return
	}
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	if e.deadSpan(addr, size) {
		return
	}
	setBits(e.writeBits, addr, size)
}

func (e *treeEngine) ReadRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	if e.capErr != nil {
		return
	}
	size := uint64(count) * elemBytes
	e.stats.ReadHookCalls++
	e.stats.ReadAccesses += wordsIn(addr, size)
	if e.deadSpan(addr, size) {
		return
	}
	e.readBits.SetRange(addr, size)
}

func (e *treeEngine) WriteRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	if e.capErr != nil {
		return
	}
	size := uint64(count) * elemBytes
	e.stats.WriteHookCalls++
	e.stats.WriteAccesses += wordsIn(addr, size)
	if e.deadSpan(addr, size) {
		return
	}
	e.writeBits.SetRange(addr, size)
}

// StrandEnd flushes both bit hashmaps and runs the interval-granularity
// race checks and access-history updates for the finishing strand. Each
// flushed interval is contained in one page (coalesce splits at page
// boundaries), so it touches exactly one page's stores. Spans whose page
// has quiesced are dropped before they are counted as intervals — the drop
// is page-local, so every execution mode drops exactly the same spans. A
// page crossing its race threshold quiesces immediately after its span
// completes, which makes the set of surviving race checks a pure function
// of each page's own span sequence.
func (e *treeEngine) StrandEnd() {
	if e.capErr != nil {
		return
	}
	e.curID = e.reach.CurrentID()

	// Reads: race-check against the write history, then record.
	e.flushSpans(false)
	// Writes: race-check against the read history, then insert; displaced
	// parallel writers are races too.
	e.flushSpans(true)

	if b := e.histBytes(); b > e.stats.HistoryBytesPeak {
		e.stats.HistoryBytesPeak = b
		if e.maxBytes > 0 && b > e.maxBytes {
			e.capErr = &HistoryCapError{Limit: e.maxBytes, Bytes: b}
		}
	}
}

func (e *treeEngine) flushSpans(write bool) {
	if write {
		e.collect(e.writeBits)
	} else {
		e.collect(e.readBits)
	}
	if len(e.scratch) == 0 {
		return
	}
	var t0 time.Time
	if e.timeAH {
		t0 = time.Now()
	}
	var n, bytes uint64
	for _, s := range e.scratch {
		idx := s.addr >> coalesce.PageBytesBits
		if e.nQuiesced > 0 && e.quiescedIdx(idx) {
			continue
		}
		n++
		bytes += s.size
		pg := e.pageFor(idx)
		e.curPage = pg
		iv := core.Interval{Start: s.addr, End: s.addr + s.size, Acc: e.curID}
		if write {
			pg.read.Query(iv, e.writeQueryCB)
			pg.write.InsertWrite(iv, e.writeInsertCB)
		} else {
			pg.write.Query(iv, e.readQueryCB)
			pg.read.InsertRead(iv, e.leftOf, nil)
		}
		e.curPage = nil
		if e.qthresh > 0 && int(pg.races) >= e.qthresh {
			e.quiescePage(idx, pg)
		}
	}
	if write {
		e.stats.WriteIntervals += n
		e.stats.WriteIntervalBytes += bytes
	} else {
		e.stats.ReadIntervals += n
		e.stats.ReadIntervalBytes += bytes
	}
	if e.timeAH {
		e.stats.AccessHistoryTime += time.Since(t0)
	}
}

// quiescePage retires one page's history: its store counters are salvaged
// into the retired aggregate (Finish still reports the work that was done),
// its nodes go back to the shared pool, the empty shell parks on the page
// freelist for reuse by live pages, and the directory slot becomes a
// quiesced tombstone so the page cannot silently come back. The retained
// footprint is unchanged — no shell is allocated or freed — which is what
// keeps Runner.footprint() stable across quiesce/reset cycles.
func (e *treeEngine) quiescePage(idx uint64, pg *histPage) {
	rs, ws := pg.read.Stats(), pg.write.Stats()
	e.retired.Ops += rs.Ops + ws.Ops
	e.retired.NodesVisited += rs.NodesVisited + ws.NodesVisited
	e.retired.Overlaps += rs.Overlaps + ws.Overlaps
	pg.read.Drop()
	pg.write.Drop()
	pg.races = 0
	e.pages.Quiesce(idx)
	e.freePages = append(e.freePages, pg)
	if e.lastPage == pg {
		e.lastIdx, e.lastPage = 0, nil
	}
	e.lastQIdx, e.lastQ = idx, true
	e.nQuiesced++
	e.stats.PagesQuiesced++
	if e.registry != nil {
		e.registry.Add(idx)
	}
}

// bitPageBytes approximates one coalescing bit-hashmap page: 2 KiB of bits
// plus the touched-word index.
const bitPageBytes = 3 << 10

// histPageShellBytes approximates a histPage shell plus its directory slot.
const histPageShellBytes = 256

// histBytes estimates the engine's live access-history footprint for this
// run: interval nodes currently linked into page trees, live page shells,
// and live coalescing bit pages. Warm capacity retained across Reset (slab
// chunks, parked shells, free bit pages) is deliberately excluded — the
// MaxHistoryBytes cap bounds what the current run accumulates, and a Runner
// that auto-resets after tripping the cap must start the next run back at
// (near) zero. Quiescing a page moves its nodes and shell onto free lists,
// so retired pages leave this measure immediately.
func (e *treeEngine) histBytes() uint64 {
	var b uint64
	if e.pool != nil {
		b = e.pool.LiveBytes()
	} else {
		const skiplistNodeBytes = 304 // interval + [32]*node tower
		e.pages.Range(func(_ uint64, p *histPage) {
			b += uint64(p.read.Size()+p.write.Size()) * skiplistNodeBytes
		})
	}
	b += uint64(e.pages.Len()) * histPageShellBytes
	b += uint64(e.readBits.LivePages()+e.writeBits.LivePages()) * bitPageBytes
	return b
}

// CapError returns the history-cap error, if the footprint tripped
// Config.MaxHistoryBytes during the run.
func (e *treeEngine) CapError() error { return e.capErr }

func (e *treeEngine) collect(bits *coalesce.BitSet) {
	e.scratch = e.scratch[:0]
	bits.Flush(func(start mem.Addr, size uint64) {
		e.scratch = append(e.scratch, span{addr: start, size: size})
	})
}

func (e *treeEngine) Finish() {
	e.StrandEnd()
	agg := e.retired // work done on since-quiesced pages still counts
	var stored int
	e.pages.Range(func(_ uint64, p *histPage) {
		rs, ws := p.read.Stats(), p.write.Stats()
		agg.Ops += rs.Ops + ws.Ops
		agg.NodesVisited += rs.NodesVisited + ws.NodesVisited
		agg.Overlaps += rs.Overlaps + ws.Overlaps
		stored += p.read.Size() + p.write.Size()
	})
	e.stats.TreapOps = agg.Ops
	e.stats.TreapNodesVisited = agg.NodesVisited
	e.stats.TreapOverlaps = agg.Overlaps
	// Approximate footprint: one node per stored interval (quiesced pages
	// store nothing — that is the point).
	e.stats.AccessHistoryBytes = uint64(stored) * 48
}

func (e *treeEngine) Stats() *Stats { return &e.stats }

// Reset returns the engine to its freshly-constructed state with its warm
// capacity retained: every live history page has its stores Reset (seeds
// re-derived, contents dropped) and is parked on the page freelist, the
// shared node pool rewinds wholesale, the directory keeps its backing
// array, and the coalescing bit hashmaps clear any mid-strand state an
// aborted run may have left behind. In steady state Reset allocates
// nothing and the retained footprint (pool chunks, directory capacity,
// page count) stops growing once the engine has seen its peak run.
func (e *treeEngine) Reset() {
	e.readBits.Reset()
	e.writeBits.Reset()
	e.pages.Reset(func(p *histPage) {
		p.read.Reset()
		p.write.Reset()
		p.races = 0
		e.freePages = append(e.freePages, p)
	})
	if e.pool != nil {
		e.pool.Reset()
	}
	e.lastIdx, e.lastPage = 0, nil
	e.scratch = e.scratch[:0]
	e.curID = 0
	e.capErr = nil
	e.retired = core.Stats{}
	e.nQuiesced = 0
	e.lastQIdx, e.lastQ = 0, false
	e.curPage = nil
	e.stats = Stats{}
}

// Footprint reports the engine's retained warm capacity; the reuse-soak
// test asserts it stops growing after warm-up.
func (e *treeEngine) Footprint() Footprint {
	var chunks int
	if e.pool != nil {
		chunks = e.pool.Stats().Chunks
	}
	return Footprint{
		PoolChunks: chunks,
		PageDirCap: e.pages.Cap(),
		HistPages:  e.nPages,
		BitPages:   e.readBits.Pages() + e.writeBits.Pages(),
	}
}

// HistorySizes reports the number of intervals currently stored across all
// pages' read and write histories (used by the skiplist-vs-treap ablation).
func (e *treeEngine) HistorySizes() (read, write int) {
	e.pages.Range(func(_ uint64, p *histPage) {
		read += p.read.Size()
		write += p.write.Size()
	})
	return read, write
}
