// Package skiplist implements the related-work access history of Park et
// al. (SC '11): an interval skiplist that never removes redundant
// intervals.
//
// Unlike the paper's treap (stint/internal/core), inserting an interval x
// that overlaps stored intervals leaves all of them in place — x simply
// joins them. Queries therefore cost O(lg n + k′), where k′ counts every
// stored overlapping interval including duplicates of each other, and k′
// can grow without bound on re-accessed ranges. The package exists so the
// detector can run the same pipeline over both stores and measure the
// difference (the STINTSkiplist mode and its ablation bench).
//
// Because stored intervals may overlap, a start-keyed search alone cannot
// find all overlaps; the list tracks the maximum interval length ever
// inserted and begins each scan at the first interval starting after
// x.Start - maxLen, the standard bounded-length trick.
package skiplist

import "stint/internal/core"

const maxHeight = 32

type node struct {
	iv   core.Interval
	next [maxHeight]*node
}

// List is an interval skiplist access history. The zero value is not
// usable; call New.
type List struct {
	head   *node
	level  int
	rng    uint64
	maxLen uint64
	size   int
	stats  core.Stats
}

// skiplistSeed is the deterministic height-stream seed; Reset restores it
// so reused lists draw the same heights as fresh ones.
const skiplistSeed = 0x853C49E6748FEA9B

// New returns an empty list.
func New() *List {
	return &List{head: &node{}, level: 1, rng: skiplistSeed}
}

// Reset empties the list for reuse: nodes are dropped for the garbage
// collector (this store deliberately mirrors the heap-per-node related
// work, so there is no slab to rewind) and the height stream rewinds to
// the seed, making a reused list indistinguishable from a fresh one.
func (l *List) Reset() {
	l.head.next = [maxHeight]*node{}
	l.level = 1
	l.rng = skiplistSeed
	l.maxLen = 0
	l.size = 0
	l.stats = core.Stats{}
}

// Drop empties the list, releasing its nodes. Nodes are heap-allocated
// (deliberately mirroring the related work), so dropping is just Reset —
// the garbage collector reclaims them; there is no free list to feed.
// Provided so the quiescing path can treat every store uniformly.
func (l *List) Drop() { l.Reset() }

// Size returns the number of stored intervals (duplicates included).
func (l *List) Size() int { return l.size }

// Stats returns the accumulated operation counters, mirroring
// core.Tree.Stats.
func (l *List) Stats() core.Stats { return l.stats }

// ResetStats zeroes the counters.
func (l *List) ResetStats() { l.stats = core.Stats{} }

func (l *List) randHeight() int {
	x := l.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	l.rng = x
	h := 1
	for v := x * 0x2545F4914F6CDD1D; v&1 == 1 && h < maxHeight; v >>= 1 {
		h++
	}
	return h
}

// insert adds iv without removing anything.
func (l *List) insert(iv core.Interval) {
	var update [maxHeight]*node
	cur := l.head
	for i := l.level - 1; i >= 0; i-- {
		for cur.next[i] != nil && cur.next[i].iv.Start < iv.Start {
			cur = cur.next[i]
			l.stats.NodesVisited++
		}
		update[i] = cur
	}
	h := l.randHeight()
	if h > l.level {
		for i := l.level; i < h; i++ {
			update[i] = l.head
		}
		l.level = h
	}
	n := &node{iv: iv}
	for i := 0; i < h; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	l.size++
	if iv.Len() > l.maxLen {
		l.maxLen = iv.Len()
	}
}

// overlaps emits every stored interval overlapping x, duplicates included.
func (l *List) overlaps(x core.Interval, onOverlap core.OverlapFunc) {
	var from uint64
	if x.Start > l.maxLen {
		from = x.Start - l.maxLen
	}
	// Descend to the last node starting before `from`.
	cur := l.head
	for i := l.level - 1; i >= 0; i-- {
		for cur.next[i] != nil && cur.next[i].iv.Start < from {
			cur = cur.next[i]
			l.stats.NodesVisited++
		}
	}
	// Linear scan of candidates: anything starting in [from, x.End).
	for n := cur.next[0]; n != nil && n.iv.Start < x.End; n = n.next[0] {
		l.stats.NodesVisited++
		if n.iv.Overlaps(x) {
			l.stats.Overlaps++
			if onOverlap != nil {
				lo, hi := n.iv.Start, n.iv.End
				if x.Start > lo {
					lo = x.Start
				}
				if x.End < hi {
					hi = x.End
				}
				onOverlap(n.iv.Acc, lo, hi)
			}
		}
	}
}

// InsertWrite reports stored intervals overlapping x and inserts x,
// leaving the overlapped intervals in place (Park et al. semantics).
func (l *List) InsertWrite(x core.Interval, onOverlap core.OverlapFunc) {
	if x.Start >= x.End {
		panic("skiplist: empty write interval")
	}
	l.stats.Ops++
	l.overlaps(x, onOverlap)
	l.insert(x)
}

// InsertRead inserts a read interval. leftOf is unused — no stored interval
// is ever displaced — but kept for interface compatibility with the treap.
func (l *List) InsertRead(x core.Interval, leftOf core.LeftOfFunc, onOverlap core.OverlapFunc) {
	if x.Start >= x.End {
		panic("skiplist: empty read interval")
	}
	_ = leftOf
	l.stats.Ops++
	l.overlaps(x, onOverlap)
	l.insert(x)
}

// Query reports stored intervals overlapping x without modification.
func (l *List) Query(x core.Interval, onOverlap core.OverlapFunc) {
	if x.Start >= x.End {
		panic("skiplist: empty query interval")
	}
	l.stats.Ops++
	l.overlaps(x, onOverlap)
}

// Walk calls fn on every stored interval in start order (duplicates
// included), for tests and dump tools.
func (l *List) Walk(fn func(core.Interval)) {
	for n := l.head.next[0]; n != nil; n = n.next[0] {
		fn(n.iv)
	}
}
