package skiplist

import (
	"math/rand"
	"testing"

	"stint/internal/core"
)

func iv(s, e uint64, acc int32) core.Interval { return core.Interval{Start: s, End: e, Acc: acc} }

// collect gathers overlap callbacks as (acc, lo, hi) triples.
func collect(fn func(core.OverlapFunc)) [][3]uint64 {
	var out [][3]uint64
	fn(func(acc int32, lo, hi uint64) { out = append(out, [3]uint64{uint64(acc), lo, hi}) })
	return out
}

func TestEmptyQuery(t *testing.T) {
	l := New()
	got := collect(func(f core.OverlapFunc) { l.Query(iv(0, 100, 0), f) })
	if len(got) != 0 {
		t.Fatalf("empty list reported overlaps: %v", got)
	}
}

func TestInsertAndQuery(t *testing.T) {
	l := New()
	l.InsertWrite(iv(10, 20, 1), nil)
	l.InsertWrite(iv(30, 40, 2), nil)
	got := collect(func(f core.OverlapFunc) { l.Query(iv(15, 35, 9), f) })
	if len(got) != 2 {
		t.Fatalf("got %d overlaps, want 2: %v", len(got), got)
	}
	if got[0] != [3]uint64{1, 15, 20} || got[1] != [3]uint64{2, 30, 35} {
		t.Fatalf("wrong overlap clipping: %v", got)
	}
}

func TestRedundantIntervalsAccumulate(t *testing.T) {
	// The defining difference from the treap: duplicates are kept, so k'
	// grows with every re-access.
	l := New()
	for i := 0; i < 50; i++ {
		l.InsertWrite(iv(10, 20, int32(i)), nil)
	}
	if l.Size() != 50 {
		t.Fatalf("Size() = %d, want 50 (redundant intervals must be kept)", l.Size())
	}
	got := collect(func(f core.OverlapFunc) { l.Query(iv(10, 20, 99), f) })
	if len(got) != 50 {
		t.Fatalf("query found %d overlaps, want all 50 duplicates", len(got))
	}
}

func TestTreapStaysBoundedSkiplistDoesNot(t *testing.T) {
	tr := core.NewTree()
	sl := New()
	for i := 0; i < 200; i++ {
		x := iv(0, 100, int32(i))
		tr.InsertWrite(x, nil)
		sl.InsertWrite(x, nil)
	}
	if tr.Size() != 1 {
		t.Errorf("treap size = %d, want 1 (redundant intervals removed)", tr.Size())
	}
	if sl.Size() != 200 {
		t.Errorf("skiplist size = %d, want 200", sl.Size())
	}
}

func TestMaxLenScanFindsLongInterval(t *testing.T) {
	// A long early interval must be found by queries far to its right.
	l := New()
	l.InsertWrite(iv(0, 1000000, 7), nil)
	for i := 0; i < 100; i++ {
		l.InsertWrite(iv(uint64(2000000+i*10), uint64(2000000+i*10+4), int32(i)), nil)
	}
	got := collect(func(f core.OverlapFunc) { l.Query(iv(999996, 1000000, 9), f) })
	if len(got) != 1 || got[0][0] != 7 {
		t.Fatalf("long interval missed: %v", got)
	}
}

func TestInsertReadKeepsEverything(t *testing.T) {
	l := New()
	leftOf := func(a, b int32) bool { return a > b }
	l.InsertRead(iv(0, 10, 1), leftOf, nil)
	l.InsertRead(iv(0, 10, 2), leftOf, nil)
	l.InsertRead(iv(5, 15, 3), leftOf, nil)
	if l.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", l.Size())
	}
}

func TestOverlapSemanticsAgainstNaive(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := New()
		var stored []core.Interval
		for i := 0; i < 150; i++ {
			s := rng.Uint64() % 1000
			e := s + uint64(rng.Intn(100)) + 1
			x := iv(s, e, int32(i))
			// Check query overlaps against the naive scan first.
			got := collect(func(f core.OverlapFunc) { l.Query(x, f) })
			var want int
			for _, st := range stored {
				if st.Overlaps(x) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("seed %d op %d: %d overlaps, want %d", seed, i, len(got), want)
			}
			l.InsertWrite(x, nil)
			stored = append(stored, x)
		}
	}
}

func TestStatsCount(t *testing.T) {
	l := New()
	l.InsertWrite(iv(0, 10, 1), nil)
	l.Query(iv(0, 10, 2), nil)
	st := l.Stats()
	if st.Ops != 2 {
		t.Fatalf("Ops = %d, want 2", st.Ops)
	}
	if st.Overlaps != 1 {
		t.Fatalf("Overlaps = %d, want 1", st.Overlaps)
	}
	l.ResetStats()
	if l.Stats().Ops != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestWalkInStartOrder(t *testing.T) {
	l := New()
	starts := []uint64{50, 10, 30, 10, 90, 70}
	for i, s := range starts {
		l.InsertWrite(iv(s, s+5, int32(i)), nil)
	}
	var prev uint64
	first := true
	count := 0
	l.Walk(func(x core.Interval) {
		if !first && x.Start < prev {
			t.Fatal("Walk not in start order")
		}
		prev, first = x.Start, false
		count++
	})
	if count != len(starts) {
		t.Fatalf("walked %d intervals, want %d", count, len(starts))
	}
}

func TestPanicsOnEmptyInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().InsertWrite(iv(5, 5, 1), nil)
}

func BenchmarkSkiplistInsertDisjoint(b *testing.B) {
	l := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.InsertWrite(iv(uint64(i)*16, uint64(i)*16+8, int32(i)), nil)
	}
}

func BenchmarkSkiplistQueryWithDuplicates(b *testing.B) {
	l := New()
	for i := 0; i < 1000; i++ {
		l.InsertWrite(iv(0, 64, int32(i)), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Query(iv(0, 64, 0), nil)
	}
}
