// Package pagedir provides the first-level page directory shared by the
// access-history shadow structures: an open-addressed hash table from page
// indices (address prefixes) to lazily allocated second-level pages.
//
// The paper's artifact uses a flat first-level array; a Go map[uint64]*page
// stands in for it in the seed implementation but pays bucket allocations,
// hash-interface overhead, and pointer-chasing on every miss of the
// one-entry cache in front of it. Dir replaces the map with a power-of-two
// table using multiplicative (Fibonacci) hashing and linear probing, grown
// at 3/4 load. It is insert-only — detectors never delete individual pages;
// whole-table reuse goes through Reset, which hands every page back to the
// caller (typically a freelist) and keeps the table's capacity.
package pagedir

// fibMult is the 64-bit Fibonacci hashing constant (2^64 / phi, odd).
const fibMult = 0x9E3779B97F4A7C15

// minCap is the initial capacity on first insert. Page indices are address
// prefixes, so even small workloads touch a handful of pages; starting at 16
// avoids the first couple of growth steps without wasting memory.
const minCap = 16

// Dir maps uint64 page indices to *P. The zero value is an empty directory.
// A nil *P cannot be stored: vals[i] == nil marks an empty slot.
type Dir[P any] struct {
	keys  []uint64
	vals  []*P
	shift uint // 64 - log2(len(vals)); hash top bits select the home slot
	n     int  // occupied slots
}

// Len returns the number of pages stored.
func (d *Dir[P]) Len() int { return d.n }

// Cap returns the current slot capacity (0 before the first Put).
func (d *Dir[P]) Cap() int { return len(d.vals) }

func (d *Dir[P]) home(key uint64) uint64 {
	return (key * fibMult) >> d.shift
}

// Get returns the page stored for key, or nil.
func (d *Dir[P]) Get(key uint64) *P {
	if d.n == 0 {
		return nil
	}
	mask := uint64(len(d.vals) - 1)
	for i := d.home(key); ; i = (i + 1) & mask {
		v := d.vals[i]
		if v == nil {
			return nil
		}
		if d.keys[i] == key {
			return v
		}
	}
}

// Put stores v (which must be non-nil) for key, replacing any existing
// entry.
func (d *Dir[P]) Put(key uint64, v *P) {
	if v == nil {
		panic("pagedir: nil page")
	}
	if 4*(d.n+1) > 3*len(d.vals) {
		d.grow()
	}
	mask := uint64(len(d.vals) - 1)
	for i := d.home(key); ; i = (i + 1) & mask {
		if d.vals[i] == nil {
			d.keys[i], d.vals[i] = key, v
			d.n++
			return
		}
		if d.keys[i] == key {
			d.vals[i] = v
			return
		}
	}
}

// grow doubles the capacity (or allocates the initial table) and rehashes
// every entry. Linear probing with no deletions keeps this a straight
// reinsert.
func (d *Dir[P]) grow() {
	newCap := minCap
	if len(d.vals) > 0 {
		newCap = 2 * len(d.vals)
	}
	oldKeys, oldVals := d.keys, d.vals
	d.keys = make([]uint64, newCap)
	d.vals = make([]*P, newCap)
	d.shift = 64 - log2(uint(newCap))
	mask := uint64(newCap - 1)
	for i, v := range oldVals {
		if v == nil {
			continue
		}
		k := oldKeys[i]
		j := d.home(k)
		for d.vals[j] != nil {
			j = (j + 1) & mask
		}
		d.keys[j], d.vals[j] = k, v
	}
}

// Range calls fn for every stored (key, page) pair in unspecified order.
func (d *Dir[P]) Range(fn func(key uint64, v *P)) {
	if d.n == 0 {
		return
	}
	for i, v := range d.vals {
		if v != nil {
			fn(d.keys[i], v)
		}
	}
}

// Reset empties the directory, invoking release (if non-nil) on every stored
// page so the caller can recycle it. Capacity is retained, making
// Reset+refill allocation-free.
func (d *Dir[P]) Reset(release func(*P)) {
	if d.n == 0 {
		return
	}
	for i, v := range d.vals {
		if v != nil {
			if release != nil {
				release(v)
			}
			d.vals[i] = nil
		}
	}
	d.n = 0
}

func log2(v uint) uint {
	var b uint
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}
