// Package pagedir provides the first-level page directory shared by the
// access-history shadow structures: an open-addressed hash table from page
// indices (address prefixes) to lazily allocated second-level pages.
//
// The paper's artifact uses a flat first-level array; a Go map[uint64]*page
// stands in for it in the seed implementation but pays bucket allocations,
// hash-interface overhead, and pointer-chasing on every miss of the
// one-entry cache in front of it. Dir replaces the map with a power-of-two
// table using multiplicative (Fibonacci) hashing and linear probing, grown
// at 3/4 load. It is insert-only — detectors never delete individual pages;
// whole-table reuse goes through Reset, which hands every page back to the
// caller (typically a freelist) and keeps the table's capacity.
package pagedir

// fibMult is the 64-bit Fibonacci hashing constant (2^64 / phi, odd).
const fibMult = 0x9E3779B97F4A7C15

// minCap is the initial capacity on first insert. Page indices are address
// prefixes, so even small workloads touch a handful of pages; starting at 16
// avoids the first couple of growth steps without wasting memory.
const minCap = 16

// Dir maps uint64 page indices to *P. The zero value is an empty directory.
// A nil *P cannot be stored: vals[i] == nil marks an empty slot — unless the
// slot's quiesce bit is set, in which case the slot is a keyed tombstone (see
// Quiesce) that keeps probe chains intact while storing no page.
type Dir[P any] struct {
	keys  []uint64
	vals  []*P
	shift uint // 64 - log2(len(vals)); hash top bits select the home slot
	n     int  // live (page-bearing) slots
	// qbits marks quiesced slots: the key is valid and the slot counts as
	// occupied for probing and load factor, but no page is stored and Get
	// reports a miss. Allocated lazily on the first Quiesce.
	qbits []uint64
	nq    int // quiesced slots
}

// Len returns the number of pages stored (quiesced slots excluded).
func (d *Dir[P]) Len() int { return d.n }

// QuiescedCount returns the number of quiesced slots.
func (d *Dir[P]) QuiescedCount() int { return d.nq }

func (d *Dir[P]) qbit(i uint64) bool {
	return d.qbits != nil && d.qbits[i>>6]&(1<<(i&63)) != 0
}

func (d *Dir[P]) setQbit(i uint64) {
	if d.qbits == nil {
		d.qbits = make([]uint64, (len(d.vals)+63)/64)
	}
	d.qbits[i>>6] |= 1 << (i & 63)
}

func (d *Dir[P]) clearQbit(i uint64) {
	if d.qbits != nil {
		d.qbits[i>>6] &^= 1 << (i & 63)
	}
}

// occupied reports whether slot i terminates a probe chain (live page or
// quiesced tombstone).
func (d *Dir[P]) occupied(i uint64) bool {
	return d.vals[i] != nil || d.qbit(i)
}

// Cap returns the current slot capacity (0 before the first Put).
func (d *Dir[P]) Cap() int { return len(d.vals) }

func (d *Dir[P]) home(key uint64) uint64 {
	return (key * fibMult) >> d.shift
}

// Get returns the page stored for key, or nil. Quiesced keys report a miss.
func (d *Dir[P]) Get(key uint64) *P {
	if d.n == 0 {
		return nil
	}
	mask := uint64(len(d.vals) - 1)
	for i := d.home(key); ; i = (i + 1) & mask {
		v := d.vals[i]
		if v == nil {
			if !d.qbit(i) {
				return nil
			}
			if d.keys[i] == key {
				return nil // quiesced: no live page
			}
			continue // tombstone for another key; keep probing
		}
		if d.keys[i] == key {
			return v
		}
	}
}

// Quiesced reports whether key has been quiesced (and not since revived by a
// Put).
func (d *Dir[P]) Quiesced(key uint64) bool {
	if d.nq == 0 {
		return false
	}
	mask := uint64(len(d.vals) - 1)
	for i := d.home(key); ; i = (i + 1) & mask {
		if !d.occupied(i) {
			return false
		}
		if d.keys[i] == key {
			return d.vals[i] == nil && d.qbit(i)
		}
	}
}

// Quiesce retires key's slot: the stored page is removed and returned to the
// caller (typically for a freelist), and the slot becomes a keyed tombstone
// so later Get/Quiesced lookups report the key as quiesced rather than
// absent. Returns nil if key holds no live page.
func (d *Dir[P]) Quiesce(key uint64) *P {
	if d.n == 0 {
		return nil
	}
	mask := uint64(len(d.vals) - 1)
	for i := d.home(key); ; i = (i + 1) & mask {
		if !d.occupied(i) {
			return nil
		}
		if d.keys[i] == key {
			v := d.vals[i]
			if v == nil {
				return nil // already quiesced
			}
			d.vals[i] = nil
			d.setQbit(i)
			d.n--
			d.nq++
			return v
		}
	}
}

// Put stores v (which must be non-nil) for key, replacing any existing
// entry and reviving the slot if key was quiesced.
func (d *Dir[P]) Put(key uint64, v *P) {
	if v == nil {
		panic("pagedir: nil page")
	}
	if 4*(d.n+d.nq+1) > 3*len(d.vals) {
		d.grow()
	}
	mask := uint64(len(d.vals) - 1)
	for i := d.home(key); ; i = (i + 1) & mask {
		if !d.occupied(i) {
			d.keys[i], d.vals[i] = key, v
			d.n++
			return
		}
		if d.keys[i] == key {
			if d.vals[i] == nil { // revive a quiesced slot
				d.clearQbit(i)
				d.nq--
				d.n++
			}
			d.vals[i] = v
			return
		}
	}
}

// grow doubles the capacity (or allocates the initial table) and rehashes
// every entry, including quiesced tombstones — their keyed "quiesced" state
// must survive growth.
func (d *Dir[P]) grow() {
	newCap := minCap
	if len(d.vals) > 0 {
		newCap = 2 * len(d.vals)
	}
	oldKeys, oldVals, oldQbits := d.keys, d.vals, d.qbits
	d.keys = make([]uint64, newCap)
	d.vals = make([]*P, newCap)
	if oldQbits != nil {
		d.qbits = make([]uint64, (newCap+63)/64)
	}
	d.shift = 64 - log2(uint(newCap))
	mask := uint64(newCap - 1)
	for i, v := range oldVals {
		q := v == nil && oldQbits != nil && oldQbits[i>>6]&(1<<(uint(i)&63)) != 0
		if v == nil && !q {
			continue
		}
		k := oldKeys[i]
		j := d.home(k)
		for d.occupied(j) {
			j = (j + 1) & mask
		}
		d.keys[j], d.vals[j] = k, v
		if q {
			d.setQbit(j)
		}
	}
}

// Range calls fn for every stored (key, page) pair in unspecified order.
func (d *Dir[P]) Range(fn func(key uint64, v *P)) {
	if d.n == 0 {
		return
	}
	for i, v := range d.vals {
		if v != nil {
			fn(d.keys[i], v)
		}
	}
}

// Reset empties the directory, invoking release (if non-nil) on every stored
// page so the caller can recycle it. Quiesced tombstones are cleared too.
// Capacity is retained, making Reset+refill allocation-free.
func (d *Dir[P]) Reset(release func(*P)) {
	if d.n == 0 && d.nq == 0 {
		return
	}
	for i, v := range d.vals {
		if v != nil {
			if release != nil {
				release(v)
			}
			d.vals[i] = nil
		}
	}
	for i := range d.qbits {
		d.qbits[i] = 0
	}
	d.n = 0
	d.nq = 0
}

func log2(v uint) uint {
	var b uint
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}
