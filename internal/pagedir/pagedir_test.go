package pagedir

import (
	"math/rand"
	"testing"
)

type payload struct{ v int }

func TestZeroValueGet(t *testing.T) {
	var d Dir[payload]
	if d.Get(0) != nil || d.Get(42) != nil {
		t.Fatal("empty directory returned a page")
	}
	if d.Len() != 0 || d.Cap() != 0 {
		t.Fatalf("empty directory: len %d cap %d", d.Len(), d.Cap())
	}
}

func TestPutGetReplace(t *testing.T) {
	var d Dir[payload]
	a, b := &payload{1}, &payload{2}
	d.Put(5, a)
	if d.Get(5) != a {
		t.Fatal("Get after Put returned wrong page")
	}
	d.Put(5, b)
	if d.Get(5) != b {
		t.Fatal("Put did not replace")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestKeyZeroIsValid(t *testing.T) {
	var d Dir[payload]
	p := &payload{9}
	d.Put(0, p)
	if d.Get(0) != p {
		t.Fatal("key 0 not stored")
	}
}

func TestNilPagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("storing nil did not panic")
		}
	}()
	var d Dir[payload]
	d.Put(1, nil)
}

// TestRandomAgainstMap grows the directory through many doublings with
// adversarially clustered keys (sequential page indices, the common case
// for address prefixes) and random ones, comparing against a map.
func TestRandomAgainstMap(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var d Dir[payload]
		ref := map[uint64]*payload{}
		for i := 0; i < 5000; i++ {
			var k uint64
			if rng.Intn(2) == 0 {
				k = uint64(i / 2) // sequential cluster
			} else {
				k = rng.Uint64()
			}
			p := &payload{i}
			d.Put(k, p)
			ref[k] = p
			if rng.Intn(8) == 0 {
				probe := k
				if rng.Intn(2) == 0 {
					probe = rng.Uint64()
				}
				if got, want := d.Get(probe), ref[probe]; got != want {
					t.Fatalf("seed %d: Get(%d) = %v, want %v", seed, probe, got, want)
				}
			}
		}
		if d.Len() != len(ref) {
			t.Fatalf("seed %d: Len %d, map %d", seed, d.Len(), len(ref))
		}
		if 4*d.Len() > 3*d.Cap() {
			t.Fatalf("seed %d: load factor above 3/4: %d/%d", seed, d.Len(), d.Cap())
		}
		seen := 0
		d.Range(func(k uint64, v *payload) {
			seen++
			if ref[k] != v {
				t.Fatalf("seed %d: Range yielded wrong page for %d", seed, k)
			}
		})
		if seen != len(ref) {
			t.Fatalf("seed %d: Range visited %d, want %d", seed, seen, len(ref))
		}
	}
}

func TestResetReleasesAllAndKeepsCapacity(t *testing.T) {
	var d Dir[payload]
	for i := uint64(0); i < 100; i++ {
		d.Put(i, &payload{int(i)})
	}
	capBefore := d.Cap()
	var released []*payload
	d.Reset(func(p *payload) { released = append(released, p) })
	if len(released) != 100 {
		t.Fatalf("released %d pages, want 100", len(released))
	}
	if d.Len() != 0 || d.Cap() != capBefore {
		t.Fatalf("after reset: len %d cap %d (was %d)", d.Len(), d.Cap(), capBefore)
	}
	for i := uint64(0); i < 100; i++ {
		if d.Get(i) != nil {
			t.Fatalf("key %d survived reset", i)
		}
	}
	// Refill at retained capacity.
	d.Put(7, &payload{7})
	if d.Get(7) == nil || d.Cap() != capBefore {
		t.Fatal("refill after reset misbehaved")
	}
}
