// Package depa implements immutable DePa-style reachability labels for
// fork-join programs.
//
// DePa (Westrick, Wang, Acar) observes that series-parallel reachability can
// be answered from per-strand labels computed once when the strand is
// created and never mutated afterwards. Each strand carries
//
//   - its fork path: one entry per spawn edge on the task-tree path from the
//     root task to the strand's task, packing the parent task's sync-block
//     index at the spawn and a per-task monotone spawn counter;
//   - its own sync-block index within its task; and
//   - its sequential rank (the order strands become current in the serial
//     execution).
//
// Precedes(a, b) — the happens-before test — then reduces to a lexicographic
// walk over the two fork paths plus a block comparison at the divergence
// point, touching only immutable words. That is what lets many detector
// workers query reachability concurrently without sharing the mutable
// order-maintenance lists of stint/internal/spord: a single sequencer
// goroutine appends labels with a Builder, snapshots a read-only View, and
// hands the View to any number of workers.
//
// The Builder mirrors spord's strand numbering exactly (per spawn: child,
// continuation, and — first spawn of a block — the reserved sync strand), so
// strand IDs from the serial execution address the same strands here. The
// package tests differentially verify Precedes/Parallel/LeftOf/SeqRank
// against spord on randomized fork-join DAGs.
package depa

// A path entry packs the spawning task's sync-block index (high 32 bits)
// and the parent task's spawn ordinal (low 32 bits) for one spawn edge.
func pathEntry(block, spawnIdx uint32) uint64 {
	return uint64(block)<<32 | uint64(spawnIdx)
}

func entryBlock(e uint64) uint32 { return uint32(e >> 32) }

// rec is one strand's immutable label. Records are written exactly once by
// the Builder before the strand's ID is ever published to a reader, except
// seq, which is written when the strand becomes current — still strictly
// before any event referencing the strand is published.
type rec struct {
	path  []uint64 // spawn-edge entries, root task → strand's task
	block uint32   // sync-block index of the strand within its task
	seq   int32    // sequential (execution-order) rank; -1 until current
}

// recChunk is the slab granularity for labels. Chunks are append-only:
// published chunk pointers are never written again at indices a reader can
// see, so a snapshot of the chunk table is safe to read concurrently.
const recChunk = 1024

type recSlab [recChunk]rec

// frame is the Builder's per-function-instance state, mirroring
// spord.Frame plus the label bookkeeping.
type frame struct {
	path    []uint64 // fork path shared by every strand of this task
	block   uint32   // current sync-block index
	spawns  uint32   // spawn ordinal counter (monotone across blocks)
	pending int32    // reserved sync strand of the current block, or -1
	cont    int32    // continuation strand to restore when this task returns
}

// Builder constructs labels for one serial execution. It is single-owner:
// only the sequencer goroutine may call its methods. Snapshots taken with
// View are safe for concurrent readers.
type Builder struct {
	chunks []*recSlab
	n      int32 // strands created
	seq    int32 // next sequential rank
	cur    int32 // current strand
	stack  []frame
	// Fork paths are bump-allocated out of a retained list of arenas;
	// arenas[arenaCur] is the one being filled. Reset rewinds every arena to
	// length zero instead of dropping it, so reused Builders stop allocating
	// once they have seen their peak run.
	arenas   [][]uint64
	arenaCur int
}

// NewBuilder returns a Builder with a single root strand, which is current.
func NewBuilder() *Builder {
	b := &Builder{stack: make([]frame, 1, 16)}
	b.stack[0] = frame{pending: -1, cont: -1}
	root := b.newRec(nil, 0)
	b.makeCurrent(root)
	return b
}

// Reset rewinds the Builder to the state NewBuilder returns, retaining
// every label chunk and path arena. Views snapshotted before the Reset
// must no longer be read: their records are recycled wholesale. newRec
// fully overwrites each record it hands out, so the chunks need no
// clearing — stale records past n are unreachable through any View.
func (b *Builder) Reset() {
	b.n, b.seq = 0, 0
	b.stack = b.stack[:1]
	b.stack[0] = frame{pending: -1, cont: -1}
	for i := range b.arenas {
		b.arenas[i] = b.arenas[i][:0]
	}
	b.arenaCur = 0
	root := b.newRec(nil, 0)
	b.makeCurrent(root)
}

func (b *Builder) newRec(path []uint64, block uint32) int32 {
	id := b.n
	if int(id)%recChunk == 0 && int(id)/recChunk == len(b.chunks) {
		b.chunks = append(b.chunks, new(recSlab))
	}
	r := &b.chunks[id/recChunk][id%recChunk]
	r.path, r.block, r.seq = path, block, -1
	b.n++
	return id
}

func (b *Builder) rec(id int32) *rec {
	return &b.chunks[id/recChunk][id%recChunk]
}

func (b *Builder) makeCurrent(id int32) {
	b.rec(id).seq = b.seq
	b.seq++
	b.cur = id
}

// appendPath returns parent+[entry] in freshly bump-allocated storage. The
// result is immutable until Reset: the active arena only ever grows past
// it. An arena too full for the next path is left behind (its tail stays
// unused until Reset rewinds it) and the cursor moves to the next retained
// arena, allocating a new one only when none remain.
func (b *Builder) appendPath(parent []uint64, entry uint64) []uint64 {
	n := len(parent) + 1
	for {
		if b.arenaCur == len(b.arenas) {
			size := 4096
			if n > size {
				size = n
			}
			b.arenas = append(b.arenas, make([]uint64, 0, size))
		}
		a := b.arenas[b.arenaCur]
		if cap(a)-len(a) >= n {
			off := len(a)
			a = append(a, parent...)
			a = append(a, entry)
			b.arenas[b.arenaCur] = a
			return a[off : off+n : off+n]
		}
		b.arenaCur++
	}
}

// Current returns the ID of the current strand.
func (b *Builder) Current() int32 { return b.cur }

// StrandCount returns the number of strands created so far.
func (b *Builder) StrandCount() int { return int(b.n) }

// Spawn records a spawn from the current strand: it creates the child and
// continuation strands (and, on the first spawn of a sync block, reserves
// the sync strand) in the same ID order as spord.SP.Spawn, makes the child
// current, and returns its ID.
func (b *Builder) Spawn() int32 {
	f := &b.stack[len(b.stack)-1]
	childPath := b.appendPath(f.path, pathEntry(f.block, f.spawns))
	f.spawns++
	child := b.newRec(childPath, 0)
	cont := b.newRec(f.path, f.block)
	if f.pending < 0 {
		f.pending = b.newRec(f.path, f.block+1)
	}
	b.makeCurrent(child)
	b.stack = append(b.stack, frame{path: childPath, pending: -1, cont: cont})
	return child
}

// Restore records the return of the most recently spawned child whose task
// is still open: the parent's continuation strand becomes current.
func (b *Builder) Restore() {
	top := b.stack[len(b.stack)-1]
	if len(b.stack) == 1 {
		panic("depa: Restore with no open spawn")
	}
	if top.pending >= 0 {
		panic("depa: Restore with pending sync")
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.makeCurrent(top.cont)
}

// Sync records a strand-creating sync in the current task: the reserved
// sync strand becomes current and a new sync block begins. The caller must
// only emit syncs for blocks with outstanding spawns (as the event stream
// producer does); a sync with nothing pending panics.
func (b *Builder) Sync() {
	f := &b.stack[len(b.stack)-1]
	if f.pending < 0 {
		panic("depa: Sync with no pending spawns")
	}
	id := f.pending
	f.pending = -1
	f.block++
	b.makeCurrent(id)
}

// View returns a read-only snapshot covering every strand created so far.
// The snapshot is safe to use from other goroutines provided the
// publication itself is ordered (e.g. via a channel or ring handoff), and
// remains valid while the Builder continues to grow.
func (b *Builder) View() View {
	return View{chunks: b.chunks, n: b.n}
}

// View is an immutable snapshot of the labels of the first n strands.
// All methods are pure reads; a View may be shared by any number of
// goroutines.
type View struct {
	chunks []*recSlab
	n      int32
}

// StrandCount returns the number of strands covered by the snapshot.
func (v View) StrandCount() int { return int(v.n) }

func (v View) rec(id int32) *rec {
	return &v.chunks[id/recChunk][id%recChunk]
}

// SeqRank returns the sequential rank of strand id. The strand must have
// become current before the snapshot's publication (true for any strand
// whose events a worker has received).
func (v View) SeqRank(id int32) int32 { return v.rec(id).seq }

// Precedes reports whether strand a happens strictly before strand b in the
// series (happens-before) order.
//
// Let the fork paths diverge at index i. If both paths have the entry, a
// precedes b iff a's side of the fork was already synced when b's side was
// spawned, i.e. b's spawn-edge block is strictly greater than a's. If a's
// path is a proper prefix of b's, a's task is an ancestor of b's task: a
// precedes b iff a became current first (sequential rank), because within
// the ancestor task everything up to the spawn of b's subtree precedes it
// and everything after the join follows it. Symmetrically for b's path a
// prefix of a's, a precedes b iff a's subtree was spawned in a block
// strictly smaller than b's own sync-block index. Equal paths mean the same
// task, where strands are totally ordered by rank.
func (v View) Precedes(a, b int32) bool {
	if a == b {
		return false
	}
	ra, rb := v.rec(a), v.rec(b)
	if ra.seq > rb.seq {
		return false // a runs after b in the serial order ⇒ not before it
	}
	pa, pb := ra.path, rb.path
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	for i := 0; i < n; i++ {
		if pa[i] != pb[i] {
			// Sibling subtrees of one task: a's side precedes b's side
			// iff b was spawned in a strictly later sync block.
			return entryBlock(pb[i]) > entryBlock(pa[i])
		}
	}
	switch {
	case len(pa) == len(pb):
		return true // same task: serial, and ra.seq < rb.seq already held
	case len(pa) < len(pb):
		return true // a in an ancestor task and earlier in serial order
	default:
		// b in an ancestor task: a's subtree hangs off b's task at entry
		// pa[len(pb)]; it precedes b iff that block was synced before b's
		// block started.
		return rb.block > entryBlock(pa[len(pb)])
	}
}

// Parallel reports whether strands a and b are logically parallel.
func (v View) Parallel(a, b int32) bool {
	if a == b {
		return false
	}
	if v.rec(a).seq > v.rec(b).seq {
		a, b = b, a
	}
	return !v.Precedes(a, b)
}

// LeftOf reports whether a is to the left of b: a is parallel with b and
// precedes it in sequential order, or a is in series with b and follows it.
// This matches spord.LeftOf for any two distinct strands.
func (v View) LeftOf(a, b int32) bool {
	if v.rec(a).seq < v.rec(b).seq {
		return !v.Precedes(a, b)
	}
	return v.Precedes(b, a)
}
