package depa

import (
	"math/rand"
	"testing"

	"stint/internal/spord"
)

// twin drives a spord.SP and a depa.Builder through the same fork-join
// program, mirroring the event-stream producer's contract: Sync is only
// issued for blocks with outstanding spawns, and every child is synced
// before it returns.
type twin struct {
	sp     *spord.SP
	b      *Builder
	frames []spord.Frame
	conts  []*spord.Strand
}

func newTwin() *twin {
	return &twin{sp: spord.New(), b: NewBuilder(), frames: make([]spord.Frame, 1)}
}

func (tw *twin) spawn() {
	_, cont := tw.sp.Spawn(&tw.frames[len(tw.frames)-1])
	tw.conts = append(tw.conts, cont)
	tw.frames = append(tw.frames, spord.Frame{})
	if got, want := tw.b.Spawn(), tw.sp.CurrentID(); got != want {
		panic("twin: spawn id mismatch")
	}
}

func (tw *twin) sync() {
	f := &tw.frames[len(tw.frames)-1]
	if !f.Pending() {
		return // producer elides strand-free syncs
	}
	tw.sp.Sync(f)
	tw.b.Sync()
}

func (tw *twin) restore() {
	tw.sync() // implicit child sync before returning
	tw.frames = tw.frames[:len(tw.frames)-1]
	cont := tw.conts[len(tw.conts)-1]
	tw.conts = tw.conts[:len(tw.conts)-1]
	tw.sp.Restore(cont)
	tw.b.Restore()
}

// run executes a random program of n steps, then joins everything.
func (tw *twin) run(rng *rand.Rand, steps, maxDepth int) {
	for i := 0; i < steps; i++ {
		switch rng.Intn(6) {
		case 0, 1, 2:
			if len(tw.frames) <= maxDepth {
				tw.spawn()
			}
		case 3:
			tw.sync()
		default:
			if len(tw.frames) > 1 {
				tw.restore()
			}
		}
	}
	for len(tw.frames) > 1 {
		tw.restore()
	}
	tw.sync() // final root sync, as Run issues
}

func (tw *twin) check(t *testing.T, seed int64) {
	t.Helper()
	n := tw.sp.StrandCount()
	if got := tw.b.StrandCount(); got != n {
		t.Fatalf("seed %d: StrandCount: depa %d, spord %d", seed, got, n)
	}
	v := tw.b.View()
	if got := v.StrandCount(); got != n {
		t.Fatalf("seed %d: View.StrandCount: %d, want %d", seed, got, n)
	}
	for a := int32(0); a < int32(n); a++ {
		if got, want := v.SeqRank(a), tw.sp.SeqRank(a); got != want {
			t.Fatalf("seed %d: SeqRank(%d): depa %d, spord %d", seed, a, got, want)
		}
		for b := int32(0); b < int32(n); b++ {
			sa, sb := tw.sp.Strand(a), tw.sp.Strand(b)
			if got, want := v.Precedes(a, b), spord.Series(sa, sb); got != want {
				t.Fatalf("seed %d: Precedes(%d,%d): depa %v, spord %v", seed, a, b, got, want)
			}
			if got, want := v.Parallel(a, b), tw.sp.Parallel(a, b); got != want {
				t.Fatalf("seed %d: Parallel(%d,%d): depa %v, spord %v", seed, a, b, got, want)
			}
			if got, want := v.LeftOf(a, b), tw.sp.LeftOf(a, b); got != want {
				t.Fatalf("seed %d: LeftOf(%d,%d): depa %v, spord %v", seed, a, b, got, want)
			}
		}
	}
}

// TestPrecedesAgainstSpordRandomDAGs differentially verifies the whole
// label algebra — Precedes, Parallel, LeftOf, SeqRank — against SP-Order
// over every strand pair of randomized fork-join programs.
func TestPrecedesAgainstSpordRandomDAGs(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tw := newTwin()
		tw.run(rng, 30+rng.Intn(70), 2+rng.Intn(5))
		tw.check(t, int64(seed))
	}
}

// TestPrecedesDeepNarrowPrograms stresses long fork paths (deep spawn
// chains) and many sync blocks in one task.
func TestPrecedesDeepNarrowPrograms(t *testing.T) {
	// Deep chain: spawn 40 levels, then unwind.
	tw := newTwin()
	for i := 0; i < 40; i++ {
		tw.spawn()
	}
	for len(tw.frames) > 1 {
		tw.restore()
	}
	tw.sync()
	tw.check(t, -1)

	// Wide: many sibling spawns across several sync blocks of the root.
	tw = newTwin()
	for blk := 0; blk < 5; blk++ {
		for s := 0; s < 6; s++ {
			tw.spawn()
			tw.restore()
		}
		tw.sync()
	}
	tw.check(t, -2)
}

// TestViewSnapshotStability verifies that a View taken mid-build keeps
// answering correctly (for the strands it covers) while the Builder grows —
// the property the sharded pipeline relies on.
func TestViewSnapshotStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tw := newTwin()
	tw.run(rng, 40, 4)
	v := tw.b.View()
	n := int32(v.StrandCount())
	type answer struct{ prec, par, left bool }
	saved := make(map[[2]int32]answer)
	for a := int32(0); a < n; a++ {
		for b := int32(0); b < n; b++ {
			saved[[2]int32{a, b}] = answer{v.Precedes(a, b), v.Parallel(a, b), v.LeftOf(a, b)}
		}
	}
	tw.run(rng, 60, 4) // keep building past the snapshot
	for k, want := range saved {
		got := answer{v.Precedes(k[0], k[1]), v.Parallel(k[0], k[1]), v.LeftOf(k[0], k[1])}
		if got != want {
			t.Fatalf("View answer for %v changed after Builder grew: %+v vs %+v", k, got, want)
		}
	}
}

// BenchmarkViewPerRefill measures the cost of taking one View snapshot —
// what the label stage used to pay per ring refill, and now pays only for
// batches whose structure events grew the strand set. Keeping this cheap is
// what makes the demand-driven policy a strict win.
func BenchmarkViewPerRefill(b *testing.B) {
	bl := NewBuilder()
	for i := 0; i < 1024; i++ {
		bl.Spawn()
		bl.Restore()
		bl.Sync()
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		v := bl.View()
		n += v.StrandCount()
	}
	if n == 0 {
		b.Fatal("snapshot covered no strands")
	}
}

func BenchmarkPrecedes(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	tw := newTwin()
	tw.run(rng, 400, 6)
	v := tw.b.View()
	n := int32(v.StrandCount())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := int32(i) % n
		c := int32(i*7) % n
		v.Parallel(a, c)
	}
}
