package depa

// Tracker replays the Builder's deterministic strand-ID assignment from the
// structure events alone. Every shard worker runs one: the label stage
// republishes batches unmodified (no per-shard strand boundary marks), so a
// worker derives "which strand do these access events belong to" by
// advancing its own Tracker through the same spawn/restore/sync sequence
// the Builder saw. IDs coincide exactly — per spawn the Builder numbers the
// child, the continuation, and (on the first spawn of a sync block) the
// reserved sync strand, and the Tracker reserves the same IDs in the same
// order without materializing any labels. The package tests differentially
// verify Tracker against Builder over randomized fork-join programs.
type Tracker struct {
	n     int32 // strands created
	cur   int32 // current strand
	stack []tframe
}

// tframe is the Tracker's per-function-instance state: just the two strand
// IDs a transition can make current.
type tframe struct {
	pending int32 // reserved sync strand of the current block, or -1
	cont    int32 // continuation strand to restore when this task returns
}

// NewTracker returns a Tracker positioned at the root strand (ID 0).
func NewTracker() *Tracker {
	t := &Tracker{n: 1, stack: make([]tframe, 1, 16)}
	t.stack[0] = tframe{pending: -1, cont: -1}
	return t
}

// Reset rewinds the Tracker to the state NewTracker returns, keeping its
// stack capacity.
func (t *Tracker) Reset() {
	t.n, t.cur = 1, 0
	t.stack = t.stack[:1]
	t.stack[0] = tframe{pending: -1, cont: -1}
}

// Current returns the ID of the current strand.
func (t *Tracker) Current() int32 { return t.cur }

// StrandCount returns the number of strands created so far.
func (t *Tracker) StrandCount() int { return int(t.n) }

// Spawn mirrors Builder.Spawn: the child strand becomes current, after the
// continuation and (first spawn of a block) the reserved sync strand claim
// their IDs.
func (t *Tracker) Spawn() {
	f := &t.stack[len(t.stack)-1]
	child := t.n
	cont := t.n + 1
	t.n += 2
	if f.pending < 0 {
		f.pending = t.n
		t.n++
	}
	t.cur = child
	t.stack = append(t.stack, tframe{pending: -1, cont: cont})
}

// Restore mirrors Builder.Restore: the parent's continuation strand becomes
// current.
func (t *Tracker) Restore() {
	top := t.stack[len(t.stack)-1]
	if len(t.stack) == 1 {
		panic("depa: Restore with no open spawn")
	}
	if top.pending >= 0 {
		panic("depa: Restore with pending sync")
	}
	t.stack = t.stack[:len(t.stack)-1]
	t.cur = top.cont
}

// Sync mirrors Builder.Sync: the reserved sync strand becomes current. A
// sync with no pending spawns panics, as in the Builder.
func (t *Tracker) Sync() {
	f := &t.stack[len(t.stack)-1]
	if f.pending < 0 {
		panic("depa: Sync with no pending spawns")
	}
	t.cur = f.pending
	f.pending = -1
}
