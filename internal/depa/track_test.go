package depa

import (
	"math/rand"
	"testing"
)

// trackTwin drives a Builder and a Tracker through the same structure-event
// sequence, checking after every transition that the Tracker reproduces the
// Builder's current strand — the property the shard workers rely on when
// they replay unlabeled batches.
type trackTwin struct {
	t     *testing.T
	b     *Builder
	tr    *Tracker
	depth int
	// pending mirrors whether the innermost task has outstanding spawns, so
	// the twin only emits the strand-creating syncs a producer would.
	pending []bool
}

func newTrackTwin(t *testing.T) *trackTwin {
	return &trackTwin{t: t, b: NewBuilder(), tr: NewTracker(), pending: make([]bool, 1)}
}

func (tw *trackTwin) verify(op string) {
	tw.t.Helper()
	if got, want := tw.tr.Current(), tw.b.Current(); got != want {
		tw.t.Fatalf("after %s: Tracker current %d, Builder current %d", op, got, want)
	}
	if got, want := tw.tr.StrandCount(), tw.b.StrandCount(); got != want {
		tw.t.Fatalf("after %s: Tracker strands %d, Builder strands %d", op, got, want)
	}
}

func (tw *trackTwin) spawn() {
	tw.b.Spawn()
	tw.tr.Spawn()
	tw.pending[len(tw.pending)-1] = true
	tw.pending = append(tw.pending, false)
	tw.depth++
	tw.verify("spawn")
}

func (tw *trackTwin) sync() {
	if !tw.pending[len(tw.pending)-1] {
		return
	}
	tw.b.Sync()
	tw.tr.Sync()
	tw.pending[len(tw.pending)-1] = false
	tw.verify("sync")
}

func (tw *trackTwin) restore() {
	tw.sync() // implicit child sync before returning
	tw.pending = tw.pending[:len(tw.pending)-1]
	tw.b.Restore()
	tw.tr.Restore()
	tw.depth--
	tw.verify("restore")
}

// TestTrackerMatchesBuilderRandomPrograms replays randomized fork-join
// programs through both implementations, step by step.
func TestTrackerMatchesBuilderRandomPrograms(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 30
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		tw := newTrackTwin(t)
		maxDepth := 2 + rng.Intn(5)
		for i, steps := 0, 30+rng.Intn(90); i < steps; i++ {
			switch rng.Intn(6) {
			case 0, 1, 2:
				if tw.depth < maxDepth {
					tw.spawn()
				}
			case 3:
				tw.sync()
			default:
				if tw.depth > 0 {
					tw.restore()
				}
			}
		}
		for tw.depth > 0 {
			tw.restore()
		}
		tw.sync() // final root sync, as Run issues
	}
}

// TestTrackerDeepAndWide pins the two shapes that exercise every ID-
// reservation rule: a deep spawn chain (fresh pending reservation at every
// level) and repeated sibling blocks in one task (pending reused within a
// block, re-reserved across blocks).
func TestTrackerDeepAndWide(t *testing.T) {
	tw := newTrackTwin(t)
	for i := 0; i < 40; i++ {
		tw.spawn()
	}
	for tw.depth > 0 {
		tw.restore()
	}
	tw.sync()

	tw = newTrackTwin(t)
	for blk := 0; blk < 5; blk++ {
		for s := 0; s < 6; s++ {
			tw.spawn()
			tw.restore()
		}
		tw.sync()
	}
}

// TestTrackerPanicsMirrorBuilder pins the guard rails shared with Builder:
// ill-formed streams fail loudly instead of silently corrupting IDs.
func TestTrackerPanicsMirrorBuilder(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("restore at root", func() { NewTracker().Restore() })
	expectPanic("sync without spawn", func() { NewTracker().Sync() })
	expectPanic("restore with pending sync", func() {
		tr := NewTracker()
		tr.Spawn()   // enter child
		tr.Spawn()   // enter grandchild; the child now has a pending block
		tr.Restore() // grandchild returns
		tr.Restore() // child returns with its block unsynced
	})
}
