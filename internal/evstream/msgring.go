package evstream

import "sync"

// MsgRing is a bounded SPSC queue of messages of any type, with an
// integrated free list for message reuse. It is the shard-fan-out sibling
// of Ring: the sequencer publishes per-shard batch messages (events plus a
// label snapshot), each shard worker consumes from its own MsgRing, and
// consumed messages cycle back to the producer through Recycle/GetFree so a
// steady-state pipeline allocates a fixed set of messages per shard.
//
// The same SPSC discipline applies: exactly one producer goroutine may call
// Publish/Close/GetFree and exactly one consumer may call Next/Recycle.
type MsgRing[M any] struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []M
	head     int // index of the oldest published message
	count    int // published, not yet consumed
	closed   bool
	free     []M
	stats    Stats
}

// NewMsgRing returns a ring holding at most depth in-flight messages.
func NewMsgRing[M any](depth int) *MsgRing[M] {
	if depth < 1 {
		depth = 1
	}
	r := &MsgRing[M]{buf: make([]M, depth)}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

// GetFree pops a recycled message for the producer to refill. ok is false
// when the free list is empty, in which case the producer builds a fresh
// message.
func (r *MsgRing[M]) GetFree() (m M, ok bool) {
	r.mu.Lock()
	if n := len(r.free); n > 0 {
		m, ok = r.free[n-1], true
		var zero M
		r.free[n-1] = zero
		r.free = r.free[:n-1]
		r.stats.BatchesReused++
	}
	r.mu.Unlock()
	return m, ok
}

// Publish appends m to the ring, blocking while the ring is full
// (backpressure on the sequencer). Publishing on a closed ring panics.
func (r *MsgRing[M]) Publish(m M) {
	r.mu.Lock()
	for r.count == len(r.buf) && !r.closed {
		r.stats.ProducerWaits++
		r.notFull.Wait()
	}
	if r.closed {
		r.mu.Unlock()
		panic("evstream: Publish on closed MsgRing")
	}
	r.buf[(r.head+r.count)%len(r.buf)] = m
	r.count++
	r.stats.BatchesPublished++
	r.notEmpty.Signal()
	r.mu.Unlock()
}

// Close marks the stream complete. The consumer drains the remaining
// messages and then Next reports ok=false.
func (r *MsgRing[M]) Close() {
	r.mu.Lock()
	r.closed = true
	r.notEmpty.Signal()
	r.notFull.Signal()
	r.mu.Unlock()
}

// Next pops the oldest published message, blocking while the ring is empty
// and not closed. ok is false once the ring is closed and drained.
func (r *MsgRing[M]) Next() (m M, ok bool) {
	r.mu.Lock()
	for r.count == 0 && !r.closed {
		r.stats.ConsumerWaits++
		r.notEmpty.Wait()
	}
	if r.count == 0 {
		r.mu.Unlock()
		return m, false
	}
	m = r.buf[r.head]
	var zero M
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.notFull.Signal()
	r.mu.Unlock()
	return m, true
}

// Recycle returns a consumed message to the free list for GetFree. The
// free list is bounded by depth+1 messages; extras are dropped for the
// garbage collector.
func (r *MsgRing[M]) Recycle(m M) {
	r.mu.Lock()
	if len(r.free) <= len(r.buf) {
		r.free = append(r.free, m)
	}
	r.mu.Unlock()
}

// Stats returns the ring's activity counters. Call only after the pipeline
// has drained.
func (r *MsgRing[M]) Stats() Stats { return r.stats }
