package evstream

import "encoding/binary"

// Compact wire format. A compact Batch stores its events delta-packed in
// Buf instead of as 16-byte Event structs in Ev, exploiting the two
// regularities real event streams have in abundance: op and size repeat
// (almost every access is a 4- or 8-byte load/store) and addresses move in
// small strides (loops walk buffers). The layout per event:
//
//	tag byte:  bits 0-2  Op (1..7 — the Op constants fill exactly 3 bits)
//	           bits 3-7  inline operand: the access size (OpRead/OpWrite)
//	                     or element size (range ops), values 0..30;
//	                     31 means "operand follows as a uvarint escape"
//
//	OpSpawn/OpRestore/OpSync:  tag only (1 byte, operand bits zero)
//	OpRead/OpWrite:            tag [size uvarint] addrDelta varint
//	OpReadRange/OpWriteRange:  tag [elem uvarint] count uvarint addrDelta varint
//
// addrDelta is the zig-zag varint of the address's movement since the
// previous access in the same batch, computed in wrapping (mod 2^64)
// arithmetic — so an address-space wrap (prev 2^64-1 → addr 0) is a tiny
// +1 delta, and a "wild jump" anywhere in the address space costs at most
// a full-width 10-byte varint, never an error. The sequential fast path —
// a small-size access a small stride from its predecessor — is 2 bytes,
// against the fixed encoding's 16.
//
// The delta base resets to zero with every batch (Batch.Reset clears
// prev): each batch decodes independently of every other. That is load-
// bearing, not just convenient — shard workers skip batches wholesale on
// the Summary fast path, and the label stage may stamp summaries by
// decoding batches the producer already finished, so no decoder can rely
// on state carried over from a batch someone else may never have scanned.
//
// Summary.Ctl offsets in a compact batch are byte offsets of the structure
// events' tag bytes (AppendCtl returns them); since the op occupies the
// tag's low 3 bits, skip-scan replay reads the op straight from the tag
// without decoding anything else (Batch.CtlOp).
const (
	tagOpMask   = 0b111 // low three bits of the tag byte: the Op
	tagArgShift = 3     // the inline operand sits above the op bits
	tagArgMax   = 30    // largest inline size/elem
	tagArgEsc   = 31    // operand follows as a uvarint
)

// MaxEventBytes bounds one encoded event: tag (1) + escaped operand (≤10)
// + range count (≤5: counts fit 32 bits) + address delta (≤10), rounded
// up. Batch.Full publishes while at least this much capacity remains, so
// an append never grows a recycled batch's buffer.
const MaxEventBytes = 32

// MaxAccessSize bounds a plain access's size in bytes: the fixed Event
// packs it in the 56 bits above the op byte, and the compact encoding
// enforces the same limit so toggling the encoding cannot change which
// programs are accepted. The stint hook layer validates raw-address
// accesses before emitting.
const MaxAccessSize = 1<<56 - 1

// checkRangeFields is the shared range-operand validation: both encodings
// (Range for the fixed form, AppendRange for the compact form) reject
// operands outside the representable fields rather than truncate.
func checkRangeFields(count int, elem uint64) {
	if count < 0 || uint64(count) > MaxRangeCount {
		panic("evstream: range count does not fit the 32-bit count field")
	}
	if elem > MaxRangeElem {
		panic("evstream: range element size does not fit the 24-bit elem field")
	}
}

// Compact reports which storage form the batch uses: delta-packed bytes in
// Buf (true) or fixed 16-byte Events in Ev (false).
func (b *Batch) Compact() bool { return b.compact }

// Len returns the batch's logical event count, independent of encoding.
func (b *Batch) Len() int {
	if b.compact {
		return b.n
	}
	return len(b.Ev)
}

// WireBytes returns the bytes the batch occupies on the ring: the packed
// buffer's length, or 16 per event for the fixed encoding.
func (b *Batch) WireBytes() int {
	if b.compact {
		return len(b.Buf)
	}
	return 16 * len(b.Ev)
}

// Full reports whether the producer should publish before the next append.
// A fixed batch is full at capacity; a compact batch is full when the next
// event might not fit (a worst-case MaxEventBytes encoding would exceed
// the buffer's capacity) — but never while empty, so even a 16-byte batch
// (the tests' one-event geometry) always carries at least one event.
func (b *Batch) Full() bool {
	if b.compact {
		return len(b.Buf) > 0 && len(b.Buf)+MaxEventBytes > cap(b.Buf)
	}
	return len(b.Ev) == cap(b.Ev)
}

// Reset clears the batch for reuse under either encoding, keeping the
// storage capacity and — via Summary.Reset — the Ctl capacity. It also
// zeroes the delta base: every batch's addresses delta from zero, so
// batches decode independently (see the wire-format comment).
func (b *Batch) Reset() {
	b.Ev = b.Ev[:0]
	b.Buf = b.Buf[:0]
	b.n = 0
	b.prev = 0
	b.Sum.Reset()
}

// AppendCtl appends one structure event and returns its offset in the form
// Summary.AddCtl records: a byte offset into Buf for compact batches, an
// event index into Ev otherwise.
func (b *Batch) AppendCtl(op Op) int {
	if b.compact {
		off := len(b.Buf)
		b.Buf = append(b.Buf, byte(op))
		b.n++
		return off
	}
	off := len(b.Ev)
	b.Ev = append(b.Ev, Ctl(op))
	return off
}

// AppendAccess appends one per-access event (OpRead/OpWrite).
func (b *Batch) AppendAccess(op Op, addr, size uint64) {
	if !b.compact {
		b.Ev = append(b.Ev, Access(op, addr, size))
		return
	}
	if size <= tagArgMax {
		b.Buf = append(b.Buf, byte(op)|byte(size)<<tagArgShift)
	} else {
		if size > MaxAccessSize {
			panic("evstream: access size does not fit the 56-bit size field")
		}
		b.Buf = append(b.Buf, byte(op)|tagArgEsc<<tagArgShift)
		b.Buf = binary.AppendUvarint(b.Buf, size)
	}
	b.appendDelta(addr)
	b.n++
}

// AppendRange appends one range event (OpReadRange/OpWriteRange),
// enforcing the same operand limits as the fixed Range constructor.
func (b *Batch) AppendRange(op Op, addr uint64, count int, elem uint64) {
	if !b.compact {
		b.Ev = append(b.Ev, Range(op, addr, count, elem))
		return
	}
	checkRangeFields(count, elem)
	if elem <= tagArgMax {
		b.Buf = append(b.Buf, byte(op)|byte(elem)<<tagArgShift)
	} else {
		b.Buf = append(b.Buf, byte(op)|tagArgEsc<<tagArgShift)
		b.Buf = binary.AppendUvarint(b.Buf, elem)
	}
	b.Buf = binary.AppendUvarint(b.Buf, uint64(count))
	b.appendDelta(addr)
	b.n++
}

// AppendFrom bulk-appends every event of src to b, reporting false — and
// leaving b untouched — when they might not fit without growing b's
// storage. It exists for the parallel-detect merge stage, which coalesces
// many small per-task chunks into full-size batches: for the compact
// encoding only src's first event is decoded and re-encoded (its address
// delta must rebase from b's delta base instead of zero), after which the
// remaining bytes copy verbatim — deltas after the first event are
// relative to src-internal addresses that the re-encoded first event
// re-establishes — and b inherits src's final delta base.
//
// The source must hold access/range events only (AppendFrom panics on a
// leading structure event and would silently lose Summary.Ctl offsets for
// an embedded one); the merge keeps structure events out of chunks by
// design, synthesizing them from chunk terminators instead. Summaries are
// not merged — the caller ORs masks and stamps Ctl itself.
func (b *Batch) AppendFrom(src *Batch) bool {
	n := src.Len()
	if n == 0 {
		return true
	}
	if b.compact != src.compact {
		panic("evstream: AppendFrom across storage forms")
	}
	if !b.compact {
		if len(b.Ev)+len(src.Ev) > cap(b.Ev) {
			return false
		}
		b.Ev = append(b.Ev, src.Ev...)
		return true
	}
	// Conservative: the re-encoded first event costs at most MaxEventBytes
	// more than the bytes it replaces, so this bound guarantees no growth.
	if len(b.Buf)+len(src.Buf)+MaxEventBytes > cap(b.Buf) {
		return false
	}
	it := src.Iter()
	ev, _ := it.Next()
	switch op := ev.EvOp(); op {
	case OpRead, OpWrite:
		b.AppendAccess(op, ev.Addr(), ev.Size())
	case OpReadRange, OpWriteRange:
		b.AppendRange(op, ev.Addr(), ev.Count(), ev.Elem())
	default:
		panic("evstream: AppendFrom source starts with a structure event")
	}
	b.Buf = append(b.Buf, src.Buf[it.Pos():]...)
	b.n += n - 1
	b.prev = src.prev
	return true
}

// appendDelta writes the zig-zag varint of the wrapping address movement
// since the previous access and advances the base. Strides within ±64
// bytes — almost every loop over a buffer — take the inlined single-byte
// path; anything wider falls back to the generic varint append.
func (b *Batch) appendDelta(addr uint64) {
	d := addr - b.prev
	b.prev = addr
	if zz := (d << 1) ^ uint64(int64(d)>>63); zz < 0x80 {
		b.Buf = append(b.Buf, byte(zz))
		return
	}
	b.Buf = binary.AppendVarint(b.Buf, int64(d))
}

// CtlOp returns the op of the i-th structure event recorded in the batch's
// Summary.Ctl, resolving the offset against whichever storage form the
// batch uses. For compact batches this reads one tag byte — skip-scan
// replay never decodes operands.
func (b *Batch) CtlOp(i int) Op {
	off := b.Sum.Ctl[i]
	if b.compact {
		return Op(b.Buf[off] & tagOpMask)
	}
	return b.Ev[off].EvOp()
}

// Iter returns an iterator over the batch's events that yields each as a
// standard Event value, so consumers scan both storage forms with one
// loop and without materializing a []Event for compact batches.
func (b *Batch) Iter() Iter {
	return Iter{ev: b.Ev, buf: b.Buf, compact: b.compact}
}

// Iter decodes a batch sequentially. The zero Iter is empty; obtain one
// from Batch.Iter. It carries its own delta base, so concurrent consumers
// (every shard worker scans the same broadcast batch) each decode
// independently.
type Iter struct {
	ev      []Event
	buf     []byte
	pos     int
	prev    uint64
	compact bool
}

// Pos returns the offset of the next event Next will yield, in the same
// form Summary.Ctl records (byte offset or event index) — the label stage
// stamps Ctl by reading Pos before each Next.
func (it *Iter) Pos() int { return it.pos }

// Next yields the next event, or ok=false at the end of the batch. Compact
// buffers are trusted input — they are produced in-process by the Append
// methods — so a malformed buffer panics rather than returning an error.
func (it *Iter) Next() (Event, bool) {
	if !it.compact {
		if it.pos >= len(it.ev) {
			return Event{}, false
		}
		ev := it.ev[it.pos]
		it.pos++
		return ev, true
	}
	if it.pos >= len(it.buf) {
		return Event{}, false
	}
	tag := it.buf[it.pos]
	it.pos++
	op := Op(tag & tagOpMask)
	arg := uint64(tag >> tagArgShift)
	switch op {
	case OpSpawn, OpRestore, OpSync:
		return Event{word: uint64(op)}, true
	case OpRead, OpWrite:
		size := arg
		if arg == tagArgEsc {
			size = it.uvarint()
		}
		return Event{word: uint64(op) | size<<8, addr: it.delta()}, true
	case OpReadRange, OpWriteRange:
		elem := arg
		if arg == tagArgEsc {
			elem = it.uvarint()
		}
		count := it.uvarint()
		return Event{word: uint64(op) | elem<<8 | count<<32, addr: it.delta()}, true
	}
	panic("evstream: corrupt compact event stream")
}

func (it *Iter) uvarint() uint64 {
	if it.pos < len(it.buf) {
		if b := it.buf[it.pos]; b < 0x80 { // single-byte fast path
			it.pos++
			return uint64(b)
		}
	}
	v, n := binary.Uvarint(it.buf[it.pos:])
	if n <= 0 {
		panic("evstream: truncated compact event stream")
	}
	it.pos += n
	return v
}

func (it *Iter) delta() uint64 {
	if it.pos < len(it.buf) {
		if zz := it.buf[it.pos]; zz < 0x80 { // single-byte fast path
			it.pos++
			it.prev += uint64(zz>>1) ^ -uint64(zz&1)
			return it.prev
		}
	}
	d, n := binary.Varint(it.buf[it.pos:])
	if n <= 0 {
		panic("evstream: truncated compact event stream")
	}
	it.pos += n
	it.prev += uint64(d)
	return it.prev
}
