package evstream

import (
	"encoding/binary"
	"math/bits"
)

// Compact wire format, v2: block-structured. A compact Batch stores its
// events delta-packed in Buf instead of as 16-byte Event structs in Ev,
// exploiting the two regularities real event streams have in abundance:
// operand sizes repeat (almost every access is a 4- or 8-byte load/store)
// and addresses move in small strides (loops walk buffers). Where the v1
// format spent a tag byte and a varint on every event — paying a
// per-byte branch loop on every decode — v2 groups access events into
// blocks of up to BlockEvents (64) and moves every per-event decision
// into small per-block tables the decoder reads with shifts and unaligned
// loads (Iter.DecodeBlock), so decoding one event costs a table fill plus
// one masked load instead of a varint loop.
//
// Stream layout: a compact buffer is a sequence of two element kinds,
// distinguishable from their first byte (the low 3 bits are an Op for
// structure events and 0 — no Op — for a block):
//
//	structure event:  one bare tag byte, value OpSpawn/OpRestore/OpSync
//	                  (1..3). Structure events never ride inside blocks,
//	                  so Summary.Ctl byte offsets keep pointing at single
//	                  tag bytes and skip-scan replay (Batch.CtlOp) still
//	                  reads the op without decoding anything else.
//
//	access block (1..BlockEvents access/range events):
//	    marker   byte 0x00 (blockMarker: no Op in the low bits)
//	    header   byte: bits 0-5 = n-1, bit 6 = block contains range events
//	    opBits   ceil(n/4) bytes: 2-bit op code per event, in order.
//	             The four access ops are exactly OpRead..OpWriteRange =
//	             4..7, so code = op&3 and op = code+4 — op runs cost 2
//	             bits per event no matter how reads and writes interleave.
//	    sizeRuns run-length encoded size/elem operands: each run is
//	             (valueByte, lenByte) with value 0..254 inline and 255
//	             meaning "value follows as a uvarint", lenByte = run-1.
//	             Same-size runs are overwhelmingly common, so this
//	             section is typically one run for the whole block.
//	    deltas   group-varint address deltas: per 4 events one control
//	             byte holding four 2-bit width codes (0..3 = 1/2/4/8
//	             bytes), then the zig-zag deltas little-endian, truncated
//	             to their coded width. The decoder turns a code into a
//	             mask and does one unaligned 8-byte load per delta — no
//	             per-byte continuation branches.
//	    counts   (only if header bit 6) one uvarint per range event, in
//	             event order. Last so the decoder's count pass starts
//	             exactly where the fused op/delta pass stopped, with
//	             range positions re-read from the packed op bytes — no
//	             side state between sections.
//
// Address deltas are zig-zag encodings of the address's movement since
// the previous access in the same batch, in wrapping (mod 2^64)
// arithmetic — an address-space wrap (prev 2^64-1 → addr 0) is a tiny +1
// delta, and a wild jump anywhere in the address space costs at most 8
// bytes, never an error. The delta chain runs across blocks within a
// batch but resets to zero with every batch (Batch.Reset clears prev):
// each batch decodes independently of every other. That is load-bearing,
// not just convenient — shard workers skip batches wholesale on the
// Summary fast path, and the label stage may stamp summaries by decoding
// batches the producer already finished, so no decoder can rely on state
// carried over from a batch someone else may never have scanned.
//
// The sequential fast path — a run of same-size accesses striding
// through a buffer — costs 1 delta byte + 2 op bits + 1/4 control byte
// per event, ~1.6 bytes against the fixed encoding's 16 and the v1
// per-event encoding's 2.
//
// The encoder stages up to one block of pending events in the Batch
// (pendOp/pendA/pendC/pendZZ/pendW) and seals the block into Buf when it
// reaches BlockEvents, when a structure event arrives, or when the batch
// is published or read (Iter/WireBytes seal as a courtesy; Ring.Publish
// and TaskQueue.Publish seal explicitly). pendN + pendExtra +
// blockOverhead(pendN) is the staged block's exact sealed size, so
// Batch.Full never lets an append grow a recycled batch's buffer.
const (
	tagOpMask = 0b111 // low three bits of a structure tag byte: the Op

	// BlockEvents is the maximum number of access events per block, and
	// the size of the stack array Iter.DecodeBlock fills. 64 keeps a
	// decoded block (1 KiB of Events) inside L1 while amortizing the
	// per-block header work over enough events to vanish.
	BlockEvents = 64

	blockMarker    = 0x00 // first byte of a block: no Op in the low bits
	blockHasRanges = 1 << 6
	blockArgEsc    = 0xff // size-run value byte: operand follows as uvarint
)

// groupMask and unzig support the group-varint delta decode: a 2-bit
// width code selects how many low bytes of an unaligned 8-byte load are
// the delta.
var groupMask = [4]uint64{0xff, 0xffff, 0xffffffff, ^uint64(0)}

func unzig(zz uint64) uint64 { return zz>>1 ^ -(zz & 1) }

// unzigB is unzig over single-byte zig-zag values — the sequential fast
// path's delta width. One L1-resident table load per lane replaces the
// shift/negate/xor chain in the kernel's hottest group shape.
var unzigB = func() (t [256]uint64) {
	for i := range t {
		t[i] = unzig(uint64(i))
	}
	return
}()

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// MaxEventBytes bounds one event's marginal contribution to the encoded
// stream: block header (2) + op-bits byte (1) + control byte (1) + a new
// size run (2) with an escaped operand (≤10) + a range count (≤5: counts
// fit 32 bits) + the widest delta (8), rounded up. Batch.Full publishes
// while at least this much capacity remains, so an append never grows a
// recycled batch's buffer.
const MaxEventBytes = 32

// MaxAccessSize bounds a plain access's size in bytes: the fixed Event
// packs it in the 56 bits above the op byte, and the compact encoding
// enforces the same limit so toggling the encoding cannot change which
// programs are accepted. The stint hook layer validates raw-address
// accesses before emitting.
const MaxAccessSize = 1<<56 - 1

// checkRangeFields is the shared range-operand validation: both encodings
// (Range for the fixed form, AppendRange for the compact form) reject
// operands outside the representable fields rather than truncate.
func checkRangeFields(count int, elem uint64) {
	if count < 0 || uint64(count) > MaxRangeCount {
		panic("evstream: range count does not fit the 32-bit count field")
	}
	if elem > MaxRangeElem {
		panic("evstream: range element size does not fit the 24-bit elem field")
	}
}

// Compact reports which storage form the batch uses: delta-packed bytes in
// Buf (true) or fixed 16-byte Events in Ev (false).
func (b *Batch) Compact() bool { return b.compact }

// Len returns the batch's logical event count, independent of encoding
// and including any staged-but-unsealed events.
func (b *Batch) Len() int {
	if b.compact {
		return b.n + b.pendN
	}
	return len(b.Ev)
}

// WireBytes returns the bytes the batch occupies on the ring: the packed
// buffer's length (sealing any staged block first), or 16 per event for
// the fixed encoding.
func (b *Batch) WireBytes() int {
	if b.compact {
		b.seal()
		return len(b.Buf)
	}
	return 16 * len(b.Ev)
}

// Full reports whether the producer should publish before the next append.
// A fixed batch is full at capacity; a compact batch is full when the next
// event might not fit (pendN + pendExtra + blockOverhead is the staged
// block's exact sealed size, MaxEventBytes the worst-case next event) —
// but never while empty, so even a tiny batch (the tests' one-event
// geometry) always carries at least one event.
func (b *Batch) Full() bool {
	if b.compact {
		return b.n+b.pendN > 0 &&
			len(b.Buf)+b.pendN+b.pendExtra+blockOverhead(b.pendN)+MaxEventBytes > cap(b.Buf)
	}
	return len(b.Ev) == cap(b.Ev)
}

// blockOverhead is the staged block's structural byte count: marker and
// header, plus one op-bits and one control byte per (partial) group of
// four. Zero while nothing is staged.
func blockOverhead(pendN int) int {
	if pendN == 0 {
		return 0
	}
	return 2 + ((pendN+3)>>2)<<1
}

// Reset clears the batch for reuse under either encoding, keeping the
// storage capacity and — via Summary.Reset — the Ctl capacity. It also
// zeroes the delta base: every batch's addresses delta from zero, so
// batches decode independently (see the wire-format comment).
func (b *Batch) Reset() {
	b.Ev = b.Ev[:0]
	b.Buf = b.Buf[:0]
	b.n = 0
	b.prev = 0
	b.pendN = 0
	b.pendExtra = 0
	b.pendRunN = 0
	b.pendRangeN = 0
	b.Sum.Reset()
}

// AppendCtl appends one structure event and returns its offset in the form
// Summary.AddCtl records: a byte offset into Buf for compact batches (the
// staged block is sealed first, so the offset is final), an event index
// into Ev otherwise.
func (b *Batch) AppendCtl(op Op) int {
	if b.compact {
		b.seal()
		off := len(b.Buf)
		b.Buf = append(b.Buf, byte(op))
		b.n++
		return off
	}
	off := len(b.Ev)
	b.Ev = append(b.Ev, Ctl(op))
	return off
}

// AppendAccess appends one per-access event (OpRead/OpWrite). The compact
// path is a hand-specialized copy of stage without the range-count leg —
// plain accesses are the producer's hot path, and routing them through the
// generic stage call costs a second call frame per event. The codec tests'
// exact byte-accounting pin keeps the copy honest; see stage for the
// commentary on each step.
func (b *Batch) AppendAccess(op Op, addr, size uint64) {
	if !b.compact {
		b.appendFixedAccess(op, addr, size)
		return
	}
	if size > MaxAccessSize {
		panic("evstream: access size does not fit the 56-bit size field")
	}
	d := addr - b.prev
	b.prev = addr
	zz := (d << 1) ^ uint64(int64(d)>>63)
	i := b.pendN
	var wc byte
	if zz >= 1<<8 {
		wc = byte(bits.Len32(uint32((bits.Len64(zz)+7)>>3) - 1))
		b.pendExtra += 1<<wc - 1
	}
	b.pendOW[i] = (byte(op)&3)<<4 | wc
	if size != b.pendLastA || i == 0 {
		r := b.pendRunN
		b.pendRunV[r] = size
		b.pendRunS[r] = byte(i)
		b.pendRunN = r + 1
		b.pendLastA = size
		extra := 2
		if size >= blockArgEsc {
			extra += uvarintLen(size)
		}
		b.pendExtra += extra
	}
	b.pendZZ[i] = zz
	b.pendN = i + 1
	if i+1 == BlockEvents {
		b.seal()
	}
}

func (b *Batch) appendFixedAccess(op Op, addr, size uint64) {
	b.Ev = append(b.Ev, Access(op, addr, size))
}

// AppendRange appends one range event (OpReadRange/OpWriteRange),
// enforcing the same operand limits as the fixed Range constructor.
func (b *Batch) AppendRange(op Op, addr uint64, count int, elem uint64) {
	if !b.compact {
		b.appendFixedRange(op, addr, count, elem)
		return
	}
	checkRangeFields(count, elem)
	b.stage(byte(op), elem, uint64(count), addr)
}

func (b *Batch) appendFixedRange(op Op, addr uint64, count int, elem uint64) {
	b.Ev = append(b.Ev, Range(op, addr, count, elem))
}

// stage buffers one access/range event into the pending block, tracking
// the block's exceptional bytes as it goes (run boundaries, escapes,
// wide deltas, range counts — everything beyond the baseline one delta
// byte per event that pendN itself counts), and seals when the block is
// complete. Per-event codes go into flat byte arrays — independent stores;
// OR-ing into shared packed bytes here would chain every call through a
// store-forward of the previous one, as would bumping a run-length counter,
// so runs are staged as (value, start index) and only on a value change.
func (b *Batch) stage(op byte, a, c, addr uint64) {
	d := addr - b.prev
	b.prev = addr
	zz := (d << 1) ^ uint64(int64(d)>>63)
	i := b.pendN
	var wc byte
	if zz >= 1<<8 {
		// Wide delta: bytes needed (2..8), whose bit length over 1..7
		// collapses 2/4/8 to codes 1..3.
		wc = byte(bits.Len32(uint32((bits.Len64(zz)+7)>>3) - 1))
		b.pendExtra += 1<<wc - 1
	}
	code := op & 3
	b.pendOW[i] = code<<4 | wc
	if a != b.pendLastA || i == 0 {
		r := b.pendRunN
		b.pendRunV[r] = a
		b.pendRunS[r] = byte(i)
		b.pendRunN = r + 1
		b.pendLastA = a
		extra := 2 // size-run value + length bytes
		if a >= blockArgEsc {
			extra += uvarintLen(a)
		}
		b.pendExtra += extra
	}
	if code&2 != 0 {
		r := b.pendRangeN
		b.pendC[r] = c
		b.pendRangeN = r + 1
		b.pendExtra += uvarintLen(c)
	}
	b.pendZZ[i] = zz
	b.pendN = i + 1
	if i+1 == BlockEvents {
		b.seal()
	}
}

// seal encodes the staged events as one block at the end of Buf. The
// encoded size equals exactly what the stage calls accounted — one
// baseline delta byte per event plus pendExtra plus the closed-form
// structural overhead (pinned by tests) — which lets Full guarantee no
// buffer growth:
// seal extends Buf by that amount up front and fills it with indexed
// stores (deltas as one unconditional 8-byte store each, the spill
// overwritten by the next field or clipped by the final truncation),
// never appending byte by byte.
func (b *Batch) seal() {
	n := b.pendN
	if n == 0 {
		return
	}
	buf := b.Buf
	k := len(buf)
	end := k + n + b.pendExtra + blockOverhead(n)
	if cap(buf) < end+8 {
		// Outside the ring's Full-governed geometry (tests, ad-hoc
		// batches): grow once, keeping the 8-byte store slack.
		grown := make([]byte, k, end+8)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:end+8]
	hdr := byte(n - 1)
	if b.pendRangeN > 0 {
		hdr |= blockHasRanges
	}
	buf[k] = blockMarker
	buf[k+1] = hdr
	k += 2
	// Zero the padding lanes of a partial final group so the packed bytes
	// below (and the wire stream) stay deterministic across batch reuse.
	for i := n; i < (n+3)&^3; i++ {
		b.pendOW[i] = 0
	}
	// Pack the op codes (high nibbles) and delta width codes (low nibbles)
	// four per byte in one pass: one word load per group, the lane bytes
	// folded down with shifts (lane L sits at bit 8L and wants bit 2L; the
	// stray bits all land outside the low byte). Op bytes go to the wire
	// here; control bytes wait on the stack for the delta section below.
	g := (n + 3) >> 2
	var ctrls [BlockEvents / 4]byte
	for gi := 0; gi < g; gi++ {
		w := binary.LittleEndian.Uint32(b.pendOW[gi*4:])
		op4 := (w >> 4) & 0x03030303
		wc4 := w & 0x03030303
		buf[k+gi] = byte(op4 | op4>>6 | op4>>12 | op4>>18)
		ctrls[gi] = byte(wc4 | wc4>>6 | wc4>>12 | wc4>>18)
	}
	k += g
	// Size/elem runs: lengths fall out of consecutive start indices (the
	// sentinel closes the last run).
	b.pendRunS[b.pendRunN] = byte(n)
	for r := 0; r < b.pendRunN; r++ {
		v := b.pendRunV[r]
		runL := b.pendRunS[r+1] - b.pendRunS[r] - 1
		if v < blockArgEsc {
			buf[k] = byte(v)
			buf[k+1] = runL
			k += 2
		} else {
			buf[k] = blockArgEsc
			buf[k+1] = runL
			k += 2 + binary.PutUvarint(buf[k+2:], v)
		}
	}
	// Group-varint deltas: the packed control byte, then the lanes. An
	// all-one-byte-wide group — the sequential-stream common case — packs
	// its four delta bytes with a single 4-byte store; otherwise the lane
	// offsets are precomputed off the control byte so the four full-width
	// stores issue independently instead of chaining through one running
	// cursor.
	for base := 0; base < n; base += 4 {
		ctrl := ctrls[base>>2]
		buf[k] = ctrl
		k++
		if n-base >= 4 {
			if ctrl == 0 {
				v := uint32(b.pendZZ[base]) | uint32(b.pendZZ[base+1])<<8 |
					uint32(b.pendZZ[base+2])<<16 | uint32(b.pendZZ[base+3])<<24
				binary.LittleEndian.PutUint32(buf[k:], v)
				k += 4
				continue
			}
			p1 := k + 1<<(ctrl&3)
			p2 := p1 + 1<<((ctrl>>2)&3)
			p3 := p2 + 1<<((ctrl>>4)&3)
			binary.LittleEndian.PutUint64(buf[k:], b.pendZZ[base])
			binary.LittleEndian.PutUint64(buf[p1:], b.pendZZ[base+1])
			binary.LittleEndian.PutUint64(buf[p2:], b.pendZZ[base+2])
			binary.LittleEndian.PutUint64(buf[p3:], b.pendZZ[base+3])
			k = p3 + 1<<(ctrl>>6)
			continue
		}
		for lane := 0; lane < n-base; lane++ {
			binary.LittleEndian.PutUint64(buf[k:], b.pendZZ[base+lane])
			k += 1 << ((ctrl >> (uint(lane) * 2)) & 3)
		}
	}
	// Range counts, event order, after the deltas: the decoder's count
	// pass then needs no side state — by the time it runs, the fused
	// op/delta pass has consumed the buffer up to exactly here. The
	// counts were staged dense in range order, so no scan for them here.
	for r := 0; r < b.pendRangeN; r++ {
		k += binary.PutUvarint(buf[k:], b.pendC[r])
	}
	if k != end {
		panic("evstream: sealed block size disagrees with staged accounting")
	}
	b.Buf = buf[:end]
	b.n += n
	b.pendN = 0
	b.pendExtra = 0
	b.pendRunN = 0
	b.pendRangeN = 0
}

// AppendFrom bulk-appends every event of src to b, reporting false — and
// leaving b untouched — when they might not fit without growing b's
// storage. It exists for the parallel-detect merge stage, which coalesces
// many small per-task chunks into full-size batches. For the compact
// encoding the rebase must understand block boundaries: only src's FIRST
// block's deltas depend on the delta base (its first event deltas from
// zero; everything after re-chains from in-block addresses), so that one
// block is decoded and re-staged against b's base — re-run-length-encoded
// and re-grouped — after which every remaining block copies verbatim and
// b inherits src's final delta base.
//
// The source must hold access/range events only (AppendFrom panics on a
// leading structure event and would silently lose Summary.Ctl offsets for
// an embedded one); the merge keeps structure events out of chunks by
// design, synthesizing them from chunk terminators instead. Summaries are
// not merged — the caller ORs masks and stamps Ctl itself.
func (b *Batch) AppendFrom(src *Batch) bool {
	n := src.Len()
	if n == 0 {
		return true
	}
	if b.compact != src.compact {
		panic("evstream: AppendFrom across storage forms")
	}
	if !b.compact {
		if len(b.Ev)+len(src.Ev) > cap(b.Ev) {
			return false
		}
		b.Ev = append(b.Ev, src.Ev...)
		return true
	}
	src.seal()
	// Conservative: the re-staged first block costs at most its worst-case
	// encoding beyond the bytes it replaces, so this bound guarantees no
	// growth. Chunks that fail it against an empty accumulator are
	// forwarded wholesale by the caller instead — no copy at all.
	if len(b.Buf)+b.pendN+b.pendExtra+len(src.Buf)+2+BlockEvents*MaxEventBytes > cap(b.Buf) {
		return false
	}
	it := src.Iter()
	var blk [BlockEvents]Event
	evs := it.DecodeBlock(&blk)
	for _, ev := range evs {
		switch op := ev.EvOp(); op {
		case OpRead, OpWrite:
			b.AppendAccess(op, ev.Addr(), ev.Size())
		case OpReadRange, OpWriteRange:
			b.AppendRange(op, ev.Addr(), ev.Count(), ev.Elem())
		default:
			panic("evstream: AppendFrom source starts with a structure event")
		}
	}
	b.seal()
	b.Buf = append(b.Buf, src.Buf[it.Pos():]...)
	b.n += n - len(evs)
	b.prev = src.prev
	return true
}

// CtlOp returns the op of the i-th structure event recorded in the batch's
// Summary.Ctl, resolving the offset against whichever storage form the
// batch uses. For compact batches this reads one tag byte — skip-scan
// replay never decodes operands.
func (b *Batch) CtlOp(i int) Op {
	off := b.Sum.Ctl[i]
	if b.compact {
		return Op(b.Buf[off] & tagOpMask)
	}
	return b.Ev[off].EvOp()
}

// Iter returns an iterator over the batch's events, sealing any staged
// block first. Consumers scan both storage forms with one DecodeBlock
// loop (or the per-event Next shim) without materializing a []Event for
// the whole compact batch. Concurrent iteration of one batch (every shard
// worker scans the same broadcast batch) is safe because published
// batches are sealed and read-only; each Iter carries its own delta base.
func (b *Batch) Iter() Iter {
	b.seal()
	return Iter{ev: b.Ev, buf: b.Buf, compact: b.compact}
}

// Iter decodes a batch. The zero Iter is empty; obtain one from
// Batch.Iter. The primary interface is DecodeBlock — one call decodes a
// whole block into a caller-owned stack array; Next is a per-event
// convenience shim over an internal block buffer for callers that don't
// care about decode throughput.
type Iter struct {
	ev      []Event
	buf     []byte
	pos     int
	prev    uint64
	compact bool

	// Next's shim state: the most recently decoded block.
	blkI, blkN int
	blk        [BlockEvents]Event
}

// Pos returns the iterator's position in the same form Summary.Ctl
// records (byte offset into the compact buffer, event index otherwise).
// It advances at DecodeBlock granularity: after a DecodeBlock call it
// points at the next block boundary. Within a returned group of structure
// events, the i-th event sits at Pos()+i of the position read *before*
// the call — structure events are single contiguous tag bytes in a
// compact batch and single slots in a fixed one — which is how the label
// stage stamps Summary.Ctl without per-event decoding.
func (it *Iter) Pos() int { return it.pos }

// DecodeBlock decodes the next block of events and returns them as a
// slice valid until the next call: into dst for compact batches (the
// block decode kernel — table fills plus one masked unaligned load per
// address), or a zero-copy window of the underlying slice for fixed
// batches. A compact batch yields its elements in stream order, each
// either one access block (1..BlockEvents access/range events) or a run
// of consecutive structure events; a fixed batch yields up to
// BlockEvents events as stored, structure and access events mixed. It
// returns an empty slice at the end of the batch. Compact buffers are
// trusted input — they are produced in-process by the Append methods —
// so a malformed buffer panics rather than returning an error.
func (it *Iter) DecodeBlock(dst *[BlockEvents]Event) []Event {
	if !it.compact {
		n := len(it.ev) - it.pos
		if n <= 0 {
			return nil
		}
		if n > BlockEvents {
			n = BlockEvents
		}
		evs := it.ev[it.pos : it.pos+n]
		it.pos += n
		return evs
	}
	buf := it.buf
	pos := it.pos
	if pos >= len(buf) {
		return nil
	}
	if op := buf[pos] & tagOpMask; op != 0 {
		// A run of bare structure tags: one byte per event, contiguous.
		k := 0
		for pos < len(buf) && k < BlockEvents {
			tag := buf[pos]
			if tag == blockMarker || tag > byte(OpSync) {
				break
			}
			dst[k] = Event{word: uint64(tag)}
			k++
			pos++
		}
		if k == 0 {
			panic("evstream: corrupt compact event stream")
		}
		it.pos = pos
		return dst[:k]
	}
	// Access block.
	if pos+1 >= len(buf) {
		panic("evstream: truncated compact event stream")
	}
	hdr := buf[pos+1]
	n := int(hdr&(blockHasRanges-1)) + 1
	pos += 2
	opPos := pos
	pos += (n + 3) / 4
	if pos > len(buf) {
		panic("evstream: truncated compact event stream")
	}
	// Size/elem runs. The overwhelmingly common block is one run covering
	// every event: fuse the size fill with the op unpack below by folding
	// the shared size into each group's op writes instead of a separate
	// pass. Multi-run blocks fall back to a run fill plus an op pass.
	oneRun := uint64(0)
	if pos+1 < len(buf) && int(buf[pos+1])+1 == n {
		a := uint64(buf[pos])
		pos += 2
		if a == blockArgEsc {
			a, pos = uvarintAt(buf, pos)
		}
		oneRun = a<<8 | 4 // pre-composed word base: size and the op-code bias
	} else {
		for filled := 0; filled < n; {
			if pos+1 >= len(buf) {
				panic("evstream: truncated compact event stream")
			}
			a := uint64(buf[pos])
			rl := int(buf[pos+1]) + 1
			pos += 2
			if a == blockArgEsc {
				a, pos = uvarintAt(buf, pos)
			}
			if filled+rl > n {
				panic("evstream: corrupt compact event stream")
			}
			w := a<<8 | 4
			for j := filled; j < filled+rl; j++ {
				dst[j].word = w
			}
			filled += rl
		}
	}
	// Fused op-unpack + group-varint delta pass: per four events, one
	// packed op byte unpacked with constant shifts (the op code is op&3,
	// so each word gains its code plus the bias 4 folded into the base)
	// and one delta control byte. The sequential common case — all four
	// deltas 1 byte — decodes from a single 4-byte load with no width
	// table; mixed widths take four unaligned 8-byte loads masked to their
	// coded widths.
	prev := it.prev
	base, g := 0, opPos
	for ; base+4 <= n; base, g = base+4, g+1 {
		ob := uint64(buf[g])
		if oneRun != 0 {
			dst[base].word = oneRun + (ob & 3)
			dst[base+1].word = oneRun + (ob >> 2 & 3)
			dst[base+2].word = oneRun + (ob >> 4 & 3)
			dst[base+3].word = oneRun + (ob >> 6 & 3)
		} else {
			dst[base].word += ob & 3
			dst[base+1].word += ob >> 2 & 3
			dst[base+2].word += ob >> 4 & 3
			dst[base+3].word += ob >> 6 & 3
		}
		if pos >= len(buf) {
			panic("evstream: truncated compact event stream")
		}
		if pos+8 <= len(buf) {
			// One 8-byte load picks up the control byte and (for the
			// all-one-byte sequential shape) the whole delta group behind
			// it. The four unzigs are independent table loads and the
			// addresses come from prefix sums, so the only work serialized
			// across groups is one add — the delta chain's data dependency
			// never exceeds one addition per four events.
			w8 := binary.LittleEndian.Uint64(buf[pos:])
			if w8&0x0000ff00000000ff == 0 && base+8 <= n && pos+10 <= len(buf) {
				// Two consecutive all-one-byte groups — the sequential
				// stream's steady state. The pair sits wholly inside w8
				// plus a 2-byte tail (ctrl, 4 deltas, ctrl, 4 deltas =
				// 10 bytes), so 8 events decode per loop trip: half the
				// loop, branch, and bounds-check overhead of the
				// group-at-a-time path.
				w16 := uint64(binary.LittleEndian.Uint16(buf[pos+8:]))
				u0 := unzigB[w8>>8&0xff]
				u1 := unzigB[w8>>16&0xff]
				u2 := unzigB[w8>>24&0xff]
				u3 := unzigB[w8>>32&0xff]
				u4 := unzigB[w8>>48&0xff]
				u5 := unzigB[w8>>56]
				u6 := unzigB[w16&0xff]
				u7 := unzigB[w16>>8]
				s01 := u0 + u1
				s0123 := s01 + u2 + u3
				s45 := u4 + u5
				dst[base].addr = prev + u0
				dst[base+1].addr = prev + s01
				dst[base+2].addr = prev + s01 + u2
				dst[base+3].addr = prev + s0123
				prev += s0123
				dst[base+4].addr = prev + u4
				dst[base+5].addr = prev + s45
				dst[base+6].addr = prev + s45 + u6
				prev += s45 + u6 + u7
				dst[base+7].addr = prev
				ob = uint64(buf[g+1])
				if oneRun != 0 {
					dst[base+4].word = oneRun + (ob & 3)
					dst[base+5].word = oneRun + (ob >> 2 & 3)
					dst[base+6].word = oneRun + (ob >> 4 & 3)
					dst[base+7].word = oneRun + (ob >> 6 & 3)
				} else {
					dst[base+4].word += ob & 3
					dst[base+5].word += ob >> 2 & 3
					dst[base+6].word += ob >> 4 & 3
					dst[base+7].word += ob >> 6 & 3
				}
				pos += 10
				base += 4
				g++
				continue
			}
			if byte(w8) == 0 {
				u0 := unzigB[w8>>8&0xff]
				u1 := unzigB[w8>>16&0xff]
				u2 := unzigB[w8>>24&0xff]
				u3 := unzigB[w8>>32&0xff]
				s01 := u0 + u1
				dst[base].addr = prev + u0
				dst[base+1].addr = prev + s01
				dst[base+2].addr = prev + s01 + u2
				prev += s01 + u2 + u3
				dst[base+3].addr = prev
				pos += 5
				continue
			}
		}
		ctrl := buf[pos]
		pos++
		if pos+32 <= len(buf) {
			// Mixed widths: the four lane offsets fall out of the width
			// codes up front, so the loads issue independently and the same
			// prefix-sum trick keeps the chain at one add per group.
			c0, c1, c2, c3 := ctrl&3, ctrl>>2&3, ctrl>>4&3, ctrl>>6&3
			p1 := pos + 1<<c0
			p2 := p1 + 1<<c1
			p3 := p2 + 1<<c2
			u0 := unzig(binary.LittleEndian.Uint64(buf[pos:]) & groupMask[c0])
			u1 := unzig(binary.LittleEndian.Uint64(buf[p1:]) & groupMask[c1])
			u2 := unzig(binary.LittleEndian.Uint64(buf[p2:]) & groupMask[c2])
			u3 := unzig(binary.LittleEndian.Uint64(buf[p3:]) & groupMask[c3])
			s01 := u0 + u1
			dst[base].addr = prev + u0
			dst[base+1].addr = prev + s01
			dst[base+2].addr = prev + s01 + u2
			prev += s01 + u2 + u3
			dst[base+3].addr = prev
			pos = p3 + 1<<c3
			continue
		}
		// Buffer-tail fallback: too close to the end for unconditional
		// 8-byte loads — assemble each delta bytewise.
		for lane := 0; lane < 4; lane++ {
			code := ctrl >> (lane * 2) & 3
			w := 1 << code
			if pos+w > len(buf) {
				panic("evstream: truncated compact event stream")
			}
			var zz uint64
			for j := w - 1; j >= 0; j-- {
				zz = zz<<8 | uint64(buf[pos+j])
			}
			pos += w
			prev += unzig(zz)
			dst[base+lane].addr = prev
		}
	}
	// Partial final group (n not a multiple of 4): ops and deltas lane by
	// lane.
	if base < n {
		ob := uint64(buf[g])
		if pos >= len(buf) {
			panic("evstream: truncated compact event stream")
		}
		ctrl := buf[pos]
		pos++
		for lane := 0; base+lane < n; lane++ {
			if oneRun != 0 {
				dst[base+lane].word = oneRun + (ob >> (lane * 2) & 3)
			} else {
				dst[base+lane].word += ob >> (lane * 2) & 3
			}
			code := ctrl >> (lane * 2) & 3
			w := 1 << code
			if pos+w > len(buf) {
				panic("evstream: truncated compact event stream")
			}
			var zz uint64
			if pos+8 <= len(buf) {
				zz = binary.LittleEndian.Uint64(buf[pos:]) & groupMask[code]
			} else {
				for j := w - 1; j >= 0; j-- {
					zz = zz<<8 | uint64(buf[pos+j])
				}
			}
			pos += w
			prev += unzig(zz)
			dst[base+lane].addr = prev
		}
	}
	// Range counts, in event order, from the tail section after the
	// deltas. Even in a flagged block most op groups hold no range events
	// — a group's packed byte has a range op iff one of its codes has bit
	// 1 set — so whole groups skip on one byte test.
	if hdr&blockHasRanges != 0 {
		for cg, i := opPos, 0; i < n; cg, i = cg+1, i+4 {
			ob := buf[cg]
			if ob&0b10101010 == 0 {
				continue
			}
			m := i + 4
			if m > n {
				m = n
			}
			for j := i; j < m; j++ {
				if ob>>(uint(j-i)*2)&2 != 0 {
					var c uint64
					c, pos = uvarintAt(buf, pos)
					dst[j].word |= c << 32
				}
			}
		}
	}
	it.prev = prev
	it.pos = pos
	return dst[:n]
}

// Next yields the next event, or ok=false at the end of the batch. It is
// a shim over DecodeBlock (refilling an internal block buffer), kept for
// callers that want per-event pull semantics; hot consumers use
// DecodeBlock directly.
func (it *Iter) Next() (Event, bool) {
	if it.blkI < it.blkN {
		ev := it.blk[it.blkI]
		it.blkI++
		return ev, true
	}
	if !it.compact {
		if it.pos >= len(it.ev) {
			return Event{}, false
		}
		ev := it.ev[it.pos]
		it.pos++
		return ev, true
	}
	evs := it.DecodeBlock(&it.blk)
	if len(evs) == 0 {
		return Event{}, false
	}
	it.blkN = len(evs)
	it.blkI = 1
	return evs[0], true
}

// uvarintAt decodes a uvarint at buf[pos:], with an inlined single-byte
// fast path, returning the value and the next position.
func uvarintAt(buf []byte, pos int) (uint64, int) {
	if pos < len(buf) {
		if b := buf[pos]; b < 0x80 {
			return uint64(b), pos + 1
		}
	}
	v, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		panic("evstream: truncated compact event stream")
	}
	return v, pos + n
}
