package evstream

import (
	"math/rand"
	"testing"
)

func collectSplit(ev Event, pageBits uint) (pages []uint64, pieces []Event) {
	PageSplit(ev, pageBits, func(page uint64, piece Event) {
		pages = append(pages, page)
		pieces = append(pieces, piece)
	})
	return
}

func TestPageSplitWithinPagePassesThrough(t *testing.T) {
	ev := Access(OpRead, 0x1000, 64)
	pages, pieces := collectSplit(ev, 16)
	if len(pieces) != 1 || pages[0] != 0 || pieces[0] != ev {
		t.Fatalf("got pages %v pieces %v", pages, pieces)
	}
}

func TestPageSplitStraddle(t *testing.T) {
	const pageBytes = 1 << 16
	ev := Access(OpWrite, pageBytes-8, 16)
	pages, pieces := collectSplit(ev, 16)
	if len(pieces) != 2 {
		t.Fatalf("want 2 pieces, got %v", pieces)
	}
	if pages[0] != 0 || pieces[0].Addr() != pageBytes-8 || pieces[0].Size() != 8 {
		t.Fatalf("piece 0 wrong: page %d addr %#x size %d", pages[0], pieces[0].Addr(), pieces[0].Size())
	}
	if pages[1] != 1 || pieces[1].Addr() != pageBytes || pieces[1].Size() != 8 {
		t.Fatalf("piece 1 wrong: page %d addr %#x size %d", pages[1], pieces[1].Addr(), pieces[1].Size())
	}
}

func TestPageSplitRangeBecomesAccesses(t *testing.T) {
	const pageBytes = 1 << 16
	// 3 full pages starting mid-page: 4 pieces, converted to OpWrite.
	ev := Range(OpWriteRange, pageBytes/2, 3*pageBytes/8, 8)
	pages, pieces := collectSplit(ev, 16)
	if len(pieces) != 4 {
		t.Fatalf("want 4 pieces, got %d: %v", len(pieces), pieces)
	}
	var total uint64
	for i, p := range pieces {
		if p.EvOp() != OpWrite {
			t.Fatalf("piece %d op = %d, want OpWrite", i, p.EvOp())
		}
		if p.Addr()>>16 != pages[i] {
			t.Fatalf("piece %d addr %#x not on page %d", i, p.Addr(), pages[i])
		}
		if p.Addr()>>16 != (p.Addr()+p.Size()-1)>>16 {
			t.Fatalf("piece %d crosses a page: addr %#x size %d", i, p.Addr(), p.Size())
		}
		total += p.Size()
	}
	if total != 3*pageBytes {
		t.Fatalf("pieces cover %d bytes, want %d", total, 3*pageBytes)
	}
}

func TestPageSplitZeroSize(t *testing.T) {
	pages, pieces := collectSplit(Access(OpRead, 3<<16|0x40, 0), 16)
	if len(pieces) != 1 || pages[0] != 3 || pieces[0].Size() != 0 {
		t.Fatalf("zero-size: pages %v pieces %v", pages, pieces)
	}
}

func TestPageSplitRandomCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		addr := rng.Uint64() % (1 << 20)
		size := uint64(rng.Intn(1 << 18))
		var ev Event
		if i%2 == 0 {
			ev = Access(OpRead, addr, size)
		} else {
			elem := uint64(rng.Intn(8) + 1)
			ev = Range(OpReadRange, addr, int(size/elem), elem)
			size = (size / elem) * elem
		}
		next := addr
		var total uint64
		PageSplit(ev, 16, func(page uint64, piece Event) {
			if size > 0 && piece.Addr() != next {
				t.Fatalf("pieces not contiguous: addr %#x, want %#x", piece.Addr(), next)
			}
			if piece.Addr()>>16 != page {
				t.Fatalf("piece page mismatch")
			}
			next = piece.Addr() + piece.Size()
			total += piece.Size()
		})
		if total != size {
			t.Fatalf("pieces cover %d bytes, want %d", total, size)
		}
	}
}

// TestPageSplitShardPartition checks the worker-side filtering invariant:
// for any access and shard count, every piece lands on exactly one shard,
// and exactly one worker owns the first piece (the one accounting for the
// original hook call).
func TestPageSplitShardPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(4)
		ev := Access(OpRead, rng.Uint64()%(1<<20), uint64(rng.Intn(1<<18)))
		var pieces, kept, owners int
		PageSplit(ev, 16, func(page uint64, piece Event) {
			pieces++
			s := PickShard(page, n)
			if s < 0 || s >= n {
				t.Fatalf("PickShard out of range: %d", s)
			}
		})
		for w := 0; w < n; w++ {
			first := true
			PageSplit(ev, 16, func(page uint64, piece Event) {
				mine := PickShard(page, n) == w
				if first && mine {
					owners++
				}
				first = false
				if mine {
					kept++
				}
			})
		}
		if kept != pieces {
			t.Fatalf("trial %d: workers kept %d pieces of %d", trial, kept, pieces)
		}
		if owners != 1 {
			t.Fatalf("trial %d: %d workers claimed the first piece", trial, owners)
		}
	}
}

// TestPageSplitRejectsWrappingSpan pins the overflow guards: a span that
// wraps the address space must panic with a clear message instead of
// silently emitting pieces on bogus low pages, and a hand-packed range
// whose count*elem product overflows uint64 must be caught by the multiply
// guard rather than mis-split.
func TestPageSplitRejectsWrappingSpan(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("access wrapping the address space", func() {
		PageSplit(Access(OpRead, ^uint64(0)-7, 16), 16, func(uint64, Event) {})
	})
	expectPanic("range wrapping the address space", func() {
		// count*elem itself cannot overflow uint64 through Range's checked
		// fields (32-bit count x 24-bit elem tops out at 56 bits), so the
		// reachable failure is the span wrapping past the address space.
		PageSplit(Range(OpReadRange, ^uint64(0)-1024, MaxRangeCount, 1024), 16, func(uint64, Event) {})
	})
	// The boundary product (max count x max elem) fits in 56 bits and must
	// split fine from address 0 — the guard must not fire on legal input.
	n := 0
	PageSplit(Range(OpReadRange, 0, 1<<20, 8), 16, func(uint64, Event) { n++ })
	if n != (1<<20)*8/(1<<16) {
		t.Fatalf("legal wide range split into %d pieces", n)
	}
}

func TestPickShardBoundsAndSpread(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		counts := make([]int, n)
		for page := uint64(0); page < 4096; page++ {
			s := PickShard(page, n)
			if s < 0 || s >= n {
				t.Fatalf("PickShard(%d, %d) = %d out of range", page, n, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if n > 1 && (c < 4096/n/2 || c > 4096/n*2) {
				t.Fatalf("n=%d: shard %d got %d of 4096 pages (badly skewed): %v", n, s, c, counts)
			}
		}
	}
}

// BenchmarkWorkerSplit measures one worker's per-event cost on the new
// data path: page-split locally and keep only its own shard's pieces.
func BenchmarkWorkerSplit(b *testing.B) {
	evs := make([]Event, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range evs {
		evs[i] = Access(OpRead, rng.Uint64()%(1<<22), uint64(rng.Intn(256))&^3)
	}
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageSplit(evs[i%len(evs)], 16, func(page uint64, _ Event) {
			if PickShard(page, 4) == 2 {
				sink++
			}
		})
	}
	_ = sink
}

// BenchmarkWorkerScan measures a worker scanning a full 4096-event batch:
// the broadcast-ring replacement for the old sequencer fan-out loop. Every
// worker does this scan, but in parallel, and nothing is copied.
func BenchmarkWorkerScan(b *testing.B) {
	evs := make([]Event, 4096)
	rng := rand.New(rand.NewSource(2))
	for i := range evs {
		evs[i] = Access(OpWrite, rng.Uint64()%(1<<24), 8)
	}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ev := range evs {
			PageSplit(ev, 16, func(page uint64, piece Event) {
				if PickShard(page, 4) == 1 {
					sink += piece.Size()
				}
			})
		}
	}
	_ = sink
}
