package evstream

import (
	"math/rand"
	"sync"
	"testing"
)

func collectSplit(ev Event, pageBits uint) (pages []uint64, pieces []Event) {
	PageSplit(ev, pageBits, func(page uint64, piece Event) {
		pages = append(pages, page)
		pieces = append(pieces, piece)
	})
	return
}

func TestPageSplitWithinPagePassesThrough(t *testing.T) {
	ev := Access(OpRead, 0x1000, 64)
	pages, pieces := collectSplit(ev, 16)
	if len(pieces) != 1 || pages[0] != 0 || pieces[0] != ev {
		t.Fatalf("got pages %v pieces %v", pages, pieces)
	}
}

func TestPageSplitStraddle(t *testing.T) {
	const pageBytes = 1 << 16
	ev := Access(OpWrite, pageBytes-8, 16)
	pages, pieces := collectSplit(ev, 16)
	if len(pieces) != 2 {
		t.Fatalf("want 2 pieces, got %v", pieces)
	}
	if pages[0] != 0 || pieces[0].Addr() != pageBytes-8 || pieces[0].Size() != 8 {
		t.Fatalf("piece 0 wrong: page %d addr %#x size %d", pages[0], pieces[0].Addr(), pieces[0].Size())
	}
	if pages[1] != 1 || pieces[1].Addr() != pageBytes || pieces[1].Size() != 8 {
		t.Fatalf("piece 1 wrong: page %d addr %#x size %d", pages[1], pieces[1].Addr(), pieces[1].Size())
	}
}

func TestPageSplitRangeBecomesAccesses(t *testing.T) {
	const pageBytes = 1 << 16
	// 3 full pages starting mid-page: 4 pieces, converted to OpWrite.
	ev := Range(OpWriteRange, pageBytes/2, 3*pageBytes/8, 8)
	pages, pieces := collectSplit(ev, 16)
	if len(pieces) != 4 {
		t.Fatalf("want 4 pieces, got %d: %v", len(pieces), pieces)
	}
	var total uint64
	for i, p := range pieces {
		if p.EvOp() != OpWrite {
			t.Fatalf("piece %d op = %d, want OpWrite", i, p.EvOp())
		}
		if p.Addr()>>16 != pages[i] {
			t.Fatalf("piece %d addr %#x not on page %d", i, p.Addr(), pages[i])
		}
		if p.Addr()>>16 != (p.Addr()+p.Size()-1)>>16 {
			t.Fatalf("piece %d crosses a page: addr %#x size %d", i, p.Addr(), p.Size())
		}
		total += p.Size()
	}
	if total != 3*pageBytes {
		t.Fatalf("pieces cover %d bytes, want %d", total, 3*pageBytes)
	}
}

func TestPageSplitZeroSize(t *testing.T) {
	pages, pieces := collectSplit(Access(OpRead, 3<<16|0x40, 0), 16)
	if len(pieces) != 1 || pages[0] != 3 || pieces[0].Size() != 0 {
		t.Fatalf("zero-size: pages %v pieces %v", pages, pieces)
	}
}

func TestPageSplitRandomCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		addr := rng.Uint64() % (1 << 20)
		size := uint64(rng.Intn(1 << 18))
		var ev Event
		if i%2 == 0 {
			ev = Access(OpRead, addr, size)
		} else {
			elem := uint64(rng.Intn(8) + 1)
			ev = Range(OpReadRange, addr, int(size/elem), elem)
			size = (size / elem) * elem
		}
		next := addr
		var total uint64
		PageSplit(ev, 16, func(page uint64, piece Event) {
			if size > 0 && piece.Addr() != next {
				t.Fatalf("pieces not contiguous: addr %#x, want %#x", piece.Addr(), next)
			}
			if piece.Addr()>>16 != page {
				t.Fatalf("piece page mismatch")
			}
			next = piece.Addr() + piece.Size()
			total += piece.Size()
		})
		if total != size {
			t.Fatalf("pieces cover %d bytes, want %d", total, size)
		}
	}
}

func TestPickShardBoundsAndSpread(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		counts := make([]int, n)
		for page := uint64(0); page < 4096; page++ {
			s := PickShard(page, n)
			if s < 0 || s >= n {
				t.Fatalf("PickShard(%d, %d) = %d out of range", page, n, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if n > 1 && (c < 4096/n/2 || c > 4096/n*2) {
				t.Fatalf("n=%d: shard %d got %d of 4096 pages (badly skewed): %v", n, s, c, counts)
			}
		}
	}
}

func TestStrandMarkRoundTrip(t *testing.T) {
	for _, id := range []int32{0, 1, 1 << 20, 1<<31 - 1} {
		ev := StrandMark(id)
		if ev.EvOp() != OpStrand || ev.StrandID() != id {
			t.Fatalf("StrandMark(%d) round-trips to op %d id %d", id, ev.EvOp(), ev.StrandID())
		}
	}
}

func TestMsgRingOrderAndReuse(t *testing.T) {
	type msg struct{ v int }
	r := NewMsgRing[*msg](2)
	const total = 100
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			m, ok := r.GetFree()
			if !ok {
				m = &msg{}
			}
			m.v = i
			r.Publish(m)
		}
		r.Close()
	}()
	want := 0
	for {
		m, ok := r.Next()
		if !ok {
			break
		}
		if m.v != want {
			t.Fatalf("got %d, want %d", m.v, want)
		}
		want++
		r.Recycle(m)
	}
	wg.Wait()
	if want != total {
		t.Fatalf("consumed %d messages, want %d", want, total)
	}
	st := r.Stats()
	if st.BatchesPublished != total {
		t.Fatalf("BatchesPublished = %d, want %d", st.BatchesPublished, total)
	}
	if st.BatchesReused == 0 {
		t.Fatal("free list never reused a message")
	}
}

func TestMsgRingCloseDrains(t *testing.T) {
	r := NewMsgRing[int](4)
	r.Publish(1)
	r.Publish(2)
	r.Close()
	if v, ok := r.Next(); !ok || v != 1 {
		t.Fatalf("Next = %d, %v", v, ok)
	}
	if v, ok := r.Next(); !ok || v != 2 {
		t.Fatalf("Next = %d, %v", v, ok)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("Next after drain reported ok")
	}
}

// BenchmarkShardRouterSplit measures the page-split + shard-pick cost per
// access event, the sequencer's per-event overhead.
func BenchmarkShardRouterSplit(b *testing.B) {
	evs := make([]Event, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range evs {
		evs[i] = Access(OpRead, rng.Uint64()%(1<<22), uint64(rng.Intn(256))&^3)
	}
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageSplit(evs[i%len(evs)], 16, func(page uint64, _ Event) {
			sink += PickShard(page, 4)
		})
	}
	_ = sink
}

// BenchmarkShardRouterFanout measures routing a batch into 4 per-shard
// slices, approximating the sequencer inner loop without the rings.
func BenchmarkShardRouterFanout(b *testing.B) {
	evs := make([]Event, 4096)
	rng := rand.New(rand.NewSource(2))
	for i := range evs {
		evs[i] = Access(OpWrite, rng.Uint64()%(1<<24), 8)
	}
	out := make([][]Event, 4)
	for i := range out {
		out[i] = make([]Event, 0, len(evs))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := range out {
			out[s] = out[s][:0]
		}
		for _, ev := range evs {
			PageSplit(ev, 16, func(page uint64, piece Event) {
				s := PickShard(page, 4)
				out[s] = append(out[s], piece)
			})
		}
	}
}

// BenchmarkMsgRing measures the per-message handoff cost of the shard ring.
func BenchmarkMsgRing(b *testing.B) {
	r := NewMsgRing[[]Event](8)
	done := make(chan struct{})
	go func() {
		for {
			m, ok := r.Next()
			if !ok {
				break
			}
			r.Recycle(m[:0])
		}
		close(done)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, ok := r.GetFree()
		if !ok {
			m = make([]Event, 0, 64)
		}
		m = append(m, Access(OpRead, uint64(i), 8))
		r.Publish(m)
	}
	r.Close()
	<-done
}
