package evstream

// PageSplit decomposes an access or range event into page-contained access
// events, invoking emit with the page index and piece for each. Events
// already inside one page pass through unchanged (ranges are still
// converted to plain access events — for runtime-coalescing detectors the
// two hook kinds update the same bits, which is why sharding is restricted
// to them). A zero-sized access is emitted once, on its base address's
// page, so per-shard hook-call counts still account for it. It returns the
// number of pieces emitted.
//
// Each shard worker calls PageSplit locally on every access event of a
// broadcast batch and keeps the pieces PickShard maps to its own index;
// the splitting work parallelizes with the worker count instead of
// serializing on the sequencer.
func PageSplit(ev Event, pageBits uint, emit func(page uint64, piece Event)) int {
	op := ev.EvOp()
	addr := ev.Addr()
	var size uint64
	switch op {
	case OpRead, OpWrite:
		size = ev.Size()
	case OpReadRange:
		op, size = OpRead, rangeBytes(ev)
	case OpWriteRange:
		op, size = OpWrite, rangeBytes(ev)
	default:
		panic("evstream: PageSplit on a non-access event")
	}
	if size > 1 && addr+size-1 < addr {
		// A wrapping span would emit pieces on bogus low pages; the hook
		// layer rejects such ranges, so hitting this means a corrupt event.
		panic("evstream: PageSplit range wraps the address space")
	}
	pageBytes := uint64(1) << pageBits
	if size == 0 {
		emit(addr>>pageBits, Access(op, addr, 0))
		return 1
	}
	pieces := 0
	for size > 0 {
		page := addr >> pageBits
		n := pageBytes - addr&(pageBytes-1) // bytes left on this page
		if n > size {
			n = size
		}
		emit(page, Access(op, addr, n))
		addr += n
		size -= n
		pieces++
	}
	return pieces
}

// rangeBytes returns count*elem for a range event, panicking if the
// product overflows uint64. Range's encode-time field checks already cap
// count below 2^32 and elem below 2^24, so the product fits in 56 bits;
// the guard catches events that bypassed Range (hand-packed or corrupted)
// before a silently truncated size mis-splits the range.
func rangeBytes(ev Event) uint64 {
	count, elem := uint64(ev.Count()), ev.Elem()
	size := count * elem
	if elem != 0 && size/elem != count {
		panic("evstream: range count*elem overflows uint64")
	}
	return size
}

// PickShard maps a page index to one of n shards with a Fibonacci
// multiplicative hash, so that consecutive pages spread across shards
// instead of striping with the address layout.
func PickShard(page uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int((page * 0x9E3779B97F4A7C15 >> 33) % uint64(n))
}
