package evstream

// PageSplit decomposes an access or range event into page-contained access
// events, invoking emit with the page index and piece for each. Events
// already inside one page pass through unchanged (ranges are still
// converted to plain access events — for runtime-coalescing detectors the
// two hook kinds update the same bits, which is why sharding is restricted
// to them). A zero-sized access is emitted once, on its base address's
// page, so per-shard hook-call counts still account for it. It returns the
// number of pieces emitted.
//
// Each shard worker calls PageSplit locally on every access event of a
// broadcast batch and keeps the pieces PickShard maps to its own index;
// the splitting work parallelizes with the worker count instead of
// serializing on the sequencer.
func PageSplit(ev Event, pageBits uint, emit func(page uint64, piece Event)) int {
	op := ev.EvOp()
	addr := ev.Addr()
	var size uint64
	switch op {
	case OpRead, OpWrite:
		size = ev.Size()
	case OpReadRange:
		op, size = OpRead, uint64(ev.Count())*ev.Elem()
	case OpWriteRange:
		op, size = OpWrite, uint64(ev.Count())*ev.Elem()
	default:
		panic("evstream: PageSplit on a non-access event")
	}
	pageBytes := uint64(1) << pageBits
	if size == 0 {
		emit(addr>>pageBits, Access(op, addr, 0))
		return 1
	}
	pieces := 0
	for size > 0 {
		page := addr >> pageBits
		n := pageBytes - addr&(pageBytes-1) // bytes left on this page
		if n > size {
			n = size
		}
		emit(page, Access(op, addr, n))
		addr += n
		size -= n
		pieces++
	}
	return pieces
}

// PickShard maps a page index to one of n shards with a Fibonacci
// multiplicative hash, so that consecutive pages spread across shards
// instead of striping with the address layout.
func PickShard(page uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int((page * 0x9E3779B97F4A7C15 >> 33) % uint64(n))
}
