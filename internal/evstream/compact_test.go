package evstream

import (
	"bytes"
	"testing"
)

// codecEvent is one appendable event for the round-trip tests: a structure
// op, an access (addr+size), or a range (addr+count+elem, with elem in the
// size field).
type codecEvent struct {
	op    Op
	addr  uint64
	size  uint64 // access size, or range element size
	count int    // range ops only
}

func (c codecEvent) appendTo(b *Batch) {
	switch c.op {
	case OpSpawn, OpRestore, OpSync:
		off := b.AppendCtl(c.op)
		b.Sum.AddCtl(off)
	case OpRead, OpWrite:
		b.AppendAccess(c.op, c.addr, c.size)
	default:
		b.AppendRange(c.op, c.addr, c.count, c.size)
	}
}

// newCompactBatch sizes a standalone compact batch so appending n events can
// never overflow the buffer mid-test.
func newCompactBatch(n int) *Batch {
	return &Batch{Buf: make([]byte, 0, (n+1)*MaxEventBytes), compact: true}
}

// checkCodecRoundTrip appends the program to a fixed and a compact batch and
// asserts both Iters yield identical Event values, that Pos tracks the
// offsets Summary.Ctl records, and that CtlOp resolves every structure
// event from the tag byte alone.
func checkCodecRoundTrip(t *testing.T, events []codecEvent) {
	t.Helper()
	fixed := &Batch{Ev: make([]Event, 0, len(events)+1)}
	compact := newCompactBatch(len(events))
	for _, c := range events {
		c.appendTo(fixed)
		c.appendTo(compact)
	}
	if fixed.Len() != len(events) || compact.Len() != len(events) {
		t.Fatalf("Len = %d (fixed) / %d (compact), want %d", fixed.Len(), compact.Len(), len(events))
	}
	fit, cit := fixed.Iter(), compact.Iter()
	var ctlSeen int
	for i := range events {
		fpos, cpos := fit.Pos(), cit.Pos()
		fe, fok := fit.Next()
		ce, cok := cit.Next()
		if !fok || !cok {
			t.Fatalf("event %d: premature end (fixed ok=%v, compact ok=%v)", i, fok, cok)
		}
		if fe != ce {
			t.Fatalf("event %d: fixed %+v != compact %+v", i, fe, ce)
		}
		if op := fe.EvOp(); op <= OpSync {
			if fixed.Sum.Ctl[ctlSeen] != int32(fpos) || compact.Sum.Ctl[ctlSeen] != int32(cpos) {
				t.Fatalf("ctl %d: Summary offsets (%d, %d) != Iter positions (%d, %d)",
					ctlSeen, fixed.Sum.Ctl[ctlSeen], compact.Sum.Ctl[ctlSeen], fpos, cpos)
			}
			if fixed.CtlOp(ctlSeen) != op || compact.CtlOp(ctlSeen) != op {
				t.Fatalf("ctl %d: CtlOp = %v (fixed) / %v (compact), want %v",
					ctlSeen, fixed.CtlOp(ctlSeen), compact.CtlOp(ctlSeen), op)
			}
			ctlSeen++
		}
	}
	if _, ok := fit.Next(); ok {
		t.Fatal("fixed Iter yields past the end")
	}
	if _, ok := cit.Next(); ok {
		t.Fatal("compact Iter yields past the end")
	}
	if fixed.WireBytes() != 16*len(events) {
		t.Fatalf("fixed WireBytes = %d, want %d", fixed.WireBytes(), 16*len(events))
	}
	if compact.WireBytes() != len(compact.Buf) {
		t.Fatalf("compact WireBytes = %d, want %d", compact.WireBytes(), len(compact.Buf))
	}
}

func TestCompactRoundTripBasics(t *testing.T) {
	checkCodecRoundTrip(t, []codecEvent{
		{op: OpSpawn},
		{op: OpRead, addr: 0x1000, size: 4},
		{op: OpWrite, addr: 0x1004, size: 4},
		{op: OpRestore},
		{op: OpSync},
		{op: OpReadRange, addr: 0x2000, count: 128, size: 8},
		{op: OpWriteRange, addr: 0x8000, count: 1, size: 1},
	})
}

func TestCompactRoundTripBoundaries(t *testing.T) {
	checkCodecRoundTrip(t, []codecEvent{
		// Inline/escape boundary: sizes 30 and 31 straddle tagArgMax.
		{op: OpRead, addr: 0, size: tagArgMax},
		{op: OpWrite, addr: 0, size: tagArgMax + 1},
		{op: OpRead, addr: 0, size: 0},
		// Largest representable operands.
		{op: OpWrite, addr: 1, size: MaxAccessSize},
		{op: OpReadRange, addr: 2, count: MaxRangeCount, size: MaxRangeElem},
		{op: OpWriteRange, addr: 3, count: 0, size: 0},
		// Wild jumps across the whole address space.
		{op: OpRead, addr: 1<<64 - 1, size: 8},
		{op: OpWrite, addr: 0, size: 8}, // wraps the delta base: 2^64-1 -> 0 is +1
		{op: OpRead, addr: 1 << 63, size: 8},
	})
}

// TestCompactAccessIsTwoBytes pins the fast path the format exists for: a
// small-size access a small stride from its predecessor costs 2 bytes.
func TestCompactAccessIsTwoBytes(t *testing.T) {
	b := newCompactBatch(16)
	b.AppendAccess(OpRead, 0x1000, 4)
	base := len(b.Buf)
	b.AppendAccess(OpRead, 0x1004, 4)
	if got := len(b.Buf) - base; got != 2 {
		t.Fatalf("sequential access encoded in %d bytes, want 2", got)
	}
}

func TestCompactAppendRejectsOversizeOperands(t *testing.T) {
	for _, tc := range []struct {
		name   string
		append func(b *Batch)
	}{
		{"access size", func(b *Batch) { b.AppendAccess(OpRead, 0, MaxAccessSize+1) }},
		{"range count", func(b *Batch) { b.AppendRange(OpReadRange, 0, -1, 8) }},
		{"range elem", func(b *Batch) { b.AppendRange(OpReadRange, 0, 4, MaxRangeElem+1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: compact append did not panic", tc.name)
				}
			}()
			tc.append(newCompactBatch(4))
		}()
	}
}

// TestCompactDeltaBaseResetsPerBatch pins the independence property the
// skip-scan path relies on: after Reset, addresses delta from zero again, so
// a batch decodes identically whether or not anyone scanned its predecessor.
func TestCompactDeltaBaseResetsPerBatch(t *testing.T) {
	b := newCompactBatch(4)
	b.AppendAccess(OpRead, 0x12345678, 4)
	first := bytes.Clone(b.Buf)
	b.Reset()
	b.AppendAccess(OpRead, 0x12345678, 4)
	if !bytes.Equal(first, b.Buf) {
		t.Fatalf("same event encodes differently after Reset: %x vs %x", first, b.Buf)
	}
	it := b.Iter()
	ev, ok := it.Next()
	if !ok || ev.Addr() != 0x12345678 || ev.Size() != 4 {
		t.Fatalf("decoded %+v after Reset", ev)
	}
}

// TestCompactRingCarriesMoreEventsPerBatch checks the ring-level win: even
// at a quarter of the fixed ring's per-batch footprint (4 bytes per event
// slot, see NewCompactRing), a compact ring hands over more events per
// publication, and the ring's stats count logical events and wire bytes.
func TestCompactRingCarriesMoreEventsPerBatch(t *testing.T) {
	const n = 4096
	emit := func(r *Ring) Stats {
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				b, ok := r.Next()
				if !ok {
					return
				}
				r.Recycle(b)
			}
		}()
		b := r.Get()
		for i := 0; i < n; i++ {
			if b.Full() {
				r.Publish(b)
				b = r.Get()
			}
			b.AppendAccess(OpRead, 0x1000+uint64(4*i), 4)
		}
		r.Publish(b)
		r.Close()
		<-done
		return r.Stats()
	}
	fixed := emit(NewRing(4, 64))
	compact := emit(NewCompactRing(4, 64))
	if fixed.EventsPublished != n || compact.EventsPublished != n {
		t.Fatalf("EventsPublished = %d (fixed) / %d (compact), want %d logical events both ways",
			fixed.EventsPublished, compact.EventsPublished, n)
	}
	if fixed.StreamBytes != 16*n {
		t.Fatalf("fixed StreamBytes = %d, want %d", fixed.StreamBytes, 16*n)
	}
	if compact.StreamBytes*2 > fixed.StreamBytes {
		t.Fatalf("compact StreamBytes = %d, want at least 2x below the fixed %d",
			compact.StreamBytes, fixed.StreamBytes)
	}
	if compact.BatchesPublished*3 > fixed.BatchesPublished*2 {
		t.Fatalf("compact used %d batches vs fixed %d: sequential accesses should cut handoffs by a third or more",
			compact.BatchesPublished, fixed.BatchesPublished)
	}
}

// decodeCodecProgram turns fuzz bytes into an append program. Every input is
// valid by construction: operands are read from exactly as many bytes as
// their wire fields hold, so sizes cap at MaxAccessSize (7 bytes), counts at
// MaxRangeCount (4 bytes), and element sizes at MaxRangeElem (3 bytes) —
// the boundary values are reachable, never exceedable.
func decodeCodecProgram(data []byte) []codecEvent {
	var evs []codecEvent
	i := 0
	u := func(n int) uint64 {
		var v uint64
		for j := 0; j < n; j++ {
			v = v<<8 | uint64(data[i+j])
		}
		i += n
		return v
	}
	for i < len(data) && len(evs) < 4096 {
		op := Op(data[i]%7) + 1
		i++
		switch op {
		case OpSpawn, OpRestore, OpSync:
			evs = append(evs, codecEvent{op: op})
		case OpRead, OpWrite:
			if len(data)-i < 15 {
				return evs
			}
			size := u(7)
			addr := u(8)
			evs = append(evs, codecEvent{op: op, addr: addr, size: size})
		default:
			if len(data)-i < 15 {
				return evs
			}
			count := u(4)
			elem := u(3)
			addr := u(8)
			evs = append(evs, codecEvent{op: op, addr: addr, size: elem, count: int(count)})
		}
	}
	return evs
}

// FuzzEventCodec round-trips random append programs through both storage
// forms twice: as one big batch (checkCodecRoundTrip, which also audits Ctl
// offsets), and streamed through tiny-capacity rings so batch boundaries,
// Reset reuse, and the per-batch delta-base reset are all exercised. The
// decoded event sequences must be identical.
func FuzzEventCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 1, 2})                                  // structure only
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0x10, 0}) // one small read
	// Boundary operands: a max-size access, then a max range.
	f.Add(append(append([]byte{3},
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // size = MaxAccessSize
		0, 0, 0, 0, 0, 0, 0, 1), // addr
		5, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 2))
	// Address-wrap delta: access at 2^64-1 then at 0.
	f.Add(append(append([]byte{4, 0, 0, 0, 0, 0, 0, 8},
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
		3, 0, 0, 0, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		events := decodeCodecProgram(data)
		checkCodecRoundTrip(t, events)

		// Stream the same program through both ring encodings with a tiny
		// batch capacity so the fuzzer hits flush boundaries constantly.
		bcap := 1
		if len(data) > 0 {
			bcap = int(data[0]%8) + 1
		}
		stream := func(r *Ring) []Event {
			out := make(chan []Event)
			go func() {
				var got []Event
				for {
					b, ok := r.Next()
					if !ok {
						break
					}
					it := b.Iter()
					for {
						ev, ok := it.Next()
						if !ok {
							break
						}
						got = append(got, ev)
					}
					r.Recycle(b)
				}
				out <- got
			}()
			b := r.Get()
			for _, c := range events {
				if b.Full() {
					r.Publish(b)
					b = r.Get()
				}
				c.appendTo(b)
			}
			r.Publish(b)
			r.Close()
			return <-out
		}
		fixed := stream(NewRing(2, bcap))
		compact := stream(NewCompactRing(2, bcap))
		if len(fixed) != len(events) || len(compact) != len(events) {
			t.Fatalf("streamed %d (fixed) / %d (compact) events, want %d",
				len(fixed), len(compact), len(events))
		}
		for i := range fixed {
			if fixed[i] != compact[i] {
				t.Fatalf("streamed event %d: fixed %+v != compact %+v", i, fixed[i], compact[i])
			}
		}
	})
}
