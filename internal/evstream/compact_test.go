package evstream

import (
	"bytes"
	"testing"
)

// codecEvent is one appendable event for the round-trip tests: a structure
// op, an access (addr+size), or a range (addr+count+elem, with elem in the
// size field).
type codecEvent struct {
	op    Op
	addr  uint64
	size  uint64 // access size, or range element size
	count int    // range ops only
}

func (c codecEvent) appendTo(b *Batch) {
	switch c.op {
	case OpSpawn, OpRestore, OpSync:
		off := b.AppendCtl(c.op)
		b.Sum.AddCtl(off)
	case OpRead, OpWrite:
		b.AppendAccess(c.op, c.addr, c.size)
	default:
		b.AppendRange(c.op, c.addr, c.count, c.size)
	}
}

// newCompactBatch sizes a standalone compact batch so appending n events can
// never overflow the buffer mid-test.
func newCompactBatch(n int) *Batch {
	return &Batch{Buf: make([]byte, 0, (n+1)*MaxEventBytes), compact: true}
}

// decodeBlocks drains a batch through DecodeBlock, returning the flattened
// event sequence and the Summary.Ctl-form offset of every structure event,
// computed the way the label stage computes them: the i-th event of a
// returned group sits at Pos-before-the-call + i (an index for fixed
// batches; a byte offset for compact ones, where structure events decode
// as contiguous runs of one tag byte each).
func decodeBlocks(b *Batch) (evs []Event, ctlOffs []int) {
	it := b.Iter()
	var blk [BlockEvents]Event
	for {
		pos := it.Pos()
		group := it.DecodeBlock(&blk)
		if len(group) == 0 {
			return evs, ctlOffs
		}
		for j, ev := range group {
			if ev.EvOp() <= OpSync {
				ctlOffs = append(ctlOffs, pos+j)
			}
		}
		evs = append(evs, group...)
	}
}

// checkCodecRoundTrip appends the program to a fixed and a compact batch and
// asserts both decode to identical Event sequences via DecodeBlock and via
// the per-event Next shim, that block-relative positions reproduce the
// offsets Summary.Ctl records, that CtlOp resolves every structure event
// from one tag byte, and that the staged-block byte accounting (pendN +
// pendExtra, what Full budgets against) exactly matches what seal emits.
func checkCodecRoundTrip(t *testing.T, events []codecEvent) {
	t.Helper()
	fixed := &Batch{Ev: make([]Event, 0, len(events)+1)}
	compact := newCompactBatch(len(events))
	for _, c := range events {
		c.appendTo(fixed)
		c.appendTo(compact)
	}
	if fixed.Len() != len(events) || compact.Len() != len(events) {
		t.Fatalf("Len = %d (fixed) / %d (compact), want %d", fixed.Len(), compact.Len(), len(events))
	}
	// Full's no-growth guarantee rests on the baseline byte per staged
	// event plus pendExtra plus the closed-form structural overhead being
	// the staged block's exact sealed size — pin exactness, not just an
	// upper bound.
	pend, pre := compact.pendN+compact.pendExtra+blockOverhead(compact.pendN), len(compact.Buf)
	fevs, fctl := decodeBlocks(fixed)
	cevs, cctl := decodeBlocks(compact)
	if got := len(compact.Buf) - pre; got != pend {
		t.Fatalf("seal emitted %d bytes for a staged block accounted at %d", got, pend)
	}
	if len(fevs) != len(events) || len(cevs) != len(events) {
		t.Fatalf("decoded %d (fixed) / %d (compact) events, want %d", len(fevs), len(cevs), len(events))
	}
	for i := range fevs {
		if fevs[i] != cevs[i] {
			t.Fatalf("event %d: fixed %+v != compact %+v", i, fevs[i], cevs[i])
		}
	}
	// The Next shim must agree with the block decode it wraps.
	cit := compact.Iter()
	for i := range cevs {
		ev, ok := cit.Next()
		if !ok || ev != cevs[i] {
			t.Fatalf("Next event %d = %+v (ok=%v), DecodeBlock saw %+v", i, ev, ok, cevs[i])
		}
	}
	if _, ok := cit.Next(); ok {
		t.Fatal("compact Iter yields past the end")
	}
	if len(fctl) != len(fixed.Sum.Ctl) || len(cctl) != len(compact.Sum.Ctl) {
		t.Fatalf("found %d (fixed) / %d (compact) ctl events, Summary recorded %d / %d",
			len(fctl), len(cctl), len(fixed.Sum.Ctl), len(compact.Sum.Ctl))
	}
	for i := range fctl {
		if fixed.Sum.Ctl[i] != int32(fctl[i]) || compact.Sum.Ctl[i] != int32(cctl[i]) {
			t.Fatalf("ctl %d: Summary offsets (%d, %d) != block-derived positions (%d, %d)",
				i, fixed.Sum.Ctl[i], compact.Sum.Ctl[i], fctl[i], cctl[i])
		}
		if fixed.CtlOp(i) != compact.CtlOp(i) || fixed.CtlOp(i) > OpSync || fixed.CtlOp(i) == 0 {
			t.Fatalf("ctl %d: CtlOp = %v (fixed) / %v (compact)", i, fixed.CtlOp(i), compact.CtlOp(i))
		}
	}
	if fixed.WireBytes() != 16*len(events) {
		t.Fatalf("fixed WireBytes = %d, want %d", fixed.WireBytes(), 16*len(events))
	}
	if compact.WireBytes() != len(compact.Buf) {
		t.Fatalf("compact WireBytes = %d, want %d", compact.WireBytes(), len(compact.Buf))
	}
}

func TestCompactRoundTripBasics(t *testing.T) {
	checkCodecRoundTrip(t, []codecEvent{
		{op: OpSpawn},
		{op: OpRead, addr: 0x1000, size: 4},
		{op: OpWrite, addr: 0x1004, size: 4},
		{op: OpRestore},
		{op: OpSync},
		{op: OpReadRange, addr: 0x2000, count: 128, size: 8},
		{op: OpWriteRange, addr: 0x8000, count: 1, size: 1},
	})
}

func TestCompactRoundTripBoundaries(t *testing.T) {
	checkCodecRoundTrip(t, []codecEvent{
		// Inline/escape boundary: sizes 254 and 255 straddle the size-run
		// escape byte (blockArgEsc).
		{op: OpRead, addr: 0, size: blockArgEsc - 1},
		{op: OpWrite, addr: 0, size: blockArgEsc},
		{op: OpRead, addr: 0, size: 0},
		// Largest representable operands.
		{op: OpWrite, addr: 1, size: MaxAccessSize},
		{op: OpReadRange, addr: 2, count: MaxRangeCount, size: MaxRangeElem},
		{op: OpWriteRange, addr: 3, count: 0, size: 0},
		// Wild jumps across the whole address space.
		{op: OpRead, addr: 1<<64 - 1, size: 8},
		{op: OpWrite, addr: 0, size: 8}, // wraps the delta base: 2^64-1 -> 0 is +1
		{op: OpRead, addr: 1 << 63, size: 8},
	})
}

// TestCompactSequentialBlockBytes pins the fast path the format exists
// for: a full block of same-size small-stride accesses costs ~1.6 bytes
// per event — 2 bytes of block framing, one size run, 2 op bits plus a
// quarter of a group control byte plus a 1-byte delta per event.
func TestCompactSequentialBlockBytes(t *testing.T) {
	b := newCompactBatch(BlockEvents + 1)
	for i := 0; i < BlockEvents; i++ {
		b.AppendAccess(OpRead, 0x1000+uint64(4*i), 4)
	}
	// Staging auto-seals exactly at a full block.
	if b.pendN != 0 {
		t.Fatalf("full block left %d events staged", b.pendN)
	}
	// marker+header (2) + op bits (16) + one size run (2) + control bytes
	// (16) + deltas (2-byte first from base zero, then 1 byte each) = 101.
	if got := len(b.Buf); got != 101 {
		t.Fatalf("sequential %d-event block encoded in %d bytes, want 101 (~1.6 B/event)", BlockEvents, got)
	}
}

func TestCompactAppendRejectsOversizeOperands(t *testing.T) {
	for _, tc := range []struct {
		name   string
		append func(b *Batch)
	}{
		{"access size", func(b *Batch) { b.AppendAccess(OpRead, 0, MaxAccessSize+1) }},
		{"range count", func(b *Batch) { b.AppendRange(OpReadRange, 0, -1, 8) }},
		{"range elem", func(b *Batch) { b.AppendRange(OpReadRange, 0, 4, MaxRangeElem+1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: compact append did not panic", tc.name)
				}
			}()
			tc.append(newCompactBatch(4))
		}()
	}
}

// TestCompactDeltaBaseResetsPerBatch pins the independence property the
// skip-scan path relies on: after Reset, addresses delta from zero again, so
// a batch decodes identically whether or not anyone scanned its predecessor.
func TestCompactDeltaBaseResetsPerBatch(t *testing.T) {
	b := newCompactBatch(4)
	b.AppendAccess(OpRead, 0x12345678, 4)
	first := bytes.Clone(b.Buf)
	b.Reset()
	b.AppendAccess(OpRead, 0x12345678, 4)
	if !bytes.Equal(first, b.Buf) {
		t.Fatalf("same event encodes differently after Reset: %x vs %x", first, b.Buf)
	}
	it := b.Iter()
	ev, ok := it.Next()
	if !ok || ev.Addr() != 0x12345678 || ev.Size() != 4 {
		t.Fatalf("decoded %+v after Reset", ev)
	}
}

// TestCompactRingCarriesMoreEventsPerBatch checks the ring-level win: even
// at a quarter of the fixed ring's per-batch footprint (4 bytes per event
// slot, see NewCompactRing), a compact ring hands over more events per
// publication, and the ring's stats count logical events and wire bytes.
func TestCompactRingCarriesMoreEventsPerBatch(t *testing.T) {
	const n = 4096
	emit := func(r *Ring) Stats {
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				b, ok := r.Next()
				if !ok {
					return
				}
				r.Recycle(b)
			}
		}()
		b := r.Get()
		for i := 0; i < n; i++ {
			if b.Full() {
				r.Publish(b)
				b = r.Get()
			}
			b.AppendAccess(OpRead, 0x1000+uint64(4*i), 4)
		}
		r.Publish(b)
		r.Close()
		<-done
		return r.Stats()
	}
	fixed := emit(NewRing(4, 64))
	compact := emit(NewCompactRing(4, 64))
	if fixed.EventsPublished != n || compact.EventsPublished != n {
		t.Fatalf("EventsPublished = %d (fixed) / %d (compact), want %d logical events both ways",
			fixed.EventsPublished, compact.EventsPublished, n)
	}
	if fixed.StreamBytes != 16*n {
		t.Fatalf("fixed StreamBytes = %d, want %d", fixed.StreamBytes, 16*n)
	}
	if compact.StreamBytes*2 > fixed.StreamBytes {
		t.Fatalf("compact StreamBytes = %d, want at least 2x below the fixed %d",
			compact.StreamBytes, fixed.StreamBytes)
	}
	if compact.BatchesPublished*3 > fixed.BatchesPublished*2 {
		t.Fatalf("compact used %d batches vs fixed %d: sequential accesses should cut handoffs by a third or more",
			compact.BatchesPublished, fixed.BatchesPublished)
	}
}

// decodeCodecProgram turns fuzz bytes into an append program. Every input is
// valid by construction: operands are read from exactly as many bytes as
// their wire fields hold, so sizes cap at MaxAccessSize (7 bytes), counts at
// MaxRangeCount (4 bytes), and element sizes at MaxRangeElem (3 bytes) —
// the boundary values are reachable, never exceedable.
func decodeCodecProgram(data []byte) []codecEvent {
	var evs []codecEvent
	i := 0
	u := func(n int) uint64 {
		var v uint64
		for j := 0; j < n; j++ {
			v = v<<8 | uint64(data[i+j])
		}
		i += n
		return v
	}
	for i < len(data) && len(evs) < 4096 {
		op := Op(data[i]%7) + 1
		i++
		switch op {
		case OpSpawn, OpRestore, OpSync:
			evs = append(evs, codecEvent{op: op})
		case OpRead, OpWrite:
			if len(data)-i < 15 {
				return evs
			}
			size := u(7)
			addr := u(8)
			evs = append(evs, codecEvent{op: op, addr: addr, size: size})
		default:
			if len(data)-i < 15 {
				return evs
			}
			count := u(4)
			elem := u(3)
			addr := u(8)
			evs = append(evs, codecEvent{op: op, addr: addr, size: elem, count: int(count)})
		}
	}
	return evs
}

// FuzzEventCodec round-trips random append programs through both storage
// forms twice: as one big batch (checkCodecRoundTrip, which also audits Ctl
// offsets), and streamed through tiny-capacity rings so batch boundaries,
// Reset reuse, and the per-batch delta-base reset are all exercised. The
// decoded event sequences must be identical.
func FuzzEventCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 1, 2})                                  // structure only
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0x10, 0}) // one small read
	// Boundary operands: a max-size access, then a max range.
	f.Add(append(append([]byte{3},
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // size = MaxAccessSize
		0, 0, 0, 0, 0, 0, 0, 1), // addr
		5, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 2))
	// Address-wrap delta: access at 2^64-1 then at 0.
	f.Add(append(append([]byte{4, 0, 0, 0, 0, 0, 0, 8},
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
		3, 0, 0, 0, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0))
	// Block-boundary seeds for the v2 block format. In this program
	// encoding an access is op byte 3 (read) / 4 (write), 7 size bytes,
	// 8 addr bytes; a range is op byte 5/6, 4 count + 3 elem + 8 addr.
	read := func(data []byte, addr, size uint64) []byte {
		data = append(data, 3, byte(size>>48), byte(size>>40), byte(size>>32),
			byte(size>>24), byte(size>>16), byte(size>>8), byte(size))
		return append(data, byte(addr>>56), byte(addr>>48), byte(addr>>40), byte(addr>>32),
			byte(addr>>24), byte(addr>>16), byte(addr>>8), byte(addr))
	}
	// A run of accesses long enough that small ring batch capacities
	// (bcap = data[0]%8+1 = 4 here) cut partial blocks at every batch tail.
	seed := []byte{}
	for i := 0; i < 70; i++ {
		seed = read(seed, 0x1000+uint64(8*i), 8)
	}
	f.Add(seed)
	// An op-run broken by a uvarint size escape mid-group: sizes 4,4,300,4
	// split the size run inside one group-varint control group.
	seed = []byte{}
	for i, size := range []uint64{4, 4, 300, 4} {
		seed = read(seed, 0x2000+uint64(4*i), size)
	}
	f.Add(seed)
	// A MaxRangeCount escape as the last event of a full block: 63 reads
	// then one maximal range.
	seed = []byte{}
	for i := 0; i < 63; i++ {
		seed = read(seed, uint64(16*i), 4)
	}
	seed = append(seed, 5, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0, 0, 0, 0, 0, 0, 0x40, 0)
	f.Add(seed)
	// A partial final block of exactly 1 event after a full block.
	seed = []byte{}
	for i := 0; i < BlockEvents+1; i++ {
		seed = read(seed, 0x3000+uint64(4*i), 4)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		events := decodeCodecProgram(data)
		checkCodecRoundTrip(t, events)

		// Stream the same program through both ring encodings with a tiny
		// batch capacity so the fuzzer hits flush boundaries constantly.
		bcap := 1
		if len(data) > 0 {
			bcap = int(data[0]%8) + 1
		}
		stream := func(r *Ring) []Event {
			out := make(chan []Event)
			go func() {
				var got []Event
				for {
					b, ok := r.Next()
					if !ok {
						break
					}
					it := b.Iter()
					for {
						ev, ok := it.Next()
						if !ok {
							break
						}
						got = append(got, ev)
					}
					r.Recycle(b)
				}
				out <- got
			}()
			b := r.Get()
			for _, c := range events {
				if b.Full() {
					r.Publish(b)
					b = r.Get()
				}
				c.appendTo(b)
			}
			r.Publish(b)
			r.Close()
			return <-out
		}
		fixed := stream(NewRing(2, bcap))
		compact := stream(NewCompactRing(2, bcap))
		if len(fixed) != len(events) || len(compact) != len(events) {
			t.Fatalf("streamed %d (fixed) / %d (compact) events, want %d",
				len(fixed), len(compact), len(events))
		}
		for i := range fixed {
			if fixed[i] != compact[i] {
				t.Fatalf("streamed event %d: fixed %+v != compact %+v", i, fixed[i], compact[i])
			}
		}
	})
}
