package evstream

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// appendFromBatch builds a batch of n pseudo-random access/range events in
// the given encoding, with occasional wild address jumps and escaped
// operand sizes so AppendFrom's rebase path sees multi-byte deltas.
func appendFromBatch(rng *rand.Rand, compact bool, n int, base uint64) (*Batch, []Event) {
	b := &Batch{compact: compact}
	if compact {
		b.Buf = make([]byte, 0, 4096)
	} else {
		b.Ev = make([]Event, 0, 4096)
	}
	var want []Event
	addr := base
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			addr = rng.Uint64() // wild jump
		default:
			addr += uint64(rng.Intn(128)) * 8
		}
		switch rng.Intn(4) {
		case 0:
			ev := Range(OpWriteRange, addr, 1+rng.Intn(1000), uint64(1+rng.Intn(64)))
			b.AppendRange(ev.EvOp(), ev.Addr(), ev.Count(), ev.Elem())
			want = append(want, ev)
		default:
			size := uint64(1 + rng.Intn(8))
			if rng.Intn(8) == 0 {
				size = uint64(31 + rng.Intn(1000)) // escaped operand
			}
			op := OpRead
			if rng.Intn(2) == 0 {
				op = OpWrite
			}
			b.AppendAccess(op, addr, size)
			want = append(want, Access(op, addr, size))
		}
	}
	return b, want
}

func drainBatch(t *testing.T, b *Batch) []Event {
	t.Helper()
	var got []Event
	it := b.Iter()
	for {
		ev, ok := it.Next()
		if !ok {
			return got
		}
		got = append(got, ev)
	}
}

// TestAppendFromRoundTrip concatenates many source batches into one
// accumulator and checks the accumulator decodes to exactly the sources'
// events in order — including across the delta-rebased boundary — and
// that direct appends after an AppendFrom continue from the inherited
// delta base.
func TestAppendFromRoundTrip(t *testing.T) {
	for _, compact := range []bool{true, false} {
		rng := rand.New(rand.NewSource(1))
		out := &Batch{compact: compact}
		if compact {
			out.Buf = make([]byte, 0, 1<<16)
		} else {
			out.Ev = make([]Event, 0, 1<<16)
		}
		var want []Event
		for i := 0; i < 40; i++ {
			src, evs := appendFromBatch(rng, compact, 1+rng.Intn(50), rng.Uint64())
			if !out.AppendFrom(src) {
				t.Fatalf("compact=%v: AppendFrom reported no room in a large accumulator", compact)
			}
			want = append(want, evs...)
			// Interleave direct appends: they must delta from the source's
			// final base, not a stale one.
			b := uint64(0xdead0000 + i)
			out.AppendAccess(OpWrite, b, 8)
			want = append(want, Access(OpWrite, b, 8))
		}
		got := drainBatch(t, out)
		if len(got) != len(want) {
			t.Fatalf("compact=%v: decoded %d events, want %d", compact, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("compact=%v: event %d = %+v, want %+v", compact, i, got[i], want[i])
			}
		}
		if out.Len() != len(want) {
			t.Fatalf("compact=%v: Len=%d, want %d", compact, out.Len(), len(want))
		}
	}
}

// TestAppendFromNoRoom checks the no-room path leaves the destination
// bit-for-bit untouched, and that an empty source always fits.
func TestAppendFromNoRoom(t *testing.T) {
	for _, compact := range []bool{true, false} {
		rng := rand.New(rand.NewSource(2))
		dst := &Batch{compact: compact}
		if compact {
			dst.Buf = make([]byte, 0, 64)
		} else {
			dst.Ev = make([]Event, 0, 2)
		}
		dst.AppendAccess(OpRead, 0x1000, 8)
		wantLen, wantWire := dst.Len(), dst.WireBytes()
		src, _ := appendFromBatch(rng, compact, 200, 0x2000)
		if dst.AppendFrom(src) {
			t.Fatalf("compact=%v: 200 events reported as fitting a tiny batch", compact)
		}
		if dst.Len() != wantLen || dst.WireBytes() != wantWire {
			t.Fatalf("compact=%v: failed AppendFrom mutated the destination", compact)
		}
		empty := &Batch{compact: compact}
		if !dst.AppendFrom(empty) {
			t.Fatalf("compact=%v: empty source must always fit", compact)
		}
		if dst.Len() != wantLen {
			t.Fatalf("compact=%v: empty AppendFrom changed Len", compact)
		}
	}
}

// TestTaskQueuePublishDrain pushes chunks from several producer goroutines
// through a shallow queue and checks nothing is lost or duplicated, the
// stats add up, and Close delivers already-queued chunks before reporting
// end-of-stream.
func TestTaskQueuePublishDrain(t *testing.T) {
	const producers, perProducer = 4, 200
	q := NewTaskQueue(2) // shallow: forces producer waits
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				b := &Batch{Ev: make([]Event, 0, 4)}
				b.AppendAccess(OpRead, uint64(i), 8)
				if !q.Publish(Chunk{Batch: b, Task: uint64(p), Idx: uint32(i), End: ChunkCut}) {
					t.Error("Publish reported closed on an open queue")
					return
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); q.Close(); close(done) }()

	seen := make(map[[2]uint64]bool)
	var buf []Chunk
	for {
		var ok bool
		buf, ok = q.Drain(buf[:0])
		for _, c := range buf {
			k := [2]uint64{c.Task, uint64(c.Idx)}
			if seen[k] {
				t.Fatalf("duplicate chunk %v", k)
			}
			seen[k] = true
		}
		if !ok {
			break
		}
	}
	<-done
	if len(seen) != producers*perProducer {
		t.Fatalf("drained %d chunks, want %d", len(seen), producers*perProducer)
	}
	s := q.Stats()
	if s.BatchesPublished != producers*perProducer {
		t.Fatalf("BatchesPublished=%d, want %d", s.BatchesPublished, producers*perProducer)
	}
	if s.EventsPublished != producers*perProducer {
		t.Fatalf("EventsPublished=%d, want %d (one event per chunk)", s.EventsPublished, producers*perProducer)
	}
	if s.StreamBytes == 0 {
		t.Fatal("StreamBytes = 0 after publishing non-empty batches")
	}
}

// TestTaskQueueCloseUnblocks checks that Close releases a producer blocked
// on a full queue (reporting false) and a consumer blocked on an empty one.
func TestTaskQueueCloseUnblocks(t *testing.T) {
	q := NewTaskQueue(1)
	if !q.Publish(Chunk{Task: 1}) {
		t.Fatal("first Publish failed")
	}
	blocked := make(chan bool)
	go func() {
		blocked <- q.Publish(Chunk{Task: 2}) // queue full: blocks until Close
	}()
	select {
	case <-blocked:
		t.Fatal("Publish did not block on a full queue")
	case <-time.After(10 * time.Millisecond):
	}
	q.Close()
	if ok := <-blocked; ok {
		t.Fatal("Publish on a closed queue reported ok")
	}
	// The pre-close chunk is still delivered; then end-of-stream.
	buf, ok := q.Drain(nil)
	if !ok || len(buf) != 1 || buf[0].Task != 1 {
		t.Fatalf("Drain after close = (%v, %v), want the one queued chunk", buf, ok)
	}
	if _, ok := q.Drain(nil); ok {
		t.Fatal("Drain on a closed empty queue reported ok")
	}
	if q.Publish(Chunk{}) {
		t.Fatal("Publish after Close reported ok")
	}
	q.Close() // idempotent
}

// TestBatchPoolReuse checks Get/Put recycling, the free-list bound, and
// that recycled batches come back empty with their geometry intact.
func TestBatchPoolReuse(t *testing.T) {
	p := NewBatchPool(2, 16, true)
	b := p.Get()
	if !b.Compact() || cap(b.Buf) != 4*16 {
		t.Fatalf("compact pool batch: compact=%v cap=%d", b.Compact(), cap(b.Buf))
	}
	b.AppendAccess(OpWrite, 42, 8)
	p.Put(b)
	b2 := p.Get()
	if b2 != b {
		t.Fatal("pool did not recycle the freed batch")
	}
	if b2.Len() != 0 || len(b2.Buf) != 0 {
		t.Fatal("recycled batch not reset")
	}
	if p.Reused() != 1 {
		t.Fatalf("Reused=%d, want 1", p.Reused())
	}
	// The free list is bounded at the limit; extra Puts drop.
	a, c, d := p.Get(), p.Get(), p.Get()
	p.Put(a)
	p.Put(c)
	p.Put(d)
	if got := len(p.free); got != 2 {
		t.Fatalf("free list holds %d batches, want limit 2", got)
	}
	fixed := NewBatchPool(1, 8, false)
	fb := fixed.Get()
	if fb.Compact() || cap(fb.Ev) != 8 {
		t.Fatalf("fixed pool batch: compact=%v cap=%d", fb.Compact(), cap(fb.Ev))
	}
}
