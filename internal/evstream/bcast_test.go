package evstream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBcastRingDeliversToEveryConsumer checks the broadcast invariant over
// many wraparounds of a tiny ring: each consumer sees every message, in
// publish order.
func TestBcastRingDeliversToEveryConsumer(t *testing.T) {
	const consumers, depth, msgs = 3, 2, 100
	r := NewBcastRing[int](depth, consumers, nil)
	got := make([][]int, consumers)
	var wg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok := r.Next(i)
				if !ok {
					return
				}
				got[i] = append(got[i], m)
				r.Release(i)
			}
		}()
	}
	for v := 0; v < msgs; v++ {
		r.Publish(v)
	}
	r.Close()
	wg.Wait()
	for i := 0; i < consumers; i++ {
		if len(got[i]) != msgs {
			t.Fatalf("consumer %d saw %d messages, want %d", i, len(got[i]), msgs)
		}
		for v, m := range got[i] {
			if m != v {
				t.Fatalf("consumer %d message %d = %d, want %d", i, v, m, v)
			}
		}
	}
	if s := r.Stats(); s.BatchesPublished != msgs {
		t.Fatalf("BatchesPublished = %d, want %d", s.BatchesPublished, msgs)
	}
}

// TestBcastRingSlowConsumerBackpressure verifies Publish blocks on the
// slowest consumer: with depth 1 and one consumer stalled, a second Publish
// cannot complete until the stalled consumer releases the first slot, even
// if the fast consumer has long moved on.
func TestBcastRingSlowConsumerBackpressure(t *testing.T) {
	r := NewBcastRing[int](1, 2, nil)
	// Fast consumer: takes and releases everything immediately.
	go func() {
		for {
			_, ok := r.Next(0)
			if !ok {
				return
			}
			r.Release(0)
		}
	}()
	r.Publish(1)
	// Slow consumer takes the message but does not release it yet.
	if m, ok := r.Next(1); !ok || m != 1 {
		t.Fatalf("Next(1) = %d,%v, want 1,true", m, ok)
	}
	published := make(chan struct{})
	go func() {
		r.Publish(2)
		close(published)
	}()
	select {
	case <-published:
		t.Fatal("Publish completed while the slow consumer still held the slot")
	case <-time.After(20 * time.Millisecond):
	}
	r.Release(1)
	select {
	case <-published:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish still blocked after the slow consumer released")
	}
	if m, ok := r.Next(1); !ok || m != 2 {
		t.Fatalf("Next(1) = %d,%v, want 2,true", m, ok)
	}
	r.Release(1)
	r.Close()
}

// TestBcastRingRefcountedRecycle runs concurrent consumers with randomized
// progress and checks the recycle contract: onFree fires exactly once per
// message, only after every consumer has released it, and never while any
// consumer still holds it.
func TestBcastRingRefcountedRecycle(t *testing.T) {
	const consumers, msgs = 4, 200
	var freed atomic.Int64
	var held [consumers]atomic.Int64 // message each consumer currently holds, -1 if none
	for i := range held {
		held[i].Store(-1)
	}
	var r *BcastRing[int]
	r = NewBcastRing[int](3, consumers, func(m int) {
		for i := range held {
			if h := held[i].Load(); h == int64(m) {
				t.Errorf("message %d freed while consumer %d still held it", m, i)
			}
		}
		freed.Add(1)
	})
	var wg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, ok := r.Next(i)
				if !ok {
					return
				}
				held[i].Store(int64(m))
				if (m+i)%3 == 0 {
					time.Sleep(time.Microsecond) // stagger release order
				}
				held[i].Store(-1)
				r.Release(i)
			}
		}()
	}
	for v := 0; v < msgs; v++ {
		r.Publish(v)
	}
	r.Close()
	wg.Wait()
	if n := freed.Load(); n != msgs {
		t.Fatalf("onFree fired %d times, want %d", n, msgs)
	}
}

// TestBcastRingCloseDrains checks consumers still receive everything
// published before Close, then get ok=false.
func TestBcastRingCloseDrains(t *testing.T) {
	r := NewBcastRing[int](4, 1, nil)
	for v := 0; v < 3; v++ {
		r.Publish(v)
	}
	r.Close()
	for v := 0; v < 3; v++ {
		m, ok := r.Next(0)
		if !ok || m != v {
			t.Fatalf("Next = %d,%v, want %d,true", m, ok, v)
		}
		r.Release(0)
	}
	if _, ok := r.Next(0); ok {
		t.Fatal("Next returned ok=true after drain on a closed ring")
	}
}

// TestBcastRingMisuse pins the guard rails: releasing without a matching
// Next panics, publishing after Close reports false, and constructor
// arguments are clamped.
func TestBcastRingMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("release without next", func() {
		NewBcastRing[int](2, 1, nil).Release(0)
	})
	r := NewBcastRing[int](2, 1, nil)
	if !r.Publish(1) {
		t.Fatal("Publish on an open ring reported false")
	}
	r.Close()
	if r.Publish(2) {
		t.Fatal("Publish after Close reported ok")
	}
	if r := NewBcastRing[int](0, 0, nil); r.Consumers() != 1 {
		t.Fatalf("Consumers() = %d after clamping, want 1", r.Consumers())
	}
}

// TestBcastRingCloseUnblocksStuckPublish pins the teardown path the label
// stage depends on: a Publish blocked on a slot a consumer never releases
// (e.g. the consumer aborted) must return false when Close fires, instead
// of panicking or blocking forever.
func TestBcastRingCloseUnblocksStuckPublish(t *testing.T) {
	r := NewBcastRing[int](1, 1, nil)
	r.Publish(1)
	if m, ok := r.Next(0); !ok || m != 1 {
		t.Fatalf("Next = %d,%v, want 1,true", m, ok)
	}
	// Consumer holds the slot (no Release) — the aborted-worker shape.
	result := make(chan bool)
	go func() {
		result <- r.Publish(2)
	}()
	select {
	case <-result:
		t.Fatal("Publish completed while the slot was held")
	case <-time.After(20 * time.Millisecond):
	}
	r.Close()
	select {
	case ok := <-result:
		if ok {
			t.Fatal("Publish unblocked by Close reported ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the stuck Publish")
	}
}

// TestBcastRingPerConsumerWaits checks wait attribution: a consumer that
// polls an empty ring accumulates waits on its own counter, not its idle
// peer's, while Stats still aggregates both.
func TestBcastRingPerConsumerWaits(t *testing.T) {
	r := NewBcastRing[int](2, 2, nil)
	got := make(chan int)
	go func() {
		m, ok := r.Next(0) // blocks: nothing published yet
		if !ok {
			m = -1
		}
		got <- m
	}()
	time.Sleep(10 * time.Millisecond)
	r.Publish(7)
	if m := <-got; m != 7 {
		t.Fatalf("consumer 0 got %d, want 7", m)
	}
	r.Release(0)
	if w := r.ConsumerWaits(0); w == 0 {
		t.Error("consumer 0 blocked but its wait counter is zero")
	}
	if w := r.ConsumerWaits(1); w != 0 {
		t.Errorf("consumer 1 never called Next but has %d waits", w)
	}
	if s := r.Stats(); s.ConsumerWaits != r.ConsumerWaits(0) {
		t.Errorf("aggregate ConsumerWaits = %d, want %d", s.ConsumerWaits, r.ConsumerWaits(0))
	}
	r.Close()
}

// BenchmarkBcastRing measures the per-message broadcast handoff cost for
// the shard-worker fan-out counts the runner uses.
func BenchmarkBcastRing(b *testing.B) {
	for _, consumers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("consumers=%d", consumers), func(b *testing.B) {
			r := NewBcastRing[int](8, consumers, nil)
			var wg sync.WaitGroup
			for i := 0; i < consumers; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						_, ok := r.Next(i)
						if !ok {
							return
						}
						r.Release(i)
					}
				}()
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				r.Publish(n)
			}
			r.Close()
			wg.Wait()
		})
	}
}
