package evstream

import (
	"fmt"
	"testing"
)

// BenchmarkRingThroughput streams b.N events through the ring with a
// draining consumer goroutine: the pipeline's per-event transport cost.
func BenchmarkRingThroughput(b *testing.B) {
	for _, batchCap := range []int{64, 1024, 4096} {
		b.Run(fmt.Sprintf("batch%d", batchCap), func(b *testing.B) {
			r := NewRing(8, batchCap)
			done := make(chan uint64)
			go func() {
				var n uint64
				for {
					batch, ok := r.Next()
					if !ok {
						break
					}
					n += uint64(len(batch.Ev))
					r.Recycle(batch)
				}
				done <- n
			}()
			b.ResetTimer()
			batch := r.Get()
			for i := 0; i < b.N; i++ {
				if len(batch.Ev) == cap(batch.Ev) {
					r.Publish(batch)
					batch = r.Get()
				}
				batch.Ev = append(batch.Ev, Access(OpRead, uint64(i), 4))
			}
			r.Publish(batch)
			r.Close()
			if n := <-done; n != uint64(b.N) {
				b.Fatalf("consumer saw %d events, want %d", n, b.N)
			}
		})
	}
}

// BenchmarkRingUncontended measures the producer-side cost alone: the
// consumer drains eagerly so Publish never blocks.
func BenchmarkRingUncontended(b *testing.B) {
	r := NewRing(64, 4096)
	go func() {
		for {
			batch, ok := r.Next()
			if !ok {
				return
			}
			r.Recycle(batch)
		}
	}()
	b.ResetTimer()
	batch := r.Get()
	for i := 0; i < b.N; i++ {
		if len(batch.Ev) == cap(batch.Ev) {
			r.Publish(batch)
			batch = r.Get()
		}
		batch.Ev = append(batch.Ev, Access(OpWrite, uint64(i), 4))
	}
	r.Publish(batch)
	r.Close()
}

// BenchmarkSummaryStamp measures the producer-side cost of stamping one
// access into a batch summary — the incremental hot-path price of letting
// workers skip-scan.
func BenchmarkSummaryStamp(b *testing.B) {
	var sum Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.Mask |= AccessMask(Access(OpWrite, uint64(i)*8, 8), 16, 4)
	}
	if sum.Mask == 0 {
		b.Fatal("mask never set")
	}
}
