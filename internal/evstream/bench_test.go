package evstream

import (
	"fmt"
	"testing"
)

// BenchmarkRingThroughput streams b.N events through the ring with a
// draining consumer goroutine: the pipeline's per-event transport cost.
func BenchmarkRingThroughput(b *testing.B) {
	for _, batchCap := range []int{64, 1024, 4096} {
		b.Run(fmt.Sprintf("batch%d", batchCap), func(b *testing.B) {
			r := NewRing(8, batchCap)
			done := make(chan uint64)
			go func() {
				var n uint64
				for {
					batch, ok := r.Next()
					if !ok {
						break
					}
					n += uint64(len(batch.Ev))
					r.Recycle(batch)
				}
				done <- n
			}()
			b.ResetTimer()
			batch := r.Get()
			for i := 0; i < b.N; i++ {
				if len(batch.Ev) == cap(batch.Ev) {
					r.Publish(batch)
					batch = r.Get()
				}
				batch.Ev = append(batch.Ev, Access(OpRead, uint64(i), 4))
			}
			r.Publish(batch)
			r.Close()
			if n := <-done; n != uint64(b.N) {
				b.Fatalf("consumer saw %d events, want %d", n, b.N)
			}
		})
	}
}

// BenchmarkRingUncontended measures the producer-side cost alone: the
// consumer drains eagerly so Publish never blocks.
func BenchmarkRingUncontended(b *testing.B) {
	r := NewRing(64, 4096)
	go func() {
		for {
			batch, ok := r.Next()
			if !ok {
				return
			}
			r.Recycle(batch)
		}
	}()
	b.ResetTimer()
	batch := r.Get()
	for i := 0; i < b.N; i++ {
		if len(batch.Ev) == cap(batch.Ev) {
			r.Publish(batch)
			batch = r.Get()
		}
		batch.Ev = append(batch.Ev, Access(OpWrite, uint64(i), 4))
	}
	r.Publish(batch)
	r.Close()
}

// benchAppendEvent appends a representative event mix: mostly sequential
// word accesses (the hot path), with a range write every 16 events and a
// structure event every 64.
func benchAppendEvent(batch *Batch, j int) {
	addr := uint64(0x1000 + 8*(j%512))
	switch {
	case j%64 == 63:
		batch.AppendCtl(OpSync)
	case j%16 == 15:
		batch.AppendRange(OpWriteRange, addr, 16, 8)
	case j%2 == 0:
		batch.AppendAccess(OpRead, addr, 8)
	default:
		batch.AppendAccess(OpWrite, addr, 8)
	}
}

// benchBatch returns an empty batch in the requested encoding with room
// for n events.
func benchBatch(enc string, n int) *Batch {
	if enc == "compact" {
		return &Batch{Buf: make([]byte, 0, (n+1)*MaxEventBytes), compact: true}
	}
	return &Batch{Ev: make([]Event, 0, n)}
}

// BenchmarkEventEncode measures the producer-side append cost per event for
// both encodings, and reports the wire footprint of the representative mix
// as bytes-per-event.
func BenchmarkEventEncode(b *testing.B) {
	const n = 4096
	for _, enc := range []string{"compact", "fixed"} {
		b.Run(enc, func(b *testing.B) {
			batch := benchBatch(enc, n)
			for j := 0; j < n; j++ {
				benchAppendEvent(batch, j)
			}
			perEvent := float64(batch.WireBytes()) / float64(batch.Len())
			b.ResetTimer()
			for i := 0; i < b.N; {
				batch.Reset()
				for j := 0; j < n && i < b.N; j, i = j+1, i+1 {
					benchAppendEvent(batch, j)
				}
			}
			b.ReportMetric(perEvent, "bytes-per-event")
		})
	}
}

// BenchmarkEventDecode measures the consumer-side iteration cost per event
// for both encodings — the price every sharded worker pays per batch it
// cannot skip. "compact" pulls through the per-event Next shim; "compact-
// blocks" is the block decode kernel every hot consumer actually uses
// (DecodeBlock into a stack array), the path the ≤1.5×-of-fixed target
// applies to.
func BenchmarkEventDecode(b *testing.B) {
	const n = 4096
	decodeNext := func(b *testing.B, batch *Batch) {
		var sink uint64
		for i := 0; i < b.N; i += n {
			it := batch.Iter()
			for {
				ev, ok := it.Next()
				if !ok {
					break
				}
				sink += ev.Addr()
			}
		}
		if sink == 0 {
			b.Fatal("decoded no addresses")
		}
	}
	decodeBlocks := func(b *testing.B, batch *Batch) {
		var sink uint64
		var blk [BlockEvents]Event
		for i := 0; i < b.N; i += n {
			it := batch.Iter()
			for {
				evs := it.DecodeBlock(&blk)
				if len(evs) == 0 {
					break
				}
				for _, ev := range evs {
					sink += ev.Addr()
				}
			}
		}
		if sink == 0 {
			b.Fatal("decoded no addresses")
		}
	}
	for _, bc := range []struct {
		name   string
		enc    string
		decode func(*testing.B, *Batch)
	}{
		{"compact", "compact", decodeNext},
		{"compact-blocks", "compact", decodeBlocks},
		{"fixed", "fixed", decodeNext},
	} {
		b.Run(bc.name, func(b *testing.B) {
			batch := benchBatch(bc.enc, n)
			for j := 0; j < n; j++ {
				benchAppendEvent(batch, j)
			}
			b.ResetTimer()
			bc.decode(b, batch)
		})
	}
}

// benchMixes are the op mixes BenchmarkEventDecodeBlock sweeps: the
// sequential same-size fast path the format optimizes for, a range-heavy
// stream (count uvarints in the block), random addresses (wide deltas, no
// 1-byte fast lane), and a structure-dense stream (blocks broken by ctl
// tags every few events — the degenerate-blocking case the ev/blk
// telemetry flags).
var benchMixes = []struct {
	name   string
	append func(batch *Batch, j int)
}{
	{"seq", func(batch *Batch, j int) {
		op := OpRead
		if j%2 == 1 {
			op = OpWrite
		}
		batch.AppendAccess(op, uint64(0x1000+8*(j%512)), 8)
	}},
	{"range-heavy", func(batch *Batch, j int) {
		addr := uint64(0x1000 + 64*(j%512))
		if j%2 == 0 {
			batch.AppendRange(OpWriteRange, addr, 16, 8)
		} else {
			batch.AppendAccess(OpRead, addr, 8)
		}
	}},
	{"rand", func(batch *Batch, j int) {
		// Deterministic pseudo-random addresses: wide zig-zag deltas, the
		// group-varint worst case.
		addr := uint64(j) * 0x9e3779b97f4a7c15
		batch.AppendAccess(OpWrite, addr, 8)
	}},
	{"ctl-dense", func(batch *Batch, j int) {
		if j%4 == 3 {
			batch.AppendCtl(OpSync)
		} else {
			batch.AppendAccess(OpRead, uint64(0x1000+8*(j%512)), 8)
		}
	}},
}

// BenchmarkEventDecodeBlock sweeps the op mixes across the three decode
// paths — the fixed slice scan, the compact per-event Next shim, and the
// compact block kernel — so the kernel's premium over fixed is visible
// per mix, not just on the representative average.
func BenchmarkEventDecodeBlock(b *testing.B) {
	const n = 4096
	for _, mix := range benchMixes {
		for _, dec := range []string{"fixed", "per-event", "block"} {
			b.Run(mix.name+"/"+dec, func(b *testing.B) {
				enc := "compact"
				if dec == "fixed" {
					enc = "fixed"
				}
				batch := benchBatch(enc, n)
				for j := 0; j < n; j++ {
					mix.append(batch, j)
				}
				b.ResetTimer()
				var sink uint64
				var blk [BlockEvents]Event
				for i := 0; i < b.N; i += n {
					it := batch.Iter()
					if dec == "per-event" {
						for {
							ev, ok := it.Next()
							if !ok {
								break
							}
							sink += ev.Addr() + uint64(ev.EvOp())
						}
						continue
					}
					for {
						evs := it.DecodeBlock(&blk)
						if len(evs) == 0 {
							break
						}
						for _, ev := range evs {
							sink += ev.Addr() + uint64(ev.EvOp())
						}
					}
				}
				if sink == 0 {
					b.Fatal("decoded nothing")
				}
			})
		}
	}
}

// BenchmarkSummaryStamp measures the producer-side cost of stamping one
// access into a batch summary — the incremental hot-path price of letting
// workers skip-scan.
func BenchmarkSummaryStamp(b *testing.B) {
	var sum Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.Mask |= AccessMask(Access(OpWrite, uint64(i)*8, 8), 16, 4)
	}
	if sum.Mask == 0 {
		b.Fatal("mask never set")
	}
}
