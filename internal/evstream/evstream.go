// Package evstream carries instrumentation events from an executing
// fork-join program (the producer) to a detector goroutine (the consumer)
// through a bounded single-producer/single-consumer ring of event batches.
// Batches store events either as fixed 16-byte structs or — the default at
// the stint layer — in the delta-packed compact wire format of compact.go,
// which exploits address locality to spend 2 bytes on the common access
// instead of 16.
//
// The design goals mirror the runner's hot-path discipline:
//
//   - Events are appended to a batch with a plain slice append — no lock,
//     no channel, no allocation on the access hook path.
//   - Synchronization happens once per batch, not once per event: Publish
//     and Next take one mutex acquisition each, amortized over the batch
//     size (4096 events by default at the stint layer).
//   - Consumed batches return to a free list and are reused, so a
//     steady-state pipeline allocates a fixed set of batches regardless of
//     how many events flow through it.
//   - The ring is bounded: when the consumer falls behind, Publish blocks
//     (backpressure) instead of queueing unbounded memory.
//
// Because there is exactly one producer and one consumer, batches hand
// over cleanly: the producer never touches a batch after Publish, the
// consumer never touches one after Recycle.
//
// The package also provides BcastRing, the single-producer/multi-consumer
// broadcast sibling used by the sharded stage graph: one labeled batch
// published once, scanned by every shard worker, and recycled by
// refcount once the last worker releases it.
package evstream

import "sync"

// Op identifies an event kind. The vocabulary is the runner's Tracer
// interface: the spawn/restore/sync structure plus the four access hooks.
// Strand boundaries are not represented explicitly — the consumer derives
// them from the structure events exactly as the inline detector derives
// them from the runner's call sites.
type Op uint8

const (
	// OpSpawn marks the start of a spawned child task.
	OpSpawn Op = 1 + iota
	// OpRestore marks a child's return to its parent's continuation.
	OpRestore
	// OpSync marks a strand-creating sync (no-op syncs are elided by the
	// producer, matching the Tracer contract).
	OpSync
	// OpRead and OpWrite are per-access hooks: Addr is the address, A the
	// access size in bytes.
	OpRead
	OpWrite
	// OpReadRange and OpWriteRange are compiler-coalesced hooks: Addr is
	// the base address, A the element count, B the element size in bytes.
	OpReadRange
	OpWriteRange
)

// Event is one instrumentation event, packed into 16 bytes so the stream
// moves half the memory a naive struct would: word holds the op in its low
// byte and the op-specific operands above it, addr the address (unused by
// structure events). Producers build Events with Access, Range, and Ctl;
// consumers read them back through the typed accessors.
type Event struct {
	word uint64
	addr uint64
}

// Access builds a per-access event (OpRead/OpWrite): size is the access
// size in bytes, carried in the 56 bits above the op byte. Sizes beyond
// MaxAccessSize panic rather than truncate into the op; the stint hook
// layer validates raw-address accesses before encoding.
func Access(op Op, addr, size uint64) Event {
	if size > MaxAccessSize {
		panic("evstream: access size does not fit the 56-bit size field")
	}
	return Event{word: uint64(op) | size<<8, addr: addr}
}

// MaxRangeCount and MaxRangeElem bound what a range event can encode: the
// count rides in the word's high 32 bits and the element size in the 24
// bits above the op byte. Values beyond them would silently truncate into
// the neighboring field, so Range rejects them; callers (the stint hook
// layer, the trace decoder) validate before encoding.
const (
	MaxRangeCount = 1<<32 - 1
	MaxRangeElem  = 1<<24 - 1
)

// Range builds a compiler-coalesced range event (OpReadRange/OpWriteRange):
// elem is the element size in bytes (low 24 bits above the op byte), count
// the element count (high 32 bits). Operands outside those fields panic
// rather than truncate — a truncated range would mis-split silently.
func Range(op Op, addr uint64, count int, elem uint64) Event {
	checkRangeFields(count, elem)
	return Event{word: uint64(op) | elem<<8 | uint64(count)<<32, addr: addr}
}

// Ctl builds a structure event (OpSpawn/OpRestore/OpSync).
func Ctl(op Op) Event { return Event{word: uint64(op)} }

// EvOp returns the event's op.
func (e Event) EvOp() Op { return Op(e.word) }

// Addr returns the address of an access or range event.
func (e Event) Addr() uint64 { return e.addr }

// Size returns the access size of an OpRead/OpWrite event.
func (e Event) Size() uint64 { return e.word >> 8 }

// Count returns the element count of a range event.
func (e Event) Count() int { return int(e.word >> 32) }

// Elem returns the element size of a range event.
func (e Event) Elem() uint64 { return (e.word >> 8) & 0xffffff }

// Stats counts ring activity, for observability and backpressure tuning.
// Read it only after the pipeline has drained (Close + final Next).
type Stats struct {
	// EventsPublished counts logical events (structure and access events
	// alike) across all published batches, independent of how the batches
	// encode them; BatchesPublished counts the batches. Their meanings are
	// pinned by tests so the two cannot drift apart again when an encoding
	// changes what a "slot" in a batch is.
	EventsPublished  uint64
	BatchesPublished uint64
	// StreamBytes counts wire bytes: what the published batches actually
	// occupy (len(Buf) for compact batches, 16 bytes per event otherwise).
	// StreamBytes/EventsPublished is the stream's bytes-per-event figure.
	StreamBytes uint64
	// BatchesReused counts Get calls served from the free list rather than
	// a fresh allocation; at steady state it tracks BatchesPublished.
	BatchesReused uint64
	// ProducerWaits and ConsumerWaits count blocking episodes: the
	// producer waiting on a full ring (detection is the bottleneck) and
	// the consumer waiting on an empty ring (execution is the bottleneck).
	ProducerWaits uint64
	ConsumerWaits uint64
}

// Batch is the unit the ring moves: the events in one of two storage
// forms, plus the stamped Summary that lets shard workers skip batches
// whose accesses cannot map to them. The producer owns a batch from Get to
// Publish; consumers own it from Next to Recycle.
//
// Exactly one storage form is active per batch: fixed batches (from
// NewRing, and zero-value Batch literals) hold 16-byte Events in Ev;
// compact batches (from NewCompactRing) hold the delta-packed byte stream
// in Buf — see compact.go for the wire format. The Append methods fill
// whichever form is active, and Iter scans either; consumers written
// against Iter and the Len/CtlOp accessors never care which form they got.
type Batch struct {
	Ev  []Event
	Buf []byte
	Sum Summary

	n       int    // compact form: sealed event count (staged events excluded; Len adds pendN)
	prev    uint64 // compact form: delta base (last access address)
	compact bool

	// Compact-form staging: up to one block of pending events awaiting
	// seal (see compact.go). The staged block's exact sealed size is
	// pendN + pendExtra + blockOverhead(pendN): every event costs one
	// delta byte as a baseline (counted by pendN itself), pendExtra
	// accumulates only the exceptional bytes (wide deltas, size-run
	// starts, escapes, range counts), and the structural overhead —
	// marker, header, op-bits and control bytes — is a closed form of
	// pendN. Full stays O(1) and the hot append path touches no byte
	// accumulator at all for a run-continuing one-byte-delta access.
	pendN      int
	pendExtra  int
	pendRunN   int                   // size runs staged so far
	pendRangeN int                   // range events staged so far
	pendLastA  uint64                // last size/elem operand, for run detection
	pendOW     [BlockEvents]byte     // op code (high nibble) | width code (low nibble)
	pendRunV   [BlockEvents]uint64   // size-run operand values
	pendRunS   [BlockEvents + 1]byte // size-run start indices (+1: seal's sentinel)
	pendC      [BlockEvents]uint64   // range counts, dense in range order
	pendZZ     [BlockEvents]uint64   // zig-zag address delta
}

// Ring is a bounded SPSC queue of event batches with an integrated batch
// free list. All methods are safe for the one-producer/one-consumer
// pattern; none may be called concurrently from two producers or two
// consumers.
type Ring struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []*Batch // circular queue of published batches
	head     int      // index of the oldest published batch
	count    int      // published batches currently in the ring
	closed   bool
	free     []*Batch // recycled batches awaiting reuse
	batchCap int
	compact  bool
	stats    Stats
}

// NewRing returns a ring holding at most depth in-flight batches of
// batchCap fixed-size events each. Both are clamped to at least 1.
func NewRing(depth, batchCap int) *Ring {
	return newRing(depth, batchCap, false)
}

// NewCompactRing returns a ring whose batches carry the delta-packed
// compact encoding (see compact.go) in a buffer of 4*batchCap bytes — a
// quarter of the fixed ring's per-batch footprint, yet at the ~2-byte
// sequential encoding still roughly twice as many events per ring
// synchronization. The 4-bytes-per-slot sizing is deliberate: larger
// buffers amortize handoffs further but make batches coarser, and a batch
// is summary-skippable only if no access in it touches a worker's shard —
// measured on the Fig5 workloads, bigger batches lose more to forgone
// skips (and to falling out of L1) than they save in synchronization.
func NewCompactRing(depth, batchCap int) *Ring {
	return newRing(depth, batchCap, true)
}

func newRing(depth, batchCap int, compact bool) *Ring {
	if depth < 1 {
		depth = 1
	}
	if batchCap < 1 {
		batchCap = 1
	}
	r := &Ring{buf: make([]*Batch, depth), batchCap: batchCap, compact: compact}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

// BatchCap returns the per-batch event capacity.
func (r *Ring) BatchCap() int { return r.batchCap }

// Get returns an empty batch for the producer to fill — BatchCap event
// capacity on a fixed ring, 4*BatchCap bytes on a compact ring — reusing
// a recycled batch when one is available. The batch's summary starts
// zeroed (empty mask, no structure offsets); whichever stage stamps
// summaries must leave Sum.Mask meaningful (MaskAll when not summarizing)
// before workers see the batch, so none mistakes the zero mask for
// "skippable by everyone".
func (r *Ring) Get() *Batch {
	r.mu.Lock()
	if n := len(r.free); n > 0 {
		b := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		r.stats.BatchesReused++
		r.mu.Unlock()
		b.Reset()
		return b
	}
	r.mu.Unlock()
	if r.compact {
		return &Batch{Buf: make([]byte, 0, 4*r.batchCap), compact: true}
	}
	return &Batch{Ev: make([]Event, 0, r.batchCap)}
}

// Publish hands a filled batch to the consumer, blocking while the ring is
// full (backpressure). Empty and nil batches are legal and flow through
// like any other. Publish reports false — and drops the batch — when the
// ring was closed underneath a blocked or late producer, so teardown paths
// (an abort closing the ring while the producer is mid-flush) unwind
// cleanly instead of panicking.
func (r *Ring) Publish(b *Batch) (ok bool) {
	r.mu.Lock()
	for r.count == len(r.buf) && !r.closed {
		r.stats.ProducerWaits++
		r.notFull.Wait()
	}
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = b
	r.count++
	r.stats.BatchesPublished++
	if b != nil {
		r.stats.EventsPublished += uint64(b.Len())
		r.stats.StreamBytes += uint64(b.WireBytes())
	}
	r.notEmpty.Signal()
	r.mu.Unlock()
	return true
}

// Close signals end-of-stream. The consumer drains the batches already
// published, then Next reports done.
func (r *Ring) Close() {
	r.mu.Lock()
	r.closed = true
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}

// Next returns the oldest published batch, blocking while the ring is
// empty. It returns ok=false once the ring is closed and fully drained.
func (r *Ring) Next() (b *Batch, ok bool) {
	r.mu.Lock()
	for r.count == 0 && !r.closed {
		r.stats.ConsumerWaits++
		r.notEmpty.Wait()
	}
	if r.count == 0 { // closed and drained
		r.mu.Unlock()
		return nil, false
	}
	b = r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.notFull.Signal()
	r.mu.Unlock()
	return b, true
}

// Recycle returns a consumed batch to the free list. The free list is
// bounded by the ring depth plus the producer's working batch, so a
// misbehaving caller cannot grow it without bound. Unlike the other
// methods, Recycle is safe to call from any goroutine — the sharded
// pipeline recycles batches from whichever worker releases a broadcast
// slot last.
func (r *Ring) Recycle(b *Batch) {
	if b == nil || (cap(b.Ev) == 0 && cap(b.Buf) == 0) {
		return
	}
	r.mu.Lock()
	if len(r.free) < len(r.buf)+1 {
		r.free = append(r.free, b)
	}
	r.mu.Unlock()
}

// Stats returns a snapshot of the ring counters. Call it after the
// pipeline has drained for exact values.
func (r *Ring) Stats() Stats {
	r.mu.Lock()
	s := r.stats
	r.mu.Unlock()
	return s
}

// Reset re-arms a closed (or idle) ring for another run: the closed flag
// and counters clear, any batches still parked in the queue — an aborted
// run may leave some undelivered — retire to the free list, and the free
// list itself is retained, so the next run's Gets reuse the same warm
// batches. Reset must not race with an active producer or consumer; call
// it only after the previous run has fully wound down.
func (r *Ring) Reset() {
	r.mu.Lock()
	for r.count > 0 {
		b := r.buf[r.head]
		r.buf[r.head] = nil
		r.head = (r.head + 1) % len(r.buf)
		r.count--
		if b != nil && len(r.free) < len(r.buf)+1 {
			r.free = append(r.free, b)
		}
	}
	r.head = 0
	r.closed = false
	r.stats = Stats{}
	r.mu.Unlock()
}
