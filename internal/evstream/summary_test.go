package evstream

import (
	"math/rand"
	"testing"
)

// TestAccessMaskCoversEverySplitPiece is the exactness property the worker
// fast path rests on: for any access or range event, every page PageSplit
// emits maps to a shard whose mask bit AccessMask set. A clear bit
// therefore proves the worker owns no piece of the event.
func TestAccessMaskCoversEverySplitPiece(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(6)
		var ev Event
		switch trial % 3 {
		case 0:
			ev = Access(OpRead, rng.Uint64()%(1<<21), uint64(rng.Intn(1<<18)))
		case 1:
			ev = Access(OpWrite, rng.Uint64()%(1<<21), uint64(rng.Intn(64)))
		default:
			elem := uint64(rng.Intn(8) + 1)
			ev = Range(OpWriteRange, rng.Uint64()%(1<<21), rng.Intn(1<<15), elem)
		}
		mask := AccessMask(ev, 16, n)
		PageSplit(ev, 16, func(page uint64, _ Event) {
			s := PickShard(page, n)
			if mask&(1<<(uint(s)&63)) == 0 {
				t.Fatalf("trial %d: event %+v page %d shard %d not covered by mask %#x",
					trial, ev, page, s, mask)
			}
		})
	}
}

func TestAccessMaskTwoPageSpanIsExact(t *testing.T) {
	const pageBytes = 1 << 16
	// Straddles pages 0 and 1 only: exactly their two shard bits, not all-ones.
	ev := Access(OpWrite, pageBytes-8, 16)
	mask := AccessMask(ev, 16, 4)
	want := uint64(1)<<(uint(PickShard(0, 4))&63) | uint64(1)<<(uint(PickShard(1, 4))&63)
	if mask != want {
		t.Fatalf("straddle mask = %#x, want %#x", mask, want)
	}
	if mask == MaskAll {
		t.Fatal("two-page straddle must not fall back to MaskAll")
	}
}

func TestAccessMaskWideSpanFallsBackToMaskAll(t *testing.T) {
	const pageBytes = 1 << 16
	// Three pages: middle page could hash anywhere, so the mask must be
	// conservative.
	if mask := AccessMask(Range(OpReadRange, 0, 3*pageBytes/8, 8), 16, 4); mask != MaskAll {
		t.Fatalf("3-page range mask = %#x, want MaskAll", mask)
	}
	// Address-space wrap is conservative too (PageSplit panics on it; the
	// mask never under-promises).
	if mask := AccessMask(Access(OpRead, ^uint64(0)-4, 16), 16, 4); mask != MaskAll {
		t.Fatalf("wrapping access mask = %#x, want MaskAll", mask)
	}
}

func TestAccessMaskZeroSize(t *testing.T) {
	// A zero-size access still emits one piece on its base page, so the
	// mask must cover that page's shard.
	ev := Access(OpRead, 3<<16|0x40, 0)
	mask := AccessMask(ev, 16, 4)
	if want := uint64(1) << (uint(PickShard(3, 4)) & 63); mask != want {
		t.Fatalf("zero-size mask = %#x, want %#x", mask, want)
	}
}

func TestSummarySkippableBy(t *testing.T) {
	var s Summary
	if !s.SkippableBy(0) || !s.SkippableBy(3) {
		t.Fatal("zero mask (no access events) must be skippable by everyone")
	}
	s.Mask = 1 << 2
	if s.SkippableBy(2) {
		t.Fatal("shard 2's bit is set but SkippableBy(2) = true")
	}
	if !s.SkippableBy(1) {
		t.Fatal("shard 1's bit is clear but SkippableBy(1) = false")
	}
	// Shard indices fold mod 64: shard 66 shares bit 2.
	if s.SkippableBy(66) {
		t.Fatal("shard 66 folds onto set bit 2 but SkippableBy = true")
	}
	s.Mask = MaskAll
	for _, w := range []int{0, 1, 63, 64, 1000} {
		if s.SkippableBy(w) {
			t.Fatalf("MaskAll must not be skippable by shard %d", w)
		}
	}
}

func TestSummaryResetKeepsCtlCapacity(t *testing.T) {
	var s Summary
	s.Mask = MaskAll
	for i := 0; i < 10; i++ {
		s.AddCtl(i)
	}
	c := cap(s.Ctl)
	s.Reset()
	if s.Mask != 0 || len(s.Ctl) != 0 {
		t.Fatalf("Reset left %+v", s)
	}
	if cap(s.Ctl) != c {
		t.Fatalf("Reset dropped Ctl capacity: %d -> %d", c, cap(s.Ctl))
	}
}

// BenchmarkWorkerSkipScan is the fast-path counterpart of
// BenchmarkWorkerScan: the same 4096-event batch, but skipped via its
// summary — the worker touches only the structure-event offsets.
func BenchmarkWorkerSkipScan(b *testing.B) {
	batch := &Batch{Ev: make([]Event, 0, 4096)}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4096; i++ {
		if i%128 == 0 {
			batch.Sum.AddCtl(len(batch.Ev))
			batch.Ev = append(batch.Ev, Ctl(OpSync))
			continue
		}
		ev := Access(OpWrite, rng.Uint64()%(1<<24), 8)
		batch.Sum.Mask |= AccessMask(ev, 16, 4)
		batch.Ev = append(batch.Ev, ev)
	}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, off := range batch.Sum.Ctl {
			sink += uint64(batch.Ev[off].EvOp())
		}
	}
	_ = sink
}
