package evstream

import "sync"

// BcastRing is a bounded single-producer/multi-consumer broadcast ring:
// every published message is delivered to every consumer, in publish order.
// It is the fan-out half of the stage-graph pipeline — the label stage
// publishes each labeled batch once, and all shard workers scan the same
// batch concurrently — replacing the per-shard copy-and-route rings the
// sequencer used to feed.
//
// Delivery is cursor-based: consumer i advances its own cursor with
// Next(i), so a slot is logically consumed only once the slowest consumer
// has passed it. Reclamation is refcount-based: each slot starts with one
// reference per consumer, Release(i) drops consumer i's reference to the
// slot it most recently took, and the last release recycles the message
// through the onFree callback. Publish blocks while its target slot still
// holds references (backpressure on the slowest consumer), bounding the
// pipeline at depth in-flight messages.
//
// Exactly one goroutine may call Publish/Close; consumer index i must be
// used by exactly one goroutine at a time, alternating Next(i)/Release(i).
// onFree runs outside the ring lock, on whichever consumer goroutine
// dropped the last reference — possibly concurrently for different slots.
type BcastRing[M any] struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	slots    []bcastSlot[M]
	tail     uint64   // absolute sequence of the next publish
	cursors  []uint64 // per-consumer absolute sequence of the next read
	released []uint64 // per-consumer absolute sequence of the next release
	waits    []uint64 // per-consumer blocking episodes in Next
	closed   bool
	onFree   func(M)
	stats    Stats
}

type bcastSlot[M any] struct {
	m    M
	refs int // consumers that have not yet released this slot
}

// NewBcastRing returns a broadcast ring of depth slots feeding consumers
// readers. onFree, if non-nil, receives each message once after the last
// consumer releases it; it must be safe to call from any consumer
// goroutine. depth and consumers are clamped to at least 1.
func NewBcastRing[M any](depth, consumers int, onFree func(M)) *BcastRing[M] {
	if depth < 1 {
		depth = 1
	}
	if consumers < 1 {
		consumers = 1
	}
	r := &BcastRing[M]{
		slots:    make([]bcastSlot[M], depth),
		cursors:  make([]uint64, consumers),
		released: make([]uint64, consumers),
		waits:    make([]uint64, consumers),
		onFree:   onFree,
	}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

// Consumers returns the number of consumer cursors.
func (r *BcastRing[M]) Consumers() int { return len(r.cursors) }

// Publish broadcasts m to every consumer, blocking while the target slot is
// still referenced — i.e. until the slowest consumer is fewer than depth
// messages behind and has released the slot's previous occupant. It reports
// false — and drops m without delivering it — when the ring was closed,
// including while Publish was blocked waiting for the slot: during an early
// teardown (a consumer aborting mid-stream) Close must unblock a stuck
// producer rather than strand it, and the producer uses the false return to
// unwind and recycle what it still holds.
func (r *BcastRing[M]) Publish(m M) (ok bool) {
	r.mu.Lock()
	slot := &r.slots[r.tail%uint64(len(r.slots))]
	for slot.refs > 0 && !r.closed {
		r.stats.ProducerWaits++
		r.notFull.Wait()
	}
	if r.closed {
		r.mu.Unlock()
		return false
	}
	slot.m = m
	slot.refs = len(r.cursors)
	r.tail++
	r.stats.BatchesPublished++
	r.notEmpty.Broadcast()
	r.mu.Unlock()
	return true
}

// Close signals end-of-stream. Consumers drain the messages already
// published, then Next reports ok=false.
func (r *BcastRing[M]) Close() {
	r.mu.Lock()
	r.closed = true
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
}

// Next returns the oldest message consumer i has not yet taken, blocking
// while none is available. ok is false once the ring is closed and consumer
// i has taken everything published before Close.
func (r *BcastRing[M]) Next(i int) (m M, ok bool) {
	r.mu.Lock()
	for r.cursors[i] == r.tail && !r.closed {
		r.stats.ConsumerWaits++
		r.waits[i]++
		r.notEmpty.Wait()
	}
	if r.cursors[i] == r.tail { // closed and drained for this consumer
		r.mu.Unlock()
		return m, false
	}
	m = r.slots[r.cursors[i]%uint64(len(r.slots))].m
	r.cursors[i]++
	r.mu.Unlock()
	return m, true
}

// Release drops consumer i's reference to the message it most recently took
// with Next. The last consumer to release a slot recycles its message
// through onFree and unblocks a waiting Publish. Releasing more slots than
// taken panics.
func (r *BcastRing[M]) Release(i int) {
	r.mu.Lock()
	if r.released[i] >= r.cursors[i] {
		r.mu.Unlock()
		panic("evstream: Release without a matching Next on BcastRing")
	}
	slot := &r.slots[r.released[i]%uint64(len(r.slots))]
	r.released[i]++
	slot.refs--
	last := slot.refs == 0
	var m M
	if last {
		m = slot.m
		var zero M
		slot.m = zero
		r.notFull.Signal()
	}
	r.mu.Unlock()
	if last && r.onFree != nil {
		r.onFree(m)
	}
}

// Stats returns a snapshot of the ring counters. Call it after the pipeline
// has drained for exact values. Stats.ConsumerWaits aggregates every
// consumer; use ConsumerWaits(i) to attribute waits to one consumer (a
// uniformly waiting fleet means the producer is the bottleneck, a single
// low-wait outlier is the straggler the rest are pacing behind).
func (r *BcastRing[M]) Stats() Stats {
	r.mu.Lock()
	s := r.stats
	r.mu.Unlock()
	return s
}

// Reset re-arms a closed (or idle) broadcast ring for another run: slots,
// cursors, release marks, and counters all clear and the closed flag drops.
// Messages still referenced in slots — possible only after an aborted run —
// are recycled through onFree before being dropped. Reset must not race
// with an active producer or any consumer.
func (r *BcastRing[M]) Reset() {
	r.mu.Lock()
	var orphans []M
	for i := range r.slots {
		if r.slots[i].refs > 0 {
			orphans = append(orphans, r.slots[i].m)
		}
		r.slots[i] = bcastSlot[M]{}
	}
	r.tail = 0
	clear(r.cursors)
	clear(r.released)
	clear(r.waits)
	r.closed = false
	r.stats = Stats{}
	r.mu.Unlock()
	if r.onFree != nil {
		for _, m := range orphans {
			r.onFree(m)
		}
	}
}

// ConsumerWaits returns the number of blocking episodes consumer i spent in
// Next waiting for a publish.
func (r *BcastRing[M]) ConsumerWaits(i int) uint64 {
	r.mu.Lock()
	w := r.waits[i]
	r.mu.Unlock()
	return w
}
