package evstream

import "sync"

// Multi-producer chunk ingest for the parallel-detect executor. Where the
// serial Async pipeline has one mutator goroutine feeding one SPSC Ring,
// the parallel executor runs one goroutine per spawned task, and the set
// of live producers changes as the program forks and joins — a fixed
// per-producer ring cannot hold them. Instead every task goroutine fills
// Batches from a shared BatchPool and hands completed Chunks to one
// bounded TaskQueue; the merge stage drains the queue and reorders the
// chunks into the serial projection (internal/stage.Reorder).
//
// A Chunk is a contiguous run of ONE strand's access events: structure
// transitions are never in-band — they are the chunk terminator (End),
// so the merge can both reorder by task linkage and synthesize the
// serial spawn/restore/sync stream without decoding a single event.

// ChunkEnd says why a chunk was cut, which doubles as the merge stage's
// traversal instruction (see stage.Reorder).
type ChunkEnd uint8

const (
	// ChunkCut means the batch filled mid-strand; the same strand
	// continues in the task's next chunk. No structure event.
	ChunkCut ChunkEnd = iota
	// ChunkSpawn means the strand ended at a Spawn: Child names the new
	// task, whose chunk 0 is next in serial order; the task resumes at
	// its next chunk index after the child's subtree completes.
	ChunkSpawn
	// ChunkSync means the strand ended at a strand-creating Sync; the
	// task's next chunk continues after the join (no-op syncs are elided
	// by the executor, exactly as on the serial paths).
	ChunkSync
	// ChunkTask means the task's final strand ended (the implicit final
	// sync already ran): serial order restores the parent's continuation.
	ChunkTask
	// ChunkRoot means the root task's final strand ended: the stream is
	// complete. Like ChunkTask but with no parent to restore.
	ChunkRoot
)

// Chunk is one strand segment from one executor task: access events only,
// plus the terminator and the task linkage the merge reorders by. Task
// identities are matching keys, never an ordering — they come from a
// racing atomic counter, and determinism is owed entirely to the
// structure-driven reorder walk.
type Chunk struct {
	Batch *Batch
	Task  uint64 // identity of the emitting task
	Idx   uint32 // chunk index within the task (0, 1, ...)
	End   ChunkEnd
	Child uint64 // task identity of the spawned child (ChunkSpawn only)
}

// TaskQueue is the bounded multi-producer/single-consumer chunk queue.
// Any number of executor goroutines Publish; one merge stage Drains.
// Backpressure mirrors Ring: a full queue blocks producers until the
// merge catches up, and Close unblocks everyone for teardown.
type TaskQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []Chunk
	head     int
	count    int
	closed   bool
	stats    Stats
}

// NewTaskQueue returns a queue holding at most depth in-flight chunks
// (clamped to at least 1).
func NewTaskQueue(depth int) *TaskQueue {
	if depth < 1 {
		depth = 1
	}
	q := &TaskQueue{buf: make([]Chunk, depth)}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// Publish enqueues one chunk, blocking while the queue is full. It reports
// false — and leaves the chunk with the caller — when the queue was closed
// (teardown): the caller recycles the batch and keeps unwinding.
func (q *TaskQueue) Publish(c Chunk) bool {
	q.mu.Lock()
	for q.count == len(q.buf) && !q.closed {
		q.stats.ProducerWaits++
		q.notFull.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.buf[(q.head+q.count)%len(q.buf)] = c
	q.count++
	q.stats.BatchesPublished++
	if c.Batch != nil {
		q.stats.EventsPublished += uint64(c.Batch.Len())
		q.stats.StreamBytes += uint64(c.Batch.WireBytes())
	}
	q.notEmpty.Signal()
	q.mu.Unlock()
	return true
}

// Drain appends every queued chunk to dst and returns it, blocking until
// at least one chunk is available. Chunks already queued at Close are
// still delivered; Drain reports ok=false only once the queue is closed
// and empty.
func (q *TaskQueue) Drain(dst []Chunk) ([]Chunk, bool) {
	q.mu.Lock()
	for q.count == 0 && !q.closed {
		q.stats.ConsumerWaits++
		q.notEmpty.Wait()
	}
	if q.count == 0 { // closed and drained
		q.mu.Unlock()
		return dst, false
	}
	for q.count > 0 {
		dst = append(dst, q.buf[q.head])
		q.buf[q.head] = Chunk{}
		q.head = (q.head + 1) % len(q.buf)
		q.count--
	}
	q.notFull.Broadcast()
	q.mu.Unlock()
	return dst, true
}

// Close signals end-of-stream (or teardown). Safe to call more than once
// and from any goroutine; blocked producers and the consumer unblock.
func (q *TaskQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	q.mu.Unlock()
}

// Reset re-arms a closed (or idle) queue for another run: pending chunks
// are dropped (an aborted run's leftovers — their batches belong to the
// BatchPool, which survives independently), counters zero, and the closed
// flag clears. Must not race with active producers or the consumer.
func (q *TaskQueue) Reset() {
	q.mu.Lock()
	for q.count > 0 {
		q.buf[q.head] = Chunk{}
		q.head = (q.head + 1) % len(q.buf)
		q.count--
	}
	q.head = 0
	q.closed = false
	q.stats = Stats{}
	q.mu.Unlock()
}

// Stats returns a snapshot of the queue counters. EventsPublished and
// StreamBytes cover the chunks' access events; the merge stage accounts
// separately for the structure events it synthesizes from terminators.
func (q *TaskQueue) Stats() Stats {
	q.mu.Lock()
	s := q.stats
	q.mu.Unlock()
	return s
}

// BatchPool is a concurrency-safe batch allocator shared by all executor
// goroutines and the merge stage — the parallel sibling of Ring's
// integrated free list. Get never blocks (it allocates on a dry pool);
// Put bounds the free list so teardown bursts cannot pin memory.
type BatchPool struct {
	mu       sync.Mutex
	free     []*Batch
	batchCap int
	compact  bool
	limit    int
	reused   uint64
}

// NewBatchPool returns a pool of batches with the given event capacity
// and encoding, keeping at most limit free batches (clamped to at least
// 1; batchCap likewise).
func NewBatchPool(limit, batchCap int, compact bool) *BatchPool {
	if limit < 1 {
		limit = 1
	}
	if batchCap < 1 {
		batchCap = 1
	}
	return &BatchPool{batchCap: batchCap, compact: compact, limit: limit}
}

// Compact reports which storage form the pool's batches use.
func (p *BatchPool) Compact() bool { return p.compact }

// Get returns an empty batch — recycled when possible — with the same
// geometry Ring.Get hands out (batchCap events fixed, 4*batchCap bytes
// compact).
func (p *BatchPool) Get() *Batch {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reused++
		p.mu.Unlock()
		b.Reset()
		return b
	}
	p.mu.Unlock()
	if p.compact {
		return &Batch{Buf: make([]byte, 0, 4*p.batchCap), compact: true}
	}
	return &Batch{Ev: make([]Event, 0, p.batchCap)}
}

// Put returns a batch to the pool; beyond the limit it is dropped for the
// garbage collector. Safe from any goroutine (the broadcast ring's last
// Release recycles from whichever worker finishes last).
func (p *BatchPool) Put(b *Batch) {
	if b == nil || (cap(b.Ev) == 0 && cap(b.Buf) == 0) {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.limit {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// Reset re-arms the pool for another run: the free list — the pool's warm
// capacity — is retained untouched, only the reuse counter rewinds so each
// run's Reused figure stands alone.
func (p *BatchPool) Reset() {
	p.mu.Lock()
	p.reused = 0
	p.mu.Unlock()
}

// Reused returns how many Gets were served from the free list.
func (p *BatchPool) Reused() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reused
}
