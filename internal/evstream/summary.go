package evstream

// Summary is a batch header: a conservative digest of a batch's access
// events, computed cheaply by the producer as it appends them, that lets a
// downstream shard worker decide — without scanning the batch — whether any
// piece of any access event can map to its shard.
//
// The mechanism is the paper's interval-coalescing idea lifted one level
// up: just as a coalesced interval summarizes many word accesses, the mask
// summarizes a whole batch of accesses by the set of shards their pages can
// hash to. A worker whose bit is clear takes the fast path — it jumps
// through Ctl to replay only the structure events (advancing its strand
// tracker and flushing strand boundaries) and never touches the access
// events.
//
// Skipping is exact, not approximate: a clear bit proves that no piece of
// any access in the batch maps to this shard, because
//
//   - an access spanning at most two pages contributes exactly the bits of
//     PickShard(first page) and PickShard(last page), and PageSplit emits
//     pieces on exactly those pages;
//   - an access spanning more than two pages (whose middle pages could hash
//     anywhere) contributes MaskAll, forcing every worker to scan;
//   - shard indices above 63 fold into bit shard%64, so bit b covers every
//     shard congruent to b — a clear bit b still proves "no page hashes to
//     any shard ≡ b (mod 64)", a superset of what worker b needs.
//
// The structure events replayed through Ctl are the batch's complete
// spawn/restore/sync sequence, so the skipping worker's tracker and strand
// flushes stay byte-identical to a full scan.
type Summary struct {
	// Mask is the shard-occupancy bitmask: bit (shard & 63) is set when
	// some access event in the batch may touch a page PickShard maps to
	// that shard. The zero mask means "no access event can touch any
	// shard" — every worker may skip. MaskAll disables skipping, and is
	// also what unsummarized batches carry.
	Mask uint64
	// Ctl holds the batch-relative offsets of the structure events
	// (OpSpawn/OpRestore/OpSync), in stream order. The offset unit follows
	// the batch's storage form: an event index into Ev for fixed batches, a
	// byte offset of the event's tag byte into Buf for compact batches —
	// Batch.AppendCtl produces the right unit and Batch.CtlOp resolves it,
	// so skip-scan replay never needs to know which form it got.
	Ctl []int32
}

// MaskAll is the all-shards mask: no worker may skip the batch. It is the
// fallback for wide ranges and the fixed stamp when summaries are disabled.
const MaskAll = ^uint64(0)

// Reset clears the summary for batch reuse, keeping Ctl's capacity.
func (s *Summary) Reset() {
	s.Mask = 0
	s.Ctl = s.Ctl[:0]
}

// AddCtl records a structure event at batch offset i.
func (s *Summary) AddCtl(i int) { s.Ctl = append(s.Ctl, int32(i)) }

// SkippableBy reports whether the worker for shard may skip the batch's
// access events: its mask bit is clear, which proves no piece of any access
// in the batch maps to the shard (see the type comment for why the fold to
// bit shard%64 preserves that proof).
func (s *Summary) SkippableBy(shard int) bool {
	return s.Mask&(1<<(uint(shard)&63)) == 0
}

// AccessMask returns the summary-mask contribution of one access or range
// event for an n-shard run: the bits of the first and last page's shards,
// or MaskAll when the event spans more than two pages (its middle pages
// could hash to any shard) or wraps the address space (PageSplit rejects
// such events; the stamp stays conservative rather than guessing).
func AccessMask(ev Event, pageBits uint, shards int) uint64 {
	var size uint64
	switch ev.EvOp() {
	case OpRead, OpWrite:
		size = ev.Size()
	case OpReadRange, OpWriteRange:
		size = rangeBytes(ev)
	default:
		panic("evstream: AccessMask on a non-access event")
	}
	return SpanMask(ev.Addr(), size, pageBits, shards)
}

// SpanMask is AccessMask over a raw (address, total size) span, for
// producers that stamp summaries from the hook operands before encoding
// the event — the compact encoding has no Event value to hand AccessMask.
func SpanMask(addr, size uint64, pageBits uint, shards int) uint64 {
	first := addr >> pageBits
	last := first
	if size > 1 {
		end := addr + size - 1
		if end < addr {
			return MaskAll
		}
		last = end >> pageBits
	}
	if last-first > 1 {
		return MaskAll
	}
	return 1<<(uint(PickShard(first, shards))&63) | 1<<(uint(PickShard(last, shards))&63)
}
