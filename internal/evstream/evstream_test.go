package evstream

import (
	"testing"
	"time"
)

func TestRingDeliversInOrder(t *testing.T) {
	r := NewRing(4, 8)
	const n = 1000
	done := make(chan []uint64)
	go func() {
		var got []uint64
		for {
			b, ok := r.Next()
			if !ok {
				break
			}
			for _, ev := range b.Ev {
				got = append(got, ev.Addr())
			}
			r.Recycle(b)
		}
		done <- got
	}()
	b := r.Get()
	for i := uint64(0); i < n; i++ {
		if len(b.Ev) == cap(b.Ev) {
			r.Publish(b)
			b = r.Get()
		}
		b.Ev = append(b.Ev, Access(OpRead, i, 4))
	}
	r.Publish(b)
	r.Close()
	got := <-done
	if len(got) != n {
		t.Fatalf("received %d events, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("event %d has addr %d: order not preserved", i, v)
		}
	}
}

func TestRingBackpressureBlocksProducer(t *testing.T) {
	r := NewRing(1, 1)
	r.Publish(&Batch{Ev: []Event{Ctl(OpRead)}}) // fills the ring
	published := make(chan struct{})
	go func() {
		r.Publish(&Batch{Ev: []Event{Ctl(OpWrite)}}) // must block until Next drains a slot
		close(published)
	}()
	select {
	case <-published:
		t.Fatal("second Publish did not block on a full ring")
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok := r.Next(); !ok {
		t.Fatal("Next on a full ring reported done")
	}
	select {
	case <-published:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish still blocked after Next freed a slot")
	}
	if s := r.Stats(); s.ProducerWaits == 0 {
		t.Error("ProducerWaits not counted")
	}
	r.Close()
}

func TestRingEmptyBatchesFlow(t *testing.T) {
	r := NewRing(2, 4)
	r.Publish(r.Get()) // empty batch
	r.Publish(nil)     // nil batch is also legal
	r.Close()
	for i := 0; i < 2; i++ {
		b, ok := r.Next()
		if !ok {
			t.Fatalf("batch %d: premature done", i)
		}
		if b != nil && len(b.Ev) != 0 {
			t.Fatalf("batch %d has %d events, want 0", i, len(b.Ev))
		}
		r.Recycle(b)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("Next after close+drain reported a batch")
	}
}

func TestRingCloseUnblocksConsumer(t *testing.T) {
	r := NewRing(2, 4)
	done := make(chan bool)
	go func() {
		_, ok := r.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned a batch from an empty closed ring")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the consumer")
	}
}

func TestRingReusesBatches(t *testing.T) {
	r := NewRing(2, 16)
	for i := 0; i < 50; i++ {
		b := r.Get()
		b.Ev = append(b.Ev, Access(OpRead, uint64(i), 4))
		b.Sum.Mask = MaskAll
		b.Sum.AddCtl(0)
		r.Publish(b)
		got, ok := r.Next()
		if !ok || len(got.Ev) != 1 {
			t.Fatalf("round %d: bad batch", i)
		}
		r.Recycle(got)
	}
	s := r.Stats()
	if s.BatchesReused < 45 {
		t.Errorf("BatchesReused = %d over 50 rounds: free list not working", s.BatchesReused)
	}
	if s.EventsPublished != 50 || s.BatchesPublished != 50 {
		t.Errorf("stats = %+v, want 50 events in 50 batches", s)
	}
	// Get must hand back reused batches with a cleared summary.
	b := r.Get()
	if b.Sum.Mask != 0 || len(b.Sum.Ctl) != 0 {
		t.Errorf("reused batch summary not reset: %+v", b.Sum)
	}
	r.Close()
}

// TestStatsCountLogicalEventsAndWireBytes pins the meaning of the stream
// counters across encodings: EventsPublished counts logical events no matter
// how a batch stores them, and StreamBytes counts what the batches occupy on
// the wire — 16 bytes per event fixed, len(Buf) compact. The two must never
// drift toward "slots in a batch" again when an encoding changes.
func TestStatsCountLogicalEventsAndWireBytes(t *testing.T) {
	fixed := NewRing(2, 8)
	fb := fixed.Get()
	fb.AppendCtl(OpSpawn)
	fb.AppendAccess(OpRead, 0x1000, 4)
	fb.AppendRange(OpWriteRange, 0x2000, 16, 8)
	fixed.Publish(fb)
	if s := fixed.Stats(); s.EventsPublished != 3 || s.StreamBytes != 48 {
		t.Errorf("fixed ring stats = %d events, %d bytes; want 3 events, 48 bytes", s.EventsPublished, s.StreamBytes)
	}
	fixed.Close()

	compact := NewCompactRing(2, 8)
	cb := compact.Get()
	cb.AppendCtl(OpSpawn)
	cb.AppendAccess(OpRead, 0x1000, 4)
	cb.AppendRange(OpWriteRange, 0x2000, 16, 8)
	wire := uint64(cb.WireBytes()) // seals the staged block
	compact.Publish(cb)
	if s := compact.Stats(); s.EventsPublished != 3 || s.StreamBytes != wire {
		t.Errorf("compact ring stats = %d events, %d bytes; want 3 events, %d bytes", s.EventsPublished, s.StreamBytes, wire)
	}
	if s := compact.Stats(); s.StreamBytes >= 48 {
		t.Errorf("compact batch occupies %d wire bytes, want under the fixed 48", s.StreamBytes)
	}
	compact.Close()
}

func TestPublishAfterCloseReportsFalse(t *testing.T) {
	r := NewRing(2, 4)
	if !r.Publish(&Batch{Ev: []Event{Ctl(OpRead)}}) {
		t.Fatal("Publish on an open ring reported false")
	}
	r.Close()
	if r.Publish(&Batch{Ev: []Event{Ctl(OpRead)}}) {
		t.Fatal("Publish after Close reported ok")
	}
}

func TestCloseUnblocksBlockedPublish(t *testing.T) {
	r := NewRing(1, 1)
	r.Publish(&Batch{Ev: []Event{Ctl(OpRead)}}) // fills the ring
	result := make(chan bool)
	go func() {
		result <- r.Publish(&Batch{Ev: []Event{Ctl(OpWrite)}}) // blocks on full ring
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case ok := <-result:
		if ok {
			t.Fatal("Publish unblocked by Close reported ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the stuck Publish")
	}
}

func TestNewRingClampsArguments(t *testing.T) {
	r := NewRing(0, -3)
	if r.BatchCap() != 1 {
		t.Errorf("BatchCap = %d, want clamp to 1", r.BatchCap())
	}
	r.Publish(&Batch{Ev: []Event{Ctl(OpRead)}})
	if b, ok := r.Next(); !ok || len(b.Ev) != 1 {
		t.Error("clamped ring does not deliver")
	}
	r.Close()
}

func TestRangeRejectsOversizeOperands(t *testing.T) {
	// In-range operands at the field boundaries must round-trip exactly.
	ev := Range(OpReadRange, 64, MaxRangeCount, MaxRangeElem)
	if ev.Count() != MaxRangeCount || ev.Elem() != MaxRangeElem {
		t.Fatalf("boundary range decoded as count=%d elem=%d", ev.Count(), ev.Elem())
	}
	for _, tc := range []struct {
		name  string
		count int
		elem  uint64
	}{
		{"negative count", -1, 8},
		{"oversize elem", 4, MaxRangeElem + 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Range did not panic", tc.name)
				}
			}()
			Range(OpReadRange, 0, tc.count, tc.elem)
		}()
	}
}
