package coalesce

import "testing"

// FuzzSetRangeFlush decodes the input as SetRange calls and checks the
// flushed intervals against the naive word-set model.
func FuzzSetRangeFlush(f *testing.F) {
	f.Add([]byte{0, 16, 1, 32, 0, 16})
	f.Add([]byte{255, 255, 0, 1, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := New()
		n := naiveSet{}
		for i := 0; i+1 < len(data); i += 2 {
			addr := uint64(data[i]) << 3
			size := uint64(data[i+1])
			b.SetRange(addr, size)
			n.setRange(addr, size)
			if i%6 == 0 {
				b.Set(addr)
				n.setRange(addr, 4)
			}
		}
		got, words := flushAll(b)
		want := n.intervals()
		if len(got) != len(want) {
			t.Fatalf("got %d intervals %v, want %d %v", len(got), got, len(want), want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("interval %d = %v, want %v", i, got[i], want[i])
			}
		}
		if words != uint64(len(n)) {
			t.Fatalf("words = %d, want %d", words, len(n))
		}
		// The structure must be clean for reuse.
		if again, w := flushAll(b); len(again) != 0 || w != 0 {
			t.Fatal("second flush not empty")
		}
	})
}
