// Package coalesce implements the runtime-coalescing bit hashmap of §3.2.
//
// While a strand executes, every word it accesses sets one bit in a
// two-level page-table-like structure: the address prefix selects a page,
// the suffix a bit within the page's array of 64-bit integers (one bit per
// four-byte word). Ranges are set with bit-parallel mask operations. The
// structure remembers which pages and which 64-bit slots were touched, so
// that when the strand finishes, Flush can walk exactly the touched slots in
// address order, coalesce set bits into maximal intervals (merging across
// slot and page boundaries), report them, and clear the bits for the next
// strand — all in time proportional to the strand's own footprint.
//
// The first level is an open-addressed page directory (internal/pagedir)
// rather than a Go map, and Flush retires every page to a per-BitSet
// freelist: in steady state a strand's accesses allocate nothing, because
// the next strand pops the same zeroed pages back off the freelist.
//
// A detector uses two BitSets per strand: one for reads, one for writes.
package coalesce

import (
	"math/bits"
	"slices"

	"stint/internal/mem"
	"stint/internal/pagedir"
)

// PageBytesBits is the log2 of the shadow-page size in bytes. Flush never
// merges intervals across a page boundary, so every reported interval is
// contained in one page — the invariant the sharded pipeline's page-hash
// router and the per-page access history both rely on. It matches the
// shadow-table page size.
const PageBytesBits = 16

// PageBytes is the shadow-page size in bytes (1 << PageBytesBits).
const PageBytes = 1 << PageBytesBits

const (
	pageBytesBits = PageBytesBits
	wordBits      = 2
	pageWordBits  = pageBytesBits - wordBits
	pageWords     = 1 << pageWordBits
	slotBits      = 6 // 64 words per slot
	slotsPerPage  = pageWords >> slotBits
	slotWordMask  = (1 << slotBits) - 1
)

// page is the second-level table: one bit per word over 64 KiB of address
// space, plus the dedup list of touched slots.
type page struct {
	bits    [slotsPerPage]uint64
	touched []int32
	inList  bool
}

// BitSet tracks the set of words accessed by the current strand.
type BitSet struct {
	dir      pagedir.Dir[page]
	free     []*page // retired zeroed pages, reused by pageFor
	allocs   int     // pages ever allocated (live + free)
	touched  []uint64
	lastIdx  uint64
	lastPage *page
}

// New returns an empty BitSet.
func New() *BitSet {
	return &BitSet{}
}

// pageFor returns the page for the given page index, reusing a retired page
// or allocating lazily.
func (b *BitSet) pageFor(idx uint64) *page {
	if b.lastPage != nil && idx == b.lastIdx {
		return b.lastPage
	}
	p := b.dir.Get(idx)
	if p == nil {
		if n := len(b.free); n > 0 {
			p = b.free[n-1]
			b.free[n-1] = nil
			b.free = b.free[:n-1]
		} else {
			p = &page{}
			b.allocs++
		}
		b.dir.Put(idx, p)
	}
	b.lastIdx, b.lastPage = idx, p
	return p
}

// SetRange marks every word overlapping the byte range [addr, addr+size) as
// accessed. size 0 is a no-op.
func (b *BitSet) SetRange(addr mem.Addr, size uint64) {
	if size == 0 {
		return
	}
	w0 := addr >> wordBits
	w1 := (addr + size + mem.WordSize - 1) >> wordBits
	// Fast path: the whole range lies in one 64-word slot of the cached
	// page — the common case for per-access hooks in hot loops.
	if p := b.lastPage; p != nil && w0>>pageWordBits == b.lastIdx && (w1-1)>>pageWordBits == b.lastIdx {
		lo := w0 & (pageWords - 1)
		hi := (w1-1)&(pageWords-1) + 1
		slot := lo >> slotBits
		if (hi-1)>>slotBits == slot {
			if !p.inList {
				p.inList = true
				b.touched = append(b.touched, b.lastIdx)
			}
			mask := maskRange(lo&slotWordMask, (hi-1)&slotWordMask+1)
			if p.bits[slot] == 0 {
				p.touched = append(p.touched, int32(slot))
			}
			p.bits[slot] |= mask
			return
		}
	}
	for w0 < w1 {
		pageIdx := w0 >> pageWordBits
		p := b.pageFor(pageIdx)
		if !p.inList {
			p.inList = true
			b.touched = append(b.touched, pageIdx)
		}
		// Word range covered within this page.
		pageEnd := (pageIdx + 1) << pageWordBits
		end := w1
		if end > pageEnd {
			end = pageEnd
		}
		lo := w0 & (pageWords - 1)
		hi := end - (pageIdx << pageWordBits)
		// Set bits [lo, hi) slot by slot with full-width masks.
		for lo < hi {
			slot := lo >> slotBits
			bitLo := lo & slotWordMask
			bitHi := uint64(64)
			if slotEnd := (slot + 1) << slotBits; slotEnd > hi {
				bitHi = hi & slotWordMask
				if bitHi == 0 {
					bitHi = 64
				}
			}
			mask := maskRange(bitLo, bitHi)
			if p.bits[slot] == 0 {
				p.touched = append(p.touched, int32(slot))
			}
			p.bits[slot] |= mask
			lo = (slot << slotBits) + bitHi
		}
		w0 = end
	}
}

// maskRange builds a 64-bit mask with bits [lo, hi) set; hi may be 64.
func maskRange(lo, hi uint64) uint64 {
	m := ^uint64(0) << lo
	if hi < 64 {
		m &^= ^uint64(0) << hi
	}
	return m
}

// Set marks the single word containing addr — the hot path for word-
// granularity hooks, kept minimal so the per-access cost of runtime
// coalescing stays far below a shadow-hashmap operation.
func (b *BitSet) Set(addr mem.Addr) {
	w := addr >> wordBits
	p := b.lastPage
	if p == nil || w>>pageWordBits != b.lastIdx {
		b.SetRange(addr, mem.WordSize)
		return
	}
	if !p.inList {
		p.inList = true
		b.touched = append(b.touched, b.lastIdx)
	}
	lo := w & (pageWords - 1)
	slot := lo >> slotBits
	if p.bits[slot] == 0 {
		p.touched = append(p.touched, int32(slot))
	}
	p.bits[slot] |= 1 << (lo & slotWordMask)
}

// sortOrdered sorts the per-strand dedup lists. Strands commonly touch a
// handful of pages/slots, so the ≤8-element case uses a branchy insertion
// sort; larger lists fall through to the non-reflective slices.Sort (the
// seed's sort.Slice paid an interface conversion and a closure allocation
// per call, on the per-strand path).
func sortOrdered[T uint64 | int32](s []T) {
	if len(s) <= 8 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	slices.Sort(s)
}

// Flush reports every maximal page-contained interval of set words in
// address order as (startByteAddr, byteLen) and clears the structure for
// the next strand. Runs are merged across slot boundaries within a page but
// never across a page boundary: an access straddling pages is reported as
// one interval per page, so every interval can be routed to — and its
// history kept by — a single shadow page. It returns the total number of
// distinct words that were set, i.e. the strand's deduplicated footprint.
// All pages are retired to the freelist on the way out: their bits are zero
// again, so the next strand can reuse them for any page index without
// reinitialization.
func (b *BitSet) Flush(emit func(start mem.Addr, size uint64)) (words uint64) {
	if len(b.touched) == 0 {
		return 0
	}
	sortOrdered(b.touched)
	var pendStart, pendEnd uint64 // pending interval in word units
	havePending := false
	for _, pageIdx := range b.touched {
		p := b.dir.Get(pageIdx)
		slots := p.touched
		sortOrdered(slots)
		base := pageIdx << pageWordBits
		for _, slot := range slots {
			v := p.bits[slot]
			p.bits[slot] = 0
			slotBase := base + uint64(slot)<<slotBits
			for v != 0 {
				tz := uint64(bits.TrailingZeros64(v))
				run := uint64(bits.TrailingZeros64(^(v >> tz)))
				if tz+run >= 64 {
					v = 0
				} else {
					v &^= maskRange(tz, tz+run)
				}
				s, e := slotBase+tz, slotBase+tz+run
				words += run
				if havePending && s == pendEnd {
					pendEnd = e
					continue
				}
				if havePending {
					emit(pendStart<<wordBits, (pendEnd-pendStart)<<wordBits)
				}
				pendStart, pendEnd, havePending = s, e, true
			}
		}
		p.touched = p.touched[:0]
		p.inList = false
		// Page boundary: emit the pending run rather than letting it merge
		// with the next page's first run.
		if havePending {
			emit(pendStart<<wordBits, (pendEnd-pendStart)<<wordBits)
			havePending = false
		}
	}
	if havePending {
		emit(pendStart<<wordBits, (pendEnd-pendStart)<<wordBits)
	}
	b.touched = b.touched[:0]
	// Every page is zeroed now; retire them all so the next strand reuses
	// them instead of allocating, and drop the cache that pointed into the
	// directory.
	b.dir.Reset(func(p *page) { b.free = append(b.free, p) })
	b.lastIdx, b.lastPage = 0, nil
	return words
}

// Reset discards any recorded accesses without reporting them and retires
// every page to the freelist, retaining all allocated capacity. After a
// completed strand Flush leaves the structure clean and Reset is a cheap
// no-op walk; its real job is recovering from an aborted run that died
// mid-strand with bits still set.
func (b *BitSet) Reset() {
	b.dir.Reset(func(p *page) {
		if p.inList || len(p.touched) > 0 {
			p.bits = [slotsPerPage]uint64{}
			p.touched = p.touched[:0]
			p.inList = false
		}
		b.free = append(b.free, p)
	})
	b.touched = b.touched[:0]
	b.lastIdx, b.lastPage = 0, nil
}

// Pages returns the number of second-level pages ever allocated (live plus
// retired), a proxy for the structure's footprint.
func (b *BitSet) Pages() int { return b.allocs }

// LivePages returns the number of pages currently in the directory (i.e.
// touched since the last Flush).
func (b *BitSet) LivePages() int { return b.dir.Len() }
