package coalesce

import (
	"math/rand"
	"testing"
)

// TestFlushCyclesMatchNaive runs many strand rounds — random ranges, then a
// Flush — over one BitSet, comparing every round's intervals against a
// fresh naive reference. This is the equivalence test for the open-addressed
// directory across growth, whole-directory Reset at flush time, and page
// reuse off the freelist.
func TestFlushCyclesMatchNaive(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		for round := 0; round < 50; round++ {
			n := naiveSet{}
			for i := 0; i < 40; i++ {
				// Drift the base so different rounds live on different
				// pages, forcing retired pages to be reused under new
				// page indices.
				base := uint64(round) << 15
				addr := (base + rng.Uint64()%(1<<19)) &^ 3
				size := uint64(rng.Intn(1024)) &^ 3
				b.SetRange(addr, size)
				n.setRange(addr, size)
			}
			ivs, words := flushAll(b)
			compare(t, ivs, n.intervals())
			if words != uint64(len(n)) {
				t.Fatalf("seed %d round %d: words = %d, want %d", seed, round, words, len(n))
			}
			if b.LivePages() != 0 {
				t.Fatalf("seed %d round %d: %d pages still live after flush", seed, round, b.LivePages())
			}
		}
	}
}

// TestFlushReusesPages pins the freelist behavior: a second strand with the
// same footprint must be served entirely from retired pages.
func TestFlushReusesPages(t *testing.T) {
	b := New()
	b.SetRange(0x00000, 64)
	b.SetRange(0x10000, 64)
	b.SetRange(0x20000, 64)
	flushAll(b)
	if b.Pages() != 3 {
		t.Fatalf("allocated %d pages, want 3", b.Pages())
	}
	// Different page indices, same footprint: no new allocations.
	b.SetRange(0x30000, 64)
	b.SetRange(0x40000, 64)
	b.SetRange(0x50000, 64)
	ivs, _ := flushAll(b)
	compare(t, ivs, [][2]uint64{{0x30000, 64}, {0x40000, 64}, {0x50000, 64}})
	if b.Pages() != 3 {
		t.Fatalf("second strand allocated new pages: %d total, want 3", b.Pages())
	}
}

// TestSortOrdered covers both the insertion-sort (≤8) and slices.Sort paths.
func TestSortOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 7, 8, 9, 64, 500} {
		s := make([]uint64, n)
		for i := range s {
			s[i] = rng.Uint64() % 1000
		}
		sortOrdered(s)
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d: %v", n, i, s)
			}
		}
	}
}
