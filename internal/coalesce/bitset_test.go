package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stint/internal/mem"
)

// flushAll collects the flushed intervals.
func flushAll(b *BitSet) (ivs [][2]uint64, words uint64) {
	words = b.Flush(func(start mem.Addr, size uint64) {
		ivs = append(ivs, [2]uint64{start, size})
	})
	return ivs, words
}

// naive tracks set words in a map for comparison.
type naiveSet map[uint64]bool

func (n naiveSet) setRange(addr, size uint64) {
	if size == 0 {
		return
	}
	w0 := addr >> 2
	w1 := (addr + size + 3) >> 2
	for w := w0; w < w1; w++ {
		n[w] = true
	}
}

// intervalsOf converts the naive set to maximal page-contained word
// intervals in order, mirroring Flush's contract: runs never cross a
// 64 KiB page boundary.
func (n naiveSet) intervals() [][2]uint64 {
	if len(n) == 0 {
		return nil
	}
	min, max := ^uint64(0), uint64(0)
	for w := range n {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	const pageWords = 1 << (pageBytesBits - wordBits)
	var out [][2]uint64
	var start uint64
	in := false
	flush := func(end uint64) {
		out = append(out, [2]uint64{start << 2, (end - start) << 2})
		in = false
	}
	for w := min; w <= max+1; w++ {
		if in && w%pageWords == 0 {
			flush(w)
		}
		if n[w] && !in {
			start, in = w, true
		} else if !n[w] && in {
			flush(w)
		}
	}
	if in {
		flush(max + 1)
	}
	return out
}

func compare(t *testing.T, got, want [][2]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d intervals %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEmptyFlush(t *testing.T) {
	b := New()
	ivs, words := flushAll(b)
	if len(ivs) != 0 || words != 0 {
		t.Fatalf("empty flush produced %v (%d words)", ivs, words)
	}
}

func TestSingleWord(t *testing.T) {
	b := New()
	b.Set(0x1000)
	ivs, words := flushAll(b)
	compare(t, ivs, [][2]uint64{{0x1000, 4}})
	if words != 1 {
		t.Fatalf("words = %d, want 1", words)
	}
}

func TestContiguousRangeOneCall(t *testing.T) {
	b := New()
	b.SetRange(0x1000, 256)
	ivs, words := flushAll(b)
	compare(t, ivs, [][2]uint64{{0x1000, 256}})
	if words != 64 {
		t.Fatalf("words = %d, want 64", words)
	}
}

func TestAdjacentCallsMerge(t *testing.T) {
	b := New()
	b.SetRange(0x1000, 16)
	b.SetRange(0x1010, 16) // touching
	ivs, _ := flushAll(b)
	compare(t, ivs, [][2]uint64{{0x1000, 32}})
}

func TestOverlappingCallsDeduplicate(t *testing.T) {
	b := New()
	b.SetRange(0x1000, 32)
	b.SetRange(0x1008, 32) // overlapping
	b.SetRange(0x1000, 32) // duplicate
	ivs, words := flushAll(b)
	compare(t, ivs, [][2]uint64{{0x1000, 0x28}})
	if words != 10 {
		t.Fatalf("words = %d, want 10 (deduplicated)", words)
	}
}

func TestDisjointRangesStaySplit(t *testing.T) {
	b := New()
	b.SetRange(0x2000, 8)
	b.SetRange(0x1000, 8)
	b.SetRange(0x3000, 8)
	ivs, _ := flushAll(b)
	compare(t, ivs, [][2]uint64{{0x1000, 8}, {0x2000, 8}, {0x3000, 8}})
}

func TestMergeAcrossSlotBoundary(t *testing.T) {
	b := New()
	// Words 62..65 straddle the 64-word slot boundary.
	b.SetRange(62*4, 4*4)
	ivs, _ := flushAll(b)
	compare(t, ivs, [][2]uint64{{62 * 4, 16}})
}

func TestSplitAtPageBoundary(t *testing.T) {
	b := New()
	pageBytes := uint64(1) << pageBytesBits
	b.SetRange(pageBytes-8, 16) // straddles two pages
	ivs, _ := flushAll(b)
	// Flush never merges across a page boundary: one interval per page.
	compare(t, ivs, [][2]uint64{{pageBytes - 8, 8}, {pageBytes, 8}})
	if b.Pages() != 2 {
		t.Fatalf("Pages() = %d, want 2", b.Pages())
	}
}

func TestLargeRangeSpanningManyPages(t *testing.T) {
	b := New()
	pageBytes := uint64(1) << pageBytesBits
	size := 3 * pageBytes // three full pages
	b.SetRange(0x10000, size)
	ivs, words := flushAll(b)
	compare(t, ivs, [][2]uint64{
		{0x10000, pageBytes},
		{0x10000 + pageBytes, pageBytes},
		{0x10000 + 2*pageBytes, pageBytes},
	})
	if words != size/4 {
		t.Fatalf("words = %d, want %d", words, size/4)
	}
}

func TestFlushClearsState(t *testing.T) {
	b := New()
	b.SetRange(0x1000, 64)
	flushAll(b)
	ivs, words := flushAll(b)
	if len(ivs) != 0 || words != 0 {
		t.Fatalf("second flush produced %v", ivs)
	}
	// And the structure is reusable for a different pattern.
	b.SetRange(0x5000, 8)
	ivs, _ = flushAll(b)
	compare(t, ivs, [][2]uint64{{0x5000, 8}})
}

func TestUnalignedRangeCoversWholeWords(t *testing.T) {
	b := New()
	b.SetRange(0x1002, 4) // straddles words 0x1000 and 0x1004
	ivs, words := flushAll(b)
	compare(t, ivs, [][2]uint64{{0x1000, 8}})
	if words != 2 {
		t.Fatalf("words = %d, want 2", words)
	}
}

func TestZeroSizeNoOp(t *testing.T) {
	b := New()
	b.SetRange(0x1000, 0)
	ivs, _ := flushAll(b)
	if len(ivs) != 0 {
		t.Fatalf("zero-size set produced %v", ivs)
	}
}

func TestRandomAgainstNaive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		n := naiveSet{}
		for i := 0; i < 200; i++ {
			addr := (rng.Uint64() % (1 << 18)) &^ 3
			size := uint64(rng.Intn(512)+1) &^ 3
			if size == 0 {
				size = 4
			}
			b.SetRange(addr, size)
			n.setRange(addr, size)
		}
		ivs, words := flushAll(b)
		compare(t, ivs, n.intervals())
		if words != uint64(len(n)) {
			t.Fatalf("seed %d: words = %d, want %d", seed, words, len(n))
		}
	}
}

func TestQuickRandomPatterns(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		ops := int(opsRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		b := New()
		n := naiveSet{}
		for i := 0; i < ops; i++ {
			addr := (rng.Uint64() % (1 << 20)) &^ 3
			size := uint64(rng.Intn(2048)) &^ 3
			b.SetRange(addr, size)
			n.setRange(addr, size)
		}
		ivs, _ := flushAll(b)
		want := n.intervals()
		if len(ivs) != len(want) {
			return false
		}
		for i := range want {
			if ivs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskRange(t *testing.T) {
	cases := []struct {
		lo, hi uint64
		want   uint64
	}{
		{0, 64, ^uint64(0)},
		{0, 1, 1},
		{63, 64, 1 << 63},
		{4, 8, 0xF0},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := maskRange(c.lo, c.hi); got != c.want {
			t.Errorf("maskRange(%d,%d) = %#x, want %#x", c.lo, c.hi, got, c.want)
		}
	}
}

func BenchmarkSetRangeLarge(b *testing.B) {
	bs := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.SetRange(uint64(i%1024)*4096, 4096)
		if i%1024 == 1023 {
			bs.Flush(func(mem.Addr, uint64) {})
		}
	}
}

func BenchmarkSetSingleWords(b *testing.B) {
	bs := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Set(uint64(i%(1<<16)) * 4)
		if i%(1<<16) == (1<<16)-1 {
			bs.Flush(func(mem.Addr, uint64) {})
		}
	}
}
