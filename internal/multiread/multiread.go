// Package multiread implements the multi-reader interval access history
// needed for race detection beyond series-parallel DAGs.
//
// The paper's read tree stores one reader per word — the leftmost — which
// Feng–Leiserson showed is a sufficient witness for fork-join programs, and
// which the paper notes breaks down for futures and other general DAGs
// (§7: "it is not sufficient to store one reader per memory location").
// For an arbitrary DAG there is no single total order from which a "left-
// most" witness can be drawn: two parallel readers r₁ and r₂ may each be
// the only witness for different future writers.
//
// This package stores, per region of memory, an *antichain* of readers:
// every stored reader is pairwise logically parallel with the others.
// Keeping an antichain instead of all readers is safe because a reader r
// that precedes a newly inserted reader a can never witness a race a
// cannot: any future writer w is executed after a, so w parallel with r
// implies w is parallel with a (otherwise a ≼ w would give r ≼ a ≼ w).
// The store therefore prunes dominated readers on insert, keeping sets
// small for mostly-series programs while remaining sound and complete for
// any DAG.
//
// Regions are maximal runs of addresses with identical reader sets, kept
// as a sorted slice of disjoint intervals. Insertions split regions at the
// new interval's boundaries; queries enumerate (reader, subrange) pairs.
// Operations cost O(log n) to locate plus O(regions touched × readers per
// region); the slice representation trades the treap's asymptotics for
// simplicity, which is adequate for the DAG runner's intended scale (the
// reachability bitsets, not the access history, bound it first).
package multiread

import (
	"fmt"
	"sort"
)

// SeriesFunc reports whether strand a precedes strand b in the DAG
// (a happens-before b). It is used to prune dominated readers.
type SeriesFunc func(a, b int32) bool

// EmitFunc receives one (reader, subrange) pair from a query.
type EmitFunc func(acc int32, lo, hi uint64)

// region is a maximal run [start, end) whose words were read by exactly
// the readers in acc (an antichain, in insertion order).
type region struct {
	start, end uint64
	acc        []int32
}

// Map is a multi-reader interval map. The zero value is ready for use.
type Map struct {
	regions []region // sorted by start, pairwise disjoint
	ops     uint64
	touched uint64
}

// Size returns the number of stored regions.
func (m *Map) Size() int { return len(m.regions) }

// Readers returns the total number of stored (region, reader) entries — the
// footprint the antichain pruning keeps bounded.
func (m *Map) Readers() int {
	n := 0
	for i := range m.regions {
		n += len(m.regions[i].acc)
	}
	return n
}

// Ops returns the number of Insert/Query operations performed.
func (m *Map) Ops() uint64 { return m.ops }

// firstOverlapping returns the index of the first region that ends after
// addr (candidates for overlap with an interval starting at addr).
func (m *Map) firstOverlapping(addr uint64) int {
	return sort.Search(len(m.regions), func(i int) bool { return m.regions[i].end > addr })
}

// Insert records that strand acc read [start, end). Overlapped regions gain
// acc (minus any readers acc dominates); gaps become new regions with acc
// as the only reader.
func (m *Map) Insert(start, end uint64, acc int32, series SeriesFunc) {
	if start >= end {
		panic("multiread: empty interval")
	}
	m.ops++
	i := m.firstOverlapping(start)
	out := m.regions[:i:i] // reuse the untouched prefix in place
	cursor := start
	for ; i < len(m.regions) && m.regions[i].start < end; i++ {
		r := m.regions[i]
		m.touched++
		if cursor < r.start {
			out = append(out, region{start: cursor, end: r.start, acc: []int32{acc}})
		}
		// Left part of r outside [start,end) keeps its readers unchanged.
		if r.start < start {
			out = append(out, region{start: r.start, end: start, acc: r.acc})
		}
		lo, hi := maxU64(r.start, start), minU64(r.end, end)
		out = append(out, region{start: lo, end: hi, acc: addReader(r.acc, acc, series)})
		if r.end > end {
			out = append(out, region{start: end, end: r.end, acc: r.acc})
		}
		cursor = hi
	}
	if cursor < end {
		out = append(out, region{start: cursor, end: end, acc: []int32{acc}})
	}
	out = append(out, m.regions[i:]...)
	m.regions = out
}

// addReader returns the antichain with acc added: readers that precede acc
// are pruned; acc is not added twice.
func addReader(readers []int32, acc int32, series SeriesFunc) []int32 {
	out := make([]int32, 0, len(readers)+1)
	present := false
	for _, r := range readers {
		switch {
		case r == acc:
			present = true
			out = append(out, r)
		case series == nil || !series(r, acc):
			out = append(out, r)
		}
	}
	if !present {
		out = append(out, acc)
	}
	return out
}

// Query emits every (reader, subrange) pair overlapping [start, end).
func (m *Map) Query(start, end uint64, emit EmitFunc) {
	if start >= end {
		panic("multiread: empty query interval")
	}
	m.ops++
	for i := m.firstOverlapping(start); i < len(m.regions) && m.regions[i].start < end; i++ {
		r := m.regions[i]
		m.touched++
		lo, hi := maxU64(r.start, start), minU64(r.end, end)
		for _, acc := range r.acc {
			emit(acc, lo, hi)
		}
	}
}

// Walk calls fn on every region in address order (for tests and dumps).
func (m *Map) Walk(fn func(start, end uint64, readers []int32)) {
	for i := range m.regions {
		fn(m.regions[i].start, m.regions[i].end, m.regions[i].acc)
	}
}

// checkInvariants panics on disorder, overlap, empty regions, or duplicate
// readers within a region.
func (m *Map) checkInvariants() {
	var prevEnd uint64
	for i, r := range m.regions {
		if r.start >= r.end {
			panic(fmt.Sprintf("multiread: empty region %d", i))
		}
		if i > 0 && r.start < prevEnd {
			panic(fmt.Sprintf("multiread: region %d overlaps predecessor", i))
		}
		if len(r.acc) == 0 {
			panic(fmt.Sprintf("multiread: region %d has no readers", i))
		}
		seen := map[int32]bool{}
		for _, a := range r.acc {
			if seen[a] {
				panic(fmt.Sprintf("multiread: region %d stores reader %d twice", i, a))
			}
			seen[a] = true
		}
		prevEnd = r.end
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
