package multiread

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// noSeries treats every pair as parallel: nothing is pruned.
func noSeries(a, b int32) bool { return false }

// byIDSeries makes lower IDs precede higher ones (a total chain).
func byIDSeries(a, b int32) bool { return a < b }

// byteOracle models the map as per-byte reader sets.
type byteOracle struct {
	readers map[uint64]map[int32]bool
	series  SeriesFunc
}

func newByteOracle(series SeriesFunc) *byteOracle {
	return &byteOracle{readers: make(map[uint64]map[int32]bool), series: series}
}

func (o *byteOracle) insert(start, end uint64, acc int32) {
	for b := start; b < end; b++ {
		set := o.readers[b]
		if set == nil {
			set = make(map[int32]bool)
			o.readers[b] = set
		}
		for r := range set {
			if r != acc && o.series(r, acc) {
				delete(set, r)
			}
		}
		set[acc] = true
	}
}

func (o *byteOracle) pairs(start, end uint64) map[string]bool {
	out := make(map[string]bool)
	for b := start; b < end; b++ {
		for r := range o.readers[b] {
			out[fmt.Sprintf("%d@%d", b, r)] = true
		}
	}
	return out
}

func queryPairs(m *Map, start, end uint64) map[string]bool {
	out := make(map[string]bool)
	m.Query(start, end, func(acc int32, lo, hi uint64) {
		for b := lo; b < hi; b++ {
			key := fmt.Sprintf("%d@%d", b, acc)
			if out[key] {
				panic("duplicate (byte, reader) pair in one query")
			}
			out[key] = true
		}
	})
	return out
}

func compare(t *testing.T, ctx string, m *Map, o *byteOracle, start, end uint64) {
	t.Helper()
	got, want := queryPairs(m, start, end), o.pairs(start, end)
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", ctx, len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("%s: missing pair %s", ctx, k)
		}
	}
}

func TestInsertDisjoint(t *testing.T) {
	var m Map
	m.Insert(10, 20, 1, noSeries)
	m.Insert(30, 40, 2, noSeries)
	m.checkInvariants()
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
}

func TestInsertOverlapAccumulatesReaders(t *testing.T) {
	var m Map
	m.Insert(0, 10, 1, noSeries)
	m.Insert(5, 15, 2, noSeries)
	m.checkInvariants()
	// Regions: [0,5)={1}, [5,10)={1,2}, [10,15)={2}.
	var got []string
	m.Walk(func(s, e uint64, acc []int32) { got = append(got, fmt.Sprintf("[%d,%d)%v", s, e, acc)) })
	want := []string{"[0,5)[1]", "[5,10)[1 2]", "[10,15)[2]"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("regions = %v, want %v", got, want)
	}
}

func TestSeriesPruning(t *testing.T) {
	var m Map
	m.Insert(0, 10, 1, byIDSeries)
	m.Insert(0, 10, 2, byIDSeries) // 1 ≼ 2: 1 pruned
	m.checkInvariants()
	if m.Readers() != 1 {
		t.Fatalf("Readers = %d, want 1 (dominated reader kept)", m.Readers())
	}
	pairs := queryPairs(&m, 0, 10)
	if len(pairs) != 10 || !pairs["0@2"] {
		t.Fatalf("unexpected readers: %v", pairs)
	}
}

func TestParallelReadersAccumulate(t *testing.T) {
	var m Map
	for acc := int32(0); acc < 5; acc++ {
		m.Insert(0, 4, acc, noSeries)
	}
	m.checkInvariants()
	if m.Readers() != 5 {
		t.Fatalf("Readers = %d, want 5 parallel readers", m.Readers())
	}
}

func TestDuplicateReaderNotStoredTwice(t *testing.T) {
	var m Map
	m.Insert(0, 8, 3, noSeries)
	m.Insert(0, 8, 3, noSeries)
	m.checkInvariants()
	if m.Readers() != 1 {
		t.Fatalf("Readers = %d, want 1", m.Readers())
	}
}

func TestSplitOnPartialOverlap(t *testing.T) {
	var m Map
	m.Insert(0, 100, 1, noSeries)
	m.Insert(40, 60, 2, noSeries)
	m.checkInvariants()
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3 after a middle split", m.Size())
	}
}

func TestQueryEmptyAndMiss(t *testing.T) {
	var m Map
	m.Query(0, 100, func(int32, uint64, uint64) { t.Fatal("empty map emitted") })
	m.Insert(50, 60, 1, noSeries)
	m.Query(0, 50, func(int32, uint64, uint64) { t.Fatal("miss emitted") })
	m.Query(60, 100, func(int32, uint64, uint64) { t.Fatal("miss emitted") })
}

func TestRandomAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Random partial order: series iff a < b and bit set.
		rel := make(map[[2]int32]bool)
		series := func(a, b int32) bool { return a < b && rel[[2]int32{a, b}] }
		var m Map
		o := newByteOracle(series)
		for i := int32(0); i < 80; i++ {
			for j := i + 1; j < 80; j++ {
				if rng.Intn(3) == 0 {
					rel[[2]int32{i, j}] = true
				}
			}
		}
		for i := int32(0); i < 80; i++ {
			s := rng.Uint64() % 200
			e := s + uint64(rng.Intn(40)) + 1
			m.Insert(s, e, i, series)
			m.checkInvariants()
			o.insert(s, e, i)
			if rng.Intn(3) == 0 {
				qs := rng.Uint64() % 200
				qe := qs + uint64(rng.Intn(60)) + 1
				compare(t, fmt.Sprintf("seed %d step %d", seed, i), &m, o, qs, qe)
			}
		}
		compare(t, fmt.Sprintf("seed %d final", seed), &m, o, 0, 260)
	}
}

func TestQuickChainPruningBoundsFootprint(t *testing.T) {
	// With a total chain, the antichain per region is always a single
	// reader, no matter how many inserts hit it.
	f := func(seed int64, opsRaw uint8) bool {
		ops := int(opsRaw%60) + 5
		rng := rand.New(rand.NewSource(seed))
		var m Map
		for i := 0; i < ops; i++ {
			s := rng.Uint64() % 100
			m.Insert(s, s+uint64(rng.Intn(30))+1, int32(i), byIDSeries)
		}
		m.checkInvariants()
		ok := true
		m.Walk(func(_, _ uint64, acc []int32) {
			if len(acc) != 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnEmptyInterval(t *testing.T) {
	var m Map
	for _, f := range []func(){
		func() { m.Insert(5, 5, 1, noSeries) },
		func() { m.Query(5, 5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkInsertChain(b *testing.B) {
	var m Map
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := uint64(i%1000) * 16
		m.Insert(s, s+16, int32(i), byIDSeries)
	}
}
