package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomInterval draws an interval over a bounded address space so that
// overlaps are frequent.
func randomInterval(rng *rand.Rand, space uint64, acc int32) Interval {
	s := rng.Uint64() % space
	length := uint64(rng.Intn(int(space/8))) + 1
	e := s + length
	if e > space {
		e = space
	}
	if e == s {
		e = s + 1
	}
	return Interval{Start: s, End: e, Acc: acc}
}

func runRandomWriteSession(t *testing.T, seed int64, ops int, space uint64) {
	rng := rand.New(rand.NewSource(seed))
	tr := NewTree()
	o := newWordOracle()
	for i := 0; i < ops; i++ {
		iv := randomInterval(rng, space, int32(i))
		if rng.Intn(4) == 0 {
			checkedQuery(t, tr, o, randomInterval(rng, space, -1))
		}
		checkedWrite(t, tr, o, iv)
		if tr.Size() > 2*(i+1)+1 {
			t.Fatalf("seed %d: write-tree size %d exceeds 2m+1 at m=%d", seed, tr.Size(), i+1)
		}
	}
}

func runRandomReadSession(t *testing.T, seed int64, ops int, space uint64) {
	rng := rand.New(rand.NewSource(seed))
	tr := NewTree()
	o := newWordOracle()
	// Random strict total order over accessors via random distinct ranks.
	rank := make(map[int32]int)
	lo := func(a, b int32) bool { return rank[a] > rank[b] }
	perm := rng.Perm(ops + 1)
	for i := 0; i < ops; i++ {
		acc := int32(i)
		rank[acc] = perm[i]
		iv := randomInterval(rng, space, acc)
		if rng.Intn(4) == 0 {
			checkedQuery(t, tr, o, randomInterval(rng, space, -1))
		}
		checkedRead(t, tr, o, iv, lo)
		if tr.Size() > 2*(i+1)+1 {
			t.Fatalf("seed %d: read-tree size %d exceeds 2m+1 at m=%d", seed, tr.Size(), i+1)
		}
	}
}

func TestRandomWriteSessions(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		runRandomWriteSession(t, seed, 120, 400)
	}
}

func TestRandomReadSessions(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		runRandomReadSession(t, seed, 120, 400)
	}
}

func TestRandomMixedSessions(t *testing.T) {
	// Reads and writes share nothing (separate trees in the detector), but a
	// mixed session on one tree still must preserve all invariants; this
	// models a single tree being used for both polarity-specific updates.
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wt, rt := NewTree(), NewTree()
		wo, ro := newWordOracle(), newWordOracle()
		rank := make(map[int32]int)
		perm := rng.Perm(400)
		lo := func(a, b int32) bool { return rank[a] > rank[b] }
		for i := 0; i < 150; i++ {
			acc := int32(i)
			rank[acc] = perm[i]
			iv := randomInterval(rng, 300, acc)
			switch rng.Intn(3) {
			case 0:
				checkedWrite(t, wt, wo, iv)
			case 1:
				checkedRead(t, rt, ro, iv, lo)
			default:
				checkedQuery(t, wt, wo, iv)
				checkedQuery(t, rt, ro, iv)
			}
		}
	}
}

func TestQuickWriteProjection(t *testing.T) {
	f := func(seed int64, opsRaw uint8, spaceRaw uint8) bool {
		ops := int(opsRaw%60) + 5
		space := uint64(spaceRaw%200) + 32
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		o := newWordOracle()
		for i := 0; i < ops; i++ {
			iv := randomInterval(rng, space, int32(i))
			tr.InsertWrite(iv, nil)
			o.applyWrite(iv)
		}
		tr.checkInvariants()
		got := project(tr)
		if len(got) != len(o.bytes) {
			return false
		}
		for b, acc := range o.bytes {
			if got[b] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReadProjection(t *testing.T) {
	f := func(seed int64, opsRaw uint8, spaceRaw uint8) bool {
		ops := int(opsRaw%60) + 5
		space := uint64(spaceRaw%200) + 32
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		o := newWordOracle()
		rank := rng.Perm(ops)
		lo := func(a, b int32) bool { return rank[a] > rank[b] }
		for i := 0; i < ops; i++ {
			iv := randomInterval(rng, space, int32(i))
			tr.InsertRead(iv, lo, nil)
			o.applyRead(iv, lo)
		}
		tr.checkInvariants()
		got := project(tr)
		if len(got) != len(o.bytes) {
			return false
		}
		for b, acc := range o.bytes {
			if got[b] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUnbalancedModeStaysCorrect(t *testing.T) {
	// The plain-BST ablation must be functionally identical.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		tr.SetBalancing(false)
		o := newWordOracle()
		for i := 0; i < 100; i++ {
			iv := randomInterval(rng, 300, int32(i))
			checkedWrite(t, tr, o, iv)
		}
	}
}

func TestDeterministicPriorities(t *testing.T) {
	// Two trees fed the same operations must have identical shapes: the
	// priority stream is deterministic, keeping benchmark runs reproducible.
	build := func() *Tree {
		tr := NewTree()
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 200; i++ {
			tr.InsertWrite(randomInterval(rng, 1000, int32(i)), nil)
		}
		return tr
	}
	a, b := build(), build()
	if a.Height() != b.Height() || a.Size() != b.Size() {
		t.Fatalf("non-deterministic shape: (%d,%d) vs (%d,%d)", a.Height(), a.Size(), b.Height(), b.Size())
	}
	ai, bi := intervals(a), intervals(b)
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatalf("contents diverge at %d: %v vs %v", i, ai[i], bi[i])
		}
	}
}

func BenchmarkInsertWriteDisjoint(b *testing.B) {
	tr := NewTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.InsertWrite(Interval{uint64(i) * 16, uint64(i)*16 + 8, int32(i)}, nil)
	}
}

func BenchmarkInsertWriteOverlapping(b *testing.B) {
	tr := NewTree()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rng.Uint64() % (1 << 20)
		tr.InsertWrite(Interval{s, s + 64, int32(i)}, nil)
	}
}

func BenchmarkQueryHit(b *testing.B) {
	tr := NewTree()
	for i := 0; i < 100000; i++ {
		tr.InsertWrite(Interval{uint64(i) * 16, uint64(i)*16 + 8, int32(i)}, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := uint64(i%100000) * 16
		tr.Query(Interval{s, s + 4, 0}, nil)
	}
}
