package core

import (
	"math"
	"math/rand"
	"testing"
)

// These tests validate the paper's §4.4 analysis empirically: operation
// cost is O(h + k) with h the tree height and k the overlap count, heights
// stay logarithmic under treap priorities, and the Lemma 4.1 bound keeps
// the tree linear in the number of inserts.

func TestTreapHeightLogarithmic(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 15} {
		tr := NewTree()
		for i := 0; i < n; i++ {
			tr.InsertWrite(Interval{uint64(i) * 8, uint64(i)*8 + 4, int32(i)}, nil)
		}
		h := float64(tr.Height())
		bound := 4.3 * math.Log2(float64(n)) // E[h] ≈ 2.99·lg n for treaps
		if h > bound {
			t.Errorf("n=%d: height %.0f exceeds %.1f", n, h, bound)
		}
	}
}

func TestNodesVisitedPerOpTracksHeightPlusOverlaps(t *testing.T) {
	// Disjoint inserts: k = 0, so nodes/op must be O(lg n).
	tr := NewTree()
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.InsertWrite(Interval{uint64(i) * 8, uint64(i)*8 + 4, int32(i)}, nil)
	}
	tr.ResetStats()
	for i := 0; i < 4096; i++ {
		s := uint64((i * 37) % n * 8)
		tr.Query(Interval{s, s + 4, 0}, nil)
	}
	st := tr.Stats()
	perOp := float64(st.NodesVisited) / float64(st.Ops)
	if bound := 4.5 * math.Log2(n); perOp > bound {
		t.Errorf("nodes/op %.1f exceeds %.1f for point queries on %d nodes", perOp, bound, n)
	}
	if st.Overlaps != uint64(st.Ops) {
		t.Errorf("point queries on full coverage: overlaps %d != ops %d", st.Overlaps, st.Ops)
	}
}

func TestOverlapsChargeToIntervalSize(t *testing.T) {
	// Theorem 4.1's amortization: an interval overlapping k stored
	// intervals has size >= k (stored intervals are disjoint and each
	// contributes >= 1 unit to the overlap range). Verify the accounting
	// on random workloads: overlaps per op never exceed the interval's
	// length in words plus one.
	rng := rand.New(rand.NewSource(9))
	tr := NewTree()
	for i := 0; i < 3000; i++ {
		s := rng.Uint64() % 100000
		length := uint64(rng.Intn(64)+1) * 4
		before := tr.Stats().Overlaps
		tr.InsertWrite(Interval{s, s + length, int32(i)}, nil)
		k := tr.Stats().Overlaps - before
		if k > length/4+2 {
			t.Fatalf("insert of %d words overlapped %d stored intervals", length/4, k)
		}
	}
}

func TestAmortizedLinearTotalSize(t *testing.T) {
	// Lemma 4.1 at scale: m inserts leave at most 2m+1 intervals, for both
	// trees, under adversarial gap-filling patterns.
	lo := func(a, b int32) bool { return a > b }
	rt := NewTree()
	m := 0
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 40; round++ {
		for i := 0; i < 20; i++ {
			s := uint64(rng.Intn(4000))
			rt.InsertRead(Interval{s, s + uint64(rng.Intn(8)+1), int32(10000 + m)}, lo, nil)
			m++
		}
		// Giant low-priority read forced to fill every gap.
		rt.InsertRead(Interval{0, 4100, int32(round)}, lo, nil)
		m++
		if rt.Size() > 2*m+1 {
			t.Fatalf("read tree size %d exceeds 2m+1 after %d inserts", rt.Size(), m)
		}
	}
}

func TestStableCostAcrossGrowth(t *testing.T) {
	// Figure 8's observation: nodes visited per op grows like lg n, i.e.
	// slowly; going from 2^10 to 2^14 intervals must not even double it.
	perOpAt := func(n int) float64 {
		tr := NewTree()
		for i := 0; i < n; i++ {
			tr.InsertWrite(Interval{uint64(i) * 8, uint64(i)*8 + 4, int32(i)}, nil)
		}
		tr.ResetStats()
		for i := 0; i < 2000; i++ {
			s := uint64((i * 613) % n * 8)
			tr.Query(Interval{s, s + 4, 0}, nil)
		}
		st := tr.Stats()
		return float64(st.NodesVisited) / float64(st.Ops)
	}
	small, large := perOpAt(1<<10), perOpAt(1<<14)
	if large > 2*small {
		t.Errorf("nodes/op grew from %.1f to %.1f across 16x growth; want sub-linear", small, large)
	}
}
