package core

import "testing"

func TestInsertWriteIntoEmpty(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{10, 20, 1})
	if tr.Size() != 1 {
		t.Fatalf("Size() = %d, want 1", tr.Size())
	}
}

func TestInsertWriteCaseA_DisjointChain(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	// Disjoint inserts in mixed order exercise both directions of case A.
	for _, iv := range []Interval{{40, 50, 1}, {10, 20, 2}, {60, 70, 3}, {0, 5, 4}, {25, 30, 5}, {55, 58, 6}} {
		checkedWrite(t, tr, o, iv)
	}
	if tr.Size() != 6 {
		t.Fatalf("Size() = %d, want 6", tr.Size())
	}
}

func TestInsertWriteTouchingIsNotOverlap(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{10, 20, 1})
	// End-touching and start-touching intervals must not be treated as
	// overlapping (half-open semantics).
	checkedWrite(t, tr, o, Interval{20, 30, 2})
	checkedWrite(t, tr, o, Interval{0, 10, 3})
	if tr.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", tr.Size())
	}
}

func TestInsertWriteCaseB_RightOverlap(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{10, 20, 1})
	// New interval overlaps the right part of the old: old trims to [10,15).
	checkedWrite(t, tr, o, Interval{15, 30, 2})
	ivs := intervals(tr)
	if len(ivs) != 2 || ivs[0] != (Interval{10, 15, 1}) || ivs[1] != (Interval{15, 30, 2}) {
		t.Fatalf("unexpected contents: %v", ivs)
	}
}

func TestInsertWriteCaseB_LeftOverlap(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{10, 20, 1})
	checkedWrite(t, tr, o, Interval{5, 15, 2})
	ivs := intervals(tr)
	if len(ivs) != 2 || ivs[0] != (Interval{5, 15, 2}) || ivs[1] != (Interval{15, 20, 1}) {
		t.Fatalf("unexpected contents: %v", ivs)
	}
}

func TestInsertWriteCaseC_OldCovers(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{10, 40, 1})
	// New interval strictly inside: old splits into three.
	checkedWrite(t, tr, o, Interval{20, 30, 2})
	ivs := intervals(tr)
	want := []Interval{{10, 20, 1}, {20, 30, 2}, {30, 40, 1}}
	if len(ivs) != 3 || ivs[0] != want[0] || ivs[1] != want[1] || ivs[2] != want[2] {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
}

func TestInsertWriteCaseC_SharedLeftEdge(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{10, 40, 1})
	checkedWrite(t, tr, o, Interval{10, 25, 2}) // left piece empty
	ivs := intervals(tr)
	want := []Interval{{10, 25, 2}, {25, 40, 1}}
	if len(ivs) != 2 || ivs[0] != want[0] || ivs[1] != want[1] {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
}

func TestInsertWriteCaseC_SharedRightEdge(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{10, 40, 1})
	checkedWrite(t, tr, o, Interval{25, 40, 2}) // right piece empty
	ivs := intervals(tr)
	want := []Interval{{10, 25, 1}, {25, 40, 2}}
	if len(ivs) != 2 || ivs[0] != want[0] || ivs[1] != want[1] {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
}

func TestInsertWriteCaseD_ExactReplace(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{10, 20, 1})
	checkedWrite(t, tr, o, Interval{10, 20, 2})
	ivs := intervals(tr)
	if len(ivs) != 1 || ivs[0] != (Interval{10, 20, 2}) {
		t.Fatalf("contents = %v, want single [10,20)@2", ivs)
	}
}

func TestInsertWriteCaseD_SwallowsMany(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	for i := 0; i < 10; i++ {
		checkedWrite(t, tr, o, Interval{uint64(i * 10), uint64(i*10 + 5), int32(i)})
	}
	// One giant write covers everything.
	checkedWrite(t, tr, o, Interval{0, 100, 99})
	ivs := intervals(tr)
	if len(ivs) != 1 || ivs[0] != (Interval{0, 100, 99}) {
		t.Fatalf("contents = %v, want single [0,100)@99", ivs)
	}
}

func TestInsertWriteCaseD_PartialNeighbors(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{0, 20, 1})
	checkedWrite(t, tr, o, Interval{30, 40, 2})
	checkedWrite(t, tr, o, Interval{50, 80, 3})
	// Covers all of [30,40), trims [0,20) to [0,10) and [50,80) to [60,80).
	checkedWrite(t, tr, o, Interval{10, 60, 4})
	ivs := intervals(tr)
	want := []Interval{{0, 10, 1}, {10, 60, 4}, {60, 80, 3}}
	if len(ivs) != 3 || ivs[0] != want[0] || ivs[1] != want[1] || ivs[2] != want[2] {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
}

func TestInsertWriteRemoveOverlapSubtreeDrop(t *testing.T) {
	// Build a shape where RemoveOverlap must drop whole subtrees: many
	// intervals strictly inside the new write, hanging off both sides.
	tr := NewTree()
	o := newWordOracle()
	starts := []uint64{100, 50, 150, 25, 75, 125, 175, 10, 60, 90, 110, 160, 190}
	for i, s := range starts {
		checkedWrite(t, tr, o, Interval{s, s + 5, int32(i)})
	}
	checkedWrite(t, tr, o, Interval{20, 180, 100})
	// Everything between 20 and 180 is gone; [10,15) and [190,195) survive.
	ivs := intervals(tr)
	want := []Interval{{10, 15, 7}, {20, 180, 100}, {190, 195, 12}}
	if len(ivs) != 3 || ivs[0] != want[0] || ivs[1] != want[1] || ivs[2] != want[2] {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
}

func TestInsertWriteOverlapCallbackAccessors(t *testing.T) {
	// The callback must report the *old* accessor with the overlap range
	// clipped to the intersection.
	tr := NewTree()
	tr.InsertWrite(Interval{10, 30, 7}, nil)
	var gotAcc int32
	var gotLo, gotHi uint64
	calls := 0
	tr.InsertWrite(Interval{20, 40, 8}, func(acc int32, lo, hi uint64) {
		calls++
		gotAcc, gotLo, gotHi = acc, lo, hi
	})
	if calls != 1 || gotAcc != 7 || gotLo != 20 || gotHi != 30 {
		t.Fatalf("callback = %d calls, acc=%d [%d,%d); want 1 call, acc=7 [20,30)", calls, gotAcc, gotLo, gotHi)
	}
}

func TestInsertWriteNilCallback(t *testing.T) {
	tr := NewTree()
	tr.InsertWrite(Interval{0, 10, 1}, nil)
	tr.InsertWrite(Interval{5, 15, 2}, nil) // overlap with nil callback must not panic
	tr.checkInvariants()
}

func TestInsertWriteSizeBound(t *testing.T) {
	// Lemma 4.1: after m inserts the tree holds at most 2m+1 intervals.
	tr := NewTree()
	o := newWordOracle()
	m := 0
	for i := 0; i < 60; i++ {
		s := uint64((i * 37) % 200)
		e := s + uint64(5+(i*13)%40)
		checkedWrite(t, tr, o, Interval{s, e, int32(i)})
		m++
		if tr.Size() > 2*m+1 {
			t.Fatalf("after %d inserts, size %d exceeds 2m+1", m, tr.Size())
		}
	}
}

func TestInsertWritePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty interval")
		}
	}()
	NewTree().InsertWrite(Interval{5, 5, 1}, nil)
}
