package core

import (
	"math/rand"
	"testing"
)

// reachableNodes collects the pointer identity of every node linked under
// the root.
func (t *Tree) reachableNodes() map[*node]bool {
	seen := make(map[*node]bool)
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		if seen[n] {
			panic("core: node reachable twice")
		}
		seen[n] = true
		rec(n.left)
		rec(n.right)
	}
	rec(t.root)
	return seen
}

// freeNodes collects the pointer identity of every node on the free list.
func (t *Tree) freeNodes() map[*node]bool {
	seen := make(map[*node]bool)
	for n := t.pool.free; n != nil; n = n.right {
		if seen[n] {
			panic("core: free list cycle")
		}
		seen[n] = true
	}
	return seen
}

// TestPoolNeverAliasesLiveNodes drives randomized write/read insertions —
// writes are what feed the free list via RemoveOverlap — and checks after
// every operation that the free list and the live tree are disjoint, that
// free-list accounting matches, and that every node came from a slab chunk.
func TestPoolNeverAliasesLiveNodes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		leftOf := func(a, b int32) bool { return a < b }
		for op := 0; op < 400; op++ {
			iv := randomInterval(rng, 1<<12, int32(op))
			if rng.Intn(2) == 0 {
				tr.InsertWrite(iv, nil)
			} else {
				tr.InsertRead(iv, leftOf, nil)
			}
			tr.checkInvariants()
			live := tr.reachableNodes()
			free := tr.freeNodes()
			for n := range free {
				if live[n] {
					t.Fatalf("seed %d op %d: node %p is both live and on the free list", seed, op, n)
				}
			}
			ps := tr.PoolStats()
			if len(free) != ps.Free {
				t.Fatalf("seed %d op %d: free list has %d nodes, PoolStats.Free = %d", seed, op, len(free), ps.Free)
			}
			if len(live) != ps.Live {
				t.Fatalf("seed %d op %d: %d reachable nodes, PoolStats.Live = %d", seed, op, len(live), ps.Live)
			}
			if got, want := ps.Live+ps.Free, int(ps.Served-ps.Recycled); got != want {
				t.Fatalf("seed %d op %d: live+free = %d, slab draws = %d", seed, op, got, want)
			}
			if slabCap := ps.Chunks * chunkNodes; ps.Live+ps.Free > slabCap {
				t.Fatalf("seed %d op %d: %d nodes exceed slab capacity %d", seed, op, ps.Live+ps.Free, slabCap)
			}
		}
	}
}

// TestPoolRecyclesUnderChurn checks that steady-state insert/remove churn is
// served by the free list rather than new slab chunks: overwriting the same
// address range forever must not grow the pool.
func TestPoolRecyclesUnderChurn(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 10000; i++ {
		base := uint64(i%64) * 8
		tr.InsertWrite(Interval{Start: base, End: base + 16, Acc: int32(i)}, nil)
	}
	ps := tr.PoolStats()
	if ps.Chunks > 1 {
		t.Fatalf("steady-state churn grew the pool to %d chunks (stats %+v)", ps.Chunks, ps)
	}
	if ps.Recycled == 0 {
		t.Fatal("churn never recycled a node")
	}
	tr.checkInvariants()
}

// TestPoolStatsBytes sanity-checks the footprint accounting.
func TestPoolStatsBytes(t *testing.T) {
	tr := NewTree()
	if tr.PoolStats().Bytes() != 0 {
		t.Fatal("empty tree reports nonzero pool bytes")
	}
	tr.InsertWrite(Interval{Start: 0, End: 4, Acc: 1}, nil)
	ps := tr.PoolStats()
	if ps.Chunks != 1 || ps.Bytes() == 0 {
		t.Fatalf("after one insert: %+v (bytes %d)", ps, ps.Bytes())
	}
}
