// Package core implements the paper's primary contribution: an access
// history maintained at interval granularity in balanced binary search
// trees (treaps).
//
// An access history for sequential race detection of fork-join programs
// needs, per memory location, only the last writer and the leftmost reader
// (Feng & Leiserson). Instead of a per-word hashmap, this package stores
// maximal intervals of contiguous words with the same accessor in two
// treaps — one for writes, one for reads — keyed by interval start and
// maintaining the invariant that no two intervals in a tree overlap.
//
// Tree is the shared structure; InsertWrite implements §4.1 of the paper
// (new interval always wins, overlapping old intervals are trimmed or
// removed), InsertRead implements §4.2 (the left-of relation decides which
// accessor survives on overlap, so the new interval may itself be split),
// and Query implements the read-only overlap enumeration of §4.3. Each
// operation costs O(h + k), where h is the tree height and k the number of
// stored intervals overlapping the argument; treap priorities keep
// h = O(lg n) with high probability.
package core

import "fmt"

// Interval is a half-open range of byte addresses [Start, End) accessed by
// the strand identified by Acc. Addresses and sizes are always multiples of
// the shadow word size; the tree itself only requires Start < End.
type Interval struct {
	Start uint64
	End   uint64
	Acc   int32
}

// Len returns the interval's length in bytes.
func (iv Interval) Len() uint64 { return iv.End - iv.Start }

// Overlaps reports whether iv and other share at least one byte.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Contains reports whether iv fully covers other.
func (iv Interval) Contains(other Interval) bool {
	return iv.Start <= other.Start && other.End <= iv.End
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%#x,%#x)@%d", iv.Start, iv.End, iv.Acc)
}

// LeftOfFunc reports whether the strand with the first ID is "left of" the
// strand with the second: logically parallel and earlier in sequential
// order, or in series and later. The read tree keeps the left-of winner
// when intervals overlap.
type LeftOfFunc func(a, b int32) bool

// OverlapFunc receives one stored interval that overlaps an operation's
// argument, together with the overlapping byte range [lo, hi). Each stored
// interval is reported at most once per operation.
type OverlapFunc func(acc int32, lo, hi uint64)
