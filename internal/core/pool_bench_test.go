package core

import (
	"math/rand"
	"testing"
)

// benchIntervals builds a deterministic churn-heavy workload: overlapping
// writes over a bounded space so RemoveOverlap constantly retires nodes.
func benchIntervals(n int) []Interval {
	rng := rand.New(rand.NewSource(42))
	ivs := make([]Interval, n)
	for i := range ivs {
		start := rng.Uint64() % (1 << 16)
		length := uint64(rng.Intn(256)) + 4
		ivs[i] = Interval{Start: start, End: start + length, Acc: int32(i)}
	}
	return ivs
}

// BenchmarkTreapInsert isolates the node-allocation cost of treap
// insertion: the slab pool (production path) vs one heap object per node
// (the seed's new(node) path), on an identical interval stream.
func BenchmarkTreapInsert(b *testing.B) {
	ivs := benchIntervals(4096)
	for _, mode := range []struct {
		name     string
		heapOnly bool
	}{{"pooled", false}, {"unpooled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := NewTree()
				tr.pool.heapOnly = mode.heapOnly
				for _, iv := range ivs {
					tr.InsertWrite(iv, nil)
				}
			}
		})
	}
}
