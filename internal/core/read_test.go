package core

import "testing"

// Accessor ranks for read-tree tests: higher rank is left-of lower rank.
func leftOfByID() LeftOfFunc {
	// Larger ID wins; convenient for hand-built cases.
	return func(a, b int32) bool { return a > b }
}

func TestInsertReadIntoEmpty(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedRead(t, tr, o, Interval{10, 20, 1}, leftOfByID())
}

func TestInsertReadCaseA(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	lo := leftOfByID()
	for _, iv := range []Interval{{40, 50, 1}, {10, 20, 2}, {60, 70, 3}, {0, 5, 4}} {
		checkedRead(t, tr, o, iv, lo)
	}
	if tr.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", tr.Size())
	}
}

func TestInsertReadCaseB_NewWins(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	lo := leftOfByID()
	checkedRead(t, tr, o, Interval{10, 20, 1}, lo)
	checkedRead(t, tr, o, Interval{15, 30, 2}, lo) // 2 is left-of 1
	ivs := intervals(tr)
	want := []Interval{{10, 15, 1}, {15, 30, 2}}
	if len(ivs) != 2 || ivs[0] != want[0] || ivs[1] != want[1] {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
}

func TestInsertReadCaseB_OldWins(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	lo := leftOfByID()
	checkedRead(t, tr, o, Interval{10, 20, 5}, lo)
	checkedRead(t, tr, o, Interval{15, 30, 2}, lo) // 5 stays left-of 2
	ivs := intervals(tr)
	want := []Interval{{10, 20, 5}, {20, 30, 2}}
	if len(ivs) != 2 || ivs[0] != want[0] || ivs[1] != want[1] {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
}

func TestInsertReadCaseB_LeftSideBothOutcomes(t *testing.T) {
	lo := leftOfByID()
	// New wins on the left overlap.
	tr := NewTree()
	o := newWordOracle()
	checkedRead(t, tr, o, Interval{10, 20, 1}, lo)
	checkedRead(t, tr, o, Interval{5, 15, 9}, lo)
	ivs := intervals(tr)
	want := []Interval{{5, 15, 9}, {15, 20, 1}}
	if len(ivs) != 2 || ivs[0] != want[0] || ivs[1] != want[1] {
		t.Fatalf("new-wins contents = %v, want %v", ivs, want)
	}
	// Old wins on the left overlap.
	tr = NewTree()
	o = newWordOracle()
	checkedRead(t, tr, o, Interval{10, 20, 9}, lo)
	checkedRead(t, tr, o, Interval{5, 15, 1}, lo)
	ivs = intervals(tr)
	want = []Interval{{5, 10, 1}, {10, 20, 9}}
	if len(ivs) != 2 || ivs[0] != want[0] || ivs[1] != want[1] {
		t.Fatalf("old-wins contents = %v, want %v", ivs, want)
	}
}

func TestInsertReadCaseC_NewWinsSplits(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	lo := leftOfByID()
	checkedRead(t, tr, o, Interval{10, 40, 1}, lo)
	checkedRead(t, tr, o, Interval{20, 30, 2}, lo)
	ivs := intervals(tr)
	want := []Interval{{10, 20, 1}, {20, 30, 2}, {30, 40, 1}}
	if len(ivs) != 3 || ivs[0] != want[0] || ivs[1] != want[1] || ivs[2] != want[2] {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
}

func TestInsertReadCaseC_OldWinsUnchanged(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	lo := leftOfByID()
	checkedRead(t, tr, o, Interval{10, 40, 5}, lo)
	checkedRead(t, tr, o, Interval{20, 30, 2}, lo)
	ivs := intervals(tr)
	if len(ivs) != 1 || ivs[0] != (Interval{10, 40, 5}) {
		t.Fatalf("contents = %v, want untouched [10,40)@5", ivs)
	}
}

func TestInsertReadCaseD_NewWins(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	lo := leftOfByID()
	checkedRead(t, tr, o, Interval{20, 30, 1}, lo)
	checkedRead(t, tr, o, Interval{10, 40, 2}, lo)
	// 2 wins everywhere; projection is uniform even if stored as pieces.
	for b := uint64(10); b < 40; b++ {
		if o.bytes[b] != 2 {
			t.Fatalf("byte %d = %d, want 2", b, o.bytes[b])
		}
	}
}

func TestInsertReadCaseD_OldWinsMiddle(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	lo := leftOfByID()
	checkedRead(t, tr, o, Interval{20, 30, 5}, lo)
	checkedRead(t, tr, o, Interval{10, 40, 2}, lo)
	ivs := intervals(tr)
	want := []Interval{{10, 20, 2}, {20, 30, 5}, {30, 40, 2}}
	if len(ivs) != 3 || ivs[0] != want[0] || ivs[1] != want[1] || ivs[2] != want[2] {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
}

func TestInsertReadPaperWorkedExample(t *testing.T) {
	// §4 intro: reads [8,16,a], [24,32,b], [40,52,c], [52,60,d]; new read
	// [12,56,e] where e is left-of a and c but not b and d. Result must
	// project to [8,12,a], [12,24,e], [24,32,b], [32,52,e], [52,60,d].
	const a, b, c, d, e = 1, 2, 3, 4, 5
	rank := map[int32]int{a: 0, b: 9, c: 1, d: 8, e: 5} // e beats a,c; loses to b,d
	lo := rankLeftOf(rank)
	tr := NewTree()
	o := newWordOracle()
	for _, iv := range []Interval{{8, 16, a}, {24, 32, b}, {40, 52, c}, {52, 60, d}} {
		checkedRead(t, tr, o, iv, lo)
	}
	checkedRead(t, tr, o, Interval{12, 56, e}, lo)
	wantOwner := func(bt uint64) int32 {
		switch {
		case bt >= 8 && bt < 12:
			return a
		case bt >= 12 && bt < 24:
			return e
		case bt >= 24 && bt < 32:
			return b
		case bt >= 32 && bt < 52:
			return e
		case bt >= 52 && bt < 60:
			return d
		}
		return -1
	}
	for bt := uint64(8); bt < 60; bt++ {
		if o.bytes[bt] != wantOwner(bt) {
			t.Fatalf("byte %d owned by %d, want %d", bt, o.bytes[bt], wantOwner(bt))
		}
	}
}

func TestInsertReadLemmaGapFilling(t *testing.T) {
	// Lemma 4.1's example: [1,2,a], [3,4,b], [5,6,c], then read [0,7,d)
	// where a,b,c are all left-of d: d only fills the gaps.
	const a, b, c, d = 10, 11, 12, 1
	lo := leftOfByID() // a,b,c > d, so they all stay
	tr := NewTree()
	o := newWordOracle()
	for _, iv := range []Interval{{1, 2, a}, {3, 4, b}, {5, 6, c}} {
		checkedRead(t, tr, o, iv, lo)
	}
	checkedRead(t, tr, o, Interval{0, 7, d}, lo)
	ivs := intervals(tr)
	want := []Interval{{0, 1, d}, {1, 2, a}, {2, 3, d}, {3, 4, b}, {4, 5, d}, {5, 6, c}, {6, 7, d}}
	if len(ivs) != len(want) {
		t.Fatalf("contents = %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("contents[%d] = %v, want %v (full: %v)", i, ivs[i], want[i], ivs)
		}
	}
}

func TestInsertReadSizeBound(t *testing.T) {
	// Lemma 4.1: intervals + gaps grow by at most 2 per insert, so after m
	// inserts the tree holds at most 2m+1 intervals — even with the
	// gap-filling worst case.
	tr := NewTree()
	o := newWordOracle()
	lo := leftOfByID()
	m := 0
	// Adversarial: alternate small scattered reads with huge covering reads
	// by a weaker accessor (forced to fill gaps).
	for round := 0; round < 8; round++ {
		for i := 0; i < 6; i++ {
			s := uint64(round*100 + i*15)
			checkedRead(t, tr, o, Interval{s, s + 4, int32(1000 + round*10 + i)}, lo)
			m++
			if tr.Size() > 2*m+1 {
				t.Fatalf("size %d exceeds 2m+1 after %d inserts", tr.Size(), m)
			}
		}
		checkedRead(t, tr, o, Interval{0, uint64(round*100 + 100), int32(round)}, lo)
		m++
		if tr.Size() > 2*m+1 {
			t.Fatalf("size %d exceeds 2m+1 after %d inserts", tr.Size(), m)
		}
	}
}

func TestInsertReadPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty interval")
		}
	}()
	NewTree().InsertRead(Interval{5, 5, 1}, leftOfByID(), nil)
}
