package core

import (
	"fmt"
	"sort"
	"testing"
)

// wordOracle is the ground-truth model of one access-history tree: a flat
// map from byte address to accessor. Projecting the interval tree onto
// bytes must always match it exactly.
type wordOracle struct {
	bytes map[uint64]int32
}

func newWordOracle() *wordOracle { return &wordOracle{bytes: make(map[uint64]int32)} }

// overlapSet flattens OverlapFunc callbacks into (address, accessor) pairs
// and rejects double reports of the same byte within one operation.
type overlapSet struct {
	t     *testing.T
	pairs map[string]bool
	seen  map[uint64]bool
}

func newOverlapSet(t *testing.T) *overlapSet {
	return &overlapSet{t: t, pairs: make(map[string]bool), seen: make(map[uint64]bool)}
}

func (os *overlapSet) fn(acc int32, lo, hi uint64) {
	if lo >= hi {
		os.t.Fatalf("overlap callback with empty range [%d,%d)", lo, hi)
	}
	for b := lo; b < hi; b++ {
		if os.seen[b] {
			os.t.Fatalf("byte %d reported as overlapping twice in one operation", b)
		}
		os.seen[b] = true
		os.pairs[fmt.Sprintf("%d@%d", b, acc)] = true
	}
}

// expectedOverlaps returns the pairs the oracle predicts for interval x.
func (o *wordOracle) expectedOverlaps(x Interval) map[string]bool {
	want := make(map[string]bool)
	for b := x.Start; b < x.End; b++ {
		if acc, ok := o.bytes[b]; ok {
			want[fmt.Sprintf("%d@%d", b, acc)] = true
		}
	}
	return want
}

func comparePairSets(t *testing.T, ctx string, got, want map[string]bool) {
	t.Helper()
	for p := range want {
		if !got[p] {
			t.Fatalf("%s: missing overlap pair %s", ctx, p)
		}
	}
	for p := range got {
		if !want[p] {
			t.Fatalf("%s: unexpected overlap pair %s", ctx, p)
		}
	}
}

func (o *wordOracle) applyWrite(x Interval) {
	for b := x.Start; b < x.End; b++ {
		o.bytes[b] = x.Acc
	}
}

func (o *wordOracle) applyRead(x Interval, leftOf LeftOfFunc) {
	for b := x.Start; b < x.End; b++ {
		if old, ok := o.bytes[b]; !ok || leftOf(x.Acc, old) {
			o.bytes[b] = x.Acc
		}
	}
}

// project expands the tree to a byte map.
func project(tr *Tree) map[uint64]int32 {
	m := make(map[uint64]int32)
	tr.Walk(func(iv Interval) {
		for b := iv.Start; b < iv.End; b++ {
			m[b] = iv.Acc
		}
	})
	return m
}

func compareProjection(t *testing.T, ctx string, tr *Tree, o *wordOracle) {
	t.Helper()
	got := project(tr)
	if len(got) != len(o.bytes) {
		t.Fatalf("%s: tree covers %d bytes, oracle %d\n tree: %s", ctx, len(got), len(o.bytes), dump(tr))
	}
	for b, acc := range o.bytes {
		if got[b] != acc {
			t.Fatalf("%s: byte %d has accessor %d, oracle says %d\n tree: %s", ctx, b, got[b], acc, dump(tr))
		}
	}
}

func dump(tr *Tree) string {
	var ivs []Interval
	tr.Walk(func(iv Interval) { ivs = append(ivs, iv) })
	return fmt.Sprint(ivs)
}

// intervals reads the tree's contents in address order.
func intervals(tr *Tree) []Interval {
	var ivs []Interval
	tr.Walk(func(iv Interval) { ivs = append(ivs, iv) })
	return ivs
}

// checkedWrite runs InsertWrite, validating overlaps against the oracle and
// updating the oracle.
func checkedWrite(t *testing.T, tr *Tree, o *wordOracle, x Interval) {
	t.Helper()
	os := newOverlapSet(t)
	want := o.expectedOverlaps(x)
	tr.InsertWrite(x, os.fn)
	tr.checkInvariants()
	comparePairSets(t, fmt.Sprintf("InsertWrite(%v)", x), os.pairs, want)
	o.applyWrite(x)
	compareProjection(t, fmt.Sprintf("after InsertWrite(%v)", x), tr, o)
}

// checkedRead runs InsertRead, validating overlaps against the oracle and
// updating the oracle.
func checkedRead(t *testing.T, tr *Tree, o *wordOracle, x Interval, leftOf LeftOfFunc) {
	t.Helper()
	os := newOverlapSet(t)
	want := o.expectedOverlaps(x)
	tr.InsertRead(x, leftOf, os.fn)
	tr.checkInvariants()
	comparePairSets(t, fmt.Sprintf("InsertRead(%v)", x), os.pairs, want)
	o.applyRead(x, leftOf)
	compareProjection(t, fmt.Sprintf("after InsertRead(%v)", x), tr, o)
}

// checkedQuery runs Query and validates the overlap set without mutating
// anything.
func checkedQuery(t *testing.T, tr *Tree, o *wordOracle, x Interval) {
	t.Helper()
	os := newOverlapSet(t)
	want := o.expectedOverlaps(x)
	before := dump(tr)
	tr.Query(x, os.fn)
	tr.checkInvariants()
	if after := dump(tr); after != before {
		t.Fatalf("Query(%v) mutated the tree: %s -> %s", x, before, after)
	}
	comparePairSets(t, fmt.Sprintf("Query(%v)", x), os.pairs, want)
}

// rankLeftOf builds a LeftOfFunc from an explicit ranking: higher rank wins
// (is left-of lower rank).
func rankLeftOf(rank map[int32]int) LeftOfFunc {
	return func(a, b int32) bool { return rank[a] > rank[b] }
}

// sortedStarts is a helper for assertions on exact tree contents.
func sortedStarts(tr *Tree) []uint64 {
	var s []uint64
	tr.Walk(func(iv Interval) { s = append(s, iv.Start) })
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}
