package core

import (
	"testing"
)

// FuzzTreeAgainstOracle decodes the fuzz input as a sequence of interval
// operations and checks every tree invariant and the byte-projection
// equivalence after each step. Run with `go test -fuzz=FuzzTree ./internal/core`;
// the seed corpus runs on every ordinary `go test`.
func FuzzTreeAgainstOracle(f *testing.F) {
	f.Add([]byte{0x01, 10, 20, 0x82, 15, 25, 0x43, 5, 30})
	f.Add([]byte{0x00, 0, 255, 0x81, 0, 255, 0x02, 10, 11})
	f.Add([]byte{0x40, 100, 10, 0x41, 90, 30, 0x42, 80, 50})
	f.Fuzz(func(t *testing.T, data []byte) {
		wt, rt := NewTree(), NewTree()
		wo, ro := newWordOracle(), newWordOracle()
		// leftOf by descending accessor ID: deterministic and total.
		lo := func(a, b int32) bool { return a > b }
		acc := int32(0)
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i]
			start := uint64(data[i+1])
			length := uint64(data[i+2]%64) + 1
			iv := Interval{Start: start, End: start + length, Acc: acc}
			acc++
			switch op % 3 {
			case 0:
				os := newOverlapSet(t)
				want := wo.expectedOverlaps(iv)
				wt.InsertWrite(iv, os.fn)
				wt.checkInvariants()
				comparePairSets(t, "fuzz write", os.pairs, want)
				wo.applyWrite(iv)
			case 1:
				os := newOverlapSet(t)
				want := ro.expectedOverlaps(iv)
				rt.InsertRead(iv, lo, os.fn)
				rt.checkInvariants()
				comparePairSets(t, "fuzz read", os.pairs, want)
				ro.applyRead(iv, lo)
			default:
				checkedQuery(t, wt, wo, iv)
				checkedQuery(t, rt, ro, iv)
			}
		}
		compareProjection(t, "fuzz final write tree", wt, wo)
		compareProjection(t, "fuzz final read tree", rt, ro)
	})
}
