package core

import (
	"math/rand"
	"testing"
)

// shapeOf captures the exact structure of a tree — intervals, priorities,
// and topology — as a preorder fingerprint.
func shapeOf(t *Tree) []uint64 {
	var out []uint64
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			out = append(out, 0xDEAD) // nil marker keeps topology in the fingerprint
			return
		}
		out = append(out, n.start, n.end, uint64(n.acc), n.prio)
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}

func buildRandom(t *Tree, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		start := uint64(rng.Intn(1 << 17))
		iv := Interval{Start: start, End: start + uint64(rng.Intn(32)) + 1, Acc: int32(i)}
		if rng.Intn(2) == 0 {
			t.InsertWrite(iv, nil)
		} else {
			t.InsertRead(iv, func(a, b int32) bool { return a < b }, nil)
		}
	}
}

// TestTreeResetRederivesSeed pins the reuse-exactness property the paired
// Tree.Reset/Pool.Reset contract promises: after a Reset, replaying the
// same insertion sequence rebuilds a byte-identical tree — same intervals,
// same priorities, same topology — because the priority stream rewinds to
// the named seed.
func TestTreeResetRederivesSeed(t *testing.T) {
	pool := NewPool()
	tr := NewTreeIn(pool)
	buildRandom(tr, 42, 400)
	first := shapeOf(tr)
	if tr.rng == treapSeed {
		t.Fatal("priority stream never advanced")
	}

	tr.Reset()
	pool.Reset()
	if tr.rng != treapSeed {
		t.Fatalf("Reset left rng at %#x, want the seed %#x", tr.rng, uint64(treapSeed))
	}
	if tr.root != nil || tr.size != 0 {
		t.Fatal("Reset left the tree non-empty")
	}
	if (tr.Stats() != Stats{}) {
		t.Fatalf("Reset left stats %+v", tr.Stats())
	}

	buildRandom(tr, 42, 400)
	second := shapeOf(tr)
	if len(first) != len(second) {
		t.Fatalf("replayed tree has different shape length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replayed tree diverges at fingerprint index %d: %#x vs %#x",
				i, first[i], second[i])
		}
	}
}

// TestPoolResetRetainsChunks checks the allocate-once side of the
// contract: a Reset pool re-carves the chunks it already owns — same chunk
// count after an identical second pass, nodes handed out zeroed.
func TestPoolResetRetainsChunks(t *testing.T) {
	pool := NewPool()
	tr := NewTreeIn(pool)
	buildRandom(tr, 7, 3000) // enough inserts to span several chunks
	chunks := pool.Stats().Chunks
	if chunks < 2 {
		t.Fatalf("want the workload to span chunks, got %d", chunks)
	}

	tr.Reset()
	pool.Reset()
	if got := pool.Stats(); got.Chunks != chunks {
		t.Fatalf("Pool.Reset changed chunk count: %d -> %d", chunks, got.Chunks)
	}
	if got := pool.Stats(); got.Free != 0 || got.Served != 0 || got.Recycled != 0 {
		t.Fatalf("Pool.Reset left counters %+v", got)
	}
	// Every node handed out after Reset must honor the fresh-node contract.
	for i := 0; i < chunks*chunkNodes; i++ {
		n := pool.get()
		if n.start != 0 || n.end != 0 || n.acc != 0 || n.prio != 0 ||
			n.left != nil || n.right != nil || n.parent != nil {
			t.Fatalf("node %d carved dirty after Reset: %+v", i, n)
		}
	}
	if got := pool.Stats().Chunks; got != chunks {
		t.Fatalf("re-carving the same volume grew the pool: %d -> %d", chunks, got)
	}
}
