package core

// InsertWrite inserts a write interval x into the tree, implementing
// InsertWriteInterval from §4.1 of the paper. The current strand is always
// the last writer of every word it writes, so x always survives intact:
// every stored interval overlapping x is reported via onOverlap (the caller
// checks it for races) and then trimmed or removed to keep the tree's
// intervals disjoint.
//
// Walking down from the root, each visited interval y falls into one of the
// paper's four cases:
//
//   - A (no overlap): descend toward the side of y that can still contain
//     overlaps; attach x if that side is empty.
//   - B (partial overlap): trim y back to the non-overlapping part and keep
//     descending with x unchanged.
//   - C (y strictly covers x): y splits into up to three pieces; the middle
//     becomes x in place, and the outer pieces re-attach as fresh leaves
//     that cannot overlap anything else.
//   - D (x covers y): y's node is rewritten as x, and RemoveOverlap scans
//     both subtrees for further victims.
func (t *Tree) InsertWrite(x Interval, onOverlap OverlapFunc) {
	if x.Start >= x.End {
		panic("core: empty write interval")
	}
	t.stats.Ops++
	defer t.rebalance()
	if t.root == nil {
		t.attach(nil, false, t.newNode(x))
		return
	}
	cur := t.root
	for {
		t.visit(cur)
		switch {
		case x.Start >= cur.end: // case A: x entirely right of cur
			if cur.right == nil {
				t.attach(cur, false, t.newNode(x))
				return
			}
			cur = cur.right

		case x.End <= cur.start: // case A: x entirely left of cur
			if cur.left == nil {
				t.attach(cur, true, t.newNode(x))
				return
			}
			cur = cur.left

		case x.Start <= cur.start && cur.end <= x.End: // case D: x covers cur
			t.emitOverlap(onOverlap, cur.acc, cur.start, cur.end)
			cur.start, cur.end, cur.acc = x.Start, x.End, x.Acc
			t.removeOverlapLeft(cur, x, onOverlap)
			t.removeOverlapRight(cur, x, onOverlap)
			return

		case cur.start <= x.Start && x.End <= cur.end: // case C: cur covers x
			t.emitOverlap(onOverlap, cur.acc, x.Start, x.End)
			left := Interval{Start: cur.start, End: x.Start, Acc: cur.acc}
			right := Interval{Start: x.End, End: cur.end, Acc: cur.acc}
			cur.start, cur.end, cur.acc = x.Start, x.End, x.Acc
			if left.Start < left.End {
				t.insertFresh(cur, true, left)
			}
			if right.Start < right.End {
				t.insertFresh(cur, false, right)
			}
			return

		case cur.start < x.Start: // case B: x overlaps cur's right part
			t.emitOverlap(onOverlap, cur.acc, x.Start, cur.end)
			cur.end = x.Start
			if cur.right == nil {
				t.attach(cur, false, t.newNode(x))
				return
			}
			cur = cur.right

		default: // case B: x overlaps cur's left part
			t.emitOverlap(onOverlap, cur.acc, cur.start, x.End)
			cur.start = x.End
			if cur.left == nil {
				t.attach(cur, true, t.newNode(x))
				return
			}
			cur = cur.left
		}
	}
}

func (t *Tree) emitOverlap(onOverlap OverlapFunc, acc int32, lo, hi uint64) {
	t.stats.Overlaps++
	if onOverlap != nil {
		onOverlap(acc, lo, hi)
	}
}

// removeOverlapLeft implements RemoveOverlapLeft(y.left, x): x has just been
// installed at y, so every interval in y's old left subtree ends at or
// before x.End; those that reach past x.Start overlap x and must be trimmed
// or removed.
func (t *Tree) removeOverlapLeft(y *node, x Interval, onOverlap OverlapFunc) {
	z := y.left
	for z != nil {
		t.visit(z)
		switch {
		case z.end <= x.Start: // case A: no overlap; only z's right side can overlap
			z = z.right

		case z.start < x.Start: // case B: partial overlap; trim z, right subtree dies
			t.emitOverlap(onOverlap, z.acc, x.Start, z.end)
			z.end = x.Start
			sub := z.right
			z.right = nil
			t.dropSubtree(sub, x, onOverlap)
			return

		default: // case C: x covers z; splice z out, keep scanning its left subtree
			t.emitOverlap(onOverlap, z.acc, z.start, z.end)
			sub := z.right
			z.right = nil
			t.dropSubtree(sub, x, onOverlap)
			repl := z.left
			t.replaceChild(z, repl)
			t.size--
			t.pool.put(z)
			z = repl
		}
	}
}

// removeOverlapRight is the mirror image of removeOverlapLeft for y's right
// subtree: every interval there starts at or after x.Start; those starting
// before x.End overlap x.
func (t *Tree) removeOverlapRight(y *node, x Interval, onOverlap OverlapFunc) {
	z := y.right
	for z != nil {
		t.visit(z)
		switch {
		case z.start >= x.End: // case A
			z = z.left

		case z.end > x.End: // case B: partial overlap; trim z, left subtree dies
			t.emitOverlap(onOverlap, z.acc, z.start, x.End)
			z.start = x.End
			sub := z.left
			z.left = nil
			t.dropSubtree(sub, x, onOverlap)
			return

		default: // case C: x covers z
			t.emitOverlap(onOverlap, z.acc, z.start, z.end)
			sub := z.left
			z.left = nil
			t.dropSubtree(sub, x, onOverlap)
			repl := z.right
			t.replaceChild(z, repl)
			t.size--
			t.pool.put(z)
			z = repl
		}
	}
}
