package core

import "unsafe"

// chunkNodes is the slab granularity: one heap allocation amortized over
// this many treap nodes. 512 nodes ≈ 28 KiB per chunk — big enough to make
// node allocation disappear from profiles, small enough that tiny trees
// don't overcommit.
const chunkNodes = 512

// nodePool is a slab allocator for treap nodes. Nodes are carved out of
// chunked arrays (restoring the locality a per-insert new(node) destroys)
// and recycled through an intrusive free list threaded over the `right`
// pointers of retired nodes. InsertWrite's RemoveOverlap cases feed the
// free list; in steady state — where the paper's Lemma 4.1 bounds the live
// interval count — insertion allocates nothing.
type nodePool struct {
	chunks   [][]node
	used     int   // nodes handed out from the newest chunk
	free     *node // intrusive free list (linked via right)
	nfree    int
	served   uint64 // total get() calls
	recycled uint64 // get() calls satisfied by the free list
	heapOnly bool   // benchmark ablation: fall back to one heap object per node
}

// get returns a zero-linked node ready for attach.
func (p *nodePool) get() *node {
	p.served++
	if p.heapOnly {
		return &node{}
	}
	if n := p.free; n != nil {
		p.free = n.right
		p.nfree--
		p.recycled++
		n.right = nil
		return n
	}
	if len(p.chunks) == 0 || p.used == chunkNodes {
		p.chunks = append(p.chunks, make([]node, chunkNodes))
		p.used = 0
	}
	n := &p.chunks[len(p.chunks)-1][p.used]
	p.used++
	return n
}

// Pool is a shareable treap-node slab allocator. Many trees (e.g. the
// per-page read/write treaps of one detector engine) can draw from one Pool
// via NewTreeIn, so the 512-node chunk granularity is amortized across the
// whole page directory instead of paid per tree. A Pool is single-owner:
// trees sharing it must belong to the same goroutine — in the sharded
// pipeline each shard worker owns one Pool, with zero cross-shard
// synchronization.
type Pool struct {
	nodePool
}

// NewPool returns an empty Pool.
func NewPool() *Pool { return &Pool{} }

// put retires a node that has been unlinked from the tree. Links are
// cleared so a pooled node can never lead back into live structure.
func (p *nodePool) put(n *node) {
	if p.heapOnly {
		return // dropped for the garbage collector, like the seed code
	}
	n.left, n.parent = nil, nil
	n.right = p.free
	p.free = n
	p.nfree++
}

// PoolStats describes the state of a Tree's slab allocator.
type PoolStats struct {
	Chunks   int    // slab chunks allocated from the Go heap
	Live     int    // nodes currently linked in the tree
	Free     int    // nodes parked on the free list
	Served   uint64 // total node requests
	Recycled uint64 // requests satisfied without touching the heap
}

// Bytes returns the pool's total heap footprint.
func (ps PoolStats) Bytes() uint64 {
	return uint64(ps.Chunks) * chunkNodes * uint64(unsafe.Sizeof(node{}))
}

// PoolStats returns the tree's slab-allocator counters.
func (t *Tree) PoolStats() PoolStats {
	return PoolStats{
		Chunks:   len(t.pool.chunks),
		Live:     t.size,
		Free:     t.pool.nfree,
		Served:   t.pool.served,
		Recycled: t.pool.recycled,
	}
}
