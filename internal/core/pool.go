package core

import "unsafe"

// chunkNodes is the slab granularity: one heap allocation amortized over
// this many treap nodes. 512 nodes ≈ 28 KiB per chunk — big enough to make
// node allocation disappear from profiles, small enough that tiny trees
// don't overcommit.
const chunkNodes = 512

// nodePool is a slab allocator for treap nodes. Nodes are carved out of
// chunked arrays (restoring the locality a per-insert new(node) destroys)
// and recycled through an intrusive free list threaded over the `right`
// pointers of retired nodes. InsertWrite's RemoveOverlap cases feed the
// free list; in steady state — where the paper's Lemma 4.1 bounds the live
// interval count — insertion allocates nothing.
type nodePool struct {
	chunks   [][]node
	cur      int   // chunk currently being carved
	used     int   // nodes handed out from chunks[cur]
	free     *node // intrusive free list (linked via right)
	nfree    int
	served   uint64 // total get() calls
	recycled uint64 // get() calls satisfied by the free list
	heapOnly bool   // benchmark ablation: fall back to one heap object per node
}

// get returns a zero-linked node ready for attach.
func (p *nodePool) get() *node {
	p.served++
	if p.heapOnly {
		return &node{}
	}
	if n := p.free; n != nil {
		p.free = n.right
		p.nfree--
		p.recycled++
		n.right = nil
		return n
	}
	if p.used == chunkNodes {
		p.cur++
		p.used = 0
	}
	if p.cur == len(p.chunks) {
		p.chunks = append(p.chunks, make([]node, chunkNodes))
	}
	n := &p.chunks[p.cur][p.used]
	p.used++
	return n
}

// reset parks every chunk for re-carving without releasing any of them:
// the free list is discarded (its nodes live inside the chunks), the
// carve cursor rewinds to the first chunk, and all carved memory is
// zeroed so get() keeps its fresh-node contract. Reset costs one memclr
// over the carved region; the chunk count — the pool's heap footprint —
// never shrinks and stops growing once the pool has seen its peak run.
func (p *nodePool) reset() {
	hi := p.cur
	if hi >= len(p.chunks) {
		hi = len(p.chunks) - 1
	}
	for i := 0; i < hi; i++ {
		clear(p.chunks[i])
	}
	if hi >= 0 {
		clear(p.chunks[hi][:p.used])
	}
	p.cur, p.used = 0, 0
	p.free, p.nfree = nil, 0
	p.served, p.recycled = 0, 0
}

// Pool is a shareable treap-node slab allocator. Many trees (e.g. the
// per-page read/write treaps of one detector engine) can draw from one Pool
// via NewTreeIn, so the 512-node chunk granularity is amortized across the
// whole page directory instead of paid per tree. A Pool is single-owner:
// trees sharing it must belong to the same goroutine — in the sharded
// pipeline each shard worker owns one Pool, with zero cross-shard
// synchronization.
type Pool struct {
	nodePool
}

// NewPool returns an empty Pool.
func NewPool() *Pool { return &Pool{} }

// Reset returns the Pool to its freshly-constructed state while retaining
// every chunk it ever allocated, so trees rebuilt over it after a Reset
// carve the same memory again instead of growing the heap. Every tree
// drawing from the pool must be Reset (or discarded) alongside it: after
// Pool.Reset all previously handed-out nodes are recycled wholesale.
func (p *Pool) Reset() { p.reset() }

// put retires a node that has been unlinked from the tree. Links are
// cleared so a pooled node can never lead back into live structure.
func (p *nodePool) put(n *node) {
	if p.heapOnly {
		return // dropped for the garbage collector, like the seed code
	}
	n.left, n.parent = nil, nil
	n.right = p.free
	p.free = n
	p.nfree++
}

// PoolStats describes the state of a Tree's slab allocator.
type PoolStats struct {
	Chunks   int    // slab chunks allocated from the Go heap
	Live     int    // nodes currently linked in the tree
	Free     int    // nodes parked on the free list
	Served   uint64 // total node requests
	Recycled uint64 // requests satisfied without touching the heap
}

// Bytes returns the pool's total heap footprint.
func (ps PoolStats) Bytes() uint64 {
	return uint64(ps.Chunks) * chunkNodes * uint64(unsafe.Sizeof(node{}))
}

// LiveBytes returns the bytes of pool nodes currently linked into trees:
// nodes carved from chunks minus nodes parked on the free list. Unlike
// PoolStats.Bytes it excludes retained-but-uncarved chunk capacity, so it
// rewinds to zero on Reset — the measure a per-run memory cap wants.
func (p *Pool) LiveBytes() uint64 {
	carved := p.cur*chunkNodes + p.used
	return uint64(carved-p.nfree) * uint64(unsafe.Sizeof(node{}))
}

// Stats returns the pool-level slab counters. Live is zero at pool level:
// the pool does not know how many of its carved nodes are still linked
// into trees (Tree.PoolStats fills it in for a single tree).
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Chunks:   len(p.chunks),
		Free:     p.nfree,
		Served:   p.served,
		Recycled: p.recycled,
	}
}

// PoolStats returns the tree's slab-allocator counters.
func (t *Tree) PoolStats() PoolStats {
	return PoolStats{
		Chunks:   len(t.pool.chunks),
		Live:     t.size,
		Free:     t.pool.nfree,
		Served:   t.pool.served,
		Recycled: t.pool.recycled,
	}
}
