package core

// slot identifies an empty-or-occupied subtree position: the child slot of
// parent on the given side (parent nil meaning the root slot). Read
// insertion defers sub-interval work through slots so that all structural
// changes finish before any rebalancing rotation runs.
type slot struct {
	parent *node
	toLeft bool
	iv     Interval
}

// InsertRead inserts a read interval x, implementing InsertReadInterval from
// §4.2 of the paper. The read tree stores the leftmost reader of every word,
// so on overlap the stored accessor survives unless the new accessor is
// left-of it — which means the new interval, not the old one, may be split
// into pieces that recurse into both subtrees (case D).
//
// leftOf decides the winner; onOverlap (optional) reports every stored
// interval the operation overlaps, mirroring InsertWrite's accounting.
func (t *Tree) InsertRead(x Interval, leftOf LeftOfFunc, onOverlap OverlapFunc) {
	if x.Start >= x.End {
		panic("core: empty read interval")
	}
	t.stats.Ops++
	defer t.rebalance()
	t.work = append(t.work[:0], slot{parent: nil, toLeft: false, iv: x})
	for len(t.work) > 0 {
		s := t.work[len(t.work)-1]
		t.work = t.work[:len(t.work)-1]
		t.insertReadSlot(s, leftOf, onOverlap, &t.work)
	}
}

// insertReadSlot performs the §4.2 case walk for one pending interval,
// starting at the given subtree slot. Case D pushes its outer pieces onto
// the worklist instead of recursing.
func (t *Tree) insertReadSlot(s slot, leftOf LeftOfFunc, onOverlap OverlapFunc, work *[]slot) {
	cur := parentChild(s.parent, s.toLeft, t)
	if cur == nil {
		t.attach(s.parent, s.toLeft, t.newNode(s.iv))
		return
	}
	x := s.iv
	for {
		t.visit(cur)
		switch {
		case x.Start >= cur.end: // case A: x entirely right of cur
			if cur.right == nil {
				t.attach(cur, false, t.newNode(x))
				return
			}
			cur = cur.right

		case x.End <= cur.start: // case A: x entirely left of cur
			if cur.left == nil {
				t.attach(cur, true, t.newNode(x))
				return
			}
			cur = cur.left

		case x.Start <= cur.start && cur.end <= x.End: // case D: x covers cur
			t.emitOverlap(onOverlap, cur.acc, cur.start, cur.end)
			if leftOf(x.Acc, cur.acc) {
				cur.acc = x.Acc
			}
			if x.Start < cur.start {
				*work = append(*work, slot{parent: cur, toLeft: true, iv: Interval{Start: x.Start, End: cur.start, Acc: x.Acc}})
			}
			if cur.end < x.End {
				*work = append(*work, slot{parent: cur, toLeft: false, iv: Interval{Start: cur.end, End: x.End, Acc: x.Acc}})
			}
			return

		case cur.start <= x.Start && x.End <= cur.end: // case C: cur covers x
			t.emitOverlap(onOverlap, cur.acc, x.Start, x.End)
			if !leftOf(x.Acc, cur.acc) {
				return // old reader keeps the whole interval
			}
			left := Interval{Start: cur.start, End: x.Start, Acc: cur.acc}
			right := Interval{Start: x.End, End: cur.end, Acc: cur.acc}
			cur.start, cur.end, cur.acc = x.Start, x.End, x.Acc
			if left.Start < left.End {
				t.insertFresh(cur, true, left)
			}
			if right.Start < right.End {
				t.insertFresh(cur, false, right)
			}
			return

		case cur.start < x.Start: // case B: x overlaps cur's right part
			t.emitOverlap(onOverlap, cur.acc, x.Start, cur.end)
			if leftOf(x.Acc, cur.acc) {
				cur.end = x.Start // new reader takes the overlap
			} else {
				x.Start = cur.end // old reader keeps it; trim x
			}
			if cur.right == nil {
				t.attach(cur, false, t.newNode(x))
				return
			}
			cur = cur.right

		default: // case B: x overlaps cur's left part
			t.emitOverlap(onOverlap, cur.acc, cur.start, x.End)
			if leftOf(x.Acc, cur.acc) {
				cur.start = x.End
			} else {
				x.End = cur.start
			}
			if cur.left == nil {
				t.attach(cur, true, t.newNode(x))
				return
			}
			cur = cur.left
		}
	}
}
