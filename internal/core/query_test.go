package core

import "testing"

func TestQueryEmptyTree(t *testing.T) {
	tr := NewTree()
	tr.Query(Interval{0, 100, 1}, func(acc int32, lo, hi uint64) {
		t.Fatal("overlap reported on empty tree")
	})
}

func TestQueryNoOverlap(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	checkedWrite(t, tr, o, Interval{10, 20, 1})
	checkedWrite(t, tr, o, Interval{40, 50, 2})
	checkedQuery(t, tr, o, Interval{20, 40, 9}) // exactly the gap, touching both
	checkedQuery(t, tr, o, Interval{0, 10, 9})
	checkedQuery(t, tr, o, Interval{50, 60, 9})
}

func TestQuerySingleAndMultiOverlap(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	for i := 0; i < 10; i++ {
		checkedWrite(t, tr, o, Interval{uint64(i * 20), uint64(i*20 + 10), int32(i)})
	}
	checkedQuery(t, tr, o, Interval{5, 8, 99})    // inside one interval
	checkedQuery(t, tr, o, Interval{15, 45, 99})  // spans two
	checkedQuery(t, tr, o, Interval{0, 200, 99})  // spans all
	checkedQuery(t, tr, o, Interval{95, 125, 99}) // straddles a gap
}

func TestQueryBoundaryClipping(t *testing.T) {
	tr := NewTree()
	tr.InsertWrite(Interval{10, 30, 7}, nil)
	var lo, hi uint64
	calls := 0
	tr.Query(Interval{5, 15, 0}, func(acc int32, l, h uint64) { calls++; lo, hi = l, h })
	if calls != 1 || lo != 10 || hi != 15 {
		t.Fatalf("query clip = [%d,%d) in %d calls, want [10,15) once", lo, hi, calls)
	}
}

func TestQueryCountsStats(t *testing.T) {
	tr := NewTree()
	tr.InsertWrite(Interval{0, 10, 1}, nil)
	tr.InsertWrite(Interval{20, 30, 2}, nil)
	tr.ResetStats()
	tr.Query(Interval{5, 25, 0}, nil)
	st := tr.Stats()
	if st.Ops != 1 {
		t.Fatalf("Ops = %d, want 1", st.Ops)
	}
	if st.Overlaps != 2 {
		t.Fatalf("Overlaps = %d, want 2", st.Overlaps)
	}
	if st.NodesVisited == 0 {
		t.Fatal("NodesVisited = 0, want > 0")
	}
}

func TestHeightBalancedVsUnbalanced(t *testing.T) {
	// Sequential (sorted) inserts: a plain BST degenerates to a path, the
	// treap stays logarithmic. This is the "any balanced BST" ablation's
	// correctness anchor.
	const n = 4096
	bal := NewTree()
	unbal := NewTree()
	unbal.SetBalancing(false)
	for i := 0; i < n; i++ {
		iv := Interval{uint64(i * 10), uint64(i*10 + 5), int32(i)}
		bal.InsertWrite(iv, nil)
		unbal.InsertWrite(iv, nil)
	}
	bal.checkInvariants()
	unbal.checkInvariants()
	if h := bal.Height(); h > 60 {
		t.Errorf("treap height %d is not logarithmic for n=%d", h, n)
	}
	if h := unbal.Height(); h != n {
		t.Errorf("unbalanced sorted-insert height = %d, want %d (a path)", h, n)
	}
}

func TestWalkOrdered(t *testing.T) {
	tr := NewTree()
	o := newWordOracle()
	for _, s := range []uint64{50, 10, 90, 30, 70, 20, 80} {
		checkedWrite(t, tr, o, Interval{s, s + 5, int32(s)})
	}
	starts := sortedStarts(tr)
	var prev uint64
	first := true
	tr.Walk(func(iv Interval) {
		if !first && iv.Start < prev {
			t.Fatal("Walk not in address order")
		}
		prev = iv.Start
		first = false
	})
	if len(starts) != 7 {
		t.Fatalf("got %d intervals, want 7", len(starts))
	}
}
