package core

// node is one stored interval. Nodes are keyed by start; the tree-wide
// invariant that stored intervals are pairwise disjoint makes the key order
// identical to the address order of the intervals themselves.
type node struct {
	start, end uint64
	acc        int32
	prio       uint64
	left       *node
	right      *node
	parent     *node
}

func (n *node) interval() Interval { return Interval{Start: n.start, End: n.end, Acc: n.acc} }

// Stats aggregates the per-operation counters reported in Figure 8 of the
// paper: how many tree nodes an operation visits and how many stored
// intervals it finds overlapping its argument.
type Stats struct {
	Ops          uint64 // top-level Insert/Query operations
	NodesVisited uint64 // nodes touched across all operations
	Overlaps     uint64 // overlapping stored intervals across all operations
}

// Tree is a non-overlapping interval treap with randomized
// (deterministically seeded) priorities; use SetBalancing to turn
// priorities off and degrade to a plain BST for ablation runs. Construct
// trees with NewTree (private node pool) or NewTreeIn (shared pool).
type Tree struct {
	root  *node
	size  int
	rng   uint64
	unbal bool // when true, skip rotations (plain BST ablation)
	fresh []*node
	work  []slot // reusable InsertRead worklist
	pool  *Pool
	stats Stats
}

// treapSeed is the deterministic xorshift64* seed every tree starts from.
// Reset must restore exactly this value: reused trees re-derive the same
// priority stream as fresh ones, so tree shapes — and therefore every
// traversal counter — are identical between a reused and a fresh detector.
const treapSeed = 0x9E3779B97F4A7C15

// NewTree returns an empty tree seeded deterministically, with its own
// node pool.
func NewTree() *Tree { return NewTreeIn(NewPool()) }

// NewTreeIn returns an empty tree seeded deterministically that draws its
// nodes from the given shared pool. Because every tree starts from the same
// seed and the priority stream is a per-tree field, tree shapes depend only
// on each tree's own insertion sequence — not on pool sharing — which keeps
// per-page trees byte-identical across shard counts.
func NewTreeIn(pool *Pool) *Tree { return &Tree{rng: treapSeed, pool: pool} }

// Reset empties the tree and re-arms it for reuse: the root is dropped
// (without walking it — the caller resets the shared Pool wholesale), the
// priority stream rewinds to the seed, and the counters zero. A Reset tree
// is indistinguishable from a fresh NewTreeIn over the same pool; only the
// retained capacity of its worklists differs. The caller owns the pool
// lifecycle: Tree.Reset must be paired with a Pool.Reset (or the pool's
// nodes leak until then), which is why it does not free nodes itself.
func (t *Tree) Reset() {
	t.root = nil
	t.size = 0
	t.rng = treapSeed
	t.fresh = t.fresh[:0]
	t.work = t.work[:0]
	t.stats = Stats{}
}

// Drop empties the tree like Reset but returns every node to the pool's
// free list first, so the pool can recycle them for other trees without a
// wholesale Pool.Reset. This is the quiescing path: a page that has hit its
// race threshold hands its history back while sibling pages keep growing
// out of the same pool. A dropped tree, like a Reset one, is
// indistinguishable from a fresh NewTreeIn over the same pool.
func (t *Tree) Drop() {
	t.putSubtree(t.root)
	t.Reset()
}

// putSubtree returns every node under n (inclusive) to the pool, without
// stats or overlap reporting — this is bulk disposal, not a query.
func (t *Tree) putSubtree(n *node) {
	if n == nil {
		return
	}
	l, r := n.left, n.right
	t.pool.put(n)
	t.putSubtree(l)
	t.putSubtree(r)
}

// SetBalancing enables (default) or disables treap rotations. Disabling
// turns the structure into an unbalanced BST, used by the "any balanced BST
// would work" ablation to show the cost of imbalance.
func (t *Tree) SetBalancing(on bool) { t.unbal = !on }

// Size returns the number of intervals currently stored.
func (t *Tree) Size() int { return t.size }

// Stats returns the accumulated operation counters.
func (t *Tree) Stats() Stats { return t.stats }

// ResetStats zeroes the operation counters.
func (t *Tree) ResetStats() { t.stats = Stats{} }

// nextPrio draws the next deterministic xorshift64* priority.
func (t *Tree) nextPrio() uint64 {
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

func (t *Tree) visit(*node) { t.stats.NodesVisited++ }

// newNode draws a node from the slab pool for iv with a fresh priority.
func (t *Tree) newNode(iv Interval) *node {
	if iv.Start >= iv.End {
		panic("core: empty interval")
	}
	n := t.pool.get()
	n.start, n.end, n.acc, n.prio = iv.Start, iv.End, iv.Acc, t.nextPrio()
	return n
}

// attach links child into the given child slot of parent (parent nil means
// the root slot), registers it for post-operation rebalancing, and adjusts
// the size. The slot must be empty.
func (t *Tree) attach(parent *node, toLeft bool, child *node) {
	child.parent = parent
	if parent == nil {
		if t.root != nil {
			panic("core: attach to occupied root")
		}
		t.root = child
	} else if toLeft {
		if parent.left != nil {
			panic("core: attach to occupied left slot")
		}
		parent.left = child
	} else {
		if parent.right != nil {
			panic("core: attach to occupied right slot")
		}
		parent.right = child
	}
	t.size++
	t.fresh = append(t.fresh, child)
}

// replaceChild makes repl occupy the tree position of old (whose parent is
// known by the caller). repl may be nil.
func (t *Tree) replaceChild(old, repl *node) {
	p := old.parent
	if repl != nil {
		repl.parent = p
	}
	switch {
	case p == nil:
		t.root = repl
	case p.left == old:
		p.left = repl
	default:
		p.right = repl
	}
}

// dropSubtree removes the whole subtree rooted at n (already detached by the
// caller), reporting every stored interval as overlapping x via onOverlap.
// The paper's REMOVEOVERLAP cases B and C remove entire subtrees this way;
// walking them is what makes race checks on removed intervals possible.
func (t *Tree) dropSubtree(n *node, x Interval, onOverlap OverlapFunc) {
	if n == nil {
		return
	}
	t.visit(n)
	t.stats.Overlaps++
	if onOverlap != nil {
		lo, hi := maxU64(n.start, x.Start), minU64(n.end, x.End)
		if lo >= hi {
			panic("core: dropped interval does not overlap")
		}
		onOverlap(n.acc, lo, hi)
	}
	t.size--
	l, r := n.left, n.right
	t.pool.put(n)
	t.dropSubtree(l, x, onOverlap)
	t.dropSubtree(r, x, onOverlap)
}

// rotateLeft rotates the edge between n and its right child, raising the
// child. rotateRight is the mirror image.
func (t *Tree) rotateLeft(n *node) {
	r := n.right
	n.right = r.left
	if r.left != nil {
		r.left.parent = n
	}
	r.parent = n.parent
	switch {
	case n.parent == nil:
		t.root = r
	case n.parent.left == n:
		n.parent.left = r
	default:
		n.parent.right = r
	}
	r.left = n
	n.parent = r
}

func (t *Tree) rotateRight(n *node) {
	l := n.left
	n.left = l.right
	if l.right != nil {
		l.right.parent = n
	}
	l.parent = n.parent
	switch {
	case n.parent == nil:
		t.root = l
	case n.parent.left == n:
		n.parent.left = l
	default:
		n.parent.right = l
	}
	l.right = n
	n.parent = l
}

// rebalance bubbles every node attached during the current operation up to
// its heap position. Each attached node is a leaf at bubble time, so this is
// the standard treap insertion fix-up; doing it after the structural phase
// keeps the paper's recursive case analysis free of concurrent restructuring.
func (t *Tree) rebalance() {
	if t.unbal {
		t.fresh = t.fresh[:0]
		return
	}
	for _, n := range t.fresh {
		for n.parent != nil && n.parent.prio < n.prio {
			if n.parent.left == n {
				t.rotateRight(n.parent)
			} else {
				t.rotateLeft(n.parent)
			}
		}
	}
	t.fresh = t.fresh[:0]
}

// insertFresh walks from the subtree slot (parent, toLeft) down to the
// correct empty slot for iv — which is guaranteed not to overlap anything in
// that subtree — and attaches a new node there.
func (t *Tree) insertFresh(parent *node, toLeft bool, iv Interval) {
	cur := parentChild(parent, toLeft, t)
	if cur == nil {
		t.attach(parent, toLeft, t.newNode(iv))
		return
	}
	for {
		t.visit(cur)
		if iv.Start >= cur.end {
			if cur.right == nil {
				t.attach(cur, false, t.newNode(iv))
				return
			}
			cur = cur.right
		} else if iv.End <= cur.start {
			if cur.left == nil {
				t.attach(cur, true, t.newNode(iv))
				return
			}
			cur = cur.left
		} else {
			panic("core: insertFresh found an overlap")
		}
	}
}

func parentChild(parent *node, toLeft bool, t *Tree) *node {
	if parent == nil {
		return t.root
	}
	if toLeft {
		return parent.left
	}
	return parent.right
}

// Query enumerates, without modifying the tree, every stored interval that
// overlaps x, reporting the overlapping range for each. Because stored
// intervals are disjoint and keyed by start, the overlapping intervals form
// a contiguous run in key order: Query descends to the first stored interval
// whose end exceeds x.Start and then walks in-order successors while their
// start precedes x.End — O(h + k) with no augmentation.
func (t *Tree) Query(x Interval, onOverlap OverlapFunc) {
	if x.Start >= x.End {
		panic("core: empty query interval")
	}
	t.stats.Ops++
	// Find the leftmost node with end > x.Start. Disjointness makes "end"
	// monotone in key order, so this is a standard monotone-predicate search.
	var first *node
	cur := t.root
	for cur != nil {
		t.visit(cur)
		if cur.end > x.Start {
			first = cur
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	for n := first; n != nil && n.start < x.End; n = successor(t, n) {
		t.stats.Overlaps++
		if onOverlap != nil {
			onOverlap(n.acc, maxU64(n.start, x.Start), minU64(n.end, x.End))
		}
	}
}

// successor returns the in-order successor of n, charging visited nodes to
// the tree's stats.
func successor(t *Tree, n *node) *node {
	if n.right != nil {
		n = n.right
		t.visit(n)
		for n.left != nil {
			n = n.left
			t.visit(n)
		}
		return n
	}
	for n.parent != nil && n.parent.right == n {
		n = n.parent
		t.visit(n)
	}
	return n.parent
}

// Walk calls fn on every stored interval in address order. It is used by
// tests and by tools that dump the access history.
func (t *Tree) Walk(fn func(Interval)) {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		rec(n.left)
		fn(n.interval())
		rec(n.right)
	}
	rec(t.root)
}

// Height returns the height of the tree (0 for an empty tree), used by
// balance diagnostics and the plain-BST ablation.
func (t *Tree) Height() int {
	var rec func(n *node) int
	rec = func(n *node) int {
		if n == nil {
			return 0
		}
		l, r := rec(n.left), rec(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(t.root)
}

// checkInvariants panics if the BST order, the parent links, the heap
// property (when balancing is on), or the disjointness invariant is
// violated. Tests call this after every operation.
func (t *Tree) checkInvariants() {
	var prevEnd uint64
	var count int
	first := true
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		if n.left != nil && n.left.parent != n {
			panic("core: bad left parent link")
		}
		if n.right != nil && n.right.parent != n {
			panic("core: bad right parent link")
		}
		if !t.unbal {
			if n.left != nil && n.left.prio > n.prio {
				panic("core: heap violation (left)")
			}
			if n.right != nil && n.right.prio > n.prio {
				panic("core: heap violation (right)")
			}
		}
		rec(n.left)
		if n.start >= n.end {
			panic("core: empty stored interval")
		}
		if !first && n.start < prevEnd {
			panic("core: overlapping stored intervals")
		}
		first = false
		prevEnd = n.end
		count++
		rec(n.right)
	}
	if t.root != nil && t.root.parent != nil {
		panic("core: root has a parent")
	}
	rec(t.root)
	if count != t.size {
		panic("core: size mismatch")
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
