// Package serve implements a long-lived trace-ingest service: an HTTP
// server that accepts recorded execution traces, replays each through a
// bounded fleet of pre-warmed, reused Runners, and exposes the resulting
// race reports over a small JSON API.
//
// The service is the payoff of the reset-and-reuse Runner lifecycle: every
// worker owns one Runner whose slab pools, page directories, and pipeline
// state are allocated once and rewound between traces, so steady-state
// ingest performs no per-trace heap growth. Reports are byte-identical to
// fresh-Runner replays — the reuse-exactness contract is load-bearing
// here, not an optimization footnote.
//
// API:
//
//	POST /v1/traces      body: raw trace bytes → {"id": "t-000001"} (202)
//	GET  /v1/results/ID  → result JSON (status queued|running|done|error)
//	GET  /v1/statusz     → pool utilization and admission counters
//
// Admission is backpressured: a bounded queue sits in front of the worker
// fleet and a full queue rejects uploads with 429 instead of buffering
// without bound. Per-run caps bound each replay's memory: uploads larger
// than MaxTraceBytes are rejected with 413 before queuing, and traces
// exceeding the MaxEvents budget are aborted mid-replay (the worker's
// Runner resets and stays in the pool). Both show up in Stats.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"stint"
	"stint/trace"
)

// Config configures a Server. The zero value serves with two warm Runners
// running the STINT detector.
type Config struct {
	// Runners is the worker-fleet size: that many Runners are built and
	// warmed at startup, and at most that many traces replay concurrently.
	// Default 2.
	Runners int
	// QueueDepth bounds the admission queue in front of the fleet; a full
	// queue rejects uploads with 429. Default 2×Runners.
	QueueDepth int
	// MaxTraceBytes rejects uploads larger than this with 413 before they
	// reach the queue. Default 64 MiB; negative disables the cap.
	MaxTraceBytes int64
	// MaxEvents bounds the events one replay may consume
	// (trace.Options.MaxEvents); an oversized trace aborts with its result
	// status "error" and counts as oversized in Stats. 0 = unbounded.
	MaxEvents uint64
	// Opts configures every pooled Runner (detector, pipeline mode, race
	// recording bounds, and the per-run resource caps PageQuiesceThreshold
	// and MaxHistoryBytes — a replay tripping the history cap aborts with
	// its result status "error" and counts as oversized, and the worker's
	// Runner resets and stays in the pool). Detector defaults to
	// DetectorSTINT; Tracer and OnRace must be unset — the service owns
	// both ends of the replay.
	Opts stint.Options
	// MaxResults bounds the retained result set; the oldest results are
	// evicted first. Default 256.
	MaxResults int
	// FreshRunners, when true, builds a new Runner for every trace instead
	// of reusing the warm pool. This is the benchmark baseline the warm
	// pool is measured against; production servers leave it false.
	FreshRunners bool
}

func (c Config) withDefaults() Config {
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Runners
	}
	if c.MaxTraceBytes == 0 {
		c.MaxTraceBytes = 64 << 20
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 256
	}
	if c.Opts.Detector == stint.DetectorOff {
		c.Opts.Detector = stint.DetectorSTINT
	}
	if c.Opts.MaxRacesRecorded == 0 {
		c.Opts.MaxRacesRecorded = stint.DefaultMaxRacesRecorded
	}
	return c
}

// Result is the JSON-visible state of one submitted trace.
type Result struct {
	ID     string `json:"id"`
	Status string `json:"status"` // queued | running | done | error
	Error  string `json:"error,omitempty"`
	// Filled in when Status == "done".
	RaceCount uint64   `json:"race_count"`
	Strands   int      `json:"strands"`
	Races     []string `json:"races,omitempty"` // canonical order, Race.String() form
	WallTime  string   `json:"wall_time,omitempty"`

	done chan struct{}
}

// Stats is the /v1/statusz payload: pool utilization and admission
// counters since the server started.
type Stats struct {
	Runners      int     `json:"runners"`
	Busy         int     `json:"busy"`
	Idle         int     `json:"idle"`
	QueueLen     int     `json:"queue_len"`
	QueueCap     int     `json:"queue_cap"`
	Admitted     uint64  `json:"admitted"`
	Rejected     uint64  `json:"rejected"`  // 429s: queue full
	Oversized    uint64  `json:"oversized"` // 413s + MaxEvents/MaxHistoryBytes aborts
	Failed       uint64  `json:"failed"`    // replay errors other than oversize
	Completed    uint64  `json:"completed"`
	UptimeSec    float64 `json:"uptime_sec"`
	TracesPerSec float64 `json:"traces_per_sec"` // completed / uptime
}

type job struct {
	id   string
	data []byte
}

// Server is a trace-ingest service instance. Create with New, serve its
// Handler, and Close it to stop the worker fleet.
type Server struct {
	cfg   Config
	queue chan job
	quit  chan struct{}
	wg    sync.WaitGroup
	start time.Time

	busy      atomic.Int64
	admitted  atomic.Uint64
	rejected  atomic.Uint64
	oversized atomic.Uint64
	failed    atomic.Uint64
	completed atomic.Uint64

	mu      sync.Mutex
	nextID  uint64
	results map[string]*Result
	order   []string
}

// New builds the Runner fleet, warms every Runner, and starts the workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Opts.Tracer != nil || cfg.Opts.OnRace != nil {
		return nil, errors.New("serve: Opts.Tracer and Opts.OnRace must be unset")
	}
	runners := make([]*stint.Runner, cfg.Runners)
	for i := range runners {
		r, err := stint.NewRunner(cfg.Opts)
		if err != nil {
			return nil, fmt.Errorf("serve: building runner fleet: %w", err)
		}
		// Warm the full pipeline (stage graph, rings, engines) before the
		// first trace arrives, so ingest latency never pays first-run
		// construction.
		if _, err := r.Run(func(*stint.Task) {}); err != nil {
			return nil, fmt.Errorf("serve: warming runner fleet: %w", err)
		}
		runners[i] = r
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan job, cfg.QueueDepth),
		quit:    make(chan struct{}),
		start:   time.Now(),
		results: make(map[string]*Result),
	}
	for _, r := range runners {
		s.wg.Add(1)
		go s.worker(r)
	}
	return s, nil
}

// Close stops accepting work and waits for in-flight replays to finish.
// Queued-but-unstarted traces finish too: the queue is drained, not
// dropped.
func (s *Server) Close() {
	close(s.quit)
	s.wg.Wait()
}

func (s *Server) worker(r *stint.Runner) {
	defer s.wg.Done()
	for {
		// Drain the queue even while shutting down, but prefer quit when
		// the queue is empty.
		select {
		case j := <-s.queue:
			s.replay(r, j)
		case <-s.quit:
			select {
			case j := <-s.queue:
				s.replay(r, j)
			default:
				return
			}
		}
	}
}

func (s *Server) replay(r *stint.Runner, j job) {
	s.busy.Add(1)
	defer s.busy.Add(-1)
	s.setStatus(j.id, "running")

	opts := trace.Options{Runner: r, MaxEvents: s.cfg.MaxEvents}
	if s.cfg.FreshRunners {
		fresh, err := stint.NewRunner(s.cfg.Opts)
		if err != nil {
			s.finishErr(j.id, err)
			return
		}
		opts.Runner = fresh
	}
	rep, err := trace.Replay(bytes.NewReader(j.data), opts)
	if err != nil {
		s.finishErr(j.id, err)
		return
	}
	s.completed.Add(1)
	races := make([]string, len(rep.Races))
	for i, rc := range rep.Races {
		races[i] = rc.String()
	}
	s.finish(j.id, func(res *Result) {
		res.Status = "done"
		res.RaceCount = rep.RaceCount
		res.Strands = rep.Strands
		res.Races = races
		res.WallTime = rep.WallTime.String()
	})
}

// finishErr records a failed replay. Each failure increments exactly one
// counter: the per-run resource caps (event budget, history cap) count as
// oversized, everything else as failed. A 413 body rejection also counts
// as oversized but never reaches admit, so no upload can be counted twice.
func (s *Server) finishErr(id string, err error) {
	if errors.Is(err, trace.ErrTooManyEvents) || errors.Is(err, stint.ErrHistoryCap) {
		s.oversized.Add(1)
	} else {
		s.failed.Add(1)
	}
	s.finish(id, func(res *Result) {
		res.Status = "error"
		res.Error = err.Error()
	})
}

func (s *Server) setStatus(id, status string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if res := s.results[id]; res != nil {
		res.Status = status
	}
}

func (s *Server) finish(id string, fill func(*Result)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.results[id]
	if res == nil {
		return // evicted while running
	}
	fill(res)
	close(res.done)
}

// admit registers a new result record and enqueues the trace. It reports
// false when the queue is full.
func (s *Server) admit(data []byte) (string, bool) {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("t-%06d", s.nextID)
	res := &Result{ID: id, Status: "queued", done: make(chan struct{})}
	s.results[id] = res
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.MaxResults {
		evict := s.order[0]
		s.order = s.order[1:]
		// A non-terminal record can be evicted while its trace is still
		// queued or replaying. Resolve it before it disappears: anything
		// blocked in wait() unblocks, and the worker's later finish() finds
		// no record and leaves the closed channel alone (no double close).
		if old := s.results[evict]; old != nil && old.Status != "done" && old.Status != "error" {
			old.Status = "error"
			old.Error = "evicted before completion"
			close(old.done)
		}
		delete(s.results, evict)
	}
	s.mu.Unlock()

	select {
	case s.queue <- job{id: id, data: data}:
		s.admitted.Add(1)
		return id, true
	default:
		s.rejected.Add(1)
		s.mu.Lock()
		delete(s.results, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		return "", false
	}
}

// result looks up a result record by id.
func (s *Server) result(id string) (*Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.results[id]
	if !ok {
		return nil, false
	}
	// Copy under the lock: workers mutate the record in place.
	cp := *res
	cp.done = nil
	return &cp, true
}

// wait blocks until the result with the given id reaches a terminal
// status. Test and benchmark plumbing.
func (s *Server) wait(id string) {
	s.mu.Lock()
	res := s.results[id]
	s.mu.Unlock()
	if res != nil {
		<-res.done
	}
}

// Stats snapshots the pool and admission counters.
func (s *Server) Stats() Stats {
	busy := int(s.busy.Load())
	up := time.Since(s.start).Seconds()
	st := Stats{
		Runners:   s.cfg.Runners,
		Busy:      busy,
		Idle:      s.cfg.Runners - busy,
		QueueLen:  len(s.queue),
		QueueCap:  cap(s.queue),
		Admitted:  s.admitted.Load(),
		Rejected:  s.rejected.Load(),
		Oversized: s.oversized.Load(),
		Failed:    s.failed.Load(),
		Completed: s.completed.Load(),
		UptimeSec: up,
	}
	if up > 0 {
		st.TracesPerSec = float64(st.Completed) / up
	}
	return st
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", s.handleUpload)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/statusz", s.handleStatusz)
	return mux
}

func (s *Server) handleUpload(w http.ResponseWriter, req *http.Request) {
	body := req.Body
	if s.cfg.MaxTraceBytes > 0 {
		body = http.MaxBytesReader(w, body, s.cfg.MaxTraceBytes)
	}
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.oversized.Add(1)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("trace exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	id, ok := s.admit(data)
	if !ok {
		writeJSON(w, http.StatusTooManyRequests,
			map[string]string{"error": "admission queue full"})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *Server) handleResult(w http.ResponseWriter, req *http.Request) {
	res, ok := s.result(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown or evicted result id"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStatusz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
