package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"stint"
)

// BenchmarkServeThroughput is the service headline: traces/sec through the
// warm Runner pool versus a fresh Runner constructed per trace. One
// iteration is a full ingest round-trip — HTTP upload through the admission
// queue, replay on a worker, result ready — so the two arms differ only in
// whether the worker reuses its warm Runner.
func BenchmarkServeThroughput(b *testing.B) {
	raw := recordTrace(b, 512, 32)
	for _, mode := range []struct {
		name  string
		fresh bool
	}{{"warm", false}, {"fresh", true}} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := New(Config{
				Runners:      2,
				FreshRunners: mode.fresh,
				Opts:         stint.Options{Detector: stint.DetectorSTINT, MaxRacesRecorded: 1 << 10},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			h := s.Handler()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/traces", bytes.NewReader(raw))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != 202 {
					b.Fatalf("upload: status %d", w.Code)
				}
				var body map[string]string
				if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
					b.Fatal(err)
				}
				s.wait(body["id"])
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "traces/sec")
			}
		})
	}
}
