package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"stint"
	"stint/trace"
)

// divide records a racy divide-and-conquer program: sibling halves overlap
// by one word at every split, so the trace carries a deterministic set of
// races at every granularity.
func divide(t *stint.Task, buf *stint.Buffer, lo, hi, leaf int) {
	if hi-lo <= leaf {
		t.LoadRange(buf, lo, hi-lo)
		t.StoreRange(buf, lo, hi-lo)
		return
	}
	mid := (lo + hi) / 2
	t.Spawn(func(c *stint.Task) { divide(c, buf, lo, mid+1, leaf) })
	t.Spawn(func(c *stint.Task) { divide(c, buf, mid, hi, leaf) })
	t.Sync()
}

// recordTrace runs the divide program under a Recorder (detector off) and
// returns the trace bytes.
func recordTrace(tb testing.TB, words, leaf int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	r, err := stint.NewRunner(stint.Options{Tracer: rec})
	if err != nil {
		tb.Fatal(err)
	}
	data := r.Arena().AllocWords("d", words)
	if _, err := r.Run(func(task *stint.Task) { divide(task, data, 0, words, leaf) }); err != nil {
		tb.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func postTrace(tb testing.TB, ts *httptest.Server, raw []byte) (string, int) {
	tb.Helper()
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		tb.Fatal(err)
	}
	return body["id"], resp.StatusCode
}

func pollResult(tb testing.TB, ts *httptest.Server, id string) Result {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/results/" + id)
		if err != nil {
			tb.Fatal(err)
		}
		var res Result
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil {
			tb.Fatal(err)
		}
		if res.Status == "done" || res.Status == "error" {
			return res
		}
		if time.Now().After(deadline) {
			tb.Fatalf("result %s stuck in status %q", id, res.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeEndToEnd uploads a trace over HTTP, polls its result, and checks
// the race report against a direct fresh-Runner replay of the same bytes.
func TestServeEndToEnd(t *testing.T) {
	raw := recordTrace(t, 512, 64)
	want, err := trace.Replay(bytes.NewReader(raw), trace.Options{Detector: stint.DetectorSTINT})
	if err != nil {
		t.Fatal(err)
	}
	if want.RaceCount == 0 {
		t.Fatal("fixture trace should race")
	}

	s, err := New(Config{Runners: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, code := postTrace(t, ts, raw)
	if code != http.StatusAccepted || id == "" {
		t.Fatalf("upload: status %d, id %q", code, id)
	}
	res := pollResult(t, ts, id)
	if res.Status != "done" {
		t.Fatalf("result: %+v", res)
	}
	if res.RaceCount != want.RaceCount || res.Strands != want.Strands {
		t.Fatalf("served result diverges: %d races / %d strands, fresh replay %d / %d",
			res.RaceCount, res.Strands, want.RaceCount, want.Strands)
	}
	wantRaces := make([]string, len(want.Races))
	for i, rc := range want.Races {
		wantRaces[i] = rc.String()
	}
	if !reflect.DeepEqual(res.Races, wantRaces) {
		t.Fatalf("served race list diverges\n got: %v\nwant: %v", res.Races, wantRaces)
	}

	var st Stats
	resp, err := http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Runners != 2 || st.Admitted < 1 || st.Completed < 1 {
		t.Fatalf("statusz: %+v", st)
	}
}

// TestServeReusedMatchesFresh is the serve-level byte-identity invariant:
// the same trace replayed repeatedly through the warm pool — and through a
// fresh-runner-per-trace server — always yields the identical result.
func TestServeReusedMatchesFresh(t *testing.T) {
	raw := recordTrace(t, 512, 64)
	results := make(map[string][]Result)
	for _, mode := range []struct {
		name  string
		fresh bool
	}{{"warm", false}, {"fresh", true}} {
		s, err := New(Config{Runners: 1, FreshRunners: mode.fresh})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		for i := 0; i < 3; i++ {
			id, code := postTrace(t, ts, raw)
			if code != http.StatusAccepted {
				t.Fatalf("%s upload %d: status %d", mode.name, i, code)
			}
			res := pollResult(t, ts, id)
			if res.Status != "done" {
				t.Fatalf("%s result %d: %+v", mode.name, i, res)
			}
			res.ID, res.WallTime = "", "" // only the report content must match
			results[mode.name] = append(results[mode.name], res)
		}
		ts.Close()
		s.Close()
	}
	for i := 1; i < len(results["warm"]); i++ {
		if !reflect.DeepEqual(results["warm"][i], results["warm"][0]) {
			t.Fatalf("warm pool drifted between replays:\n%+v\n%+v", results["warm"][i], results["warm"][0])
		}
	}
	if !reflect.DeepEqual(results["warm"][0], results["fresh"][0]) {
		t.Fatalf("warm vs fresh reports diverge:\nwarm:  %+v\nfresh: %+v", results["warm"][0], results["fresh"][0])
	}
}

// TestServeQueueFullRejects exercises admission backpressure against a
// server whose workers never drain: the queue fills, further uploads get
// 429, and the rejection is counted.
func TestServeQueueFullRejects(t *testing.T) {
	s := &Server{
		cfg:     Config{Runners: 1, QueueDepth: 1}.withDefaults(),
		queue:   make(chan job, 1),
		quit:    make(chan struct{}),
		start:   time.Now(),
		results: make(map[string]*Result),
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	raw := recordTrace(t, 64, 16)
	if _, code := postTrace(t, ts, raw); code != http.StatusAccepted {
		t.Fatalf("first upload: status %d", code)
	}
	id, code := postTrace(t, ts, raw)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second upload: status %d, want 429", code)
	}
	if id != "" {
		t.Fatalf("rejected upload got id %q", id)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Admitted != 1 || st.QueueLen != 1 {
		t.Fatalf("stats after rejection: %+v", st)
	}
}

// TestServeOversize exercises both memory caps: the byte cap rejects at
// the door with 413, and the event budget aborts mid-replay with the
// result surfaced as an error — both counted as oversized.
func TestServeOversize(t *testing.T) {
	raw := recordTrace(t, 512, 64)

	t.Run("bytes", func(t *testing.T) {
		s, err := New(Config{Runners: 1, MaxTraceBytes: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		if _, code := postTrace(t, ts, raw); code != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized upload: status %d, want 413", code)
		}
		if st := s.Stats(); st.Oversized != 1 || st.Admitted != 0 {
			t.Fatalf("stats: %+v", st)
		}
	})

	t.Run("events", func(t *testing.T) {
		s, err := New(Config{Runners: 1, MaxEvents: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		id, code := postTrace(t, ts, raw)
		if code != http.StatusAccepted {
			t.Fatalf("upload: status %d", code)
		}
		res := pollResult(t, ts, id)
		if res.Status != "error" || !strings.Contains(res.Error, "event budget") {
			t.Fatalf("result: %+v", res)
		}
		if st := s.Stats(); st.Oversized != 1 || st.Failed != 0 {
			t.Fatalf("stats: %+v", st)
		}
	})
}

// TestServeOversizeHistoryCap exercises the third per-run cap: a replay
// whose access-history footprint trips Opts.MaxHistoryBytes surfaces as a
// result error counted under oversized, and the worker's Runner recovers —
// the next trace on the same (single-runner) pool replays normally.
func TestServeOversizeHistoryCap(t *testing.T) {
	raw := recordTrace(t, 512, 64)
	s, err := New(Config{Runners: 1, Opts: stint.Options{
		Detector: stint.DetectorSTINT, MaxHistoryBytes: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, code := postTrace(t, ts, raw)
	if code != http.StatusAccepted {
		t.Fatalf("upload: status %d", code)
	}
	res := pollResult(t, ts, id)
	if res.Status != "error" || !strings.Contains(res.Error, "MaxHistoryBytes") {
		t.Fatalf("result: %+v", res)
	}
	if st := s.Stats(); st.Oversized != 1 || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Same pool, same Runner: the cap abort must have left it reusable.
	id2, code := postTrace(t, ts, raw)
	if code != http.StatusAccepted {
		t.Fatalf("second upload: status %d", code)
	}
	res2 := pollResult(t, ts, id2)
	if res2.Status != "error" || !strings.Contains(res2.Error, "MaxHistoryBytes") {
		t.Fatalf("second result: %+v", res2)
	}
	if st := s.Stats(); st.Oversized != 2 || st.Failed != 0 {
		t.Fatalf("stats after second: %+v", st)
	}
}

// TestServeEvictionResolvesPending pins the eviction fix: when the FIFO
// evicts a result whose trace has not finished, anything blocked on that
// result unblocks with a terminal "error" status instead of hanging on a
// done channel nobody will ever close.
func TestServeEvictionResolvesPending(t *testing.T) {
	// No workers: jobs stay queued forever, so the first result is still
	// non-terminal when the second upload evicts it.
	s := &Server{
		cfg:     Config{Runners: 1, QueueDepth: 4, MaxResults: 1}.withDefaults(),
		queue:   make(chan job, 4),
		quit:    make(chan struct{}),
		start:   time.Now(),
		results: make(map[string]*Result),
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	raw := recordTrace(t, 64, 16)
	first, code := postTrace(t, ts, raw)
	if code != http.StatusAccepted {
		t.Fatalf("first upload: status %d", code)
	}
	// Grab the live record the way a concurrent waiter would, before the
	// second upload evicts it.
	s.mu.Lock()
	res := s.results[first]
	s.mu.Unlock()
	if res == nil {
		t.Fatalf("first result missing before eviction")
	}
	if _, code := postTrace(t, ts, raw); code != http.StatusAccepted {
		t.Fatalf("second upload: status %d", code)
	}
	select {
	case <-res.done:
	case <-time.After(5 * time.Second):
		t.Fatal("evicted result's done channel never closed")
	}
	s.mu.Lock()
	status, errMsg := res.Status, res.Error
	s.mu.Unlock()
	if status != "error" || !strings.Contains(errMsg, "evicted") {
		t.Fatalf("evicted result: status %q, error %q", status, errMsg)
	}
	// wait() on the evicted id returns promptly too (nil lookup path).
	s.wait(first)
}

// TestServeUnknownResult covers the 404 path and result eviction.
func TestServeUnknownResult(t *testing.T) {
	s, err := New(Config{Runners: 1, MaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/results/t-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
	}

	raw := recordTrace(t, 64, 16)
	first, code := postTrace(t, ts, raw)
	if code != http.StatusAccepted {
		t.Fatalf("upload: status %d", code)
	}
	s.wait(first)
	second, code := postTrace(t, ts, raw)
	if code != http.StatusAccepted {
		t.Fatalf("upload: status %d", code)
	}
	s.wait(second)
	resp, err = http.Get(ts.URL + "/v1/results/" + first)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted id: status %d, want 404", resp.StatusCode)
	}
}

// TestServeShardedPool runs the service over the sharded pipeline
// configuration and checks it against a fresh sharded replay.
func TestServeShardedPool(t *testing.T) {
	raw := recordTrace(t, 512, 64)
	want, err := trace.Replay(bytes.NewReader(raw), trace.Options{Detector: stint.DetectorSTINT, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Runners: 2, Opts: stint.Options{
		Detector: stint.DetectorSTINT, Async: true, DetectShards: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, code := postTrace(t, ts, raw)
	if code != http.StatusAccepted {
		t.Fatalf("upload: status %d", code)
	}
	res := pollResult(t, ts, id)
	if res.Status != "done" || res.RaceCount != want.RaceCount {
		t.Fatalf("sharded serve diverges: %+v, want %d races", res, want.RaceCount)
	}
}
