// Package tables regenerates the paper's evaluation tables (Figures 1 and
// 5–8) from live runs of the seven benchmarks under every detector
// configuration, printing measured values next to the numbers the paper
// reports so shape can be compared directly.
//
// Absolute times differ from the paper — the substrate here is a pure-Go
// serial runner on scaled-down inputs, not OpenCilk on a 40-core Xeon —
// but the comparisons the paper draws (which configuration wins per
// benchmark, by roughly what factor, and where the fft anomaly appears)
// are properties of access-pattern structure that survive the translation.
package tables

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"time"

	"stint"
	"stint/internal/cliutil"
	"stint/internal/serve"
	"stint/trace"
	"stint/workloads"
)

// Result is one measured configuration.
type Result struct {
	Workload string
	Params   string
	Mode     stint.Detector
	Wall     time.Duration
	Stats    stint.Stats
	Strands  int
	Races    uint64
	// Report is the first repetition's full report; the utilization table
	// reads its per-stage busy times (Wall and Stats above stay the
	// cross-repetition aggregates).
	Report *stint.Report
}

// Measure runs one fresh instance of f under mode, averaged over reps runs,
// verifying every run's computed result.
func Measure(f workloads.Factory, mode stint.Detector, reps int, timeAH bool) (*Result, error) {
	return MeasureWith(f, stint.Options{Detector: mode, TimeAccessHistory: timeAH}, reps)
}

// MeasureWith is Measure with full control over the runner options (the
// async table uses it to toggle Options.Async); opts.MaxRacesRecorded is
// forced to a small bound.
func MeasureWith(f workloads.Factory, opts stint.Options, reps int) (*Result, error) {
	if reps < 1 {
		reps = 1
	}
	mode := opts.Detector
	var agg Result
	for rep := 0; rep < reps; rep++ {
		w := f()
		opts.MaxRacesRecorded = 4
		r, err := stint.NewRunner(opts)
		if err != nil {
			return nil, err
		}
		w.Setup(r)
		report, err := r.Run(w.Run)
		if err != nil {
			return nil, err
		}
		if err := w.Verify(); err != nil {
			return nil, fmt.Errorf("tables: %s under %v computed a wrong result: %w", w.Name(), mode, err)
		}
		if report.Racy() {
			return nil, fmt.Errorf("tables: %s under %v reported %d races on a race-free benchmark", w.Name(), mode, report.RaceCount)
		}
		agg.Workload = w.Name()
		agg.Params = w.Params()
		agg.Mode = mode
		agg.Wall += report.WallTime
		agg.Strands = report.Strands
		agg.Races = report.RaceCount
		if rep == 0 {
			agg.Stats = report.Stats
			agg.Report = report
		}
	}
	agg.Wall /= time.Duration(reps)
	return &agg, nil
}

// Suite drives the figure generators.
type Suite struct {
	Out   io.Writer
	Scale int // problem-size multiplier (1 = default scaled-down inputs)
	Reps  int // timing repetitions per configuration
}

func (s *Suite) reps() int {
	if s.Reps < 1 {
		return 1
	}
	return s.Reps
}

func (s *Suite) scale() int {
	if s.Scale < 1 {
		return 1
	}
	return s.Scale
}

func (s *Suite) printf(format string, args ...any) {
	fmt.Fprintf(s.Out, format, args...)
}

// overhead formats t as a multiple of base.
func overhead(t, base time.Duration) string {
	if base <= 0 {
		return "  n/a"
	}
	return fmt.Sprintf("%7.2fx", float64(t)/float64(base))
}

func secs(d time.Duration) string { return fmt.Sprintf("%8.3fs", d.Seconds()) }

// geomean returns the geometric mean of the ratios.
func geomean(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratios {
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(ratios)))
}

// millions formats a count in millions with sensible precision.
func millions(v uint64) string {
	m := float64(v) / 1e6
	switch {
	case m >= 100:
		return fmt.Sprintf("%9.0f", m)
	case m >= 1:
		return fmt.Sprintf("%9.1f", m)
	default:
		return fmt.Sprintf("%9.3f", m)
	}
}

// paperFig1 is the paper's Figure 1 overhead column (vanilla full
// detection) for side-by-side printing.
var paperFig1 = map[string]float64{
	"chol": 139.78, "fft": 36.03, "heat": 84.23, "mmul": 44.07,
	"sort": 21.32, "stra": 284.18, "straz": 158.79,
}

// paperFig5 is the paper's Figure 5: overhead per detector version.
var paperFig5 = map[string][4]float64{ // vanilla, compiler, comp+rts, stint
	"chol":  {138.79, 135.85, 43.82, 31.73},
	"fft":   {36.03, 27.21, 22.50, 36.14},
	"heat":  {84.23, 74.78, 33.13, 5.32},
	"mmul":  {44.07, 42.76, 27.16, 27.36},
	"sort":  {21.32, 20.47, 11.98, 4.66},
	"stra":  {284.18, 278.20, 64.63, 25.74},
	"straz": {158.79, 158.68, 65.03, 33.62},
}

// paperFig7 is the paper's Figure 7: access-history update time, hashmap
// (comp+rts) vs treap (STINT), in seconds on the paper's machine.
var paperFig7 = map[string][2]float64{
	"chol": {8.93, 1.41}, "fft": {207.72, 392.50}, "heat": {123.63, 2.43},
	"mmul": {15.94, 17.51}, "sort": {26.36, 1.54}, "stra": {59.60, 1.62},
	"straz": {52.00, 3.50},
}

// Fig1 regenerates Figure 1: vanilla component breakdown plus access and
// interval counts.
func (s *Suite) Fig1() error {
	s.printf("== Figure 1: overheads of a vanilla race detector ==\n")
	s.printf("%-6s %10s %10s %9s %18s %9s | %9s %9s %9s %9s | %s\n",
		"", "base", "reach.", "(oh)", "vanilla full", "(oh)",
		"acc(r)M", "acc(w)M", "int(r)M", "int(w)M", "paper-full-oh")
	for _, name := range workloads.Names() {
		f, err := workloads.ByName(name, s.scale())
		if err != nil {
			return err
		}
		base, err := Measure(f, stint.DetectorOff, s.reps(), false)
		if err != nil {
			return err
		}
		reach, err := Measure(f, stint.DetectorReachOnly, s.reps(), false)
		if err != nil {
			return err
		}
		van, err := Measure(f, stint.DetectorVanilla, s.reps(), false)
		if err != nil {
			return err
		}
		// Interval counts come from a runtime-coalescing run.
		st, err := Measure(f, stint.DetectorSTINT, 1, false)
		if err != nil {
			return err
		}
		s.printf("%-6s %s %s %s %s %s  | %s %s %s %s | %8.2fx\n",
			name, secs(base.Wall), secs(reach.Wall), overhead(reach.Wall, base.Wall),
			secs(van.Wall), overhead(van.Wall, base.Wall),
			millions(van.Stats.ReadAccesses), millions(van.Stats.WriteAccesses),
			millions(st.Stats.ReadIntervals), millions(st.Stats.WriteIntervals),
			paperFig1[name])
	}
	return nil
}

// Fig5 regenerates Figure 5: execution time and overhead of the four
// detector versions, with per-benchmark paper overheads and geomeans.
func (s *Suite) Fig5() error {
	modes := []stint.Detector{
		stint.DetectorVanilla, stint.DetectorCompiler,
		stint.DetectorCompRTS, stint.DetectorSTINT,
	}
	s.printf("== Figure 5: overheads of the four detector versions ==\n")
	s.printf("%-6s %10s |", "", "base")
	for _, m := range modes {
		s.printf(" %10s %9s %8s |", m, "(oh)", "paper")
	}
	s.printf("\n")
	ratios := make([][]float64, len(modes))
	for _, name := range workloads.Names() {
		f, err := workloads.ByName(name, s.scale())
		if err != nil {
			return err
		}
		base, err := Measure(f, stint.DetectorOff, s.reps(), false)
		if err != nil {
			return err
		}
		s.printf("%-6s %s |", name, secs(base.Wall))
		for i, m := range modes {
			res, err := Measure(f, m, s.reps(), false)
			if err != nil {
				return err
			}
			oh := float64(res.Wall) / float64(base.Wall)
			ratios[i] = append(ratios[i], oh)
			s.printf(" %s %s %7.2fx |", secs(res.Wall), overhead(res.Wall, base.Wall), paperFig5[name][i])
		}
		s.printf("\n")
	}
	s.printf("%-6s %10s |", "geomean", "")
	paperGeo := []float64{78.13, 0, 0, 18.61}
	for i := range modes {
		paper := "     -  "
		if paperGeo[i] != 0 {
			paper = fmt.Sprintf("%7.2fx", paperGeo[i])
		}
		s.printf(" %10s %8.2fx %8s |", "", geomean(ratios[i]), paper)
	}
	s.printf("\n(paper geomeans: vanilla 78.13x, STINT 18.61x — a ~4x gap)\n")
	return nil
}

// Fig6 regenerates Figure 6: memory-access statistics under vanilla,
// compile-time coalescing, and full coalescing.
func (s *Suite) Fig6() error {
	s.printf("== Figure 6: accesses and intervals by coalescing level ==\n")
	s.printf("%-6s | %9s %9s | %9s %9s | %9s %9s | %7s %7s | %9s %9s\n",
		"", "acc(r)M", "acc(w)M", "cmpl int(r)M", "int(w)M", "both int(r)M", "int(w)M",
		"avg(r)B", "avg(w)B", "sum(r)MB", "sum(w)MB")
	for _, name := range workloads.Names() {
		f, err := workloads.ByName(name, s.scale())
		if err != nil {
			return err
		}
		van, err := Measure(f, stint.DetectorVanilla, 1, false)
		if err != nil {
			return err
		}
		cmp, err := Measure(f, stint.DetectorCompiler, 1, false)
		if err != nil {
			return err
		}
		both, err := Measure(f, stint.DetectorSTINT, 1, false)
		if err != nil {
			return err
		}
		avg := func(bytes, n uint64) float64 {
			if n == 0 {
				return 0
			}
			return float64(bytes) / float64(n)
		}
		s.printf("%-6s | %s %s | %s %s | %s %s | %7.1f %7.1f | %9.1f %9.1f\n",
			name,
			millions(van.Stats.ReadAccesses), millions(van.Stats.WriteAccesses),
			millions(cmp.Stats.ReadHookCalls), millions(cmp.Stats.WriteHookCalls),
			millions(both.Stats.ReadIntervals), millions(both.Stats.WriteIntervals),
			avg(both.Stats.ReadIntervalBytes, both.Stats.ReadIntervals),
			avg(both.Stats.WriteIntervalBytes, both.Stats.WriteIntervals),
			float64(both.Stats.ReadIntervalBytes)/1e6,
			float64(both.Stats.WriteIntervalBytes)/1e6)
	}
	return nil
}

// Fig7 regenerates Figure 7: time spent updating the access history,
// hashmap (comp+rts) vs treap (STINT).
func (s *Suite) Fig7() error {
	s.printf("== Figure 7: access-history update time, hashmap vs treap ==\n")
	s.printf("%-6s %12s %12s %10s | paper: hash, treap (s)\n", "", "hashmap", "treap", "ratio")
	for _, name := range workloads.Names() {
		f, err := workloads.ByName(name, s.scale())
		if err != nil {
			return err
		}
		hash, err := Measure(f, stint.DetectorCompRTS, s.reps(), true)
		if err != nil {
			return err
		}
		treap, err := Measure(f, stint.DetectorSTINT, s.reps(), true)
		if err != nil {
			return err
		}
		ratio := float64(hash.Stats.AccessHistoryTime) / float64(treap.Stats.AccessHistoryTime)
		s.printf("%-6s %12v %12v %9.2fx | %8.2f, %.2f\n",
			name, hash.Stats.AccessHistoryTime.Round(time.Microsecond),
			treap.Stats.AccessHistoryTime.Round(time.Microsecond), ratio,
			paperFig7[name][0], paperFig7[name][1])
	}
	return nil
}

// fig8Sizes are the three input sizes per benchmark in Figure 8, scaled to
// this substrate.
func fig8Sizes(scale int) map[string][]workloads.Factory {
	p2 := 1
	for s := scale; s > 1; s >>= 1 {
		p2 <<= 1
	}
	return map[string][]workloads.Factory{
		"fft": {
			func() workloads.Workload { return workloads.NewFFT(8192*p2, 64) },
			func() workloads.Workload { return workloads.NewFFT(16384*p2, 64) },
			func() workloads.Workload { return workloads.NewFFT(32768*p2, 64) },
		},
		"mmul": {
			func() workloads.Workload { return workloads.NewMMul(64*scale, 16) },
			func() workloads.Workload { return workloads.NewMMul(96*scale, 16) },
			func() workloads.Workload { return workloads.NewMMul(128*scale, 16) },
		},
		"sort": {
			func() workloads.Workload { return workloads.NewSort(50000*scale, 512) },
			func() workloads.Workload { return workloads.NewSort(100000*scale, 512) },
			func() workloads.Workload { return workloads.NewSort(200000*scale, 512) },
		},
	}
}

// Fig8 regenerates Figure 8: input-size scaling for fft, mmul, and sort
// with access-history time, operation counts, and treap traversal detail.
func (s *Suite) Fig8() error {
	s.printf("== Figure 8: scaling of comp+rts vs STINT with input size ==\n")
	s.printf("%-6s %-22s %10s %12s %7s %12s %7s | %10s %10s %10s %10s %8s %9s\n",
		"", "input", "base", "comp+rts", "(oh)", "STINT", "(oh)",
		"hash oh", "treap oh", "hash ops", "treap ops", "#nodes", "#overlaps")
	sizes := fig8Sizes(s.scale())
	for _, name := range []string{"fft", "mmul", "sort"} {
		for _, f := range sizes[name] {
			base, err := Measure(f, stint.DetectorOff, s.reps(), false)
			if err != nil {
				return err
			}
			hash, err := Measure(f, stint.DetectorCompRTS, s.reps(), true)
			if err != nil {
				return err
			}
			treap, err := Measure(f, stint.DetectorSTINT, s.reps(), true)
			if err != nil {
				return err
			}
			nodesPerOp, overlapsPerOp := 0.0, 0.0
			if treap.Stats.TreapOps > 0 {
				nodesPerOp = float64(treap.Stats.TreapNodesVisited) / float64(treap.Stats.TreapOps)
				overlapsPerOp = float64(treap.Stats.TreapOverlaps) / float64(treap.Stats.TreapOps)
			}
			s.printf("%-6s %-22s %10v %12v %s %12v %s | %10v %10v %10.2e %10.2e %8.2f %9.2f\n",
				name, treap.Params,
				base.Wall.Round(time.Millisecond),
				hash.Wall.Round(time.Millisecond), overhead(hash.Wall, base.Wall),
				treap.Wall.Round(time.Millisecond), overhead(treap.Wall, base.Wall),
				hash.Stats.AccessHistoryTime.Round(time.Microsecond),
				treap.Stats.AccessHistoryTime.Round(time.Microsecond),
				float64(hash.Stats.HashOps), float64(treap.Stats.TreapOps),
				nodesPerOp, overlapsPerOp)
		}
	}
	return nil
}

// Allocs prints the heap-allocation profile of a detection run per detector
// version: objects and bytes allocated while the instrumented program ran
// (runtime.ReadMemStats deltas around Run). It backs the allocation-free-
// hot-path claims in EXPERIMENTS.md; it is not one of the paper's figures,
// so Suite.All leaves it out to keep the reference table output stable.
func (s *Suite) Allocs() error {
	modes := []stint.Detector{
		stint.DetectorOff, stint.DetectorVanilla, stint.DetectorCompiler,
		stint.DetectorCompRTS, stint.DetectorSTINT,
	}
	s.printf("== Allocation profile: heap objects (KiB) allocated during the run ==\n")
	s.printf("%-6s |", "")
	for _, m := range modes {
		s.printf(" %20s |", m)
	}
	s.printf("\n")
	for _, name := range workloads.Names() {
		f, err := workloads.ByName(name, s.scale())
		if err != nil {
			return err
		}
		s.printf("%-6s |", name)
		for _, m := range modes {
			res, err := Measure(f, m, 1, false)
			if err != nil {
				return err
			}
			s.printf(" %9d (%7.0f) |", res.Stats.AllocObjects, float64(res.Stats.AllocBytes)/1024)
		}
		s.printf("\n")
	}
	return nil
}

// Async compares synchronous and pipelined detection wall clock per
// detector on every workload: the sync column pays compute + detection on
// one thread, the async column overlaps them across the event-stream ring,
// so its ideal is max(compute, detect). Not one of the paper's figures —
// the paper's detector is strictly inline — so Suite.All leaves it out.
func (s *Suite) Async() error {
	modes := []stint.Detector{stint.DetectorCompRTS, stint.DetectorSTINT}
	s.printf("== Async pipeline: sync vs async wall clock (speedup = sync/async) ==\n")
	s.printf("%-6s %10s |", "", "base")
	for _, m := range modes {
		s.printf(" %-9s %10s %10s %8s |", m, "sync", "async", "speedup")
	}
	s.printf("\n")
	for _, name := range workloads.Names() {
		f, err := workloads.ByName(name, s.scale())
		if err != nil {
			return err
		}
		base, err := Measure(f, stint.DetectorOff, s.reps(), false)
		if err != nil {
			return err
		}
		s.printf("%-6s %10v |", name, base.Wall.Round(time.Millisecond))
		for _, m := range modes {
			sync, err := MeasureWith(f, stint.Options{Detector: m}, s.reps())
			if err != nil {
				return err
			}
			async, err := MeasureWith(f, stint.Options{Detector: m, Async: true}, s.reps())
			if err != nil {
				return err
			}
			s.printf(" %-9s %10v %10v %7.2fx |", "",
				sync.Wall.Round(time.Millisecond), async.Wall.Round(time.Millisecond),
				float64(sync.Wall)/float64(async.Wall))
		}
		s.printf("\n")
	}
	return nil
}

// Util reports the sharded stage graph's per-stage utilization on every
// workload: wall clock, label-stage busy time, the busiest worker's busy
// time, their ratio, and the fleet-wide share of broadcast batches the
// workers skipped via batch summaries. With worker-side page splitting the
// label stage only consumes structure events, so lbl/wrk far below 1 means
// the sequencer has stopped being the scaling bottleneck — adding shards
// keeps dividing the detection critical path — while a high skip%
// means the per-worker full-stream scan floor is gone too: workers only
// scan the batches whose pages hash to them. B/ev is the event stream's
// wire cost under the compact delta encoding (16.00 with it disabled),
// and ev/blk the fleet-wide events per decode block on full scans (near
// 64 when the stream blocks well; low values flag degenerate blocking —
// structure-dense streams or tiny batches — as the straggler cause).
// Not one of the paper's figures, so Suite.All leaves it out.
func (s *Suite) Util() error {
	const shards = 4
	modes := []stint.Detector{stint.DetectorCompRTS, stint.DetectorSTINT}
	s.printf("== Stage utilization: label stage vs %d shard workers ==\n", shards)
	s.printf("%-6s |", "")
	for _, m := range modes {
		s.printf(" %-9s %10s %10s %10s %8s %6s %6s %7s |", m, "wall", "label", "max-wrk", "lbl/wrk", "skip%", "B/ev", "ev/blk")
	}
	s.printf("\n")
	for _, name := range workloads.Names() {
		f, err := workloads.ByName(name, s.scale())
		if err != nil {
			return err
		}
		s.printf("%-6s |", name)
		for _, m := range modes {
			res, err := MeasureWith(f, stint.Options{Detector: m, Async: true, DetectShards: shards}, s.reps())
			if err != nil {
				return err
			}
			label, _, maxWorker, ok := cliutil.StageBusy(res.Report)
			if !ok || maxWorker <= 0 {
				s.printf(" %-9s %10v %10s %10s %8s %6s %6s %7s |", "", res.Wall.Round(time.Millisecond), "-", "-", "-", "-", "-", "-")
				continue
			}
			var scanned, skipped, events, blocks uint64
			for _, l := range res.Report.ShardLoad {
				scanned += l.BatchesScanned
				skipped += l.BatchesSkipped
				events += l.EventsScanned
				blocks += l.BlocksDecoded
			}
			skipPct := "-"
			if total := scanned + skipped; total > 0 {
				skipPct = fmt.Sprintf("%.0f%%", 100*float64(skipped)/float64(total))
			}
			bytesPerEv := "-"
			if st := res.Report.Stats; st.EventsStreamed > 0 {
				bytesPerEv = fmt.Sprintf("%.2f", float64(st.StreamBytes)/float64(st.EventsStreamed))
			}
			evPerBlk := "-"
			if blocks > 0 {
				evPerBlk = fmt.Sprintf("%.1f", float64(events)/float64(blocks))
			}
			s.printf(" %-9s %10v %10v %10v %7.2fx %6s %6s %7s |", "",
				res.Wall.Round(time.Millisecond),
				label.Round(time.Microsecond),
				maxWorker.Round(time.Microsecond),
				float64(label)/float64(maxWorker),
				skipPct,
				bytesPerEv,
				evPerBlk)
		}
		s.printf("\n")
	}
	return nil
}

// Ablation runs the backing-store comparison the paper motivates in related
// work: the treap vs an unbalanced BST vs the Park-et-al skiplist that
// keeps redundant intervals.
func (s *Suite) Ablation() error {
	modes := []stint.Detector{
		stint.DetectorSTINT, stint.DetectorSTINTUnbalanced, stint.DetectorSTINTSkiplist,
	}
	s.printf("== Ablation: interval access-history backing stores ==\n")
	s.printf("%-6s |", "")
	for _, m := range modes {
		s.printf(" %-16s %10s %11s |", m, "time", "hist-bytes")
	}
	s.printf("\n")
	for _, name := range workloads.Names() {
		f, err := workloads.ByName(name, s.scale())
		if err != nil {
			return err
		}
		s.printf("%-6s |", name)
		for _, m := range modes {
			res, err := Measure(f, m, s.reps(), false)
			if err != nil {
				return err
			}
			s.printf(" %-16s %10v %11d |", "", res.Wall.Round(time.Millisecond), res.Stats.AccessHistoryBytes)
		}
		s.printf("\n")
	}
	return nil
}

// All regenerates every table in order.
func (s *Suite) All() error {
	for _, f := range []func() error{s.Fig1, s.Fig5, s.Fig6, s.Fig7, s.Fig8, s.Ablation} {
		if err := f(); err != nil {
			return err
		}
		s.printf("\n")
	}
	return nil
}

// Serve exercises the trace-ingest service end to end and prints its pool
// utilization: every benchmark is recorded once, uploaded reps times to an
// in-process stint-serve instance running a warm Runner fleet, and the
// closing block renders the service's /v1/statusz payload — runners
// busy/idle, queue depth, admission counters, traces/sec — through the
// same formatter the CLI tools use. Not one of the paper's figures, so
// Suite.All leaves it out.
func (s *Suite) Serve() error {
	const fleet = 4
	srv, err := serve.New(serve.Config{
		Runners: fleet,
		Opts:    stint.Options{Detector: stint.DetectorSTINT},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	s.printf("== Trace-ingest service: warm pool of %d reused Runners ==\n", fleet)
	s.printf("%-6s %10s %8s %6s\n", "", "trace-KiB", "uploads", "races")
	for _, name := range workloads.Names() {
		f, err := workloads.ByName(name, s.scale())
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		rec := trace.NewRecorder(&buf)
		r, err := stint.NewRunner(stint.Options{Tracer: rec})
		if err != nil {
			return err
		}
		w := f()
		w.Setup(r)
		if _, err := r.Run(w.Run); err != nil {
			return err
		}
		if err := rec.Flush(); err != nil {
			return err
		}
		raw := buf.Bytes()

		var races uint64
		for rep := 0; rep < s.reps(); rep++ {
			id, err := uploadTrace(ts.URL, raw)
			if err != nil {
				return err
			}
			res, err := awaitResult(ts.URL, id)
			if err != nil {
				return err
			}
			races = res.RaceCount
		}
		s.printf("%-6s %10.0f %8d %6d\n", name, float64(len(raw))/1024, s.reps(), races)
	}

	resp, err := http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	for _, line := range cliutil.ServeStatus(st) {
		s.printf("%s\n", line)
	}
	return nil
}

// uploadTrace POSTs trace bytes to a running service and returns the
// assigned result id.
func uploadTrace(baseURL string, raw []byte) (string, error) {
	resp, err := http.Post(baseURL+"/v1/traces", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("tables: trace upload: status %d: %s", resp.StatusCode, body["error"])
	}
	return body["id"], nil
}

// awaitResult polls a result until it reaches a terminal status.
func awaitResult(baseURL, id string) (*serve.Result, error) {
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(baseURL + "/v1/results/" + id)
		if err != nil {
			return nil, err
		}
		var res serve.Result
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch {
		case res.Status == "done":
			return &res, nil
		case res.Status == "error":
			return nil, fmt.Errorf("tables: replay of %s failed: %s", id, res.Error)
		case time.Now().After(deadline):
			return nil, fmt.Errorf("tables: result %s stuck in status %q", id, res.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
