package tables

import (
	"bytes"
	"strings"
	"testing"

	"stint"
	"stint/workloads"
)

func TestMeasureVerifiesAndReports(t *testing.T) {
	f := func() workloads.Workload { return workloads.NewMMul(32, 8) }
	res, err := Measure(f, stint.DetectorSTINT, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "mmul" || res.Mode != stint.DetectorSTINT {
		t.Fatalf("unexpected result identity: %+v", res)
	}
	if res.Wall <= 0 {
		t.Fatal("no wall time measured")
	}
	if res.Stats.ReadAccesses == 0 {
		t.Fatal("no accesses recorded")
	}
}

func TestMeasureRejectsRacyPrograms(t *testing.T) {
	f := func() workloads.Workload { return &racyWorkload{} }
	if _, err := Measure(f, stint.DetectorSTINT, 1, false); err == nil {
		t.Fatal("Measure accepted a racy benchmark")
	}
}

// racyWorkload is a deliberately racing Workload for harness tests.
type racyWorkload struct {
	buf *stint.Buffer
}

func (w *racyWorkload) Name() string   { return "racy" }
func (w *racyWorkload) Params() string { return "n=1" }
func (w *racyWorkload) Setup(r *stint.Runner) {
	w.buf = r.Arena().AllocWords("racy", 8)
}
func (w *racyWorkload) Run(t *stint.Task) {
	t.Spawn(func(c *stint.Task) { c.Store(w.buf, 0) })
	t.Store(w.buf, 0)
	t.Sync()
}
func (w *racyWorkload) Verify() error { return nil }

func TestFig5SmokeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full default-size benchmarks")
	}
	var buf bytes.Buffer
	s := &Suite{Out: &buf, Scale: 1, Reps: 1}
	if err := s.Fig5(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range workloads.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("Fig5 output missing %q", name)
		}
	}
	if !strings.Contains(out, "geomean") {
		t.Error("Fig5 output missing geomean row")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Errorf("geomean(1,4) = %g, want 2", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %g, want 0", g)
	}
}

func TestMillionsFormatting(t *testing.T) {
	for _, c := range []struct {
		v    uint64
		want string
	}{
		{1500000, "1.5"},
		{250000000, "250"},
		{2500, "0.003"},
	} {
		got := strings.TrimSpace(millions(c.v))
		if got != c.want {
			t.Errorf("millions(%d) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestServeTableSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("records and ingests full default-size benchmark traces")
	}
	var buf bytes.Buffer
	s := &Suite{Out: &buf, Scale: 1, Reps: 1}
	if err := s.Serve(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range workloads.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("serve output missing %q", name)
		}
	}
	for _, want := range []string{"runners", "queue", "admissions", "throughput", "7 admitted", "7 completed", "0 rejected"} {
		if !strings.Contains(out, want) {
			t.Errorf("serve output missing %q:\n%s", want, out)
		}
	}
}
