// Package cliutil holds output helpers shared by the stint command-line
// tools, so the live-run and replay binaries describe pipeline behavior in
// the same words and the same arithmetic.
package cliutil

import (
	"fmt"
	"time"

	"stint"
)

// pct formats part as a percentage of whole, guarding division by zero.
func pct(part, whole time.Duration) string {
	if whole <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

// PipelineReport renders the async pipeline's utilization readout: the
// detector side's busy time against the run's wall time and, for sharded
// runs, the sequencer/worker split. It returns nil for synchronous runs
// (no pipeline, nothing to report).
//
// On a single core the pipeline cannot beat the synchronous run — the busy
// figures then say how much detection work would overlap with compute once
// cores are available, which is why the lines spell out the "max of the
// two sides" floor instead of promising a speedup.
func PipelineReport(rep *stint.Report) []string {
	st := rep.Stats
	if st.PipelineDetectTime <= 0 {
		return nil
	}
	if rep.ShardBusy == nil {
		return []string{fmt.Sprintf(
			"detector-goroutine busy %v of %v wall (%s; multi-core floor is max of the two sides)",
			st.PipelineDetectTime.Round(time.Microsecond),
			rep.WallTime.Round(time.Microsecond),
			pct(st.PipelineDetectTime, rep.WallTime))}
	}
	lines := []string{fmt.Sprintf(
		"sharded detection: %d workers busy %v total of %v wall (sequencer busy %v; multi-core floor is max of any side)",
		len(rep.ShardBusy),
		st.PipelineDetectTime.Round(time.Microsecond),
		rep.WallTime.Round(time.Microsecond),
		rep.SequencerBusy.Round(time.Microsecond))}
	for i, busy := range rep.ShardBusy {
		lines = append(lines, fmt.Sprintf("  shard %d busy %v (%s of detect work)",
			i, busy.Round(time.Microsecond), pct(busy, st.PipelineDetectTime)))
	}
	return lines
}
