// Package cliutil holds output helpers shared by the stint command-line
// tools, so the live-run and replay binaries describe pipeline behavior in
// the same words and the same arithmetic.
package cliutil

import (
	"fmt"
	"time"

	"stint"
	"stint/internal/serve"
)

// pct formats part as a percentage of whole, guarding division by zero.
func pct(part, whole time.Duration) string {
	if whole <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

// StageBusy decomposes a pipelined run's busy time by stage: the label
// stage (which only consumes structure events and stamps batches with
// reachability labels), the summed detection work across workers, and the
// busiest single worker — the detection side's critical path once cores
// are available. ok is false for synchronous runs (no pipeline). For plain
// async runs the one consumer is both the only worker and the maximum, and
// the label stage's work is folded into it (label = 0).
func StageBusy(rep *stint.Report) (label, workers, maxWorker time.Duration, ok bool) {
	st := rep.Stats
	if st.PipelineDetectTime <= 0 {
		return 0, 0, 0, false
	}
	label = rep.SequencerBusy
	workers = st.PipelineDetectTime
	maxWorker = workers
	if rep.ShardBusy != nil {
		maxWorker = 0
		for _, b := range rep.ShardBusy {
			if b > maxWorker {
				maxWorker = b
			}
		}
	}
	return label, workers, maxWorker, true
}

// PipelineReport renders the async pipeline's utilization readout: the
// detector side's busy time against the run's wall time and, for sharded
// runs, the label-stage/worker split. It returns nil for synchronous runs
// (no pipeline, nothing to report).
//
// On a single core the pipeline cannot beat the synchronous run — the busy
// figures then say how much detection work would overlap with compute once
// cores are available, which is why the lines spell out the "max of the
// two sides" floor instead of promising a speedup.
func PipelineReport(rep *stint.Report) []string {
	label, workers, _, ok := StageBusy(rep)
	if !ok {
		return nil
	}
	var stream []string
	if st := rep.Stats; st.EventsStreamed > 0 {
		stream = []string{fmt.Sprintf(
			"event stream: %d events in %d bytes (%.2f B/event)",
			st.EventsStreamed, st.StreamBytes,
			float64(st.StreamBytes)/float64(st.EventsStreamed))}
	}
	if rep.ExecutorBusy > 0 {
		// Parallel-detect run: the mutator itself ran on many goroutines.
		// SequencerBusy is the deterministic merge here (it inherits the
		// label stage's role); the reorder peak says how much scheduling
		// skew the merge had to buffer.
		stream = append(stream, fmt.Sprintf(
			"parallel executors busy %v of %v wall (%s; merge stage busy %v, reorder peak %d chunks)",
			rep.ExecutorBusy.Round(time.Microsecond),
			rep.WallTime.Round(time.Microsecond),
			pct(rep.ExecutorBusy, rep.WallTime),
			rep.SequencerBusy.Round(time.Microsecond),
			rep.ReorderPeak))
	}
	if rep.ShardBusy == nil {
		return append(stream, fmt.Sprintf(
			"detector-goroutine busy %v of %v wall (%s; multi-core floor is max of the two sides)",
			workers.Round(time.Microsecond),
			rep.WallTime.Round(time.Microsecond),
			pct(workers, rep.WallTime)))
	}
	lines := append(stream, fmt.Sprintf(
		"sharded detection: %d workers busy %v total of %v wall (label stage busy %v, %d label snapshots; multi-core floor is max of any side)",
		len(rep.ShardBusy),
		workers.Round(time.Microsecond),
		rep.WallTime.Round(time.Microsecond),
		label.Round(time.Microsecond),
		rep.LabelViewSnapshots))
	for i, busy := range rep.ShardBusy {
		line := fmt.Sprintf("  shard %d busy %v (%s of detect work)",
			i, busy.Round(time.Microsecond), pct(busy, workers))
		if rep.ShardLoad != nil {
			l := rep.ShardLoad[i]
			line += fmt.Sprintf(", scanned %d/%d batches (skipped %s), %d ring waits",
				l.BatchesScanned, l.BatchesScanned+l.BatchesSkipped,
				pctCount(l.BatchesSkipped, l.BatchesScanned+l.BatchesSkipped),
				l.RingWaits)
			if l.BlocksDecoded > 0 {
				// Events per decode block says how well the stream blocks for
				// this worker (near 64 is healthy; low means structure-dense
				// or tiny batches), and the decode share says how much of its
				// busy time went to block decode itself rather than page
				// splitting and detection.
				line += fmt.Sprintf(", %.1f ev/blk (decode %s of busy)",
					float64(l.EventsScanned)/float64(l.BlocksDecoded),
					pct(l.DecodeBusy, l.Busy))
			}
		}
		lines = append(lines, line)
	}
	if rep.ShardLoad != nil {
		// Wait attribution: per-consumer waits distinguish a uniformly
		// starved fleet (the label stage is the bottleneck) from one
		// straggler pacing everyone (the low-wait outlier never waits — the
		// ring's backpressure makes the others wait on it).
		minW, maxW := rep.ShardLoad[0].RingWaits, rep.ShardLoad[0].RingWaits
		for _, l := range rep.ShardLoad[1:] {
			if l.RingWaits < minW {
				minW = l.RingWaits
			}
			if l.RingWaits > maxW {
				maxW = l.RingWaits
			}
		}
		lines = append(lines, fmt.Sprintf(
			"  ring waits per worker: max %d, min %d (uniform waits = label stage is the bottleneck; a low-wait outlier is the straggler)",
			maxW, minW))
	}
	return lines
}

// pctCount formats part as a percentage of whole for plain counters.
func pctCount(part, whole uint64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

// ServeStatus renders a trace-ingest service's pool utilization — the
// /v1/statusz payload — in the same vocabulary stint-serve's API uses:
// fleet occupancy, admission-queue depth, the admission counters, and the
// lifetime throughput.
func ServeStatus(st serve.Stats) []string {
	lines := []string{
		fmt.Sprintf("runners     %d busy / %d idle (fleet %d)", st.Busy, st.Idle, st.Runners),
		fmt.Sprintf("queue       %d/%d pending", st.QueueLen, st.QueueCap),
		fmt.Sprintf("admissions  %d admitted, %d rejected, %d oversized, %d failed",
			st.Admitted, st.Rejected, st.Oversized, st.Failed),
	}
	tps := "-"
	if st.TracesPerSec > 0 {
		tps = fmt.Sprintf("%.1f traces/sec", st.TracesPerSec)
	}
	lines = append(lines, fmt.Sprintf("throughput  %d completed, %s over %.2fs",
		st.Completed, tps, st.UptimeSec))
	return lines
}
