package cliutil

import (
	"strings"
	"testing"
	"time"

	"stint"
)

func TestPipelineReportSyncRunIsSilent(t *testing.T) {
	if lines := PipelineReport(&stint.Report{}); lines != nil {
		t.Fatalf("expected no lines for a synchronous run, got %v", lines)
	}
}

func TestPipelineReportAsync(t *testing.T) {
	rep := &stint.Report{WallTime: 10 * time.Millisecond}
	rep.Stats.PipelineDetectTime = 5 * time.Millisecond
	lines := PipelineReport(rep)
	if len(lines) != 1 {
		t.Fatalf("want 1 line, got %v", lines)
	}
	if !strings.Contains(lines[0], "detector-goroutine busy") || !strings.Contains(lines[0], "50%") {
		t.Errorf("unexpected line: %q", lines[0])
	}
}

func TestPipelineReportSharded(t *testing.T) {
	rep := &stint.Report{WallTime: 10 * time.Millisecond, SequencerBusy: 2 * time.Millisecond}
	rep.ShardBusy = []time.Duration{3 * time.Millisecond, time.Millisecond}
	rep.Stats.PipelineDetectTime = 4 * time.Millisecond
	lines := PipelineReport(rep)
	if len(lines) != 3 {
		t.Fatalf("want header + 2 worker lines, got %v", lines)
	}
	if !strings.Contains(lines[0], "2 workers") || !strings.Contains(lines[0], "label stage busy 2ms") {
		t.Errorf("unexpected header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "shard 0") || !strings.Contains(lines[1], "75%") {
		t.Errorf("unexpected worker line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "shard 1") || !strings.Contains(lines[2], "25%") {
		t.Errorf("unexpected worker line: %q", lines[2])
	}
}

func TestStageBusy(t *testing.T) {
	if _, _, _, ok := StageBusy(&stint.Report{}); ok {
		t.Fatal("synchronous run should report ok=false")
	}

	async := &stint.Report{}
	async.Stats.PipelineDetectTime = 5 * time.Millisecond
	label, workers, maxWorker, ok := StageBusy(async)
	if !ok || label != 0 || workers != 5*time.Millisecond || maxWorker != 5*time.Millisecond {
		t.Fatalf("async split = (%v, %v, %v, %v)", label, workers, maxWorker, ok)
	}

	sharded := &stint.Report{SequencerBusy: 2 * time.Millisecond}
	sharded.ShardBusy = []time.Duration{time.Millisecond, 3 * time.Millisecond}
	sharded.Stats.PipelineDetectTime = 4 * time.Millisecond
	label, workers, maxWorker, ok = StageBusy(sharded)
	if !ok || label != 2*time.Millisecond || workers != 4*time.Millisecond || maxWorker != 3*time.Millisecond {
		t.Fatalf("sharded split = (%v, %v, %v, %v)", label, workers, maxWorker, ok)
	}
}

func TestPipelineReportFromRealShardedRun(t *testing.T) {
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT, Async: true, DetectShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("b", 1<<17)
	rep, err := r.Run(func(task *stint.Task) {
		task.Spawn(func(c *stint.Task) { c.StoreRange(buf, 0, 1<<17) })
		task.LoadRange(buf, 0, 1<<17)
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := PipelineReport(rep)
	if len(lines) != 5 {
		t.Fatalf("want stream line + header + 2 shard lines + waits line from a 2-shard run, got %v", lines)
	}
	if !strings.Contains(lines[0], "event stream") || !strings.Contains(lines[0], "B/event") {
		t.Errorf("missing stream readout: %q", lines[0])
	}
	if !strings.Contains(lines[1], "label snapshots") {
		t.Errorf("header missing snapshot count: %q", lines[1])
	}
	for _, line := range lines[2:4] {
		if !strings.Contains(line, "scanned") || !strings.Contains(line, "ring waits") {
			t.Errorf("shard line missing scan/skip readout: %q", line)
		}
	}
	if !strings.Contains(lines[4], "ring waits per worker") {
		t.Errorf("missing per-worker waits line: %q", lines[4])
	}
}

func TestPipelineReportFromRealParallelDetectRun(t *testing.T) {
	r, err := stint.NewRunner(stint.Options{Detector: stint.DetectorSTINT, ParallelDetect: true, DetectShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf := r.Arena().AllocWords("b", 1<<17)
	rep, err := r.Run(func(task *stint.Task) {
		task.Spawn(func(c *stint.Task) { c.StoreRange(buf, 0, 1<<17) })
		task.LoadRange(buf, 0, 1<<17)
		task.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := PipelineReport(rep)
	var exec string
	for _, line := range lines {
		if strings.Contains(line, "parallel executors busy") {
			exec = line
		}
	}
	if exec == "" {
		t.Fatalf("no executor readout in %v", lines)
	}
	if !strings.Contains(exec, "merge stage busy") || !strings.Contains(exec, "reorder peak") {
		t.Errorf("executor line missing merge/reorder readout: %q", exec)
	}
}

// TestPipelineReportShardLoad pins the scan-vs-skip readout rendering from
// a hand-built report.
func TestPipelineReportShardLoad(t *testing.T) {
	rep := &stint.Report{WallTime: 10 * time.Millisecond, SequencerBusy: time.Millisecond}
	rep.ShardBusy = []time.Duration{3 * time.Millisecond, time.Millisecond}
	rep.ShardLoad = []stint.ShardLoad{
		{Busy: 3 * time.Millisecond, BatchesScanned: 10, BatchesSkipped: 0, RingWaits: 1},
		{Busy: time.Millisecond, BatchesScanned: 2, BatchesSkipped: 8, RingWaits: 7},
	}
	rep.Stats.PipelineDetectTime = 4 * time.Millisecond
	lines := PipelineReport(rep)
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %v", lines)
	}
	if !strings.Contains(lines[1], "scanned 10/10 batches (skipped 0%)") || !strings.Contains(lines[1], "1 ring waits") {
		t.Errorf("shard 0 line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "scanned 2/10 batches (skipped 80%)") || !strings.Contains(lines[2], "7 ring waits") {
		t.Errorf("shard 1 line: %q", lines[2])
	}
	if !strings.Contains(lines[3], "max 7") || !strings.Contains(lines[3], "min 1") {
		t.Errorf("waits line: %q", lines[3])
	}
}
