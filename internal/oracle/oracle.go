// Package oracle provides a brute-force reference race detector for
// testing.
//
// Instead of an access history, the oracle records every strand that ever
// read or wrote each shadow word. After the run, RacingWords reports the
// exact set of words on which two logically parallel strands performed
// conflicting accesses — the ground truth every real detector is compared
// against: by Feng–Leiserson, a sound-and-complete detector reports a race
// on a word if and only if that word has one.
//
// The oracle implements detect.Engine so the fork-join runner can drive it
// like any production engine. It is O(accesses × strands²) in the worst
// case and intended only for small randomized test programs.
package oracle

import (
	"stint/internal/detect"
	"stint/internal/mem"
)

// Detector is the brute-force engine.
type Detector struct {
	reach  detect.Reach
	reads  map[mem.Addr]map[int32]struct{}
	writes map[mem.Addr]map[int32]struct{}
	stats  detect.Stats
}

var _ detect.Engine = (*Detector)(nil)

// New returns an oracle over the given reachability structure.
func New(reach detect.Reach) *Detector {
	return &Detector{
		reach:  reach,
		reads:  make(map[mem.Addr]map[int32]struct{}),
		writes: make(map[mem.Addr]map[int32]struct{}),
	}
}

func (d *Detector) record(m map[mem.Addr]map[int32]struct{}, addr mem.Addr, size uint64) {
	cur := d.reach.CurrentID()
	first := addr &^ 3
	for a := first; a < addr+size; a += mem.WordSize {
		set := m[a]
		if set == nil {
			set = make(map[int32]struct{})
			m[a] = set
		}
		set[cur] = struct{}{}
	}
}

// ReadHook records a read access.
func (d *Detector) ReadHook(addr mem.Addr, size uint64) { d.record(d.reads, addr, size) }

// WriteHook records a write access.
func (d *Detector) WriteHook(addr mem.Addr, size uint64) { d.record(d.writes, addr, size) }

// ReadRangeHook records a coalesced read element by element.
func (d *Detector) ReadRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	d.record(d.reads, addr, uint64(count)*elemBytes)
}

// WriteRangeHook records a coalesced write element by element.
func (d *Detector) WriteRangeHook(addr mem.Addr, count int, elemBytes uint64) {
	d.record(d.writes, addr, uint64(count)*elemBytes)
}

// StrandEnd is a no-op: the oracle needs no per-strand state.
func (d *Detector) StrandEnd() {}

// Finish is a no-op.
func (d *Detector) Finish() {}

// Stats returns zeroed counters; the oracle measures nothing.
func (d *Detector) Stats() *detect.Stats { return &d.stats }

// Reset drops all recorded accesses so the oracle can be reused. The maps
// are reallocated rather than cleared: the oracle is a test-only reference
// and retains no warm capacity.
func (d *Detector) Reset() {
	d.reads = make(map[mem.Addr]map[int32]struct{})
	d.writes = make(map[mem.Addr]map[int32]struct{})
	d.stats = detect.Stats{}
}

// RacingWords returns the set of word addresses with at least one pair of
// logically parallel conflicting accesses.
func (d *Detector) RacingWords() map[mem.Addr]bool {
	racy := make(map[mem.Addr]bool)
	for addr, writers := range d.writes {
		if d.wordRaces(writers, d.reads[addr]) {
			racy[addr] = true
		}
	}
	return racy
}

// wordRaces checks writer-writer and writer-reader pairs for parallelism.
func (d *Detector) wordRaces(writers, readers map[int32]struct{}) bool {
	for w1 := range writers {
		for w2 := range writers {
			if w1 < w2 && d.reach.Parallel(w1, w2) {
				return true
			}
		}
		for r := range readers {
			if r != w1 && d.reach.Parallel(w1, r) {
				return true
			}
		}
	}
	return false
}
