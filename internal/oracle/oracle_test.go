package oracle

import (
	"testing"

	"stint/internal/spord"
)

func TestNoAccessesNoRaces(t *testing.T) {
	sp := spord.New()
	d := New(sp)
	if len(d.RacingWords()) != 0 {
		t.Fatal("empty oracle reports races")
	}
}

func TestParallelWritesDetected(t *testing.T) {
	sp := spord.New()
	d := New(sp)
	f := &spord.Frame{}
	_, cont := sp.Spawn(f)
	d.WriteHook(0x1000, 4)
	sp.Restore(cont)
	d.WriteHook(0x1000, 4)
	sp.Sync(f)
	racy := d.RacingWords()
	if !racy[0x1000] || len(racy) != 1 {
		t.Fatalf("RacingWords = %v, want {0x1000}", racy)
	}
}

func TestSeriesWritesClean(t *testing.T) {
	sp := spord.New()
	d := New(sp)
	f := &spord.Frame{}
	d.WriteHook(0x1000, 4)
	_, cont := sp.Spawn(f)
	d.WriteHook(0x1000, 4)
	sp.Restore(cont)
	sp.Sync(f)
	d.WriteHook(0x1000, 4) // after sync
	if racy := d.RacingWords(); len(racy) != 0 {
		t.Fatalf("series writes flagged: %v", racy)
	}
}

func TestReadReadClean(t *testing.T) {
	sp := spord.New()
	d := New(sp)
	f := &spord.Frame{}
	_, cont := sp.Spawn(f)
	d.ReadHook(0x1000, 4)
	sp.Restore(cont)
	d.ReadHook(0x1000, 4)
	sp.Sync(f)
	if racy := d.RacingWords(); len(racy) != 0 {
		t.Fatalf("read-read flagged: %v", racy)
	}
}

func TestRangeHooksExpandToWords(t *testing.T) {
	sp := spord.New()
	d := New(sp)
	f := &spord.Frame{}
	_, cont := sp.Spawn(f)
	d.WriteRangeHook(0x1000, 4, 4) // words 0x1000..0x100c
	sp.Restore(cont)
	d.ReadRangeHook(0x1008, 2, 4) // words 0x1008, 0x100c
	sp.Sync(f)
	racy := d.RacingWords()
	if len(racy) != 2 || !racy[0x1008] || !racy[0x100c] {
		t.Fatalf("RacingWords = %v, want exactly {0x1008, 0x100c}", racy)
	}
}

func TestUnalignedAccessCoversWords(t *testing.T) {
	sp := spord.New()
	d := New(sp)
	f := &spord.Frame{}
	_, cont := sp.Spawn(f)
	d.WriteHook(0x1002, 4) // straddles words 0x1000 and 0x1004
	sp.Restore(cont)
	d.ReadHook(0x1004, 4)
	sp.Sync(f)
	if racy := d.RacingWords(); !racy[0x1004] {
		t.Fatalf("straddled word missed: %v", racy)
	}
}
