// Package spord implements serial SP-Order reachability for fork-join
// programs.
//
// SP-Order (Bender, Fineman, Gilbert, Leiserson; SPAA 2004) maintains two
// total orders over the strands of a series-parallel DAG: the English order,
// which follows the sequential (depth-first, spawned-child-first) execution
// order, and the Hebrew order, which mirrors it (depth-first,
// continuation-first). Two strands are logically parallel exactly when the
// two orders disagree about their relative position. Both orders live in
// order-maintenance lists (stint/internal/om), so maintaining them costs
// amortized O(1) per spawn and each reachability query costs O(1).
//
// This package also provides the left-of relation used by Feng–Leiserson
// sequential race detection: strand a is left-of strand b when a is parallel
// with b and precedes it in sequential order, or a is in series with b and
// follows it. For strands of one serial execution, left-of coincides with
// "later in the Hebrew order", which is how LeftOf is implemented; the
// package tests verify the identity against a brute-force DAG oracle.
package spord

import "stint/internal/om"

// Strand identifies a maximal instruction sequence with no parallel control.
// Strands are created by SP and referenced by the access history for the
// lifetime of a detection run.
type Strand struct {
	id  int32
	seq int32
	eng *om.Node
	heb *om.Node
}

// ID returns the strand's dense index: strands are numbered from 0 in
// creation order.
func (s *Strand) ID() int32 { return s.id }

// Seq returns the strand's sequential (English-order) rank: strands are
// ranked from 0 in the order they become current, which for one serial
// execution is the order their instructions run. Creation order differs —
// a sync strand is created at the first spawn of its block but runs only
// after the block's last child joins.
func (s *Strand) Seq() int32 { return s.seq }

// Frame holds the per-function-instance state SP-Order needs: the pending
// sync strand of the current sync block, if any.
type Frame struct {
	sync *Strand
}

// Pending reports whether the frame's current sync block has outstanding
// spawns (i.e. a sync strand has been reserved but not yet entered).
func (f *Frame) Pending() bool { return f.sync != nil }

// strandChunk is the slab granularity for Strand records: SP allocates
// backing arrays this many strands at a time rather than one heap object
// per strand.
const strandChunk = 256

// SP maintains SP-Order for one serial execution of a fork-join program.
type SP struct {
	eng     *om.List
	heb     *om.List
	strands []*Strand
	// Strand records are carved sequentially out of retained chunks; Reset
	// rewinds the (chunk, offset) cursor instead of dropping the backing
	// arrays, so a reused SP allocates nothing in steady state.
	chunks [][]Strand
	curCk  int
	usedCk int
	cur    *Strand
	seq    int32 // next sequential rank to hand out (see Strand.Seq)
}

// New returns an SP with a single root strand, which is also the current
// strand.
func New() *SP {
	sp := &SP{eng: om.NewList(), heb: om.NewList()}
	sp.start()
	return sp
}

// start creates the root strand and makes it current.
func (sp *SP) start() {
	root := sp.newStrand(sp.eng.InsertAfter(nil), sp.heb.InsertAfter(nil))
	sp.makeCurrent(root)
}

// Reset rewinds the SP to the state New returns, retaining every strand
// chunk and both order-maintenance lists' backing memory. All Strand
// pointers handed out before the Reset are recycled wholesale; the access
// history referencing them must be reset in the same breath. Because the
// root strand is re-created through the identical insertion sequence, a
// reused SP is indistinguishable from a fresh one.
func (sp *SP) Reset() {
	sp.eng.Reset()
	sp.heb.Reset()
	hi := sp.curCk
	if hi >= len(sp.chunks) {
		hi = len(sp.chunks) - 1
	}
	for i := 0; i < hi; i++ {
		clear(sp.chunks[i])
	}
	if hi >= 0 {
		clear(sp.chunks[hi][:sp.usedCk])
	}
	sp.strands = sp.strands[:0]
	sp.curCk, sp.usedCk = 0, 0
	sp.seq = 0
	sp.start()
}

// makeCurrent stamps s with the next sequential rank and makes it current.
// Every strand becomes current exactly once, so ranks are dense and strictly
// follow the serial execution order.
func (sp *SP) makeCurrent(s *Strand) {
	s.seq = sp.seq
	sp.seq++
	sp.cur = s
}

func (sp *SP) newStrand(eng, heb *om.Node) *Strand {
	if sp.usedCk == strandChunk {
		sp.curCk++
		sp.usedCk = 0
	}
	if sp.curCk == len(sp.chunks) {
		sp.chunks = append(sp.chunks, make([]Strand, strandChunk))
	}
	s := &sp.chunks[sp.curCk][sp.usedCk]
	sp.usedCk++
	s.id, s.eng, s.heb = int32(len(sp.strands)), eng, heb
	sp.strands = append(sp.strands, s)
	return s
}

// Current returns the strand the program is executing now.
func (sp *SP) Current() *Strand { return sp.cur }

// StrandCount returns the number of strands created so far.
func (sp *SP) StrandCount() int { return len(sp.strands) }

// Strand returns the strand with the given ID.
func (sp *SP) Strand(id int32) *Strand { return sp.strands[id] }

// Spawn records a spawn from the current strand within frame f. It creates
// the spawned-child strand and the continuation strand (and, on the first
// spawn of a sync block, reserves the sync strand), makes the child the
// current strand, and returns the continuation so the caller can restore it
// with Restore when the child's serial execution returns.
//
// English order after the first spawn of a block from strand v:
// v, child, continuation, syncStrand. Hebrew order: v, continuation, child,
// syncStrand. Later spawns in the same block omit the sync strand.
func (sp *SP) Spawn(f *Frame) (child, continuation *Strand) {
	v := sp.cur
	childEng := sp.eng.InsertAfter(v.eng)
	contEng := sp.eng.InsertAfter(childEng)
	contHeb := sp.heb.InsertAfter(v.heb)
	childHeb := sp.heb.InsertAfter(contHeb)
	child = sp.newStrand(childEng, childHeb)
	continuation = sp.newStrand(contEng, contHeb)
	if f.sync == nil {
		syncEng := sp.eng.InsertAfter(contEng)
		syncHeb := sp.heb.InsertAfter(childHeb)
		f.sync = sp.newStrand(syncEng, syncHeb)
	}
	sp.makeCurrent(child)
	return child, continuation
}

// Restore makes the continuation strand current again after a spawned
// child's serial execution has returned.
func (sp *SP) Restore(continuation *Strand) { sp.makeCurrent(continuation) }

// Sync ends the current sync block of frame f. If the block had spawns, the
// reserved sync strand becomes current; otherwise Sync is a no-op (a sync
// with nothing outstanding does not create a strand). It returns the current
// strand after the sync.
func (sp *SP) Sync(f *Frame) *Strand {
	if f.sync != nil {
		s := f.sync
		f.sync = nil
		sp.makeCurrent(s)
	}
	return sp.cur
}

// Parallel reports whether strands a and b are logically parallel: the
// English and Hebrew orders disagree about their relative position.
func Parallel(a, b *Strand) bool {
	if a == b {
		return false
	}
	return om.Before(a.eng, b.eng) != om.Before(a.heb, b.heb)
}

// Series reports whether a strictly precedes b in the series (happens-
// before) order: a comes before b in both total orders.
func Series(a, b *Strand) bool {
	if a == b {
		return false
	}
	return om.Before(a.eng, b.eng) && om.Before(a.heb, b.heb)
}

// LeftOf reports whether a is to the left of b: a is parallel with b and
// precedes it in sequential order, or a is in series with b and follows it.
// For any two distinct strands of one execution this is equivalent to a
// being later in the Hebrew order.
func LeftOf(a, b *Strand) bool {
	return om.Before(b.heb, a.heb)
}

// SeqBefore reports whether a precedes b in the sequential execution
// (English) order.
func SeqBefore(a, b *Strand) bool {
	return om.Before(a.eng, b.eng)
}

// The ID-based methods below make *SP satisfy the detector's reachability
// interface (stint/internal/detect.Reach).

// CurrentID returns the ID of the current strand.
func (sp *SP) CurrentID() int32 { return sp.cur.id }

// Parallel reports whether the strands with the given IDs are logically
// parallel.
func (sp *SP) Parallel(a, b int32) bool {
	return Parallel(sp.strands[a], sp.strands[b])
}

// LeftOf reports whether strand a is left-of strand b, by ID.
func (sp *SP) LeftOf(a, b int32) bool {
	return LeftOf(sp.strands[a], sp.strands[b])
}

// SeqRank returns the sequential rank of the strand with the given ID
// (see Strand.Seq).
func (sp *SP) SeqRank(id int32) int32 { return sp.strands[id].seq }
