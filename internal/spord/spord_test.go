package spord

import (
	"math/rand"
	"testing"
)

// --- brute-force oracle -------------------------------------------------
//
// The oracle interprets a random fork-join program, mirroring exactly the
// strand transitions the SP structure performs, while also recording the
// series-parallel DAG on strand IDs and the true sequential execution order.
// Reachability on that DAG (transitive closure) is ground truth for
// Parallel/Series; execution timestamps are ground truth for the sequential
// order; the left-of relation is computed from its textbook definition.

type oracle struct {
	sp    *SP
	edges map[int32][]int32
	seq   map[int32]int // strand ID -> execution timestamp
	clock int
}

func newOracle() *oracle {
	o := &oracle{
		sp:    New(),
		edges: make(map[int32][]int32),
		seq:   make(map[int32]int),
	}
	o.enter(o.sp.Current())
	return o
}

func (o *oracle) enter(s *Strand) {
	if _, dup := o.seq[s.ID()]; dup {
		panic("strand executed twice")
	}
	o.seq[s.ID()] = o.clock
	o.clock++
}

func (o *oracle) addEdge(from, to int32) {
	o.edges[from] = append(o.edges[from], to)
}

// frameState tracks, per function instance, the spawned children whose
// final strands must join the pending sync strand.
type frameState struct {
	frame   Frame
	waiting []int32
}

// spawn runs body as a spawned child and returns when it completes,
// mirroring serial Cilk execution.
func (o *oracle) spawn(fs *frameState, body func(*frameState)) {
	v := o.sp.Current()
	child, cont := o.sp.Spawn(&fs.frame)
	o.enter(child)
	o.addEdge(v.ID(), child.ID())
	o.addEdge(v.ID(), cont.ID())
	childFS := &frameState{}
	body(childFS)
	final := o.finish(childFS)
	fs.waiting = append(fs.waiting, final)
	o.sp.Restore(cont)
	o.enter(cont)
}

// sync performs an explicit sync in the current function instance.
func (o *oracle) sync(fs *frameState) {
	if !fs.frame.Pending() {
		if got := o.sp.Sync(&fs.frame); got != o.sp.Current() {
			panic("no-op sync changed current strand")
		}
		return
	}
	v := o.sp.Current()
	s := o.sp.Sync(&fs.frame)
	o.enter(s)
	o.addEdge(v.ID(), s.ID())
	for _, w := range fs.waiting {
		o.addEdge(w, s.ID())
	}
	fs.waiting = fs.waiting[:0]
}

// finish performs the implicit sync at function return and reports the
// function's final strand.
func (o *oracle) finish(fs *frameState) int32 {
	o.sync(fs)
	return o.sp.Current().ID()
}

// reachable computes the full reachability matrix of the recorded DAG.
func (o *oracle) reachable() [][]bool {
	n := o.sp.StrandCount()
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	var dfs func(root, cur int32)
	seen := make([]bool, n)
	dfs = func(root, cur int32) {
		for _, nxt := range o.edges[cur] {
			if !seen[nxt] {
				seen[nxt] = true
				reach[root][nxt] = true
				dfs(root, nxt)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := range seen {
			seen[j] = false
		}
		dfs(int32(i), int32(i))
	}
	return reach
}

// randomBody generates a random function body: a sequence of spawns (with
// recursively generated children) and syncs.
func randomBody(rng *rand.Rand, depth int) func(*oracle, *frameState) {
	type action struct {
		isSpawn bool
		child   func(*oracle, *frameState)
	}
	n := rng.Intn(5)
	actions := make([]action, n)
	for i := range actions {
		if depth > 0 && rng.Intn(3) != 0 {
			actions[i] = action{isSpawn: true, child: randomBody(rng, depth-1)}
		} else {
			actions[i] = action{isSpawn: false}
		}
	}
	return func(o *oracle, fs *frameState) {
		for _, a := range actions {
			if a.isSpawn {
				child := a.child
				o.spawn(fs, func(cfs *frameState) { child(o, cfs) })
			} else {
				o.sync(fs)
			}
		}
	}
}

func (o *oracle) check(t *testing.T) {
	t.Helper()
	n := o.sp.StrandCount()
	if len(o.seq) != n {
		t.Fatalf("executed %d strands, created %d", len(o.seq), n)
	}
	reach := o.reachable()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a, b := o.sp.Strand(int32(i)), o.sp.Strand(int32(j))
			wantPar := i != j && !reach[i][j] && !reach[j][i]
			if got := Parallel(a, b); got != wantPar {
				t.Fatalf("Parallel(%d,%d) = %v, want %v", i, j, got, wantPar)
			}
			if got := Series(a, b); got != reach[i][j] {
				t.Fatalf("Series(%d,%d) = %v, want %v", i, j, got, reach[i][j])
			}
			if got, want := SeqBefore(a, b), o.seq[a.ID()] < o.seq[b.ID()]; got != want {
				t.Fatalf("SeqBefore(%d,%d) = %v, want %v", i, j, got, want)
			}
			if i != j {
				// Definition: a left-of b iff (a ∥ b and a earlier in seq
				// order) or (a series-related to b and a later in seq order).
				seqBefore := o.seq[a.ID()] < o.seq[b.ID()]
				wantLeft := (wantPar && seqBefore) || ((reach[i][j] || reach[j][i]) && !seqBefore)
				if got := LeftOf(a, b); got != wantLeft {
					t.Fatalf("LeftOf(%d,%d) = %v, want %v (par=%v seqBefore=%v)", i, j, got, wantLeft, wantPar, seqBefore)
				}
			}
		}
	}
}

// --- tests ----------------------------------------------------------------

func TestRootOnly(t *testing.T) {
	sp := New()
	if sp.StrandCount() != 1 {
		t.Fatalf("StrandCount() = %d, want 1", sp.StrandCount())
	}
	r := sp.Current()
	if Parallel(r, r) || Series(r, r) || LeftOf(r, r) {
		t.Fatal("root strand related to itself")
	}
}

func TestSingleSpawn(t *testing.T) {
	o := newOracle()
	fs := &frameState{}
	o.spawn(fs, func(cfs *frameState) {})
	o.sync(fs)
	o.check(t)

	// Strand 0 = root, 1 = child, 2 = continuation, 3 = sync.
	root, child, cont, sync := o.sp.Strand(0), o.sp.Strand(1), o.sp.Strand(2), o.sp.Strand(3)
	if !Parallel(child, cont) {
		t.Error("spawned child should be parallel with the continuation")
	}
	if !Series(root, child) || !Series(root, cont) || !Series(child, sync) || !Series(cont, sync) {
		t.Error("series relations around a single spawn are wrong")
	}
	if !LeftOf(child, cont) {
		t.Error("spawned child should be left-of the continuation")
	}
	if LeftOf(cont, child) {
		t.Error("continuation should not be left-of the spawned child")
	}
}

func TestTwoSpawnsOneBlock(t *testing.T) {
	o := newOracle()
	fs := &frameState{}
	o.spawn(fs, func(cfs *frameState) {})
	o.spawn(fs, func(cfs *frameState) {})
	o.sync(fs)
	o.check(t)
}

func TestSequentialSyncBlocks(t *testing.T) {
	o := newOracle()
	fs := &frameState{}
	o.spawn(fs, func(cfs *frameState) {})
	o.sync(fs)
	firstBlockChild := o.sp.Strand(1)
	o.spawn(fs, func(cfs *frameState) {})
	o.sync(fs)
	secondBlockChild := o.sp.Strand(4 + 1) // strands 0..3 from block one, sync=3; spawn creates 4(child)...
	o.check(t)
	// A strand spawned after a sync is in series with everything the sync
	// joined.
	if Parallel(firstBlockChild, secondBlockChild) {
		t.Error("strands in consecutive sync blocks must be in series")
	}
}

func TestNoOpSync(t *testing.T) {
	o := newOracle()
	fs := &frameState{}
	before := o.sp.Current()
	o.sync(fs)
	if o.sp.Current() != before {
		t.Fatal("sync with no pending spawns must not change the strand")
	}
	if o.sp.StrandCount() != 1 {
		t.Fatalf("no-op sync created strands: %d", o.sp.StrandCount())
	}
}

func TestNestedSpawns(t *testing.T) {
	o := newOracle()
	fs := &frameState{}
	o.spawn(fs, func(cfs *frameState) {
		o.spawn(cfs, func(ccfs *frameState) {})
		o.spawn(cfs, func(ccfs *frameState) {})
		o.sync(cfs)
	})
	o.spawn(fs, func(cfs *frameState) {
		o.spawn(cfs, func(ccfs *frameState) {})
	})
	o.sync(fs)
	o.check(t)
}

func TestDeepSerialChain(t *testing.T) {
	o := newOracle()
	var recurse func(fs *frameState, depth int)
	recurse = func(fs *frameState, depth int) {
		if depth == 0 {
			return
		}
		o.spawn(fs, func(cfs *frameState) { recurse(cfs, depth-1) })
		o.sync(fs)
	}
	fs := &frameState{}
	recurse(fs, 12)
	o.check(t)
}

func TestWideSpawnFanout(t *testing.T) {
	o := newOracle()
	fs := &frameState{}
	for i := 0; i < 20; i++ {
		o.spawn(fs, func(cfs *frameState) {})
	}
	o.sync(fs)
	o.check(t)
	// All 20 spawned children are pairwise parallel; child strands are
	// 1, 4, 6, 8, ... (the first spawn also creates the sync strand).
	childIDs := []int32{1}
	for i := 1; i < 20; i++ {
		childIDs = append(childIDs, int32(4+2*(i-1)))
	}
	for i, a := range childIDs {
		for _, b := range childIDs[i+1:] {
			if !Parallel(o.sp.Strand(a), o.sp.Strand(b)) {
				t.Fatalf("children %d and %d should be parallel", a, b)
			}
		}
	}
}

func TestRandomProgramsAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		o := newOracle()
		body := randomBody(rng, 4)
		fs := &frameState{}
		body(o, fs)
		o.finish(fs)
		o.check(t)
	}
}

func TestLargeRandomProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	o := newOracle()
	var grow func(fs *frameState, budget *int)
	grow = func(fs *frameState, budget *int) {
		for *budget > 0 && rng.Intn(4) != 0 {
			*budget--
			if rng.Intn(3) == 0 {
				o.sync(fs)
				continue
			}
			o.spawn(fs, func(cfs *frameState) { grow(cfs, budget) })
		}
	}
	fs := &frameState{}
	budget := 120
	grow(fs, &budget)
	o.finish(fs)
	if o.sp.StrandCount() < 50 {
		t.Skipf("random program too small: %d strands", o.sp.StrandCount())
	}
	o.check(t)
}

func TestLeftOfTotalOnParallelPairs(t *testing.T) {
	// Among pairwise-parallel strands, left-of must be a strict total order.
	o := newOracle()
	fs := &frameState{}
	for i := 0; i < 8; i++ {
		o.spawn(fs, func(cfs *frameState) {})
	}
	o.sync(fs)
	ids := []int32{1}
	for i := 1; i < 8; i++ {
		ids = append(ids, int32(4+2*(i-1)))
	}
	for i, a := range ids {
		for j, b := range ids {
			if i == j {
				continue
			}
			sa, sb := o.sp.Strand(a), o.sp.Strand(b)
			if LeftOf(sa, sb) == LeftOf(sb, sa) {
				t.Fatalf("left-of not antisymmetric for %d,%d", a, b)
			}
			if (i < j) != LeftOf(sa, sb) {
				t.Fatalf("earlier-spawned parallel child must be left-of later one (%d,%d)", a, b)
			}
		}
	}
}

func BenchmarkSpawnSync(b *testing.B) {
	sp := New()
	b.ResetTimer()
	f := &Frame{}
	for i := 0; i < b.N; i++ {
		_, cont := sp.Spawn(f)
		sp.Restore(cont)
		if i%8 == 7 {
			sp.Sync(f)
		}
	}
}

func BenchmarkParallelQuery(b *testing.B) {
	sp := New()
	f := &Frame{}
	var strands []*Strand
	for i := 0; i < 1000; i++ {
		child, cont := sp.Spawn(f)
		strands = append(strands, child)
		sp.Restore(cont)
		if i%10 == 9 {
			sp.Sync(f)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(strands[i%len(strands)], strands[(i*13+7)%len(strands)])
	}
}
