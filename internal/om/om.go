// Package om implements an order-maintenance list.
//
// An order-maintenance (OM) list supports two operations: insert a new
// element immediately after an existing one, and ask whether element a
// precedes element b, both in amortized constant time. SP-Order (Bender,
// Fineman, Gilbert, Leiserson; SPAA 2004) maintains two such lists — the
// "English" and "Hebrew" total orders over strands — and answers
// series/parallel reachability queries for fork-join programs with two order
// queries. This package is the data-structure substrate for
// stint/internal/spord.
//
// The implementation is the classic two-level scheme: elements are packed
// into groups of O(1) size whose members carry 64-bit labels inside the
// group, and the groups themselves form a linked list labeled with the
// Dietz–Sleator relabeling strategy (scan forward until the label gap
// exceeds the square of the number of nodes scanned, then spread those
// labels evenly). Order queries compare (group label, element label) pairs.
// Deletions are not supported: race detection never discards a strand that
// may still be referenced by the access history.
package om

import "math"

// Node is an element of an order-maintenance list. Nodes are created only by
// List.InsertAfter and are valid for the lifetime of the list.
type Node struct {
	group *group
	label uint64
	prev  *Node
	next  *Node
}

// group is a bounded run of consecutive nodes sharing one top-level label.
type group struct {
	label uint64
	size  int
	first *Node
	last  *Node
	prev  *group
	next  *group
	list  *List
}

const (
	// maxGroupSize bounds the number of nodes per group. Splitting at this
	// size keeps intra-group relabels O(1).
	maxGroupSize = 64
	// nodeStride spaces node labels inside a group far enough apart that a
	// group fills up before its label space does.
	nodeStride = 1 << 32
	// groupStride is the initial spacing between consecutive group labels.
	groupStride = 1 << 32
)

// omChunk is the slab granularity for nodes and groups: lists allocate
// backing arrays this many elements at a time instead of one heap object
// per insert, keeping per-spawn costs allocation-free in steady state.
const omChunk = 128

// List is an order-maintenance list. The zero value is an empty list ready
// for use.
type List struct {
	head *group // first group, nil when empty
	tail *group
	len  int
	// Nodes and groups are carved sequentially out of retained chunk tables;
	// allocNode/allocGroup advance a (chunk, offset) cursor. Elements stay
	// valid until Reset, which rewinds the cursors and zeroes the carved
	// region — the backing arrays are reused, never released, so steady-state
	// reuse allocates nothing.
	nodeChunks [][]Node
	nodeCur    int
	nodeUsed   int
	grpChunks  [][]group
	grpCur     int
	grpUsed    int
}

// allocNode carves a zero node out of the chunk table.
func (l *List) allocNode() *Node {
	if l.nodeUsed == omChunk {
		l.nodeCur++
		l.nodeUsed = 0
	}
	if l.nodeCur == len(l.nodeChunks) {
		l.nodeChunks = append(l.nodeChunks, make([]Node, omChunk))
	}
	n := &l.nodeChunks[l.nodeCur][l.nodeUsed]
	l.nodeUsed++
	return n
}

// allocGroup carves a zero group out of the chunk table.
func (l *List) allocGroup() *group {
	if l.grpUsed == omChunk {
		l.grpCur++
		l.grpUsed = 0
	}
	if l.grpCur == len(l.grpChunks) {
		l.grpChunks = append(l.grpChunks, make([]group, omChunk))
	}
	g := &l.grpChunks[l.grpCur][l.grpUsed]
	l.grpUsed++
	return g
}

// clearCarved zeroes the carved prefix of a chunk table: full chunks below
// the cursor plus the carved head of the current chunk. Chunks past the
// cursor are already zero (fresh from make, or cleared by an earlier Reset
// and never re-carved).
func clearCarved[T any](chunks [][]T, cur, used int) {
	hi := cur
	if hi >= len(chunks) {
		hi = len(chunks) - 1
	}
	for i := 0; i < hi; i++ {
		clear(chunks[i])
	}
	if hi >= 0 {
		clear(chunks[hi][:used])
	}
}

// Reset empties the list for reuse, retaining every chunk it ever
// allocated. All Nodes previously returned by InsertAfter are recycled
// wholesale — the caller must drop every reference before Reset (race
// detection only ever does this between runs, when the whole strand set
// dies at once). A Reset list is indistinguishable from NewList() except
// for its retained capacity.
func (l *List) Reset() {
	clearCarved(l.nodeChunks, l.nodeCur, l.nodeUsed)
	clearCarved(l.grpChunks, l.grpCur, l.grpUsed)
	l.head, l.tail, l.len = nil, nil, 0
	l.nodeCur, l.nodeUsed = 0, 0
	l.grpCur, l.grpUsed = 0, 0
}

// NewList returns an empty order-maintenance list.
func NewList() *List { return &List{} }

// Len returns the number of nodes in the list.
func (l *List) Len() int { return l.len }

// Front returns the first node in the list, or nil if the list is empty.
func (l *List) Front() *Node {
	if l.head == nil {
		return nil
	}
	return l.head.first
}

// InsertAfter inserts a new node immediately after x and returns it.
// If x is nil the node is inserted at the front of the list.
func (l *List) InsertAfter(x *Node) *Node {
	l.len++
	if x == nil {
		return l.pushFront()
	}
	g := x.group
	n := l.allocNode()
	n.group, n.prev, n.next = g, x, x.next
	if x.next != nil {
		x.next.prev = n
	}
	x.next = n
	if g.last == x {
		g.last = n
	}
	g.size++
	l.assignLabel(n, x)
	if g.size > maxGroupSize {
		g.split()
	}
	return n
}

// pushFront handles insertion at the head of the list.
func (l *List) pushFront() *Node {
	n := l.allocNode()
	if l.head == nil {
		g := l.allocGroup()
		g.label, g.size, g.first, g.last, g.list = math.MaxUint64/2, 1, n, n, l
		n.group = g
		n.label = math.MaxUint64 / 2
		l.head = g
		l.tail = g
		return n
	}
	g := l.head
	first := g.first
	n.group = g
	n.next = first
	first.prev = n
	g.first = n
	g.size++
	if first.label == 0 {
		g.relabelNodes()
	} else {
		n.label = first.label / 2
	}
	if g.size > maxGroupSize {
		g.split()
	}
	return n
}

// assignLabel gives n, already linked after x inside x's group, a label
// strictly between x and its successor, relabeling the group if the gap is
// exhausted.
func (l *List) assignLabel(n, x *Node) {
	var hi uint64
	if n.next != nil && n.next.group == n.group {
		hi = n.next.label
	} else {
		hi = math.MaxUint64
	}
	if hi-x.label >= 2 {
		n.label = x.label + (hi-x.label)/2
		return
	}
	n.group.relabelNodes()
}

// relabelNodes spreads the labels of every node in g evenly.
func (g *group) relabelNodes() {
	label := uint64(nodeStride)
	for n := g.first; ; n = n.next {
		n.label = label
		label += nodeStride
		if n == g.last {
			break
		}
	}
}

// split divides g into two groups of half size and inserts the second half
// as a new group after g in the top-level list.
func (g *group) split() {
	half := g.size / 2
	mid := g.first
	for i := 1; i < half; i++ {
		mid = mid.next
	}
	ng := g.list.allocGroup()
	ng.size, ng.first, ng.last = g.size-half, mid.next, g.last
	ng.prev, ng.next, ng.list = g, g.next, g.list
	for n := ng.first; ; n = n.next {
		n.group = ng
		if n == ng.last {
			break
		}
	}
	g.size = half
	g.last = mid
	if g.next != nil {
		g.next.prev = ng
	} else {
		g.list.tail = ng
	}
	g.next = ng
	g.relabelNodes()
	ng.relabelNodes()
	g.list.insertGroupLabel(ng)
}

// insertGroupLabel assigns ng, already linked after ng.prev, a top-level
// label, relabeling a window of following groups Dietz–Sleator style when
// the immediate gap is exhausted.
func (l *List) insertGroupLabel(ng *group) {
	prev := ng.prev
	gap := l.gapAfter(prev, ng.next)
	if gap >= 2 {
		ng.label = prev.label + gap/2
		return
	}
	// Relabel: scan forward from prev until the label gap over the scanned
	// window exceeds the square of the window size, then spread evenly.
	count := uint64(0)
	w := ng.next
	for {
		count++
		var wGap uint64
		if w == nil {
			wGap = math.MaxUint64 - prev.label
		} else {
			wGap = w.label - prev.label
		}
		if wGap > count*count {
			// Spread the count-1 scanned groups (everything strictly between
			// prev and w) plus ng evenly across (prev.label, prev.label+wGap).
			stride := wGap / (count + 1)
			if stride == 0 {
				stride = 1
			}
			label := prev.label + stride
			for g := ng; g != w; g = g.next {
				g.label = label
				label += stride
			}
			return
		}
		if w == nil {
			// The whole tail is scanned and even the full remaining label
			// space is dense; renumber every group from scratch.
			l.renumberAllGroups()
			return
		}
		w = w.next
	}
}

// gapAfter returns the label distance from g to its successor succ (nil
// meaning end of list).
func (l *List) gapAfter(g, succ *group) uint64 {
	if succ == nil {
		return math.MaxUint64 - g.label
	}
	return succ.label - g.label
}

// renumberAllGroups spaces every group label groupStride apart.
func (l *List) renumberAllGroups() {
	label := uint64(groupStride)
	for g := l.head; g != nil; g = g.next {
		g.label = label
		label += groupStride
	}
}

// Before reports whether a precedes b in the list order. A node does not
// precede itself.
func Before(a, b *Node) bool {
	if a.group == b.group {
		return a.label < b.label
	}
	return a.group.label < b.group.label
}

// Next returns the node after n, or nil at the end of the list. It is
// provided for tests and iteration; detector code uses only Before.
func (n *Node) Next() *Node { return n.next }

// Prev returns the node before n, or nil at the front of the list.
func (n *Node) Prev() *Node { return n.prev }
