package om

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveList mirrors an OM list as a plain slice so every test can compare
// Before against ground-truth positions.
type naiveList struct {
	nodes []*Node
}

func (nl *naiveList) indexOf(n *Node) int {
	for i, x := range nl.nodes {
		if x == n {
			return i
		}
	}
	return -1
}

func (nl *naiveList) insertAfter(x, n *Node) {
	if x == nil {
		nl.nodes = append([]*Node{n}, nl.nodes...)
		return
	}
	i := nl.indexOf(x)
	if i < 0 {
		panic("naiveList: unknown node")
	}
	nl.nodes = append(nl.nodes, nil)
	copy(nl.nodes[i+2:], nl.nodes[i+1:])
	nl.nodes[i+1] = n
}

func checkAgainstNaive(t *testing.T, nl *naiveList) {
	t.Helper()
	for i, a := range nl.nodes {
		for j, b := range nl.nodes {
			got := Before(a, b)
			want := i < j
			if got != want {
				t.Fatalf("Before(#%d, #%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestEmptyList(t *testing.T) {
	l := NewList()
	if l.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", l.Len())
	}
	if l.Front() != nil {
		t.Fatalf("Front() = %v, want nil", l.Front())
	}
}

func TestSingleNode(t *testing.T) {
	l := NewList()
	n := l.InsertAfter(nil)
	if l.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", l.Len())
	}
	if l.Front() != n {
		t.Fatalf("Front() != inserted node")
	}
	if Before(n, n) {
		t.Fatal("node precedes itself")
	}
}

func TestAppendChain(t *testing.T) {
	l := NewList()
	nl := &naiveList{}
	cur := l.InsertAfter(nil)
	nl.nodes = append(nl.nodes, cur)
	for i := 0; i < 500; i++ {
		n := l.InsertAfter(cur)
		nl.insertAfter(cur, n)
		cur = n
	}
	if l.Len() != 501 {
		t.Fatalf("Len() = %d, want 501", l.Len())
	}
	checkAgainstNaive(t, nl)
}

func TestPrependChain(t *testing.T) {
	l := NewList()
	nl := &naiveList{}
	for i := 0; i < 500; i++ {
		n := l.InsertAfter(nil)
		nl.insertAfter(nil, n)
	}
	checkAgainstNaive(t, nl)
}

func TestInsertAllAfterFront(t *testing.T) {
	// Repeated insertion at the same point exhausts label gaps fastest and
	// exercises both node and group relabeling.
	l := NewList()
	nl := &naiveList{}
	front := l.InsertAfter(nil)
	nl.nodes = append(nl.nodes, front)
	for i := 0; i < 1000; i++ {
		n := l.InsertAfter(front)
		nl.insertAfter(front, n)
	}
	checkAgainstNaive(t, nl)
}

func TestInsertMiddleRepeatedly(t *testing.T) {
	l := NewList()
	nl := &naiveList{}
	a := l.InsertAfter(nil)
	b := l.InsertAfter(a)
	nl.nodes = []*Node{a, b}
	target := a
	for i := 0; i < 800; i++ {
		n := l.InsertAfter(target)
		nl.insertAfter(target, n)
		if i%2 == 0 {
			target = n // drift the insertion point
		}
	}
	checkAgainstNaive(t, nl)
}

func TestRandomInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := NewList()
	nl := &naiveList{}
	first := l.InsertAfter(nil)
	nl.nodes = append(nl.nodes, first)
	for i := 0; i < 2000; i++ {
		after := nl.nodes[rng.Intn(len(nl.nodes))]
		n := l.InsertAfter(after)
		nl.insertAfter(after, n)
	}
	if l.Len() != len(nl.nodes) {
		t.Fatalf("Len() = %d, want %d", l.Len(), len(nl.nodes))
	}
	// Full O(n^2) check is too slow at 2000 nodes; sample pairs instead.
	for trial := 0; trial < 20000; trial++ {
		i := rng.Intn(len(nl.nodes))
		j := rng.Intn(len(nl.nodes))
		if got, want := Before(nl.nodes[i], nl.nodes[j]), i < j; got != want {
			t.Fatalf("Before(#%d, #%d) = %v, want %v", i, j, got, want)
		}
	}
}

func TestLinkedTraversalMatchesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewList()
	nl := &naiveList{}
	first := l.InsertAfter(nil)
	nl.nodes = append(nl.nodes, first)
	for i := 0; i < 300; i++ {
		after := nl.nodes[rng.Intn(len(nl.nodes))]
		n := l.InsertAfter(after)
		nl.insertAfter(after, n)
	}
	// Walking Next from Front must visit nodes in naive order.
	i := 0
	for n := l.Front(); n != nil; n = n.Next() {
		if nl.nodes[i] != n {
			t.Fatalf("traversal position %d: wrong node", i)
		}
		i++
	}
	if i != len(nl.nodes) {
		t.Fatalf("traversed %d nodes, want %d", i, len(nl.nodes))
	}
	// And Prev from the last node must visit them in reverse.
	last := nl.nodes[len(nl.nodes)-1]
	i = len(nl.nodes) - 1
	for n := last; n != nil; n = n.Prev() {
		if nl.nodes[i] != n {
			t.Fatalf("reverse traversal position %d: wrong node", i)
		}
		i--
	}
	if i != -1 {
		t.Fatalf("reverse traversal stopped at index %d", i)
	}
}

// TestQuickRandomSequences drives random insert scripts through the list and
// verifies total-order consistency, via testing/quick.
func TestQuickRandomSequences(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		ops := int(opsRaw%400) + 1
		rng := rand.New(rand.NewSource(seed))
		l := NewList()
		nl := &naiveList{}
		for i := 0; i < ops; i++ {
			var after *Node
			if len(nl.nodes) > 0 && rng.Intn(8) != 0 {
				after = nl.nodes[rng.Intn(len(nl.nodes))]
			}
			n := l.InsertAfter(after)
			nl.insertAfter(after, n)
		}
		for trial := 0; trial < 500; trial++ {
			i := rng.Intn(len(nl.nodes))
			j := rng.Intn(len(nl.nodes))
			if Before(nl.nodes[i], nl.nodes[j]) != (i < j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewList()
	var nodes []*Node
	nodes = append(nodes, l.InsertAfter(nil))
	for i := 0; i < 200; i++ {
		nodes = append(nodes, l.InsertAfter(nodes[rng.Intn(len(nodes))]))
	}
	for trial := 0; trial < 5000; trial++ {
		a := nodes[rng.Intn(len(nodes))]
		b := nodes[rng.Intn(len(nodes))]
		c := nodes[rng.Intn(len(nodes))]
		if Before(a, b) && Before(b, c) && !Before(a, c) {
			t.Fatal("transitivity violated")
		}
		if a != b && Before(a, b) == Before(b, a) {
			t.Fatal("antisymmetry violated")
		}
	}
}

func BenchmarkInsertAfterSequential(b *testing.B) {
	l := NewList()
	cur := l.InsertAfter(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur = l.InsertAfter(cur)
	}
}

func BenchmarkInsertAfterSamePoint(b *testing.B) {
	l := NewList()
	front := l.InsertAfter(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.InsertAfter(front)
	}
}

func BenchmarkBefore(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	l := NewList()
	var nodes []*Node
	nodes = append(nodes, l.InsertAfter(nil))
	for i := 0; i < 10000; i++ {
		nodes = append(nodes, l.InsertAfter(nodes[rng.Intn(len(nodes))]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Before(nodes[i%len(nodes)], nodes[(i*7+1)%len(nodes)])
	}
}
