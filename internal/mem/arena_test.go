package mem

import "testing"

func TestAllocBasics(t *testing.T) {
	a := NewArena()
	b := a.AllocWords("x", 100)
	if b.Name() != "x" || b.Len() != 100 || b.ElemBytes() != WordSize {
		t.Fatalf("unexpected buffer: %s len=%d elem=%d", b.Name(), b.Len(), b.ElemBytes())
	}
	if b.Base() == 0 {
		t.Fatal("buffer allocated at address 0")
	}
	if b.Base()%WordSize != 0 {
		t.Fatal("buffer base not word-aligned")
	}
	if b.Bytes() != 400 {
		t.Fatalf("Bytes() = %d, want 400", b.Bytes())
	}
}

func TestBuffersDoNotOverlap(t *testing.T) {
	a := NewArena()
	b1 := a.AllocWords("a", 1000)
	b2 := a.AllocFloat64("b", 1000)
	b3 := a.Alloc("c", 10, 16)
	type span struct{ lo, hi Addr }
	spans := []span{
		{b1.Base(), b1.Base() + b1.Bytes()},
		{b2.Base(), b2.Base() + b2.Bytes()},
		{b3.Base(), b3.Base() + b3.Bytes()},
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("buffers %d and %d overlap", i, j)
			}
		}
	}
	if len(a.Buffers()) != 3 {
		t.Fatalf("Buffers() has %d entries, want 3", len(a.Buffers()))
	}
}

func TestAddrArithmetic(t *testing.T) {
	a := NewArena()
	b := a.AllocFloat64("f", 10)
	if b.Addr(0) != b.Base() {
		t.Fatal("Addr(0) != Base")
	}
	if b.Addr(3)-b.Addr(2) != 8 {
		t.Fatal("float64 elements not 8 bytes apart")
	}
	addr, size := b.Range(2, 4)
	if addr != b.Addr(2) || size != 32 {
		t.Fatalf("Range(2,4) = (%#x,%d), want (%#x,32)", addr, size, b.Addr(2))
	}
}

func TestDeterministicLayout(t *testing.T) {
	build := func() []Addr {
		a := NewArena()
		var bases []Addr
		bases = append(bases, a.AllocWords("a", 123).Base())
		bases = append(bases, a.AllocFloat64("b", 77).Base())
		bases = append(bases, a.Alloc("c", 5, 24).Base())
		return bases
	}
	x, y := build(), build()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("layout not deterministic at %d: %#x vs %#x", i, x[i], y[i])
		}
	}
}

func TestZeroLengthBuffer(t *testing.T) {
	a := NewArena()
	b1 := a.AllocWords("z", 0)
	b2 := a.AllocWords("after", 4)
	if b1.Base() == b2.Base() {
		t.Fatal("zero-length buffer shares a base with the next allocation")
	}
	if b1.Bytes() != 0 {
		t.Fatal("zero-length buffer has bytes")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	a := NewArena()
	b := a.AllocWords("x", 4)
	for _, f := range []func(){
		func() { b.Addr(-1) },
		func() { b.Addr(4) },
		func() { b.Range(2, 3) },
		func() { b.Range(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestBadElemSizePanics(t *testing.T) {
	a := NewArena()
	for _, size := range []int{0, -4, 3, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Alloc accepted element size %d", size)
				}
			}()
			a.Alloc("bad", 1, size)
		}()
	}
}

func TestFootprintGrows(t *testing.T) {
	a := NewArena()
	before := a.Footprint()
	a.AllocWords("x", 1<<16)
	if a.Footprint() <= before {
		t.Fatal("footprint did not grow")
	}
}
