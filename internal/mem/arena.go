// Package mem provides the virtual address space used by the race detector.
//
// The paper's detector shadows the real process address space at 4-byte-word
// granularity. This reproduction keeps the detector pure and deterministic by
// giving every instrumented buffer a range of *virtual* addresses from an
// Arena instead of taking addresses of Go objects. Workloads still compute on
// ordinary Go slices; the virtual addresses exist only so the access history
// sees the same interval structure the paper's instrumentation saw.
package mem

import "fmt"

// WordSize is the shadow-memory granularity in bytes. The paper tracks
// accesses per four-byte word; every address handed to the detector is
// word-aligned and every size is a whole number of words.
const WordSize = 4

// Addr is a virtual byte address in an Arena.
type Addr = uint64

// Buffer is a contiguous virtual allocation. Element i of a buffer with
// elemWords words per element occupies words [i*elemWords, (i+1)*elemWords).
type Buffer struct {
	name      string
	base      Addr // byte address, word-aligned
	elems     int
	elemWords int
}

// Name returns the label the buffer was allocated under.
func (b *Buffer) Name() string { return b.name }

// Base returns the first byte address of the buffer.
func (b *Buffer) Base() Addr { return b.base }

// Len returns the number of elements in the buffer.
func (b *Buffer) Len() int { return b.elems }

// ElemBytes returns the size of one element in bytes.
func (b *Buffer) ElemBytes() int { return b.elemWords * WordSize }

// Bytes returns the total size of the buffer in bytes.
func (b *Buffer) Bytes() uint64 { return uint64(b.elems) * uint64(b.elemWords) * WordSize }

// Addr returns the byte address of element i.
func (b *Buffer) Addr(i int) Addr {
	if uint(i) >= uint(b.elems) {
		b.boundsPanic(i)
	}
	return b.base + uint64(i)*uint64(b.elemWords)*WordSize
}

// boundsPanic is kept out of line so Addr stays inlinable.
func (b *Buffer) boundsPanic(i int) {
	panic(fmt.Sprintf("mem: element %d out of range [0,%d) in buffer %q", i, b.elems, b.name))
}

// Range returns the byte address of element i and the byte length of n
// consecutive elements starting there.
func (b *Buffer) Range(i, n int) (Addr, uint64) {
	if n < 0 || i < 0 || i+n > b.elems {
		panic(fmt.Sprintf("mem: range [%d,%d) out of bounds [0,%d) in buffer %q", i, i+n, b.elems, b.name))
	}
	return b.base + uint64(i)*uint64(b.elemWords)*WordSize, uint64(n) * uint64(b.elemWords) * WordSize
}

// Arena hands out non-overlapping virtual address ranges. Allocations are
// padded so distinct buffers never share a shadow page, mirroring how
// distinct heap allocations behave under the paper's two-level tables.
type Arena struct {
	next    Addr
	buffers []*Buffer
}

// arenaBase leaves the low address range unused so that address 0 never
// appears, which makes "zero means empty" encodings safe in the shadow
// structures.
const arenaBase Addr = 1 << 20

// pad aligns each allocation to a 4 KiB boundary.
const pad = 1 << 12

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{next: arenaBase}
}

// Alloc reserves a buffer of elems elements, each elemBytes bytes.
// elemBytes must be a positive multiple of WordSize.
func (a *Arena) Alloc(name string, elems, elemBytes int) *Buffer {
	if elems < 0 {
		panic(fmt.Sprintf("mem: negative element count %d for buffer %q", elems, name))
	}
	if elemBytes <= 0 || elemBytes%WordSize != 0 {
		panic(fmt.Sprintf("mem: element size %d is not a positive multiple of %d", elemBytes, WordSize))
	}
	b := &Buffer{
		name:      name,
		base:      a.next,
		elems:     elems,
		elemWords: elemBytes / WordSize,
	}
	size := b.Bytes()
	a.next += (size + pad - 1) / pad * pad
	if size == 0 {
		a.next += pad
	}
	a.buffers = append(a.buffers, b)
	return b
}

// AllocWords reserves a buffer of elems single-word (4-byte) elements.
func (a *Arena) AllocWords(name string, elems int) *Buffer {
	return a.Alloc(name, elems, WordSize)
}

// AllocFloat64 reserves a buffer of elems two-word (8-byte) elements, the
// footprint of a float64 array in the benchmarks.
func (a *Arena) AllocFloat64(name string, elems int) *Buffer {
	return a.Alloc(name, elems, 2*WordSize)
}

// Buffers returns all allocations in allocation order.
func (a *Arena) Buffers() []*Buffer { return a.buffers }

// Reset discards every allocation and rewinds the address space to its
// initial state: the next Alloc hands out the same addresses a fresh Arena
// would. Allocation is deterministic, so a caller replaying an identical
// Alloc sequence after Reset gets byte-identical buffers — the property
// that lets a reused Runner re-Setup a workload per run without growing
// its shadow footprint. Previously returned Buffers are invalidated; the
// caller must drop them along with whatever state referenced them
// (typically via Runner.Reset).
func (a *Arena) Reset() {
	a.next = arenaBase
	a.buffers = a.buffers[:0]
}

// Resolve maps a virtual address back to the buffer containing it and the
// element index within that buffer. It returns (nil, 0) for addresses
// outside every allocation (padding or unallocated space). Buffers are
// allocated at increasing addresses, so this is a binary search.
func (a *Arena) Resolve(addr Addr) (*Buffer, int) {
	lo, hi := 0, len(a.buffers)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.buffers[mid].base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil, 0
	}
	b := a.buffers[lo-1]
	if addr >= b.base+b.Bytes() {
		return nil, 0
	}
	return b, int((addr - b.base) / (uint64(b.elemWords) * WordSize))
}

// Footprint returns the total number of bytes reserved (including padding).
func (a *Arena) Footprint() uint64 { return uint64(a.next - arenaBase) }
