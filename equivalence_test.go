package stint

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"stint/internal/detect"
	"stint/internal/oracle"
	"stint/internal/spord"
)

// The equivalence suite generates random fork-join programs with random
// interval accesses and checks that every production detector reports
// exactly the set of racing words the brute-force oracle computes. By
// Feng–Leiserson, a sound and complete detector flags a word iff the word
// has a race, so the *word sets* must match even though the engines report
// different (but equally valid) witness pairs.

// act is one step of a program-as-data: programs must be replayable
// identically across detector configurations.
type act struct {
	kind byte // 'S' spawn, 'Y' sync, 'l' load, 's' store, 'L' load-range, 'W' store-range
	buf  int
	idx  int
	n    int
	body []act
}

func runActs(t *Task, bufs []*Buffer, acts []act) {
	for _, a := range acts {
		switch a.kind {
		case 'S':
			body := a.body
			t.Spawn(func(c *Task) { runActs(c, bufs, body) })
		case 'Y':
			t.Sync()
		case 'l':
			t.Load(bufs[a.buf], a.idx)
		case 's':
			t.Store(bufs[a.buf], a.idx)
		case 'L':
			t.LoadRange(bufs[a.buf], a.idx, a.n)
		case 'W':
			t.StoreRange(bufs[a.buf], a.idx, a.n)
		}
	}
}

// genActs builds a random body. bufSizes bounds indices.
func genActs(rng *rand.Rand, depth int, bufSizes []int) []act {
	n := rng.Intn(6)
	acts := make([]act, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 3 && depth > 0:
			acts = append(acts, act{kind: 'S', body: genActs(rng, depth-1, bufSizes)})
		case k == 3:
			acts = append(acts, act{kind: 'Y'})
		default:
			b := rng.Intn(len(bufSizes))
			size := bufSizes[b]
			idx := rng.Intn(size)
			kind := []byte{'l', 's', 'L', 'W'}[rng.Intn(4)]
			a := act{kind: kind, buf: b, idx: idx}
			if kind == 'L' || kind == 'W' {
				a.n = rng.Intn(size-idx) + 1
			}
			acts = append(acts, a)
		}
	}
	return acts
}

// bufSpecs describes the buffers every configuration allocates identically.
var bufSpecs = []struct {
	name  string
	elems int
	words int
}{
	{"a", 48, 1},
	{"b", 96, 1},
	{"c", 24, 2}, // float64-like two-word elements
}

func allocBufs(r *Runner) ([]*Buffer, []int) {
	bufs := make([]*Buffer, len(bufSpecs))
	sizes := make([]int, len(bufSpecs))
	for i, s := range bufSpecs {
		bufs[i] = r.Arena().Alloc(s.name, s.elems, s.words*4)
		sizes[i] = s.elems
	}
	return bufs, sizes
}

// racingWordsFor runs the program under one detector — synchronously or
// through the async pipeline — and flattens its race reports to a word set.
// Async runs use a deliberately small batch size so even the small random
// programs split events across batch boundaries.
func racingWordsFor(t *testing.T, d Detector, async bool, acts []act) map[Addr]bool {
	t.Helper()
	words := make(map[Addr]bool)
	r, err := NewRunner(Options{Detector: d, Async: async, OnRace: func(rc Race) {
		for a := rc.Addr &^ 3; a < rc.Addr+rc.Size; a += 4 {
			words[a] = true
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if async {
		r.asyncBatchEvents, r.asyncRingDepth = 8, 2
	}
	bufs, _ := allocBufs(r)
	if _, err := r.Run(func(task *Task) { runActs(task, bufs, acts) }); err != nil {
		t.Fatal(err)
	}
	return words
}

// oracleWordsFor runs the program under the brute-force oracle engine.
func oracleWordsFor(t *testing.T, acts []act) map[Addr]bool {
	t.Helper()
	r, err := NewRunner(Options{Detector: DetectorVanilla})
	if err != nil {
		t.Fatal(err)
	}
	var det *oracle.Detector
	r.newEngine = func(cfg detect.Config, sp *spord.SP) detect.Engine {
		det = oracle.New(sp)
		return det
	}
	bufs, _ := allocBufs(r)
	if _, err := r.Run(func(task *Task) { runActs(task, bufs, acts) }); err != nil {
		t.Fatal(err)
	}
	return det.RacingWords()
}

func wordSetDiff(a, b map[Addr]bool) string {
	var onlyA, onlyB []uint64
	for w := range a {
		if !b[w] {
			onlyA = append(onlyA, w)
		}
	}
	for w := range b {
		if !a[w] {
			onlyB = append(onlyB, w)
		}
	}
	sort.Slice(onlyA, func(i, j int) bool { return onlyA[i] < onlyA[j] })
	sort.Slice(onlyB, func(i, j int) bool { return onlyB[i] < onlyB[j] })
	return fmt.Sprintf("only-first=%v only-second=%v", onlyA, onlyB)
}

// reportFor runs the program under one detector and execution mode
// (shards: -1 = synchronous, 0 = plain async, n > 0 = sharded async) and
// returns the full Report, using the same tiny pipeline geometry as
// racingWordsFor.
func reportFor(t *testing.T, d Detector, shards int, acts []act) *Report {
	return reportForOpts(t, d, shards, pipeOpts{}, acts)
}

// pipeOpts selects the pipeline knobs an equivalence leg toggles: batch
// summaries, the compact event encoding, and which stage stamps summaries.
// Every combination must produce the identical Report.
type pipeOpts struct {
	nosum     bool
	nocompact bool
	stamp     SummaryStamping
	// parallel selects ParallelDetect instead of Async: real goroutines,
	// chunk queue, deterministic merge. shards then names the worker count
	// (0 means one worker).
	parallel bool
	// quiesce adds the fuzzer's per-page quiescing differential legs
	// (PageQuiesceThreshold 2 on every mode).
	quiesce bool
}

// reportForOpts is reportFor with the pipeline knobs exposed, so the suite
// can assert that neither the skip fast path, nor the wire encoding, nor
// the stamping stage changes a byte of the Report.
func reportForOpts(t *testing.T, d Detector, shards int, po pipeOpts, acts []act) *Report {
	t.Helper()
	opts := Options{
		Detector:              d,
		MaxRacesRecorded:      1 << 20,
		DisableBatchSummaries: po.nosum,
		DisableCompactEvents:  po.nocompact,
		SummaryStamping:       po.stamp,
	}
	if po.parallel {
		opts.ParallelDetect = true
		opts.DetectShards = shards
	} else if shards >= 0 {
		opts.Async = true
		opts.DetectShards = shards
	}
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	if po.parallel || shards >= 0 {
		r.asyncBatchEvents, r.asyncRingDepth = 8, 2
	}
	bufs, _ := allocBufs(r)
	rep, err := r.Run(func(task *Task) { runActs(task, bufs, acts) })
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// checkCanonicalReports asserts the satellite guarantee: the Report —
// races in canonical order, counts, strands, deterministic stats — is
// identical across sync, async, and (for supported detectors) shard counts
// {1, 2, 4}, with batch summaries both on and off, with the compact event
// encoding both on and off, and regardless of which stage stamps summaries
// (the stamping choice rotates across shard counts to keep the leg count
// bounded: producer at n=1, label stage at n=2, auto at n=4).
func checkCanonicalReports(t *testing.T, seed int64, d Detector, acts []act) {
	t.Helper()
	sync := reportFor(t, d, -1, acts)
	check := func(name string, got *Report) {
		t.Helper()
		if got.RaceCount != sync.RaceCount || got.Strands != sync.Strands {
			t.Fatalf("seed %d: %v %s: RaceCount/Strands %d/%d, sync %d/%d\nprogram: %+v",
				seed, d, name, got.RaceCount, got.Strands, sync.RaceCount, sync.Strands, acts)
		}
		if !reflect.DeepEqual(got.Races, sync.Races) {
			t.Fatalf("seed %d: %v %s: Races differ from sync\n got: %v\nsync: %v\nprogram: %+v",
				seed, d, name, got.Races, sync.Races, acts)
		}
		if ns, ng := normStats(sync.Stats), normStats(got.Stats); ns != ng {
			t.Fatalf("seed %d: %v %s: stats differ\n got: %+v\nsync: %+v\nprogram: %+v",
				seed, d, name, ng, ns, acts)
		}
	}
	check("async", reportFor(t, d, 0, acts))
	check("async nocompact", reportForOpts(t, d, 0, pipeOpts{nocompact: true}, acts))
	switch d {
	case DetectorCompRTS, DetectorSTINT, DetectorSTINTUnbalanced, DetectorSTINTSkiplist:
		stampFor := map[int]SummaryStamping{1: StampProducer, 2: StampLabelStage, 4: StampAuto}
		for _, n := range []int{1, 2, 4} {
			stamp := stampFor[n]
			check(fmt.Sprintf("shards=%d", n), reportForOpts(t, d, n, pipeOpts{stamp: stamp}, acts))
			// The wire encoding is invisible above the ring: the fixed
			// 16-byte form must reproduce the compact form's report.
			check(fmt.Sprintf("shards=%d nocompact", n),
				reportForOpts(t, d, n, pipeOpts{nocompact: true, stamp: stamp}, acts))
			// Summaries are a pure scan elision: disabling them must not
			// change a byte of the report, and without them nothing skips.
			nosum := reportForOpts(t, d, n, pipeOpts{nosum: true, stamp: stamp}, acts)
			if nosum.Stats.BatchesSkipped != 0 {
				t.Fatalf("seed %d: %v shards=%d: summaries disabled but BatchesSkipped = %d",
					seed, d, n, nosum.Stats.BatchesSkipped)
			}
			check(fmt.Sprintf("shards=%d nosum", n), nosum)
			// ParallelDetect: spawns on real goroutines behind the chunk
			// queue and deterministic merge. The documented contract is
			// race-set equivalence, but the merge reconstructs the exact
			// serial stream, so the suite asserts the stronger property —
			// the whole Report identical to sync. Pipeline knobs rotate
			// with the shard count to bound the leg count (the full
			// shards × encoding grid runs on the Fig5 workloads in
			// parallel_equivalence_test.go).
			check(fmt.Sprintf("parallel-detect shards=%d", n),
				reportForOpts(t, d, n, pipeOpts{parallel: true}, acts))
			switch n {
			case 1:
				check("parallel-detect shards=1 nocompact",
					reportForOpts(t, d, n, pipeOpts{parallel: true, nocompact: true}, acts))
			case 2:
				pdNosum := reportForOpts(t, d, n, pipeOpts{parallel: true, nosum: true}, acts)
				if pdNosum.Stats.BatchesSkipped != 0 {
					t.Fatalf("seed %d: %v parallel-detect shards=2: summaries disabled but BatchesSkipped = %d",
						seed, d, pdNosum.Stats.BatchesSkipped)
				}
				check("parallel-detect shards=2 nosum", pdNosum)
			case 4:
				check("parallel-detect shards=4 nocompact nosum",
					reportForOpts(t, d, n, pipeOpts{parallel: true, nocompact: true, nosum: true}, acts))
			}
		}
	}
}

func checkEquivalence(t *testing.T, seed int64, acts []act) {
	t.Helper()
	want := oracleWordsFor(t, acts)
	for _, d := range allDetectors {
		got := racingWordsFor(t, d, false, acts)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %v reports %d racing words, oracle %d (%s)\nprogram: %+v",
				seed, d, len(got), len(want), wordSetDiff(got, want), acts)
		}
		for w := range want {
			if !got[w] {
				t.Fatalf("seed %d: %v missed racing word %#x\nprogram: %+v", seed, d, w, acts)
			}
		}
		// The async pipeline must agree with both the oracle and the
		// synchronous path it mirrors.
		async := racingWordsFor(t, d, true, acts)
		if len(async) != len(want) {
			t.Fatalf("seed %d: async %v reports %d racing words, oracle %d (%s)\nprogram: %+v",
				seed, d, len(async), len(want), wordSetDiff(async, want), acts)
		}
		for w := range got {
			if !async[w] {
				t.Fatalf("seed %d: async %v missed racing word %#x found synchronously\nprogram: %+v",
					seed, d, w, acts)
			}
		}
		// Full-report identity across execution modes and shard counts.
		checkCanonicalReports(t, seed, d, acts)
	}
}

func TestDetectorEquivalenceRandomPrograms(t *testing.T) {
	sizes := make([]int, len(bufSpecs))
	for i, s := range bufSpecs {
		sizes[i] = s.elems
	}
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		acts := genActs(rng, 4, sizes)
		checkEquivalence(t, seed, acts)
	}
}

func TestDetectorEquivalenceDeepPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	sizes := make([]int, len(bufSpecs))
	for i, s := range bufSpecs {
		sizes[i] = s.elems
	}
	for seed := int64(1000); seed < 1030; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Deeper and wider: more strands, more overlap churn.
		var grow func(depth int) []act
		grow = func(depth int) []act {
			base := genActs(rng, 0, sizes)
			if depth == 0 {
				return base
			}
			for i := 0; i < 3; i++ {
				base = append(base, act{kind: 'S', body: grow(depth - 1)})
				base = append(base, genActs(rng, 0, sizes)...)
				if rng.Intn(2) == 0 {
					base = append(base, act{kind: 'Y'})
				}
			}
			return base
		}
		checkEquivalence(t, seed, grow(4))
	}
}

// TestParallelDetectRunToRunDeterminism pins the second half of the
// ParallelDetect contract: beyond matching sync's race set, repeated runs
// of the same program must be byte-identical to each other — the merge
// order is a function of the program, not the schedule. Racy programs
// under fixed seeds, run back-to-back several times per configuration.
func TestParallelDetectRunToRunDeterminism(t *testing.T) {
	sizes := make([]int, len(bufSpecs))
	for i, s := range bufSpecs {
		sizes[i] = s.elems
	}
	for seed := int64(7000); seed < 7010; seed++ {
		rng := rand.New(rand.NewSource(seed))
		acts := genActs(rng, 4, sizes)
		for _, po := range []pipeOpts{
			{parallel: true},
			{parallel: true, nocompact: true},
		} {
			first := reportForOpts(t, DetectorSTINT, 2, po, acts)
			for run := 1; run < 4; run++ {
				got := reportForOpts(t, DetectorSTINT, 2, po, acts)
				if got.RaceCount != first.RaceCount || got.Strands != first.Strands {
					t.Fatalf("seed %d run %d (%+v): RaceCount/Strands %d/%d, first run %d/%d",
						seed, run, po, got.RaceCount, got.Strands, first.RaceCount, first.Strands)
				}
				if !reflect.DeepEqual(got.Races, first.Races) {
					t.Fatalf("seed %d run %d (%+v): Races differ between identical runs\n got: %v\nfirst: %v",
						seed, run, po, got.Races, first.Races)
				}
				if ns, ng := normStats(first.Stats), normStats(got.Stats); ns != ng {
					t.Fatalf("seed %d run %d (%+v): stats differ between identical runs\n got: %+v\nfirst: %+v",
						seed, run, po, ng, ns)
				}
			}
		}
	}
}

func TestDetectorEquivalenceRaceFreePrograms(t *testing.T) {
	// Partition-structured programs are race-free by construction; every
	// detector must agree (no false positives).
	sizes := []int{64}
	_ = sizes
	var mk func(lo, hi, depth int) []act
	mk = func(lo, hi, depth int) []act {
		if depth == 0 || hi-lo < 4 {
			return []act{
				{kind: 'L', buf: 0, idx: lo, n: hi - lo},
				{kind: 'W', buf: 0, idx: lo, n: hi - lo},
			}
		}
		mid := (lo + hi) / 2
		return []act{
			{kind: 'S', body: mk(lo, mid, depth-1)},
			{kind: 'S', body: mk(mid, hi, depth-1)},
			{kind: 'Y'},
			{kind: 'L', buf: 0, idx: lo, n: hi - lo},
		}
	}
	acts := mk(0, 48, 4)
	want := oracleWordsFor(t, acts)
	if len(want) != 0 {
		t.Fatalf("oracle found races in a race-free program: %v", want)
	}
	for _, d := range allDetectors {
		if got := racingWordsFor(t, d, false, acts); len(got) != 0 {
			t.Errorf("%v: false positives in race-free program: %d words", d, len(got))
		}
		if got := racingWordsFor(t, d, true, acts); len(got) != 0 {
			t.Errorf("async %v: false positives in race-free program: %d words", d, len(got))
		}
	}
}
