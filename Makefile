# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short bench bench-hot bench-decode bench-decode-json bench-json bench-diff-all tables fuzz vet fmt examples

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path microbenchmarks only: the open-addressed page directory vs the
# seed's Go map, slab-pooled vs heap-allocated treap nodes, the async event
# ring and its broadcast sibling, the compact-vs-fixed event codec, the
# workers' local page-split/filter scan, the producer-side summary stamp and
# the worker skip-scan it buys, the per-refill label snapshot, the
# sync-vs-async per-access hook cost, the sharded and parallel-execution
# main-table measurements, and the racy-workload quiescing pair.
bench-hot:
	$(GO) test -run '^$$' -bench 'BenchmarkTreapInsert|BenchmarkShadowDirectory' -benchmem ./internal/core ./internal/shadow
	$(GO) test -run '^$$' -bench 'BenchmarkRing|BenchmarkBcastRing|BenchmarkEventEncode|BenchmarkEventDecode|BenchmarkWorkerSplit|BenchmarkWorkerScan|BenchmarkSummaryStamp|BenchmarkWorkerSkipScan' -benchmem ./internal/evstream
	$(GO) test -run '^$$' -bench 'BenchmarkViewPerRefill' -benchmem ./internal/depa
	$(GO) test -run '^$$' -bench 'BenchmarkHookOverhead|BenchmarkRunnerReset' -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkFig5Sharded|BenchmarkFig5ParallelDetect|BenchmarkFig5RacyQuiesce' -benchtime 10x -benchmem .

# Decode-kernel sweep: every op mix (sequential same-size, range-heavy,
# random-address, ctl-dense) across the three decode paths (fixed slice
# scan, compact per-event Next shim, compact block kernel), plus the
# headline encode/decode pair the ≤1.5×-of-fixed target is stated against.
# Snapshot with `make bench-decode-json` (writes BENCH_<date>_blockdecode.json,
# verified by bench-diff-all: the BenchmarkEventDecode pattern there
# prefix-matches BenchmarkEventDecodeBlock too).
bench-decode:
	$(GO) test -run '^$$' -bench 'BenchmarkEventEncode|BenchmarkEventDecode' -benchtime 2s ./internal/evstream
	GOMAXPROCS=4 $(GO) test -run '^$$' -bench 'BenchmarkFig5ShardedEncoding' -benchtime 10x .

bench-decode-json:
	GOMAXPROCS=4 BENCHTIME=2s BENCHCOUNT=3 ./scripts/benchdiff.sh emit 'BenchmarkEventEncode|BenchmarkEventDecode|BenchmarkViewPerRefill|BenchmarkFig5ShardedEncoding' ./internal/evstream ./internal/depa . > BENCH_$$(date +%Y%m%d)_blockdecode.json
	@echo wrote BENCH_$$(date +%Y%m%d)_blockdecode.json

# Machine-readable benchmark snapshot: one JSON line per benchmark, written
# to BENCH_<date>.json. Compare two snapshots with scripts/benchdiff.sh diff.
bench-json:
	./scripts/benchdiff.sh emit 'BenchmarkFig5|BenchmarkRunnerReset|BenchmarkEventEncode|BenchmarkEventDecode|BenchmarkViewPerRefill' . ./internal/evstream ./internal/depa > BENCH_$$(date +%Y%m%d).json
	@echo wrote BENCH_$$(date +%Y%m%d).json

# Trace-ingest service snapshot: warm-pool vs fresh-runner-per-trace
# traces/sec through the full HTTP round-trip (see internal/serve).
# Verified by bench-diff-all's serve leg.
bench-serve-json:
	BENCHTIME=200x ./scripts/benchdiff.sh emit 'BenchmarkServeThroughput' ./internal/serve > BENCH_$$(date +%Y%m%d)_serve.json
	@echo wrote BENCH_$$(date +%Y%m%d)_serve.json

# Re-run every Fig5 benchmark (sync, async, and sharded modes share one
# snapshot schema) plus the event-codec and label-snapshot microbenchmarks,
# and fail if any mode regressed ns/op by more than 10% against the
# checked-in snapshots. Two legs because two methodologies: the quick
# 3x-iteration leg only covers the Fig5 macro walls (milliseconds, where 3
# iterations measure something) against every snapshot except the
# blockdecode ones; the nanosecond-scale microbenchmarks (codec, label
# snapshot, the sharded encoding duel) re-run at BENCHTIME=2s best-of-3 —
# the methodology the blockdecode snapshots were emitted with — against
# exactly those snapshots. Mixing the methodologies reads as phantom
# thousand-percent regressions: 3 iterations of a 7 ns op is timer noise.
# The decode leg's default tolerance is 25% rather than 10% because the
# snapshot records best-of-N floors and a fresh floor on a busy machine
# sits 10-20% above a quiet one; the catastrophic regressions the gate
# exists for (an accidental O(n), a dropped fast path) are multiples, not
# percents. BENCHDIFF_MAX_REGRESSION still overrides both legs.
bench-diff-all:
	./scripts/benchdiff.sh emit 'BenchmarkFig5' . > /tmp/stint_bench_head.json
	./scripts/benchdiff.sh check /tmp/stint_bench_head.json $$(ls BENCH_*.json | grep -v _blockdecode | grep -v _serve)
	GOMAXPROCS=4 BENCHTIME=2s BENCHCOUNT=3 ./scripts/benchdiff.sh emit 'BenchmarkEventEncode|BenchmarkEventDecode|BenchmarkViewPerRefill|BenchmarkFig5ShardedEncoding' ./internal/evstream ./internal/depa . > /tmp/stint_bench_decode.json
	BENCHDIFF_MAX_REGRESSION=$${BENCHDIFF_MAX_REGRESSION:-25} ./scripts/benchdiff.sh check /tmp/stint_bench_decode.json BENCH_*_blockdecode.json
	BENCHTIME=200x ./scripts/benchdiff.sh emit 'BenchmarkServeThroughput' ./internal/serve > /tmp/stint_bench_serve.json
	BENCHDIFF_MAX_REGRESSION=$${BENCHDIFF_MAX_REGRESSION:-25} ./scripts/benchdiff.sh check /tmp/stint_bench_serve.json BENCH_*_serve.json

# Regenerate every table of the paper's evaluation (see EXPERIMENTS.md).
tables:
	$(GO) run ./cmd/stint-tables -reps 3 all

# Short fuzz sessions over the four fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzTreeAgainstOracle -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzSetRangeFlush -fuzztime=30s ./internal/coalesce
	$(GO) test -fuzz=FuzzEventCodec -fuzztime=30s ./internal/evstream
	$(GO) test -fuzz=FuzzReplay -fuzztime=30s ./trace
	$(GO) test -fuzz=FuzzAsyncAgainstSync -fuzztime=30s .

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/matmul
	$(GO) run ./examples/sortcheck
	$(GO) run ./examples/parallel
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/futures
