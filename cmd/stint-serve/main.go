// Command stint-serve runs the long-lived trace-ingest service: a pool of
// pre-warmed, reused Runners behind a small JSON API. Record traces with
// `stint -workload X -trace-out FILE` (or the stint/trace package), then:
//
//	stint-serve -addr :8080 -runners 4 &
//	curl -s --data-binary @trace.bin localhost:8080/v1/traces
//	  → {"id":"t-000001"}
//	curl -s localhost:8080/v1/results/t-000001
//	curl -s localhost:8080/v1/statusz
//
// Every worker owns one Runner whose slab pools and pipeline state are
// allocated once and rewound between traces (Runner.Reset), so steady-state
// ingest performs no per-trace heap growth; reports are byte-identical to
// fresh-Runner replays. Admission is backpressured (full queue → 429) and
// per-run caps bound each replay's memory (oversized upload → 413; event
// budget or access-history cap exceeded → result status "error", counted
// as oversized in /v1/statusz).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"

	"stint"
	"stint/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		runners    = flag.Int("runners", runtime.GOMAXPROCS(0), "warm Runner pool size (max concurrent replays)")
		queue      = flag.Int("queue", 0, "admission queue depth (default 2x runners)")
		detector   = flag.String("detector", "stint", "detector mode for every replay")
		races      = flag.Int("races", 64, "max races recorded per trace")
		shards     = flag.Int("shards", 0, "detection shards per replay (implies async pipeline)")
		async      = flag.Bool("async", false, "replay through the pipelined detector")
		maxBytes   = flag.Int64("max-trace-bytes", 64<<20, "reject uploads larger than this (413); negative disables")
		maxEvents  = flag.Uint64("max-events", 0, "abort replays exceeding this many trace events (0 = unbounded)")
		quiesce    = flag.Int("quiesce", 0, "retire a shadow page's access history once it produces N races during a replay (0 disables)")
		maxHistory = flag.Int64("max-history", 0, "abort replays whose retained access history exceeds N bytes (0 = unlimited)")
		fresh      = flag.Bool("fresh-runners", false, "build a fresh Runner per trace instead of reusing the warm pool (baseline mode)")
	)
	flag.Parse()
	if err := run(*addr, *runners, *queue, *detector, *races, *shards, *async, *maxBytes, *maxEvents, *quiesce, *maxHistory, *fresh); err != nil {
		fmt.Fprintln(os.Stderr, "stint-serve:", err)
		os.Exit(1)
	}
}

func run(addr string, runners, queue int, detector string, races, shards int, async bool, maxBytes int64, maxEvents uint64, quiesce int, maxHistory int64, fresh bool) error {
	mode, err := stint.ParseDetector(detector)
	if err != nil {
		return err
	}
	s, err := serve.New(serve.Config{
		Runners:       runners,
		QueueDepth:    queue,
		MaxTraceBytes: maxBytes,
		MaxEvents:     maxEvents,
		FreshRunners:  fresh,
		Opts: stint.Options{
			Detector:             mode,
			MaxRacesRecorded:     races,
			Async:                async || shards > 0,
			DetectShards:         shards,
			PageQuiesceThreshold: quiesce,
			MaxHistoryBytes:      maxHistory,
		},
	})
	if err != nil {
		return err
	}
	defer s.Close()
	pool := "warm pool"
	if fresh {
		pool = "fresh runner per trace"
	}
	// Bind before announcing so ":0" reports the kernel-chosen port — the
	// smoke harness scrapes this line to find the server.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("stint-serve: listening on %s (%d runners, %s, detector %v)\n",
		ln.Addr(), runners, pool, mode)
	return http.Serve(ln, s.Handler())
}
