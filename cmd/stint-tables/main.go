// Command stint-tables regenerates the paper's evaluation tables from live
// runs: Figure 1 (vanilla breakdown), Figure 5 (four detector versions),
// Figure 6 (access/interval statistics), Figure 7 (hashmap vs treap
// access-history time), Figure 8 (input-size scaling), and an additional
// backing-store ablation.
//
// Usage:
//
//	stint-tables [-scale 1] [-reps 3] fig1 fig5 fig6 fig7 fig8 ablation allocs async util serve
//	stint-tables all
//
// The extra "allocs" table (not part of the paper, and not included in
// "all") reports heap objects and bytes allocated during each detection
// run, backing the allocation-free hot-path work in EXPERIMENTS.md. The
// extra "async" table (also outside the paper, whose detector is strictly
// inline) compares synchronous vs pipelined detection wall clock. The
// extra "util" table breaks the sharded stage graph's busy time down by
// stage — the thin label stage against the busiest shard worker — backing
// the sequencer-bottleneck numbers in EXPERIMENTS.md. The extra "serve"
// table (also outside the paper) records every benchmark once, ingests the
// traces through an in-process stint-serve warm-pool instance, and prints
// the service's pool utilization from /v1/statusz.
package main

import (
	"flag"
	"fmt"
	"os"

	"stint/internal/tables"
)

func main() {
	var (
		scale = flag.Int("scale", 1, "problem-size multiplier for all benchmarks")
		reps  = flag.Int("reps", 3, "timing repetitions per configuration")
	)
	flag.Parse()
	suite := &tables.Suite{Out: os.Stdout, Scale: *scale, Reps: *reps}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	for _, a := range args {
		var err error
		switch a {
		case "fig1":
			err = suite.Fig1()
		case "fig5":
			err = suite.Fig5()
		case "fig6":
			err = suite.Fig6()
		case "fig7":
			err = suite.Fig7()
		case "fig8":
			err = suite.Fig8()
		case "ablation":
			err = suite.Ablation()
		case "allocs":
			err = suite.Allocs()
		case "async":
			err = suite.Async()
		case "util":
			err = suite.Util()
		case "serve":
			err = suite.Serve()
		case "all":
			err = suite.All()
		default:
			err = fmt.Errorf("unknown table %q (want fig1|fig5|fig6|fig7|fig8|ablation|allocs|async|util|serve|all)", a)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stint-tables:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
