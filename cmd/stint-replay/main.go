// Command stint-replay analyzes a recorded execution trace under a chosen
// detector configuration, without re-running the program.
//
// Record a trace with `stint -workload X -trace-out FILE` (or the
// stint/trace package), then:
//
//	stint-replay -detector stint trace.bin
//	stint-replay -detector vanilla -races 20 trace.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stint"
	"stint/trace"
)

func main() {
	var (
		detector = flag.String("detector", "stint", "detector mode for the replay")
		races    = flag.Int("races", 10, "max races to print")
		timing   = flag.Bool("timing", false, "measure access-history time separately")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stint-replay [flags] TRACEFILE")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *detector, *races, *timing); err != nil {
		fmt.Fprintln(os.Stderr, "stint-replay:", err)
		os.Exit(1)
	}
}

func run(path, detector string, maxRaces int, timing bool) error {
	mode, err := stint.ParseDetector(detector)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	rep, err := trace.Replay(f, trace.Options{
		Detector:          mode,
		MaxRacesRecorded:  maxRaces,
		TimeAccessHistory: timing,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s under %v in %v\n", path, mode, time.Since(start).Round(time.Microsecond))
	fmt.Printf("strands    %d\n", rep.Strands)
	fmt.Printf("accesses   read %d  write %d\n", rep.Stats.ReadAccesses, rep.Stats.WriteAccesses)
	if rep.Stats.ReadIntervals+rep.Stats.WriteIntervals > 0 {
		fmt.Printf("intervals  read %d  write %d\n", rep.Stats.ReadIntervals, rep.Stats.WriteIntervals)
	}
	if timing {
		fmt.Printf("access-history time %v\n", rep.Stats.AccessHistoryTime.Round(time.Microsecond))
	}
	if rep.Racy() {
		fmt.Printf("RACES: %d found\n", rep.RaceCount)
		for _, rc := range rep.Races {
			fmt.Printf("  %v\n", rc)
		}
	} else {
		fmt.Println("no races found")
	}
	return nil
}
