// Command stint-replay analyzes a recorded execution trace under a chosen
// detector configuration, without re-running the program.
//
// Record a trace with `stint -workload X -trace-out FILE` (or the
// stint/trace package), then:
//
//	stint-replay -detector stint trace.bin
//	stint-replay -detector vanilla -races 20 trace.bin
//	stint-replay -detector stint -shards 4 trace.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stint"
	"stint/internal/cliutil"
	"stint/trace"
)

func main() {
	var (
		detector   = flag.String("detector", "stint", "detector mode for the replay")
		races      = flag.Int("races", 10, "max races to print")
		timing     = flag.Bool("timing", false, "measure access-history time separately")
		async      = flag.Bool("async", false, "replay through the pipelined detector (decoder and detector on separate goroutines)")
		shards     = flag.Int("shards", 0, "partition pipelined detection across N workers by shadow page (implies -async; comp+rts and stint variants only)")
		noCompact  = flag.Bool("no-compact", false, "stream fixed 16-byte events instead of the compact delta encoding (for before/after measurement)")
		quiesce    = flag.Int("quiesce", 0, "retire a shadow page's access history once it produces N races (0 disables)")
		maxHistory = flag.Int64("max-history", 0, "abort the replay when the retained access history exceeds N bytes (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stint-replay [flags] TRACEFILE")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *detector, *races, *timing, *async, *shards, *noCompact, *quiesce, *maxHistory); err != nil {
		fmt.Fprintln(os.Stderr, "stint-replay:", err)
		os.Exit(1)
	}
}

func run(path, detector string, maxRaces int, timing, async bool, shards int, noCompact bool, quiesce int, maxHistory int64) error {
	mode, err := stint.ParseDetector(detector)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	rep, err := trace.Replay(f, trace.Options{
		Detector:             mode,
		MaxRacesRecorded:     maxRaces,
		TimeAccessHistory:    timing,
		Async:                async,
		Shards:               shards,
		NoCompact:            noCompact,
		PageQuiesceThreshold: quiesce,
		MaxHistoryBytes:      maxHistory,
	})
	if err != nil {
		return err
	}
	pipe := ""
	if async || shards > 0 {
		pipe = " (async pipeline)"
		if shards > 0 {
			pipe = fmt.Sprintf(" (async pipeline, %d detection shards)", shards)
		}
	}
	fmt.Printf("replayed %s under %v%s in %v\n", path, mode, pipe, time.Since(start).Round(time.Microsecond))
	fmt.Printf("strands    %d\n", rep.Strands)
	fmt.Printf("accesses   read %d  write %d\n", rep.Stats.ReadAccesses, rep.Stats.WriteAccesses)
	if rep.Stats.ReadIntervals+rep.Stats.WriteIntervals > 0 {
		fmt.Printf("intervals  read %d  write %d\n", rep.Stats.ReadIntervals, rep.Stats.WriteIntervals)
	}
	if timing {
		fmt.Printf("access-history time %v\n", rep.Stats.AccessHistoryTime.Round(time.Microsecond))
	}
	for _, line := range cliutil.PipelineReport(rep) {
		fmt.Println(line)
	}
	if rep.Stats.HistoryBytesPeak > 0 {
		fmt.Printf("history    %.1f KiB peak retained\n", float64(rep.Stats.HistoryBytesPeak)/1024)
	}
	if quiesce > 0 {
		fmt.Printf("quiesced   %d pages (threshold %d races/page)\n", rep.Stats.PagesQuiesced, quiesce)
	}
	if rep.Racy() {
		fmt.Printf("RACES: %d found\n", rep.RaceCount)
		for _, rc := range rep.Races {
			fmt.Printf("  %v\n", rc)
		}
	} else {
		fmt.Println("no races found")
	}
	return nil
}
