// Command stint runs one benchmark under one race-detector configuration
// and prints the timing, access statistics, and any races found.
//
// Usage:
//
//	stint -workload mmul -detector stint [-scale 2] [-races 10] [-timing]
//	      [-async] [-parallel-detect] [-shards N] [-no-summaries] [-no-compact]
//	      [-stamp auto|producer|label] [-quiesce N] [-max-history BYTES]
//
// Detectors: off, reach, vanilla, compiler, comp+rts, stint,
// stint-unbalanced, stint-skiplist.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"stint"
	"stint/internal/cliutil"
	"stint/trace"
	"stint/workloads"
)

func main() {
	var (
		workload    = flag.String("workload", "mmul", "benchmark: "+strings.Join(workloads.Names(), ", "))
		detector    = flag.String("detector", "stint", "detector mode (off, reach, vanilla, compiler, comp+rts, stint, stint-unbalanced, stint-skiplist)")
		scale       = flag.Int("scale", 1, "problem-size multiplier")
		races       = flag.Int("races", 10, "max races to print")
		timing      = flag.Bool("timing", false, "measure access-history time separately")
		async       = flag.Bool("async", false, "pipeline detection on a dedicated goroutine (overlaps compute with the access history)")
		parDetect   = flag.Bool("parallel-detect", false, "execute the program's spawns on real goroutines with online detection behind a deterministic merge (comp+rts and stint variants only)")
		shards      = flag.Int("shards", 0, "partition pipelined detection across N workers by shadow page (implies -async unless -parallel-detect; comp+rts and stint variants only)")
		noSummaries = flag.Bool("no-summaries", false, "disable per-batch page summaries in sharded mode (workers scan every batch; for before/after measurement)")
		noCompact   = flag.Bool("no-compact", false, "stream fixed 16-byte events instead of the compact delta encoding (for before/after measurement)")
		stamp       = flag.String("stamp", "auto", "which stage stamps batch summaries in sharded mode: auto, producer, or label")
		quiesce     = flag.Int("quiesce", 0, "retire a 64 KiB shadow page's access history once it has produced N races (0 disables)")
		maxHistory  = flag.Int64("max-history", 0, "abort the run with an error when the detector's retained access history exceeds N bytes (0 = unlimited)")
		traceOut    = flag.String("trace-out", "", "record the execution to this trace file (replay with stint-replay)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the detection run to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stint:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "stint:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	stamping, err := parseStamp(*stamp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stint:", err)
		os.Exit(2)
	}
	err = run(*workload, *detector, *scale, *races, *timing,
		(*async || *shards > 0) && !*parDetect, *parDetect, *shards, *noSummaries, *noCompact, stamping, *traceOut,
		*quiesce, *maxHistory)
	if *memProfile != "" {
		if perr := writeMemProfile(*memProfile); perr != nil {
			fmt.Fprintln(os.Stderr, "stint: memprofile:", perr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stint:", err)
		os.Exit(1)
	}
}

func parseStamp(s string) (stint.SummaryStamping, error) {
	switch s {
	case "auto":
		return stint.StampAuto, nil
	case "producer":
		return stint.StampProducer, nil
	case "label":
		return stint.StampLabelStage, nil
	}
	return 0, fmt.Errorf("unknown -stamp %q (want auto, producer, or label)", s)
}

func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // flush accounting so the profile reflects the run
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

func run(workload, detector string, scale, maxRaces int, timing, async, parDetect bool, shards int, noSummaries, noCompact bool, stamping stint.SummaryStamping, traceOut string, quiesce int, maxHistory int64) error {
	factory, err := workloads.ByName(workload, scale)
	if err != nil {
		return err
	}
	if detector == "all" {
		return runAll(factory, timing, async)
	}
	mode, err := stint.ParseDetector(detector)
	if err != nil {
		return err
	}
	w := factory()
	opts := stint.Options{
		Detector:              mode,
		MaxRacesRecorded:      maxRaces,
		TimeAccessHistory:     timing,
		Async:                 async,
		ParallelDetect:        parDetect,
		DetectShards:          shards,
		DisableBatchSummaries: noSummaries,
		DisableCompactEvents:  noCompact,
		SummaryStamping:       stamping,
		PageQuiesceThreshold:  quiesce,
		MaxHistoryBytes:       maxHistory,
	}
	var rec *trace.Recorder
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = trace.NewRecorder(f)
		opts.Tracer = rec
	}
	r, err := stint.NewRunner(opts)
	if err != nil {
		return err
	}
	setupStart := time.Now()
	w.Setup(r)
	pipe := ""
	if parDetect {
		n := shards
		if n == 0 {
			n = 1
		}
		pipe = fmt.Sprintf(", parallel execution, %d detection shards", n)
	} else if async && mode != stint.DetectorOff {
		pipe = ", async pipeline"
		if shards > 0 {
			pipe = fmt.Sprintf(", async pipeline, %d detection shards", shards)
		}
	}
	fmt.Printf("%s (%s) under %v%s  [setup %v]\n", w.Name(), w.Params(), mode, pipe, time.Since(setupStart).Round(time.Millisecond))

	rep, err := r.Run(w.Run)
	if err != nil {
		return err
	}
	if err := w.Verify(); err != nil {
		return fmt.Errorf("result verification failed: %w", err)
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("trace written to %s\n", traceOut)
	}
	fmt.Printf("time       %v (result verified)\n", rep.WallTime.Round(time.Microsecond))
	if mode == stint.DetectorOff {
		return nil
	}
	st := rep.Stats
	fmt.Printf("strands    %d\n", rep.Strands)
	fmt.Printf("accesses   read %d  write %d (4-byte words)\n", st.ReadAccesses, st.WriteAccesses)
	fmt.Printf("hook calls read %d  write %d\n", st.ReadHookCalls, st.WriteHookCalls)
	if st.ReadIntervals+st.WriteIntervals > 0 {
		fmt.Printf("intervals  read %d (%.1f B avg)  write %d (%.1f B avg)\n",
			st.ReadIntervals, avg(st.ReadIntervalBytes, st.ReadIntervals),
			st.WriteIntervals, avg(st.WriteIntervalBytes, st.WriteIntervals))
	}
	if st.HashOps > 0 {
		fmt.Printf("hash ops   %d\n", st.HashOps)
	}
	if st.TreapOps > 0 {
		fmt.Printf("treap ops  %d  (%.2f nodes, %.2f overlaps per op)\n", st.TreapOps,
			avg(st.TreapNodesVisited, st.TreapOps), avg(st.TreapOverlaps, st.TreapOps))
	}
	if timing {
		fmt.Printf("access-history time %v\n", st.AccessHistoryTime.Round(time.Microsecond))
	}
	for _, line := range cliutil.PipelineReport(rep) {
		fmt.Println(line)
	}
	if st.HistoryBytesPeak > 0 {
		fmt.Printf("history    %.1f KiB peak retained\n", float64(st.HistoryBytesPeak)/1024)
	}
	if quiesce > 0 {
		fmt.Printf("quiesced   %d pages (threshold %d races/page)\n", st.PagesQuiesced, quiesce)
	}
	fmt.Printf("heap allocs %d objects, %.1f KiB during the run\n",
		st.AllocObjects, float64(st.AllocBytes)/1024)
	if rep.Racy() {
		fmt.Printf("RACES: %d found\n", rep.RaceCount)
		for _, rc := range rep.Races {
			fmt.Printf("  %s\n", r.DescribeRace(rc))
		}
	} else {
		fmt.Println("no races found")
	}
	return nil
}

func avg(total, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// runAll compares every detector configuration on one workload.
func runAll(factory workloads.Factory, timing, async bool) error {
	modes := []stint.Detector{
		stint.DetectorOff, stint.DetectorReachOnly, stint.DetectorVanilla,
		stint.DetectorCompiler, stint.DetectorCompRTS, stint.DetectorSTINT,
		stint.DetectorSTINTUnbalanced, stint.DetectorSTINTSkiplist,
	}
	var base time.Duration
	fmt.Printf("%-18s %12s %9s %12s %12s %10s %8s\n", "detector", "time", "overhead", "intervals", "ah-time", "allocs", "races")
	for _, mode := range modes {
		w := factory()
		r, err := stint.NewRunner(stint.Options{Detector: mode, TimeAccessHistory: timing, Async: async})
		if err != nil {
			return err
		}
		w.Setup(r)
		rep, err := r.Run(w.Run)
		if err != nil {
			return err
		}
		if err := w.Verify(); err != nil {
			return fmt.Errorf("%v: %w", mode, err)
		}
		if mode == stint.DetectorOff {
			base = rep.WallTime
		}
		oh := "-"
		if base > 0 {
			oh = fmt.Sprintf("%.2fx", float64(rep.WallTime)/float64(base))
		}
		ivs := rep.Stats.ReadIntervals + rep.Stats.WriteIntervals
		ivCol := "-"
		if ivs > 0 {
			ivCol = fmt.Sprintf("%d", ivs)
		}
		ahCol := "-"
		if timing && rep.Stats.AccessHistoryTime > 0 {
			ahCol = rep.Stats.AccessHistoryTime.Round(time.Microsecond).String()
		}
		fmt.Printf("%-18v %12v %9s %12s %12s %10d %8d\n",
			mode, rep.WallTime.Round(time.Microsecond), oh, ivCol, ahCol, rep.Stats.AllocObjects, rep.RaceCount)
	}
	return nil
}
