// Package dag extends the race detector to arbitrary task DAGs — the
// paper's first future-work direction (§7): "for programming constructs
// such as futures, it is not sufficient to store one reader per memory
// location, and generalizing our shadow memory to such programs would be
// interesting."
//
// The user declares the DAG explicitly — nodes and dependency edges — and
// the runner executes the nodes serially in a topological order, shadowing
// their memory accesses. Reachability for an arbitrary static DAG is
// precomputed as ancestor bitsets (O(V·E/64) time, O(V²/64) space), making
// Parallel queries O(1); this bounds the runner to moderate DAG sizes
// (tens of thousands of nodes), which is the intended scope — schedulers,
// build graphs, futures patterns — rather than the million-strand fork-join
// programs the stint runner handles with SP-Order.
//
// The access history generalizes the paper's design exactly where theory
// requires it:
//
//   - writes still need only the last writer per word (for any DAG, the
//     execution order is a linear extension, so an earlier writer parallel
//     with a future node either already raced with the stored writer or is
//     ordered before it); the write history is the paper's interval treap,
//     unchanged;
//   - reads need a set of readers: with no series-parallel structure there
//     is no "leftmost" single witness. The read history is
//     stint/internal/multiread: intervals carrying antichains of readers,
//     pruned by the happens-before relation.
//
// Runtime coalescing (the bit hashmap flushed per node) carries over
// unchanged.
package dag

import (
	"errors"
	"fmt"
	"time"

	"stint"
	"stint/internal/coalesce"
	"stint/internal/core"
	"stint/internal/mem"
	"stint/internal/multiread"
)

// NodeID identifies a node of a Graph.
type NodeID = int32

// Graph is a user-declared task DAG. Build it with Node and Edge, then
// execute it with Runner.Run.
type Graph struct {
	names []string
	preds [][]NodeID
	succs [][]NodeID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Node adds a node with a diagnostic name and returns its ID.
func (g *Graph) Node(name string) NodeID {
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.preds = append(g.preds, nil)
	g.succs = append(g.succs, nil)
	return id
}

// Edge declares that from must complete before to starts.
func (g *Graph) Edge(from, to NodeID) {
	if int(from) >= len(g.names) || int(to) >= len(g.names) || from < 0 || to < 0 {
		panic(fmt.Sprintf("dag: edge (%d,%d) references unknown nodes", from, to))
	}
	if from == to {
		panic(fmt.Sprintf("dag: self-edge on node %d", from))
	}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

// Serial chains the given nodes with edges in order — a convenience for
// sequential segments.
func (g *Graph) Serial(ids ...NodeID) {
	for i := 1; i < len(ids); i++ {
		g.Edge(ids[i-1], ids[i])
	}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.names) }

// Name returns the diagnostic name of a node.
func (g *Graph) Name(id NodeID) string { return g.names[id] }

// topoOrder returns a deterministic topological order (smallest ready ID
// first) or an error if the graph has a cycle.
func (g *Graph) topoOrder() ([]NodeID, error) {
	n := len(g.names)
	indeg := make([]int, n)
	for _, ss := range g.succs {
		for _, s := range ss {
			indeg[s]++
		}
	}
	// A simple binary heap keyed by ID keeps the order deterministic.
	var ready intHeap
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for ready.len() > 0 {
		v := ready.pop()
		order = append(order, v)
		for _, s := range g.succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready.push(s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: graph has a cycle (%d of %d nodes unreachable from sources)", n-len(order), n)
	}
	return order, nil
}

// intHeap is a minimal binary min-heap of NodeIDs.
type intHeap struct{ v []NodeID }

func (h *intHeap) len() int { return len(h.v) }

func (h *intHeap) push(x NodeID) {
	h.v = append(h.v, x)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.v[p] <= h.v[i] {
			break
		}
		h.v[p], h.v[i] = h.v[i], h.v[p]
		i = p
	}
}

func (h *intHeap) pop() NodeID {
	top := h.v[0]
	last := len(h.v) - 1
	h.v[0] = h.v[last]
	h.v = h.v[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.v) && h.v[l] < h.v[small] {
			small = l
		}
		if r < len(h.v) && h.v[r] < h.v[small] {
			small = r
		}
		if small == i {
			return top
		}
		h.v[i], h.v[small] = h.v[small], h.v[i]
		i = small
	}
}

// reach holds the precomputed ancestor bitsets.
type reach struct {
	words int
	anc   []uint64 // node i's ancestors at anc[i*words : (i+1)*words]
	cur   NodeID
}

func newReach(g *Graph, order []NodeID) *reach {
	n := g.Len()
	words := (n + 63) / 64
	r := &reach{words: words, anc: make([]uint64, n*words)}
	for _, v := range order {
		row := r.anc[int(v)*words : (int(v)+1)*words]
		for _, p := range g.preds[v] {
			prow := r.anc[int(p)*words : (int(p)+1)*words]
			for w := range row {
				row[w] |= prow[w]
			}
			row[p/64] |= 1 << (uint(p) % 64)
		}
	}
	return r
}

// series reports a happens-before b.
func (r *reach) series(a, b int32) bool {
	return r.anc[int(b)*r.words+int(a)/64]&(1<<(uint(a)%64)) != 0
}

// Parallel reports whether a and b are logically parallel.
func (r *reach) Parallel(a, b int32) bool {
	return a != b && !r.series(a, b) && !r.series(b, a)
}

// CurrentID returns the executing node.
func (r *reach) CurrentID() int32 { return int32(r.cur) }

// LeftOf is unused by the multi-reader engine but satisfies
// detect.Reach-style callers (the brute-force oracle): execution order
// stands in for the sequential order.
func (r *reach) LeftOf(a, b int32) bool { return a > b }

// Options configures a DAG runner.
type Options struct {
	// OnRace receives every race as it is found.
	OnRace func(stint.Race)
	// MaxRacesRecorded bounds Report.Races (default 64).
	MaxRacesRecorded int
}

// Runner executes declared DAGs under multi-reader race detection.
type Runner struct {
	opts  Options
	arena *mem.Arena
}

// NewRunner returns a Runner with an empty Arena.
func NewRunner(opts Options) (*Runner, error) {
	if opts.MaxRacesRecorded == 0 {
		opts.MaxRacesRecorded = stint.DefaultMaxRacesRecorded
	}
	return &Runner{opts: opts, arena: mem.NewArena()}, nil
}

// Arena returns the Runner's address arena.
func (r *Runner) Arena() *stint.Arena { return r.arena }

// Node is the hook receiver for one DAG node's execution.
type Node struct {
	eng *engine
}

// Load reports a read of element i of b.
func (n *Node) Load(b *stint.Buffer, i int) {
	addr, size := b.Range(i, 1)
	n.eng.stats.ReadAccesses += (size + 3) / 4
	n.eng.stats.ReadHookCalls++
	n.eng.readBits.SetRange(addr, size)
}

// Store reports a write of element i of b.
func (n *Node) Store(b *stint.Buffer, i int) {
	addr, size := b.Range(i, 1)
	n.eng.stats.WriteAccesses += (size + 3) / 4
	n.eng.stats.WriteHookCalls++
	n.eng.writeBits.SetRange(addr, size)
}

// LoadRange reports a read of elements [i, i+n) of b.
func (n *Node) LoadRange(b *stint.Buffer, i, cnt int) {
	if cnt == 0 {
		return
	}
	addr, size := b.Range(i, cnt)
	n.eng.stats.ReadAccesses += (size + 3) / 4
	n.eng.stats.ReadHookCalls++
	n.eng.readBits.SetRange(addr, size)
}

// StoreRange reports a write of elements [i, i+n) of b.
func (n *Node) StoreRange(b *stint.Buffer, i, cnt int) {
	if cnt == 0 {
		return
	}
	addr, size := b.Range(i, cnt)
	n.eng.stats.WriteAccesses += (size + 3) / 4
	n.eng.stats.WriteHookCalls++
	n.eng.writeBits.SetRange(addr, size)
}

// engine is the multi-reader detector: the paper's write treap plus the
// multiread antichain map, fed by runtime coalescing.
type engine struct {
	reach     *reach
	writeHist *core.Tree
	readHist  *multiread.Map
	readBits  *coalesce.BitSet
	writeBits *coalesce.BitSet
	stats     stint.Stats
	onRace    func(stint.Race)
	scratch   [][2]uint64
}

func (e *engine) race(rc stint.Race) {
	e.stats.Races++
	if e.onRace != nil {
		e.onRace(rc)
	}
}

// nodeEnd flushes the finishing node's accesses through the access history.
func (e *engine) nodeEnd() {
	cur := e.reach.CurrentID()
	series := e.reach.series

	e.scratch = e.scratch[:0]
	e.readBits.Flush(func(start mem.Addr, size uint64) {
		e.scratch = append(e.scratch, [2]uint64{start, size})
	})
	e.stats.ReadIntervals += uint64(len(e.scratch))
	for _, s := range e.scratch {
		e.stats.ReadIntervalBytes += s[1]
		iv := core.Interval{Start: s[0], End: s[0] + s[1], Acc: cur}
		e.writeHist.Query(iv, func(acc int32, lo, hi uint64) {
			if e.reach.Parallel(acc, cur) {
				e.race(stint.Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: cur, PrevWrite: true})
			}
		})
		e.readHist.Insert(iv.Start, iv.End, cur, series)
	}

	e.scratch = e.scratch[:0]
	e.writeBits.Flush(func(start mem.Addr, size uint64) {
		e.scratch = append(e.scratch, [2]uint64{start, size})
	})
	e.stats.WriteIntervals += uint64(len(e.scratch))
	for _, s := range e.scratch {
		e.stats.WriteIntervalBytes += s[1]
		iv := core.Interval{Start: s[0], End: s[0] + s[1], Acc: cur}
		e.readHist.Query(iv.Start, iv.End, func(acc int32, lo, hi uint64) {
			if e.reach.Parallel(acc, cur) {
				e.race(stint.Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: cur, CurWrite: true})
			}
		})
		e.writeHist.InsertWrite(iv, func(acc int32, lo, hi uint64) {
			if e.reach.Parallel(acc, cur) {
				e.race(stint.Race{Addr: lo, Size: hi - lo, Prev: acc, Cur: cur, PrevWrite: true, CurWrite: true})
			}
		})
	}
}

// Run executes the graph's nodes in topological order under multi-reader
// detection and returns the report.
func (r *Runner) Run(g *Graph, body func(n *Node, id NodeID)) (*stint.Report, error) {
	if g.Len() == 0 {
		return nil, errors.New("dag: empty graph")
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	rep := &stint.Report{}
	e := &engine{
		reach:     newReach(g, order),
		writeHist: core.NewTree(),
		readHist:  &multiread.Map{},
		readBits:  coalesce.New(),
		writeBits: coalesce.New(),
	}
	maxRec := r.opts.MaxRacesRecorded
	user := r.opts.OnRace
	e.onRace = func(rc stint.Race) {
		if len(rep.Races) < maxRec {
			rep.Races = append(rep.Races, rc)
		}
		if user != nil {
			user(rc)
		}
	}
	node := &Node{eng: e}
	start := time.Now()
	for _, id := range order {
		e.reach.cur = id
		body(node, id)
		e.nodeEnd()
	}
	rep.WallTime = time.Since(start)
	rep.Strands = g.Len()
	ws := e.writeHist.Stats()
	e.stats.TreapOps = ws.Ops + e.readHist.Ops()
	e.stats.TreapNodesVisited = ws.NodesVisited
	e.stats.TreapOverlaps = ws.Overlaps
	rep.Stats = e.stats
	rep.RaceCount = e.stats.Races
	return rep, nil
}
