package dag_test

import (
	"fmt"

	"stint/dag"
)

// A diamond DAG: the two middle nodes run in parallel, the sink waits for
// both. Writes on the parallel branches race; the sink's write does not.
func ExampleRunner_Run() {
	g := dag.NewGraph()
	src := g.Node("src")
	left := g.Node("left")
	right := g.Node("right")
	sink := g.Node("sink")
	g.Edge(src, left)
	g.Edge(src, right)
	g.Edge(left, sink)
	g.Edge(right, sink)

	r, _ := dag.NewRunner(dag.Options{})
	buf := r.Arena().AllocWords("buf", 16)
	report, _ := r.Run(g, func(n *dag.Node, id dag.NodeID) {
		switch id {
		case left, right:
			n.StoreRange(buf, 0, 8) // parallel overlapping writes
		case sink:
			n.LoadRange(buf, 0, 16) // ordered after both
		}
	})
	fmt.Println("races found:", report.Racy())
	fmt.Println("first:", g.Name(report.Races[0].Prev), "vs", g.Name(report.Races[0].Cur))
	// Output:
	// races found: true
	// first: left vs right
}
