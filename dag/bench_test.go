package dag_test

import (
	"testing"

	"stint/dag"
)

// BenchmarkDAGLayeredGraph measures multi-reader detection on a layered
// DAG (layers of parallel nodes, dense edges between adjacent layers) —
// the shape of schedulers and build graphs.
func BenchmarkDAGLayeredGraph(b *testing.B) {
	const layers, width, chunk = 16, 16, 32
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := dag.NewGraph()
		ids := make([][]dag.NodeID, layers)
		for l := 0; l < layers; l++ {
			ids[l] = make([]dag.NodeID, width)
			for w := 0; w < width; w++ {
				ids[l][w] = g.Node("n")
				if l > 0 {
					for p := 0; p < width; p += 4 {
						g.Edge(ids[l-1][p], ids[l][w])
					}
				}
			}
		}
		r, err := dag.NewRunner(dag.Options{})
		if err != nil {
			b.Fatal(err)
		}
		buf := r.Arena().AllocWords("data", width*chunk)
		b.StartTimer()
		rep, err := r.Run(g, func(n *dag.Node, id dag.NodeID) {
			slot := int(id) % width
			n.LoadRange(buf, slot*chunk, chunk)
			n.StoreRange(buf, slot*chunk, chunk)
		})
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		_ = rep
		b.StartTimer()
	}
}

// BenchmarkReachabilityPrecompute isolates the ancestor-bitset
// construction cost that bounds the DAG runner's scale.
func BenchmarkReachabilityPrecompute(b *testing.B) {
	g := dag.NewGraph()
	const n = 2048
	for i := 0; i < n; i++ {
		g.Node("n")
	}
	for i := 0; i < n-1; i++ {
		g.Edge(dag.NodeID(i), dag.NodeID(i+1))
		if i+17 < n {
			g.Edge(dag.NodeID(i), dag.NodeID(i+17))
		}
	}
	r, _ := dag.NewRunner(dag.Options{})
	r.Arena().AllocWords("data", 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(g, func(*dag.Node, dag.NodeID) {}); err != nil {
			b.Fatal(err)
		}
	}
}
